// Package symbios's root benchmarks regenerate every table and figure of
// the paper's evaluation. One benchmark per table/figure; custom metrics
// (weighted speedups, improvement percentages) are attached via
// b.ReportMetric so `go test -bench=. -benchmem` prints the reproduced
// results alongside timing.
//
// The benchmarks run at the test scale (QuickScale) so the whole suite
// finishes in minutes; `cmd/sosbench -scale default|paper` runs the same
// drivers at larger scales.
package symbios

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/cpu"
	"symbios/internal/experiments"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/trace"
	"symbios/internal/workload"
)

func benchScale() experiments.Scale { return experiments.QuickScale() }

// BenchmarkTable2 regenerates Table 2: distinct schedule counts and
// sample-phase lengths for every experiment.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchScale())
		if len(rows) != 13 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the Jsb(6,3,3) predictor detail.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, ev, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("got %d schedules", len(rows))
		}
		b.ReportMetric(ev.Best(), "WS-best")
		b.ReportMetric(ev.Worst(), "WS-worst")
		b.ReportMetric(ev.Avg(), "WS-avg")
	}
}

// BenchmarkFigure1 regenerates Figure 1: worst and best weighted speedup
// for the 13 jobmix combinations.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Every iteration is a cold sweep: the in-process mix-evaluation
		// memo would otherwise make all but the first iteration (and all
		// but the first -count run) a cache read instead of a simulation.
		experiments.ClearEvalCache()
		rows, err := experiments.Figure1(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		sumSpread := 0.0
		maxSpread := 0.0
		for _, r := range rows {
			sumSpread += r.SpreadPct
			if r.SpreadPct > maxSpread {
				maxSpread = r.SpreadPct
			}
		}
		b.ReportMetric(sumSpread/float64(len(rows)), "avg-spread-%")
		b.ReportMetric(maxSpread, "max-spread-%")
	}
}

// BenchmarkFigure2 regenerates Figure 2: weighted speedup by predictor on
// Jsb(6,3,3).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := experiments.Figure2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, bar := range bars {
			if bar.Label == "Score" {
				b.ReportMetric(bar.WS, "WS-score")
			}
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: weighted speedup by predictor
// over every jobmix. It reports the mean Score-predictor gain over the
// average (random) schedule.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		gain := 0.0
		for _, r := range rows {
			var avg, score float64
			for _, bar := range r.Bars {
				switch bar.Label {
				case "Avg":
					avg = bar.WS
				case "Score":
					score = bar.WS
				}
			}
			gain += 100 * (score - avg) / avg
		}
		b.ReportMetric(gain/float64(len(rows)), "score-over-avg-%")
	}
}

// BenchmarkParallel regenerates the Section 6 study: Jpb(10,2,2) (tight
// synchronization, coscheduling the ARRAY threads wins) versus
// J2pb(10,2,2) (loose synchronization, splitting them wins).
func BenchmarkParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tight, err := experiments.ParallelStudy(benchScale(), "Jpb(10,2,2)")
		if err != nil {
			b.Fatal(err)
		}
		loose, err := experiments.ParallelStudy(benchScale(), "J2pb(10,2,2)")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tight.CoschedAvgWS/tight.SplitAvgWS, "tight-cosched-gain")
		b.ReportMetric(loose.SplitAvgWS/loose.CoschedAvgWS, "loose-split-gain")
	}
}

// BenchmarkFigure4 regenerates Figure 4: hierarchical symbiosis at SMT
// levels 2, 3, 4 and 6.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		overAvg, overWorst := 0.0, 0.0
		for _, r := range rows {
			overAvg += r.OverAvgPct
			overWorst += r.OverWorstPct
		}
		b.ReportMetric(overAvg/float64(len(rows)), "over-avg-%")
		b.ReportMetric(overWorst/float64(len(rows)), "over-worst-%")
	}
}

// BenchmarkWarmstart regenerates the Section 8 study: full swap versus
// swapping one job per timeslice.
func BenchmarkWarmstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WarmstartStudy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		gain := 0.0
		for _, r := range rows {
			gain += r.WarmBigGainPct
		}
		b.ReportMetric(gain/float64(len(rows)), "warmstart-gain-%")
	}
}

// BenchmarkFigure5 regenerates Figure 5: response-time improvement of SOS
// over a naive scheduler at SMT levels 2, 3, 4 and 6.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(experiments.QuickQueueScale())
		if err != nil {
			b.Fatal(err)
		}
		imp := 0.0
		for _, r := range rows {
			imp += r.ImprovementPct
		}
		b.ReportMetric(imp/float64(len(rows)), "improve-%")
	}
}

// BenchmarkFigure6 regenerates Figure 6: response-time improvement versus
// arrival rate at SMT level 3.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(experiments.QuickQueueScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		imp := 0.0
		for _, r := range rows {
			imp += r.ImprovementPct
		}
		b.ReportMetric(imp/float64(len(rows)), "improve-%")
	}
}

// BenchmarkPairwise regenerates a 4x4 corner of the pairwise symbiosis
// matrix: 4 solo calibrations plus 6 independent two-context runs, the
// embarrassingly parallel workload the internal/parallel layer fans out
// (wall-clock scales with core count; results are identical at any
// worker count).
func BenchmarkPairwise(b *testing.B) {
	sc := benchScale()
	names := []string{"FP", "GCC", "IS", "CG"}
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Pairwise(sc, names)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.WS[0][1], "WS-FP-GCC")
	}
}

// BenchmarkCoreCycles measures raw simulator speed: cycles per second with
// three threads resident.
func BenchmarkCoreCycles(b *testing.B) {
	cfg := arch.Default21264(3)
	c, err := cpu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i, name := range []string{"FP", "MG", "GCC"} {
		spec := workload.MustLookup(name)
		job := workload.MustNewJob(spec, i, uint64(42+i))
		c.Attach(i, job.Source(0), 0, nil, 0)
	}
	c.Run(200_000) // warm
	b.ResetTimer()
	c.Run(uint64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(c.Snapshot().Committed)/float64(c.Cycle()), "IPC")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim_cycles/sec")
}

// BenchmarkBatchEval measures batched coschedule evaluation: four
// identically-warmed machines advanced through a symbios run as one
// core.EvalBatch work item (the unit the experiment fan-outs hand to a
// worker).
func BenchmarkBatchEval(b *testing.B) {
	mix := workload.MustMix("Jsb(4,2,2)")
	cfg := arch.Default21264(mix.SMTLevel)
	s := schedule.Schedule{Order: []int{0, 1, 2, 3}, Y: mix.SMTLevel, Z: mix.Swap}
	b.ReportAllocs()
	simCycles := uint64(0)
	for i := 0; i < b.N; i++ {
		var batch core.EvalBatch
		ms := make([]*core.Machine, 4)
		for k := range ms {
			jobs, err := mix.Build(uint64(7 + k))
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewMachine(cfg, jobs, 20_000)
			if err != nil {
				b.Fatal(err)
			}
			ms[k] = m
			if _, err := batch.Add(m, s, 4*s.CycleSlices()); err != nil {
				b.Fatal(err)
			}
		}
		res, err := batch.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			simCycles += r.Cycles
		}
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/sec")
}

// BenchmarkTraceAt measures synthetic stream generation.
func BenchmarkTraceAt(b *testing.B) {
	spec := workload.MustLookup("GCC")
	s, err := trace.NewStream(spec.Params, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink trace.Inst
	for i := 0; i < b.N; i++ {
		sink = s.At(uint64(i))
	}
	_ = sink
}

// BenchmarkScheduleSample measures distinct-schedule sampling for a large
// space (Jsb(8,4,1): 2520 schedules).
func BenchmarkScheduleSample(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		if got := schedule.Sample(r, 8, 4, 1, 10); len(got) != 10 {
			b.Fatalf("got %d", len(got))
		}
	}
}

// BenchmarkSOSRun measures one full SOS pipeline (sample + choose +
// symbios) on Jsb(6,3,3).
func BenchmarkSOSRun(b *testing.B) {
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)
	for i := 0; i < b.N; i++ {
		jobs, err := mix.Build(7)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.NewMachine(cfg, jobs, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(m, mix.SMTLevel, mix.Swap, nil, core.Options{
			Samples:       10,
			Predictor:     core.PredScore,
			SymbiosSlices: 40,
			WarmupCycles:  1_000_000,
			Seed:          7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Samples[res.ChosenIdx].IPC, "chosen-sample-IPC")
	}
}

// BenchmarkLevels runs the SMT-level throughput sweep extension.
func BenchmarkLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ThroughputVsLevel(benchScale(), []int{2, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		spread := 0.0
		for _, r := range rows {
			spread += r.SpreadPct
		}
		b.ReportMetric(spread/float64(len(rows)), "avg-spread-%")
	}
}

// BenchmarkAblationFetchPolicy compares ICOUNT with round-robin fetch.
func BenchmarkAblationFetchPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFetchPolicy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WS, "WS-icount")
		b.ReportMetric(rows[1].WS, "WS-roundrobin")
	}
}
