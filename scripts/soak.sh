#!/usr/bin/env bash
# soak.sh — chaos-soak a live sosd and assert the resilience contract:
# under sustained poisoned load the service sheds rather than queues
# unboundedly, the canary request stays byte-identical, SIGTERM drains to a
# clean exit 0, and a restart from the flushed checkpoint replays the cache
# (same canary hash, served as hits).
#
# Usage:
#   scripts/soak.sh                 # 30-second soak
#   SOAK_SECONDS=5 scripts/soak.sh  # shorter, for local smoke
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-30}"
CHAOS="${CHAOS:-0.2}"
POISON="${POISON:-0.2}"

TMP="$(mktemp -d)"
cleanup() {
    [ -f "$TMP/sosd.pid" ] && kill "$(cat "$TMP/sosd.pid")" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/sosd" ./cmd/sosd
CKPT="$TMP/soak.ckpt"

# start_server LOGFILE: launch sosd on an ephemeral port, record its pid in
# $TMP/sosd.pid (callers run this in a command substitution, so a variable
# would not survive the subshell), and echo the bound address parsed from
# the logged contract line.
start_server() {
    local logf="$1"
    # stdout must not inherit the caller's command-substitution pipe, or
    # $(start_server ...) would block until the daemon exits.
    "$TMP/sosd" -addr 127.0.0.1:0 -chaos "$CHAOS" \
        -checkpoint "$CKPT" -checkpoint-every 4 -drain 15s \
        </dev/null >/dev/null 2>"$logf" &
    local pid=$!
    echo "$pid" >"$TMP/sosd.pid"
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \(.*\)/\1/p' "$logf" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: sosd died on startup:" >&2
            cat "$logf" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: sosd never logged its address" >&2
        exit 1
    fi
    echo "$addr"
}

# stop_server: SIGTERM the server and require a clean drained exit 0.
# (wait on a non-child pid is impossible — the server was started in a
# subshell — so poll for exit and read the drain outcome from the log.)
stop_server() {
    local logf="$1"
    local pid
    pid="$(cat "$TMP/sosd.pid")"
    kill -TERM "$pid"
    for _ in $(seq 1 200); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: sosd still running 20s after SIGTERM" >&2
        exit 1
    fi
    if ! grep -q "drained cleanly" "$logf"; then
        echo "FAIL: no clean-drain line in $logf after SIGTERM:" >&2
        tail -5 "$logf" >&2
        exit 1
    fi
}

echo "== soak: ${SOAK_SECONDS}s against sosd -chaos $CHAOS =="
ADDR="$(start_server "$TMP/server1.log")"
echo "server at $ADDR"

SOAK1="$TMP/soak1.out"
"$TMP/sosd" -soak "http://$ADDR" -soak-duration "${SOAK_SECONDS}s" \
    -soak-poison "$POISON" >"$SOAK1"
grep -q "soak passed" "$SOAK1"
SHA1="$(sed -n 's/^canary sha256=//p' "$SOAK1")"
if [ -z "$SHA1" ]; then
    echo "FAIL: soak produced no canary hash" >&2
    exit 1
fi
echo "canary sha256=$SHA1"

stop_server "$TMP/server1.log"
if [ ! -f "$CKPT" ]; then
    echo "FAIL: no checkpoint flushed on shutdown" >&2
    exit 1
fi
echo "ok: drained cleanly, checkpoint flushed"

echo "== restart: resume the response cache from the checkpoint =="
ADDR="$(start_server "$TMP/server2.log")"
if ! grep -q "resumed .* cached responses" "$TMP/server2.log"; then
    echo "FAIL: restart did not resume the checkpoint" >&2
    exit 1
fi

SOAK2="$TMP/soak2.out"
"$TMP/sosd" -soak "http://$ADDR" -soak-duration 5s \
    -soak-poison "$POISON" >"$SOAK2"
grep -q "soak passed" "$SOAK2"
SHA2="$(sed -n 's/^canary sha256=//p' "$SOAK2")"
if [ "$SHA1" != "$SHA2" ]; then
    echo "FAIL: canary hash changed across restart ($SHA1 vs $SHA2)" >&2
    exit 1
fi
echo "ok: canary byte-identical across restart"

stop_server "$TMP/server2.log"
echo "PASS"
