#!/usr/bin/env bash
# partitionsoak.sh — soak a 1-front/3-backend sosd fleet through deterministic
# chaosproxy fault injectors and assert the integrity contract:
#
#   - wire corruption, resets, latency and a timed 10s blackhole partition are
#     injected between the front and its backends, yet zero digest-mismatched
#     or oracle-divergent bodies reach the client (the soak's digest check and
#     byte-identity oracle both stay clean);
#   - a replica answering deterministically-wrong bytes (sosd -divergence) is
#     convicted by hedge-loser comparison and background audits and
#     quarantined out of placement within -quarantine-after observations;
#   - once its divergence window closes, clean readmit probes lift the
#     quarantine while traffic is still flowing;
#   - the chaosnet fault schedule replays byte-identically regardless of
#     worker parallelism (the workers-1-vs-8 determinism test).
#
# Usage:
#   scripts/partitionsoak.sh                 # 30-second soak
#   SOAK_SECONDS=15 scripts/partitionsoak.sh # shorter, for local smoke
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-30}"
CHAOS_SEED="${CHAOS_SEED:-42}"
DIVERGE_FOR="${DIVERGE_FOR:-20s}"

TMP="$(mktemp -d)"
cleanup() {
    for pidf in "$TMP"/*.pid; do
        [ -f "$pidf" ] && kill "$(cat "$pidf")" 2>/dev/null || true
    done
    if [ -n "${KEEP_TMP:-}" ]; then
        echo "KEEP_TMP set: logs left in $TMP" >&2
    else
        rm -rf "$TMP"
    fi
}
trap cleanup EXIT

echo "== fault-schedule determinism: identical plans at workers 1 and 8 =="
go test -count=1 -run 'TestPlanReplaysIdenticallyAcrossWorkers' ./internal/chaosnet/

go build -o "$TMP/sosd" ./cmd/sosd
go build -o "$TMP/sosfront" ./cmd/sosfront
go build -o "$TMP/chaosproxy" ./cmd/chaosproxy

# start_daemon NAME LOGFILE BIN ARGS...: launch a daemon with its log in
# LOGFILE, record its pid in $TMP/NAME.pid, and echo the bound address
# parsed from the "listening on" contract line.
start_daemon() {
    local name="$1" logf="$2" bin="$3"
    shift 3
    "$bin" "$@" </dev/null >/dev/null 2>"$logf" &
    local pid=$!
    echo "$pid" >"$TMP/$name.pid"
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \(.*\)/\1/p' "$logf" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: $name died on startup:" >&2
            cat "$logf" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: $name never logged its address" >&2
        exit 1
    fi
    echo "$addr"
}

# stop_daemon NAME LOGFILE: SIGTERM and require a clean drained exit.
stop_daemon() {
    local name="$1" logf="$2"
    local pid
    pid="$(cat "$TMP/$name.pid")"
    kill -TERM "$pid"
    for _ in $(seq 1 200); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: $name still running 20s after SIGTERM" >&2
        exit 1
    fi
    if ! grep -q "drained cleanly" "$logf"; then
        echo "FAIL: no clean-drain line in $logf after SIGTERM:" >&2
        tail -5 "$logf" >&2
        exit 1
    fi
    rm -f "$TMP/$name.pid"
}

BACKEND_FLAGS=(-scale serve -rate 500 -queue 64 -workers 4 -drain 15s)

echo "== fleet: oracle + 3 backends (b3 divergent for $DIVERGE_FOR) behind chaos proxies =="
ORACLE="$(start_daemon oracle "$TMP/oracle.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/oracle.ckpt" "${BACKEND_FLAGS[@]}")"
B1="$(start_daemon b1 "$TMP/b1.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b1.ckpt" "${BACKEND_FLAGS[@]}")"
B2="$(start_daemon b2 "$TMP/b2.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b2.ckpt" "${BACKEND_FLAGS[@]}")"
B3="$(start_daemon b3 "$TMP/b3.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b3.ckpt" \
    -divergence 1 -divergence-for "$DIVERGE_FOR" "${BACKEND_FLAGS[@]}")"

# p1 carries the 10s blackhole partition (a single window, 15s in); p2
# carries bit corruption plus resets (connection churn keeps fresh fault
# draws coming); p3 only adds latency — b3's divergence is the application-
# level fault under test and should not be confounded by wire damage.
P1="$(start_daemon p1 "$TMP/p1.log" "$TMP/chaosproxy" \
    -backend "$B1" -label b1 -seed "$CHAOS_SEED" \
    -latency-p 0.2 -partition-every 600s -partition-for 10s -partition-start 15s)"
P2="$(start_daemon p2 "$TMP/p2.log" "$TMP/chaosproxy" \
    -backend "$B2" -label b2 -seed "$CHAOS_SEED" \
    -latency-p 0.2 -corrupt-p 0.5 -reset-p 0.1)"
P3="$(start_daemon p3 "$TMP/p3.log" "$TMP/chaosproxy" \
    -backend "$B3" -label b3 -seed "$CHAOS_SEED" -latency-p 0.2)"

FRONT="$(start_daemon front "$TMP/front.log" "$TMP/sosfront" \
    -addr 127.0.0.1:0 -backends "http://$P1,http://$P2,http://$P3" \
    -replicas 2 -drain 15s \
    -attempt-timeout 2s -audit-rate 1 -audit-seed 7 \
    -quarantine-after 3 -quarantine-readmit 2)"
echo "oracle=$ORACLE proxies=$P1,$P2,$P3 front=$FRONT"

post_front() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d "{\"mix\":\"Jsb(4,2,2)\",\"seed\":$1,\"samples\":2,\"mode\":\"rank\",\"deadline_ms\":15000}" \
        "http://$FRONT/v1/schedule" -o /dev/null
}

quarantined_count() {
    curl -sf "http://$FRONT/v1/quarantine" | sed -n 's/.*"quarantined":\([0-9]*\),.*/\1/p'
}

# Prime the quarantine with unchecked traffic: distinct fingerprints (seeds
# outside the soak client's 0..63 space) give the audits fresh evaluations
# to cross-check until b3 crosses the quarantine threshold. Only then does
# the oracle-checked soak start — from that point on, a divergent body
# reaching the client is a hard failure.
echo "== priming: convict the divergent replica before checked load starts =="
CONVICTED=""
for i in $(seq 1 100); do
    post_front $((20000 + i)) || true
    if [ "$(quarantined_count)" = "1" ]; then
        CONVICTED=1
        break
    fi
    sleep 0.1
done
if [ -z "$CONVICTED" ]; then
    echo "FAIL: divergent replica was never quarantined during priming:" >&2
    curl -s "http://$FRONT/v1/quarantine" >&2 || true
    tail -10 "$TMP/front.log" >&2
    exit 1
fi
echo "ok: divergent replica quarantined (after $i priming requests)"
curl -s "http://$FRONT/v1/quarantine" | head -c 400; echo

echo "== soak: ${SOAK_SECONDS}s of oracle-checked load under chaos =="
"$TMP/sosfront" -soak "http://$FRONT" -oracle "http://$ORACLE" \
    -soak-duration "${SOAK_SECONDS}s" >"$TMP/soak.out" 2>"$TMP/soak.log" &
SOAK_PID=$!
if ! wait "$SOAK_PID"; then
    echo "FAIL: partition soak found violations:" >&2
    tail -20 "$TMP/soak.log" >&2
    exit 1
fi
grep -q "fleet soak passed" "$TMP/soak.out"
cat "$TMP/soak.out"
tail -1 "$TMP/soak.log" >&2 || true

# By now b3's divergence window has closed; keep a trickle of traffic
# flowing so readmit probes (which ride the audit draws) can lift the
# quarantine, then require it lifted.
echo "== readmission: clean probes must lift the quarantine =="
READMITTED=""
for i in $(seq 1 100); do
    post_front $((30000 + i)) || true
    if [ "$(quarantined_count)" = "0" ]; then
        READMITTED=1
        break
    fi
    sleep 0.1
done
QJSON="$(curl -s "http://$FRONT/v1/quarantine")"
if [ -z "$READMITTED" ]; then
    echo "FAIL: quarantine never lifted after the divergence window closed:" >&2
    echo "$QJSON" >&2
    tail -10 "$TMP/front.log" >&2
    exit 1
fi
echo "$QJSON" | grep -Eq '"quarantines":[1-9]' || {
    echo "FAIL: no backend records a quarantine episode: $QJSON" >&2
    exit 1
}
echo "$QJSON" | grep -Eq '"readmits":[1-9]' || {
    echo "FAIL: no backend records a readmission: $QJSON" >&2
    exit 1
}
echo "ok: quarantine episode recorded and lifted"
echo "$QJSON" | head -c 400; echo

echo "== drain the fleet =="
stop_daemon front "$TMP/front.log"
stop_daemon p3 "$TMP/p3.log"
stop_daemon p2 "$TMP/p2.log"
stop_daemon p1 "$TMP/p1.log"
stop_daemon b3 "$TMP/b3.log"
stop_daemon b2 "$TMP/b2.log"
stop_daemon b1 "$TMP/b1.log"
stop_daemon oracle "$TMP/oracle.log"

# The proxies' exit stats prove the chaos actually fired: the partition
# window held traffic, and at least one injected fault (corruption, reset
# or stall) hit a live connection.
PARTITIONS="$(sed -n 's/.*"partition_holds":\([0-9]*\).*/\1/p' "$TMP/p1.log" | tail -n1)"
CORRUPTIONS="$(sed -n 's/.*"corruptions":\([0-9]*\).*/\1/p' "$TMP/p2.log" | tail -n1)"
RESETS="$(sed -n 's/.*"resets":\([0-9]*\).*/\1/p' "$TMP/p2.log" | tail -n1)"
echo "chaos totals: partition_holds=$PARTITIONS corruptions=$CORRUPTIONS resets=$RESETS"
if [ "${PARTITIONS:-0}" -eq 0 ]; then
    echo "FAIL: the blackhole partition never held a connection" >&2
    exit 1
fi
if [ "$(( ${CORRUPTIONS:-0} + ${RESETS:-0} ))" -eq 0 ]; then
    echo "FAIL: no corruption or reset ever fired on p2" >&2
    exit 1
fi
echo "PASS"
