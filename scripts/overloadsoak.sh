#!/usr/bin/env bash
# overloadsoak.sh — drive a live sosd at 1.3x its measured capacity and
# assert the overload contract: zero failed /healthz probes throughout,
# every shed carries Retry-After (the soak client enforces this), the
# brownout ladder steps down under pressure and recovers to full service
# once the load stops, goroutine counts return to baseline (no leak), and
# SIGTERM still drains cleanly afterwards.
#
# Usage:
#   scripts/overloadsoak.sh                 # 20-second overload
#   SOAK_SECONDS=5 scripts/overloadsoak.sh  # shorter, for local smoke
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-20}"
OVERLOAD_FACTOR="${OVERLOAD_FACTOR:-1.3}"

TMP="$(mktemp -d)"
cleanup() {
    [ -f "$TMP/probe.pid" ] && kill "$(cat "$TMP/probe.pid")" 2>/dev/null || true
    [ -f "$TMP/sosd.pid" ] && kill "$(cat "$TMP/sosd.pid")" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/sosd" ./cmd/sosd

# One worker and a short queue make capacity small and the overload cheap
# to provoke; the controller thresholds are scaled down to match so the
# ladder moves within a CI-sized soak. The response cache matters here:
# mode 2 serves cache hits (the canary among them) byte-identically and
# only falls back to round-robin on misses.
"$TMP/sosd" -addr 127.0.0.1:0 -scale serve -rate 10000 \
    -checkpoint "$TMP/overload.ckpt" \
    -queue 16 -workers 1 \
    -queue-target 150ms \
    -brownout-down 100ms -brownout-down-hold 500ms -brownout-up-hold 1s \
    -drain 15s \
    </dev/null >/dev/null 2>"$TMP/sosd.log" &
echo $! >"$TMP/sosd.pid"
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \(.*\)/\1/p' "$TMP/sosd.log" | head -n1)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$(cat "$TMP/sosd.pid")" 2>/dev/null; then
        echo "FAIL: sosd died on startup:" >&2
        cat "$TMP/sosd.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: sosd never logged its address" >&2; exit 1; }
echo "server at $ADDR"

statz_field() { # statz_field PYEXPR: evaluate PYEXPR against the /statz doc as s
    curl -sf "http://$ADDR/statz" | python3 -c "import json,sys; s=json.load(sys.stdin); print($1)"
}

echo "== calibrate: sequential adaptive requests measure capacity =="
CAL_N=4
T0="$(date +%s%N)"
for i in $(seq 1 "$CAL_N"); do
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d "{\"mix\":\"Jsb(4,2,2)\",\"seed\":$((7000 + i)),\"samples\":3,\"mode\":\"adaptive\",\"deadline_ms\":30000}" \
        "http://$ADDR/v1/schedule" -o /dev/null \
        || { echo "FAIL: calibration request $i failed" >&2; exit 1; }
done
T1="$(date +%s%N)"
RATE="$(awk -v n="$CAL_N" -v t0="$T0" -v t1="$T1" -v f="$OVERLOAD_FACTOR" \
    'BEGIN { printf "%.2f", f * n * 1e9 / (t1 - t0) }')"
echo "capacity ~$(awk -v r="$RATE" -v f="$OVERLOAD_FACTOR" 'BEGIN { printf "%.2f", r/f }') req/s; driving at $RATE req/s"

BASE_GOROUTINES="$(statz_field 's["goroutines"]')"

# Background /healthz prober: liveness must never fail, no matter how
# degraded the service gets. Each failure appends a line.
(
    while :; do
        curl -sf --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1 \
            || echo "probe failed at $(date +%T)" >>"$TMP/healthz.fail"
        sleep 0.25
    done
) &
echo $! >"$TMP/probe.pid"

echo "== overload: ${SOAK_SECONDS}s of adaptive load at ${OVERLOAD_FACTOR}x capacity =="
"$TMP/sosd" -soak "http://$ADDR" -soak-duration "${SOAK_SECONDS}s" \
    -soak-poison 0 -soak-adaptive 1 -soak-rate "$RATE" >"$TMP/soak.out" &
SOAK_PID=$!

# Scrape the ladder while the load runs; it must step down at least once.
MAX_MODE=0
while kill -0 "$SOAK_PID" 2>/dev/null; do
    MODE="$(statz_field 's["brownout"]["mode"]' 2>/dev/null || echo 0)"
    [ "$MODE" -gt "$MAX_MODE" ] && MAX_MODE="$MODE"
    sleep 0.25
done
if ! wait "$SOAK_PID"; then
    echo "FAIL: overload soak found violations:" >&2
    cat "$TMP/soak.out" >&2
    exit 1
fi
grep -q "soak passed" "$TMP/soak.out" \
    || { echo "FAIL: soak client did not pass" >&2; cat "$TMP/soak.out" >&2; exit 1; }
echo "ok: no non-shed failures, every shed carried Retry-After"

if [ "$MAX_MODE" -lt 1 ]; then
    echo "FAIL: brownout ladder never stepped down (max mode $MAX_MODE)" >&2
    statz_field 's["brownout"]' >&2 || true
    exit 1
fi
echo "ok: ladder stepped down (max mode $MAX_MODE)"

if [ -s "$TMP/healthz.fail" ]; then
    echo "FAIL: $(wc -l <"$TMP/healthz.fail") /healthz probes failed during overload:" >&2
    head -5 "$TMP/healthz.fail" >&2
    exit 1
fi
echo "ok: zero failed /healthz probes"

echo "== recovery: light traffic until the ladder returns to mode 0 =="
RECOVERED=""
for i in $(seq 1 120); do
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d "{\"mix\":\"Jsb(4,2,2)\",\"seed\":$((90000 + i)),\"samples\":2}" \
        "http://$ADDR/v1/schedule" -o /dev/null || true
    MODE="$(statz_field 's["brownout"]["mode"]' 2>/dev/null || echo 9)"
    if [ "$MODE" = "0" ]; then
        RECOVERED=1
        break
    fi
    sleep 0.25
done
[ -n "$RECOVERED" ] || {
    echo "FAIL: ladder never recovered to mode 0:" >&2
    statz_field 's["brownout"]' >&2 || true
    exit 1
}
STEPS="$(statz_field 's["brownout"]["step_downs"], s["brownout"]["step_ups"]')"
echo "ok: recovered to mode 0 (step_downs, step_ups = $STEPS)"

# Stop the prober before the leak check so its in-flight curls don't hold
# server goroutines open.
kill "$(cat "$TMP/probe.pid")" 2>/dev/null || true
rm -f "$TMP/probe.pid"
sleep 2
END_GOROUTINES="$(statz_field 's["goroutines"]')"
if [ "$END_GOROUTINES" -gt $((BASE_GOROUTINES + 10)) ]; then
    echo "FAIL: goroutines grew $BASE_GOROUTINES -> $END_GOROUTINES across the overload" >&2
    exit 1
fi
echo "ok: goroutines $BASE_GOROUTINES -> $END_GOROUTINES (no leak)"

kill -TERM "$(cat "$TMP/sosd.pid")"
for _ in $(seq 1 200); do
    kill -0 "$(cat "$TMP/sosd.pid")" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$(cat "$TMP/sosd.pid")" 2>/dev/null; then
    echo "FAIL: sosd still running 20s after SIGTERM" >&2
    exit 1
fi
grep -q "drained cleanly" "$TMP/sosd.log" \
    || { echo "FAIL: no clean-drain line after SIGTERM:" >&2; tail -5 "$TMP/sosd.log" >&2; exit 1; }
echo "ok: drained cleanly after the overload"
echo "PASS"
