#!/usr/bin/env bash
# benchsmoke.sh — machine-enforce the cycle loop's alloc-free invariant.
# Runs BenchmarkCoreCycles three times with allocation reporting and fails
# if any sample reports allocs/op > 0: steady-state simulation must not
# allocate, and a regression here silently costs every experiment sweep.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="$(go test -run '^$' -bench '^BenchmarkCoreCycles$' -benchtime 200000x -count 3 -benchmem .)"
echo "$OUT"

echo "$OUT" | awk '
/^BenchmarkCoreCycles/ {
    found++
    for (i = 1; i <= NF; i++) {
        if ($i == "allocs/op" && $(i-1) + 0 > 0) {
            printf "benchsmoke: allocs/op = %s in: %s\n", $(i-1), $0 > "/dev/stderr"
            bad = 1
        }
    }
}
END {
    if (found < 3) {
        printf "benchsmoke: expected 3 BenchmarkCoreCycles samples, saw %d\n", found > "/dev/stderr"
        exit 1
    }
    exit bad
}'
echo "benchsmoke: BenchmarkCoreCycles is alloc-free across 3 samples"
