#!/usr/bin/env bash
# bench.sh — run the root benchmarks and emit a BENCH_<date>.json perf
# snapshot (ns/op, allocs/op, B/op and reported metrics per table/figure)
# so future optimisation PRs have a trajectory to compare against.
#
# Usage:
#   scripts/bench.sh [bench-regex] [benchtime]
#
# Defaults: the fast structural benchmarks plus the simulator hot loop.
# Pass '.' to run everything (slow: the full figure suite simulates
# hundreds of millions of cycles).
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkCoreCycles|BenchmarkTraceAt|BenchmarkScheduleSample|BenchmarkSOSRun}"
BENCHTIME="${2:-1x}"
OUT="BENCH_$(date +%Y%m%d).json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test -run ^\$ -bench \"$PATTERN\" -benchtime $BENCHTIME -benchmem" >&2
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem | tee "$RAW"

# Convert `go test -bench` lines into a JSON snapshot. Each benchmark line
# has the shape:
#   BenchmarkName  N  t ns/op [m unit ...]  b B/op  a allocs/op
python3 - "$RAW" "$OUT" <<'EOF'
import json, re, sys, datetime, subprocess

raw, out = sys.argv[1], sys.argv[2]
benches = {}
for line in open(raw):
    m = re.match(r'^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+(.*)$', line)
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    metrics = {}
    for val, unit in re.findall(r'([0-9.e+]+)\s+(\S+)', rest):
        metrics[unit] = float(val)
    benches[name] = {"iterations": iters, "metrics": metrics}

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip()
snapshot = {
    "date": datetime.date.today().isoformat(),
    "commit": commit,
    "go": subprocess.run(["go", "version"], capture_output=True,
                         text=True).stdout.strip(),
    "benchmarks": benches,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benchmarks)", file=sys.stderr)
EOF
