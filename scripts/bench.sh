#!/usr/bin/env bash
# bench.sh — run the root and per-stage benchmarks and emit a
# BENCH_<date>.json perf snapshot (min/median ns/op, allocs/op, B/op,
# reported metrics per table/figure, sim_cycles/sec for the simulator hot
# loop, and the cold Figure-1 sweep wall-clock) so future optimisation PRs
# have a trajectory to compare against.
#
# Usage:
#   scripts/bench.sh [bench-regex] [benchtime] [count]
#
# Defaults: the fast structural benchmarks, the simulator hot loop and the
# per-stage microbenchmarks, 5 repetitions at a pinned -benchtime so
# run-to-run noise is visible in the snapshot instead of silently folded
# into a single sample. Pass '.' to run everything (slow: the full figure
# suite simulates hundreds of millions of cycles).
#
# The cold Figure-1 sweep is timed separately in a fresh process with
# -count 1 (the in-process eval memo is cleared per iteration, but a fresh
# process also rules out warm OS and allocator state); set BENCH_FIG1=0 to
# skip it when iterating on the micro numbers.
#
# The open-system overload sweep (sosbench -exp openload, quick scale)
# contributes per-scheduler response-time tails (p50/p99/p99.9) across
# offered-load factors to the snapshot; it simulates a few hundred million
# cycles (~5 minutes), so set BENCH_OPENLOAD=0 to skip it.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkCoreCycles|BenchmarkTraceAt|BenchmarkScheduleSample|BenchmarkSOSRun|BenchmarkFetch|BenchmarkIssue|BenchmarkRetire|BenchmarkBatchEval}"
BENCHTIME="${2:-1s}"
COUNT="${3:-5}"
FIG1="${BENCH_FIG1:-1}"
OPENLOAD="${BENCH_OPENLOAD:-1}"
if [ "$COUNT" -lt 5 ]; then
    echo "bench.sh: count must be >= 5 (got $COUNT); single-digit samples make min/median meaningless" >&2
    exit 1
fi
OUT="BENCH_$(date +%Y%m%d).json"
RAW="$(mktemp)"
FIG1RAW="$(mktemp)"
OPENLOADJSON="$(mktemp)"
trap 'rm -f "$RAW" "$FIG1RAW" "$OPENLOADJSON"' EXIT

echo "running: go test -run ^\$ -bench \"$PATTERN\" -benchtime $BENCHTIME -count $COUNT -benchmem ./..." >&2
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem ./... | tee "$RAW"

if [ "$FIG1" = "1" ]; then
    echo "running: cold Figure-1 sweep (fresh process, -benchtime 1x -count 1)" >&2
    go test -run '^$' -bench '^BenchmarkFigure1$' -benchtime 1x -count 1 . | tee "$FIG1RAW"
else
    : > "$FIG1RAW"
fi

if [ "$OPENLOAD" = "1" ]; then
    echo "running: open-system overload sweep (sosbench -exp openload -scale quick)" >&2
    go run ./cmd/sosbench -exp openload -scale quick -json "$OPENLOADJSON" >/dev/null
else
    : > "$OPENLOADJSON"
fi

# Aggregate the repeated `go test -bench` lines into a JSON snapshot.
# Each benchmark line has the shape:
#   BenchmarkName  N  t ns/op [m unit ...]  b B/op  a allocs/op
# and appears $COUNT times; the snapshot records min and median per
# metric, plus the actual per-sample b.N (a 1x benchtime pins N to 1; a
# time-based benchtime lets the harness pick it, and the snapshot must say
# which happened). A benchmark that produced fewer than 2 samples fails
# the run: one sample means the regex matched a benchmark that crashed or
# was skipped partway, and a snapshot built on it would record pure noise.
python3 - "$RAW" "$OUT" "$COUNT" "$BENCHTIME" "$FIG1RAW" "$OPENLOADJSON" <<'EOF'
import json, re, sys, datetime, statistics, subprocess, os

raw, out, want, benchtime, fig1raw, openloadjson = sys.argv[1:7]
want = int(want)

def parse(path):
    samples = {}
    for line in open(path):
        m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$', line)
        if not m:
            continue
        name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
        metrics = {}
        for val, unit in re.findall(r'([0-9.e+]+)\s+(\S+)', rest):
            metrics[unit] = float(val)
        samples.setdefault(name, []).append({"iterations": iters, "metrics": metrics})
    return samples

samples = parse(raw)
if not samples:
    sys.exit("bench.sh: no benchmark lines matched; check the pattern")

benches = {}
bad = []
for name, runs in sorted(samples.items()):
    if len(runs) < 2:
        bad.append(f"{name}: {len(runs)} sample(s), want {want}")
        continue
    units = sorted({u for r in runs for u in r["metrics"]})
    agg = {}
    for u in units:
        vals = [r["metrics"][u] for r in runs if u in r["metrics"]]
        agg[u] = {"min": min(vals), "median": statistics.median(vals)}
    benches[name] = {
        "samples": len(runs),
        "iterations_per_sample": [r["iterations"] for r in runs],
        "metrics": agg,
    }
if bad:
    sys.exit("bench.sh: benchmarks with too few samples to aggregate:\n  "
             + "\n  ".join(bad))

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip()
snapshot = {
    "date": datetime.date.today().isoformat(),
    "commit": commit,
    "go": subprocess.run(["go", "version"], capture_output=True,
                         text=True).stdout.strip(),
    "benchtime": benchtime,
    "benchmarks": benches,
}

# The open-system sweep's response-time tails, keyed dist/factor/scheduler
# so successive snapshots can diff the overload p99 directly.
if os.path.getsize(openloadjson) > 0:
    rows = json.load(open(openloadjson)).get("openload", [])
    snapshot["openload"] = {
        f'{r["Dist"]}/{r["Factor"]:.2f}x/{r["Scheduler"]}': {
            "p50": r["P50"], "p99": r["P99"], "p999": r["P999"],
            "mean": r["MeanResponse"], "completed": r["Completed"],
        }
        for r in rows
    }

fig1 = parse(fig1raw)
if "BenchmarkFigure1" in fig1:
    run = fig1["BenchmarkFigure1"][0]
    snapshot["figure1_sweep"] = {
        "wallclock_sec": run["metrics"]["ns/op"] / 1e9,
        "metrics": run["metrics"],
    }

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benchmarks, {want} samples each)", file=sys.stderr)
EOF
