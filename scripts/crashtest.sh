#!/usr/bin/env bash
# crashtest.sh — SIGKILL a checkpointed sweep mid-run and assert that
# resuming from its snapshot reproduces the uninterrupted run byte for byte.
#
# Usage:
#   scripts/crashtest.sh            # worker counts 1 and 8
#   scripts/crashtest.sh "4"        # a specific worker count list
#
# The experiment and mix are deliberately small (one robustness mix at quick
# scale) so the whole exercise — baseline, crash, resume, deadline abort —
# finishes in a few minutes.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKERS="${1:-1 8}"
EXP="${EXP:-robustness}"
MIX="${MIX:-Jsb(4,2,2)}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/sosbench" ./cmd/sosbench
REF=""

for w in $WORKERS; do
    echo "== crash test: -exp $EXP -workers $w =="
    base="$TMP/base-$w.json"
    ckpt="$TMP/crash-$w.ckpt"
    resumed="$TMP/resume-$w.json"

    # Uninterrupted baseline.
    "$TMP/sosbench" -exp "$EXP" -scale quick -mix "$MIX" -workers "$w" \
        -json "$base" >/dev/null
    [ -n "$REF" ] || REF="$base"

    # Checkpointed run, SIGKILLed as soon as the snapshot holds a shard.
    "$TMP/sosbench" -exp "$EXP" -scale quick -mix "$MIX" -workers "$w" \
        -checkpoint "$ckpt" -checkpoint-every 1 >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 1800); do
        if [ -f "$ckpt" ] && grep -q "$EXP/" "$ckpt"; then break; fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: run finished before it could be killed; no crash injected" >&2
            exit 1
        fi
        sleep 0.1
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null && status=0 || status=$?
    if [ "$status" -ne 137 ]; then
        echo "FAIL: run should have died from SIGKILL (exit 137), got $status" >&2
        exit 1
    fi
    if ! grep -q "$EXP/" "$ckpt"; then
        echo "FAIL: snapshot recorded no shards before the kill" >&2
        exit 1
    fi

    # Resume must engage the snapshot, finish cleanly, and match the baseline.
    # (Progress lines go to stderr; capture both streams for the check.)
    out="$("$TMP/sosbench" -exp "$EXP" -scale quick -mix "$MIX" -workers "$w" \
        -resume "$ckpt" -json "$resumed" 2>&1)"
    if ! printf '%s' "$out" | grep -q "resuming from"; then
        echo "FAIL: resume did not engage the snapshot" >&2
        exit 1
    fi
    if ! cmp "$base" "$resumed"; then
        echo "FAIL: resumed JSON differs from the uninterrupted baseline" >&2
        exit 1
    fi
    echo "ok: workers=$w resumed byte-identical after SIGKILL"
done

# A deadline abort must exit 3 and leave a snapshot a later run can resume.
echo "== deadline test: -deadline 20s =="
dl="$TMP/deadline.ckpt"
dlout="$TMP/deadline.json"
set +e
"$TMP/sosbench" -exp "$EXP" -scale quick -mix "$MIX" \
    -deadline 20s -checkpoint "$dl" >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 3 ]; then
    echo "FAIL: deadline abort exited $status, want 3" >&2
    exit 1
fi
"$TMP/sosbench" -exp "$EXP" -scale quick -mix "$MIX" \
    -resume "$dl" -json "$dlout" >/dev/null
if ! cmp "$REF" "$dlout"; then
    echo "FAIL: deadline-resumed JSON differs from the baseline" >&2
    exit 1
fi
echo "ok: deadline abort left a valid resumable snapshot"
echo "PASS"
