// Command promcheck validates a Prometheus text-format exposition read
// from stdin, using the same parser the unit tests run against the
// in-process registry (internal/obs.ParseText). CI pipes a live sosd
// /metrics scrape through it so a malformed exposition — or a pipeline
// stage that silently stopped reporting — fails the lint job.
//
// Usage:
//
//	curl -s http://$ADDR/metrics | go run ./scripts/promcheck \
//	    -require sosd_stage_seconds,sosd_http_requests_total
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"symbios/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	families, err := obs.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	var missing []string
	for _, fam := range strings.Split(*require, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		if _, ok := families[fam]; !ok {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: exposition valid but missing required families: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d families OK\n", len(families))
}
