#!/usr/bin/env bash
# metricscheck.sh — boot a live sosd, drive one rank and one adaptive
# request through the full pipeline, scrape /metrics, and validate the
# exposition with scripts/promcheck: well-formed Prometheus text format,
# with every pipeline-stage, request, simulator and SOS-span family
# present. CI's lint job runs this so a scrape regression fails fast.
#
# Usage:
#   scripts/metricscheck.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
cleanup() {
    [ -f "$TMP/sosd.pid" ] && kill "$(cat "$TMP/sosd.pid")" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/sosd" ./cmd/sosd

# Launch on an ephemeral port and parse the bound address from the logged
# contract line (same handshake as soak.sh).
LOG="$TMP/sosd.log"
"$TMP/sosd" -addr 127.0.0.1:0 </dev/null >/dev/null 2>"$LOG" &
PID=$!
echo "$PID" >"$TMP/sosd.pid"
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \(.*\)/\1/p' "$LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: sosd died on startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: sosd never logged its address" >&2
    exit 1
fi
echo "sosd up at $ADDR" >&2

# One request per mode, so both the rank path and the adaptive SOS loop
# (whose phase spans feed obs_span_seconds) have reported latencies.
curl -fsS -X POST -H 'X-Client-ID: metricscheck' \
    -d '{"mix":"Jsb(4,2,2)","seed":7,"samples":4}' \
    "http://$ADDR/v1/schedule" >/dev/null
curl -fsS -X POST -H 'X-Client-ID: metricscheck' \
    -d '{"mix":"Jsb(4,2,2)","seed":7,"samples":3,"mode":"adaptive"}' \
    "http://$ADDR/v1/schedule" >/dev/null

SCRAPE="$TMP/metrics.txt"
curl -fsS "http://$ADDR/metrics" >"$SCRAPE"

go run ./scripts/promcheck -require \
    sosd_stage_seconds,sosd_http_request_seconds,sosd_http_requests_total,sosd_limiter_admitted,sosd_limiter_shed,sosd_breaker_state,sosd_breaker_opens,sosd_queue_depth,sosd_queue_rejected,sosd_retry_budget_exhausted,sosd_draining,sim_slices_total,sim_cycles_total,sim_committed_total,sim_conflict_cycles_total,obs_span_seconds \
    <"$SCRAPE"

# Every pipeline stage must have recorded at least the rank request.
for stage in limiter decode cache breaker queue retry; do
    if ! grep -q "sosd_stage_seconds_count{stage=\"$stage\"}" "$SCRAPE"; then
        echo "FAIL: /metrics has no latency series for pipeline stage '$stage'" >&2
        exit 1
    fi
done

kill "$PID"
wait "$PID" 2>/dev/null || true
rm -f "$TMP/sosd.pid"
echo "PASS: /metrics exposition valid and complete" >&2
