#!/usr/bin/env bash
# fleetsoak.sh — soak a 1-front/3-backend sosd fleet and assert the fleet
# contract: paced load through sosfront survives a SIGKILLed backend with
# zero failed client requests (429/503 with Retry-After are allowed), every
# 200 is byte-identical to a single-node oracle, and the killed backend
# restarts, warms its response cache from a ring sibling before reporting
# ready, and serves its first post-warm request as a cache hit.
#
# A second phase drives bursty load through a batching front
# (-batch-window/-batch-max) against the same oracle: every batched item must
# come back byte-identical to its singleton answer (zero divergence), and the
# fleet_batch_* / sosd_batch_* counters must show the batch path actually
# carried the traffic.
#
# Usage:
#   scripts/fleetsoak.sh                 # 30-second soak + 10s batch phase
#   SOAK_SECONDS=10 scripts/fleetsoak.sh # shorter, for local smoke
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-30}"
BATCH_SECONDS="${BATCH_SECONDS:-10}"
KILL_AT=$((SOAK_SECONDS / 3))

TMP="$(mktemp -d)"
cleanup() {
    for pidf in "$TMP"/*.pid; do
        [ -f "$pidf" ] && kill "$(cat "$pidf")" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/sosd" ./cmd/sosd
go build -o "$TMP/sosfront" ./cmd/sosfront

# start_daemon NAME LOGFILE BIN ARGS...: launch a daemon on with its log in
# LOGFILE, record its pid in $TMP/NAME.pid, and echo the bound address
# parsed from the "listening on" contract line.
start_daemon() {
    local name="$1" logf="$2" bin="$3"
    shift 3
    "$bin" "$@" </dev/null >/dev/null 2>"$logf" &
    local pid=$!
    echo "$pid" >"$TMP/$name.pid"
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \(.*\)/\1/p' "$logf" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: $name died on startup:" >&2
            cat "$logf" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: $name never logged its address" >&2
        exit 1
    fi
    echo "$addr"
}

# stop_daemon NAME LOGFILE: SIGTERM and require a clean drained exit.
stop_daemon() {
    local name="$1" logf="$2"
    local pid
    pid="$(cat "$TMP/$name.pid")"
    kill -TERM "$pid"
    for _ in $(seq 1 200); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: $name still running 20s after SIGTERM" >&2
        exit 1
    fi
    if ! grep -q "drained cleanly" "$logf"; then
        echo "FAIL: no clean-drain line in $logf after SIGTERM:" >&2
        tail -5 "$logf" >&2
        exit 1
    fi
    rm -f "$TMP/$name.pid"
}

BACKEND_FLAGS=(-scale serve -rate 500 -queue 64 -workers 4 -drain 15s)

echo "== fleet: 1 oracle + 3 backends + sosfront =="
ORACLE="$(start_daemon oracle "$TMP/oracle.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/oracle.ckpt" "${BACKEND_FLAGS[@]}")"
B1="$(start_daemon b1 "$TMP/b1.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b1.ckpt" -checkpoint-every 1 "${BACKEND_FLAGS[@]}")"
B2="$(start_daemon b2 "$TMP/b2.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b2.ckpt" -checkpoint-every 1 "${BACKEND_FLAGS[@]}")"
B3="$(start_daemon b3 "$TMP/b3.log" "$TMP/sosd" \
    -addr 127.0.0.1:0 -checkpoint "$TMP/b3.ckpt" -checkpoint-every 1 "${BACKEND_FLAGS[@]}")"
FRONT="$(start_daemon front "$TMP/front.log" "$TMP/sosfront" \
    -addr 127.0.0.1:0 -backends "http://$B1,http://$B2,http://$B3" \
    -replicas 2 -drain 15s)"
echo "oracle=$ORACLE backends=$B1,$B2,$B3 front=$FRONT"

# Seed the warm canary into a surviving backend's cache: seed 4242 is
# outside the soak load's seed space (0..63), so only this request puts it
# there. After the kill/restart, b3 must answer it as a hit it could only
# have received from a sibling's cache transfer.
CANARY='{"mix":"Jsb(4,2,2)","seed":4242,"samples":2,"mode":"rank","deadline_ms":15000}'
curl -sf -X POST -H 'Content-Type: application/json' -d "$CANARY" \
    "http://$B1/v1/schedule" -o "$TMP/canary.b1" \
    || { echo "FAIL: canary seed request to b1 failed" >&2; exit 1; }

echo "== soak: ${SOAK_SECONDS}s through the front, SIGKILL b3 at t+${KILL_AT}s =="
"$TMP/sosfront" -soak "http://$FRONT" -oracle "http://$ORACLE" \
    -soak-duration "${SOAK_SECONDS}s" >"$TMP/soak.out" 2>"$TMP/soak.log" &
SOAK_PID=$!

sleep "$KILL_AT"
B3_PID="$(cat "$TMP/b3.pid")"
kill -KILL "$B3_PID"
rm -f "$TMP/b3.pid"
echo "killed b3 (pid $B3_PID)"
sleep 2

echo "== restart b3 with -warm-from, same address =="
start_daemon b3 "$TMP/b3-restart.log" "$TMP/sosd" \
    -addr "$B3" -checkpoint "$TMP/b3.ckpt" -checkpoint-every 1 \
    -warm-from "http://$B1,http://$B2" "${BACKEND_FLAGS[@]}" >/dev/null

# Wait until the restarted node reports ready (warm-up settled).
READY=""
for _ in $(seq 1 100); do
    if curl -sf "http://$B3/readyz" >/dev/null 2>&1; then
        READY=1
        break
    fi
    sleep 0.1
done
if [ -z "$READY" ]; then
    echo "FAIL: restarted b3 never became ready" >&2
    tail -5 "$TMP/b3-restart.log" >&2
    exit 1
fi
if ! grep -q "warmed .* cached responses" "$TMP/b3-restart.log"; then
    echo "FAIL: restarted b3 did not warm from a sibling:" >&2
    tail -5 "$TMP/b3-restart.log" >&2
    exit 1
fi
echo "ok: b3 restarted and warmed from a sibling"

# The restarted node's first canary answer must be a hit served from the
# sibling-transferred cache, byte-identical to the original.
curl -sf -X POST -H 'Content-Type: application/json' -d "$CANARY" \
    "http://$B3/v1/schedule" -o "$TMP/canary.b3" -D "$TMP/canary.hdr" \
    || { echo "FAIL: post-warm canary request to b3 failed" >&2; exit 1; }
if ! grep -qi '^x-cache: hit' "$TMP/canary.hdr"; then
    echo "FAIL: post-warm canary was not a cache hit:" >&2
    cat "$TMP/canary.hdr" >&2
    exit 1
fi
if ! cmp -s "$TMP/canary.b1" "$TMP/canary.b3"; then
    echo "FAIL: post-warm canary differs from the sibling's recording" >&2
    exit 1
fi
echo "ok: warm canary served as a byte-identical cache hit"

if ! wait "$SOAK_PID"; then
    echo "FAIL: fleet soak found violations:" >&2
    tail -20 "$TMP/soak.log" >&2
    exit 1
fi
grep -q "fleet soak passed" "$TMP/soak.out"
cat "$TMP/soak.out"
tail -1 "$TMP/soak.log" >&2 || true

# metric URL NAME: sum the values of a metric family (all label series) from
# a /metrics exposition.
metric() {
    curl -sf "$1/metrics" | awk -v name="$2" \
        '$1 == name || index($1, name"{") == 1 { s += $NF } END { print s+0 }'
}

echo "== batch phase: ${BATCH_SECONDS}s of bursty load through a batching front =="
FRONT2="$(start_daemon front2 "$TMP/front2.log" "$TMP/sosfront" \
    -addr 127.0.0.1:0 -backends "http://$B1,http://$B2,http://$B3" \
    -replicas 2 -batch-window 25ms -batch-max 8 -drain 15s)"
if ! "$TMP/sosfront" -soak "http://$FRONT2" -oracle "http://$ORACLE" \
    -soak-duration "${BATCH_SECONDS}s" -soak-rate 20 -soak-burst 6 \
    >"$TMP/batchsoak.out" 2>"$TMP/batchsoak.log"; then
    echo "FAIL: batch-phase soak found violations (batched bytes must equal singleton bytes):" >&2
    tail -20 "$TMP/batchsoak.log" >&2
    exit 1
fi
grep -q "fleet soak passed" "$TMP/batchsoak.out"
tail -1 "$TMP/batchsoak.log" >&2 || true

FLUSHES="$(metric "http://$FRONT2" fleet_batch_flushes_total)"
ITEMS="$(metric "http://$FRONT2" fleet_batch_items_total)"
if [ "${FLUSHES%.*}" -lt 1 ] || [ "${ITEMS%.*}" -lt 1 ]; then
    echo "FAIL: front batching never engaged (flushes=$FLUSHES items=$ITEMS)" >&2
    exit 1
fi
SRV_BATCHED=0
for b in "$B1" "$B2" "$B3"; do
    v="$(metric "http://$b" sosd_batch_requests_total)"
    SRV_BATCHED=$((SRV_BATCHED + ${v%.*}))
done
if [ "$SRV_BATCHED" -lt 1 ]; then
    echo "FAIL: no backend ever served a batch call (sosd_batch_requests_total=0 everywhere)" >&2
    exit 1
fi
echo "ok: batch phase carried $ITEMS items over $FLUSHES flushes ($SRV_BATCHED batch calls served), zero divergence"

echo "== drain the fleet =="
stop_daemon front2 "$TMP/front2.log"
stop_daemon front "$TMP/front.log"
stop_daemon b3 "$TMP/b3-restart.log"
stop_daemon b2 "$TMP/b2.log"
stop_daemon b1 "$TMP/b1.log"
stop_daemon oracle "$TMP/oracle.log"
echo "PASS"
