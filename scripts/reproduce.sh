#!/bin/sh
# Reproduce the full evaluation record.
#
#   scripts/reproduce.sh           # default scale (tens of minutes)
#   scripts/reproduce.sh quick     # test scale (minutes)
#   scripts/reproduce.sh paper     # the paper's cycle budgets (hours)
#
# Outputs:
#   experiments_output.txt  - every table and figure, paper-formatted
#   experiments.json        - the same results, structured
#   test_output.txt         - full test suite log
#   bench_output.txt        - benchmark harness log (one bench per figure)
set -e
SCALE="${1:-default}"

go build ./...
go vet ./...

go run ./cmd/sosbench -exp all -scale "$SCALE" -seed 1 \
    -json experiments.json | tee experiments_output.txt

go test -timeout 60m ./... 2>&1 | tee test_output.txt
go test -timeout 90m -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
