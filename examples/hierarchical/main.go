// Hierarchical: let the scheduler decide how many contexts each
// multithreaded job receives (Section 7).
//
// On a 3-context machine running the parallel jobs ARRAY and EP, the
// scheduler can devote 2 contexts to ARRAY and 1 to EP, or vice versa, or
// keep both single-threaded and add a third job. This program evaluates
// the allocations directly and shows the kind of difference hierarchical
// symbiosis exploits; the full Figure 4 study lives in
// internal/experiments and `sosbench -exp fig4`.
package main

import (
	"fmt"
	"log"

	"symbios/internal/arch"
	"symbios/internal/cpu"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

// alloc is one way to divide the machine's contexts between two jobs.
type alloc struct {
	name         string
	arrayThreads int
	epThreads    int
}

func main() {
	const contexts = 3
	cfg := arch.Default21264(contexts)

	allocs := []alloc{
		{"ARRAY x2 + EP x1", 2, 1},
		{"ARRAY x1 + EP x2", 1, 2},
	}

	for _, a := range allocs {
		ipc, perJob, err := run(cfg, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s aggregate IPC %.3f  (mt_ARRAY %.3f, mt_EP %.3f)\n",
			a.name, ipc, perJob[0], perJob[1])
	}
	fmt.Println("\nThe allocations differ: a hierarchical SOS tries both in its sample")
	fmt.Println("phase and keeps the better one — and the best split can change when a")
	fmt.Println("third job joins the mix (run `sosbench -exp fig4`).")
}

// run coschedules mt_ARRAY and mt_EP with the given thread counts for a
// fixed interval and returns aggregate and per-job IPC.
func run(cfg arch.Config, a alloc) (float64, [2]float64, error) {
	var perJob [2]float64
	specs := []workload.Spec{
		workload.MustLookup("mt_ARRAY").WithThreads(a.arrayThreads),
		workload.MustLookup("mt_EP").WithThreads(a.epThreads),
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return 0, perJob, err
	}
	ctx := 0
	type span struct{ lo, hi int }
	var spans [2]span
	for ji, spec := range specs {
		job, err := workload.NewJob(spec, ji, rng.Hash2(11, uint64(ji), 5))
		if err != nil {
			return 0, perJob, err
		}
		spans[ji].lo = ctx
		for t := 0; t < job.Threads(); t++ {
			c.Attach(ctx, job.Source(t), 0, job.Gate(), t)
			ctx++
		}
		spans[ji].hi = ctx
	}

	const warmup, measure = 1_000_000, 1_000_000
	c.Run(warmup)
	before := c.Snapshot()
	var committed [8]uint64
	for i := 0; i < ctx; i++ {
		committed[i] = c.ThreadCommitted(i)
	}
	c.Run(measure)
	d := c.Snapshot().Sub(before)

	for ji, sp := range spans {
		var n uint64
		for i := sp.lo; i < sp.hi; i++ {
			n += c.ThreadCommitted(i) - committed[i]
		}
		perJob[ji] = float64(n) / measure
	}
	return d.IPC(), perJob, nil
}
