// Responsetime: an open system with random arrivals, naive versus SOS.
//
// Jobs arrive with exponential interarrival times, run for exponentially
// distributed amounts of work, and depart (Section 9). The same scripted
// arrival sequence is fed to the naive arrival-order scheduler and to SOS
// (which resamples on every arrival, departure, or symbiosis-timer expiry,
// with exponential backoff while its prediction stays confirmed). The
// program reports the mean response time under each and the improvement.
package main

import (
	"fmt"
	"log"

	"symbios/internal/arch"
	"symbios/internal/experiments"
	"symbios/internal/queueing"
	"symbios/internal/rng"
)

func main() {
	const level = 3
	cfg := arch.Default21264(level)
	qs := experiments.QuickQueueScale()

	fmt.Printf("calibrating solo rates for the job generator...\n")
	solo, err := queueing.CalibrateSolo(cfg, qs.CalibWarmup, qs.CalibMeasure)
	if err != nil {
		log.Fatal(err)
	}

	// Arrival rate near 90% of machine capacity, so the system stays
	// stable with roughly 2 x SMT-level jobs present (Little's law).
	interarrival := qs.MeanJobCycles / (0.9 * 0.4 * level)
	script, err := queueing.GenerateScript(rng.Hash2(qs.Seed, level, 0x5c21),
		interarrival, qs.MeanJobCycles, qs.Horizon, solo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d arrivals over %d cycles (mean interarrival %.0f, mean job %.0f cycles)\n",
		len(script.Arrivals), qs.Horizon, interarrival, qs.MeanJobCycles)

	naive, err := queueing.RunNaive(cfg, qs.Slice, script, qs.Horizon)
	if err != nil {
		log.Fatal(err)
	}
	sos, err := queueing.RunSOS(cfg, qs.Slice, script, qs.Horizon, queueing.DefaultSOSOptions(script))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nnaive scheduler: %d completed, mean response %.0f cycles, N~%.1f\n",
		naive.Completed, naive.MeanResponse, naive.MeanInSystem)
	fmt.Printf("SOS scheduler:   %d completed, mean response %.0f cycles, N~%.1f\n",
		sos.Completed, sos.MeanResponse, sos.MeanInSystem)
	if naive.MeanResponse > 0 {
		fmt.Printf("response time improvement: %.1f%%\n",
			100*(naive.MeanResponse-sos.MeanResponse)/naive.MeanResponse)
	}
}
