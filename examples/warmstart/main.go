// Warmstart: compare full-swap scheduling with swapping one job at a time
// (Section 8).
//
// Swapping only one job per timeslice lengthens every job's resident
// timeslice (coldstart costs amortize over more cycles, and the other
// resident jobs hide the newcomer's cache-warming latencies) and reduces
// per-switch pressure on the memory subsystem. This program evaluates the
// Jsb(6,3,3) jobmix under both policies at equal per-job CPU shares and
// reports the average weighted speedup of the sampled schedules under each.
package main

import (
	"fmt"
	"log"

	"symbios/internal/experiments"
)

func main() {
	sc := experiments.QuickScale()

	type policy struct {
		label string
		desc  string
	}
	policies := []policy{
		{"Jsb(6,3,3)", "full swap, big timeslice (all 3 jobs replaced)"},
		{"Jsb(6,3,1)", "warmstart, big timeslice (1 job replaced per slice)"},
		{"Jsl(6,3,1)", "warmstart, little timeslice"},
	}

	var base float64
	for i, p := range policies {
		ev, err := experiments.EvalMixCached(p.label, sc)
		if err != nil {
			log.Fatal(err)
		}
		avg, best := ev.Avg(), ev.Best()
		if i == 0 {
			base = avg
			fmt.Printf("%-12s avg WS %.3f  best %.3f   (%s)\n", p.label, avg, best, p.desc)
			continue
		}
		fmt.Printf("%-12s avg WS %.3f  best %.3f  %+.1f%% vs full swap  (%s)\n",
			p.label, avg, best, 100*(avg-base)/base, p.desc)
	}
	fmt.Println("\nSymbiosis scheduling works under both policies; the paper reports a")
	fmt.Println("~7% average warmstart gain at the big timeslice and a negligible one")
	fmt.Println("at the little timeslice.")
}
