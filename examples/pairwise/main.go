// Pairwise: the symbiosis matrix that motivated SOS.
//
// Before the ASPLOS paper, the authors explored symbiosis by coscheduling
// benchmark pairs and measuring the speedup of each combination
// ("Explorations in symbiosis on two multithreaded architectures", WMTEA
// 1999). This program reproduces that exploration on the simulated SMT
// core: every pair of benchmarks runs together on a 2-context machine and
// the matrix of weighted speedups is printed. Rows with high variance are
// jobs whose performance depends strongly on their partner — exactly the
// jobs a symbiosis-aware scheduler helps.
package main

import (
	"fmt"
	"log"
	"os"

	"symbios/internal/experiments"
	"symbios/internal/metrics"
	"symbios/internal/report"
)

func main() {
	sc := experiments.QuickScale()
	names := []string{"FP", "MG", "GCC", "GO", "IS", "EP"}

	fmt.Printf("measuring %d pairs (plus %d solo calibrations)...\n\n",
		len(names)*(len(names)-1)/2, len(names))
	tbl, err := experiments.Pairwise(sc, names)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Matrix(os.Stdout, tbl.Names, tbl.WS); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for i, n := range tbl.Names {
		row := make([]float64, 0, len(names)-1)
		for j := range tbl.Names {
			if i != j {
				row = append(row, tbl.WS[i][j])
			}
		}
		fmt.Printf("%-5s best partner WS %.3f, worst %.3f (spread %.1f%%)\n",
			n, metrics.Max(row), metrics.Min(row),
			100*(metrics.Max(row)-metrics.Min(row))/metrics.Min(row))
	}
}
