// Predictors: compare every dynamic predictor on one jobmix.
//
// Reproduces the Section 5.2 study in miniature: enumerate all 10 schedules
// of Jsb(6,3,3), collect sample-phase counter data for each, run each for a
// symbios phase to learn its true weighted speedup, and show which schedule
// each predictor would have picked — the paper's Table 3 plus Figure 2.
package main

import (
	"fmt"
	"log"

	"symbios/internal/core"
	"symbios/internal/experiments"
)

func main() {
	sc := experiments.QuickScale()
	rows, ev, err := experiments.Table3(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %6s %8s %6s %6s %6s %8s | %6s\n",
		"Schedule", "IPC", "AllConf", "FQ", "FP", "Sum2", "Balance", "WS(t)")
	for _, r := range rows {
		fmt.Printf("%-10s %6.3f %8.1f %6.2f %6.2f %6.2f %8.3f | %6.3f\n",
			r.Schedule, r.IPC, r.AllConf, r.FQ, r.FP, r.Sum2, r.Balance, r.WS)
	}

	fmt.Printf("\nbest %.3f  worst %.3f  average (oblivious scheduler) %.3f\n\n",
		ev.Best(), ev.Worst(), ev.Avg())

	for _, p := range core.Predictors() {
		idx := core.Pick(ev.Samples, p)
		ws := ev.WS[idx]
		verdict := "ok"
		switch {
		case ws >= ev.Best()-1e-9:
			verdict = "found the best schedule"
		case ws <= ev.Worst()+1e-9:
			verdict = "picked the WORST schedule"
		case ws >= ev.Avg():
			verdict = "beat the random scheduler"
		default:
			verdict = "below the random scheduler"
		}
		fmt.Printf("%-10s -> %-10s WS %.3f  (%s)\n", p, ev.Scheds[idx], ws, verdict)
	}
}
