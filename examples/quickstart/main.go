// Quickstart: run the complete SOS pipeline on one jobmix.
//
// The program builds the paper's Jsb(6,3,3) jobmix (6 single-threaded jobs
// on a 3-context SMT processor, whole running set swapped each timeslice),
// calibrates each job's solo offer rate, lets SOS sample the schedule space
// and pick a schedule with the Score predictor, runs the symbios phase, and
// reports the weighted speedup achieved.
package main

import (
	"fmt"
	"log"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

func main() {
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)

	const seed = 7
	jobs, err := mix.Build(seed)
	if err != nil {
		log.Fatal(err)
	}

	// Solo offer rates: the weighted-speedup denominators.
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(seed, uint64(i), 0x3017)
	}
	solo, err := core.SoloRates(cfg, jobs, seeds, 1_000_000, 400_000)
	if err != nil {
		log.Fatal(err)
	}
	for i, j := range jobs {
		fmt.Printf("%-6s solo IPC %.3f\n", j.Name(), solo[i])
	}

	// SOS: sample, optimize, symbios.
	m, err := core.NewMachine(cfg, jobs, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(m, mix.SMTLevel, mix.Swap, solo, core.Options{
		Samples:       10,
		Predictor:     core.PredScore,
		SymbiosSlices: 60,
		WarmupCycles:  2_000_000,
		Seed:          seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsampled %d schedules over %d cycles:\n", len(res.Samples), res.SampleCycles)
	for i, s := range res.Samples {
		marker := " "
		if i == res.ChosenIdx {
			marker = "*"
		}
		fmt.Printf(" %s %-10s sample IPC %.3f  FQ %.2f%%  FP %.2f%%  balance %.3f\n",
			marker, s.Sched, s.IPC, s.FQ, s.FP, s.Balance)
	}
	fmt.Printf("\nchosen schedule %s -> symbios weighted speedup %.3f over %d cycles\n",
		res.Chosen, res.WeightedSpeedup, res.Symbios.Cycles)
}
