module symbios

go 1.22
