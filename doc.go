// Package symbios reproduces Snavely & Tullsen, "Symbiotic Jobscheduling
// for a Simultaneous Multithreading Processor" (ASPLOS 2000): the SOS
// (Sample, Optimize, Symbios) jobscheduler, a cycle-level SMT processor
// simulator standing in for SMTSIM, synthetic SPEC95/NPB workload models,
// and drivers that regenerate every table and figure of the paper's
// evaluation.
//
// Entry points:
//
//   - internal/core — the SOS scheduler (the paper's contribution)
//   - internal/cpu — the simulated SMT processor
//   - internal/experiments — one driver per table/figure
//   - cmd/sosbench — CLI over the experiment drivers
//   - examples/ — runnable walkthroughs
//
// The root package carries only documentation and the benchmark harness
// (bench_test.go), which regenerates every table and figure via `go test
// -bench=.`.
package symbios
