package metrics_test

import (
	"fmt"

	"symbios/internal/metrics"
)

// The worked example from the paper's Section 4: two jobs with solo IPCs 2
// and 1 coscheduled for one million cycles. If each merely receives its
// fair share of the machine, WS(t) = 1; if coscheduling raises utilization
// by 20% for both, WS(t) = 1.2.
func ExampleWeightedSpeedup() {
	cycles := uint64(1_000_000)
	solo := []float64{2, 1}

	ws, _ := metrics.WeightedSpeedup(cycles, []uint64{1_000_000, 500_000}, solo)
	fmt.Printf("fair share: %.1f\n", ws)

	ws, _ = metrics.WeightedSpeedup(cycles, []uint64{1_200_000, 600_000}, solo)
	fmt.Printf("with multithreading speedup: %.1f\n", ws)
	// Output:
	// fair share: 1.0
	// with multithreading speedup: 1.2
}
