// Package metrics implements the paper's progress measure, weighted
// speedup, plus the small statistics helpers the predictors use.
//
// Weighted speedup over an interval t (Section 4):
//
//	WS(t) = Σ_i realizedIPC(job_i) / soloIPC(job_i)
//
// where realized IPC is the job's committed instructions divided by the
// interval's total cycles (including cycles the job was swapped out), and
// solo IPC is its natural offer rate running alone. WS of any fair or
// unfair time-shared single-threaded system is 1; values above 1 measure
// real multithreading speedup, and pathological interactions can push it
// below 1.
package metrics

import (
	"fmt"
	"math"
)

// WeightedSpeedup computes WS(t) for an interval of the given length.
// committed[i] and soloIPC[i] describe schedulable entry i. It returns an
// error when the inputs are inconsistent or a solo IPC is non-positive,
// which would make the metric meaningless.
func WeightedSpeedup(cycles uint64, committed []uint64, soloIPC []float64) (float64, error) {
	if len(committed) != len(soloIPC) {
		return 0, fmt.Errorf("metrics: %d committed counts vs %d solo rates", len(committed), len(soloIPC))
	}
	if cycles == 0 {
		return 0, fmt.Errorf("metrics: zero-length interval")
	}
	ws := 0.0
	for i, c := range committed {
		if soloIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: job %d has non-positive solo IPC %g", i, soloIPC[i])
		}
		ws += float64(c) / float64(cycles) / soloIPC[i]
	}
	return ws, nil
}

// The stat helpers below come from fault-tolerance review: IPC series can
// legitimately be empty (a window cancelled before its first slice) or
// carry NaN/Inf (a division on corrupted counter reads), and a predictor
// must degrade to a defined zero rather than panic or poison every
// downstream aggregate. Non-finite elements are skipped, and the empty
// (or all-non-finite) input yields 0.

// finite reports whether x can participate in an aggregate.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Mean returns the arithmetic mean of the finite elements of xs (0 when
// none are finite).
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if finite(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of the finite elements
// of xs (0 when fewer than two are finite).
func StdDev(xs []float64) float64 {
	m, n := Mean(xs), 0
	ss := 0.0
	for _, x := range xs {
		if finite(x) {
			d := x - m
			ss += d * d
			n++
		}
	}
	if n < 2 {
		return 0
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest finite element of xs (0 when none are finite).
func Min(xs []float64) float64 {
	m, found := 0.0, false
	for _, x := range xs {
		if finite(x) && (!found || x < m) {
			m, found = x, true
		}
	}
	return m
}

// Max returns the largest finite element of xs (0 when none are finite).
func Max(xs []float64) float64 {
	m, found := 0.0, false
	for _, x := range xs {
		if finite(x) && (!found || x > m) {
			m, found = x, true
		}
	}
	return m
}
