// Package metrics implements the paper's progress measure, weighted
// speedup, plus the small statistics helpers the predictors use.
//
// Weighted speedup over an interval t (Section 4):
//
//	WS(t) = Σ_i realizedIPC(job_i) / soloIPC(job_i)
//
// where realized IPC is the job's committed instructions divided by the
// interval's total cycles (including cycles the job was swapped out), and
// solo IPC is its natural offer rate running alone. WS of any fair or
// unfair time-shared single-threaded system is 1; values above 1 measure
// real multithreading speedup, and pathological interactions can push it
// below 1.
package metrics

import (
	"fmt"
	"math"
)

// WeightedSpeedup computes WS(t) for an interval of the given length.
// committed[i] and soloIPC[i] describe schedulable entry i. It returns an
// error when the inputs are inconsistent or a solo IPC is non-positive,
// which would make the metric meaningless.
func WeightedSpeedup(cycles uint64, committed []uint64, soloIPC []float64) (float64, error) {
	if len(committed) != len(soloIPC) {
		return 0, fmt.Errorf("metrics: %d committed counts vs %d solo rates", len(committed), len(soloIPC))
	}
	if cycles == 0 {
		return 0, fmt.Errorf("metrics: zero-length interval")
	}
	ws := 0.0
	for i, c := range committed {
		if soloIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: job %d has non-positive solo IPC %g", i, soloIPC[i])
		}
		ws += float64(c) / float64(cycles) / soloIPC[i]
	}
	return ws, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
