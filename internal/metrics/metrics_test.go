package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// TestWSSoloIsOne is the paper's defining property: a single-threaded job
// running alone — or any time-shared single-threaded system, fair or not —
// has weighted speedup exactly 1.
func TestWSSoloIsOne(t *testing.T) {
	// One job alone.
	ws, err := WeightedSpeedup(1000, []uint64{2000}, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1) > 1e-12 {
		t.Errorf("solo WS %f, want 1", ws)
	}

	// Unfair time-sharing of two jobs on one context: job 0 gets 70% of
	// the cycles, job 1 gets 30%; each runs at its solo rate while on CPU.
	ws, err = WeightedSpeedup(1000, []uint64{uint64(700 * 2.0), uint64(300 * 0.5)}, []float64{2.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1) > 1e-12 {
		t.Errorf("time-shared WS %f, want 1", ws)
	}
}

// TestWSTimeSharedProperty generalizes the above with testing/quick: any
// split of the interval across jobs running at solo speed yields WS = 1.
func TestWSTimeSharedProperty(t *testing.T) {
	f := func(split uint16, ipcA, ipcB uint8) bool {
		cycles := uint64(10_000)
		share := uint64(split) % cycles
		sa := float64(ipcA%40)/10 + 0.1
		sb := float64(ipcB%40)/10 + 0.1
		ca := float64(share) * sa
		cb := float64(cycles-share) * sb
		ws, err := WeightedSpeedup(cycles, []uint64{uint64(ca), uint64(cb)}, []float64{sa, sb})
		if err != nil {
			return false
		}
		// Truncating a committed count to an integer costs each job up to
		// 1/(cycles*solo) of WS; with solo as low as 0.1 that is 1e-3 per
		// job, so two jobs can reach (and previously hit exactly) 2e-3.
		return math.Abs(ws-1) <= 2e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWSPaperExample reproduces the worked example from Section 4: solo
// IPCs 2 and 1 coscheduled for 1M cycles; fair-share progress gives WS=1,
// a utilization gain gives WS=1.2.
func TestWSPaperExample(t *testing.T) {
	cycles := uint64(1_000_000)
	solo := []float64{2, 1}
	ws, err := WeightedSpeedup(cycles, []uint64{1_000_000, 500_000}, solo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1) > 1e-12 {
		t.Errorf("fair-share WS %f, want 1", ws)
	}
	ws, err = WeightedSpeedup(cycles, []uint64{1_200_000, 600_000}, solo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1.2) > 1e-12 {
		t.Errorf("utilization-gain WS %f, want 1.2", ws)
	}
}

// TestWSErrors rejects inconsistent input.
func TestWSErrors(t *testing.T) {
	if _, err := WeightedSpeedup(0, []uint64{1}, []float64{1}); err == nil {
		t.Error("zero-length interval accepted")
	}
	if _, err := WeightedSpeedup(10, []uint64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup(10, []uint64{1}, []float64{0}); err == nil {
		t.Error("zero solo IPC accepted")
	}
	if _, err := WeightedSpeedup(10, []uint64{1}, []float64{-1}); err == nil {
		t.Error("negative solo IPC accepted")
	}
}

// TestStats covers the helpers.
func TestStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean %f", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("stddev %f", StdDev(xs))
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("min/max %f/%f", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

// TestStatsDegenerate pins the fault-tolerance contract of every helper:
// empty, single-element and NaN/Inf-poisoned inputs yield defined values
// (the finite aggregate, or zero) instead of panicking or propagating the
// poison into downstream predictor scores.
func TestStatsDegenerate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name                     string
		xs                       []float64
		mean, stddev, xmin, xmax float64
	}{
		{"nil", nil, 0, 0, 0, 0},
		{"empty", []float64{}, 0, 0, 0, 0},
		{"single", []float64{3}, 3, 0, 3, 3},
		{"single NaN", []float64{nan}, 0, 0, 0, 0},
		{"all non-finite", []float64{nan, inf, -inf}, 0, 0, 0, 0},
		{"NaN amid values", []float64{2, nan, 4}, 3, 1, 2, 4},
		{"Inf amid values", []float64{2, inf, 4, -inf}, 3, 1, 2, 4},
		{"one finite one NaN", []float64{5, nan}, 5, 0, 5, 5},
		{"negatives", []float64{-2, -8}, -5, 3, -8, -2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.xs); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := StdDev(c.xs); got != c.stddev {
				t.Errorf("StdDev = %v, want %v", got, c.stddev)
			}
			if got := Min(c.xs); got != c.xmin {
				t.Errorf("Min = %v, want %v", got, c.xmin)
			}
			if got := Max(c.xs); got != c.xmax {
				t.Errorf("Max = %v, want %v", got, c.xmax)
			}
		})
	}
}
