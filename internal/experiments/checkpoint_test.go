package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"symbios/internal/checkpoint"
	"symbios/internal/faults"
	"symbios/internal/parallel"
)

// The crash-injection tests prove the tentpole invariant: killing a sweep at
// an arbitrary point and resuming from its snapshot produces byte-identical
// experiment JSON to an uninterrupted run, at any worker count.

// crashScale is the smallest budget that still runs every robustness code
// path (calibration, naive baseline, static predictors, adaptive + churn).
func crashScale() Scale {
	sc := quickRobustScale()
	sc.SymbiosCycles = 800_000
	return sc
}

var (
	crashLabels = []string{"Jsb(4,2,2)"}
	crashLevels = []faults.Config{{}, {NoiseSigma: 0.10}, {NoiseSigma: 0.20}}
)

// crashBaselineJSON computes the uninterrupted sweep exactly once and shares
// it across the crash tests — by the determinism contract the baseline does
// not depend on the worker count in force when it is computed.
var (
	crashBaselineOnce sync.Once
	crashBaseline     []byte
	crashBaselineErr  error
)

func crashBaselineJSON(t *testing.T) []byte {
	t.Helper()
	crashBaselineOnce.Do(func() {
		rows, err := RobustnessCtx(context.Background(), crashScale(), crashLabels, crashLevels, DefaultChurn())
		if err != nil {
			crashBaselineErr = err
			return
		}
		crashBaseline, crashBaselineErr = json.Marshal(rows)
	})
	if crashBaselineErr != nil {
		t.Fatal(crashBaselineErr)
	}
	return crashBaseline
}

// TestCrashResumeByteIdentical kills the sweep as soon as its first shard is
// checkpointed, resumes from the snapshot, and requires the resumed run's
// JSON to equal the uninterrupted baseline's byte for byte — at workers=1
// and workers=8.
func TestCrashResumeByteIdentical(t *testing.T) {
	baseline := crashBaselineJSON(t)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withWorkers(t, workers, func() {
				sc := crashScale()
				dir := t.TempDir()
				path := filepath.Join(dir, "crash.ckpt")
				meta := checkpoint.Meta{Exp: "robustness", Scale: "crash-test", Seed: sc.Seed, Mix: crashLabels[0]}

				// The "crash": cancel the run the moment the first shard
				// lands in the snapshot, mid-sweep, from outside.
				rec := checkpoint.NewRecorder(path, meta, 1)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				ctx = checkpoint.WithRecorder(ctx, rec)
				go func() {
					for rec.Shards() == 0 {
						time.Sleep(time.Millisecond)
					}
					cancel()
				}()
				_, runErr := RobustnessCtx(ctx, sc, crashLabels, crashLevels, DefaultChurn())
				if runErr != nil && !errors.Is(runErr, context.Canceled) {
					t.Fatalf("interrupted run failed with %v, want a context.Canceled abort", runErr)
				}
				if err := rec.Flush(); err != nil {
					t.Fatal(err)
				}
				if rec.Shards() == 0 {
					t.Fatal("no shards checkpointed before the kill")
				}

				// The resume: a fresh recorder from the snapshot, writing to
				// a new path so the crashed file stays inspectable.
				rec2, err := checkpoint.Resume(path, filepath.Join(dir, "resume.ckpt"), meta, 1)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := RobustnessCtx(checkpoint.WithRecorder(context.Background(), rec2), sc, crashLabels, crashLevels, DefaultChurn())
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(rows)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, baseline) {
					t.Fatalf("resumed run is not byte-identical to the uninterrupted baseline:\n%s\nvs\n%s", got, baseline)
				}
				if rec2.Hits() == 0 {
					t.Error("resume recomputed every shard; the snapshot replay never engaged")
				}
			})
		})
	}
}

// TestDeadlineAbortLeavesValidSnapshot: a deadline abort must surface as
// context.DeadlineExceeded (never masked by the fan-out's cancellation
// plumbing), and the flushed snapshot must load cleanly and drive a resume
// that matches the uninterrupted baseline.
func TestDeadlineAbortLeavesValidSnapshot(t *testing.T) {
	baseline := crashBaselineJSON(t)
	sc := crashScale()
	dir := t.TempDir()
	path := filepath.Join(dir, "deadline.ckpt")
	meta := checkpoint.Meta{Exp: "robustness", Scale: "crash-test", Seed: sc.Seed, Mix: crashLabels[0]}

	rec := checkpoint.NewRecorder(path, meta, 1)
	dl, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RobustnessCtx(checkpoint.WithRecorder(dl, rec), sc, crashLabels, crashLevels, DefaultChurn())
	if !errorsIsDeadline(err) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("deadline-abort snapshot does not load: %v", err)
	}
	if snap.Meta != meta {
		t.Fatalf("snapshot meta %+v, want %+v", snap.Meta, meta)
	}

	rec2, err := checkpoint.Resume(path, "", meta, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RobustnessCtx(checkpoint.WithRecorder(context.Background(), rec2), sc, crashLabels, crashLevels, DefaultChurn())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Fatal("deadline-resumed run is not byte-identical to the uninterrupted baseline")
	}
}

// errorsIsDeadline reports whether err carries context.DeadlineExceeded.
func errorsIsDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// TestShardedMapWatchdogBrackets: shardedMap must report each shard to a
// context-carried watchdog, so stalls are attributed to the shard key.
func TestShardedMapWatchdogBrackets(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	wd := checkpoint.NewWatchdog(checkpoint.WatchdogConfig{Poll: time.Hour})
	defer wd.Stop()
	ctx := checkpoint.WithWatchdog(context.Background(), wd)
	items := []int{0, 1, 2, 3}
	_, err := shardedMap(ctx, "wdtest", items, parallel.Options{}, func(_ context.Context, _ int, v int) (int, error) {
		mu.Lock()
		seen++
		mu.Unlock()
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(items) {
		t.Fatalf("computed %d shards, want %d", seen, len(items))
	}
	if wd.Stalled() {
		t.Fatal("healthy fan-out flagged as stalled")
	}
}
