package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/parallel"
	"symbios/internal/queueing"
	"symbios/internal/rng"
)

// ResponseRow is one bar of Figure 5 (or one point of Figure 6): the mean
// response time delivered by the naive scheduler and by SOS on an identical
// arrival sequence, and the improvement.
type ResponseRow struct {
	SMTLevel         int
	Lambda           float64 // mean interarrival in cycles
	NaiveResponse    float64
	SOSResponse      float64
	ImprovementPct   float64
	NaiveCompleted   int
	SOSCompleted     int
	MeanJobsInSystem float64 // under SOS, for Little's-law sanity checks
}

// QueueScale sets the open-system experiment budgets.
type QueueScale struct {
	// Slice is the timeslice in cycles.
	Slice uint64
	// MeanJobCycles is T, the mean job length (the paper centers jobs
	// around 2B cycles; scaled here).
	MeanJobCycles float64
	// Horizon is the simulated duration per run.
	Horizon uint64
	// CalibWarmup/CalibMeasure size the one-time solo IPC calibration.
	CalibWarmup, CalibMeasure uint64
	// Seed drives script generation.
	Seed uint64
}

// DefaultQueueScale mirrors DefaultScale's 1/50 reduction.
func DefaultQueueScale() QueueScale {
	return QueueScale{
		Slice:         100_000,
		MeanJobCycles: 2_000_000,
		Horizon:       80_000_000,
		CalibWarmup:   1_500_000,
		CalibMeasure:  500_000,
		Seed:          9,
	}
}

// QuickQueueScale is the unit-test variant.
func QuickQueueScale() QueueScale {
	return QueueScale{
		Slice:         50_000,
		MeanJobCycles: 500_000,
		Horizon:       12_000_000,
		CalibWarmup:   800_000,
		CalibMeasure:  300_000,
		Seed:          9,
	}
}

// ResponseCompare runs naive and SOS schedulers on one scripted system.
// lambdaFactor scales the offered arrival rate (1.0 sits near 90% of the
// machine's solo-job-equivalent capacity, which settles the system around
// N ~= 2 x SMT level; above 1.0 the load is heavier).
func ResponseCompare(level int, qs QueueScale, lambdaFactor float64) (ResponseRow, error) {
	if level < 1 {
		return ResponseRow{}, fmt.Errorf("experiments: SMT level %d", level)
	}
	cfg := arch.Default21264(level)
	solo, err := queueing.CalibrateSolo(cfg, qs.CalibWarmup, qs.CalibMeasure)
	if err != nil {
		return ResponseRow{}, err
	}
	// The machine completes roughly WS solo-job-equivalents per cycle, and
	// WS grows with the multithreading level (~0.4 x level near
	// saturation). Little's law (N = lambda x R) then settles the system
	// near N ~ 2 x level when the arrival rate runs at ~90% of that
	// capacity; lambdaFactor scales the load for the Figure 6 sweep.
	capacity := 0.4 * float64(level) // solo-job equivalents per job length T
	rate := 0.9 * capacity / qs.MeanJobCycles * lambdaFactor
	interarrival := 1 / rate

	script, err := queueing.GenerateScript(rng.Hash2(qs.Seed, uint64(level), 0x5c21), interarrival, qs.MeanJobCycles, qs.Horizon, solo)
	if err != nil {
		return ResponseRow{}, err
	}

	naive, err := queueing.RunNaive(cfg, qs.Slice, script, qs.Horizon)
	if err != nil {
		return ResponseRow{}, err
	}
	opt := queueing.DefaultSOSOptions(script)
	sos, err := queueing.RunSOS(cfg, qs.Slice, script, qs.Horizon, opt)
	if err != nil {
		return ResponseRow{}, err
	}

	row := ResponseRow{
		SMTLevel:         level,
		Lambda:           interarrival,
		NaiveResponse:    naive.MeanResponse,
		SOSResponse:      sos.MeanResponse,
		NaiveCompleted:   naive.Completed,
		SOSCompleted:     sos.Completed,
		MeanJobsInSystem: sos.MeanInSystem,
	}
	if naive.MeanResponse > 0 {
		row.ImprovementPct = 100 * (naive.MeanResponse - sos.MeanResponse) / naive.MeanResponse
	}
	return row, nil
}

// Figure5 compares response time for SMT levels 2, 3, 4 and 6. Each level
// is a self-contained scripted system (its arrival script derives from the
// (seed, level) hash), so the levels fan out across workers.
func Figure5(qs QueueScale) ([]ResponseRow, error) {
	return Figure5Ctx(context.Background(), qs)
}

// Figure5Ctx is Figure5 bounded by a context, with each SMT level a
// resumable checkpoint shard.
func Figure5Ctx(ctx context.Context, qs QueueScale) ([]ResponseRow, error) {
	return shardedMap(ctx, "fig5", []int{2, 3, 4, 6}, parallel.Options{}, func(_ context.Context, _ int, level int) (ResponseRow, error) {
		return ResponseCompare(level, qs, 1.0)
	})
}

// Figure6 sweeps the arrival rate at SMT level 3. Factors above 1 load the
// system more heavily; below 1, more lightly.
func Figure6(qs QueueScale, factors []float64) ([]ResponseRow, error) {
	return Figure6Ctx(context.Background(), qs, factors)
}

// Figure6Ctx is Figure6 bounded by a context, with each arrival-rate factor
// a resumable checkpoint shard.
func Figure6Ctx(ctx context.Context, qs QueueScale, factors []float64) ([]ResponseRow, error) {
	if factors == nil {
		factors = []float64{0.6, 0.8, 1.0, 1.2}
	}
	return shardedMap(ctx, "fig6", factors, parallel.Options{}, func(_ context.Context, _ int, f float64) (ResponseRow, error) {
		return ResponseCompare(3, qs, f)
	})
}
