package experiments

import (
	"context"
	"fmt"

	"symbios/internal/core"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// LevelRow reports the throughput study at one multithreading level.
type LevelRow struct {
	SMTLevel     int
	Best, Worst  float64
	Avg          float64
	SpreadPct    float64
	ScoreWS      float64
	ScoreGainPct float64 // Score-chosen over average
}

// twelveJobs is the paper's largest jobmix (Jsb(12,·,·)).
var twelveJobs = []string{
	"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GCC", "GO", "IS", "CG", "EP",
}

// ThroughputVsLevel sweeps the hardware multithreading level over the
// 12-job mix with full swap, extending the paper's observation that "the
// same effects ... will be evident with wider processors, but may happen at
// higher levels of multithreading": both the absolute weighted speedup and
// the schedule sensitivity grow with the SMT level.
func ThroughputVsLevel(sc Scale, levels []int) ([]LevelRow, error) {
	return ThroughputVsLevelCtx(context.Background(), sc, levels)
}

// ThroughputVsLevelCtx is ThroughputVsLevel bounded by a context, with each
// SMT level a resumable checkpoint shard.
func ThroughputVsLevelCtx(ctx context.Context, sc Scale, levels []int) ([]LevelRow, error) {
	if levels == nil {
		levels = []int{2, 3, 4, 6}
	}
	// Each level derives its own rng stream from (seed, level), so the
	// levels are independent work items.
	return shardedMap(ctx, "levels", levels, parallel.Options{}, func(ctx context.Context, _ int, level int) (LevelRow, error) {
		if 12%level != 0 {
			return LevelRow{}, fmt.Errorf("experiments: level %d does not divide 12 jobs evenly", level)
		}
		mix := workload.Mix{
			Label:    fmt.Sprintf("Jsb(12,%d,%d)", level, level),
			JobNames: twelveJobs,
			SMTLevel: level,
			Swap:     level,
			BigSlice: true,
		}
		r := rng.New(rng.Hash2(sc.Seed, uint64(level), 0x1e7e1))
		scheds := schedule.Sample(r, mix.Tasks(), level, level, sc.MaxSamples)
		ev, err := EvalMixSchedulesCtx(ctx, mix, scheds, sc)
		if err != nil {
			return LevelRow{}, err
		}
		row := LevelRow{
			SMTLevel: level,
			Best:     ev.Best(),
			Worst:    ev.Worst(),
			Avg:      ev.Avg(),
			ScoreWS:  ev.PredictorWS(core.PredScore),
		}
		row.SpreadPct = 100 * (row.Best - row.Worst) / row.Worst
		row.ScoreGainPct = 100 * (row.ScoreWS - row.Avg) / row.Avg
		return row, nil
	})
}
