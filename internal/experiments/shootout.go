package experiments

import (
	"context"

	"symbios/internal/core"
	"symbios/internal/parallel"
)

// ShootoutRow scores one predictor (paper or experimental) across mixes.
type ShootoutRow struct {
	Name string
	// MeanGainPct is the average gain of the predictor's pick over the
	// random-scheduler expectation across the evaluated mixes.
	MeanGainPct float64
	// WorstPicks counts mixes where the predictor picked the worst
	// schedule of the sample.
	WorstPicks int
	// BestPicks counts mixes where it found the sample's best schedule.
	BestPicks int
}

// PredictorShootout evaluates every predictor — the paper's ten plus the
// experimental variants — head-to-head over the given mixes (defaults to a
// representative trio). It reproduces the paper's exploration process: the
// latency-weighted conflict predictor the authors tried and rejected can be
// compared directly against Score and Composite.
func PredictorShootout(sc Scale, labels []string) ([]ShootoutRow, error) {
	return PredictorShootoutCtx(context.Background(), sc, labels)
}

// PredictorShootoutCtx is PredictorShootout bounded by a context. The mix
// evaluations carry live samples, so the study is interruptible but not
// shard-checkpointed.
func PredictorShootoutCtx(ctx context.Context, sc Scale, labels []string) ([]ShootoutRow, error) {
	if labels == nil {
		labels = []string{"Jsb(6,3,3)", "Jsb(8,4,4)", "Jsb(5,2,2)"}
	}
	evs, err := parallel.Map(labels, parallel.Options{Context: ctx}, func(_ int, l string) (*MixEval, error) {
		return EvalMixCachedCtx(ctx, l, sc)
	})
	if err != nil {
		return nil, err
	}
	return shootoutFrom(evs), nil
}

// shootoutFrom scores every predictor over pre-evaluated mixes.
func shootoutFrom(evs []*MixEval) []ShootoutRow {
	var rows []ShootoutRow
	score := func(name string, pick func(ev *MixEval) int) {
		row := ShootoutRow{Name: name}
		for _, ev := range evs {
			idx := pick(ev)
			ws := ev.WS[idx]
			row.MeanGainPct += 100 * (ws - ev.Avg()) / ev.Avg()
			if ws <= ev.Worst()+1e-12 {
				row.WorstPicks++
			}
			if ws >= ev.Best()-1e-12 {
				row.BestPicks++
			}
		}
		row.MeanGainPct /= float64(len(evs))
		rows = append(rows, row)
	}

	for _, p := range core.Predictors() {
		p := p
		score(p.String(), func(ev *MixEval) int { return core.Pick(ev.Samples, p) })
	}
	for _, p := range core.ExtPredictors() {
		p := p
		score("x"+p.String(), func(ev *MixEval) int { return core.PickExt(ev.Samples, p) })
	}
	return rows
}
