package experiments

import (
	"reflect"
	"testing"

	"symbios/internal/parallel"
)

// withWorkers runs fn under a fixed global worker count, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.SetDefaultWorkers(n)
	defer parallel.SetDefaultWorkers(prev)
	fn()
}

// TestPairwiseDeterministicAcrossWorkers is the parallel layer's
// acceptance test on a real driver: the pairwise symbiosis matrix must be
// byte-identical at workers=1 and workers=8. Run under -race this also
// exercises the fan-out for data races.
func TestPairwiseDeterministicAcrossWorkers(t *testing.T) {
	sc := QuickScale()
	sc.CalibWarmup, sc.CalibMeasure = 200_000, 100_000
	sc.WarmupCycles, sc.SymbiosCycles = 200_000, 400_000
	names := []string{"FP", "GCC", "IS", "CG"}

	var serial, fanned *PairTable
	var err1, err8 error
	withWorkers(t, 1, func() { serial, err1 = Pairwise(sc, names) })
	if err1 != nil {
		t.Fatal(err1)
	}
	withWorkers(t, 8, func() { fanned, err8 = Pairwise(sc, names) })
	if err8 != nil {
		t.Fatal(err8)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("pairwise matrix differs between workers=1 and workers=8:\n%v\nvs\n%v", serial.WS, fanned.WS)
	}
}

// TestShootoutDeterministicAcrossWorkers runs the predictor shootout at
// workers=1 and workers=8 and asserts identical rows. The eval cache is
// cleared between runs so the second run actually recomputes under the
// other worker count (rather than replaying memoized results).
func TestShootoutDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("shootout sweep is long for -short")
	}
	sc := QuickScale()
	// Shrunken budgets: the test proves worker-count invariance, not
	// simulation fidelity, and it evaluates both mixes twice.
	sc.CalibWarmup, sc.CalibMeasure = 200_000, 100_000
	sc.WarmupCycles, sc.SymbiosCycles = 200_000, 400_000
	labels := []string{"Jsb(4,2,2)", "Jsb(6,3,3)"}

	var serial, fanned []ShootoutRow
	var err1, err8 error
	withWorkers(t, 1, func() {
		ClearEvalCache()
		serial, err1 = PredictorShootout(sc, labels)
	})
	if err1 != nil {
		t.Fatal(err1)
	}
	withWorkers(t, 8, func() {
		ClearEvalCache()
		fanned, err8 = PredictorShootout(sc, labels)
	})
	if err8 != nil {
		t.Fatal(err8)
	}
	ClearEvalCache() // leave no quick-scale entries for other tests
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("shootout rows differ between workers=1 and workers=8:\n%v\nvs\n%v", serial, fanned)
	}
}

// TestEvalMixCachedSingleflight checks that concurrent misses on one key
// compute the evaluation exactly once and all callers share the same
// result object.
func TestEvalMixCachedSingleflight(t *testing.T) {
	sc := QuickScale()
	sc.SymbiosCycles = 400_000
	sc.WarmupCycles = 200_000
	sc.CalibWarmup, sc.CalibMeasure = 200_000, 100_000
	sc.Seed = 77 // private key: no other test shares this cache entry
	ClearEvalCache()
	defer ClearEvalCache()

	const callers = 8
	evs, err := parallel.Map(parallel.Indices(callers), parallel.Options{Workers: callers},
		func(_ int, _ int) (*MixEval, error) {
			return EvalMixCached("Jsb(4,2,2)", sc)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < callers; i++ {
		if evs[i] != evs[0] {
			t.Fatalf("caller %d got a different *MixEval than caller 0: the evaluation ran more than once", i)
		}
	}
}
