package experiments

import "testing"

// TestAblationFetchPolicy: the schedule-sensitivity phenomenon must
// survive under both fetch policies, and ICOUNT should not be worse than
// round-robin on aggregate IPC.
func TestAblationFetchPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	rows, err := AblationFetchPolicy(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		t.Log(r.String())
		if r.SpreadBestWS <= r.SpreadWorst {
			t.Errorf("%s: no schedule spread", r.Policy)
		}
		spread := (r.SpreadBestWS - r.SpreadWorst) / r.SpreadWorst
		if spread < 0.02 {
			t.Errorf("%s: spread %.1f%% too small — symbiosis vanished", r.Policy, 100*spread)
		}
	}
	if rows[0].IPC < 0.95*rows[1].IPC {
		t.Errorf("ICOUNT IPC %.3f clearly below round-robin %.3f", rows[0].IPC, rows[1].IPC)
	}
}

// TestAblationSampleCount: sampling more schedules never hurts the best
// available choice, and the regret of the Score pick stays bounded.
func TestAblationSampleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	sc := QuickScale()
	sc.Seed = 42 // private cache namespace; this test clears the cache
	rows, err := AblationSampleCount("Jsb(6,3,1)", sc, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	defer ClearEvalCache()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("samples %d: chosen %.3f best %.3f avg %.3f regret %.1f%%",
			r.Samples, r.ChosenWS, r.BestWS, r.AvgWS, 100*r.Regret)
		if r.ChosenWS > r.BestWS+1e-9 {
			t.Error("chosen above sample best — impossible")
		}
		if r.Regret > 0.25 {
			t.Errorf("regret %.1f%% too large", 100*r.Regret)
		}
	}
	if rows[1].BestWS+1e-9 < rows[0].BestWS*0.98 {
		t.Errorf("larger sample found a much worse best (%.3f vs %.3f)", rows[1].BestWS, rows[0].BestWS)
	}
}

// TestColdstartMonotone: weighted speedup improves (or at least does not
// degrade materially) as the timeslice grows and coldstart amortizes.
func TestColdstartMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	rows, err := ColdstartStudy(QuickScale(), []uint64{20_000, 160_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	t.Logf("slice %d: WS %.3f; slice %d: WS %.3f",
		rows[0].SliceCycles, rows[0].WS, rows[1].SliceCycles, rows[1].WS)
	if rows[1].WS < rows[0].WS*0.98 {
		t.Errorf("longer timeslice lost throughput: %.3f vs %.3f", rows[1].WS, rows[0].WS)
	}
}
