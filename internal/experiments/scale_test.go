package experiments

import (
	"testing"

	"symbios/internal/workload"
)

// TestSliceFor: big mixes get the full slice, little mixes the divided one.
func TestSliceFor(t *testing.T) {
	sc := DefaultScale()
	big := workload.MustMix("Jsb(6,3,3)")
	little := workload.MustMix("Jsl(6,3,1)")
	if got := sc.sliceFor(big); got != sc.Slice {
		t.Errorf("big slice %d", got)
	}
	if got := sc.sliceFor(little); got != sc.Slice/sc.LittleDivisor {
		t.Errorf("little slice %d", got)
	}
	sc.LittleDivisor = 0
	if got := sc.sliceFor(little); got != sc.Slice/4 {
		t.Errorf("zero divisor fallback: %d", got)
	}
}

// TestSymbiosSlices: the budget rounds down to whole rotations but never
// below one rotation.
func TestSymbiosSlices(t *testing.T) {
	sc := Scale{SymbiosCycles: 1_000_000}
	if got := sc.symbiosSlices(100_000, 3); got != 9 {
		t.Errorf("rounding: got %d, want 9", got)
	}
	if got := sc.symbiosSlices(100_000, 2); got != 10 {
		t.Errorf("exact: got %d, want 10", got)
	}
	if got := sc.symbiosSlices(1_000_000, 4); got != 4 {
		t.Errorf("minimum: got %d, want one rotation (4)", got)
	}
}

// TestScalesPreserveRatios: every preset keeps the paper's ordering of
// budgets (warmup < symbios; calibration intervals positive).
func TestScalesPreserveRatios(t *testing.T) {
	for _, sc := range []Scale{QuickScale(), DefaultScale(), PaperScale()} {
		if sc.Slice == 0 || sc.SymbiosCycles == 0 || sc.CalibWarmup == 0 || sc.CalibMeasure == 0 {
			t.Errorf("zero budget in %+v", sc)
		}
		if sc.SymbiosCycles < 10*sc.Slice {
			t.Errorf("symbios phase shorter than 10 slices: %+v", sc)
		}
		if sc.MaxSamples != 10 {
			t.Errorf("MaxSamples %d, paper uses 10", sc.MaxSamples)
		}
	}
	if PaperScale().Slice != 5_000_000 {
		t.Error("paper slice is 5M cycles")
	}
	if PaperScale().SymbiosCycles != 2_000_000_000 {
		t.Error("paper symbios phase is 2B cycles")
	}
}

// TestEvalCache: the memoized evaluation returns the identical object and
// can be cleared.
func TestEvalCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sc := QuickScale()
	sc.Seed = 123 // private seed: do not pollute other tests' cache entries
	a, err := EvalMixCached("Jsb(4,2,2)", sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalMixCached("Jsb(4,2,2)", sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned a different object")
	}
	ClearEvalCache()
	c, err := EvalMixCached("Jsb(4,2,2)", sc)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("cache not cleared")
	}
}
