package experiments

import (
	"context"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/metrics"
	"symbios/internal/parallel"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// ColdstartRow reports weighted speedup at one timeslice length.
type ColdstartRow struct {
	SliceCycles uint64
	WS          float64
	IPC         float64
	L1DHitPct   float64
}

// ColdstartStudy quantifies the Section 8 coldstart effect directly:
// the same Jsb(6,3,3) schedule is run at a range of timeslice lengths.
// Short timeslices pay cache and predictor coldstart on every context
// switch; as the resident timeslice grows the costs amortize and weighted
// speedup approaches its asymptote. (The warmstart policies of Section 8
// achieve the same amortization by swapping fewer jobs per slice.)
func ColdstartStudy(sc Scale, slices []uint64) ([]ColdstartRow, error) {
	return ColdstartStudyCtx(context.Background(), sc, slices)
}

// ColdstartStudyCtx is ColdstartStudy bounded by a context, with each
// timeslice length a resumable checkpoint shard.
func ColdstartStudyCtx(ctx context.Context, sc Scale, slices []uint64) ([]ColdstartRow, error) {
	if slices == nil {
		slices = []uint64{25_000, 50_000, 100_000, 200_000, 400_000}
	}
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)

	jobs, seeds, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return nil, err
	}
	solo, err := core.SoloRates(cfg, jobs, seeds, sc.CalibWarmup, sc.CalibMeasure)
	if err != nil {
		return nil, err
	}
	s := schedule.Schedule{Order: []int{0, 1, 2, 3, 4, 5}, Y: mix.SMTLevel, Z: mix.Swap}

	return shardedMap(ctx, "coldstart", slices, parallel.Options{}, func(ctx context.Context, _ int, slice uint64) (ColdstartRow, error) {
		jobs, _, err := buildJobs(mix, sc.Seed)
		if err != nil {
			return ColdstartRow{}, err
		}
		m, err := core.NewMachine(cfg, jobs, slice)
		if err != nil {
			return ColdstartRow{}, err
		}
		if err := warm(ctx, m, s, sc.WarmupCycles); err != nil {
			return ColdstartRow{}, err
		}
		res, err := m.RunScheduleCtx(ctx, s, sc.symbiosSlices(slice, s.CycleSlices()))
		if err != nil {
			return ColdstartRow{}, err
		}
		ws, err := metrics.WeightedSpeedup(res.Cycles, res.Committed, solo)
		if err != nil {
			return ColdstartRow{}, err
		}
		return ColdstartRow{
			SliceCycles: slice,
			WS:          ws,
			IPC:         res.Counters.IPC(),
			L1DHitPct:   100 * res.Counters.L1DHitRate(),
		}, nil
	})
}
