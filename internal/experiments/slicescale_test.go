package experiments

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/metrics"
	"symbios/internal/workload"
)

// TestSliceScaling is a diagnostic: weighted speedup of one Jsb(6,3,3)
// schedule as a function of timeslice length. Too-small slices overstate
// context-switch coldstart relative to the paper's 5M-cycle slices; the
// chosen default scale must sit on the flat part of this curve.
func TestSliceScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic sweep")
	}
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)
	jobs, seeds, err := buildJobs(mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := core.SoloRates(cfg, jobs, seeds, 1_500_000, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	scheds, _ := EnumerateFor(mix)
	s := scheds[1] // 013_245
	for _, slice := range []uint64{50_000, 250_000, 1_000_000} {
		jobs, _, err := buildJobs(mix, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMachine(cfg, jobs, slice)
		if err != nil {
			t.Fatal(err)
		}
		if err := warmFor(m, s, 2_000_000); err != nil {
			t.Fatal(err)
		}
		res, err := m.RunSchedule(s, 8*s.CycleSlices())
		if err != nil {
			t.Fatal(err)
		}
		ws, err := metrics.WeightedSpeedup(res.Cycles, res.Committed, solo)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("slice %7d: WS %.3f IPC %.3f L1D %.1f%%", slice, ws, res.Counters.IPC(), 100*res.Counters.L1DHitRate())
	}
}
