package experiments

import (
	"testing"

	"symbios/internal/core"
)

// TestShootoutScoring: on a synthetic evaluation where every sample-phase
// signal points at the symbios winner, every predictor scores a clean
// sweep — and the row accounting (best/worst picks, mean gain) is exact.
func TestShootoutScoring(t *testing.T) {
	rows := shootoutFrom([]*MixEval{synthEval()})
	if len(rows) != int(core.NumPredictors)+int(core.NumExtPredictors) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WorstPicks != 0 {
			t.Errorf("%s picked the worst on a rigged evaluation", r.Name)
		}
		// Schedule 1 (WS 1.30) is every predictor's pick; avg is 1.2833.
		wantGain := 100 * (1.30 - (1.10+1.30+1.45)/3) / ((1.10 + 1.30 + 1.45) / 3)
		if diff := r.MeanGainPct - wantGain; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s mean gain %.6f, want %.6f", r.Name, r.MeanGainPct, wantGain)
		}
	}
}
