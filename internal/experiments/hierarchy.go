package experiments

import (
	"context"
	"fmt"
	"strings"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Figure4Row reports hierarchical symbiosis for one SMT level: SOS chooses
// both which jobs to coschedule and how many hardware contexts to devote to
// each multithreaded job (Section 7), and the chosen combination is
// compared with the average (random) and worst outcomes.
type Figure4Row struct {
	SMTLevel int
	// Configs is the number of thread-count configurations explored;
	// Candidates the total (configuration, schedule) pairs evaluated.
	Configs    int
	Candidates int
	// ChosenWS is the weighted speedup of the Score-chosen candidate.
	ChosenWS         float64
	Best, Worst, Avg float64
	OverAvgPct       float64
	OverWorstPct     float64
	// ChosenDesc names the chosen thread allocation, e.g. "mt_ARRAY=2".
	ChosenDesc string
}

// hierCandidate is one evaluated (configuration, schedule) pair.
type hierCandidate struct {
	specs  []workload.Spec
	desc   string
	sched  schedule.Schedule
	sample core.Sample
	ws     float64
}

// hierConfigs expands a job-name list into every thread-count assignment
// for its multithreaded (mt_-prefixed) jobs. Each mt job may be compiled
// for 1 or 2 threads (the paper hand-coded several multithreaded versions).
func hierConfigs(names []string) ([][]workload.Spec, []string, error) {
	base := make([]workload.Spec, len(names))
	var mtIdx []int
	for i, n := range names {
		spec, err := workload.Lookup(n)
		if err != nil {
			return nil, nil, err
		}
		base[i] = spec
		if strings.HasPrefix(n, "mt_") {
			mtIdx = append(mtIdx, i)
		}
	}
	var configs [][]workload.Spec
	var descs []string
	n := 1 << len(mtIdx)
	for bits := 0; bits < n; bits++ {
		cfg := append([]workload.Spec(nil), base...)
		var parts []string
		for b, i := range mtIdx {
			threads := 1
			if bits&(1<<b) != 0 {
				threads = 2
			}
			cfg[i] = cfg[i].WithThreads(threads)
			parts = append(parts, fmt.Sprintf("%s=%d", cfg[i].Name, threads))
		}
		configs = append(configs, cfg)
		descs = append(descs, strings.Join(parts, ","))
	}
	return configs, descs, nil
}

// buildSpecJobs instantiates a spec list as jobs with derived seeds.
func buildSpecJobs(specs []workload.Spec, seed uint64) ([]*workload.Job, []uint64, error) {
	jobs := make([]*workload.Job, len(specs))
	seeds := make([]uint64, len(specs))
	for i, spec := range specs {
		seeds[i] = rng.Hash2(seed, uint64(i), 0x3017)
		j, err := workload.NewJob(spec, i, seeds[i])
		if err != nil {
			return nil, nil, err
		}
		jobs[i] = j
	}
	return jobs, seeds, nil
}

// jobWS computes the per-job weighted speedup: each job's realized
// aggregate IPC over the interval divided by its solo aggregate rate
// ("the issue rate of the job running alone").
func jobWS(jobs []*workload.Job, committed []uint64, cycles uint64, soloAgg []float64) float64 {
	ws := 0.0
	ti := 0
	for ji, j := range jobs {
		var c uint64
		for t := 0; t < j.Threads(); t++ {
			c += committed[ti]
			ti++
		}
		ws += float64(c) / float64(cycles) / soloAgg[ji]
	}
	return ws
}

// Figure4 evaluates hierarchical symbiosis at SMT levels 2, 3, 4 and 6.
// Each level's rng stream derives from (seed, level), so the levels are
// independent work items.
func Figure4(sc Scale) ([]Figure4Row, error) {
	return Figure4Ctx(context.Background(), sc)
}

// Figure4Ctx is Figure4 bounded by a context, with each SMT level a
// resumable checkpoint shard.
func Figure4Ctx(ctx context.Context, sc Scale) ([]Figure4Row, error) {
	return shardedMap(ctx, "fig4", []int{2, 3, 4, 6}, parallel.Options{}, func(ctx context.Context, _ int, level int) (Figure4Row, error) {
		return hierLevel(ctx, level, sc)
	})
}

// hierLevel runs one SMT level's hierarchical study.
func hierLevel(ctx context.Context, level int, sc Scale) (Figure4Row, error) {
	names, ok := workload.HierarchicalMixes[level]
	if !ok {
		return Figure4Row{}, fmt.Errorf("experiments: no hierarchical mix for SMT level %d", level)
	}
	cfg := arch.Default21264(level)
	configs, descs, err := hierConfigs(names)
	if err != nil {
		return Figure4Row{}, err
	}
	r := rng.New(rng.Hash2(sc.Seed, uint64(level), 0xf164))

	// Phase 1 (serial): walk the configurations in order, drawing each
	// feasible configuration's schedule sample from the shared rng stream.
	// Only this walk touches r, so the draw sequence — and therefore every
	// downstream number — is identical at any worker count.
	type hierWork struct {
		specs  []workload.Spec
		desc   string
		scheds []schedule.Schedule
	}
	var work []hierWork
	for ci, specs := range configs {
		x := 0
		for _, s := range specs {
			x += s.Threads
		}
		if x < level {
			continue // cannot fill the running set
		}
		// A handful of schedules per configuration.
		const perConfig = 4
		work = append(work, hierWork{
			specs:  specs,
			desc:   descs[ci],
			scheds: schedule.Sample(r, x, level, level, perConfig),
		})
	}
	usedConfigs := len(work)

	// Phase 2 (parallel): evaluate each configuration — solo calibration
	// plus its schedule runs, every run on freshly built jobs — and flatten
	// the per-configuration candidate groups in configuration order.
	groups, err := parallel.Map(work, parallel.Options{Context: ctx}, func(_ int, w hierWork) ([]hierCandidate, error) {
		// Per-job solo aggregate rates for this configuration.
		jobs, seeds, err := buildSpecJobs(w.specs, sc.Seed)
		if err != nil {
			return nil, err
		}
		soloTask, err := core.SoloRates(cfg, jobs, seeds, sc.CalibWarmup, sc.CalibMeasure)
		if err != nil {
			return nil, err
		}
		soloAgg := make([]float64, len(jobs))
		ti := 0
		for ji, j := range jobs {
			for t := 0; t < j.Threads(); t++ {
				soloAgg[ji] += soloTask[ti]
				ti++
			}
		}

		return parallel.Map(w.scheds, parallel.Options{Context: ctx}, func(_ int, s schedule.Schedule) (hierCandidate, error) {
			jobs, _, err := buildSpecJobs(w.specs, sc.Seed)
			if err != nil {
				return hierCandidate{}, err
			}
			m, err := core.NewMachine(cfg, jobs, sc.Slice)
			if err != nil {
				return hierCandidate{}, err
			}
			if err := warm(ctx, m, s, sc.WarmupCycles); err != nil {
				return hierCandidate{}, err
			}
			res, err := m.RunScheduleCtx(ctx, s, sc.symbiosSlices(sc.Slice, s.CycleSlices()))
			if err != nil {
				return hierCandidate{}, err
			}
			return hierCandidate{
				specs:  w.specs,
				desc:   w.desc,
				sched:  s,
				sample: core.NewSample(s, res),
				ws:     jobWS(jobs, res.Committed, res.Cycles, soloAgg),
			}, nil
		})
	})
	if err != nil {
		return Figure4Row{}, err
	}
	var cands []hierCandidate
	for _, g := range groups {
		cands = append(cands, g...)
	}
	if len(cands) == 0 {
		return Figure4Row{}, fmt.Errorf("experiments: SMT level %d: no feasible configurations", level)
	}

	samples := make([]core.Sample, len(cands))
	for i, c := range cands {
		samples[i] = c.sample
	}
	idx := core.Pick(samples, core.PredScore)

	row := Figure4Row{
		SMTLevel:   level,
		Configs:    usedConfigs,
		Candidates: len(cands),
		ChosenWS:   cands[idx].ws,
		ChosenDesc: cands[idx].desc,
		Best:       cands[0].ws,
		Worst:      cands[0].ws,
	}
	sum := 0.0
	for _, c := range cands {
		if c.ws > row.Best {
			row.Best = c.ws
		}
		if c.ws < row.Worst {
			row.Worst = c.ws
		}
		sum += c.ws
	}
	row.Avg = sum / float64(len(cands))
	row.OverAvgPct = 100 * (row.ChosenWS - row.Avg) / row.Avg
	row.OverWorstPct = 100 * (row.ChosenWS - row.Worst) / row.Worst
	return row, nil
}
