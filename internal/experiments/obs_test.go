package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"symbios/internal/obs"
)

// TestFigure1ObsDeterminism is the no-feedback regression test on the
// batch side: Figure 1 shard outputs must be bit-identical with the obs
// tracer+registry carried in the context versus a plain context, at
// workers 1 and 8. The eval cache is cleared between runs so every run
// recomputes rather than replaying memoized results.
func TestFigure1ObsDeterminism(t *testing.T) {
	sc := QuickScale()
	sc.CalibWarmup, sc.CalibMeasure = 200_000, 100_000
	sc.WarmupCycles, sc.SymbiosCycles = 200_000, 400_000
	labels := []string{"Jsb(4,2,2)", "Jsb(6,3,3)"}

	run := func(workers int, traced bool) ([]Figure1Row, string) {
		var rows []Figure1Row
		var err error
		var buf bytes.Buffer
		withWorkers(t, workers, func() {
			ClearEvalCache()
			ctx := context.Background()
			if traced {
				ctx = obs.WithTracer(ctx, obs.NewTracer(&buf, obs.NewRegistry()))
			}
			rows, err = Figure1Ctx(ctx, sc, labels)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows, buf.String()
	}

	base, _ := run(1, false)
	for _, workers := range []int{1, 8} {
		traced, jsonl := run(workers, true)
		if !reflect.DeepEqual(base, traced) {
			t.Fatalf("workers=%d: rows differ with obs enabled:\n%+v\nvs\n%+v", workers, base, traced)
		}
		// The trace must actually cover the run: SOS phases and one shard
		// span per mix.
		shards := 0
		for _, line := range strings.Split(strings.TrimSpace(jsonl), "\n") {
			var ev obs.SpanEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("workers=%d: bad JSONL line %q: %v", workers, line, err)
			}
			if ev.Name == "shard" {
				shards++
			}
		}
		if shards != len(labels) {
			t.Errorf("workers=%d: %d shard spans, want %d", workers, shards, len(labels))
		}
		for _, span := range []string{`"name":"sos/calibrate"`, `"name":"sos/sample"`, `"name":"sos/symbios"`} {
			if !strings.Contains(jsonl, span) {
				t.Errorf("workers=%d: trace missing %s", workers, span)
			}
		}
	}
	ClearEvalCache() // leave no quick-scale entries for other tests
}
