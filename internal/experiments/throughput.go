package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/metrics"
	"symbios/internal/obs"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// MixEval is the full evaluation of one jobmix: the sampled schedules with
// their sample-phase predictor data, and each schedule's realized weighted
// speedup over a symbios-length run. Figures 1-3 and Table 3 are all views
// of this structure.
type MixEval struct {
	Mix  workload.Mix
	Cfg  arch.Config
	Solo []float64 // per task

	Scheds  []schedule.Schedule
	Samples []core.Sample
	WS      []float64 // symbios-phase WS per schedule
}

// buildJobs instantiates the mix's jobs with the evaluation's seed.
func buildJobs(m workload.Mix, seed uint64) ([]*workload.Job, []uint64, error) {
	jobs, err := m.Build(seed)
	if err != nil {
		return nil, nil, err
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(seed, uint64(i), 0x3017)
	}
	return jobs, seeds, nil
}

// EvalMix evaluates a registered mix under the scale: calibrate solo rates,
// sample up to MaxSamples distinct schedules on one continuously running
// machine (the overhead-free sample phase), then run every sampled schedule
// for a symbios phase on identically initialized machines and record its
// weighted speedup.
func EvalMix(label string, sc Scale) (*MixEval, error) {
	return EvalMixCtx(context.Background(), label, sc)
}

// EvalMixCtx is EvalMix bounded by a context: cancellation or deadline
// aborts between (and, at timeslice granularity, inside) schedule runs.
func EvalMixCtx(ctx context.Context, label string, sc Scale) (*MixEval, error) {
	mix, err := workload.MixByLabel(label)
	if err != nil {
		return nil, err
	}
	x := mix.Tasks()
	r := rng.New(rng.Hash2(sc.Seed, 0x5a321e, 0))
	scheds := schedule.Sample(r, x, mix.SMTLevel, mix.Swap, sc.MaxSamples)
	return EvalMixSchedulesCtx(ctx, mix, scheds, sc)
}

// EvalMixSchedules is EvalMix over an explicit candidate schedule set (used
// by studies that need a stratified rather than purely random sample).
func EvalMixSchedules(mix workload.Mix, scheds []schedule.Schedule, sc Scale) (*MixEval, error) {
	return EvalMixSchedulesCtx(context.Background(), mix, scheds, sc)
}

// EvalMixSchedulesCtx is EvalMixSchedules bounded by a context.
func EvalMixSchedulesCtx(ctx context.Context, mix workload.Mix, scheds []schedule.Schedule, sc Scale) (*MixEval, error) {
	cfg := arch.Default21264(mix.SMTLevel)
	slice := sc.sliceFor(mix)
	tr := obs.TracerFrom(ctx)

	jobs, seeds, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return nil, err
	}
	endCal := tr.Span("sos/calibrate", mix.Label)
	solo, err := core.SoloRates(cfg, jobs, seeds, sc.CalibWarmup, sc.CalibMeasure)
	endCal()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", mix.Label, err)
	}

	ev := &MixEval{Mix: mix, Cfg: cfg, Solo: solo, Scheds: scheds}

	// Sample phase: one machine, jobs progressing throughout. Warm it with
	// unrecorded rotations until the memory system reaches steady state
	// ("we begin simulation with each benchmark partially executed").
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	endWarm := tr.Span("sos/warmup", mix.Label)
	err = warm(ctx, m, scheds[0], sc.WarmupCycles)
	endWarm()
	if err != nil {
		return nil, err
	}
	endSample := tr.Span("sos/sample", mix.Label)
	for _, s := range scheds {
		res, err := m.RunScheduleCtx(ctx, s, s.CycleSlices()*sc.SampleRounds)
		if err != nil {
			endSample()
			return nil, err
		}
		ev.Samples = append(ev.Samples, core.NewSample(s, res))
	}
	endSample()

	// Symbios validation: run each sampled schedule from an identical
	// starting state and record its weighted speedup. Each run builds its
	// own jobs and machine from the same seed, so the runs are independent
	// and fan out across workers with bit-identical results — grouped into
	// core.EvalBatch chunks so one worker drives several machines through
	// warmup and the symbios window as a single coarse work item.
	endSym := tr.Span("sos/symbios", mix.Label)
	groups := chunkRanges(len(scheds), symbiosBatch)
	wsGroups, err := parallel.Map(groups, parallel.Options{Context: ctx}, func(_ int, g [2]int) ([]float64, error) {
		return symbiosWSBatch(ctx, mix, cfg, slice, sc, scheds[g[0]:g[1]], solo)
	})
	endSym()
	if err != nil {
		return nil, err
	}
	for _, ws := range wsGroups {
		ev.WS = append(ev.WS, ws...)
	}
	return ev, nil
}

// symbiosBatch is how many schedule evaluations one worker drives as a
// single EvalBatch work item. Grouping only regroups the fan-out — every
// schedule still runs on its own identically-seeded machine — so the
// weighted speedups are bit-identical at any batch size or worker count.
const symbiosBatch = 4

// chunkRanges splits [0,n) into half-open [lo,hi) ranges of at most size.
func chunkRanges(n, size int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// EnumerateFor returns every distinct schedule of a mix (for mixes whose
// schedule space is small, like Jsb(6,3,3)'s 10).
func EnumerateFor(m workload.Mix) ([]schedule.Schedule, error) {
	return schedule.Enumerate(m.Tasks(), m.SMTLevel, m.Swap, 10_000)
}

// warmFor runs whole rotations of s, unrecorded, until at least cycles have
// elapsed, bringing the memory system to steady state.
func warmFor(m *core.Machine, s schedule.Schedule, cycles uint64) error {
	return warm(nil, m, s, cycles)
}

// warm runs whole rotations of s, unrecorded, until at least cycles have
// elapsed, bringing the memory system to steady state. A nil context is
// unbounded.
func warm(ctx context.Context, m *core.Machine, s schedule.Schedule, cycles uint64) error {
	rot := s.CycleSlices()
	rounds := int(cycles/(uint64(rot)*m.SliceCycles)) + 1
	_, err := m.RunScheduleCtx(ctx, s, rot*rounds)
	return err
}

// symbiosWS measures one schedule's symbios-phase weighted speedup on a
// fresh machine (a batch of one).
func symbiosWS(ctx context.Context, mix workload.Mix, cfg arch.Config, slice uint64, sc Scale, s schedule.Schedule, solo []float64) (float64, error) {
	ws, err := symbiosWSBatch(ctx, mix, cfg, slice, sc, []schedule.Schedule{s}, solo)
	if err != nil {
		return 0, err
	}
	return ws[0], nil
}

// symbiosWSBatch measures a group of schedules' symbios-phase weighted
// speedups, each on its own fresh machine (full warmup, then the symbios
// budget), with both phases advanced through one core.EvalBatch.
func symbiosWSBatch(ctx context.Context, mix workload.Mix, cfg arch.Config, slice uint64, sc Scale, group []schedule.Schedule, solo []float64) ([]float64, error) {
	ms := make([]*core.Machine, len(group))
	var warmup core.EvalBatch
	for i, s := range group {
		jobs, _, err := buildJobs(mix, sc.Seed)
		if err != nil {
			return nil, err
		}
		m, err := core.NewMachine(cfg, jobs, slice)
		if err != nil {
			return nil, err
		}
		ms[i] = m
		// Whole warmup rotations, exactly as warm() computes them.
		rot := s.CycleSlices()
		rounds := int(sc.WarmupCycles/(uint64(rot)*m.SliceCycles)) + 1
		if _, err := warmup.Add(m, s, rot*rounds); err != nil {
			return nil, err
		}
	}
	if _, err := warmup.Run(ctx); err != nil {
		return nil, err
	}
	var sym core.EvalBatch
	for i, s := range group {
		if _, err := sym.Add(ms[i], s, sc.symbiosSlices(slice, s.CycleSlices())); err != nil {
			return nil, err
		}
	}
	res, err := sym.Run(ctx)
	if err != nil {
		return nil, err
	}
	ws := make([]float64, len(group))
	for i, r := range res {
		ws[i], err = metrics.WeightedSpeedup(r.Cycles, r.Committed, solo)
		if err != nil {
			return nil, err
		}
	}
	return ws, nil
}

// Best, Worst and Avg summarize the symbios weighted speedups.
func (ev *MixEval) Best() float64 { return metrics.Max(ev.WS) }

// Worst returns the lowest symbios weighted speedup observed.
func (ev *MixEval) Worst() float64 { return metrics.Min(ev.WS) }

// Avg returns the mean symbios weighted speedup — the expected throughput
// of an oblivious (random) jobscheduler.
func (ev *MixEval) Avg() float64 { return metrics.Mean(ev.WS) }

// PredictorWS returns the symbios weighted speedup of the schedule each
// predictor picks from the sample-phase data.
func (ev *MixEval) PredictorWS(p core.Predictor) float64 {
	return ev.WS[core.Pick(ev.Samples, p)]
}

// Figure1Row is one bar pair of Figure 1.
type Figure1Row struct {
	Mix          string
	Worst, Best  float64
	Avg          float64
	SpreadPct    float64 // 100*(best-worst)/worst
	OverAvgPct   float64 // 100*(best-avg)/avg
	NumSchedules int
}

// Figure1 runs the worst-versus-best weighted speedup comparison over the
// 13 jobmix / multithreading level / replacement policy combinations.
func Figure1(sc Scale, labels []string) ([]Figure1Row, error) {
	return Figure1Ctx(context.Background(), sc, labels)
}

// Figure1Ctx is Figure1 bounded by a context, with each mix a resumable
// checkpoint shard.
func Figure1Ctx(ctx context.Context, sc Scale, labels []string) ([]Figure1Row, error) {
	if labels == nil {
		labels = workload.FigureMixes
	}
	return shardedMap(ctx, "fig1", labels, parallel.Options{}, func(ctx context.Context, _ int, l string) (Figure1Row, error) {
		ev, err := EvalMixCachedCtx(ctx, l, sc)
		if err != nil {
			return Figure1Row{}, err
		}
		return Figure1Row{
			Mix:          l,
			Worst:        ev.Worst(),
			Best:         ev.Best(),
			Avg:          ev.Avg(),
			SpreadPct:    100 * (ev.Best() - ev.Worst()) / ev.Worst(),
			OverAvgPct:   100 * (ev.Best() - ev.Avg()) / ev.Avg(),
			NumSchedules: len(ev.Scheds),
		}, nil
	})
}

// Table3Row is one row of Table 3: the predictor quantities a schedule
// showed in the sample phase and its weighted speedup in the symbios phase.
type Table3Row struct {
	Schedule  string
	IPC       float64
	AllConf   float64
	Dcache    float64
	FQ        float64
	FP        float64
	Sum2      float64
	Diversity float64
	Balance   float64
	Composite float64
	WS        float64
}

// Table3 reproduces the detailed Jsb(6,3,3) study: every one of the 10
// possible schedules, fully enumerated.
func Table3(sc Scale) ([]Table3Row, *MixEval, error) {
	return Table3Ctx(context.Background(), sc)
}

// Table3Ctx is Table3 bounded by a context. The MixEval holds live machine
// samples, so the study is not shard-checkpointed — only interruptible.
func Table3Ctx(ctx context.Context, sc Scale) ([]Table3Row, *MixEval, error) {
	ev, err := EvalMixCachedCtx(ctx, "Jsb(6,3,3)", sc)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table3Row, len(ev.Samples))
	for i, s := range ev.Samples {
		rows[i] = Table3Row{
			Schedule:  s.Sched.String(),
			IPC:       s.IPC,
			AllConf:   s.AllConf,
			Dcache:    s.Dcache,
			FQ:        s.FQ,
			FP:        s.FP,
			Sum2:      s.Sum2,
			Diversity: s.Diversity,
			Balance:   s.Balance,
			Composite: core.Composite(ev.Samples, i),
			WS:        ev.WS[i],
		}
	}
	return rows, ev, nil
}

// Figure2Bar is one bar of Figure 2 (and one group entry of Figure 3).
type Figure2Bar struct {
	Label string
	WS    float64
}

// Figure2Bars renders an evaluated mix as the Figure 2 bar list: best,
// worst and average schedule, then the schedule chosen by each predictor.
func Figure2Bars(ev *MixEval) []Figure2Bar {
	bars := []Figure2Bar{
		{Label: "Best", WS: ev.Best()},
		{Label: "Worst", WS: ev.Worst()},
		{Label: "Avg", WS: ev.Avg()},
	}
	for _, p := range core.Predictors() {
		bars = append(bars, Figure2Bar{Label: p.String(), WS: ev.PredictorWS(p)})
	}
	return bars
}

// Figure2 evaluates Jsb(6,3,3) and returns its predictor bars.
func Figure2(sc Scale) ([]Figure2Bar, error) {
	return Figure2Ctx(context.Background(), sc)
}

// Figure2Ctx is Figure2 bounded by a context.
func Figure2Ctx(ctx context.Context, sc Scale) ([]Figure2Bar, error) {
	ev, err := EvalMixCachedCtx(ctx, "Jsb(6,3,3)", sc)
	if err != nil {
		return nil, err
	}
	return Figure2Bars(ev), nil
}

// Figure3Row is one group of Figure 3: a jobmix with the weighted speedup
// achieved by each predictor next to the best/worst/average schedule.
type Figure3Row struct {
	Mix  string
	Bars []Figure2Bar
}

// Figure3 runs the predictor comparison over the 13 combinations.
func Figure3(sc Scale, labels []string) ([]Figure3Row, error) {
	return Figure3Ctx(context.Background(), sc, labels)
}

// Figure3Ctx is Figure3 bounded by a context, with each mix a resumable
// checkpoint shard.
func Figure3Ctx(ctx context.Context, sc Scale, labels []string) ([]Figure3Row, error) {
	if labels == nil {
		labels = workload.FigureMixes
	}
	return shardedMap(ctx, "fig3", labels, parallel.Options{}, func(ctx context.Context, _ int, l string) (Figure3Row, error) {
		ev, err := EvalMixCachedCtx(ctx, l, sc)
		if err != nil {
			return Figure3Row{}, err
		}
		return Figure3Row{Mix: l, Bars: Figure2Bars(ev)}, nil
	})
}
