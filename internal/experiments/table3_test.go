package experiments

import (
	"testing"

	"symbios/internal/core"
)

// TestTable3AndFigure2 reproduces the Jsb(6,3,3) study at test scale and
// checks the paper's qualitative claims: schedules differ, most predictors
// avoid the worst schedule, and Score lands near the best.
func TestTable3AndFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	rows, ev, err := Table3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Jsb(6,3,3) must enumerate 10 schedules, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-9s IPC %.3f AllConf %6.1f Dcache %5.1f FQ %5.2f FP %5.2f Sum2 %5.2f Div %.3f Bal %.3f Comp %.2f | WS %.3f",
			r.Schedule, r.IPC, r.AllConf, r.Dcache, r.FQ, r.FP, r.Sum2, r.Diversity, r.Balance, r.Composite, r.WS)
	}
	best, worst, avg := ev.Best(), ev.Worst(), ev.Avg()
	t.Logf("best %.3f worst %.3f avg %.3f", best, worst, avg)
	if best <= worst {
		t.Fatal("no spread")
	}
	for _, p := range core.Predictors() {
		ws := ev.PredictorWS(p)
		t.Logf("%-10s -> WS %.3f (of best %.3f)", p, ws, best)
	}
	score := ev.PredictorWS(core.PredScore)
	if score < avg {
		t.Errorf("Score predictor (%.3f) below the random-scheduler expectation (%.3f)", score, avg)
	}
}
