package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/cpu"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

// PairTable is the pairwise symbiosis matrix the authors explored in their
// earlier workshop work ("Explorations in symbiosis on two multithreaded
// architectures"): for every pair of benchmarks, the weighted speedup of
// coscheduling them on a 2-context machine. Values above 1 mean the pair
// symbioses; the spread across a row shows how much a job's performance
// depends on its partner — the phenomenon SOS exploits.
type PairTable struct {
	Names []string
	// WS[i][j] is the pair's weighted speedup; the diagonal holds 1 by
	// definition (a job time-shared with itself gains nothing).
	WS [][]float64
}

// Pairwise builds the symbiosis matrix for the given benchmarks (defaults
// to the paper's single-threaded Table 1 jobs).
func Pairwise(sc Scale, names []string) (*PairTable, error) {
	return PairwiseCtx(context.Background(), sc, names)
}

// PairwiseCtx is Pairwise bounded by a context, with each solo calibration
// and each matrix cell a resumable checkpoint shard.
func PairwiseCtx(ctx context.Context, sc Scale, names []string) (*PairTable, error) {
	if names == nil {
		names = []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GO", "IS", "CG", "EP"}
	}
	cfg := arch.Default21264(2)

	// Solo rates, one calibration per benchmark; each runs on its own
	// machine, so the calibrations fan out.
	solo, err := shardedMap(ctx, "pairwise-solo", names, parallel.Options{}, func(_ context.Context, i int, name string) (float64, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return 0, err
		}
		spec.Threads, spec.SyncEvery = 1, 0
		job, err := workload.NewJob(spec, i, rng.Hash2(sc.Seed, uint64(i), 0x9a1))
		if err != nil {
			return 0, err
		}
		return soloOnly(cfg, job, sc)
	})
	if err != nil {
		return nil, err
	}

	t := &PairTable{Names: names, WS: make([][]float64, len(names))}
	for i := range names {
		t.WS[i] = make([]float64, len(names))
		t.WS[i][i] = 1
	}
	// The upper-triangle cells are independent two-context simulations —
	// the embarrassingly parallel heart of the matrix. Each shard drives a
	// group of cells as one cpu.Batch, so a worker claims several short
	// pair simulations at once; the grouping changes no simulated bit.
	var cells []pairCell
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			cells = append(cells, pairCell{i, j})
		}
	}
	groups := chunkRanges(len(cells), pairBatch)
	wsGroups, err := shardedMap(ctx, "pairwise", groups, parallel.Options{}, func(_ context.Context, _ int, g [2]int) ([]float64, error) {
		return pairWSBatch(cfg, names, solo, cells[g[0]:g[1]], sc)
	})
	if err != nil {
		return nil, err
	}
	var wss []float64
	for _, g := range wsGroups {
		wss = append(wss, g...)
	}
	for k, c := range cells {
		t.WS[c.i][c.j], t.WS[c.j][c.i] = wss[k], wss[k]
	}
	return t, nil
}

// pairBatch is how many matrix cells one worker drives as a single
// cpu.Batch work item.
const pairBatch = 6

// pairCell indexes one upper-triangle cell of the matrix.
type pairCell struct{ i, j int }

// soloOnly measures one job's solo IPC.
func soloOnly(cfg arch.Config, job *workload.Job, sc Scale) (float64, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return 0, err
	}
	c.Attach(0, job.Source(0), 0, nil, 0)
	c.Run(sc.CalibWarmup)
	before := c.ThreadCommitted(0)
	c.Run(sc.CalibMeasure)
	rate := float64(c.ThreadCommitted(0)-before) / float64(sc.CalibMeasure)
	if rate <= 0 {
		return 0, fmt.Errorf("experiments: %s made no solo progress", job.Name())
	}
	return rate, nil
}

// pairWSBatch coschedules a group of benchmark pairs, each continuously on
// its own two-context core, and returns their weighted speedups. The cores
// advance together as one cpu.Batch; each pair's result is identical to
// running its core alone.
func pairWSBatch(cfg arch.Config, names []string, solo []float64, cells []pairCell, sc Scale) ([]float64, error) {
	mk := func(name string, id int) (*workload.Job, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		spec.Threads, spec.SyncEvery = 1, 0
		return workload.NewJob(spec, id, rng.Hash2(sc.Seed, uint64(id), 0x9a2))
	}
	var batch cpu.Batch
	cores := make([]*cpu.Core, len(cells))
	for k, cl := range cells {
		ja, err := mk(names[cl.i], 0)
		if err != nil {
			return nil, err
		}
		jb, err := mk(names[cl.j], 1)
		if err != nil {
			return nil, err
		}
		c, err := cpu.New(cfg)
		if err != nil {
			return nil, err
		}
		c.Attach(0, ja.Source(0), 0, nil, 0)
		c.Attach(1, jb.Source(0), 0, nil, 0)
		cores[k] = c
		batch.Add(c)
	}
	batch.Run(sc.WarmupCycles)
	before := make([][2]uint64, len(cells))
	for k, c := range cores {
		before[k] = [2]uint64{c.ThreadCommitted(0), c.ThreadCommitted(1)}
	}
	measure := sc.SymbiosCycles / 4
	if measure == 0 {
		measure = 1_000_000
	}
	batch.Run(measure)
	wss := make([]float64, len(cells))
	for k, c := range cores {
		cl := cells[k]
		wsA := float64(c.ThreadCommitted(0)-before[k][0]) / float64(measure) / solo[cl.i]
		wsB := float64(c.ThreadCommitted(1)-before[k][1]) / float64(measure) / solo[cl.j]
		wss[k] = wsA + wsB
	}
	return wss, nil
}
