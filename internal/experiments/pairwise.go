package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/cpu"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

// PairTable is the pairwise symbiosis matrix the authors explored in their
// earlier workshop work ("Explorations in symbiosis on two multithreaded
// architectures"): for every pair of benchmarks, the weighted speedup of
// coscheduling them on a 2-context machine. Values above 1 mean the pair
// symbioses; the spread across a row shows how much a job's performance
// depends on its partner — the phenomenon SOS exploits.
type PairTable struct {
	Names []string
	// WS[i][j] is the pair's weighted speedup; the diagonal holds 1 by
	// definition (a job time-shared with itself gains nothing).
	WS [][]float64
}

// Pairwise builds the symbiosis matrix for the given benchmarks (defaults
// to the paper's single-threaded Table 1 jobs).
func Pairwise(sc Scale, names []string) (*PairTable, error) {
	return PairwiseCtx(context.Background(), sc, names)
}

// PairwiseCtx is Pairwise bounded by a context, with each solo calibration
// and each matrix cell a resumable checkpoint shard.
func PairwiseCtx(ctx context.Context, sc Scale, names []string) (*PairTable, error) {
	if names == nil {
		names = []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GO", "IS", "CG", "EP"}
	}
	cfg := arch.Default21264(2)

	// Solo rates, one calibration per benchmark; each runs on its own
	// machine, so the calibrations fan out.
	solo, err := shardedMap(ctx, "pairwise-solo", names, parallel.Options{}, func(_ context.Context, i int, name string) (float64, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return 0, err
		}
		spec.Threads, spec.SyncEvery = 1, 0
		job, err := workload.NewJob(spec, i, rng.Hash2(sc.Seed, uint64(i), 0x9a1))
		if err != nil {
			return 0, err
		}
		return soloOnly(cfg, job, sc)
	})
	if err != nil {
		return nil, err
	}

	t := &PairTable{Names: names, WS: make([][]float64, len(names))}
	for i := range names {
		t.WS[i] = make([]float64, len(names))
		t.WS[i][i] = 1
	}
	// The upper-triangle cells are independent two-context simulations —
	// the embarrassingly parallel heart of the matrix.
	type cell struct{ i, j int }
	var cells []cell
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			cells = append(cells, cell{i, j})
		}
	}
	wss, err := shardedMap(ctx, "pairwise", cells, parallel.Options{}, func(_ context.Context, _ int, c cell) (float64, error) {
		return pairWS(cfg, names[c.i], names[c.j], solo[c.i], solo[c.j], sc)
	})
	if err != nil {
		return nil, err
	}
	for k, c := range cells {
		t.WS[c.i][c.j], t.WS[c.j][c.i] = wss[k], wss[k]
	}
	return t, nil
}

// soloOnly measures one job's solo IPC.
func soloOnly(cfg arch.Config, job *workload.Job, sc Scale) (float64, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return 0, err
	}
	c.Attach(0, job.Source(0), 0, nil, 0)
	c.Run(sc.CalibWarmup)
	before := c.ThreadCommitted(0)
	c.Run(sc.CalibMeasure)
	rate := float64(c.ThreadCommitted(0)-before) / float64(sc.CalibMeasure)
	if rate <= 0 {
		return 0, fmt.Errorf("experiments: %s made no solo progress", job.Name())
	}
	return rate, nil
}

// pairWS coschedules two benchmarks continuously and returns their
// weighted speedup.
func pairWS(cfg arch.Config, a, b string, soloA, soloB float64, sc Scale) (float64, error) {
	mk := func(name string, id int) (*workload.Job, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		spec.Threads, spec.SyncEvery = 1, 0
		return workload.NewJob(spec, id, rng.Hash2(sc.Seed, uint64(id), 0x9a2))
	}
	ja, err := mk(a, 0)
	if err != nil {
		return 0, err
	}
	jb, err := mk(b, 1)
	if err != nil {
		return 0, err
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return 0, err
	}
	c.Attach(0, ja.Source(0), 0, nil, 0)
	c.Attach(1, jb.Source(0), 0, nil, 0)
	c.Run(sc.WarmupCycles)
	beforeA, beforeB := c.ThreadCommitted(0), c.ThreadCommitted(1)
	measure := sc.SymbiosCycles / 4
	if measure == 0 {
		measure = 1_000_000
	}
	c.Run(measure)
	wsA := float64(c.ThreadCommitted(0)-beforeA) / float64(measure) / soloA
	wsB := float64(c.ThreadCommitted(1)-beforeB) / float64(measure) / soloB
	return wsA + wsB, nil
}
