package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/metrics"
	"symbios/internal/parallel"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// The ablation studies probe the design choices DESIGN.md calls out: how
// many schedules the sample phase needs, how robust the predictor choice is
// to the random sample drawn, and how much the ICOUNT fetch policy
// contributes to the substrate's behaviour.

// SampleCountRow reports SOS quality as a function of the number of
// schedules sampled (the paper argues "a small sample of the possible
// schedules is sufficient to identify a good schedule quickly").
type SampleCountRow struct {
	Samples  int
	ChosenWS float64
	BestWS   float64 // best within the drawn sample
	AvgWS    float64
	Regret   float64 // (best - chosen) / best
}

// AblationSampleCount evaluates Score-predicted quality for several sample
// sizes on one mix. The schedule space must be large enough that sample
// size matters; Jsb(8,4,1) (2520 schedules) is a good subject.
func AblationSampleCount(label string, sc Scale, counts []int) ([]SampleCountRow, error) {
	return AblationSampleCountCtx(context.Background(), label, sc, counts)
}

// AblationSampleCountCtx is AblationSampleCount bounded by a context, with
// each sample count a resumable checkpoint shard.
func AblationSampleCountCtx(ctx context.Context, label string, sc Scale, counts []int) ([]SampleCountRow, error) {
	if _, err := workload.MixByLabel(label); err != nil {
		return nil, err
	}
	if counts == nil {
		counts = []int{2, 5, 10, 20}
	}
	// EvalMix bypasses the process cache, so each count is an independent
	// work item (its sample draw depends only on the Scale).
	return shardedMap(ctx, "ablation-samples", counts, parallel.Options{}, func(ctx context.Context, _ int, n int) (SampleCountRow, error) {
		s := sc
		s.MaxSamples = n
		ev, err := EvalMixCtx(ctx, label, s)
		if err != nil {
			return SampleCountRow{}, err
		}
		chosen := ev.PredictorWS(core.PredScore)
		return SampleCountRow{
			Samples:  len(ev.Scheds),
			ChosenWS: chosen,
			BestWS:   ev.Best(),
			AvgWS:    ev.Avg(),
			Regret:   (ev.Best() - chosen) / ev.Best(),
		}, nil
	})
}

// SeedRow reports one random-sample draw's outcome.
type SeedRow struct {
	Seed     uint64
	ChosenWS float64
	AvgWS    float64
	GainPct  float64
}

// AblationSeeds re-draws the random schedule sample under different seeds
// and reports the Score predictor's gain over the random-scheduler
// expectation each time — the robustness of "10 random schedules is
// enough".
func AblationSeeds(label string, sc Scale, seeds []uint64) ([]SeedRow, error) {
	return AblationSeedsCtx(context.Background(), label, sc, seeds)
}

// AblationSeedsCtx is AblationSeeds bounded by a context, with each seed a
// resumable checkpoint shard.
func AblationSeedsCtx(ctx context.Context, label string, sc Scale, seeds []uint64) ([]SeedRow, error) {
	if seeds == nil {
		seeds = []uint64{1, 2, 3, 4, 5}
	}
	return shardedMap(ctx, "ablation-seeds", seeds, parallel.Options{}, func(ctx context.Context, _ int, seed uint64) (SeedRow, error) {
		s := sc
		s.Seed = seed
		ev, err := EvalMixCtx(ctx, label, s)
		if err != nil {
			return SeedRow{}, err
		}
		chosen := ev.PredictorWS(core.PredScore)
		return SeedRow{
			Seed:     seed,
			ChosenWS: chosen,
			AvgWS:    ev.Avg(),
			GainPct:  100 * (chosen - ev.Avg()) / ev.Avg(),
		}, nil
	})
}

// FetchPolicyRow compares the substrate under ICOUNT versus round-robin
// fetch for one coschedule.
type FetchPolicyRow struct {
	Policy       string
	IPC          float64
	WS           float64
	SpreadBestWS float64
	SpreadWorst  float64
}

// AblationFetchPolicy runs the Jsb(6,3,3) schedule spread under both fetch
// policies. ICOUNT is expected to deliver higher throughput (it starves
// stalled threads of fetch bandwidth); the schedule-sensitivity phenomenon
// must survive under both, showing SOS does not depend on one fetch policy.
func AblationFetchPolicy(sc Scale) ([]FetchPolicyRow, error) {
	return AblationFetchPolicyCtx(context.Background(), sc)
}

// AblationFetchPolicyCtx is AblationFetchPolicy bounded by a context, with
// each fetch policy a resumable checkpoint shard.
func AblationFetchPolicyCtx(ctx context.Context, sc Scale) ([]FetchPolicyRow, error) {
	mix := workload.MustMix("Jsb(6,3,3)")
	scheds, err := schedule.Enumerate(mix.Tasks(), mix.SMTLevel, mix.Swap, 100)
	if err != nil {
		return nil, err
	}
	policies := []arch.FetchPolicy{arch.FetchICOUNT, arch.FetchRoundRobin}
	return shardedMap(ctx, "ablation-fetch", policies, parallel.Options{}, func(ctx context.Context, _ int, policy arch.FetchPolicy) (FetchPolicyRow, error) {
		cfg := arch.Default21264(mix.SMTLevel)
		cfg.FetchPolicy = policy

		jobs, seeds, err := buildJobs(mix, sc.Seed)
		if err != nil {
			return FetchPolicyRow{}, err
		}
		solo, err := core.SoloRates(cfg, jobs, seeds, sc.CalibWarmup, sc.CalibMeasure)
		if err != nil {
			return FetchPolicyRow{}, err
		}

		type run struct{ ws, ipc float64 }
		runs, err := parallel.Map(scheds, parallel.Options{Context: ctx}, func(_ int, s schedule.Schedule) (run, error) {
			jobs, _, err := buildJobs(mix, sc.Seed)
			if err != nil {
				return run{}, err
			}
			m, err := core.NewMachine(cfg, jobs, sc.Slice)
			if err != nil {
				return run{}, err
			}
			if err := warm(ctx, m, s, sc.WarmupCycles); err != nil {
				return run{}, err
			}
			res, err := m.RunScheduleCtx(ctx, s, sc.symbiosSlices(sc.Slice, s.CycleSlices()))
			if err != nil {
				return run{}, err
			}
			ws, err := metrics.WeightedSpeedup(res.Cycles, res.Committed, solo)
			if err != nil {
				return run{}, err
			}
			return run{ws: ws, ipc: res.Counters.IPC()}, nil
		})
		if err != nil {
			return FetchPolicyRow{}, err
		}
		wss := make([]float64, len(runs))
		ipcs := make([]float64, len(runs))
		for i, r := range runs {
			wss[i], ipcs[i] = r.ws, r.ipc
		}
		return FetchPolicyRow{
			Policy:       policy.String(),
			IPC:          metrics.Mean(ipcs),
			WS:           metrics.Mean(wss),
			SpreadBestWS: metrics.Max(wss),
			SpreadWorst:  metrics.Min(wss),
		}, nil
	})
}

// String renders a fetch-policy row for reports.
func (r FetchPolicyRow) String() string {
	return fmt.Sprintf("%-10s mean IPC %.3f  mean WS %.3f  best %.3f  worst %.3f",
		r.Policy, r.IPC, r.WS, r.SpreadBestWS, r.SpreadWorst)
}
