package experiments

import "testing"

// TestResponseCompare reproduces the Section 9 comparison at test scale on
// one SMT level: SOS must deliver a response time no worse than a few
// percent above the naive scheduler's (the paper sees 8-18% improvements;
// at small scale we assert non-inferiority plus a stable system).
func TestResponseCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	row, err := ResponseCompare(3, QuickQueueScale(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SMT %d: naive RT %.0f (n=%d), SOS RT %.0f (n=%d), improvement %.1f%%, N~%.1f",
		row.SMTLevel, row.NaiveResponse, row.NaiveCompleted, row.SOSResponse, row.SOSCompleted,
		row.ImprovementPct, row.MeanJobsInSystem)
	if row.NaiveCompleted < 3 || row.SOSCompleted < 3 {
		t.Fatalf("too few completions for a meaningful comparison")
	}
	if row.ImprovementPct < -10 {
		t.Errorf("SOS response time (%.0f) much worse than naive (%.0f)", row.SOSResponse, row.NaiveResponse)
	}
}
