package experiments

import (
	"context"
	"fmt"
	"sync"
)

// evalFlight is one memoized (and possibly in-flight) mix evaluation.
// Waiters block on done; ev/err are written exactly once, before done is
// closed.
type evalFlight struct {
	done chan struct{}
	ev   *MixEval
	err  error
}

// evalCache memoizes MixEval results within a process, with singleflight
// semantics: Figures 1 and 3 and the warmstart study are different views of
// the same underlying experiments (as in the paper), and the parallel
// drivers fan their mixes out concurrently — concurrent misses on one key
// must compute the evaluation exactly once, not race to store. Entries are
// deterministic functions of their key.
var (
	evalMu    sync.Mutex
	evalCache = map[string]*evalFlight{}
)

// cacheKey identifies an evaluation.
func cacheKey(label string, sc Scale) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		label, sc.Slice, sc.LittleDivisor, sc.SymbiosCycles, sc.WarmupCycles,
		sc.CalibWarmup, sc.CalibMeasure, sc.SampleRounds, sc.MaxSamples, sc.Seed)
}

// EvalMixCached returns the memoized evaluation of a mix, computing it on
// first use. A concurrent second caller of the same key blocks until the
// first finishes and shares its result rather than recomputing.
func EvalMixCached(label string, sc Scale) (*MixEval, error) {
	return EvalMixCachedCtx(context.Background(), label, sc)
}

// EvalMixCachedCtx is EvalMixCached computing under the caller's context. If
// the computing caller's context aborts, joined waiters receive that abort
// error too; the failed entry is dropped, so a later caller recomputes under
// its own (presumably healthier) context.
func EvalMixCachedCtx(ctx context.Context, label string, sc Scale) (*MixEval, error) {
	key := cacheKey(label, sc)
	evalMu.Lock()
	if f, ok := evalCache[key]; ok {
		evalMu.Unlock()
		<-f.done
		return f.ev, f.err
	}
	f := &evalFlight{done: make(chan struct{})}
	evalCache[key] = f
	evalMu.Unlock()

	f.ev, f.err = EvalMixCtx(ctx, label, sc)
	close(f.done)
	if f.err != nil {
		// Do not cache failures: a later caller may run under conditions
		// that succeed (and joined waiters already got this attempt's
		// error).
		evalMu.Lock()
		if evalCache[key] == f {
			delete(evalCache, key)
		}
		evalMu.Unlock()
	}
	return f.ev, f.err
}

// ClearEvalCache discards all memoized evaluations (tests use this to force
// recomputation). In-flight computations are not interrupted; their waiters
// still share the in-flight result, but new callers recompute.
func ClearEvalCache() {
	evalMu.Lock()
	evalCache = map[string]*evalFlight{}
	evalMu.Unlock()
}
