package experiments

import (
	"fmt"
	"sync"
)

// evalCache memoizes MixEval results within a process. Figures 1 and 3 and
// the warmstart study are different views of the same underlying
// experiments (as in the paper), so the harness evaluates each (mix, scale)
// pair once. Entries are deterministic functions of their key.
var evalCache sync.Map // string -> *MixEval

// cacheKey identifies an evaluation.
func cacheKey(label string, sc Scale) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		label, sc.Slice, sc.LittleDivisor, sc.SymbiosCycles, sc.WarmupCycles,
		sc.CalibWarmup, sc.CalibMeasure, sc.SampleRounds, sc.MaxSamples, sc.Seed)
}

// EvalMixCached returns the memoized evaluation of a mix, computing it on
// first use.
func EvalMixCached(label string, sc Scale) (*MixEval, error) {
	key := cacheKey(label, sc)
	if v, ok := evalCache.Load(key); ok {
		return v.(*MixEval), nil
	}
	ev, err := EvalMix(label, sc)
	if err != nil {
		return nil, err
	}
	evalCache.Store(key, ev)
	return ev, nil
}

// ClearEvalCache discards all memoized evaluations (tests use this to force
// recomputation).
func ClearEvalCache() {
	evalCache.Range(func(k, _ any) bool {
		evalCache.Delete(k)
		return true
	})
}
