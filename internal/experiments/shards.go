package experiments

import (
	"context"
	"fmt"

	"symbios/internal/checkpoint"
	"symbios/internal/obs"
	"symbios/internal/parallel"
)

// Shard-level checkpointing. Every top-level experiment is a fan-out of
// independent work items ("shards"), each a pure function of the Scale and
// its index-derived seeds. shardedMap layers three robustness concerns over
// parallel.Map without touching the science:
//
//   - the context bounds the fan-out (deadline or cancellation aborts
//     between shards and, through RunScheduleCtx, inside them);
//   - a checkpoint.Recorder carried in the context memoizes completed
//     shards, so a resumed run replays recorded results and recomputes only
//     what the crash interrupted — byte-identical to an uninterrupted run
//     because each shard is deterministic and JSON round-trips exactly;
//   - a checkpoint.Watchdog carried in the context brackets each shard
//     computation, so a stuck simulation is detected and named.
//
// Both carriers are optional: with a plain context shardedMap degrades to
// parallel.Map with context support.

// shardKey names one work item of a top-level fan-out. Keys are stable
// across runs — they depend only on the experiment name and item index —
// which is what lets a resumed process find the crashed run's results.
func shardKey(exp string, i int) string { return fmt.Sprintf("%s/%05d", exp, i) }

// shardedMap is parallel.Map with checkpoint memoization and stall
// detection. fn must be a deterministic function of (i, item) whose result
// survives a JSON round-trip unchanged (struct-of-scalars rows qualify;
// anything holding pointers or unexported state does not — plumb only the
// context for those).
func shardedMap[T, R any](ctx context.Context, exp string, items []T, opts parallel.Options, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rec := checkpoint.RecorderFrom(ctx)
	wd := checkpoint.WatchdogFrom(ctx)
	tr := obs.TracerFrom(ctx)
	opts.Context = ctx
	out, err := parallel.Map(items, opts, func(i int, item T) (R, error) {
		key := shardKey(exp, i)
		var r R
		hit, lerr := rec.Lookup(key, &r)
		if lerr != nil {
			return r, fmt.Errorf("experiments: shard %s: %w", key, lerr)
		}
		if hit {
			return r, nil
		}
		end := wd.Begin(key)
		// Span computed shards only: a checkpoint replay above is not work,
		// and tracing it would skew the shard-duration histogram.
		endSpan := tr.Span("shard", key)
		r, ferr := fn(ctx, i, item)
		endSpan()
		end()
		if ferr != nil {
			return r, ferr
		}
		if rerr := rec.Record(key, r); rerr != nil {
			return r, fmt.Errorf("experiments: shard %s: %w", key, rerr)
		}
		return r, nil
	})
	if err != nil {
		return out, err
	}
	// A completed fan-out is worth persisting even mid-experiment: "all"
	// chains many fan-outs and a crash in the next one must not lose this
	// one's shards.
	if ferr := rec.Flush(); ferr != nil {
		return out, ferr
	}
	return out, nil
}
