package experiments

import (
	"reflect"
	"testing"

	"symbios/internal/parallel"
)

// TestOpenLoadDeterminismAcrossWorkers runs a trimmed overload sweep at
// workers 1 and 8 and requires identical rows: the open-system harness must
// stay byte-deterministic under the fan-out.
func TestOpenLoadDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("open-system sweep is heavy")
	}
	qs := QuickQueueScale()
	qs.Horizon = 3_000_000
	factors := []float64{1.3}

	run := func(workers int) []OpenLoadRow {
		t.Helper()
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		rows, err := OpenLoad(qs, factors)
		if err != nil {
			t.Fatalf("OpenLoad(workers=%d): %v", workers, err)
		}
		return rows
	}
	one := run(1)
	eight := run(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("open-load sweep differs across workers:\n1: %+v\n8: %+v", one, eight)
	}

	if len(one) != 3*2*len(factors) {
		t.Fatalf("row count = %d, want %d", len(one), 3*2*len(factors))
	}
	seen := map[string]bool{}
	for _, r := range one {
		seen[r.Dist+"/"+r.Scheduler] = true
		if r.Completed <= 0 {
			t.Errorf("%s %s at %.2fx completed nothing", r.Dist, r.Scheduler, r.Factor)
		}
		if r.P50 > r.P99 || r.P99 > r.P999 {
			t.Errorf("%s %s at %.2fx: non-monotone percentiles p50=%.0f p99=%.0f p999=%.0f",
				r.Dist, r.Scheduler, r.Factor, r.P50, r.P99, r.P999)
		}
		if r.Scheduler != "backlog-sos" && r.ShrunkPhases != 0 {
			t.Errorf("%s %s reports %d shrunk phases; only backlog-sos shrinks",
				r.Dist, r.Scheduler, r.ShrunkPhases)
		}
	}
	for _, want := range []string{"poisson/naive", "poisson/sos", "poisson/backlog-sos",
		"pareto/naive", "pareto/sos", "pareto/backlog-sos"} {
		if !seen[want] {
			t.Errorf("missing sweep cell %s", want)
		}
	}
}
