package experiments

import "testing"

// TestParallelStudy reproduces the Section 6 contrast at test scale: for
// tight-sync ARRAY, schedules that coschedule its threads dominate
// schedules that split them; for loose-sync ARRAY2 the penalty disappears.
func TestParallelStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	sc := QuickScale()

	tight, err := ParallelStudy(sc, "Jpb(10,2,2)")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Jpb(10,2,2):  cosched avg %.3f, split avg %.3f, chosen cosched=%v (WS %.3f)",
		tight.CoschedAvgWS, tight.SplitAvgWS, tight.ChosenCosched, tight.ChosenWS)
	if tight.CoschedAvgWS <= tight.SplitAvgWS {
		t.Errorf("tight sync: coscheduling ARRAY threads (%.3f) must beat splitting them (%.3f)",
			tight.CoschedAvgWS, tight.SplitAvgWS)
	}

	loose, err := ParallelStudy(sc, "J2pb(10,2,2)")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("J2pb(10,2,2): cosched avg %.3f, split avg %.3f, chosen cosched=%v (WS %.3f)",
		loose.CoschedAvgWS, loose.SplitAvgWS, loose.ChosenCosched, loose.ChosenWS)
	// The loose-sync variant should not pay the huge coscheduling penalty:
	// the gap between classes collapses (the paper finds splitting actually
	// wins by 13%).
	tightGap := tight.CoschedAvgWS / tight.SplitAvgWS
	looseGap := loose.CoschedAvgWS / loose.SplitAvgWS
	if looseGap > 0.9*tightGap {
		t.Errorf("loose sync gap (%.2fx) nearly as large as tight sync gap (%.2fx)", looseGap, tightGap)
	}
}

// TestHierarchicalLevel reproduces one Figure 4 level at test scale: the
// Score-chosen (configuration, schedule) pair must beat the worst.
func TestHierarchicalLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	row, err := hierLevel(nil, 2, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SMT 2: chosen %.3f (%s), best %.3f, worst %.3f, avg %.3f (%d configs, %d candidates)",
		row.ChosenWS, row.ChosenDesc, row.Best, row.Worst, row.Avg, row.Configs, row.Candidates)
	if row.Configs < 2 {
		t.Errorf("only %d thread configurations explored", row.Configs)
	}
	if row.ChosenWS < row.Worst {
		t.Error("chosen candidate below the worst — impossible")
	}
	if row.Best < row.Worst {
		t.Error("best below worst")
	}
	if row.OverWorstPct < 0 {
		t.Errorf("chosen %.3f under the worst %.3f", row.ChosenWS, row.Worst)
	}
}

// TestHierConfigs: configuration expansion enumerates thread assignments.
func TestHierConfigs(t *testing.T) {
	configs, descs, err := hierConfigs([]string{"CG", "mt_ARRAY", "EP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 2 || len(descs) != 2 {
		t.Fatalf("%d configurations for one mt job, want 2", len(configs))
	}
	seen := map[int]bool{}
	for _, cfg := range configs {
		if cfg[0].Threads != 1 || cfg[2].Threads != 1 {
			t.Error("single-threaded jobs acquired threads")
		}
		seen[cfg[1].Threads] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("mt_ARRAY thread counts explored: %v", seen)
	}
	if _, _, err := hierConfigs([]string{"NOPE"}); err == nil {
		t.Error("unknown job accepted")
	}
}
