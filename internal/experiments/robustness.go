package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/faults"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// RobustnessRow is one cell row of the robustness sweep: a jobmix under one
// fault configuration, with the weighted speedup of (a) the oblivious
// round-robin baseline, (b) the static SOS pipeline per predictor — whose
// sample phase sees the corrupted counters and whose pick is then measured on
// the clean machine, isolating how much each predictor's *choice* degrades —
// and (c) the hardened adaptive pipeline running through the same faults plus
// the churn script, with its degraded-mode activity counts.
type RobustnessRow struct {
	Mix   string
	Fault string

	// NaiveWS is the round-robin baseline over the symbios budget, following
	// the same churn script (it reads no counters, so counter faults cannot
	// touch it).
	NaiveWS float64

	// PredWS maps predictor name to the realized WS of the schedule that
	// predictor picks from the fault-injected sample phase.
	PredWS map[string]float64

	// AdaptiveWS is the hardened pipeline's WS under the same faults and
	// churn; the counters below summarize its degraded-mode decisions.
	AdaptiveWS     float64
	Resamples      int
	Retries        int
	SkippedSamples int
	FallbackSlices int
	LostWindows    int
}

// Salt labels for the per-cell seed streams.
const (
	saltRobustCell  = 0x0b57
	saltRobustFault = 0x0fa7
	saltRobustSched = 0x5a33
	saltRobustArr   = 0x0a44
)

// DefaultFaultLevels is the sweep's noise ladder: clean, rising Gaussian
// noise, and one harsh combined configuration (noise + drops + a sticky
// counter + transient read failures).
func DefaultFaultLevels() []faults.Config {
	return []faults.Config{
		{},
		{NoiseSigma: 0.05},
		{NoiseSigma: 0.10},
		{NoiseSigma: 0.20},
		{NoiseSigma: 0.40},
		{NoiseSigma: 0.20, DropRate: 0.10, StickyRate: 0.02, FailRate: 0.05},
	}
}

// DefaultRobustnessMixes keeps the sweep affordable: one small and one
// medium mix, both with fully enumerable or near-enumerable schedule spaces.
func DefaultRobustnessMixes() []string {
	return []string{"Jsb(4,2,2)", "Jsb(6,3,3)"}
}

// DefaultChurn is the single-job churn script: at the symbios midpoint the
// mix's first job departs and an IS instance arrives.
func DefaultChurn() []faults.ChurnSpec {
	return []faults.ChurnSpec{{AtFraction: 0.5, DepartJob: 0, ArriveBench: "IS"}}
}

// Robustness runs the full sweep: every mix label under every fault level.
// Cells are independent simulations seeded from (sc.Seed, cell index) and fan
// out across workers with bit-identical results at any worker count; a cell
// failure fires a shared cancel token so in-flight adaptive runs abort
// instead of finishing work the sweep will discard.
func Robustness(sc Scale, labels []string, levels []faults.Config, churn []faults.ChurnSpec) ([]RobustnessRow, error) {
	return RobustnessCtx(context.Background(), sc, labels, levels, churn)
}

// RobustnessCtx is Robustness bounded by a context, with each cell a
// resumable checkpoint shard: a context carrying a checkpoint.Recorder
// replays completed cells and recomputes only the interrupted ones,
// byte-identically.
func RobustnessCtx(ctx context.Context, sc Scale, labels []string, levels []faults.Config, churn []faults.ChurnSpec) ([]RobustnessRow, error) {
	if labels == nil {
		labels = DefaultRobustnessMixes()
	}
	if levels == nil {
		levels = DefaultFaultLevels()
	}
	if churn == nil {
		churn = DefaultChurn()
	}
	type cell struct {
		label string
		fc    faults.Config
	}
	var cells []cell
	for _, l := range labels {
		for _, fc := range levels {
			cells = append(cells, cell{l, fc})
		}
	}
	var abort parallel.Cancel
	return shardedMap(ctx, "robustness", cells, parallel.Options{Cancel: &abort}, func(ctx context.Context, i int, c cell) (RobustnessRow, error) {
		return robustnessCell(ctx, c.label, c.fc, churn, sc, rng.Hash2(sc.Seed, uint64(i), saltRobustCell), &abort)
	})
}

// robustnessCell evaluates one (mix, fault level) pair.
func robustnessCell(ctx context.Context, label string, fc faults.Config, churn []faults.ChurnSpec, sc Scale, cellSeed uint64, abort *parallel.Cancel) (RobustnessRow, error) {
	mix, err := workload.MixByLabel(label)
	if err != nil {
		return RobustnessRow{}, err
	}
	cfg := arch.Default21264(mix.SMTLevel)
	slice := sc.sliceFor(mix)
	symSlices := int(sc.SymbiosCycles / slice)
	if symSlices < 1 {
		symSlices = 1
	}

	// Solo rates are calibrated on the clean machine — the experimenter's
	// metric must not depend on the fault level under test.
	calJobs, seeds, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return RobustnessRow{}, err
	}
	solo, err := core.SoloRates(cfg, calJobs, seeds, sc.CalibWarmup, sc.CalibMeasure)
	if err != nil {
		return RobustnessRow{}, fmt.Errorf("experiments: %s: %w", label, err)
	}

	row := RobustnessRow{Mix: label, Fault: fc.String()}

	naiveChurn, err := resolveChurn(churn, cfg, sc, symSlices, cellSeed)
	if err != nil {
		return RobustnessRow{}, err
	}
	row.NaiveWS, err = naiveChurnWS(ctx, mix, cfg, slice, sc, symSlices, naiveChurn, solo)
	if err != nil {
		return RobustnessRow{}, err
	}

	row.PredWS, err = staticPredictorWS(ctx, mix, cfg, slice, sc, fc, solo, cellSeed)
	if err != nil {
		return RobustnessRow{}, err
	}

	jobs, _, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return RobustnessRow{}, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return RobustnessRow{}, err
	}
	afc := fc
	afc.Seed = rng.Hash2(cellSeed, 3, saltRobustFault)
	if afc.Active() {
		m.SetCounterReader(faults.New(afc))
	}
	adChurn, err := resolveChurn(churn, cfg, sc, symSlices, cellSeed)
	if err != nil {
		return RobustnessRow{}, err
	}
	res, err := core.RunAdaptiveCtx(ctx, m, mix.SMTLevel, mix.Swap, solo, core.AdaptiveOptions{
		Samples:       sc.MaxSamples,
		Predictor:     core.PredScore,
		SymbiosSlices: symSlices,
		WarmupCycles:  sc.WarmupCycles,
		Seed:          rng.Hash2(cellSeed, 4, saltRobustSched),
		Churn:         adChurn,
		Abort:         abort,
	})
	if err != nil {
		return RobustnessRow{}, fmt.Errorf("experiments: %s under %s: %w", label, fc, err)
	}
	row.AdaptiveWS = res.WeightedSpeedup
	row.Resamples = res.Resamples
	row.Retries = res.Retries
	row.SkippedSamples = res.SkippedSamples
	row.FallbackSlices = res.FallbackSlices
	row.LostWindows = res.LostWindows
	return row, nil
}

// staticPredictorWS runs the static (non-adaptive) SOS sample phase through
// the fault injector and returns each predictor's realized symbios WS — the
// pick is made from corrupted samples, then measured on the clean machine, so
// the column shows pure prediction degradation. The static pipeline has no
// retry path: evaluations that lose counter reads are silently partial,
// exactly as a scheduler that never checks for PMU trouble would see them.
func staticPredictorWS(ctx context.Context, mix workload.Mix, cfg arch.Config, slice uint64, sc Scale, fc faults.Config, solo []float64, cellSeed uint64) (map[string]float64, error) {
	jobs, _, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return nil, err
	}
	sfc := fc
	sfc.Seed = rng.Hash2(cellSeed, 1, saltRobustFault)
	if sfc.Active() {
		m.SetCounterReader(faults.New(sfc))
	}

	r := rng.New(rng.Hash2(cellSeed, 2, saltRobustSched))
	scheds := schedule.Sample(r, m.NumTasks(), mix.SMTLevel, mix.Swap, sc.MaxSamples)
	if len(scheds) == 0 {
		return nil, fmt.Errorf("experiments: no schedules for %s", mix.Label)
	}
	if err := warm(ctx, m, scheds[0], sc.WarmupCycles); err != nil {
		return nil, err
	}
	samples := make([]core.Sample, 0, len(scheds))
	for _, s := range scheds {
		run, err := m.RunScheduleCtx(ctx, s, s.CycleSlices()*sc.SampleRounds)
		if err != nil {
			return nil, err
		}
		samples = append(samples, core.NewSample(s, run))
	}

	out := make(map[string]float64, len(core.Predictors()))
	wsBySched := map[string]float64{}
	for _, p := range core.Predictors() {
		pick := samples[core.Pick(samples, p)].Sched
		key := pick.String()
		ws, ok := wsBySched[key]
		if !ok {
			ws, err = symbiosWS(ctx, mix, cfg, slice, sc, pick, solo)
			if err != nil {
				return nil, err
			}
			wsBySched[key] = ws
		}
		out[p.String()] = ws
	}
	return out, nil
}

// resolveChurn converts fault-layer churn specs into concrete core events:
// slice ordinals from budget fractions, and freshly instantiated, solo-
// calibrated arrival jobs. Each call builds new job instances (jobs are
// stateful), from the same seeds, so the naive and adaptive runs of a cell
// see identical arrivals.
func resolveChurn(specs []faults.ChurnSpec, cfg arch.Config, sc Scale, symSlices int, cellSeed uint64) ([]core.ChurnEvent, error) {
	var evs []core.ChurnEvent
	for i, spec := range specs {
		if spec.AtFraction <= 0 || spec.AtFraction >= 1 {
			return nil, fmt.Errorf("experiments: churn fraction %.2f outside (0, 1)", spec.AtFraction)
		}
		ev := core.ChurnEvent{AtSlice: int(spec.AtFraction * float64(symSlices))}
		if ev.AtSlice < 1 {
			ev.AtSlice = 1
		}
		if spec.DepartJob >= 0 {
			ev.Depart = []int{spec.DepartJob}
		}
		if spec.ArriveBench != "" {
			jspec, err := workload.Lookup(spec.ArriveBench)
			if err != nil {
				return nil, err
			}
			// Arrivals are single-threaded so a one-for-one swap keeps the
			// task count (and hence the schedule space shape) stable.
			jspec.Threads, jspec.SyncEvery = 1, 0
			id := 1000 + i // distinct from mix-assigned IDs (list ordinals)
			jseed := rng.Hash2(cellSeed, uint64(i), saltRobustArr)
			cal, err := workload.NewJob(jspec, id, jseed)
			if err != nil {
				return nil, err
			}
			soloArr, err := core.SoloRates(cfg, []*workload.Job{cal}, []uint64{jseed}, sc.CalibWarmup, sc.CalibMeasure)
			if err != nil {
				return nil, err
			}
			arr, err := workload.NewJob(jspec, id, jseed) // fresh progress after the calibration probe
			if err != nil {
				return nil, err
			}
			ev.Arrive = []*workload.Job{arr}
			ev.ArriveSolo = [][]float64{soloArr}
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// naiveChurnWS measures the oblivious round-robin baseline over the symbios
// budget, applying the same churn script and the same cycle-weighted WS
// accounting RunAdaptive uses. Round-robin reads no counters, so counter
// faults cannot affect it — it is the floor an adaptive scheduler must not
// sink below.
func naiveChurnWS(ctx context.Context, mix workload.Mix, cfg arch.Config, slice uint64, sc Scale, symSlices int, churn []core.ChurnEvent, solo []float64) (float64, error) {
	jobs, _, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return 0, err
	}
	m, err := core.NewMachine(cfg, jobs, slice)
	if err != nil {
		return 0, err
	}
	rr, err := core.RoundRobin(m.NumTasks(), mix.SMTLevel)
	if err != nil {
		return 0, err
	}
	if err := warm(ctx, m, rr, sc.WarmupCycles); err != nil {
		return 0, err
	}
	jobSolo, err := splitByJob(jobs, solo)
	if err != nil {
		return 0, err
	}

	var (
		num  float64
		den  uint64
		done int
		next int
	)
	for done < symSlices {
		w := symSlices - done
		if next < len(churn) && churn[next].AtSlice-done < w {
			w = churn[next].AtSlice - done
		}
		if w < 1 {
			w = 1
		}
		run, err := m.RunScheduleCtx(ctx, rr, w)
		if err != nil {
			return 0, err
		}
		soloTask := flattenByJob(jobSolo)
		for i, c := range run.Committed {
			num += float64(c) / soloTask[i]
		}
		den += run.Cycles
		done += w

		if next < len(churn) && done >= churn[next].AtSlice {
			ev := churn[next]
			next++
			for _, id := range ev.Depart {
				found := false
				for i, j := range jobs {
					if j.ID == id {
						jobs = append(jobs[:i], jobs[i+1:]...)
						jobSolo = append(jobSolo[:i], jobSolo[i+1:]...)
						found = true
						break
					}
				}
				if !found {
					return 0, fmt.Errorf("experiments: churn departs unknown job %d", id)
				}
			}
			for i, j := range ev.Arrive {
				jobs = append(jobs, j)
				jobSolo = append(jobSolo, ev.ArriveSolo[i])
			}
			if err := m.SetTasks(jobs); err != nil {
				return 0, err
			}
			rr, err = core.RoundRobin(m.NumTasks(), mix.SMTLevel)
			if err != nil {
				return 0, err
			}
		}
	}
	if den == 0 {
		return 0, fmt.Errorf("experiments: naive baseline measured no cycles")
	}
	return num / float64(den), nil
}

// splitByJob groups a per-task solo-rate vector by job.
func splitByJob(jobs []*workload.Job, solo []float64) ([][]float64, error) {
	total := 0
	for _, j := range jobs {
		total += j.Threads()
	}
	if len(solo) != total {
		return nil, fmt.Errorf("experiments: %d solo rates for %d tasks", len(solo), total)
	}
	out := make([][]float64, len(jobs))
	k := 0
	for i, j := range jobs {
		out[i] = append([]float64(nil), solo[k:k+j.Threads()]...)
		k += j.Threads()
	}
	return out, nil
}

// flattenByJob is the inverse of splitByJob for the current job list.
func flattenByJob(jobSolo [][]float64) []float64 {
	var out []float64
	for _, s := range jobSolo {
		out = append(out, s...)
	}
	return out
}
