package experiments

import (
	"math/big"

	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Table1Row is one row of Table 1: the applications used in an experiment.
type Table1Row struct {
	Experiments string
	Jobs        []string
}

// Table1 reproduces the job registry table. Mixes sharing a job list are
// grouped, preserving the paper's presentation.
func Table1() []Table1Row {
	groups := []struct {
		label string
		mix   string
	}{
		{"Jsb(4,2,2)", "Jsb(4,2,2)"},
		{"Jsb(5,2,2), Jsl(5,2,1)", "Jsb(5,2,2)"},
		{"Jpb(10,2,2), J2pb(10,2,2)", "Jpb(10,2,2)"},
		{"Jsb(6,3,3), Jsb(6,3,1), Jsl(6,3,1)", "Jsb(6,3,3)"},
		{"Jsb(8,4,4), Jsb(8,4,1), Jsl(8,4,1)", "Jsb(8,4,4)"},
		{"Jsb(12,6,6), Jsb(12,4,4)", "Jsb(12,6,6)"},
	}
	var rows []Table1Row
	for _, g := range groups {
		rows = append(rows, Table1Row{
			Experiments: g.label,
			Jobs:        workload.MustMix(g.mix).JobNames,
		})
	}
	for _, level := range []int{2, 3, 4, 6} {
		rows = append(rows, Table1Row{
			Experiments: "SMT level " + string(rune('0'+level)),
			Jobs:        workload.HierarchicalMixes[level],
		})
	}
	return rows
}

// Table2Row is one row of Table 2: the number of distinct schedules for a
// jobmix and the time to sample at most MaxSamples of them.
type Table2Row struct {
	Experiment        string
	DistinctSchedules *big.Int
	// SampleCycles is the sample-phase length under the given scale: one
	// full rotation per sampled schedule.
	SampleCycles uint64
	// PaperSampleCycles is the same quantity at the paper's 5M-cycle
	// timeslice, in millions (Table 2's "Million Sample Cycles" column).
	PaperSampleMCycles uint64
}

// table2Order lists Table 2's rows in presentation order.
var table2Order = []string{
	"Jsb(4,2,2)",
	"Jsb(5,2,2)",
	"Jsb(5,2,1)",
	"Jpb(10,2,2)",
	"J2pb(10,2,2)",
	"Jsb(6,3,3)",
	"Jsb(6,3,1)",
	"Jsl(6,3,1)",
	"Jsb(8,4,4)",
	"Jsb(8,4,1)",
	"Jsl(8,4,1)",
	"Jsb(12,4,4)",
	"Jsb(12,6,6)",
}

// Table2 computes the schedule-space sizes and sample-phase lengths.
func Table2(sc Scale) []Table2Row {
	var rows []Table2Row
	for _, label := range table2Order {
		mix := workload.MustMix(label)
		x := mix.Tasks()
		count := schedule.Count(x, mix.SMTLevel, mix.Swap)

		samples := int64(sc.MaxSamples)
		if count.IsInt64() && count.Int64() < samples {
			samples = count.Int64()
		}
		rot := schedule.Schedule{Order: make([]int, x), Y: mix.SMTLevel, Z: mix.Swap}
		for i := range rot.Order {
			rot.Order[i] = i
		}
		slices := uint64(rot.CycleSlices()) * uint64(samples)

		rows = append(rows, Table2Row{
			Experiment:         label,
			DistinctSchedules:  count,
			SampleCycles:       slices * sc.sliceFor(mix),
			PaperSampleMCycles: (slices*paperSliceFor(mix) + 500_000) / 1_000_000,
		})
	}
	return rows
}

// paperSliceFor returns the paper's timeslice for a mix: 5M cycles for big,
// and the little slice such that one schedule evaluation takes 10M cycles
// (the value consistent with Table 2's 100M-cycle little-slice entries).
func paperSliceFor(m workload.Mix) uint64 {
	if m.BigSlice {
		return 5_000_000
	}
	rot := schedule.Schedule{Order: make([]int, m.Tasks()), Y: m.SMTLevel, Z: m.Swap}
	for i := range rot.Order {
		rot.Order[i] = i
	}
	return 10_000_000 / uint64(rot.CycleSlices())
}
