package experiments

import (
	"reflect"
	"testing"

	"symbios/internal/faults"
)

// quickRobustScale shrinks the budgets: these tests prove robustness
// properties, not simulation fidelity.
func quickRobustScale() Scale {
	sc := QuickScale()
	sc.CalibWarmup, sc.CalibMeasure = 200_000, 100_000
	sc.WarmupCycles, sc.SymbiosCycles = 200_000, 1_200_000
	return sc
}

// TestAdaptiveBeatsNaiveUnderModerateFaults is the issue's acceptance
// criterion: with counter noise up to σ=0.2 and single-job churn, the
// hardened adaptive pipeline must achieve a weighted speedup at least as good
// as the oblivious round-robin baseline, in every tested mix.
func TestAdaptiveBeatsNaiveUnderModerateFaults(t *testing.T) {
	levels := []faults.Config{
		{},
		{NoiseSigma: 0.10},
		{NoiseSigma: 0.20},
	}
	rows, err := Robustness(quickRobustScale(), nil, levels, DefaultChurn())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AdaptiveWS < r.NaiveWS {
			t.Errorf("%s under %s: adaptive WS %.3f below naive %.3f", r.Mix, r.Fault, r.AdaptiveWS, r.NaiveWS)
		}
		if r.AdaptiveWS <= 0 || r.NaiveWS <= 0 {
			t.Errorf("%s under %s: non-positive WS (adaptive %.3f, naive %.3f)", r.Mix, r.Fault, r.AdaptiveWS, r.NaiveWS)
		}
	}
}

// TestRobustnessReportsDegradedActivity: the harsh combined fault level must
// visibly exercise the degraded machinery — the run completes and logs
// retries, skips, fallbacks, resamples or lost windows rather than sailing
// through silently.
func TestRobustnessReportsDegradedActivity(t *testing.T) {
	harsh := []faults.Config{{NoiseSigma: 0.20, DropRate: 0.10, StickyRate: 0.02, FailRate: 0.10}}
	rows, err := Robustness(quickRobustScale(), []string{"Jsb(4,2,2)"}, harsh, DefaultChurn())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Resamples+r.Retries+r.SkippedSamples+r.FallbackSlices+r.LostWindows == 0 {
		t.Errorf("harsh faults produced no degraded-mode activity: %+v", r)
	}
	if r.AdaptiveWS <= 0 {
		t.Errorf("adaptive WS %.3f under harsh faults, want > 0", r.AdaptiveWS)
	}
	for p, ws := range r.PredWS {
		if ws <= 0 {
			t.Errorf("predictor %s realized WS %.3f, want > 0", p, ws)
		}
	}
}

// TestRobustnessDeterministicAcrossWorkers: the full sweep — fault injection,
// churn, adaptive retries and all — must be bit-identical at workers=1 and
// workers=8. This is the satellite requirement that every fault mode obey the
// parallel determinism contract.
func TestRobustnessDeterministicAcrossWorkers(t *testing.T) {
	sc := quickRobustScale()
	sc.SymbiosCycles = 800_000
	levels := []faults.Config{
		{NoiseSigma: 0.30},
		{DropRate: 0.30},
		{StickyRate: 0.10},
		{SaturateAt: 10_000},
		{FailRate: 0.15},
		{NoiseSigma: 0.20, DropRate: 0.10, StickyRate: 0.02, FailRate: 0.10},
	}
	labels := []string{"Jsb(4,2,2)"}

	var serial, fanned []RobustnessRow
	var err1, err8 error
	withWorkers(t, 1, func() { serial, err1 = Robustness(sc, labels, levels, DefaultChurn()) })
	if err1 != nil {
		t.Fatal(err1)
	}
	withWorkers(t, 8, func() { fanned, err8 = Robustness(sc, labels, levels, DefaultChurn()) })
	if err8 != nil {
		t.Fatal(err8)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("robustness rows differ between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, fanned)
	}
}
