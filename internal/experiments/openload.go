package experiments

import (
	"context"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/parallel"
	"symbios/internal/queueing"
	"symbios/internal/rng"
)

// OpenLoadRow is one cell of the open-system overload sweep: a scheduler's
// response-time distribution at one offered-load factor under one arrival
// process.
type OpenLoadRow struct {
	Dist      string  // "poisson" or "pareto"
	Factor    float64 // offered load as a fraction of machine capacity
	Scheduler string  // "naive", "sos" or "backlog-sos"

	MeanResponse float64 // cycles
	P50          float64
	P99          float64
	P999         float64
	Completed    int
	// ShrunkPhases counts backlog-shrunk sample phases (backlog-sos only).
	ShrunkPhases int
}

// openLoadPoint is one shard of the sweep: an arrival process crossed with
// an offered-load factor. All three schedulers run inside the shard on the
// identical script, so their rows are directly comparable.
type openLoadPoint struct {
	Dist   string
	Factor float64
}

// openLoadDists builds the shard's interarrival and job-size distributions.
// The Poisson system is the classical M/x open system; the Pareto system
// draws both interarrivals (alpha 1.5) and job sizes (alpha 1.1, the
// heavier tail) from bounded Pareto laws with the same means, so the two
// systems offer identical average load and differ only in burstiness.
func openLoadDists(kind string, interarrival, jobCycles float64) (inter, jobs queueing.Dist, err error) {
	switch kind {
	case "poisson":
		return queueing.ExpDist(interarrival), queueing.ExpDist(jobCycles), nil
	case "pareto":
		return queueing.BoundedParetoWithMean(1.5, 100, interarrival),
			queueing.BoundedParetoWithMean(1.1, 1000, jobCycles), nil
	default:
		return inter, jobs, fmt.Errorf("experiments: unknown arrival dist %q", kind)
	}
}

// openLoadCompare runs naive, plain SOS and backlog-aware SOS on one
// scripted open system at SMT level 3.
func openLoadCompare(pt openLoadPoint, qs QueueScale) ([]OpenLoadRow, error) {
	const level = 3
	cfg := arch.Default21264(level)
	solo, err := queueing.CalibrateSolo(cfg, qs.CalibWarmup, qs.CalibMeasure)
	if err != nil {
		return nil, err
	}
	// Same capacity model as ResponseCompare, minus its fixed 90% derating:
	// the sweep's Factor IS the offered load relative to capacity, so 1.0
	// sits at saturation and 1.5 is genuine overload.
	capacity := 0.4 * float64(level)
	rate := pt.Factor * capacity / qs.MeanJobCycles
	interarrival := 1 / rate

	inter, jobs, err := openLoadDists(pt.Dist, interarrival, qs.MeanJobCycles)
	if err != nil {
		return nil, err
	}
	seed := rng.Hash2(qs.Seed, uint64(pt.Factor*1000), 0x01d5)
	script, err := queueing.GenerateScriptDist(seed, inter, jobs, qs.Horizon, solo)
	if err != nil {
		return nil, err
	}

	row := func(sched string, res queueing.Result) OpenLoadRow {
		return OpenLoadRow{
			Dist:         pt.Dist,
			Factor:       pt.Factor,
			Scheduler:    sched,
			MeanResponse: res.MeanResponse,
			P50:          res.ResponseP50,
			P99:          res.ResponseP99,
			P999:         res.ResponseP999,
			Completed:    res.Completed,
			ShrunkPhases: res.ShrunkPhases,
		}
	}

	naive, err := queueing.RunNaive(cfg, qs.Slice, script, qs.Horizon)
	if err != nil {
		return nil, err
	}
	opt := queueing.DefaultSOSOptions(script)
	sos, err := queueing.RunSOS(cfg, qs.Slice, script, qs.Horizon, opt)
	if err != nil {
		return nil, err
	}
	opt.BacklogFactor = 1.5
	opt.BacklogSamples = 2
	backlog, err := queueing.RunSOS(cfg, qs.Slice, script, qs.Horizon, opt)
	if err != nil {
		return nil, err
	}
	return []OpenLoadRow{row("naive", naive), row("sos", sos), row("backlog-sos", backlog)}, nil
}

// OpenLoad sweeps offered load across arrival processes and schedulers.
// A nil factors slice selects the default 0.5x-1.5x capacity sweep.
func OpenLoad(qs QueueScale, factors []float64) ([]OpenLoadRow, error) {
	return OpenLoadCtx(context.Background(), qs, factors)
}

// OpenLoadCtx is OpenLoad bounded by a context, each (dist, factor) point a
// resumable checkpoint shard.
func OpenLoadCtx(ctx context.Context, qs QueueScale, factors []float64) ([]OpenLoadRow, error) {
	if factors == nil {
		factors = []float64{0.5, 0.75, 1.0, 1.25, 1.5}
	}
	points := make([]openLoadPoint, 0, 2*len(factors))
	for _, d := range []string{"poisson", "pareto"} {
		for _, f := range factors {
			points = append(points, openLoadPoint{Dist: d, Factor: f})
		}
	}
	rows, err := shardedMap(ctx, "openload", points, parallel.Options{}, func(_ context.Context, _ int, pt openLoadPoint) ([]OpenLoadRow, error) {
		return openLoadCompare(pt, qs)
	})
	if err != nil {
		return nil, err
	}
	out := make([]OpenLoadRow, 0, 3*len(rows))
	for _, r := range rows {
		out = append(out, r...)
	}
	return out, nil
}
