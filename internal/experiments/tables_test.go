package experiments

import (
	"testing"

	"symbios/internal/workload"
)

// TestTable2Counts verifies the distinct-schedule counts against the
// paper's Table 2.
func TestTable2Counts(t *testing.T) {
	want := map[string]int64{
		"Jsb(4,2,2)":   3,
		"Jsb(5,2,2)":   12,
		"Jsb(5,2,1)":   12,
		"Jpb(10,2,2)":  945,
		"J2pb(10,2,2)": 945,
		"Jsb(6,3,3)":   10,
		"Jsb(6,3,1)":   60,
		"Jsl(6,3,1)":   60,
		"Jsb(8,4,4)":   35,
		"Jsb(8,4,1)":   2520,
		"Jsl(8,4,1)":   2520,
		"Jsb(12,4,4)":  5775,
		"Jsb(12,6,6)":  462,
	}
	rows := Table2(DefaultScale())
	if len(rows) != len(want) {
		t.Fatalf("Table2 returned %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Experiment]
		if !ok {
			t.Errorf("unexpected experiment %s", r.Experiment)
			continue
		}
		if !r.DistinctSchedules.IsInt64() || r.DistinctSchedules.Int64() != w {
			t.Errorf("%s: distinct schedules = %s, want %d", r.Experiment, r.DistinctSchedules, w)
		}
	}
}

// TestTable2PaperSampleCycles checks the "Million Sample Cycles" column
// against the paper for the big-slice experiments.
func TestTable2PaperSampleCycles(t *testing.T) {
	want := map[string]uint64{
		"Jsb(4,2,2)":   30,
		"Jsb(5,2,2)":   250,
		"Jpb(10,2,2)":  250,
		"J2pb(10,2,2)": 250,
		"Jsb(6,3,3)":   100,
		"Jsb(6,3,1)":   300,
		"Jsl(6,3,1)":   100,
		"Jsb(8,4,4)":   100,
		"Jsb(8,4,1)":   400,
		"Jsl(8,4,1)":   100,
		"Jsb(12,4,4)":  150,
		"Jsb(12,6,6)":  100,
	}
	for _, r := range Table2(DefaultScale()) {
		w, ok := want[r.Experiment]
		if !ok {
			continue // Jsb(5,2,1): the paper's 250 is inconsistent with its own slice rules
		}
		if r.PaperSampleMCycles != w {
			t.Errorf("%s: paper sample cycles = %dM, want %dM", r.Experiment, r.PaperSampleMCycles, w)
		}
	}
}

// TestTable1Registry checks that every Table 1 row resolves to buildable
// jobs.
func TestTable1Registry(t *testing.T) {
	rows := Table1()
	if len(rows) != 10 {
		t.Fatalf("Table1 returned %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		for _, name := range r.Jobs {
			if _, err := workload.Lookup(name); err != nil {
				t.Errorf("%s: %v", r.Experiments, err)
			}
		}
	}
}
