package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/faults"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Experiment-level golden suite: Figure-1 rows and a fault-injected
// schedule run pinned against the seed kernel. Every case runs at workers=1
// and workers=8 and must produce identical output at both — the kernel
// rewrite must not introduce any order or state dependence on the fan-out.
// Regenerate with:
//
//	go test ./internal/experiments -run TestGoldenExperiments -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_experiments.json from the current kernel")

const expGoldenPath = "testdata/golden_experiments.json"

// goldenScale is deliberately tiny: the golden suite runs on every `go
// test`, so each mix evaluation stays in the tens of millions of simulated
// cycles, not billions.
func goldenScale() Scale {
	return Scale{
		Slice:         20_000,
		LittleDivisor: 4,
		SymbiosCycles: 400_000,
		WarmupCycles:  200_000,
		CalibWarmup:   200_000,
		CalibMeasure:  100_000,
		SampleRounds:  1,
		MaxSamples:    3,
		Seed:          1,
	}
}

type expGolden struct {
	Figure1 []Figure1Row   `json:"figure1"`
	Faulted core.RunResult `json:"faulted"`
	Clean   core.RunResult `json:"clean"`
}

// runFaultCase runs one schedule through a machine with a fault-injecting
// CounterReader interposed (and once clean, as the control). The injector's
// fault pattern is a pure function of its read ordinals, so the observed
// RunResult — noisy SliceIPCs, drop-outs and all — is deterministic and
// golden-able.
func runFaultCase(t *testing.T, fc faults.Config) core.RunResult {
	t.Helper()
	mix := workload.MustMix("Jsb(4,2,2)")
	jobs, err := mix.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(arch.Default21264(mix.SMTLevel), jobs, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Active() {
		m.SetCounterReader(faults.New(fc))
	}
	s := schedule.Schedule{Order: []int{0, 1, 2, 3}, Y: mix.SMTLevel, Z: mix.Swap}
	res, err := m.RunScheduleCtx(context.Background(), s, 4*s.CycleSlices())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func buildExpGolden(t *testing.T) expGolden {
	t.Helper()
	sc := goldenScale()
	labels := []string{"Jsb(4,2,2)", "Jsb(6,3,3)"}

	var atOne, atEight []Figure1Row
	withWorkers(t, 1, func() {
		ClearEvalCache()
		rows, err := Figure1(sc, labels)
		if err != nil {
			t.Fatal(err)
		}
		atOne = rows
	})
	withWorkers(t, 8, func() {
		ClearEvalCache()
		rows, err := Figure1(sc, labels)
		if err != nil {
			t.Fatal(err)
		}
		atEight = rows
	})
	if !reflect.DeepEqual(atOne, atEight) {
		t.Errorf("Figure1 diverges across worker counts:\n w1 %+v\n w8 %+v", atOne, atEight)
	}

	fc := faults.Config{Seed: 42, NoiseSigma: 0.1, DropRate: 0.1, FailRate: 0.05}
	return expGolden{
		Figure1: atOne,
		Faulted: runFaultCase(t, fc),
		Clean:   runFaultCase(t, faults.Config{}),
	}
}

func TestGoldenExperiments(t *testing.T) {
	got := buildExpGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(expGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", expGoldenPath)
		return
	}
	data, err := os.ReadFile(expGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden on a trusted kernel): %v", err)
	}
	var want expGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Figure1, want.Figure1) {
		t.Errorf("Figure1 rows diverged:\n got %+v\nwant %+v", got.Figure1, want.Figure1)
	}
	if !reflect.DeepEqual(got.Faulted, want.Faulted) {
		t.Errorf("faulted run diverged:\n got %+v\nwant %+v", got.Faulted, want.Faulted)
	}
	if !reflect.DeepEqual(got.Clean, want.Clean) {
		t.Errorf("clean run diverged:\n got %+v\nwant %+v", got.Clean, want.Clean)
	}
}
