package experiments

import (
	"math"
	"testing"

	"symbios/internal/core"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// synthEval hand-builds a MixEval whose sample data deterministically
// favours schedule 1, with schedule 2 the true symbios winner — so view
// logic can be tested without simulation.
func synthEval() *MixEval {
	mk := func(order []int) schedule.Schedule {
		return schedule.Schedule{Order: order, Y: 2, Z: 2}
	}
	scheds := []schedule.Schedule{
		mk([]int{0, 1, 2, 3}),
		mk([]int{0, 2, 1, 3}),
		mk([]int{0, 3, 1, 2}),
	}
	samples := []core.Sample{
		{Sched: scheds[0], IPC: 1.0, AllConf: 100, Dcache: 90, FQ: 10, FP: 20, Sum2: 30, Diversity: 0.2, Balance: 0.5,
			Mispredict: 0.05, L2Hit: 90, IQ: 5},
		{Sched: scheds[1], IPC: 3.0, AllConf: 80, Dcache: 95, FQ: 5, FP: 10, Sum2: 15, Diversity: 0.1, Balance: 0.1,
			Mispredict: 0.01, L2Hit: 99, IQ: 1},
		{Sched: scheds[2], IPC: 2.0, AllConf: 90, Dcache: 92, FQ: 8, FP: 15, Sum2: 23, Diversity: 0.15, Balance: 0.3,
			Mispredict: 0.03, L2Hit: 95, IQ: 3},
	}
	return &MixEval{
		Mix:     workload.MustMix("Jsb(4,2,2)"),
		Samples: samples,
		Scheds:  scheds,
		WS:      []float64{1.10, 1.30, 1.45},
	}
}

// TestMixEvalViews: Best/Worst/Avg and PredictorWS are consistent views.
func TestMixEvalViews(t *testing.T) {
	ev := synthEval()
	if ev.Best() != 1.45 || ev.Worst() != 1.10 {
		t.Errorf("best/worst %f/%f", ev.Best(), ev.Worst())
	}
	if math.Abs(ev.Avg()-(1.10+1.30+1.45)/3) > 1e-12 {
		t.Errorf("avg %f", ev.Avg())
	}
	// Every sample-phase signal points at schedule 1, so every scalar
	// predictor (and Score) must return its symbios WS.
	for _, p := range core.Predictors() {
		if got := ev.PredictorWS(p); got != 1.30 {
			t.Errorf("%s WS %f, want 1.30", p, got)
		}
	}
}

// TestFigure2BarsLayout: the bar list leads with Best/Worst/Avg then one
// bar per predictor, in order.
func TestFigure2BarsLayout(t *testing.T) {
	bars := Figure2Bars(synthEval())
	if len(bars) != 3+int(core.NumPredictors) {
		t.Fatalf("%d bars", len(bars))
	}
	if bars[0].Label != "Best" || bars[1].Label != "Worst" || bars[2].Label != "Avg" {
		t.Errorf("leading bars %v", bars[:3])
	}
	if bars[0].WS != 1.45 || bars[1].WS != 1.10 {
		t.Error("best/worst bar values wrong")
	}
	if bars[3].Label != "IPC" || bars[len(bars)-1].Label != "Score" {
		t.Errorf("predictor bars out of order: %s..%s", bars[3].Label, bars[len(bars)-1].Label)
	}
}

// TestCoschedulesHelper: the sibling-detection predicate.
func TestCoschedulesHelper(t *testing.T) {
	s := schedule.Schedule{Order: []int{0, 1, 2, 3}, Y: 2, Z: 2}
	if !coschedules(s, 0, 1) || !coschedules(s, 2, 3) {
		t.Error("tuple members not detected")
	}
	if coschedules(s, 0, 2) || coschedules(s, 1, 3) {
		t.Error("cross-tuple pair detected as coscheduled")
	}
	// Rotating schedule: windows {0,1},{1,2},{2,3},{3,0} — adjacent pairs
	// coschedule, opposite pairs never do.
	rot := schedule.Schedule{Order: []int{0, 1, 2, 3}, Y: 2, Z: 1}
	if !coschedules(rot, 3, 0) {
		t.Error("wraparound window missed")
	}
	if coschedules(rot, 0, 2) {
		t.Error("opposite pair coscheduled in rotation")
	}
}

// TestSiblingTasks finds the parallel job's threads in task order.
func TestSiblingTasks(t *testing.T) {
	mix := workload.MustMix("Jpb(10,2,2)")
	jobs, err := mix.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	sib, err := siblingTasks(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sib != [2]int{8, 9} {
		t.Errorf("siblings %v, want [8 9]", sib)
	}
	// A single-threaded-only mix has no siblings.
	jobs, err = workload.MustMix("Jsb(6,3,3)").Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := siblingTasks(jobs); err == nil {
		t.Error("sibling detection succeeded on a single-threaded mix")
	}
}

// TestThroughputVsLevelValidation rejects levels that break fairness.
func TestThroughputVsLevelValidation(t *testing.T) {
	if _, err := ThroughputVsLevel(QuickScale(), []int{5}); err == nil {
		t.Error("level 5 does not divide 12 jobs but was accepted")
	}
}
