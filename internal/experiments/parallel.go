package experiments

import (
	"context"
	"fmt"

	"symbios/internal/core"
	"symbios/internal/metrics"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// ParallelRow reports the Section 6 study for one parallel mix: whether the
// predictor-chosen schedule coschedules the threads of the parallel job,
// and how schedules that do compare with schedules that do not.
type ParallelRow struct {
	Mix string
	// SiblingTasks are the task indices of the parallel job's threads.
	SiblingTasks [2]int
	// CoschedAvgWS / SplitAvgWS average the symbios weighted speedups of
	// schedules that do / do not put the siblings in one coschedule.
	CoschedAvgWS, SplitAvgWS float64
	// ChosenCosched reports whether the Score-chosen schedule coschedules
	// the siblings; ChosenWS is its weighted speedup.
	ChosenCosched bool
	ChosenWS      float64
	Best, Worst   float64
}

// siblingTasks locates the two threads of the (single) multithreaded job in
// a mix's task list.
func siblingTasks(jobs []*workload.Job) ([2]int, error) {
	idx := 0
	var out [2]int
	found := 0
	for _, j := range jobs {
		for t := 0; t < j.Threads(); t++ {
			if j.Threads() > 1 {
				if found < 2 {
					out[found] = idx
				}
				found++
			}
			idx++
		}
	}
	if found != 2 {
		return out, fmt.Errorf("experiments: expected exactly 2 parallel threads, found %d", found)
	}
	return out, nil
}

// coschedules reports whether schedule s puts tasks a and b in one tuple.
func coschedules(s schedule.Schedule, a, b int) bool {
	for _, tuple := range s.Tuples() {
		hasA, hasB := false, false
		for _, t := range tuple {
			hasA = hasA || t == a
			hasB = hasB || t == b
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// ParallelStudy runs the Jpb(10,2,2) / J2pb(10,2,2) comparison. Random
// sampling alone rarely covers both classes ("most of the random schedules
// did not coschedule the threads of ARRAY"), so the sample set is
// stratified: the random draw is topped up with schedules of whichever
// class is missing.
func ParallelStudy(sc Scale, label string) (ParallelRow, error) {
	return ParallelStudyCtx(context.Background(), sc, label)
}

// ParallelStudyCtx is ParallelStudy bounded by a context.
func ParallelStudyCtx(ctx context.Context, sc Scale, label string) (ParallelRow, error) {
	mix, err := workload.MixByLabel(label)
	if err != nil {
		return ParallelRow{}, err
	}
	jobs, _, err := buildJobs(mix, sc.Seed)
	if err != nil {
		return ParallelRow{}, err
	}
	sib, err := siblingTasks(jobs)
	if err != nil {
		return ParallelRow{}, err
	}

	r := rng.New(rng.Hash2(sc.Seed, 0x9a7a11e1, 0))
	scheds := schedule.Sample(r, mix.Tasks(), mix.SMTLevel, mix.Swap, sc.MaxSamples)
	scheds = ensureBothClasses(r, scheds, mix, sib)

	ev, err := EvalMixSchedulesCtx(ctx, mix, scheds, sc)
	if err != nil {
		return ParallelRow{}, err
	}

	row := ParallelRow{Mix: label, SiblingTasks: sib}
	nCo, nSp := 0, 0
	for i, s := range ev.Scheds {
		if coschedules(s, sib[0], sib[1]) {
			row.CoschedAvgWS += ev.WS[i]
			nCo++
		} else {
			row.SplitAvgWS += ev.WS[i]
			nSp++
		}
	}
	if nCo == 0 || nSp == 0 {
		return ParallelRow{}, fmt.Errorf("experiments: sample set for %s lacks a schedule class (cosched=%d split=%d)", label, nCo, nSp)
	}
	row.CoschedAvgWS /= float64(nCo)
	row.SplitAvgWS /= float64(nSp)

	idx := core.Pick(ev.Samples, core.PredScore)
	row.ChosenCosched = coschedules(ev.Scheds[idx], sib[0], sib[1])
	row.ChosenWS = ev.WS[idx]
	row.Best = metrics.Max(ev.WS)
	row.Worst = metrics.Min(ev.WS)
	return row, nil
}

// ensureBothClasses tops up a random sample so it contains at least two
// schedules that coschedule the siblings and two that split them.
func ensureBothClasses(r *rng.Stream, scheds []schedule.Schedule, mix workload.Mix, sib [2]int) []schedule.Schedule {
	const want = 2
	count := func(cosched bool) int {
		n := 0
		for _, s := range scheds {
			if coschedules(s, sib[0], sib[1]) == cosched {
				n++
			}
		}
		return n
	}
	for _, cls := range []bool{true, false} {
		for count(cls) < want {
			s := schedule.Random(r, mix.Tasks(), mix.SMTLevel, mix.Swap)
			if coschedules(s, sib[0], sib[1]) != cls {
				continue
			}
			dup := false
			for _, o := range scheds {
				if o.Canonical() == s.Canonical() {
					dup = true
					break
				}
			}
			if !dup {
				scheds = append(scheds, s)
			}
		}
	}
	return scheds
}
