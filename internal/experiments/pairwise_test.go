package experiments

import "testing"

// TestPairwiseMatrix: the symbiosis matrix is symmetric with a unit
// diagonal, and coscheduled pairs achieve weighted speedups in a plausible
// band (above serial time-sharing for compatible jobs).
func TestPairwiseMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	sc := Scale{
		Slice:         50_000,
		LittleDivisor: 4,
		SymbiosCycles: 2_000_000,
		WarmupCycles:  500_000,
		CalibWarmup:   500_000,
		CalibMeasure:  250_000,
		SampleRounds:  1,
		MaxSamples:    10,
		Seed:          2,
	}
	tbl, err := Pairwise(sc, []string{"EP", "GO", "MG"})
	if err != nil {
		t.Fatal(err)
	}
	n := len(tbl.Names)
	for i := 0; i < n; i++ {
		if tbl.WS[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %f", i, i, tbl.WS[i][i])
		}
		for j := 0; j < n; j++ {
			if tbl.WS[i][j] != tbl.WS[j][i] {
				t.Errorf("asymmetry at [%d][%d]", i, j)
			}
			if i != j && (tbl.WS[i][j] < 0.3 || tbl.WS[i][j] > 2.5) {
				t.Errorf("pair %s+%s WS %.3f out of plausible band",
					tbl.Names[i], tbl.Names[j], tbl.WS[i][j])
			}
		}
	}
	// EP (fp compute) + GO (int branchy) should symbiose: WS > 1.
	if tbl.WS[0][1] <= 1.0 {
		t.Errorf("EP+GO WS %.3f; diverse pair should exceed time-sharing", tbl.WS[0][1])
	}
}
