// Package experiments contains one driver per table and figure of the
// paper's evaluation, producing the same rows and series the paper reports.
//
// The paper's cycle counts (5M-cycle timeslices, 2B-cycle symbios phases)
// are scaled down by a configurable factor with all phase *ratios*
// preserved; weighted speedups and relative improvements are ratios and are
// insensitive to the scale once caches are warm. Scale 1.0 reproduces the
// paper's absolute cycle counts.
package experiments

import (
	"symbios/internal/workload"
)

// Scale fixes every cycle budget an experiment uses.
type Scale struct {
	// Slice is the big timeslice in cycles (the paper's 5M-cycle clock
	// pulse, "a 10 millisecond timer interrupt on a 500 MHz system").
	Slice uint64
	// LittleDivisor derives the little ('l') timeslice: Slice/LittleDivisor.
	LittleDivisor uint64
	// SymbiosCycles is the symbios-phase length (the paper's 2B cycles).
	SymbiosCycles uint64
	// WarmupCycles precede any measurement: the machine runs the workload
	// unrecorded until the memory system reaches steady state ("we begin
	// simulation with each benchmark partially executed").
	WarmupCycles uint64
	// CalibWarmup and CalibMeasure are the solo-rate calibration intervals.
	CalibWarmup, CalibMeasure uint64
	// SampleRounds is how many full rotations each sampled schedule runs in
	// the sample phase (the paper uses exactly one).
	SampleRounds int
	// MaxSamples caps the schedules sampled per mix (the paper uses 10).
	MaxSamples int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultScale is the 1/50-of-paper scale used by tests and benches:
// 100k-cycle slices and 8M-cycle symbios phases keep a full figure run in
// minutes while preserving the sample:symbios ratio within 2x of the
// paper's.
func DefaultScale() Scale {
	return Scale{
		Slice:         100_000,
		LittleDivisor: 4,
		SymbiosCycles: 8_000_000,
		WarmupCycles:  2_000_000,
		CalibWarmup:   1_500_000,
		CalibMeasure:  500_000,
		SampleRounds:  1,
		MaxSamples:    10,
		Seed:          1,
	}
}

// QuickScale is a further-reduced scale for unit tests.
func QuickScale() Scale {
	return Scale{
		Slice:         40_000,
		LittleDivisor: 4,
		SymbiosCycles: 1_500_000,
		WarmupCycles:  1_000_000,
		CalibWarmup:   1_000_000,
		CalibMeasure:  300_000,
		SampleRounds:  1,
		MaxSamples:    10,
		Seed:          1,
	}
}

// ServeScale is the interactive scale the sosd service defaults to: small
// enough that a single /v1/schedule request (calibrate + sample + rank)
// answers in well under a second, while keeping the warmup:measure ratios
// of the batch scales.
func ServeScale() Scale {
	return Scale{
		Slice:         20_000,
		LittleDivisor: 4,
		SymbiosCycles: 600_000,
		WarmupCycles:  200_000,
		CalibWarmup:   200_000,
		CalibMeasure:  100_000,
		SampleRounds:  1,
		MaxSamples:    10,
		Seed:          1,
	}
}

// PaperScale is the paper's absolute cycle budget (hours of simulation).
func PaperScale() Scale {
	return Scale{
		Slice:         5_000_000,
		LittleDivisor: 4,
		SymbiosCycles: 2_000_000_000,
		WarmupCycles:  20_000_000,
		CalibWarmup:   10_000_000,
		CalibMeasure:  10_000_000,
		SampleRounds:  1,
		MaxSamples:    10,
		Seed:          1,
	}
}

// SliceFor returns the timeslice for a mix under this scale, honoring the
// mix's big/little flag (exported for the serving layer, which builds its
// machines outside this package).
func (s Scale) SliceFor(m workload.Mix) uint64 {
	return s.sliceFor(m)
}

// sliceFor returns the timeslice for a mix under this scale, honoring the
// mix's big/little flag.
func (s Scale) sliceFor(m workload.Mix) uint64 {
	if m.BigSlice {
		return s.Slice
	}
	d := s.LittleDivisor
	if d == 0 {
		d = 4
	}
	return s.Slice / d
}

// symbiosSlices converts the symbios budget into a whole number of
// rotations of sched-cycle length rot at slice length slice.
func (s Scale) symbiosSlices(slice uint64, rot int) int {
	want := int(s.SymbiosCycles / slice)
	if want < rot {
		return rot
	}
	return want - want%rot
}
