package experiments

import (
	"context"

	"symbios/internal/parallel"
)

// WarmstartRow is one Section 8 comparison: a jobmix run with full swap
// (Z = Y) versus swapping only one job per timeslice, at both the big and
// the little timeslice.
type WarmstartRow struct {
	// FullSwap, WarmBig and WarmLittle are the experiment labels: e.g.
	// Jsb(6,3,3), Jsb(6,3,1) and Jsl(6,3,1).
	FullSwap, WarmBig, WarmLittle string
	// Avg weighted speedups across sampled schedules for each policy.
	FullSwapAvg, WarmBigAvg, WarmLittleAvg float64
	// Gains of warmstart scheduling over full swap, in percent.
	WarmBigGainPct, WarmLittleGainPct float64
	// Best weighted speedups, to confirm symbiosis scheduling works under
	// both policies.
	FullSwapBest, WarmBigBest, WarmLittleBest float64
}

// warmstartTriples lists the paper's comparisons. Jsb(5,2,2) has no big-
// slice Z=1 registration in Table 1, so its WarmBig column reuses the
// Jsb(5,2,1) labeling from Table 2.
var warmstartTriples = [][3]string{
	{"Jsb(5,2,2)", "Jsb(5,2,1)", "Jsl(5,2,1)"},
	{"Jsb(6,3,3)", "Jsb(6,3,1)", "Jsl(6,3,1)"},
	{"Jsb(8,4,4)", "Jsb(8,4,1)", "Jsl(8,4,1)"},
}

// WarmstartStudy evaluates each triple and reports the warmstart gains:
// swapping one job at a time lengthens each job's resident timeslice and
// reduces per-switch pressure on the memory subsystem; the little-timeslice
// variant isolates the second effect.
func WarmstartStudy(sc Scale) ([]WarmstartRow, error) {
	return WarmstartStudyCtx(context.Background(), sc)
}

// WarmstartStudyCtx is WarmstartStudy bounded by a context, with each triple
// a resumable checkpoint shard.
func WarmstartStudyCtx(ctx context.Context, sc Scale) ([]WarmstartRow, error) {
	return shardedMap(ctx, "warmstart", warmstartTriples[:], parallel.Options{}, func(ctx context.Context, _ int, tr [3]string) (WarmstartRow, error) {
		evs, err := parallel.Map(tr[:], parallel.Options{Context: ctx}, func(_ int, label string) (*MixEval, error) {
			return EvalMixCachedCtx(ctx, label, sc)
		})
		if err != nil {
			return WarmstartRow{}, err
		}
		row := WarmstartRow{
			FullSwap:       tr[0],
			WarmBig:        tr[1],
			WarmLittle:     tr[2],
			FullSwapAvg:    evs[0].Avg(),
			WarmBigAvg:     evs[1].Avg(),
			WarmLittleAvg:  evs[2].Avg(),
			FullSwapBest:   evs[0].Best(),
			WarmBigBest:    evs[1].Best(),
			WarmLittleBest: evs[2].Best(),
		}
		row.WarmBigGainPct = 100 * (row.WarmBigAvg - row.FullSwapAvg) / row.FullSwapAvg
		row.WarmLittleGainPct = 100 * (row.WarmLittleAvg - row.FullSwapAvg) / row.FullSwapAvg
		return row, nil
	})
}
