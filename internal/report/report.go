// Package report renders experiment results as aligned text tables and
// ASCII bar charts — the presentation layer for cmd/sosbench and the
// examples. It depends only on the standard library and holds no
// experiment logic.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of cells and renders them with columns aligned.
type Table struct {
	header []string
	rows   [][]string
	// RightAlign[i] right-aligns column i (numeric columns).
	rightAlign map[int]bool
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header, rightAlign: map[int]bool{}}
}

// AlignRight marks columns as numeric (right-aligned).
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.rightAlign[c] = true
	}
	return t
}

// Row appends a row; cells are formatted with %v, and float64 values are
// rendered with three decimals.
func (t *Table) Row(cells ...any) *Table {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, out)
	return t
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if pad < 0 {
				pad = 0
			}
			if t.rightAlign[i] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Bars renders labeled values as an ASCII bar chart, scaled so the largest
// value occupies width characters.
func Bars(w io.Writer, width int, labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if width < 1 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, l := range labels {
		n := int(values[i] / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if _, err := fmt.Fprintf(w, "%-*s %8.3f  %s\n", maxLabel, l, values[i], strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	return nil
}

// Matrix renders a labeled square matrix of float64 values (for the
// pairwise symbiosis table).
func Matrix(w io.Writer, names []string, vals [][]float64) error {
	if len(vals) != len(names) {
		return fmt.Errorf("report: %d rows for %d names", len(vals), len(names))
	}
	cw := 6
	for _, n := range names {
		if len(n) > cw {
			cw = len(n)
		}
	}
	if _, err := fmt.Fprintf(w, "%*s", cw+1, ""); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, " %*s", cw, n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, n := range names {
		if len(vals[i]) != len(names) {
			return fmt.Errorf("report: row %d has %d cells", i, len(vals[i]))
		}
		if _, err := fmt.Fprintf(w, "%*s ", cw+1, n); err != nil {
			return err
		}
		for _, v := range vals[i] {
			if _, err := fmt.Fprintf(w, " %*.3f", cw, v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
