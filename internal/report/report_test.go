package report

import (
	"strings"
	"testing"
)

// TestTableAlignment: columns align, numeric columns right-align, floats
// render with three decimals.
func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Mix", "WS").AlignRight(1)
	tbl.Row("Jsb(6,3,3)", 1.505)
	tbl.Row("Jpb(10,2,2)", 0.9)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "1.505") || !strings.Contains(lines[3], "0.900") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// Right alignment: the WS values end at the same column.
	if idx1, idx2 := strings.Index(lines[2], "1.505")+5, strings.Index(lines[3], "0.900")+5; idx1 != idx2 {
		t.Errorf("numeric column not aligned:\n%s", out)
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows() = %d", tbl.Rows())
	}
}

// TestTableWideCells: cells wider than headers stretch the column.
func TestTableWideCells(t *testing.T) {
	tbl := NewTable("A", "B")
	tbl.Row("a-very-long-cell", "x")
	lines := strings.Split(tbl.String(), "\n")
	if len(lines[0]) < len("a-very-long-cell") {
		t.Errorf("header row narrower than data: %q", lines[0])
	}
}

// TestBars: bars scale to the maximum and label/value mismatches error.
func TestBars(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, 10, []string{"best", "worst"}, []float64{2.0, 1.0}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if strings.Count(lines[0], "#") != 10 {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if err := Bars(&b, 10, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestBarsDegenerate: zero or negative values render without panic.
func TestBarsDegenerate(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, 0, []string{"z"}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "z") {
		t.Error("label missing")
	}
}

// TestMatrix renders a small symmetric matrix.
func TestMatrix(t *testing.T) {
	var b strings.Builder
	err := Matrix(&b, []string{"FP", "GO"}, [][]float64{{1, 1.4}, {1.4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1.400") || !strings.Contains(out, "FP") {
		t.Errorf("matrix content wrong:\n%s", out)
	}
	if err := Matrix(&b, []string{"FP"}, nil); err == nil {
		t.Error("row mismatch accepted")
	}
	if err := Matrix(&b, []string{"FP"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row accepted")
	}
}
