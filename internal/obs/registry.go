package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-microsecond registry operations up to minute-scale experiment shards.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry owns a set of metric families and exposes them in Prometheus
// text format. A nil *Registry is valid and hands out nil handles whose
// methods are no-ops, so callers never branch on "metrics enabled".
//
// Registration is idempotent: asking for the same (name, labels) series
// twice returns the same handle. Asking for the same name with a
// different metric kind panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	now      func() time.Time
	families map[string]*family
}

// family groups all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    string // "counter", "gauge", "histogram"
	buckets []float64
	series  map[string]*series // keyed by canonical label string
}

type series struct {
	labels string // canonical rendered label string, "" when unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// NewRegistry returns an empty registry using the real clock.
func NewRegistry() *Registry {
	return &Registry{now: time.Now, families: make(map[string]*family)}
}

// SetNow injects a clock for tests. It affects histograms created after
// the call, so set it before registering metrics.
func (r *Registry) SetNow(fn func() time.Time) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.now = fn
	r.mu.Unlock()
}

// Counter registers (or finds) a monotonically increasing counter.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "counter", nil, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	r.mu.Unlock()
	return s.c
}

// Gauge registers (or finds) a settable instantaneous value.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "gauge", nil, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	r.mu.Unlock()
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn runs with the registry lock held, so it must not call back
// into the registry (it may take other locks, e.g. a Stats() method).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	s := r.register(name, help, "gauge", nil, labels)
	s.gf = fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets are
// upper bounds in increasing order; nil means DefBuckets. An implicit
// +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	s := r.register(name, help, "histogram", buckets, labels)
	if s.h == nil {
		s.h = newHistogram(r.now, r.families[name].buckets)
	}
	r.mu.Unlock()
	return s.h
}

// register locates or creates the (family, series) pair. It returns with
// r.mu HELD so the caller can fill in the handle race-free; every caller
// must unlock.
func (r *Registry) register(name, help, kind string, buckets []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) || l.Name == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		if kind == "histogram" {
			f.buckets = append([]float64(nil), buckets...)
			for i := 1; i < len(f.buckets); i++ {
				if f.buckets[i] <= f.buckets[i-1] {
					r.mu.Unlock()
					panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
				}
			}
		}
		r.families[name] = f
	}
	if f.kind != kind {
		r.mu.Unlock()
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels produces the canonical {k="v",...} form, sorted by label
// name so registration and exposition agree on series identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing uint64. All methods are safe on
// a nil receiver and from concurrent goroutines; Add is one atomic op
// with zero allocations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. Nil-safe, atomic, allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via CAS.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is lock-free
// (one atomic add per bucket/count, one CAS loop for the float sum) and
// allocation-free. Nil-safe.
type Histogram struct {
	now     func() time.Time
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(now func() time.Time, bounds []float64) *Histogram {
	return &Histogram{now: now, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. NaN observations are dropped (a NaN sum
// would poison the whole series forever).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket search: linear over the typical ~20 bounds beats binary
	// search's branch misses at this size, and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds from t0 to the histogram's
// clock now.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(h.now().Sub(t0).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
