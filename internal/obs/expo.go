package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families
// sorted by name, series sorted by label string, buckets in bound order.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSeries(bw, f, f.series[k])
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch {
	case s.c != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
	case s.gf != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gf()))
	case s.g != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
	case s.h != nil:
		writeHistogram(w, f, s)
	}
}

func writeHistogram(w io.Writer, f *family, s *series) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			withLE(s.labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, h.Count())
}

// withLE splices an le="bound" label into an already-rendered label set.
func withLE(labels, bound string) string {
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
