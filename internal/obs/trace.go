package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanEvent is one JSONL record emitted by a Tracer: a span (DurNS > 0
// covers [StartNS, StartNS+DurNS]) or a point event (DurNS == 0).
type SpanEvent struct {
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Tracer records phase spans and point events. It can sink to a JSONL
// writer (sosbench -trace-out), feed duration histograms and event
// counters in a Registry, or both; either sink may be nil. A nil *Tracer
// is a free no-op, so the simulator brackets phases unconditionally.
//
// Span names are low-cardinality phase identifiers ("sos/sample") that
// become histogram labels; per-item context (a shard key, a mix label)
// goes in detail, which reaches only the JSONL sink.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	err   error
	now   func() time.Time
	reg   *Registry
	spans map[string]*Histogram
	evs   map[string]*Counter
}

// noopEnd is the shared end function returned by nil tracers so that
// bracketing a phase on the "observability off" path allocates nothing.
var noopEnd = func() {}

// NewTracer returns a tracer writing JSONL records to w (nil to skip)
// and span/event metrics to reg (nil to skip).
func NewTracer(w io.Writer, reg *Registry) *Tracer {
	return &Tracer{
		w:     w,
		now:   time.Now,
		reg:   reg,
		spans: make(map[string]*Histogram),
		evs:   make(map[string]*Counter),
	}
}

// SetNow injects a clock for tests.
func (t *Tracer) SetNow(fn func() time.Time) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.now = fn
	t.mu.Unlock()
}

// Span starts a span and returns the function that ends it. Call the
// returned func exactly once; it is safe to call on every exit path via
// defer. detail is free-form per-item context for the JSONL record.
func (t *Tracer) Span(name, detail string) func() {
	if t == nil {
		return noopEnd
	}
	t.mu.Lock()
	start := t.now()
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		end := t.now()
		t.mu.Unlock()
		t.record(name, detail, start, end.Sub(start))
	}
}

// Event records a zero-duration point event (a retry, a resample, a
// churn arrival).
func (t *Tracer) Event(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.now()
	t.mu.Unlock()
	t.record(name, "", now, 0)
	t.counterFor(name).Inc()
}

// Err returns the first JSONL write error, if any, so batch drivers can
// surface a failed -trace-out at exit instead of silently truncating.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) record(name, detail string, start time.Time, dur time.Duration) {
	if dur > 0 {
		t.histFor(name).Observe(dur.Seconds())
	}
	if t.w == nil {
		return
	}
	rec := SpanEvent{Name: name, Detail: detail, StartNS: start.UnixNano(), DurNS: dur.Nanoseconds()}
	buf, err := json.Marshal(rec)
	if err != nil { // struct of strings and ints: cannot happen
		return
	}
	buf = append(buf, '\n')
	t.mu.Lock()
	if _, werr := t.w.Write(buf); werr != nil && t.err == nil {
		t.err = werr
	}
	t.mu.Unlock()
}

func (t *Tracer) histFor(name string) *Histogram {
	if t.reg == nil {
		return nil
	}
	t.mu.Lock()
	h, ok := t.spans[name]
	if !ok {
		h = t.reg.Histogram("obs_span_seconds",
			"Duration of traced phases (SOS sample/optimize/symbios, experiment shards).",
			nil, L("span", name))
		t.spans[name] = h
	}
	t.mu.Unlock()
	return h
}

func (t *Tracer) counterFor(name string) *Counter {
	if t.reg == nil {
		return nil
	}
	t.mu.Lock()
	c, ok := t.evs[name]
	if !ok {
		c = t.reg.Counter("obs_events_total",
			"Point events from traced components (retry, resample, churn, fallback).",
			L("event", name))
		t.evs[name] = c
	}
	t.mu.Unlock()
	return c
}

type tracerKey struct{}

// WithTracer returns a context carrying tr, following the same
// capability-injection pattern as checkpoint.WithRecorder.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom extracts the tracer from ctx; nil (a no-op tracer) when
// absent or when ctx itself is nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}
