package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock hands out instants advancing by a fixed step per call, so
// exposition output and span durations are exact.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h_seconds", "help", nil)
	r.GaugeFunc("gf", "help", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil-registry handles must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "reqs", L("code", "200"))
	b := r.Counter("requests_total", "reqs", L("code", "200"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("requests_total", "reqs", L("code", "500"))
	if a == other {
		t.Fatal("different labels must return distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("requests_total", "reqs")
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("h", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 5, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3 (NaN dropped)", h.Count())
	}
	if h.Sum() != 7 {
		t.Fatalf("histogram sum = %v, want 7", h.Sum())
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", L("k", "v")).Add(2)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	r.GaugeFunc("fn_gauge", "computed", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total b counter
# TYPE b_total counter
b_total{k="v"} 2
# HELP fn_gauge computed
# TYPE fn_gauge gauge
fn_gauge 7
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 3.55
lat_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("code", "200")).Inc()
	r.Histogram("stage_seconds", "stages", nil, L("stage", "decode")).Observe(0.01)
	r.Gauge("depth", "queue depth").Set(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("our own exposition failed to parse: %v", err)
	}
	want := map[string]string{"reqs_total": "counter", "stage_seconds": "histogram", "depth": "gauge"}
	for name, kind := range want {
		if fams[name] != kind {
			t.Fatalf("family %q = %q, want %q (all: %v)", name, fams[name], kind, fams)
		}
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"undeclared sample", "foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad type", "# TYPE foo widget\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 3\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_sum 1\nh_count 1\n"},
		{"malformed labels", "# TYPE foo counter\nfoo{k=unquoted} 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseText(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ParseText accepted %q", tc.name, tc.in)
		}
	}
}

func TestTracerSpansAndEvents(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	reg := NewRegistry()
	reg.SetNow(clock.Now)
	var buf bytes.Buffer
	tr := NewTracer(&buf, reg)
	tr.SetNow(clock.Now)

	end := tr.Span("sos/sample", "mix-1")
	end()
	tr.Event("sos/retry")

	var spans []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		spans = append(spans, ev)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(spans), spans)
	}
	if spans[0].Name != "sos/sample" || spans[0].Detail != "mix-1" || spans[0].DurNS != int64(time.Millisecond) {
		t.Fatalf("span record wrong: %+v", spans[0])
	}
	if spans[1].Name != "sos/retry" || spans[1].DurNS != 0 {
		t.Fatalf("event record wrong: %+v", spans[1])
	}

	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	if !strings.Contains(out, `obs_span_seconds_count{span="sos/sample"} 1`) {
		t.Fatalf("span histogram missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, `obs_events_total{event="sos/retry"} 1`) {
		t.Fatalf("event counter missing from exposition:\n%s", out)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	end := tr.Span("x", "")
	end()
	tr.Event("y")
	if tr.Err() != nil {
		t.Fatal("nil tracer must not error")
	}
	if TracerFrom(nil) != nil {
		t.Fatal("TracerFrom(nil ctx) must be nil")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTracerSurfacesWriteError(t *testing.T) {
	tr := NewTracer(failWriter{}, nil)
	tr.Span("s", "")()
	if tr.Err() == nil {
		t.Fatal("write error must surface via Err")
	}
}

// TestHotPathAllocations is the bench guard for the registry side: the
// per-timeslice simulator counters and per-request stage histograms ride
// on these exact operations, which must not allocate.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var nilTr *Tracer
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Histogram.Observe", func() { h.Observe(0.001) }},
		{"nil Tracer.Span", func() { nilTr.Span("x", "")() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestConcurrentUse hammers one registry from many goroutines while a
// scraper renders it; run under -race in CI this is the data-race gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(io.Discard, r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("c_total", "", L("w", string(rune('a'+i))))
			h := r.Histogram("h_seconds", "", nil)
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-4)
				tr.Span("phase", "")()
				if j%50 == 0 {
					tr.Event("tick")
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			if _, err := ParseText(&buf); err != nil {
				t.Errorf("scrape %d unparsable: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}
