package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// sampleRe matches one exposition sample line:
// name{optional="labels"} value [timestamp].
var sampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+(-?\d+))?$`)

// labelRe matches one k="v" pair inside a label set.
var labelRe = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$`)

// ParseText validates a Prometheus text-format exposition and returns
// the declared metric families as a name → type map. It checks that
// every sample line parses, that every sample belongs to a family
// declared with a # TYPE line, and that every histogram family carries
// an le="+Inf" bucket plus _sum and _count series. scripts/promcheck
// runs this against a live sosd scrape in CI.
func ParseText(r io.Reader) (map[string]string, error) {
	families := make(map[string]string)
	infSeen := make(map[string]bool)
	sumSeen := make(map[string]bool)
	countSeen := make(map[string]bool)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %w", lineNo, value, err)
		}
		if labels != "" {
			if err := checkLabels(labels); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		fam, suffix := familyOf(name, families)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if families[fam] == "histogram" {
			switch suffix {
			case "_bucket":
				if strings.Contains(labels, `le="+Inf"`) {
					infSeen[fam] = true
				}
			case "_sum":
				sumSeen[fam] = true
			case "_count":
				countSeen[fam] = true
			case "":
				return nil, fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, kind := range families {
		if kind != "histogram" {
			continue
		}
		if !infSeen[fam] || !sumSeen[fam] || !countSeen[fam] {
			return nil, fmt.Errorf("histogram family %q missing le=\"+Inf\" bucket, _sum, or _count", fam)
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, kind := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("invalid family name %q", name)
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", kind, name)
		}
		if prev, ok := families[name]; ok && prev != kind {
			return fmt.Errorf("family %q declared twice with types %s and %s", name, prev, kind)
		}
		families[name] = kind
	}
	// HELP lines and free comments need no validation beyond being comments.
	return nil
}

func checkLabels(labels string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if inner == "" {
		return nil
	}
	// Split on commas that sit between pairs; label values containing
	// commas are rare in our output and still parse because each piece
	// must independently match k="v".
	for _, pair := range splitLabelPairs(inner) {
		if !labelRe.MatchString(pair) {
			return fmt.Errorf("malformed label pair %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits k1="v1",k2="v2" on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	escaped := false
	for _, c := range s {
		switch {
		case escaped:
			escaped = false
			b.WriteRune(c)
		case c == '\\':
			escaped = true
			b.WriteRune(c)
		case c == '"':
			inQuote = !inQuote
			b.WriteRune(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(c)
		}
	}
	out = append(out, b.String())
	return out
}

// familyOf resolves a sample name to its declared family, honoring the
// histogram _bucket/_sum/_count suffixes. Returns the family name and
// the suffix consumed ("" for an exact match).
func familyOf(name string, families map[string]string) (string, string) {
	if _, ok := families[name]; ok {
		return name, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if kind, ok := families[base]; ok && (kind == "histogram" || kind == "summary") {
				return base, suffix
			}
		}
	}
	return "", ""
}
