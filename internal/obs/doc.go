// Package obs is the repo's dependency-free observability layer: an
// atomic metrics registry with Prometheus text-format exposition, and a
// phase-span tracer that brackets the SOS loop (sample → optimize →
// symbios) and each experiments shard.
//
// Two invariants shape every type here:
//
//   - Nil no-ops. Like internal/resilience, every handle tolerates a nil
//     receiver: a nil *Registry hands out nil *Counter / *Gauge /
//     *Histogram, and Inc/Set/Observe on those are free no-ops. Callers
//     wire metrics unconditionally and the "observability off"
//     configuration is simply a nil registry — no flags threaded through
//     the simulator.
//
//   - No feedback. Observability is read-only with respect to scheduling:
//     nothing in this package is ever consulted by the sampler, the
//     predictor, or the adaptive monitor loop. /v1/schedule responses and
//     experiment output are byte-identical with the registry on or off,
//     and determinism tests in cmd/sosd and internal/experiments enforce
//     that.
//
// Hot-loop discipline: Counter.Add and Histogram.Observe are single
// atomic operations with zero allocations, so per-timeslice simulator
// counters (core.SimMetrics) can feed the registry without perturbing
// BenchmarkCoreCycles' 0 allocs/op. Registration (Registry.Counter etc.)
// takes a mutex and allocates — resolve handles once at setup, never per
// event.
package obs
