package cpu

import (
	"testing"
	"testing/quick"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/rng"
	"symbios/internal/trace"
)

// Local stream profiles, mirroring the workload package's flavours without
// importing it (workload depends on cpu).
var testProfiles = map[string]trace.Params{
	// fp-heavy, high ILP, small footprint
	"FP": {LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.02,
		FPFrac: 0.85, FPDivFrac: 0.03, IMulFrac: 0.02,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 128 << 10, HotSet: 16 << 10, HotFrac: 0.80,
		SeqFrac: 0.15, SeqStride: 8, BranchSites: 32, BranchEntropy: 0.02,
		CodeBlocks: 1024, BlockLen: 12, JumpFarFrac: 0.05},
	// fp streaming
	"MG": {LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.03,
		FPFrac: 0.80, FPDivFrac: 0.02, IMulFrac: 0.02,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 384 << 10, HotSet: 16 << 10, HotFrac: 0.35,
		SeqFrac: 0.60, SeqStride: 8, BranchSites: 16, BranchEntropy: 0.02,
		CodeBlocks: 256, BlockLen: 10, JumpFarFrac: 0.03},
	// branchy integer
	"GCC": {LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.16,
		FPFrac: 0.02, IMulFrac: 0.02,
		DepShort: 0.65, MaxDep: 8, SecondDepFrac: 0.25,
		WorkingSet: 128 << 10, HotSet: 16 << 10, HotFrac: 0.80,
		SeqFrac: 0.12, SeqStride: 16, BranchSites: 2048, BranchEntropy: 0.14,
		CodeBlocks: 2048, BlockLen: 5, JumpFarFrac: 0.15},
	// very branchy integer
	"GO": {LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.18,
		FPFrac: 0, IMulFrac: 0.02,
		DepShort: 0.65, MaxDep: 8, SecondDepFrac: 0.30,
		WorkingSet: 96 << 10, HotSet: 12 << 10, HotFrac: 0.82,
		SeqFrac: 0.10, SeqStride: 16, BranchSites: 4096, BranchEntropy: 0.18,
		CodeBlocks: 1024, BlockLen: 4, JumpFarFrac: 0.15},
	// compute-bound fp
	"EP": {LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.03,
		FPFrac: 0.80, FPDivFrac: 0.12, IMulFrac: 0.04,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 32 << 10, HotSet: 8 << 10, HotFrac: 0.80,
		SeqFrac: 0.15, SeqStride: 8, BranchSites: 8, BranchEntropy: 0.01,
		CodeBlocks: 64, BlockLen: 16, JumpFarFrac: 0.02},
	// memory-bound integer
	"IS": {LoadFrac: 0.30, StoreFrac: 0.15, BranchFrac: 0.06,
		FPFrac: 0.02, IMulFrac: 0.03,
		DepShort: 0.15, MaxDep: 40, SecondDepFrac: 0.20,
		WorkingSet: 512 << 10, HotSet: 16 << 10, HotFrac: 0.45,
		SeqFrac: 0.25, SeqStride: 8, BranchSites: 32, BranchEntropy: 0.05,
		CodeBlocks: 64, BlockLen: 8, JumpFarFrac: 0.05},
	// fp/int streaming pair workload
	"WAVE": {LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.05,
		FPFrac: 0.70, FPDivFrac: 0.05, IMulFrac: 0.03,
		DepShort: 0.10, MaxDep: 48, SecondDepFrac: 0.25,
		WorkingSet: 256 << 10, HotSet: 16 << 10, HotFrac: 0.55,
		SeqFrac: 0.40, SeqStride: 8, BranchSites: 64, BranchEntropy: 0.04,
		CodeBlocks: 512, BlockLen: 8, JumpFarFrac: 0.08},
}

// mkSource builds a single-threaded source for a named profile flavour.
func mkSource(t testing.TB, name string, seed uint64, space int) Source {
	t.Helper()
	p, ok := testProfiles[name]
	if !ok {
		t.Fatalf("no test profile %q", name)
	}
	s, err := trace.NewStream(p, seed, uint64(space))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// syncSource wraps a stream with SYNC markers every interval instructions
// (mirrors the workload package's thread source).
type syncSource struct {
	base     *trace.Stream
	interval uint64
}

func (s syncSource) At(seq uint64) trace.Inst {
	if s.interval > 0 && (seq+1)%s.interval == 0 {
		return trace.Inst{Op: trace.SYNC, Seq: seq / s.interval}
	}
	return s.base.At(seq)
}

// testGate is a two-thread barrier (mirrors workload.BarrierGroup).
type testGate struct{ arrived [2]uint64 }

func (g *testGate) TryPass(thread int, idx uint64) bool {
	if g.arrived[thread] < idx+1 {
		g.arrived[thread] = idx + 1
	}
	return g.arrived[0] >= idx+1 && g.arrived[1] >= idx+1
}

func mkSyncSource(t testing.TB, seed uint64, space int, interval uint64) Source {
	t.Helper()
	st, err := trace.NewStream(testProfiles["MG"], seed, uint64(space))
	if err != nil {
		t.Fatal(err)
	}
	return syncSource{base: st, interval: interval}
}

func mustCore(t testing.TB, cfg arch.Config) *Core {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestProgress: an attached thread commits instructions.
func TestProgress(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0)
	c.Run(100_000)
	if got := c.ThreadCommitted(0); got < 10_000 {
		t.Errorf("committed only %d instructions in 100k cycles", got)
	}
	s := c.Snapshot()
	if s.Cycles != 100_000 {
		t.Errorf("cycle counter %d", s.Cycles)
	}
	if s.Committed != c.ThreadCommitted(0) {
		t.Errorf("aggregate %d != thread %d", s.Committed, c.ThreadCommitted(0))
	}
}

// TestDeterminism: identical configuration and sources give bit-identical
// counter snapshots.
func TestDeterminism(t *testing.T) {
	run := func() counters.Set {
		c := mustCore(t, arch.Default21264(2))
		c.Attach(0, mkSource(t, "FP", 7, 0), 0, nil, 0)
		c.Attach(1, mkSource(t, "GCC", 8, 1), 0, nil, 0)
		c.Run(200_000)
		return c.Snapshot()
	}
	if run() != run() {
		t.Error("two identical runs diverged")
	}
}

// TestDetachResumeInvariant: detach reports resume = startSeq + committed —
// the in-order-retirement invariant that makes replay exact.
func TestDetachResumeInvariant(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	const start = 12345
	c.Attach(0, mkSource(t, "MG", 3, 0), start, nil, 0)
	c.Run(50_000)
	resume, committed := c.Detach(0)
	if resume != start+committed {
		t.Errorf("resume %d != start %d + committed %d", resume, start, committed)
	}
}

// TestReplayEquivalence: a job sliced across detach/attach cycles executes
// the same instructions as one attached continuously — total committed
// differs only by the squashed in-flight work at each switch.
func TestReplayEquivalence(t *testing.T) {
	continuous := mustCore(t, arch.Default21264(2))
	continuous.Attach(0, mkSource(t, "EP", 5, 0), 0, nil, 0)
	continuous.Run(400_000)
	cCont, _ := continuous.Detach(0)

	sliced := mustCore(t, arch.Default21264(2))
	var seq uint64
	for i := 0; i < 8; i++ {
		sliced.Attach(0, mkSource(t, "EP", 5, 0), seq, nil, 0)
		sliced.Run(50_000)
		seq, _ = sliced.Detach(0)
	}
	// Same total cycles; the sliced run re-fetches squashed instructions,
	// so it lands close behind but never ahead.
	if seq > cCont {
		t.Errorf("sliced run (%d) got ahead of continuous (%d)", seq, cCont)
	}
	if float64(seq) < 0.9*float64(cCont) {
		t.Errorf("sliced run (%d) lost more than 10%% to context switches (continuous %d)", seq, cCont)
	}
}

// TestRenameConservation: after detaching everything, the rename register
// pools are back to their configured sizes, and the queues are empty.
func TestRenameConservation(t *testing.T) {
	cfg := arch.Default21264(3)
	c := mustCore(t, cfg)
	for i, name := range []string{"FP", "MG", "GO"} {
		c.Attach(i, mkSource(t, name, uint64(i+1), i), 0, nil, 0)
	}
	c.Run(123_457) // odd number: detach mid-flight
	for i := 0; i < 3; i++ {
		c.Detach(i)
	}
	if c.intRegsFree != cfg.IntRenameRegs || c.fpRegsFree != cfg.FPRenameRegs {
		t.Errorf("rename pools %d/%d after detach, want %d/%d",
			c.intRegsFree, c.fpRegsFree, cfg.IntRenameRegs, cfg.FPRenameRegs)
	}
	if len(c.intQ) != 0 || len(c.fpQ) != 0 {
		t.Errorf("queues not empty after detach: %d/%d", len(c.intQ), len(c.fpQ))
	}
}

// TestAttachDetachStress is a property test: random attach/detach/run
// sequences preserve the structural invariants.
func TestAttachDetachStress(t *testing.T) {
	cfg := arch.Default21264(4)
	names := []string{"FP", "MG", "GCC", "GO", "EP", "IS"}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := mustCore(t, cfg)
		seqs := make([]uint64, len(names))
		onCtx := [4]int{-1, -1, -1, -1}
		for step := 0; step < 30; step++ {
			ctx := r.Intn(cfg.Contexts)
			if onCtx[ctx] >= 0 {
				seqs[onCtx[ctx]], _ = c.Detach(ctx)
				onCtx[ctx] = -1
			} else {
				job := r.Intn(len(names))
				used := false
				for _, j := range onCtx {
					if j == job {
						used = true
					}
				}
				if used {
					continue
				}
				c.Attach(ctx, mkSource(t, names[job], uint64(job)*7+1, job), seqs[job], nil, 0)
				onCtx[ctx] = job
			}
			c.Run(uint64(r.Intn(5000) + 100))
		}
		for ctx, j := range onCtx {
			if j >= 0 {
				c.Detach(ctx)
			}
		}
		return c.intRegsFree == cfg.IntRenameRegs &&
			c.fpRegsFree == cfg.FPRenameRegs &&
			len(c.intQ) == 0 && len(c.fpQ) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBarrierBlocksWithoutSibling: a tight-sync thread stalls at its first
// barrier when its sibling is absent, and resumes when the sibling arrives.
func TestBarrierBlocksWithoutSibling(t *testing.T) {
	const interval = 400
	gate := &testGate{}
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSyncSource(t, 99, 0, interval), 0, gate, 0)
	c.Run(100_000)
	alone := c.ThreadCommitted(0)
	if alone >= interval {
		t.Errorf("thread passed barrier without sibling: %d committed", alone)
	}
	// Attach the sibling; both should now stream past barriers.
	c.Attach(1, mkSyncSource(t, 100, 0, interval), 0, gate, 1)
	c.Run(100_000)
	if got := c.ThreadCommitted(0); got < 10*interval {
		t.Errorf("thread still stalled with sibling present: %d committed", got)
	}
}

// TestLooseSyncRunsAlone: a loose-sync thread makes substantial progress
// before reaching its first barrier.
func TestLooseSyncRunsAlone(t *testing.T) {
	gate := &testGate{}
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSyncSource(t, 99, 0, 2_000_000), 0, gate, 0)
	c.Run(100_000)
	if got := c.ThreadCommitted(0); got < 50_000 {
		t.Errorf("loose-sync thread made little progress alone: %d", got)
	}
}

// TestICOUNTFairness: two very different threads both make progress; the
// fast one does not starve the slow one and vice versa.
func TestICOUNTFairness(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0) // high ILP fp
	c.Attach(1, mkSource(t, "GO", 2, 1), 0, nil, 0) // branchy int
	c.Run(500_000)
	ep, gov := c.ThreadCommitted(0), c.ThreadCommitted(1)
	if ep == 0 || gov == 0 {
		t.Fatalf("starvation: EP %d, GO %d", ep, gov)
	}
	ratio := float64(ep) / float64(gov)
	if ratio > 10 || ratio < 0.1 {
		t.Errorf("grossly unfair fetch: EP %d vs GO %d", ep, gov)
	}
}

// TestScoreboardConflicts: a tiny window forces scoreboard (window-full)
// conflicts.
func TestScoreboardConflicts(t *testing.T) {
	cfg := arch.Default21264(1)
	cfg.WindowSize = 8
	c := mustCore(t, cfg)
	c.Attach(0, mkSource(t, "MG", 1, 0), 0, nil, 0)
	c.Run(100_000)
	s := c.Snapshot()
	if s.ConflictCycles[counters.Scoreboard] == 0 {
		t.Error("no scoreboard conflicts with an 8-entry window")
	}
}

// TestFPUnitConflicts: coscheduled fp-heavy threads conflict on the two
// floating-point units far more than int-heavy ones.
func TestFPUnitConflicts(t *testing.T) {
	fpPair := mustCore(t, arch.Default21264(2))
	fpPair.Attach(0, mkSource(t, "FP", 1, 0), 0, nil, 0)
	fpPair.Attach(1, mkSource(t, "MG", 2, 1), 0, nil, 0)
	fpPair.Run(300_000)
	fpConf := fpPair.Snapshot().ConflictPct(counters.FPUnits)

	intPair := mustCore(t, arch.Default21264(2))
	intPair.Attach(0, mkSource(t, "GCC", 1, 0), 0, nil, 0)
	intPair.Attach(1, mkSource(t, "GO", 2, 1), 0, nil, 0)
	intPair.Run(300_000)
	intConf := intPair.Snapshot().ConflictPct(counters.FPUnits)

	if fpConf < intConf+5 {
		t.Errorf("fp pair FPU conflicts %.1f%% not clearly above int pair %.1f%%", fpConf, intConf)
	}
}

// TestAttachErrors: misuse panics loudly (these are scheduler bugs).
func TestAttachErrors(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0)
	for name, f := range map[string]func(){
		"double attach":       func() { c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0) },
		"attach out of range": func() { c.Attach(5, mkSource(t, "EP", 1, 0), 0, nil, 0) },
		"detach idle":         func() { c.Detach(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestConfigRejected: invalid configs fail construction.
func TestConfigRejected(t *testing.T) {
	cfg := arch.Default21264(2)
	cfg.WindowSize = 48 // not a power of two
	if _, err := New(cfg); err == nil {
		t.Error("non-power-of-two window accepted")
	}
	cfg = arch.Default21264(2)
	cfg.MemLatency = wheelSize + 100
	if _, err := New(cfg); err == nil {
		t.Error("latency beyond wheel capacity accepted")
	}
	cfg = arch.Default21264(0)
	if _, err := New(cfg); err == nil {
		t.Error("zero contexts accepted")
	}
}

// TestMispredictStall: raising a stream's branch entropy reduces its IPC
// through mispredict fetch stalls.
func TestMispredictStall(t *testing.T) {
	run := func(entropy float64) uint64 {
		p := testProfiles["GO"]
		p.BranchEntropy = entropy
		st, err := trace.NewStream(p, 77, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := mustCore(t, arch.Default21264(1))
		c.Attach(0, st, 0, nil, 0)
		c.Run(300_000)
		return c.ThreadCommitted(0)
	}
	predictable := run(0.0)
	noisy := run(0.5)
	if float64(noisy) > 0.8*float64(predictable) {
		t.Errorf("50%% branch entropy barely slowed the thread: %d vs %d", noisy, predictable)
	}
}

// TestSYNCWithoutGatePasses: SYNC markers are consumed transparently when
// no gate is installed (single-threaded instances of mt_ profiles).
func TestSYNCWithoutGatePasses(t *testing.T) {
	const interval = 2000
	c := mustCore(t, arch.Default21264(1))
	c.Attach(0, mkSyncSource(t, 42, 0, interval), 0, nil, 0)
	c.Run(100_000)
	if got := c.ThreadCommitted(0); got < 2*interval {
		t.Errorf("gateless SYNC stalled the thread: %d committed", got)
	}
}

// TestIdleContexts: a core with no threads just burns cycles.
func TestIdleContexts(t *testing.T) {
	c := mustCore(t, arch.Default21264(3))
	c.Run(10_000)
	s := c.Snapshot()
	if s.Committed != 0 || s.Fetched != 0 {
		t.Errorf("idle core executed %d instructions", s.Committed)
	}
	if s.Cycles != 10_000 {
		t.Errorf("cycles %d", s.Cycles)
	}
}

// mix check: the committed class counters add up.
func TestClassCountersSum(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "WAVE", 1, 0), 0, nil, 0)
	c.Run(200_000)
	s := c.Snapshot()
	sum := s.IntCommitted + s.FPCommitted + s.LoadCommitted + s.StoreCommitted
	if sum != s.Committed {
		t.Errorf("class counters sum to %d, committed %d", sum, s.Committed)
	}
	if s.BranchCommitted > s.IntCommitted {
		t.Error("branches exceed the integer class that contains them")
	}
}

// TestRoundRobinFetchPolicy: the ablation policy runs and distributes
// fetch opportunities without starving either thread.
func TestRoundRobinFetchPolicy(t *testing.T) {
	cfg := arch.Default21264(2)
	cfg.FetchPolicy = arch.FetchRoundRobin
	c := mustCore(t, cfg)
	c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0)
	c.Attach(1, mkSource(t, "GO", 2, 1), 0, nil, 0)
	c.Run(300_000)
	a, b := c.ThreadCommitted(0), c.ThreadCommitted(1)
	if a == 0 || b == 0 {
		t.Fatalf("starvation under round-robin: %d/%d", a, b)
	}
}

// TestFetchPoliciesDiffer: ICOUNT and round-robin produce different
// executions (the ablation is not a no-op).
func TestFetchPoliciesDiffer(t *testing.T) {
	run := func(p arch.FetchPolicy) uint64 {
		cfg := arch.Default21264(2)
		cfg.FetchPolicy = p
		c := mustCore(t, cfg)
		c.Attach(0, mkSource(t, "FP", 1, 0), 0, nil, 0)
		c.Attach(1, mkSource(t, "IS", 2, 1), 0, nil, 0)
		c.Run(300_000)
		return c.Snapshot().Committed
	}
	if run(arch.FetchICOUNT) == run(arch.FetchRoundRobin) {
		t.Error("fetch policies produced identical executions")
	}
}

// TestRapidReattachGenerationSafety is a regression test: stale completion
// wheel entries from a detached thread must not corrupt a thread attached
// to the same context shortly after (the per-context generation check).
func TestRapidReattachGenerationSafety(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	var seqA, seqB uint64
	for i := 0; i < 200; i++ {
		c.Attach(0, mkSource(t, "MG", 9, 0), seqA, nil, 0)
		c.Run(uint64(50 + i%37)) // well inside the wheel horizon
		seqA, _ = c.Detach(0)
		c.Attach(0, mkSource(t, "IS", 11, 1), seqB, nil, 0)
		c.Run(uint64(50 + i%29))
		seqB, _ = c.Detach(0)
	}
	if seqA == 0 || seqB == 0 {
		t.Error("no progress under rapid reattachment")
	}
	if c.intRegsFree != c.cfg.IntRenameRegs || c.fpRegsFree != c.cfg.FPRenameRegs {
		t.Errorf("rename pool corrupted: %d/%d", c.intRegsFree, c.fpRegsFree)
	}
}

// TestFDIVNonPipelined: a divide-saturated stream is limited by the
// non-pipelined divider (IPC well below one per-FPU per cycle on the
// divide share).
func TestFDIVNonPipelined(t *testing.T) {
	p := testProfiles["EP"]
	p.FPFrac, p.FPDivFrac = 1.0, 1.0 // every compute op divides
	p.LoadFrac, p.StoreFrac, p.BranchFrac = 0, 0, 0
	st, err := trace.NewStream(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Default21264(1)
	c := mustCore(t, cfg)
	c.Attach(0, st, 0, nil, 0)
	c.Run(120_000)
	ipc := float64(c.ThreadCommitted(0)) / 120_000
	// 2 dividers, 12-cycle occupancy: hard ceiling 2/12 = 0.167 IPC.
	ceiling := float64(cfg.FPUnits) / float64(cfg.FPDivLatency)
	if ipc > ceiling*1.05 {
		t.Errorf("divide IPC %.3f above non-pipelined ceiling %.3f", ipc, ceiling)
	}
	if ipc < ceiling*0.5 {
		t.Errorf("divide IPC %.3f implausibly far below ceiling %.3f", ipc, ceiling)
	}
}

// TestICacheFootprintStalls: a code footprint far beyond the L1I capacity
// slows fetch relative to a tiny loop.
func TestICacheFootprintStalls(t *testing.T) {
	run := func(blocks int) uint64 {
		p := testProfiles["GCC"]
		p.CodeBlocks = blocks
		p.JumpFarFrac = 0.5
		st, err := trace.NewStream(p, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := mustCore(t, arch.Default21264(1))
		c.Attach(0, st, 0, nil, 0)
		c.Run(300_000)
		return c.ThreadCommitted(0)
	}
	small := run(64)   // ~1 KB of code
	huge := run(65536) // ~1.3 MB of code
	if float64(huge) > 0.8*float64(small) {
		t.Errorf("huge code footprint barely slowed fetch: %d vs %d", huge, small)
	}
}
