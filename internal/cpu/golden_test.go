package cpu

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/counters"
)

// The golden kernel-equivalence suite pins the cycle kernel's observable
// behaviour — counter snapshots, per-thread commit counts and detach resume
// points — for a matrix of architecture configurations and workload shapes.
// The snapshots in testdata/golden_kernel.json were captured from the seed
// (pre-SoA, strictly cycle-by-cycle) kernel; any kernel rearchitecture must
// reproduce them bit for bit. Regenerate with:
//
//	go test ./internal/cpu -run TestGoldenKernel -update-golden
//
// but only after proving the new kernel equivalent some other way — the
// golden file IS the equivalence oracle.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_kernel.json from the current kernel")

// goldenStep is one observation point: counters after running to Cycle.
type goldenStep struct {
	Cycle     uint64            `json:"cycle"`
	Counters  counters.Set      `json:"counters"`
	Committed map[string]uint64 `json:"committed"` // per attached ctx, as "ctx0"...
}

// goldenCase is one configuration/workload cell of the matrix.
type goldenCase struct {
	Name  string       `json:"name"`
	Steps []goldenStep `json:"steps"`
	// Detach results after the final step, for threads detached by the
	// script: resume sequence and committed count, keyed "ctx0"...
	Resume    map[string]uint64 `json:"resume"`
	Committed map[string]uint64 `json:"detachCommitted"`
}

// goldenConfigs names the architecture matrix: SMT levels x cache configs x
// fetch policy x pressure points (tiny windows/queues force every conflict
// class).
func goldenConfigs() map[string]arch.Config {
	smallCache := arch.Default21264(2)
	smallCache.L1DSets, smallCache.L1DAssoc = 64, 2 // 8 KB L1D
	smallCache.L2Sets, smallCache.L2Assoc = 512, 4  // 128 KB L2
	smallCache.DTLBEntries = 16
	smallCache.L1ISets = 64

	tiny := arch.Default21264(3)
	tiny.WindowSize = 16
	tiny.IntQueue, tiny.FPQueue = 8, 6
	tiny.IntRenameRegs, tiny.FPRenameRegs = 12, 12
	tiny.IntALUs, tiny.FPUnits, tiny.LSUnits = 2, 1, 1

	rr := arch.Default21264(2)
	rr.FetchPolicy = arch.FetchRoundRobin

	return map[string]arch.Config{
		"smt1-default":    arch.Default21264(1),
		"smt2-default":    arch.Default21264(2),
		"smt4-default":    arch.Default21264(4),
		"smt2-smallcache": smallCache,
		"smt3-pressure":   tiny,
		"smt2-roundrobin": rr,
	}
}

// runGoldenCase executes the scripted workload for one config and returns
// the observations. The script exercises continuous running, mid-run
// snapshots at odd cycle counts, barrier gates, divide pressure and
// detach/reattach slicing — every path whose timing a kernel rewrite could
// disturb.
func runGoldenCase(t *testing.T, name string, cfg arch.Config) goldenCase {
	t.Helper()
	c := mustCore(t, cfg)
	gc := goldenCase{Name: name, Resume: map[string]uint64{}, Committed: map[string]uint64{}}

	profiles := []string{"IS", "GCC", "FP", "GO"}
	for i := 0; i < cfg.Contexts; i++ {
		c.Attach(i, mkSource(t, profiles[i%len(profiles)], uint64(13+i), i), 0, nil, 0)
	}
	record := func() {
		st := goldenStep{Cycle: c.Cycle(), Counters: c.Snapshot(), Committed: map[string]uint64{}}
		for i := 0; i < cfg.Contexts; i++ {
			if c.Occupied(i) {
				st.Committed[ctxKey(i)] = c.ThreadCommitted(i)
			}
		}
		gc.Steps = append(gc.Steps, st)
	}
	// Odd chunk lengths so snapshots land mid-flight, not on neat
	// boundaries.
	for _, chunk := range []uint64{7_919, 31_337, 104_729, 54_321} {
		c.Run(chunk)
		record()
	}
	// Slice context 0: detach (squashing in-flight work), run the rest,
	// reattach at the resume point, run again. Exercises purge, generation
	// safety and replay.
	resume0, n0 := c.Detach(0)
	gc.Resume[ctxKey(0)], gc.Committed[ctxKey(0)] = resume0, n0
	c.Run(9_973)
	record()
	c.Attach(0, mkSource(t, profiles[0], 13, 0), resume0, nil, 0)
	c.Run(50_021)
	record()
	// Final detach of everything pins resume/commit accounting.
	for i := 0; i < cfg.Contexts; i++ {
		r, n := c.Detach(i)
		gc.Resume[ctxKey(i)], gc.Committed[ctxKey(i)] = r, n
	}
	record()
	return gc
}

// runGoldenBarrier is the barrier-gated companion case: two tight-sync
// threads coordinated by a gate, with a phase where one runs alone.
func runGoldenBarrier(t *testing.T) goldenCase {
	t.Helper()
	cfg := arch.Default21264(2)
	c := mustCore(t, cfg)
	gc := goldenCase{Name: "smt2-barrier", Resume: map[string]uint64{}, Committed: map[string]uint64{}}
	gate := &testGate{}
	c.Attach(0, mkSyncSource(t, 99, 0, 400), 0, gate, 0)
	c.Run(25_000) // blocked at the first barrier most of this time
	st := goldenStep{Cycle: c.Cycle(), Counters: c.Snapshot(), Committed: map[string]uint64{ctxKey(0): c.ThreadCommitted(0)}}
	gc.Steps = append(gc.Steps, st)
	c.Attach(1, mkSyncSource(t, 100, 1, 400), 0, gate, 1)
	c.Run(75_007)
	st = goldenStep{Cycle: c.Cycle(), Counters: c.Snapshot(), Committed: map[string]uint64{
		ctxKey(0): c.ThreadCommitted(0), ctxKey(1): c.ThreadCommitted(1)}}
	gc.Steps = append(gc.Steps, st)
	for i := 0; i < 2; i++ {
		r, n := c.Detach(i)
		gc.Resume[ctxKey(i)], gc.Committed[ctxKey(i)] = r, n
	}
	return gc
}

func ctxKey(i int) string { return "ctx" + string(rune('0'+i)) }

const goldenPath = "testdata/golden_kernel.json"

func buildGolden(t *testing.T) []goldenCase {
	var cases []goldenCase
	names := make([]string, 0)
	cfgs := goldenConfigs()
	for name := range cfgs {
		names = append(names, name)
	}
	// Deterministic order for a stable file.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		cases = append(cases, runGoldenCase(t, name, cfgs[name]))
	}
	cases = append(cases, runGoldenBarrier(t))
	return cases
}

// TestGoldenKernel asserts the kernel reproduces the seed kernel's counter
// stream bit for bit across the config matrix.
func TestGoldenKernel(t *testing.T) {
	got := buildGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden on a trusted kernel): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("case count %d, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("case %d is %q, golden has %q", i, got[i].Name, want[i].Name)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			for s := range want[i].Steps {
				if s < len(got[i].Steps) && !reflect.DeepEqual(got[i].Steps[s], want[i].Steps[s]) {
					t.Errorf("%s step %d diverged:\n got %+v\nwant %+v", want[i].Name, s, got[i].Steps[s], want[i].Steps[s])
					break
				}
			}
			if !reflect.DeepEqual(got[i].Resume, want[i].Resume) || !reflect.DeepEqual(got[i].Committed, want[i].Committed) {
				t.Errorf("%s detach accounting diverged:\n got %v / %v\nwant %v / %v",
					want[i].Name, got[i].Resume, got[i].Committed, want[i].Resume, want[i].Committed)
			}
			if !t.Failed() {
				t.Errorf("%s diverged from golden", want[i].Name)
			}
		}
	}
}
