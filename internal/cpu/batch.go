package cpu

// Batch advances many independent Cores through the same number of cycles,
// interleaved in bounded chunks. It is the core-level counterpart of
// core.EvalBatch: a worker claims one batch — one coarse work item for the
// parallel pool — instead of one simulation, amortizing work-queue and
// scheduling overhead across a group of short calibration or cell runs.
//
// Equivalence contract: a Core's step function reads and writes only that
// Core's state, and Run(a) followed by Run(b) is by construction identical
// to Run(a+b). Interleaving chunk-sized Run calls across cores therefore
// leaves every core in exactly the state a solo Run of the full duration
// would have produced — counters, commit counts and all. The golden and
// differential suites pin this.
type Batch struct {
	cores []*Core
}

// Add enqueues a core. Cores must be distinct; the zero Batch is ready to
// use.
func (b *Batch) Add(c *Core) { b.cores = append(b.cores, c) }

// batchChunk bounds how many cycles one core runs before the batch moves
// on to the next. The value trades interleaving granularity against the
// cost of re-warming each simulation's working set in the host cache; it
// has no effect on simulated results.
const batchChunk = 100_000

// Run advances every enqueued core by exactly cycles. The cores stay
// enqueued, so successive phases (warmup, then measurement) reuse one
// batch.
func (b *Batch) Run(cycles uint64) {
	for done := uint64(0); done < cycles; {
		n := cycles - done
		if n > batchChunk {
			n = batchChunk
		}
		for _, c := range b.cores {
			c.Run(n)
		}
		done += n
	}
}
