// Package cpu implements the cycle-level simultaneous multithreading
// processor simulator that substitutes for SMTSIM.
//
// The model is an out-of-order superscalar core based on the Alpha 21264
// with hardware contexts added for SMT, simulated cycle by cycle:
//
//   - Fetch uses the ICOUNT.2.8 policy: up to FetchWidth instructions per
//     cycle from up to FetchThreads threads, favouring threads with the
//     fewest instructions in the pre-issue pipeline stages.
//   - Fetched instructions claim a reorder-window slot (scoreboard entry), an
//     integer or floating-point renaming register, and a slot in the shared
//     integer or floating-point instruction queue. Exhaustion of any of these
//     is recorded as a conflict on that resource.
//   - Issue selects ready instructions oldest-first from each queue, limited
//     by functional unit availability (integer ALUs, floating-point units,
//     load/store units) and total issue width; a ready instruction denied a
//     unit records a conflict on that unit class. FDIV occupies its unit
//     non-pipelined; everything else is fully pipelined.
//   - Loads and stores probe the shared DTLB/L1D/L2/memory hierarchy at
//     issue; the access latency determines completion time.
//   - Branches consult the shared gshare predictor at fetch. A mispredicted
//     branch stops the thread's fetch until the branch resolves, plus a
//     pipeline-refill penalty.
//   - Instructions retire in order per thread, freeing window slots and
//     renaming registers.
//
// Contexts are attached to instruction streams (see internal/trace) by the
// jobscheduler; detaching a context squashes its in-flight instructions and
// reports the sequence number to resume from, so a job's execution replays
// exactly regardless of how it is timesliced.
//
// # Implementation
//
// The kernel is organised for throughput (DESIGN.md §12). Pipeline state
// lives in flat structure-of-arrays storage indexed by a global window index
// gi = ctx<<winShift | slot, so the hot loops walk dense arrays instead of
// chasing per-thread pointers. The issue stage caches a readiness lower
// bound per queue entry (and per window slot, so dependants of queued
// producers inherit transitively tight bounds) and skips whole-queue scans
// while no entry can possibly act. On top of that, Run detects quiescent
// cycles — no fetch, issue, completion, or retirement, and no thread state
// change — and jumps directly to the next event (earliest completion-wheel
// entry, fetch-stall expiry, or functional-unit release), attributing every
// skipped cycle the exact per-resource conflict pattern the quiescent cycle
// latched. All of this is observably equivalent to stepping cycle by cycle;
// the golden suite in golden_test.go pins that equivalence bit for bit.
package cpu

import (
	"fmt"
	"math"
	"math/bits"

	"symbios/internal/arch"
	"symbios/internal/branch"
	"symbios/internal/cache"
	"symbios/internal/counters"
	"symbios/internal/trace"
)

// Source supplies a thread's dynamic instruction stream. At must be a pure
// function of seq (see internal/trace).
type Source interface {
	At(seq uint64) trace.Inst
}

// SyncGate coordinates SYNC (barrier) instructions between threads of a
// multithreaded job. TryPass is called when a thread is about to fetch past
// barrier number idx; it must be idempotent and return true once every
// sibling thread has arrived at idx.
type SyncGate interface {
	TryPass(thread int, idx uint64) bool
}

const noSeq = math.MaxUint64

// uopState tracks an instruction's progress through the pipeline.
type uopState = uint8

const (
	stQueued uopState = iota // dispatched, waiting in IQ/FQ
	stIssued                 // executing on a functional unit
	stDone                   // completed, awaiting in-order retire
)

// qent is a queue reference to a window slot; the entry's readiness bound
// lives in Core.uReady[gi].
type qent struct {
	gi  int32 // global window index; -1 tombstones an issued entry
	gen uint32
}

const wheelSize = 1024 // > worst-case instruction latency

// wheel entries pack (generation, global window index) into one word.
func wheelRef(gen uint32, gi int32) uint64 { return uint64(gen)<<32 | uint64(uint32(gi)) }

// Core is the simulated SMT processor. Per-instruction and per-thread
// pipeline state is held in parallel arrays ("structure of arrays") indexed
// by gi = ctx<<winShift | slot for instructions and by ctx for threads; the
// arrays are allocated once in New and recycled across Attach/Detach, so
// steady-state simulation performs no allocation.
type Core struct {
	cfg arch.Config
	mem *cache.Hierarchy
	bp  *branch.Predictor

	winShift int // log2(WindowSize)
	winMask  int // WindowSize-1

	// Per-instruction state, indexed by gi. Slots hold stale contents from
	// earlier attachments (exactly like the recycled window rings they
	// replace); every read is guarded by a seq or generation check.
	uOp      []trace.Op
	uState   []uopState
	uMispred []bool
	uSeq     []uint64
	uDep1    []uint64
	uDep2    []uint64
	uAddr    []uint64
	uDoneAt  []uint64
	// uReady caches the slot's readiness bound while queued. It is exact —
	// the max of the producers' completion cycles — once uPending[gi] hits
	// zero; until then it is a lower bound and the issue scan re-polls on
	// expiry. uGen stamps the attach generation that dispatched the slot, so
	// producer state is only trusted for slots of the current attachment.
	uReady []uint64
	uGen   []uint32

	// Forward wakeup edges: when an instruction issues, it pushes its exact
	// completion cycle to dependants dispatched while it was still queued,
	// instead of each dependant polling its producers. uPending counts a
	// slot's unresolved producers; wakeHead/wakeNext form per-producer
	// singly-linked waiter lists where edge id = consumer<<1 | depIndex
	// (each consumer has at most two outgoing edges, so edge storage is
	// preallocated and allocation-free).
	uPending []uint8
	wakeHead []int32
	wakeNext []int32

	// Per-thread (hardware context) state, indexed by ctx.
	tSrc       []Source
	tGate      []SyncGate
	tID        []int
	tLive      []bool
	tSeq       []uint64 // next instruction to fetch
	tCommitted []uint64 // instructions retired since attach
	tHeadSeq   []uint64 // seq of the oldest in-flight instruction
	tHead      []int    // ring index of oldest
	tCount     []int
	tUnissued  []int    // ICOUNT: fetched but not yet issued
	tStall     []uint64 // fetch stalled until this cycle (icache miss, refill)
	tWait      []uint64 // seq of unresolved mispredicted branch, or noSeq
	tBarrier   []uint64 // barrier index the thread is blocked on, or noSeq
	tCurLine   []uint64 // last icache line fetched (1 + line address; 0 = none)
	tGen       []uint32 // attach generation; survives detach

	// One-instruction fetch memo per context. Fetch often breaks on a line
	// fill, a full window, or a structural latch and retries the same seq
	// next cycle; sources are pure functions of seq, so the regenerated
	// instruction is identical and the (expensive) generation is skipped.
	tMemoSeq []uint64 // seq the memo holds, or noSeq
	tMemoIn  []trace.Inst

	liveCount int

	intQ []qent // age-ordered
	fpQ  []qent

	// Earliest cycle at which the next scan of each queue could issue,
	// latch a conflict, or tighten a bound; while cycle < minRetry the scan
	// is provably a no-op and is skipped entirely.
	intMinRetry uint64
	fpMinRetry  uint64

	intRegsFree int
	fpRegsFree  int

	ialuBusy []uint64 // busy-until cycle per unit
	fpuBusy  []uint64
	lsuBusy  []uint64

	wheel        [wheelSize][]uint64
	pendingWheel int // entries (live or stale) currently on the wheel

	cycle uint64
	ctr   counters.Set

	// per-cycle conflict latches, bit r = counters.Resource r
	conf uint32

	// skipOK gates quiescent-cycle jumps: under round-robin fetch with >1
	// thread the fetch priority rotates with the cycle number, so repeated
	// cycles are not guaranteed identical and skipping would be unsound.
	skipOK bool

	latMin   [16]uint64 // lower bound on latency() per op
	lineMask uint64
}

// New constructs a core for cfg. The memory hierarchy and branch predictor
// are created cold.
func New(cfg arch.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxLat := cfg.L1DHitLatency + cfg.TLBMissPenalty + cfg.L2HitLatency + cfg.MemLatency + cfg.FPDivLatency + 2
	if maxLat >= wheelSize {
		return nil, fmt.Errorf("cpu: configured latencies (%d) exceed wheel capacity %d", maxLat, wheelSize)
	}
	if cfg.WindowSize&(cfg.WindowSize-1) != 0 {
		return nil, fmt.Errorf("cpu: WindowSize %d must be a power of two", cfg.WindowSize)
	}
	n := cfg.Contexts
	size := n * cfg.WindowSize
	c := &Core{
		cfg:      cfg,
		mem:      cache.NewHierarchy(cfg),
		bp:       branch.New(cfg.BranchPHTBits, cfg.BranchHistBits, n),
		winShift: bits.TrailingZeros(uint(cfg.WindowSize)),
		winMask:  cfg.WindowSize - 1,

		uOp:      make([]trace.Op, size),
		uState:   make([]uopState, size),
		uMispred: make([]bool, size),
		uSeq:     make([]uint64, size),
		uDep1:    make([]uint64, size),
		uDep2:    make([]uint64, size),
		uAddr:    make([]uint64, size),
		uDoneAt:  make([]uint64, size),
		uReady:   make([]uint64, size),
		uGen:     make([]uint32, size),
		uPending: make([]uint8, size),
		wakeHead: make([]int32, size),
		wakeNext: make([]int32, 2*size),

		tSrc:       make([]Source, n),
		tGate:      make([]SyncGate, n),
		tID:        make([]int, n),
		tLive:      make([]bool, n),
		tSeq:       make([]uint64, n),
		tCommitted: make([]uint64, n),
		tHeadSeq:   make([]uint64, n),
		tHead:      make([]int, n),
		tCount:     make([]int, n),
		tUnissued:  make([]int, n),
		tStall:     make([]uint64, n),
		tWait:      make([]uint64, n),
		tBarrier:   make([]uint64, n),
		tCurLine:   make([]uint64, n),
		tGen:       make([]uint32, n),
		tMemoSeq:   make([]uint64, n),
		tMemoIn:    make([]trace.Inst, n),

		intQ:        make([]qent, 0, cfg.IntQueue),
		fpQ:         make([]qent, 0, cfg.FPQueue),
		intMinRetry: noSeq,
		fpMinRetry:  noSeq,
		intRegsFree: cfg.IntRenameRegs,
		fpRegsFree:  cfg.FPRenameRegs,
		ialuBusy:    make([]uint64, cfg.IntALUs),
		fpuBusy:     make([]uint64, cfg.FPUnits),
		lsuBusy:     make([]uint64, cfg.LSUnits),
		lineMask:    ^uint64(cfg.L1ILineBytes - 1),
	}
	// Lower bounds on execution latency per op class, used for dependant
	// wake-up bounds. LOAD can never beat an L1 hit; STORE completes in one
	// cycle through the write buffer.
	c.latMin[trace.IALU] = uint64(cfg.IntALULatency)
	c.latMin[trace.SYNC] = uint64(cfg.IntALULatency)
	c.latMin[trace.IMUL] = uint64(cfg.IntMulLatency)
	c.latMin[trace.FADD] = uint64(cfg.FPAddLatency)
	c.latMin[trace.FMUL] = uint64(cfg.FPMulLatency)
	c.latMin[trace.FDIV] = uint64(cfg.FPDivLatency)
	c.latMin[trace.BRANCH] = uint64(cfg.BranchLatency)
	c.latMin[trace.LOAD] = uint64(cfg.L1DHitLatency)
	c.latMin[trace.STORE] = 1
	for i := range c.latMin {
		if c.latMin[i] == 0 {
			c.latMin[i] = 1
		}
	}
	// Pre-size the completion-wheel buckets out of one backing array so the
	// issue stage's bucket appends never grow storage in the steady state
	// (a bucket holds the instructions completing on one cycle; more than
	// issue-width entries per cycle is rare, and overflow just reallocates
	// that bucket).
	bucketCap := cfg.IssueWidth
	if bucketCap < 4 {
		bucketCap = 4
	}
	backing := make([]uint64, wheelSize*bucketCap)
	for i := range c.wheel {
		c.wheel[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	for i := range c.wakeHead {
		c.wakeHead[i] = -1
	}
	for i := range c.tMemoSeq {
		c.tMemoSeq[i] = noSeq
	}
	c.updateSkipOK()
	return c, nil
}

func (c *Core) updateSkipOK() {
	c.skipOK = c.cfg.FetchPolicy != arch.FetchRoundRobin || c.liveCount <= 1
}

// Config returns the architecture configuration.
func (c *Core) Config() arch.Config { return c.cfg }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Mem exposes the memory hierarchy (for warmup and diagnostics).
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// Attach binds src to hardware context ctx, starting at startSeq. gate may
// be nil for single-threaded jobs; threadID is the identifier passed to the
// gate for barrier coordination. Attach panics if the context is occupied or
// out of range, which indicates a scheduler bug.
func (c *Core) Attach(ctx int, src Source, startSeq uint64, gate SyncGate, threadID int) {
	if ctx < 0 || ctx >= len(c.tLive) {
		panic(fmt.Sprintf("cpu: Attach to context %d of %d", ctx, len(c.tLive)))
	}
	if c.tLive[ctx] {
		panic(fmt.Sprintf("cpu: context %d already occupied", ctx))
	}
	c.tGen[ctx]++
	c.tSrc[ctx] = src
	c.tGate[ctx] = gate
	c.tID[ctx] = threadID
	c.tLive[ctx] = true
	c.tSeq[ctx] = startSeq
	c.tCommitted[ctx] = 0
	c.tHeadSeq[ctx] = startSeq
	c.tHead[ctx] = 0
	c.tCount[ctx] = 0
	c.tUnissued[ctx] = 0
	c.tStall[ctx] = 0
	c.tWait[ctx] = noSeq
	c.tBarrier[ctx] = noSeq
	c.tCurLine[ctx] = 0
	c.tMemoSeq[ctx] = noSeq
	c.liveCount++
	c.updateSkipOK()
	c.bp.ResetHistory(ctx)
}

// Detach removes the thread on ctx, squashing its in-flight instructions,
// and returns the sequence number at which the job should later resume (the
// oldest unretired instruction) along with the number of instructions it
// committed while attached.
func (c *Core) Detach(ctx int) (resumeSeq, committed uint64) {
	if !c.tLive[ctx] {
		panic(fmt.Sprintf("cpu: Detach of idle context %d", ctx))
	}
	// Reclaim rename registers held by in-flight instructions.
	base := ctx << c.winShift
	head, count := c.tHead[ctx], c.tCount[ctx]
	for i := 0; i < count; i++ {
		if c.uOp[base|((head+i)&c.winMask)].IsFP() {
			c.fpRegsFree++
		} else {
			c.intRegsFree++
		}
	}
	// Purge queue entries belonging to this context. Wheel entries are
	// invalidated lazily via the generation check.
	c.intQ = purge(c.intQ, ctx, c.winShift)
	c.fpQ = purge(c.fpQ, ctx, c.winShift)
	resume, n := c.tHeadSeq[ctx], c.tCommitted[ctx]
	c.tSrc[ctx], c.tGate[ctx] = nil, nil // drop references until reuse
	c.tLive[ctx] = false
	c.liveCount--
	c.updateSkipOK()
	return resume, n
}

// Occupied reports whether context ctx has a thread attached.
func (c *Core) Occupied(ctx int) bool { return c.tLive[ctx] }

// ThreadCommitted returns instructions committed by the thread on ctx since
// it was attached.
func (c *Core) ThreadCommitted(ctx int) uint64 {
	if c.tLive[ctx] {
		return c.tCommitted[ctx]
	}
	return 0
}

// purge compacts q in place, removing entries of the detached context. The
// common case — no entry belongs to the context — is a pure scan with no
// writes; otherwise entries shift left from the first removal on.
func purge(q []qent, ctx, winShift int) []qent {
	i := 0
	for i < len(q) && int(q[i].gi)>>winShift != ctx {
		i++
	}
	if i == len(q) {
		return q
	}
	out := i
	for ; i < len(q); i++ {
		if int(q[i].gi)>>winShift != ctx {
			q[out] = q[i]
			out++
		}
	}
	return q[:out]
}

// Snapshot returns the current counter totals, including memory-system and
// branch-predictor counters.
func (c *Core) Snapshot() counters.Set {
	s := c.ctr
	s.Cycles = c.cycle
	l1d, l1i, l2, tlb := c.mem.L1D.Stats(), c.mem.L1I.Stats(), c.mem.L2.Stats(), c.mem.DTLB.Stats()
	s.L1DHits, s.L1DMisses = l1d.Hits, l1d.Misses
	s.L1IHits, s.L1IMisses = l1i.Hits, l1i.Misses
	s.L2Hits, s.L2Misses = l2.Hits, l2.Misses
	s.TLBHits, s.TLBMisses = tlb.Hits, tlb.Misses
	s.BranchPredicts, s.BranchMispredicts = c.bp.Stats()
	return s
}

// Run simulates n cycles. Quiescent stretches — cycles that provably repeat
// the previous cycle's (non-)activity — are jumped in one step with exact
// counter attribution; see skipAhead.
func (c *Core) Run(n uint64) {
	target := c.cycle + n
	for c.cycle < target {
		if c.step() && c.skipOK {
			c.skipAhead(target)
		}
	}
}

// step advances the core by one cycle and reports whether the cycle was
// quiescent: no instruction completed, retired, issued, or fetched, and no
// thread fetch state changed. After a quiescent cycle the core is at a
// fixed point that only an already-scheduled event can disturb.
func (c *Core) step() bool {
	c.cycle++
	c.conf = 0

	quiet := !c.complete()
	quiet = c.retire() == 0 && quiet
	quiet = c.issue() == 0 && quiet
	fetched, mutated := c.fetch()
	quiet = fetched == 0 && !mutated && quiet

	m := c.conf
	for m != 0 {
		c.ctr.ConflictCycles[bits.TrailingZeros32(m)]++
		m &= m - 1
	}
	return quiet
}

// skipAhead jumps from the just-executed quiescent cycle to the next cycle
// at which anything can change, bounded by target. Each skipped cycle
// increments exactly the conflict counters the quiescent cycle latched —
// which is what stepping would have done, because a quiescent core re-latches
// the identical pattern until one of the bounding events fires:
//
//   - a completion-wheel entry for a live instruction (wakes dependants,
//     resolves branches, unblocks retire — every queue/register/window
//     transition descends from a completion);
//   - a fetch-stall expiry on a live thread;
//   - a functional-unit release, when the quiescent cycle latched a unit
//     denial (only the denied classes can act before any completion).
//
// Barrier-blocked threads need no bound: TryPass is idempotent and its
// verdict can only flip when a sibling progresses, which requires one of
// the events above.
func (c *Core) skipAhead(target uint64) {
	cyc := c.cycle
	if target <= cyc+1 {
		return
	}
	event := target
	for ctx, live := range c.tLive {
		if live && c.tStall[ctx] > cyc && c.tStall[ctx] < event {
			event = c.tStall[ctx]
		}
	}
	if c.conf&(1<<counters.IntUnits) != 0 {
		event = minBusy(event, cyc, c.ialuBusy)
	}
	if c.conf&(1<<counters.FPUnits) != 0 {
		event = minBusy(event, cyc, c.fpuBusy)
	}
	if c.conf&(1<<counters.LSUnits) != 0 {
		event = minBusy(event, cyc, c.lsuBusy)
	}
	if c.pendingWheel > 0 {
		maxd := event - cyc
		if maxd > wheelSize {
			maxd = wheelSize
		}
		for d := uint64(1); d < maxd; d++ {
			b := c.wheel[(cyc+d)&(wheelSize-1)]
			if len(b) == 0 {
				continue
			}
			// Stale entries (squashed by detach) may be jumped over: they
			// are generation-checked whenever their bucket is eventually
			// processed. A live entry is a hard event boundary.
			for _, ref := range b {
				gi := int32(uint32(ref))
				ctx := int(gi) >> c.winShift
				if c.tLive[ctx] && c.tGen[ctx] == uint32(ref>>32) {
					event = cyc + d
					break
				}
			}
			if event == cyc+d {
				break
			}
		}
	}
	if event <= cyc+1 {
		return
	}
	skip := event - 1 - cyc
	c.cycle = event - 1
	m := c.conf
	for m != 0 {
		c.ctr.ConflictCycles[bits.TrailingZeros32(m)] += skip
		m &= m - 1
	}
}

// minBusy lowers event to the earliest unit release after cyc.
func minBusy(event, cyc uint64, busy []uint64) uint64 {
	for _, b := range busy {
		if b > cyc && b < event {
			event = b
		}
	}
	return event
}

// complete processes instructions whose execution finishes this cycle. It
// reports whether any live instruction completed.
func (c *Core) complete() bool {
	slot := &c.wheel[c.cycle&(wheelSize-1)]
	if len(*slot) == 0 {
		return false
	}
	active := false
	for _, ref := range *slot {
		gi := int32(uint32(ref))
		ctx := int(gi) >> c.winShift
		if !c.tLive[ctx] || c.tGen[ctx] != uint32(ref>>32) {
			continue // squashed
		}
		if c.uState[gi] != stIssued {
			continue
		}
		c.uState[gi] = stDone
		active = true
		if c.uOp[gi] == trace.BRANCH && c.uMispred[gi] && c.tWait[ctx] == c.uSeq[gi] {
			// Resolve: fetch restarts after the refill penalty.
			c.tWait[ctx] = noSeq
			c.tStall[ctx] = c.cycle + uint64(c.cfg.MispredictPenalty)
		}
	}
	c.pendingWheel -= len(*slot)
	*slot = (*slot)[:0]
	return active
}

// retire commits completed instructions in order, per thread, and returns
// the number retired.
func (c *Core) retire() int {
	retired := 0
	for ctx, live := range c.tLive {
		if !live {
			continue
		}
		base := ctx << c.winShift
		head, count := c.tHead[ctx], c.tCount[ctx]
		if count == 0 || c.uState[base|head] != stDone {
			continue
		}
		committed := uint64(0)
		for n := 0; n < c.cfg.RetireWidth && count > 0; n++ {
			gi := base | head
			if c.uState[gi] != stDone {
				break
			}
			op := c.uOp[gi]
			if op.IsFP() {
				c.fpRegsFree++
				c.ctr.FPCommitted++
			} else {
				c.intRegsFree++
				switch op {
				case trace.LOAD:
					c.ctr.LoadCommitted++
				case trace.STORE:
					c.ctr.StoreCommitted++
				case trace.BRANCH:
					c.ctr.BranchCommitted++
					c.ctr.IntCommitted++
				default:
					c.ctr.IntCommitted++
				}
			}
			committed++
			head = (head + 1) & c.winMask
			count--
		}
		if committed > 0 {
			c.ctr.Committed += committed
			c.tCommitted[ctx] += committed
			c.tHeadSeq[ctx] += committed
			c.tHead[ctx] = head
			c.tCount[ctx] = count
			retired += int(committed)
		}
	}
	return retired
}

// depAvail returns the earliest cycle producer sequence p of thread ctx
// could be complete: 0 if it is architecturally available, its known
// completion cycle if executing, or a lower bound if still queued.
// consumerFP tells which queue the consumer sits in, which determines
// whether a queued producer could still issue in the current cycle (the
// integer queue is scanned before the floating-point queue).
func (c *Core) depAvail(ctx int, p uint64, consumerFP bool) uint64 {
	if p == noSeq || p < c.tHeadSeq[ctx] {
		return 0 // absent, retired or pre-attach: available
	}
	slot := (c.tHead[ctx] + int(p-c.tHeadSeq[ctx])) & c.winMask
	gi := ctx<<c.winShift | slot
	if c.uSeq[gi] != p {
		// The producer was squashed by a detach and never re-fetched under
		// this attachment; its value is architecturally available on resume.
		return 0
	}
	switch c.uState[gi] {
	case stDone:
		return 0
	case stIssued:
		return c.uDoneAt[gi]
	}
	// Still queued: it must issue and execute first. For a producer
	// dispatched by the current attachment the bound compounds the
	// producer's own cached readiness bound with its minimum latency —
	// exact enough that dependence chains wake when they can actually
	// issue. A stale seq-colliding slot from an earlier attachment has no
	// trustworthy bound; it is re-polled shortly, as the pre-SoA kernel
	// polled every queued producer.
	if c.uGen[gi] != c.tGen[ctx] {
		return c.cycle + 2
	}
	op := c.uOp[gi]
	// The producer can issue this cycle at the earliest — or next cycle if
	// its queue's scan already passed it (same queue as the consumer, or
	// the integer queue seen from a floating-point consumer).
	base := c.cycle
	if consumerFP || !op.IsFP() {
		base++
	}
	if rb := c.uReady[gi]; rb > base {
		base = rb
	}
	return base + c.latMin[op]
}

// availAt returns the earliest cycle gi's producers could all be complete.
func (c *Core) availAt(ctx int, gi int32, consumerFP bool) uint64 {
	a := c.depAvail(ctx, c.uDep1[gi], consumerFP)
	if d2 := c.uDep2[gi]; d2 != noSeq {
		if b := c.depAvail(ctx, d2, consumerFP); b > a {
			a = b
		}
	}
	return a
}

// latency returns gi's execution latency; memory ops probe the hierarchy.
func (c *Core) latency(gi int32, op trace.Op) int {
	switch op {
	case trace.IALU, trace.SYNC:
		return c.cfg.IntALULatency
	case trace.IMUL:
		return c.cfg.IntMulLatency
	case trace.FADD:
		return c.cfg.FPAddLatency
	case trace.FMUL:
		return c.cfg.FPMulLatency
	case trace.FDIV:
		return c.cfg.FPDivLatency
	case trace.BRANCH:
		return c.cfg.BranchLatency
	case trace.LOAD:
		lat, _ := c.mem.DataAccess(c.uAddr[gi])
		return lat
	case trace.STORE:
		// The store probes the cache for contention accounting, but the
		// write buffer lets dependents proceed after a single cycle.
		c.mem.DataAccess(c.uAddr[gi])
		return 1
	}
	panic("cpu: unknown op")
}

// issue selects ready instructions from the queues, oldest first, and
// returns the number issued. Queues whose minRetry bound lies in the future
// are skipped without scanning: no entry can issue, be denied a unit, or
// tighten a bound, so the scan would be observationally a no-op.
func (c *Core) issue() int {
	budget := c.cfg.IssueWidth
	issued := 0
	if c.cycle >= c.intMinRetry {
		budget, issued = c.issueQueue(&c.intQ, &c.intMinRetry, budget, false)
	}
	if budget > 0 && c.cycle >= c.fpMinRetry {
		_, n := c.issueQueue(&c.fpQ, &c.fpMinRetry, budget, true)
		issued += n
	}
	return issued
}

func (c *Core) issueQueue(q *[]qent, minRetry *uint64, budget int, isFP bool) (int, int) {
	issued := 0
	cyc := c.cycle
	newMin := uint64(noSeq)
	firstDead := -1
	qq := *q
	for i := range qq {
		if budget == 0 {
			// Entries past this point go unexamined this cycle; they must
			// be rescanned next cycle.
			if cyc+1 < newMin {
				newMin = cyc + 1
			}
			break
		}
		gi := qq[i].gi
		if r := c.uReady[gi]; r > cyc {
			if r < newMin {
				newMin = r
			}
			continue
		}
		ctx := int(gi) >> c.winShift
		if c.uPending[gi] != 0 {
			// Some producer is unresolved (squashed-slot collision or a
			// stale bound): fall back to polling, exactly as the pre-SoA
			// kernel polled every queued producer.
			if avail := c.availAt(ctx, gi, isFP); avail > cyc {
				c.uReady[gi] = avail
				if avail < newMin {
					newMin = avail
				}
				continue
			}
		}
		op := c.uOp[gi]
		var busy []uint64
		var res counters.Resource
		switch {
		case op.IsMem():
			busy, res = c.lsuBusy, counters.LSUnits
		case op.IsFP():
			busy, res = c.fpuBusy, counters.FPUnits
		default:
			busy, res = c.ialuBusy, counters.IntUnits
		}
		unit := -1
		for k := range busy {
			if busy[k] <= cyc {
				unit = k
				break
			}
		}
		if unit < 0 {
			c.conf |= 1 << res
			// Denied a unit: the earliest anything changes is next cycle.
			if cyc+1 < newMin {
				newMin = cyc + 1
			}
			continue
		}
		lat := uint64(c.latency(gi, op))
		if op == trace.FDIV {
			busy[unit] = cyc + lat // divider is not pipelined
		} else {
			busy[unit] = cyc + 1
		}
		c.uState[gi] = stIssued
		done := cyc + lat
		c.uDoneAt[gi] = done
		b := &c.wheel[done&(wheelSize-1)]
		*b = append(*b, wheelRef(qq[i].gen, gi))
		c.pendingWheel++
		c.tUnissued[ctx]--
		// Wake dependants: they now know this producer's exact completion.
		for eid := c.wakeHead[gi]; eid >= 0; {
			cons := eid >> 1
			c.uPending[cons]--
			if done > c.uReady[cons] {
				c.uReady[cons] = done
			}
			eid = c.wakeNext[eid]
		}
		c.wakeHead[gi] = -1
		qq[i].gi = -1 // tombstone
		if firstDead < 0 {
			firstDead = i
		}
		issued++
		budget--
	}
	if issued > 0 {
		// Compact in place from the first tombstone; the clean prefix is
		// untouched.
		w := firstDead
		for r := firstDead + 1; r < len(qq); r++ {
			if qq[r].gi >= 0 {
				qq[w] = qq[r]
				w++
			}
		}
		*q = qq[:w]
	}
	*minRetry = newMin
	return budget, issued
}

// fetch implements the fetch stage (ICOUNT.2.8 by default) plus rename and
// dispatch. It returns the number of instructions fetched and whether any
// thread fetch state changed without a fetch (icache line fill started,
// barrier entered or passed) — either makes the cycle non-quiescent.
func (c *Core) fetch() (int, bool) {
	var order [16]int
	n := 0
	for ctx, live := range c.tLive {
		if live {
			order[n] = ctx
			n++
		}
	}
	if c.cfg.FetchPolicy == arch.FetchRoundRobin {
		// Rotate priority by cycle, ignoring pipeline occupancy.
		if n > 1 {
			k := int(c.cycle) % n
			var rot [16]int
			for i := 0; i < n; i++ {
				rot[i] = order[(i+k)%n]
			}
			order = rot
		}
	} else {
		// Insertion sort by unissued count (ICOUNT); context count is tiny.
		for i := 1; i < n; i++ {
			for j := i; j > 0; j-- {
				if c.tUnissued[order[j]] < c.tUnissued[order[j-1]] {
					order[j-1], order[j] = order[j], order[j-1]
				} else {
					break
				}
			}
		}
	}

	budget := c.cfg.FetchWidth
	threadsUsed := 0
	fetched := 0
	mutated := false
	for i := 0; i < n && budget > 0 && threadsUsed < c.cfg.FetchThreads; i++ {
		got, attempted, mut := c.fetchThread(order[i], budget)
		budget -= got
		fetched += got
		mutated = mutated || mut
		if attempted {
			threadsUsed++
		}
	}
	return fetched, mutated
}

// fetchThread fetches up to max instructions for ctx. It returns how many
// were fetched, whether the thread consumed a fetch port, and whether any
// fetch state mutated.
func (c *Core) fetchThread(ctx, max int) (fetched int, attempted, mutated bool) {
	cyc := c.cycle
	if c.tStall[ctx] > cyc || c.tWait[ctx] != noSeq {
		return 0, false, false
	}
	if bar := c.tBarrier[ctx]; bar != noSeq {
		if !c.tGate[ctx].TryPass(c.tID[ctx], bar) {
			return 0, false, false
		}
		c.tBarrier[ctx] = noSeq
		c.tSeq[ctx]++ // consume the SYNC marker
		mutated = true
	}
	base := ctx << c.winShift
	src := c.tSrc[ctx]
	seq := c.tSeq[ctx]
	head, count := c.tHead[ctx], c.tCount[ctx]
	curLine := c.tCurLine[ctx]
	gen := c.tGen[ctx]

	for fetched < max {
		if count > c.winMask { // window full
			c.conf |= 1 << counters.Scoreboard
			break
		}
		var in trace.Inst
		if c.tMemoSeq[ctx] == seq {
			in = c.tMemoIn[ctx]
		} else {
			in = src.At(seq)
			c.tMemoSeq[ctx] = seq
			c.tMemoIn[ctx] = in
		}

		if in.Op == trace.SYNC {
			idx := in.Seq // barrier ordinal is encoded in Seq by the workload wrapper
			if gate := c.tGate[ctx]; gate == nil || gate.TryPass(c.tID[ctx], idx) {
				seq++
				fetched++ // a consumed barrier occupies a fetch slot
				continue
			}
			c.tBarrier[ctx] = idx
			mutated = true
			break
		}

		attempted = true

		// Instruction cache.
		line := in.PC&c.lineMask + 1
		if line != curLine {
			if stall := c.mem.InstAccess(in.PC); stall > 0 {
				c.tStall[ctx] = cyc + uint64(stall)
				curLine = line // the miss fills the line
				mutated = true
				break
			}
			curLine = line
			mutated = true
		}

		// Rename register.
		isFP := in.Op.IsFP()
		if isFP {
			if c.fpRegsFree == 0 {
				c.conf |= 1 << counters.FPRegs
				break
			}
		} else if c.intRegsFree == 0 {
			c.conf |= 1 << counters.IntRegs
			break
		}

		// Instruction queue slot.
		if isFP {
			if len(c.fpQ) == c.cfg.FPQueue {
				c.conf |= 1 << counters.FQ
				break
			}
		} else if len(c.intQ) == c.cfg.IntQueue {
			c.conf |= 1 << counters.IQ
			break
		}

		// All resources available: dispatch.
		slot := (head + count) & c.winMask
		gi := int32(base | slot)
		c.uOp[gi] = in.Op
		c.uState[gi] = stQueued
		c.uMispred[gi] = false
		c.uSeq[gi] = seq
		d1 := depSeq(seq, in.Dep1)
		d2 := depSeq(seq, in.Dep2)
		c.uDep1[gi] = d1
		c.uDep2[gi] = d2
		c.uAddr[gi] = in.Addr
		c.uGen[gi] = gen
		c.uPending[gi] = 0
		c.wakeHead[gi] = -1
		ready := c.resolveDep(ctx, gi, 0, d1, cyc)
		if d2 != noSeq {
			if r2 := c.resolveDep(ctx, gi, 1, d2, cyc); r2 > ready {
				ready = r2
			}
		}
		c.uReady[gi] = ready
		if isFP {
			c.fpRegsFree--
			c.fpQ = append(c.fpQ, qent{gi: gi, gen: gen})
			c.fpMinRetry = 0
		} else {
			c.intRegsFree--
			c.intQ = append(c.intQ, qent{gi: gi, gen: gen})
			c.intMinRetry = 0
		}
		count++
		c.tUnissued[ctx]++
		dispSeq := seq
		seq++
		fetched++
		c.ctr.Fetched++

		if in.Op == trace.BRANCH {
			if correct := c.bp.Lookup(ctx, in.PC, in.Taken); !correct {
				c.uMispred[gi] = true
				c.tWait[ctx] = dispSeq
				break
			}
		}
	}
	c.tSeq[ctx] = seq
	c.tCount[ctx] = count
	c.tCurLine[ctx] = curLine
	return fetched, attempted, mutated
}

// resolveDep computes, at dispatch time, the earliest cycle producer
// sequence p could be complete, registering a wakeup edge (depIndex k) when
// the producer is genuinely queued so the bound is later replaced by the
// producer's exact completion cycle. Squashed-slot collisions get a finite
// bound with no edge; uPending stays nonzero, keeping the consumer on the
// issue scan's poll path, which re-derives the pre-SoA kernel's verdict
// from current state at every expiry.
func (c *Core) resolveDep(ctx int, consGi int32, k int, p, cyc uint64) uint64 {
	if p == noSeq || p < c.tHeadSeq[ctx] {
		return 0 // absent, retired or pre-attach: available
	}
	slot := (c.tHead[ctx] + int(p-c.tHeadSeq[ctx])) & c.winMask
	pgi := int32(ctx<<c.winShift | slot)
	if c.uSeq[pgi] != p {
		return 0 // squashed and never re-fetched: available on resume
	}
	switch c.uState[pgi] {
	case stDone:
		return 0
	case stIssued:
		return c.uDoneAt[pgi]
	}
	c.uPending[consGi]++
	if c.uGen[pgi] != c.tGen[ctx] {
		// Stale queued slot from an earlier attachment: no wakeup will ever
		// fire; poll from a conservative bound.
		return cyc + 2
	}
	eid := consGi<<1 | int32(k)
	c.wakeNext[eid] = c.wakeHead[pgi]
	c.wakeHead[pgi] = eid
	// The producer can issue next cycle at the earliest (fetch runs after
	// issue), or at its own readiness bound; it then executes for at least
	// its class's minimum latency.
	b := cyc + 1
	if r := c.uReady[pgi]; r > b {
		b = r
	}
	return b + c.latMin[c.uOp[pgi]]
}

// depSeq converts a producer distance to an absolute sequence number.
func depSeq(seq uint64, dist uint32) uint64 {
	if dist == 0 {
		return noSeq
	}
	d := uint64(dist)
	if d > seq {
		return noSeq
	}
	return seq - d
}
