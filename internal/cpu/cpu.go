// Package cpu implements the cycle-level simultaneous multithreading
// processor simulator that substitutes for SMTSIM.
//
// The model is an out-of-order superscalar core based on the Alpha 21264
// with hardware contexts added for SMT, simulated cycle by cycle:
//
//   - Fetch uses the ICOUNT.2.8 policy: up to FetchWidth instructions per
//     cycle from up to FetchThreads threads, favouring threads with the
//     fewest instructions in the pre-issue pipeline stages.
//   - Fetched instructions claim a reorder-window slot (scoreboard entry), an
//     integer or floating-point renaming register, and a slot in the shared
//     integer or floating-point instruction queue. Exhaustion of any of these
//     is recorded as a conflict on that resource.
//   - Issue selects ready instructions oldest-first from each queue, limited
//     by functional unit availability (integer ALUs, floating-point units,
//     load/store units) and total issue width; a ready instruction denied a
//     unit records a conflict on that unit class. FDIV occupies its unit
//     non-pipelined; everything else is fully pipelined.
//   - Loads and stores probe the shared DTLB/L1D/L2/memory hierarchy at
//     issue; the access latency determines completion time.
//   - Branches consult the shared gshare predictor at fetch. A mispredicted
//     branch stops the thread's fetch until the branch resolves, plus a
//     pipeline-refill penalty.
//   - Instructions retire in order per thread, freeing window slots and
//     renaming registers.
//
// Contexts are attached to instruction streams (see internal/trace) by the
// jobscheduler; detaching a context squashes its in-flight instructions and
// reports the sequence number to resume from, so a job's execution replays
// exactly regardless of how it is timesliced.
package cpu

import (
	"fmt"
	"math"

	"symbios/internal/arch"
	"symbios/internal/branch"
	"symbios/internal/cache"
	"symbios/internal/counters"
	"symbios/internal/trace"
)

// Source supplies a thread's dynamic instruction stream. At must be a pure
// function of seq (see internal/trace).
type Source interface {
	At(seq uint64) trace.Inst
}

// SyncGate coordinates SYNC (barrier) instructions between threads of a
// multithreaded job. TryPass is called when a thread is about to fetch past
// barrier number idx; it must be idempotent and return true once every
// sibling thread has arrived at idx.
type SyncGate interface {
	TryPass(thread int, idx uint64) bool
}

const noSeq = math.MaxUint64

// uopState tracks an instruction's progress through the pipeline.
type uopState uint8

const (
	stQueued uopState = iota // dispatched, waiting in IQ/FQ
	stIssued                 // executing on a functional unit
	stDone                   // completed, awaiting in-order retire
)

// uop is one in-flight instruction occupying a window slot.
type uop struct {
	op         trace.Op
	seq        uint64
	dep1, dep2 uint64 // producer sequence numbers; noSeq when absent
	addr       uint64
	pc         uint64
	taken      bool
	mispred    bool
	isFP       bool // claims an fp rename register and the FQ
	state      uopState
	doneAt     uint64 // completion cycle, valid once issued
}

// thread is the per-context state.
type thread struct {
	src  Source
	gate SyncGate
	id   int // thread id passed to the gate

	seq       uint64 // next instruction to fetch
	committed uint64 // instructions retired since attach

	// Reorder window: a ring of window slots (power-of-two length).
	win   []uop
	mask  int // len(win)-1
	head  int // index of oldest
	count int

	headSeq uint64 // seq of the oldest in-flight instruction (== seq when empty)

	unissued int // ICOUNT: instructions fetched but not yet issued

	fetchStallUntil uint64 // icache miss or post-mispredict refill
	waitBranch      uint64 // seq of unresolved mispredicted branch, or noSeq
	blockedBarrier  uint64 // barrier index the thread is blocked on, or noSeq
	curLine         uint64 // last icache line fetched (1 + line address; 0 = none)

	gen uint32 // attach generation, to invalidate stale wheel entries
}

func (t *thread) windowFull() bool { return t.count == len(t.win) }

// slotIndex returns the ring index for in-window sequence number s.
func (t *thread) slotIndex(s uint64) int {
	off := int(s - t.headSeq)
	return (t.head + off) & t.mask
}

// qent is a queue/wheel reference to a window slot. retry caches the
// instruction's earliest possible readiness cycle so the issue scan can
// skip it without touching the window.
type qent struct {
	ctx   int32
	slot  int32
	gen   uint32
	retry uint64
}

const wheelSize = 1024 // > worst-case instruction latency

// Core is the simulated SMT processor.
type Core struct {
	cfg arch.Config
	mem *cache.Hierarchy
	bp  *branch.Predictor

	threads []*thread // nil when the context is idle
	ctxGen  []uint32  // per-context attach generation; survives detach

	// Recycled per-context allocations. A jobscheduler attaches and
	// detaches a task on every timeslice; allocating a fresh window ring
	// (and thread struct) each time dominated the simulator's allocation
	// profile. Stale window contents are harmless: the wheel and issue
	// queues are purged/generation-checked on detach, and dependency
	// lookups only ever read slots occupied by live instructions.
	winPool    [][]uop   // spare window ring per context
	threadPool []*thread // spare thread struct per context

	intQ []qent // age-ordered
	fpQ  []qent

	intRegsFree int
	fpRegsFree  int

	ialuBusy []uint64 // busy-until cycle per unit
	fpuBusy  []uint64
	lsuBusy  []uint64

	wheel [wheelSize][]qent

	cycle uint64
	ctr   counters.Set

	// per-cycle conflict latches
	conf [counters.NumResources]bool

	lineMask uint64
}

// New constructs a core for cfg. The memory hierarchy and branch predictor
// are created cold.
func New(cfg arch.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxLat := cfg.L1DHitLatency + cfg.TLBMissPenalty + cfg.L2HitLatency + cfg.MemLatency + cfg.FPDivLatency + 2
	if maxLat >= wheelSize {
		return nil, fmt.Errorf("cpu: configured latencies (%d) exceed wheel capacity %d", maxLat, wheelSize)
	}
	if cfg.WindowSize&(cfg.WindowSize-1) != 0 {
		return nil, fmt.Errorf("cpu: WindowSize %d must be a power of two", cfg.WindowSize)
	}
	c := &Core{
		cfg:         cfg,
		mem:         cache.NewHierarchy(cfg),
		bp:          branch.New(cfg.BranchPHTBits, cfg.BranchHistBits, cfg.Contexts),
		threads:     make([]*thread, cfg.Contexts),
		ctxGen:      make([]uint32, cfg.Contexts),
		winPool:     make([][]uop, cfg.Contexts),
		threadPool:  make([]*thread, cfg.Contexts),
		intQ:        make([]qent, 0, cfg.IntQueue),
		fpQ:         make([]qent, 0, cfg.FPQueue),
		intRegsFree: cfg.IntRenameRegs,
		fpRegsFree:  cfg.FPRenameRegs,
		ialuBusy:    make([]uint64, cfg.IntALUs),
		fpuBusy:     make([]uint64, cfg.FPUnits),
		lsuBusy:     make([]uint64, cfg.LSUnits),
		lineMask:    ^uint64(cfg.L1ILineBytes - 1),
	}
	// Pre-size the completion-wheel buckets out of one backing array so the
	// issue stage's bucket appends never grow storage in the steady state
	// (a bucket holds the instructions completing on one cycle; more than
	// issue-width entries per cycle is rare, and overflow just reallocates
	// that bucket).
	bucketCap := cfg.IssueWidth
	if bucketCap < 4 {
		bucketCap = 4
	}
	backing := make([]qent, wheelSize*bucketCap)
	for i := range c.wheel {
		c.wheel[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return c, nil
}

// Config returns the architecture configuration.
func (c *Core) Config() arch.Config { return c.cfg }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Mem exposes the memory hierarchy (for warmup and diagnostics).
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// Attach binds src to hardware context ctx, starting at startSeq. gate may
// be nil for single-threaded jobs; threadID is the identifier passed to the
// gate for barrier coordination. Attach panics if the context is occupied or
// out of range, which indicates a scheduler bug.
func (c *Core) Attach(ctx int, src Source, startSeq uint64, gate SyncGate, threadID int) {
	if ctx < 0 || ctx >= len(c.threads) {
		panic(fmt.Sprintf("cpu: Attach to context %d of %d", ctx, len(c.threads)))
	}
	if c.threads[ctx] != nil {
		panic(fmt.Sprintf("cpu: context %d already occupied", ctx))
	}
	c.ctxGen[ctx]++
	win := c.winPool[ctx]
	if win == nil {
		win = make([]uop, c.cfg.WindowSize)
	} else {
		c.winPool[ctx] = nil
	}
	t := c.threadPool[ctx]
	if t == nil {
		t = &thread{}
	} else {
		c.threadPool[ctx] = nil
	}
	*t = thread{
		src:            src,
		gate:           gate,
		id:             threadID,
		seq:            startSeq,
		headSeq:        startSeq,
		win:            win,
		mask:           c.cfg.WindowSize - 1,
		waitBranch:     noSeq,
		blockedBarrier: noSeq,
		gen:            c.ctxGen[ctx],
	}
	c.threads[ctx] = t
	c.bp.ResetHistory(ctx)
}

// Detach removes the thread on ctx, squashing its in-flight instructions,
// and returns the sequence number at which the job should later resume (the
// oldest unretired instruction) along with the number of instructions it
// committed while attached.
func (c *Core) Detach(ctx int) (resumeSeq, committed uint64) {
	t := c.threads[ctx]
	if t == nil {
		panic(fmt.Sprintf("cpu: Detach of idle context %d", ctx))
	}
	// Reclaim rename registers held by in-flight instructions.
	for i := 0; i < t.count; i++ {
		u := &t.win[(t.head+i)&t.mask]
		if u.isFP {
			c.fpRegsFree++
		} else {
			c.intRegsFree++
		}
	}
	// Purge queue entries belonging to this context. Wheel entries are
	// invalidated lazily via the generation check.
	c.intQ = purge(c.intQ, ctx)
	c.fpQ = purge(c.fpQ, ctx)
	resume, n := t.headSeq, t.committed
	c.winPool[ctx], c.threadPool[ctx] = t.win, t
	t.src, t.gate, t.win = nil, nil, nil // drop references until reuse
	c.threads[ctx] = nil
	return resume, n
}

// Occupied reports whether context ctx has a thread attached.
func (c *Core) Occupied(ctx int) bool { return c.threads[ctx] != nil }

// ThreadCommitted returns instructions committed by the thread on ctx since
// it was attached.
func (c *Core) ThreadCommitted(ctx int) uint64 {
	if t := c.threads[ctx]; t != nil {
		return t.committed
	}
	return 0
}

func purge(q []qent, ctx int) []qent {
	out := q[:0]
	for _, e := range q {
		if int(e.ctx) != ctx {
			out = append(out, e)
		}
	}
	return out
}

// Snapshot returns the current counter totals, including memory-system and
// branch-predictor counters.
func (c *Core) Snapshot() counters.Set {
	s := c.ctr
	s.Cycles = c.cycle
	l1d, l1i, l2, tlb := c.mem.L1D.Stats(), c.mem.L1I.Stats(), c.mem.L2.Stats(), c.mem.DTLB.Stats()
	s.L1DHits, s.L1DMisses = l1d.Hits, l1d.Misses
	s.L1IHits, s.L1IMisses = l1i.Hits, l1i.Misses
	s.L2Hits, s.L2Misses = l2.Hits, l2.Misses
	s.TLBHits, s.TLBMisses = tlb.Hits, tlb.Misses
	s.BranchPredicts, s.BranchMispredicts = c.bp.Stats()
	return s
}

// Run simulates n cycles.
func (c *Core) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.step()
	}
}

// step advances the core by one cycle.
func (c *Core) step() {
	c.cycle++
	c.conf = [counters.NumResources]bool{}

	c.complete()
	c.retire()
	c.issue()
	c.fetch()

	for r := counters.Resource(0); r < counters.NumResources; r++ {
		if c.conf[r] {
			c.ctr.ConflictCycles[r]++
		}
	}
}

// complete processes instructions whose execution finishes this cycle.
func (c *Core) complete() {
	slot := &c.wheel[c.cycle%wheelSize]
	for _, e := range *slot {
		t := c.threads[int(e.ctx)]
		if t == nil || t.gen != e.gen {
			continue // squashed
		}
		u := &t.win[e.slot]
		if u.state != stIssued {
			continue
		}
		u.state = stDone
		if u.op == trace.BRANCH && u.mispred && t.waitBranch == u.seq {
			// Resolve: fetch restarts after the refill penalty.
			t.waitBranch = noSeq
			t.fetchStallUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
		}
	}
	*slot = (*slot)[:0]
}

// retire commits completed instructions in order, per thread.
func (c *Core) retire() {
	for _, t := range c.threads {
		if t == nil {
			continue
		}
		for n := 0; n < c.cfg.RetireWidth && t.count > 0; n++ {
			u := &t.win[t.head]
			if u.state != stDone {
				break
			}
			if u.isFP {
				c.fpRegsFree++
				c.ctr.FPCommitted++
			} else {
				c.intRegsFree++
				switch u.op {
				case trace.LOAD:
					c.ctr.LoadCommitted++
				case trace.STORE:
					c.ctr.StoreCommitted++
				case trace.BRANCH:
					c.ctr.BranchCommitted++
					c.ctr.IntCommitted++
				default:
					c.ctr.IntCommitted++
				}
			}
			c.ctr.Committed++
			t.committed++
			t.head = (t.head + 1) & t.mask
			t.headSeq++
			t.count--
		}
	}
}

// availAt returns the earliest cycle u's producers could all be complete:
// the current cycle if ready now, the producer's known completion cycle if
// it is executing, or a near-future guess if it is still queued. The issue
// logic uses this to skip re-checking instructions that cannot possibly
// become ready yet.
func (c *Core) availAt(t *thread, u *uop) uint64 {
	a := c.depAvail(t, u.dep1)
	if b := c.depAvail(t, u.dep2); b > a {
		a = b
	}
	return a
}

func (c *Core) depAvail(t *thread, p uint64) uint64 {
	if p == noSeq || p < t.headSeq {
		return 0 // absent, retired or pre-attach: available
	}
	w := &t.win[t.slotIndex(p)]
	if w.seq != p {
		// The producer was squashed by a detach and never re-fetched under
		// this attachment; its value is architecturally available on resume.
		return 0
	}
	switch w.state {
	case stDone:
		return 0
	case stIssued:
		return w.doneAt
	default:
		// Still queued: it needs to issue and execute first.
		return c.cycle + 2
	}
}

// unitFor returns the busy array for u's unit class and the conflict
// resource to charge when no unit is free.
func (c *Core) unitFor(u *uop) ([]uint64, counters.Resource) {
	switch {
	case u.op.IsMem():
		return c.lsuBusy, counters.LSUnits
	case u.op.IsFP():
		return c.fpuBusy, counters.FPUnits
	default:
		return c.ialuBusy, counters.IntUnits
	}
}

// latency returns u's execution latency; memory ops probe the hierarchy.
func (c *Core) latency(u *uop) int {
	switch u.op {
	case trace.IALU, trace.SYNC:
		return c.cfg.IntALULatency
	case trace.IMUL:
		return c.cfg.IntMulLatency
	case trace.FADD:
		return c.cfg.FPAddLatency
	case trace.FMUL:
		return c.cfg.FPMulLatency
	case trace.FDIV:
		return c.cfg.FPDivLatency
	case trace.BRANCH:
		return c.cfg.BranchLatency
	case trace.LOAD:
		lat, _ := c.mem.DataAccess(u.addr)
		return lat
	case trace.STORE:
		// The store probes the cache for contention accounting, but the
		// write buffer lets dependents proceed after a single cycle.
		c.mem.DataAccess(u.addr)
		return 1
	}
	panic("cpu: unknown op")
}

// issue selects ready instructions from the queues, oldest first.
func (c *Core) issue() {
	budget := c.cfg.IssueWidth
	budget = c.issueQueue(&c.intQ, budget)
	c.issueQueue(&c.fpQ, budget)
}

func (c *Core) issueQueue(q *[]qent, budget int) int {
	issued := 0
	qq := *q
	for i := range qq {
		e := &qq[i]
		if budget == 0 {
			break
		}
		if e.retry > c.cycle {
			continue
		}
		t := c.threads[int(e.ctx)]
		u := &t.win[e.slot]
		if avail := c.availAt(t, u); avail > c.cycle {
			e.retry = avail
			continue
		}
		busy, res := c.unitFor(u)
		unit := -1
		for k := range busy {
			if busy[k] <= c.cycle {
				unit = k
				break
			}
		}
		if unit < 0 {
			c.conf[res] = true
			continue
		}
		lat := c.latency(u)
		if u.op == trace.FDIV {
			busy[unit] = c.cycle + uint64(lat) // divider is not pipelined
		} else {
			busy[unit] = c.cycle + 1
		}
		u.state = stIssued
		u.doneAt = c.cycle + uint64(lat)
		c.wheel[u.doneAt%wheelSize] = append(c.wheel[u.doneAt%wheelSize], *e)
		t.unissued--
		e.ctx = -1 // tombstone
		issued++
		budget--
	}
	if issued > 0 {
		out := qq[:0]
		for _, e := range qq {
			if e.ctx >= 0 {
				out = append(out, e)
			}
		}
		*q = out
	}
	return budget
}

// fetch implements the fetch stage (ICOUNT.2.8 by default) plus rename and
// dispatch.
func (c *Core) fetch() {
	var order [16]int
	n := 0
	for ctx, t := range c.threads {
		if t == nil {
			continue
		}
		order[n] = ctx
		n++
	}
	if c.cfg.FetchPolicy == arch.FetchRoundRobin {
		// Rotate priority by cycle, ignoring pipeline occupancy.
		if n > 1 {
			k := int(c.cycle) % n
			var rot [16]int
			for i := 0; i < n; i++ {
				rot[i] = order[(i+k)%n]
			}
			order = rot
		}
	} else {
		// Insertion sort by unissued count (ICOUNT); context count is tiny.
		for i := 1; i < n; i++ {
			for j := i; j > 0; j-- {
				a, b := c.threads[order[j-1]], c.threads[order[j]]
				if b.unissued < a.unissued {
					order[j-1], order[j] = order[j], order[j-1]
				} else {
					break
				}
			}
		}
	}

	budget := c.cfg.FetchWidth
	threadsUsed := 0
	for i := 0; i < n && budget > 0 && threadsUsed < c.cfg.FetchThreads; i++ {
		ctx := order[i]
		got, attempted := c.fetchThread(ctx, budget)
		budget -= got
		if attempted {
			threadsUsed++
		}
	}
}

// fetchThread fetches up to max instructions for ctx. It returns how many
// were fetched and whether the thread consumed a fetch port.
func (c *Core) fetchThread(ctx, max int) (fetched int, attempted bool) {
	t := c.threads[ctx]
	if t.fetchStallUntil > c.cycle || t.waitBranch != noSeq {
		return 0, false
	}
	if t.blockedBarrier != noSeq {
		if !t.gate.TryPass(t.id, t.blockedBarrier) {
			return 0, false
		}
		t.blockedBarrier = noSeq
		t.seq++ // consume the SYNC marker
	}
	for fetched < max {
		if t.windowFull() {
			c.conf[counters.Scoreboard] = true
			break
		}
		in := t.src.At(t.seq)

		if in.Op == trace.SYNC {
			idx := in.Seq // barrier ordinal is encoded in Seq by the workload wrapper
			if t.gate == nil || t.gate.TryPass(t.id, idx) {
				t.seq++
				fetched++ // a consumed barrier occupies a fetch slot
				continue
			}
			t.blockedBarrier = idx
			break
		}

		attempted = true

		// Instruction cache.
		line := in.PC&c.lineMask + 1
		if line != t.curLine {
			if stall := c.mem.InstAccess(in.PC); stall > 0 {
				t.fetchStallUntil = c.cycle + uint64(stall)
				t.curLine = line // the miss fills the line
				break
			}
			t.curLine = line
		}

		// Rename register.
		isFP := in.Op.IsFP()
		if isFP {
			if c.fpRegsFree == 0 {
				c.conf[counters.FPRegs] = true
				break
			}
		} else if c.intRegsFree == 0 {
			c.conf[counters.IntRegs] = true
			break
		}

		// Instruction queue slot.
		if isFP {
			if len(c.fpQ) == c.cfg.FPQueue {
				c.conf[counters.FQ] = true
				break
			}
		} else if len(c.intQ) == c.cfg.IntQueue {
			c.conf[counters.IQ] = true
			break
		}

		// All resources available: dispatch.
		slot := (t.head + t.count) & t.mask
		u := &t.win[slot]
		*u = uop{
			op:    in.Op,
			seq:   t.seq,
			dep1:  depSeq(t.seq, in.Dep1),
			dep2:  depSeq(t.seq, in.Dep2),
			addr:  in.Addr,
			pc:    in.PC,
			taken: in.Taken,
			isFP:  isFP,
			state: stQueued,
		}
		if isFP {
			c.fpRegsFree--
			c.fpQ = append(c.fpQ, qent{ctx: int32(ctx), slot: int32(slot), gen: t.gen})
		} else {
			c.intRegsFree--
			c.intQ = append(c.intQ, qent{ctx: int32(ctx), slot: int32(slot), gen: t.gen})
		}
		t.count++
		t.unissued++
		t.seq++
		fetched++
		c.ctr.Fetched++

		if in.Op == trace.BRANCH {
			if correct := c.bp.Lookup(ctx, in.PC, in.Taken); !correct {
				u.mispred = true
				t.waitBranch = u.seq
				break
			}
		}
	}
	return fetched, attempted
}

// depSeq converts a producer distance to an absolute sequence number.
func depSeq(seq uint64, dist uint32) uint64 {
	if dist == 0 {
		return noSeq
	}
	d := uint64(dist)
	if d > seq {
		return noSeq
	}
	return seq - d
}
