package cpu

import (
	"testing"
	"testing/quick"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/rng"
)

// TestIPCUpperBound: committed IPC can never exceed the machine's issue
// width, whatever the workload.
func TestIPCUpperBound(t *testing.T) {
	cfg := arch.Default21264(4)
	c := mustCore(t, cfg)
	for i, name := range []string{"EP", "FP", "MG", "WAVE"} {
		c.Attach(i, mkSource(t, name, uint64(i+1), i), 0, nil, 0)
	}
	c.Run(200_000)
	if ipc := c.Snapshot().IPC(); ipc > float64(cfg.IssueWidth) {
		t.Errorf("IPC %.2f exceeds issue width %d", ipc, cfg.IssueWidth)
	}
}

// TestConflictCyclesBounded: each conflict counter counts cycles, so none
// can exceed the elapsed cycle count.
func TestConflictCyclesBounded(t *testing.T) {
	c := mustCore(t, arch.Default21264(3))
	for i, name := range []string{"FP", "MG", "WAVE"} {
		c.Attach(i, mkSource(t, name, uint64(i+1), i), 0, nil, 0)
	}
	const cycles = 150_000
	c.Run(cycles)
	s := c.Snapshot()
	for r := counters.Resource(0); r < counters.NumResources; r++ {
		if s.ConflictCycles[r] > cycles {
			t.Errorf("%s conflict cycles %d exceed %d elapsed", r, s.ConflictCycles[r], cycles)
		}
	}
}

// TestFetchedAtLeastCommitted: the pipeline cannot commit instructions it
// never fetched, and squashes mean fetched >= committed.
func TestFetchedAtLeastCommitted(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "GO", 1, 0), 0, nil, 0)
	c.Attach(1, mkSource(t, "GCC", 2, 1), 0, nil, 0)
	c.Run(200_000)
	s := c.Snapshot()
	if s.Fetched < s.Committed {
		t.Errorf("fetched %d < committed %d", s.Fetched, s.Committed)
	}
}

// TestSnapshotMonotone: counters only grow.
func TestSnapshotMonotone(t *testing.T) {
	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "MG", 1, 0), 0, nil, 0)
	prev := c.Snapshot()
	for i := 0; i < 20; i++ {
		c.Run(5_000)
		s := c.Snapshot()
		if s.Cycles <= prev.Cycles || s.Committed < prev.Committed || s.Fetched < prev.Fetched {
			t.Fatalf("counters regressed at step %d", i)
		}
		for r := counters.Resource(0); r < counters.NumResources; r++ {
			if s.ConflictCycles[r] < prev.ConflictCycles[r] {
				t.Fatalf("%s conflicts regressed", r)
			}
		}
		prev = s
	}
}

// TestSMTThroughputGain: the essence of SMT — two threads together commit
// more per cycle than either alone, for compute-bound jobs that share well.
func TestSMTThroughputGain(t *testing.T) {
	soloRun := func(name string, space int) float64 {
		c := mustCore(t, arch.Default21264(2))
		c.Attach(0, mkSource(t, name, 1, space), 0, nil, 0)
		c.Run(300_000)
		return c.Snapshot().IPC()
	}
	soloEP := soloRun("EP", 0)
	soloGO := soloRun("GO", 1)

	c := mustCore(t, arch.Default21264(2))
	c.Attach(0, mkSource(t, "EP", 1, 0), 0, nil, 0)
	c.Attach(1, mkSource(t, "GO", 1, 1), 0, nil, 0)
	c.Run(300_000)
	both := c.Snapshot().IPC()

	max := soloEP
	if soloGO > max {
		max = soloGO
	}
	if both <= max {
		t.Errorf("coscheduling EP+GO (%.2f) no better than the best solo (%.2f/%.2f)", both, soloEP, soloGO)
	}
}

// TestContextCountScaling: aggregate IPC is non-decreasing as compatible
// jobs are added to the machine (TLP converts to ILP).
func TestContextCountScaling(t *testing.T) {
	names := []string{"EP", "GO", "GCC", "WAVE"}
	prev := 0.0
	for n := 1; n <= 4; n++ {
		c := mustCore(t, arch.Default21264(n))
		for i := 0; i < n; i++ {
			c.Attach(i, mkSource(t, names[i], uint64(i+1), i), 0, nil, 0)
		}
		c.Run(250_000)
		ipc := c.Snapshot().IPC()
		if ipc < prev*0.9 {
			t.Errorf("IPC dropped sharply adding thread %d: %.2f after %.2f", n, ipc, prev)
		}
		prev = ipc
	}
}

// TestRandomConfigRobustness is a property test: the simulator preserves
// its invariants across randomized machine configurations — no panics,
// bounded counters, conserved rename registers.
func TestRandomConfigRobustness(t *testing.T) {
	r := rng.New(77)
	f := func(seed uint64) bool {
		cfg := arch.Default21264(1 + r.Intn(4))
		cfg.FetchWidth = 1 + r.Intn(8)
		cfg.FetchThreads = 1 + r.Intn(2)
		cfg.IssueWidth = 1 + r.Intn(8)
		cfg.RetireWidth = 1 + r.Intn(8)
		cfg.WindowSize = 8 << r.Intn(4) // 8..64, power of two
		cfg.IntQueue = 4 + r.Intn(24)
		cfg.FPQueue = 4 + r.Intn(16)
		cfg.IntRenameRegs = 8 + r.Intn(48)
		cfg.FPRenameRegs = 8 + r.Intn(48)
		cfg.IntALUs = 1 + r.Intn(4)
		cfg.FPUnits = 1 + r.Intn(3)
		cfg.LSUnits = 1 + r.Intn(3)
		if r.Intn(2) == 0 {
			cfg.FetchPolicy = arch.FetchRoundRobin
		}
		c, err := New(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return true // validation refusing is fine
		}
		names := []string{"FP", "GO", "IS", "EP"}
		for i := 0; i < cfg.Contexts; i++ {
			c.Attach(i, mkSource(t, names[i], seed+uint64(i)+1, i), 0, nil, 0)
		}
		const cycles = 20_000
		c.Run(cycles)
		s := c.Snapshot()
		if s.Cycles != cycles || s.Fetched < s.Committed {
			return false
		}
		if s.IPC() > float64(cfg.IssueWidth) {
			return false
		}
		for i := 0; i < cfg.Contexts; i++ {
			c.Detach(i)
		}
		return c.intRegsFree == cfg.IntRenameRegs &&
			c.fpRegsFree == cfg.FPRenameRegs &&
			len(c.intQ) == 0 && len(c.fpQ) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
