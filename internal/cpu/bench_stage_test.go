package cpu

// Per-stage microbenchmarks. Each one drives a single pipeline stage on
// fabricated steady-state SoA state (re-primed off the clock as the stage
// drains it), so a throughput regression localizes to fetch, issue, or
// retire instead of hiding inside the whole-cycle number.

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/trace"
)

// BenchmarkFetch measures the fetch/rename/dispatch stage: two threads of
// real generated instruction stream, with the downstream pipeline drained
// off the clock every cycle so fetch never stalls on a full window or
// queue.
func BenchmarkFetch(b *testing.B) {
	cfg := arch.Default21264(2)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c.Attach(0, mkSource(b, "GCC", 11, 0), 0, nil, 0)
	c.Attach(1, mkSource(b, "FP", 12, 1), 0, nil, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Drain the pipeline: empty queues, free registers and window
		// slots, clear stalls. A handful of stores per cycle, dwarfed by
		// the fetch work itself.
		c.intQ = c.intQ[:0]
		c.fpQ = c.fpQ[:0]
		c.intRegsFree, c.fpRegsFree = cfg.IntRenameRegs, cfg.FPRenameRegs
		for ctx := 0; ctx < cfg.Contexts; ctx++ {
			c.tCount[ctx], c.tUnissued[ctx] = 0, 0
			c.tStall[ctx], c.tWait[ctx] = 0, noSeq
		}
		c.conf = 0
		c.fetch()
		c.cycle++
	}
}

// BenchmarkIssue measures the issue stage over a full integer queue of
// ready instructions; the queue is re-primed once the scan drains it.
func BenchmarkIssue(b *testing.B) {
	cfg := arch.Default21264(1)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c.tLive[0] = true
	c.tGen[0] = 1
	prime := func() {
		c.intQ = c.intQ[:0]
		for k := 0; k < cfg.IntQueue; k++ {
			gi := int32(k)
			c.uOp[gi] = trace.IALU
			c.uState[gi] = stQueued
			c.uReady[gi] = 0
			c.uPending[gi] = 0
			c.uGen[gi] = 1
			c.wakeHead[gi] = -1
			c.intQ = append(c.intQ, qent{gi: gi, gen: 1})
		}
		c.tUnissued[0] = cfg.IntQueue
		c.intMinRetry = 0
		for i := range c.wheel {
			c.wheel[i] = c.wheel[i][:0]
		}
		c.pendingWheel = 0
		for k := range c.ialuBusy {
			c.ialuBusy[k] = 0
		}
	}
	prime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.conf = 0
		c.issue()
		c.cycle++
		if len(c.intQ) < cfg.IssueWidth {
			b.StopTimer()
			prime()
			b.StartTimer()
		}
	}
}

// BenchmarkRetire measures the in-order retire stage over a window full of
// completed instructions; the window is refilled once it empties.
func BenchmarkRetire(b *testing.B) {
	cfg := arch.Default21264(1)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c.tLive[0] = true
	prime := func() {
		for slot := 0; slot < cfg.WindowSize; slot++ {
			c.uOp[slot] = trace.IALU
			c.uState[slot] = stDone
		}
		c.tHead[0], c.tCount[0] = 0, cfg.WindowSize
		c.tHeadSeq[0], c.tCommitted[0] = 0, 0
		c.intRegsFree = 0
	}
	prime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.retire()
		if c.tCount[0] == 0 {
			b.StopTimer()
			prime()
			b.StartTimer()
		}
	}
}
