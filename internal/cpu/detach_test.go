package cpu

import (
	"testing"

	"symbios/internal/arch"
)

// TestDetachInflightPurge detaches a thread at a point where both queues
// hold a mix of contexts and some of the victim's instructions have
// already issued or completed (a partially drained pipeline), and checks
// that purge compacts the queues in place: survivors keep their age order,
// every victim entry is gone, and the rename-register accounting matches
// the survivor's in-flight window exactly.
func TestDetachInflightPurge(t *testing.T) {
	cfg := arch.Default21264(3)
	c := mustCore(t, cfg)
	c.Attach(0, mkSource(t, "GCC", 21, 0), 0, nil, 0)
	c.Attach(1, mkSource(t, "FP", 22, 1), 0, nil, 1)
	c.Attach(2, mkSource(t, "MG", 23, 2), 0, nil, 2)

	// Find a cycle where the victim has entries in both queues while other
	// work is in flight, so the purge exercises the interleaved case.
	countCtx := func(q []qent, ctx int) int {
		n := 0
		for _, e := range q {
			if int(e.gi)>>c.winShift == ctx {
				n++
			}
		}
		return n
	}
	const victim = 1
	found := false
	for i := 0; i < 50_000; i++ {
		c.Run(1)
		if countCtx(c.intQ, victim) > 0 && countCtx(c.fpQ, victim) > 0 &&
			len(c.intQ) > countCtx(c.intQ, victim) && c.tCount[victim] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("never reached a mixed-queue in-flight state; workload too tame for the test")
	}

	// Expected survivors: the non-victim entries in their current order.
	var wantInt, wantFP []qent
	for _, e := range c.intQ {
		if int(e.gi)>>c.winShift != victim {
			wantInt = append(wantInt, e)
		}
	}
	for _, e := range c.fpQ {
		if int(e.gi)>>c.winShift != victim {
			wantFP = append(wantFP, e)
		}
	}

	resume, committed := c.Detach(victim)
	if resume < committed {
		t.Fatalf("resume seq %d < committed %d", resume, committed)
	}
	check := func(name string, got, want []qent) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries after purge, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: got %+v want %+v (order not preserved)", name, i, got[i], want[i])
			}
		}
		for _, e := range got {
			if int(e.gi)>>c.winShift == victim {
				t.Fatalf("%s still holds victim entry %+v", name, e)
			}
		}
	}
	check("intQ", c.intQ, wantInt)
	check("fpQ", c.fpQ, wantFP)

	// Register accounting: free counts must equal the totals minus what the
	// surviving windows still hold.
	wantIntFree, wantFPFree := cfg.IntRenameRegs, cfg.FPRenameRegs
	for ctx := 0; ctx < cfg.Contexts; ctx++ {
		if !c.tLive[ctx] {
			continue
		}
		base := ctx << c.winShift
		for i := 0; i < c.tCount[ctx]; i++ {
			if c.uOp[base|((c.tHead[ctx]+i)&c.winMask)].IsFP() {
				wantFPFree--
			} else {
				wantIntFree--
			}
		}
	}
	if c.intRegsFree != wantIntFree || c.fpRegsFree != wantFPFree {
		t.Fatalf("register leak after detach: int %d want %d, fp %d want %d",
			c.intRegsFree, wantIntFree, c.fpRegsFree, wantFPFree)
	}

	// The core must keep simulating and the detached slot must be reusable.
	before := c.Snapshot().Committed
	c.Run(5_000)
	if c.Snapshot().Committed == before {
		t.Fatal("no progress after in-flight detach")
	}
	c.Attach(victim, mkSource(t, "FP", 22, 1), resume, nil, victim)
	c.Run(5_000)
	if c.tCommitted[victim] == 0 {
		t.Fatal("reattached thread made no progress")
	}
}
