package chaosnet

import (
	"os"
	"testing"

	"symbios/internal/leakcheck"
)

func TestMain(m *testing.M) {
	os.Exit(leakcheck.MainRun(m.Run))
}
