package chaosnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// testBody is large enough that a corruption offset drawn in the default
// window always lands inside it.
var testBody = bytes.Repeat([]byte("symbios-fleet-response-"), 100) // 2300 bytes

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(integrity.Header, integrity.Digest(testBody))
		w.Write(testBody)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportCleanPassThrough(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{Seed: 1}, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(body, testBody) {
		t.Fatal("clean transport altered the body")
	}
	if err := integrity.Check(resp.Header.Get(integrity.Header), body); err != nil {
		t.Fatalf("digest: %v", err)
	}
}

func TestTransportReset(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{Seed: 1, ResetP: 1}, nil)}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("ResetP=1 request succeeded")
	}
	tr := client.Transport.(*Transport)
	if s := tr.Stats(); s.Resets != 1 {
		t.Fatalf("stats: %+v, want 1 reset", s)
	}
}

// TestTransportCorruptionCaughtByDigest is the envelope working end to end:
// the transport flips one bit, the body still arrives as a clean 200, and
// only the digest check exposes it.
func TestTransportCorruptionCaughtByDigest(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{Seed: 1, CorruptP: 1, CorruptWindow: uint64(len(testBody))}, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if bytes.Equal(body, testBody) {
		t.Fatal("CorruptP=1 delivered an unmodified body")
	}
	if err := integrity.Check(resp.Header.Get(integrity.Header), body); !errors.Is(err, integrity.ErrMismatch) {
		t.Fatalf("digest check = %v, want ErrMismatch", err)
	}
}

// TestTransportTruncationIsSilent checks the nastiest case: a truncated
// body reads cleanly to EOF with no error, and only the digest catches it.
func TestTransportTruncationIsSilent(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{Seed: 1, TruncateP: 1, TruncateWindow: uint64(len(testBody) - 1)}, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read returned %v; truncation must be silent", err)
	}
	if len(body) >= len(testBody) {
		t.Fatalf("TruncateP=1 delivered %d bytes of %d", len(body), len(testBody))
	}
	if err := integrity.Check(resp.Header.Get(integrity.Header), body); !errors.Is(err, integrity.ErrMismatch) {
		t.Fatalf("digest check = %v, want ErrMismatch", err)
	}
}

// TestTransportStallHonorsContext checks a consumer with a deadline escapes
// a slow-loris stall instead of pinning a goroutine.
func TestTransportStallHonorsContext(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{Seed: 1, StallP: 1, StallFor: time.Minute, StallWindow: 1}, nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	resp, err := client.Do(req)
	if err != nil {
		return // stalled before any byte; also fine
	}
	defer resp.Body.Close()
	start := time.Now()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("stalled read completed without error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("read pinned for %s despite 100ms deadline", time.Since(start))
	}
}

// TestTransportPartitionBlocksUntilDeadline checks a request issued inside
// a blackhole window hangs until the caller's context expires.
func TestTransportPartitionBlocksUntilDeadline(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	client := &http.Client{Transport: NewTransport(Config{
		Seed:           1,
		PartitionEvery: time.Hour,
		PartitionFor:   time.Hour,
	}, nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("request inside a partition window succeeded")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("request failed after %s; a partition should hang, not error fast", d)
	}
	tr := client.Transport.(*Transport)
	if s := tr.Stats(); s.Partitions == 0 {
		t.Fatalf("stats: %+v, want a partition hold", s)
	}
}
