package chaosnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is an http.RoundTripper that applies a deterministic fault plan
// to every exchange. Each destination host gets its own fault stream (keyed
// by a hash of the host), indexed by a per-host request counter, so the
// schedule for one backend is independent of traffic to the others.
type Transport struct {
	cfg   Config
	base  http.RoundTripper
	start time.Time

	mu      sync.Mutex
	counter map[uint64]*uint64

	stats Stats
}

// NewTransport wraps base (nil selects http.DefaultTransport) with the
// configured fault layer. The partition clock starts now.
func NewTransport(cfg Config, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		cfg:     cfg,
		base:    base,
		start:   time.Now(),
		counter: make(map[uint64]*uint64),
	}
}

// StreamForHost maps a destination host to its fault stream id (FNV-1a 64).
func StreamForHost(host string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, host)
	return h.Sum64()
}

// nextIdx returns the next exchange index for a stream.
func (t *Transport) nextIdx(stream uint64) uint64 {
	t.mu.Lock()
	c, ok := t.counter[stream]
	if !ok {
		c = new(uint64)
		t.counter[stream] = c
	}
	t.mu.Unlock()
	return atomic.AddUint64(c, 1) - 1
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Exchanges:   atomic.LoadUint64(&t.stats.Exchanges),
		Latencies:   atomic.LoadUint64(&t.stats.Latencies),
		Resets:      atomic.LoadUint64(&t.stats.Resets),
		Corruptions: atomic.LoadUint64(&t.stats.Corruptions),
		Truncations: atomic.LoadUint64(&t.stats.Truncations),
		Stalls:      atomic.LoadUint64(&t.stats.Stalls),
		Partitions:  atomic.LoadUint64(&t.stats.Partitions),
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	tmr := time.NewTimer(d)
	defer tmr.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tmr.C:
		return nil
	}
}

// partitionHold blocks while the blackhole window is open, polling the
// schedule so a request issued mid-window resumes the moment it closes.
func (t *Transport) partitionHold(ctx context.Context) error {
	counted := false
	for {
		open, remain := t.cfg.Partitioned(time.Since(t.start))
		if !open {
			return nil
		}
		if !counted {
			atomic.AddUint64(&t.stats.Partitions, 1)
			counted = true
		}
		if remain > 50*time.Millisecond {
			remain = 50 * time.Millisecond
		}
		if err := sleepCtx(ctx, remain); err != nil {
			return err
		}
	}
}

// RoundTrip applies the exchange's fault plan: partition hold and latency
// before dispatch, reset instead of dispatch, and a body wrapper that
// carries out corruption, truncation and stalls as the caller reads.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	stream := StreamForHost(req.URL.Host)
	idx := t.nextIdx(stream)
	f := t.cfg.Plan(stream, idx)
	atomic.AddUint64(&t.stats.Exchanges, 1)

	abort := func(err error) (*http.Response, error) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, err
	}
	if err := t.partitionHold(ctx); err != nil {
		return abort(err)
	}
	if f.Latency > 0 {
		atomic.AddUint64(&t.stats.Latencies, 1)
		if err := sleepCtx(ctx, f.Latency); err != nil {
			return abort(err)
		}
	}
	if f.Reset {
		atomic.AddUint64(&t.stats.Resets, 1)
		return abort(fmt.Errorf("chaosnet: injected connection reset (stream %x idx %d)", stream, idx))
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Always wrap: even a clean plan must hang mid-body when a partition
	// window opens while the caller is still reading.
	resp.Body = &faultBody{t: t, ctx: ctx, inner: resp.Body, fault: f}
	return resp, nil
}

// faultBody applies per-byte faults to a response stream as it is read.
type faultBody struct {
	t       *Transport
	ctx     context.Context
	inner   io.ReadCloser
	fault   Fault
	off     uint64
	stalled bool
}

func (b *faultBody) Read(p []byte) (int, error) {
	if err := b.t.partitionHold(b.ctx); err != nil {
		return 0, err
	}
	f := b.fault
	if f.Truncate && b.off >= f.TruncateAt {
		// Silent early EOF: no error, just a short stream. Only a length
		// or digest check can tell this apart from a legitimate end.
		atomic.AddUint64(&b.t.stats.Truncations, 1)
		b.fault.Truncate = false // count once
		return 0, io.EOF
	}
	if f.Stall && !b.stalled && b.off >= f.StallAt {
		b.stalled = true
		atomic.AddUint64(&b.t.stats.Stalls, 1)
		if err := sleepCtx(b.ctx, b.t.cfg.stallFor()); err != nil {
			return 0, err
		}
	}
	limit := uint64(len(p))
	if f.Truncate && f.TruncateAt-b.off < limit {
		limit = f.TruncateAt - b.off
	}
	n, err := b.inner.Read(p[:limit])
	if n > 0 {
		if f.Corrupt && f.CorruptAt >= b.off && f.CorruptAt < b.off+uint64(n) {
			p[f.CorruptAt-b.off] ^= 1 << f.CorruptBit
			atomic.AddUint64(&b.t.stats.Corruptions, 1)
			b.fault.Corrupt = false // landed; count once
		}
		b.off += uint64(n)
	}
	return n, err
}

func (b *faultBody) Close() error { return b.inner.Close() }
