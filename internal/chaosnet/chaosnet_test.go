package chaosnet

import (
	"sync"
	"testing"
	"time"
)

// chaoticConfig arms every fault class at rates high enough that a few
// thousand draws exercise them all.
func chaoticConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		LatencyP:   0.2,
		LatencyMin: time.Millisecond,
		LatencyMax: 20 * time.Millisecond,
		ResetP:     0.05,
		CorruptP:   0.1,
		TruncateP:  0.1,
		StallP:     0.05,
	}
}

// TestPlanReplaysIdenticallyAcrossWorkers is the determinism acceptance
// criterion: the fault schedule must be byte-identical whether computed by
// one worker or carved up among eight, and across two independent runs at
// the same seed.
func TestPlanReplaysIdenticallyAcrossWorkers(t *testing.T) {
	const n = 4096
	cfg := chaoticConfig(42)

	serial := make([]string, n)
	for i := 0; i < n; i++ {
		serial[i] = cfg.Plan(7, uint64(i)).String()
	}

	// Second run, fresh Config value, 8 workers striding the index space.
	cfg2 := chaoticConfig(42)
	concurrent := make([]string, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				concurrent[i] = cfg2.Plan(7, uint64(i)).String()
			}
		}(w)
	}
	wg.Wait()

	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Fatalf("idx %d: serial %q != concurrent %q", i, serial[i], concurrent[i])
		}
	}

	// And a different seed must actually change the schedule.
	diff := 0
	other := chaoticConfig(43)
	for i := 0; i < n; i++ {
		if other.Plan(7, uint64(i)).String() != serial[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed 43 produced the identical schedule to seed 42")
	}
}

// TestPlanStreamsIndependent checks that enabling one fault class does not
// shift another's schedule, and that distinct streams draw independently.
func TestPlanStreamsIndependent(t *testing.T) {
	base := Config{Seed: 9, CorruptP: 0.2}
	withReset := base
	withReset.ResetP = 0.9
	for i := 0; i < 2048; i++ {
		a, b := base.Plan(1, uint64(i)), withReset.Plan(1, uint64(i))
		if a.Corrupt != b.Corrupt || a.CorruptAt != b.CorruptAt || a.CorruptBit != b.CorruptBit {
			t.Fatalf("idx %d: enabling resets moved the corruption schedule: %+v vs %+v", i, a, b)
		}
	}
	same := 0
	for i := 0; i < 2048; i++ {
		if base.Plan(1, uint64(i)).Corrupt == base.Plan(2, uint64(i)).Corrupt {
			same++
		}
	}
	if same == 2048 {
		t.Fatal("streams 1 and 2 drew identical corruption schedules")
	}
}

// TestPlanRates sanity-checks that configured probabilities are roughly
// honored (deterministic: fixed seed, so exact counts are stable).
func TestPlanRates(t *testing.T) {
	cfg := Config{Seed: 5, CorruptP: 0.5}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if cfg.Plan(0, uint64(i)).Corrupt {
			hits++
		}
	}
	if hits < n*4/10 || hits > n*6/10 {
		t.Fatalf("CorruptP=0.5 hit %d/%d draws", hits, n)
	}
	if (Config{Seed: 5}).Plan(0, 0).Active() {
		t.Fatal("zero config produced an active fault")
	}
}

// TestPartitionWindows walks the partition schedule at fixed elapsed times.
func TestPartitionWindows(t *testing.T) {
	cfg := Config{
		Seed:           1,
		PartitionEvery: 10 * time.Second,
		PartitionFor:   2 * time.Second,
		PartitionStart: 3 * time.Second,
	}
	cases := []struct {
		at   time.Duration
		open bool
	}{
		{0, false},
		{2900 * time.Millisecond, false},
		{3 * time.Second, true},
		{4900 * time.Millisecond, true},
		{5 * time.Second, false},
		{12 * time.Second, false},
		{13500 * time.Millisecond, true},
		{15100 * time.Millisecond, false},
	}
	for _, c := range cases {
		open, remain := cfg.Partitioned(c.at)
		if open != c.open {
			t.Fatalf("at %s: open=%v, want %v", c.at, open, c.open)
		}
		if open && (remain <= 0 || remain > cfg.PartitionFor) {
			t.Fatalf("at %s: remain=%s out of range", c.at, remain)
		}
	}
	if open, _ := (Config{}).Partitioned(time.Hour); open {
		t.Fatal("zero config reported a partition")
	}
}

// TestFaultString pins the log rendering both soak runs diff against.
func TestFaultString(t *testing.T) {
	if got := (Fault{}).String(); got != "clean" {
		t.Fatalf("clean fault renders %q", got)
	}
	f := Fault{Latency: 5 * time.Millisecond, Corrupt: true, CorruptAt: 17, CorruptBit: 3, Truncate: true, TruncateAt: 99}
	want := "latency=5ms,corrupt@17 bit3,truncate@99"
	if got := f.String(); got != want {
		t.Fatalf("render %q, want %q", got, want)
	}
}
