package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// proxyFor stands a Proxy up in front of an httptest server and returns the
// proxy's base URL.
func proxyFor(t *testing.T, cfg Config, srv *httptest.Server) (*Proxy, string) {
	t.Helper()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatalf("parse backend url: %v", err)
	}
	p, err := NewProxy(cfg, "127.0.0.1:0", u.Host, "test-proxy")
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, "http://" + p.Addr()
}

// noKeepAliveClient forces one connection per request so per-connection
// fault plans map one-to-one onto requests.
func noKeepAliveClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func TestProxyCleanRelay(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	_, base := proxyFor(t, Config{Seed: 3}, srv)
	client := noKeepAliveClient(5 * time.Second)
	for i := 0; i < 3; i++ {
		resp, err := client.Get(base)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(body, testBody) {
			t.Fatalf("get %d: body altered by clean proxy", i)
		}
		if err := integrity.Check(resp.Header.Get(integrity.Header), body); err != nil {
			t.Fatalf("get %d: digest %v", i, err)
		}
	}
}

func TestProxyReset(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	p, base := proxyFor(t, Config{Seed: 3, ResetP: 1}, srv)
	client := noKeepAliveClient(5 * time.Second)
	if _, err := client.Get(base); err == nil {
		t.Fatal("ResetP=1 request succeeded through proxy")
	}
	if s := p.Stats(); s.Resets == 0 {
		t.Fatalf("stats: %+v, want resets", s)
	}
}

// TestProxyCorruptionNeverDeliversCleanLie runs corrupted relays and
// requires every exchange to be either a transport-level error or a body
// the digest rejects — at no point does a corrupt body verify clean. The
// seed is fixed, so the per-request outcomes are stable.
func TestProxyCorruptionNeverDeliversCleanLie(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	p, base := proxyFor(t, Config{Seed: 3, CorruptP: 1, CorruptWindow: uint64(len(testBody))}, srv)
	client := noKeepAliveClient(5 * time.Second)
	caught := 0
	const reqs = 8
	for i := 0; i < reqs; i++ {
		resp, err := client.Get(base)
		if err != nil {
			caught++ // corrupted headers surface as a transport error
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			caught++
			continue
		}
		if cerr := integrity.Check(resp.Header.Get(integrity.Header), body); cerr != nil {
			// Any digest failure counts as caught: a flipped body byte is a
			// mismatch, and a flip inside the digest header itself shows up
			// as malformed or missing — all rejected by a strict verifier.
			if !errors.Is(cerr, integrity.ErrMismatch) && !errors.Is(cerr, integrity.ErrMalformed) && !errors.Is(cerr, integrity.ErrMissing) {
				t.Fatalf("req %d: unexpected digest error %v", i, cerr)
			}
			caught++
			continue
		}
		// Digest verified clean: the flip must have landed outside the
		// payload (headers that don't affect the body, e.g. Date).
		if !bytes.Equal(body, testBody) {
			t.Fatalf("req %d: corrupt body passed the digest check", i)
		}
	}
	if caught == 0 {
		t.Fatalf("%d corrupted relays, none caught", reqs)
	}
	if s := p.Stats(); s.Corruptions == 0 {
		t.Fatalf("stats: %+v, want corruptions", s)
	}
}

// TestProxyPartitionHangsAndCloseUnblocks checks a partitioned relay hangs
// the client until its timeout, and that Close tears everything down while
// connections are mid-hold (the leakcheck gate proves nothing survives).
func TestProxyPartitionHangsAndCloseUnblocks(t *testing.T) {
	leakcheck.Check(t)
	srv := testServer(t)
	p, base := proxyFor(t, Config{
		Seed:           3,
		PartitionEvery: time.Hour,
		PartitionFor:   time.Hour,
	}, srv)
	client := noKeepAliveClient(200 * time.Millisecond)
	start := time.Now()
	if _, err := client.Get(base); err == nil {
		t.Fatal("request through partitioned proxy succeeded")
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("partitioned request failed after %s; should hang to the timeout", d)
	}
	// Fire another request that will be mid-hold when Close lands.
	go func() {
		c := noKeepAliveClient(5 * time.Second)
		c.Get(base)
	}()
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy Close hung with a connection mid-partition")
	}
	if s := p.Stats(); s.Partitions == 0 {
		t.Fatalf("stats: %+v, want partition holds", s)
	}
}
