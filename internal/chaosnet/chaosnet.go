// Package chaosnet is a deterministic network fault layer for the fleet
// tier. It injects the failures a real wire produces — added latency,
// connection resets, truncated responses, bit-flipped body bytes,
// slow-loris stalls, and timed blackhole partition windows — in two forms:
// an http.RoundTripper wrapper (Transport) for in-process tests, and a
// standalone TCP proxy (Proxy) a soak script puts between sosfront and its
// sosd backends.
//
// Every fault decision is a pure function of (seed, stream, index) via
// rng.Hash2, exactly like the simulator's instruction streams: run the same
// topology at the same seed and the fault schedule replays byte-identically,
// regardless of wall-clock jitter or how many workers consume it. A chaos
// soak failure is therefore a reproducible artifact, not a weather report.
// The one deliberately time-based fault is the partition window — a
// partition is a property of *when*, not of which request — and its
// schedule (offset, width, period) is still fully determined by the
// configuration.
package chaosnet

import (
	"fmt"
	"strings"
	"time"

	"symbios/internal/rng"
)

// Per-fault hash salts: each fault class draws from its own Hash2 stream so
// enabling one fault never shifts another's schedule.
const (
	saltLatency  = 0xc4a1
	saltLatAmt   = 0xc4a2
	saltReset    = 0xc4a3
	saltCorrupt  = 0xc4a4
	saltCorrAt   = 0xc4a5
	saltCorrBit  = 0xc4a6
	saltTruncate = 0xc4a7
	saltTruncAt  = 0xc4a8
	saltStall    = 0xc4a9
	saltStallAt  = 0xc4aa
)

// Config selects the fault mix. The zero value injects nothing (a
// transparent wire). All probabilities are per stream unit: per request for
// Transport, per accepted connection for Proxy.
type Config struct {
	// Seed derives every fault stream. Two layers with the same Seed and
	// knobs produce the same schedule.
	Seed uint64

	// LatencyP injects LatencyMin..LatencyMax of extra delay before the
	// response's first byte.
	LatencyP   float64
	LatencyMin time.Duration
	LatencyMax time.Duration

	// ResetP aborts the exchange with a connection reset before any
	// response byte is delivered.
	ResetP float64

	// CorruptP flips one bit of the response stream, at a deterministic
	// offset drawn in [0, CorruptWindow) (<=0 selects 1024). An offset past
	// the end of the stream fizzles — the flip simply never lands.
	CorruptP      float64
	CorruptWindow uint64

	// TruncateP ends the response stream early, after a deterministic
	// offset drawn in [0, TruncateWindow) bytes (<=0 selects 1024). The
	// Transport truncates silently (EOF, no error) — the nastiest case,
	// detectable only by length or digest; the Proxy closes the connection.
	TruncateP      float64
	TruncateWindow uint64

	// StallP pauses the response stream for StallFor (<=0 selects 2s) after
	// a deterministic offset drawn in [0, StallWindow) bytes (<=0 selects
	// 256) — a slow-loris writer. The stall honors the request context, so
	// a consumer with a read deadline escapes it.
	StallP      float64
	StallFor    time.Duration
	StallWindow uint64

	// PartitionEvery > 0 opens a blackhole window of PartitionFor every
	// PartitionEvery of elapsed time, the first starting at PartitionStart.
	// While a window is open nothing flows in either direction: new
	// exchanges and established streams both hang until the window closes
	// (or the caller's context gives up), like a real L3 partition.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
	PartitionStart time.Duration
}

// Fault is one exchange's fault plan, a pure function of
// (Config.Seed, stream, index). Multiple faults can be armed at once;
// consumers apply them in stream order: latency, reset, then per-byte
// corrupt/truncate/stall as the response flows.
type Fault struct {
	// Latency is extra delay before the first response byte (0 = none).
	Latency time.Duration
	// Reset aborts the exchange with a transport error.
	Reset bool
	// Corrupt flips CorruptBit of the byte at stream offset CorruptAt.
	Corrupt    bool
	CorruptAt  uint64
	CorruptBit uint8
	// Truncate ends the stream after TruncateAt bytes.
	Truncate   bool
	TruncateAt uint64
	// Stall pauses the stream for the configured StallFor after StallAt
	// bytes.
	Stall   bool
	StallAt uint64
}

// Active reports whether the plan perturbs the exchange at all.
func (f Fault) Active() bool {
	return f.Latency > 0 || f.Reset || f.Corrupt || f.Truncate || f.Stall
}

// String renders the plan compactly for logs and replay comparison.
func (f Fault) String() string {
	if !f.Active() {
		return "clean"
	}
	var parts []string
	if f.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s", f.Latency))
	}
	if f.Reset {
		parts = append(parts, "reset")
	}
	if f.Corrupt {
		parts = append(parts, fmt.Sprintf("corrupt@%d bit%d", f.CorruptAt, f.CorruptBit))
	}
	if f.Truncate {
		parts = append(parts, fmt.Sprintf("truncate@%d", f.TruncateAt))
	}
	if f.Stall {
		parts = append(parts, fmt.Sprintf("stall@%d", f.StallAt))
	}
	return strings.Join(parts, ",")
}

// draw returns the [0,1) deviate for one fault class of one exchange.
func (c Config) draw(stream, idx, salt uint64) float64 {
	return rng.Float01(rng.Hash2(rng.Hash(c.Seed, salt), stream, idx))
}

// drawN returns a deterministic value in [0,n) for one fault class.
func (c Config) drawN(stream, idx, salt, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return rng.Hash2(rng.Hash(c.Seed, salt), stream, idx) % n
}

// Plan computes the fault plan for exchange idx of stream. Streams separate
// independently faulted flows (Transport uses a hash of the backend host,
// Proxy uses a per-proxy label), so adding a backend never reshuffles
// another backend's schedule.
func (c Config) Plan(stream, idx uint64) Fault {
	var f Fault
	if c.LatencyP > 0 && c.draw(stream, idx, saltLatency) < c.LatencyP {
		lo, hi := c.LatencyMin, c.LatencyMax
		if lo < 0 {
			lo = 0
		}
		if hi < lo {
			hi = lo
		}
		span := uint64(hi - lo)
		f.Latency = lo
		if span > 0 {
			f.Latency += time.Duration(c.drawN(stream, idx, saltLatAmt, span))
		}
		if f.Latency <= 0 {
			f.Latency = time.Millisecond
		}
	}
	if c.ResetP > 0 && c.draw(stream, idx, saltReset) < c.ResetP {
		f.Reset = true
	}
	if c.CorruptP > 0 && c.draw(stream, idx, saltCorrupt) < c.CorruptP {
		w := c.CorruptWindow
		if w == 0 {
			w = 1024
		}
		f.Corrupt = true
		f.CorruptAt = c.drawN(stream, idx, saltCorrAt, w)
		f.CorruptBit = uint8(c.drawN(stream, idx, saltCorrBit, 8))
	}
	if c.TruncateP > 0 && c.draw(stream, idx, saltTruncate) < c.TruncateP {
		w := c.TruncateWindow
		if w == 0 {
			w = 1024
		}
		f.Truncate = true
		f.TruncateAt = c.drawN(stream, idx, saltTruncAt, w)
	}
	if c.StallP > 0 && c.draw(stream, idx, saltStall) < c.StallP {
		w := c.StallWindow
		if w == 0 {
			w = 256
		}
		f.Stall = true
		f.StallAt = c.drawN(stream, idx, saltStallAt, w)
	}
	return f
}

// stallFor resolves the configured stall duration.
func (c Config) stallFor() time.Duration {
	if c.StallFor <= 0 {
		return 2 * time.Second
	}
	return c.StallFor
}

// Partitioned reports whether the blackhole window is open at the given
// elapsed time since the layer started, and if so how long until it closes.
func (c Config) Partitioned(elapsed time.Duration) (bool, time.Duration) {
	if c.PartitionEvery <= 0 || c.PartitionFor <= 0 {
		return false, 0
	}
	since := elapsed - c.PartitionStart
	if since < 0 {
		return false, 0
	}
	phase := since % c.PartitionEvery
	if phase < c.PartitionFor {
		return true, c.PartitionFor - phase
	}
	return false, 0
}

// Stats counts injected faults; both Transport and Proxy expose one.
type Stats struct {
	Exchanges   uint64 `json:"exchanges"`
	Latencies   uint64 `json:"latencies"`
	Resets      uint64 `json:"resets"`
	Corruptions uint64 `json:"corruptions"`
	Truncations uint64 `json:"truncations"`
	Stalls      uint64 `json:"stalls"`
	Partitions  uint64 `json:"partition_holds"`
}
