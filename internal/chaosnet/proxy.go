package chaosnet

import (
	"errors"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a standalone TCP relay that applies the fault layer to real
// connections, so an unmodified fleet can be soaked against an adversarial
// wire: the soak script points sosfront at proxy addresses and each proxy
// at its true sosd backend. Fault plans are per accepted connection, drawn
// from the proxy's label stream in accept order.
type Proxy struct {
	cfg     Config
	stream  uint64
	backend string
	ln      net.Listener
	start   time.Time
	idx     uint64

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	stats Stats
}

// NewProxy listens on listenAddr and relays every accepted connection to
// backendAddr through the fault layer. The label names this proxy's fault
// stream: distinct labels (one per backend) draw independent schedules from
// the same seed. The partition clock starts now.
func NewProxy(cfg Config, listenAddr, backendAddr, label string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	io.WriteString(h, label)
	p := &Proxy{
		cfg:     cfg,
		stream:  h.Sum64(),
		backend: backendAddr,
		ln:      ln,
		start:   time.Now(),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Exchanges:   atomic.LoadUint64(&p.stats.Exchanges),
		Latencies:   atomic.LoadUint64(&p.stats.Latencies),
		Resets:      atomic.LoadUint64(&p.stats.Resets),
		Corruptions: atomic.LoadUint64(&p.stats.Corruptions),
		Truncations: atomic.LoadUint64(&p.stats.Truncations),
		Stalls:      atomic.LoadUint64(&p.stats.Stalls),
		Partitions:  atomic.LoadUint64(&p.stats.Partitions),
	}
}

// Close stops accepting, severs every relayed connection, and waits for all
// proxy goroutines to exit.
func (p *Proxy) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
	return nil
}

// track registers a connection for teardown; it returns false if the proxy
// is already closing (the caller must close the connection itself).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		return false
	default:
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		idx := atomic.AddUint64(&p.idx, 1) - 1
		p.wg.Add(1)
		go p.handle(c, idx)
	}
}

// sleep waits for d or until the proxy closes; it reports whether the full
// duration elapsed.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	tmr := time.NewTimer(d)
	defer tmr.Stop()
	select {
	case <-p.done:
		return false
	case <-tmr.C:
		return true
	}
}

// holdPartition blocks while the blackhole window is open; it reports false
// if the proxy closed during the hold.
func (p *Proxy) holdPartition() bool {
	counted := false
	for {
		open, remain := p.cfg.Partitioned(time.Since(p.start))
		if !open {
			return true
		}
		if !counted {
			atomic.AddUint64(&p.stats.Partitions, 1)
			counted = true
		}
		if remain > 50*time.Millisecond {
			remain = 50 * time.Millisecond
		}
		if !p.sleep(remain) {
			return false
		}
	}
}

// handle relays one accepted connection through its fault plan.
func (p *Proxy) handle(client net.Conn, idx uint64) {
	defer p.wg.Done()
	if !p.track(client) {
		client.Close()
		return
	}
	defer p.untrack(client)
	defer client.Close()

	f := p.cfg.Plan(p.stream, idx)
	atomic.AddUint64(&p.stats.Exchanges, 1)

	// A connection arriving inside a partition window hangs at the door,
	// exactly like a SYN lost to a blackhole, until the window closes.
	if !p.holdPartition() {
		return
	}
	if f.Reset {
		atomic.AddUint64(&p.stats.Resets, 1)
		// Linger 0 turns Close into an RST, so the client observes a true
		// connection reset rather than a clean EOF.
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		return
	}

	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()

	var pumps sync.WaitGroup
	pumps.Add(2)
	// Client -> backend: bytes pass untouched, but a partition window
	// freezes the pump (requests in flight hang, like a real L3 blackhole).
	go func() {
		defer pumps.Done()
		defer client.Close()
		defer backend.Close()
		buf := make([]byte, 16<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if !p.holdPartition() {
					return
				}
				if _, werr := backend.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// Backend -> client: the faulted direction — latency before the first
	// byte, a single bit flip at the planned offset, an early hangup at the
	// truncation offset, a slow-loris pause at the stall offset, and the
	// same partition freeze.
	go func() {
		defer pumps.Done()
		defer client.Close()
		defer backend.Close()
		buf := make([]byte, 16<<10)
		var off uint64
		first, stalled := true, false
		for {
			n, err := backend.Read(buf)
			if n > 0 {
				chunk := buf[:n]
				if first {
					first = false
					if f.Latency > 0 {
						atomic.AddUint64(&p.stats.Latencies, 1)
						if !p.sleep(f.Latency) {
							return
						}
					}
				}
				if f.Corrupt && f.CorruptAt >= off && f.CorruptAt < off+uint64(n) {
					chunk[f.CorruptAt-off] ^= 1 << f.CorruptBit
					atomic.AddUint64(&p.stats.Corruptions, 1)
					f.Corrupt = false
				}
				if f.Stall && !stalled && off >= f.StallAt {
					stalled = true
					atomic.AddUint64(&p.stats.Stalls, 1)
					if !p.sleep(p.cfg.stallFor()) {
						return
					}
				}
				if !p.holdPartition() {
					return
				}
				if f.Truncate && off+uint64(n) >= f.TruncateAt {
					atomic.AddUint64(&p.stats.Truncations, 1)
					client.Write(chunk[:f.TruncateAt-off])
					return
				}
				if _, werr := client.Write(chunk); werr != nil {
					return
				}
				off += uint64(n)
			}
			if err != nil {
				return
			}
		}
	}()
	pumps.Wait()
}
