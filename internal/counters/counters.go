// Package counters defines the hardware performance counter model.
//
// The modeled processor, like the Alpha 21264 the paper's simulator is based
// on, exposes counters the jobscheduler samples at low cost: committed
// instructions (total and by class), cycles on which each shared resource
// suffered a conflict, data/instruction cache events, and branch predictor
// events. SOS's predictors (Section 5.1) consume exactly these.
package counters

import "fmt"

// Resource identifies one of the shared hardware resources whose conflicts
// the paper's AllConf predictor sums: "the integer queue, the floating point
// queue, the integer renaming registers, the floating point renaming
// registers, scoreboard entries, integer units, floating point unit and load
// store units".
type Resource int

// The eight conflict-counted resources.
const (
	IQ         Resource = iota // integer instruction queue full at dispatch
	FQ                         // floating-point instruction queue full at dispatch
	IntRegs                    // integer renaming registers exhausted
	FPRegs                     // floating-point renaming registers exhausted
	Scoreboard                 // instruction window (scoreboard entries) full
	IntUnits                   // ready integer op denied an integer ALU
	FPUnits                    // ready fp op denied a floating-point unit
	LSUnits                    // ready memory op denied a load/store unit
	NumResources
)

// String returns the resource mnemonic.
func (r Resource) String() string {
	switch r {
	case IQ:
		return "IQ"
	case FQ:
		return "FQ"
	case IntRegs:
		return "IntRegs"
	case FPRegs:
		return "FPRegs"
	case Scoreboard:
		return "Scoreboard"
	case IntUnits:
		return "IntUnits"
	case FPUnits:
		return "FPUnits"
	case LSUnits:
		return "LSUnits"
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// Set is a snapshot of every counter. Sets are absolute totals; subtract two
// snapshots (Sub) to measure an interval.
type Set struct {
	Cycles uint64

	// Committed instruction counts by class.
	Committed       uint64
	IntCommitted    uint64 // IALU + IMUL + BRANCH
	FPCommitted     uint64 // FADD + FMUL + FDIV
	LoadCommitted   uint64
	StoreCommitted  uint64
	BranchCommitted uint64

	Fetched uint64

	// ConflictCycles[r] counts cycles during which resource r suffered at
	// least one conflict (the paper's "percentage of cycles for which the
	// schedule conflicts on each of these resources").
	ConflictCycles [NumResources]uint64

	// Branch predictor events.
	BranchPredicts    uint64
	BranchMispredicts uint64

	// Memory system events.
	L1DHits, L1DMisses uint64
	L1IHits, L1IMisses uint64
	L2Hits, L2Misses   uint64
	TLBHits, TLBMisses uint64
}

// sub64 is saturating subtraction: a stale or reordered snapshot (prev read
// after s, or a counter that was externally reset) yields 0 rather than a
// near-2^64 wraparound that would feed garbage to the predictors.
func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sub returns the interval counters s - prev. Each field saturates at zero,
// so subtracting a stale or reordered snapshot is defined (the interval reads
// as empty) instead of producing wraparound garbage.
func (s Set) Sub(prev Set) Set {
	d := Set{
		Cycles:            sub64(s.Cycles, prev.Cycles),
		Committed:         sub64(s.Committed, prev.Committed),
		IntCommitted:      sub64(s.IntCommitted, prev.IntCommitted),
		FPCommitted:       sub64(s.FPCommitted, prev.FPCommitted),
		LoadCommitted:     sub64(s.LoadCommitted, prev.LoadCommitted),
		StoreCommitted:    sub64(s.StoreCommitted, prev.StoreCommitted),
		BranchCommitted:   sub64(s.BranchCommitted, prev.BranchCommitted),
		Fetched:           sub64(s.Fetched, prev.Fetched),
		BranchPredicts:    sub64(s.BranchPredicts, prev.BranchPredicts),
		BranchMispredicts: sub64(s.BranchMispredicts, prev.BranchMispredicts),
		L1DHits:           sub64(s.L1DHits, prev.L1DHits),
		L1DMisses:         sub64(s.L1DMisses, prev.L1DMisses),
		L1IHits:           sub64(s.L1IHits, prev.L1IHits),
		L1IMisses:         sub64(s.L1IMisses, prev.L1IMisses),
		L2Hits:            sub64(s.L2Hits, prev.L2Hits),
		L2Misses:          sub64(s.L2Misses, prev.L2Misses),
		TLBHits:           sub64(s.TLBHits, prev.TLBHits),
		TLBMisses:         sub64(s.TLBMisses, prev.TLBMisses),
	}
	for r := Resource(0); r < NumResources; r++ {
		d.ConflictCycles[r] = sub64(s.ConflictCycles[r], prev.ConflictCycles[r])
	}
	return d
}

// Add returns the per-field sum s + o, for accumulating interval deltas.
func (s Set) Add(o Set) Set {
	sum := s
	sp, op := sum.EventFields(), o.EventFields()
	for i := range sp {
		*sp[i] += *op[i]
	}
	sum.Cycles += o.Cycles
	return sum
}

// EventFields returns pointers to every PMU event counter of s, in a fixed
// order. Cycles is excluded: it comes from the timebase, not a multiplexed
// counter, so the fault injector and any per-counter sweep leave it alone.
func (s *Set) EventFields() []*uint64 {
	fs := []*uint64{
		&s.Committed, &s.IntCommitted, &s.FPCommitted,
		&s.LoadCommitted, &s.StoreCommitted, &s.BranchCommitted,
		&s.Fetched,
		&s.BranchPredicts, &s.BranchMispredicts,
		&s.L1DHits, &s.L1DMisses,
		&s.L1IHits, &s.L1IMisses,
		&s.L2Hits, &s.L2Misses,
		&s.TLBHits, &s.TLBMisses,
	}
	for r := Resource(0); r < NumResources; r++ {
		fs = append(fs, &s.ConflictCycles[r])
	}
	return fs
}

// IPC returns committed instructions per cycle for the interval.
func (s Set) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// ConflictPct returns the percentage of cycles with a conflict on r.
func (s Set) ConflictPct(r Resource) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return 100 * float64(s.ConflictCycles[r]) / float64(s.Cycles)
}

// AllConflictPct sums the conflict percentages over all eight resources
// (the paper's AllConf quantity; may exceed 100).
func (s Set) AllConflictPct() float64 {
	sum := 0.0
	for r := Resource(0); r < NumResources; r++ {
		sum += s.ConflictPct(r)
	}
	return sum
}

// L1DHitRate returns the L1 data cache hit rate in [0,1]; 1 if no accesses.
func (s Set) L1DHitRate() float64 {
	a := s.L1DHits + s.L1DMisses
	if a == 0 {
		return 1
	}
	return float64(s.L1DHits) / float64(a)
}

// MispredictRate returns branch mispredictions per prediction.
func (s Set) MispredictRate() float64 {
	if s.BranchPredicts == 0 {
		return 0
	}
	return float64(s.BranchMispredicts) / float64(s.BranchPredicts)
}

// FPPct returns the percentage of committed instructions that are
// floating-point; IntPct the percentage that are integer/branch. These feed
// the Diversity predictor ("lowest absolute difference between percentage of
// floating point and integer instructions").
func (s Set) FPPct() float64 {
	if s.Committed == 0 {
		return 0
	}
	return 100 * float64(s.FPCommitted) / float64(s.Committed)
}

// IntPct returns the percentage of committed instructions executing on the
// integer pipeline.
func (s Set) IntPct() float64 {
	if s.Committed == 0 {
		return 0
	}
	return 100 * float64(s.IntCommitted) / float64(s.Committed)
}
