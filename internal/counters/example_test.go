package counters_test

import (
	"fmt"

	"symbios/internal/counters"
)

// Counter sets are absolute totals; subtracting two snapshots measures an
// interval, and the derived rates follow the paper's definitions.
func ExampleSet_Sub() {
	var start, end counters.Set
	start.Cycles, end.Cycles = 1_000_000, 2_000_000
	start.Committed, end.Committed = 1_500_000, 4_500_000
	start.ConflictCycles[counters.FQ], end.ConflictCycles[counters.FQ] = 100_000, 350_000

	d := end.Sub(start)
	fmt.Printf("interval IPC %.1f\n", d.IPC())
	fmt.Printf("FQ conflicts on %.1f%% of cycles\n", d.ConflictPct(counters.FQ))
	// Output:
	// interval IPC 3.0
	// FQ conflicts on 25.0% of cycles
}
