package counters

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"symbios/internal/rng"
)

// randomSet builds a Set with bounded random counters.
func randomSet(r *rng.Stream) Set {
	s := Set{
		Cycles:            uint64(r.Intn(1_000_000) + 1),
		Committed:         uint64(r.Intn(1_000_000)),
		IntCommitted:      uint64(r.Intn(500_000)),
		FPCommitted:       uint64(r.Intn(500_000)),
		LoadCommitted:     uint64(r.Intn(100_000)),
		StoreCommitted:    uint64(r.Intn(100_000)),
		BranchCommitted:   uint64(r.Intn(100_000)),
		Fetched:           uint64(r.Intn(2_000_000)),
		BranchPredicts:    uint64(r.Intn(100_000) + 1),
		BranchMispredicts: uint64(r.Intn(10_000)),
		L1DHits:           uint64(r.Intn(100_000)),
		L1DMisses:         uint64(r.Intn(10_000)),
	}
	for i := Resource(0); i < NumResources; i++ {
		s.ConflictCycles[i] = uint64(r.Intn(int(s.Cycles)))
	}
	return s
}

// add composes two Sets field-wise (test helper mirroring Sub).
func add(a, b Set) Set {
	c := Set{
		Cycles:            a.Cycles + b.Cycles,
		Committed:         a.Committed + b.Committed,
		IntCommitted:      a.IntCommitted + b.IntCommitted,
		FPCommitted:       a.FPCommitted + b.FPCommitted,
		LoadCommitted:     a.LoadCommitted + b.LoadCommitted,
		StoreCommitted:    a.StoreCommitted + b.StoreCommitted,
		BranchCommitted:   a.BranchCommitted + b.BranchCommitted,
		Fetched:           a.Fetched + b.Fetched,
		BranchPredicts:    a.BranchPredicts + b.BranchPredicts,
		BranchMispredicts: a.BranchMispredicts + b.BranchMispredicts,
		L1DHits:           a.L1DHits + b.L1DHits,
		L1DMisses:         a.L1DMisses + b.L1DMisses,
		L1IHits:           a.L1IHits + b.L1IHits,
		L1IMisses:         a.L1IMisses + b.L1IMisses,
		L2Hits:            a.L2Hits + b.L2Hits,
		L2Misses:          a.L2Misses + b.L2Misses,
		TLBHits:           a.TLBHits + b.TLBHits,
		TLBMisses:         a.TLBMisses + b.TLBMisses,
	}
	for i := Resource(0); i < NumResources; i++ {
		c.ConflictCycles[i] = a.ConflictCycles[i] + b.ConflictCycles[i]
	}
	return c
}

// TestSubInverseOfAdd is a property test: (a+b).Sub(a) == b.
func TestSubInverseOfAdd(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint64) bool {
		a, b := randomSet(r), randomSet(r)
		return add(a, b).Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDerivedRates checks the rate helpers on a hand-built set.
func TestDerivedRates(t *testing.T) {
	s := Set{
		Cycles:            1000,
		Committed:         2500,
		IntCommitted:      1000,
		FPCommitted:       1500,
		BranchPredicts:    200,
		BranchMispredicts: 20,
		L1DHits:           900,
		L1DMisses:         100,
	}
	s.ConflictCycles[FQ] = 250
	s.ConflictCycles[FPUnits] = 500

	if s.IPC() != 2.5 {
		t.Errorf("IPC %f", s.IPC())
	}
	if s.ConflictPct(FQ) != 25 {
		t.Errorf("FQ conflict %f", s.ConflictPct(FQ))
	}
	if s.AllConflictPct() != 75 {
		t.Errorf("AllConf %f", s.AllConflictPct())
	}
	if s.L1DHitRate() != 0.9 {
		t.Errorf("L1D hit rate %f", s.L1DHitRate())
	}
	if s.MispredictRate() != 0.1 {
		t.Errorf("mispredict rate %f", s.MispredictRate())
	}
	if s.FPPct() != 60 || s.IntPct() != 40 {
		t.Errorf("mix percentages %f/%f", s.FPPct(), s.IntPct())
	}
}

// TestEmptySetRates: zero-length intervals degrade gracefully.
func TestEmptySetRates(t *testing.T) {
	var s Set
	if s.IPC() != 0 || s.ConflictPct(IQ) != 0 || s.MispredictRate() != 0 {
		t.Error("empty set produced nonzero rates")
	}
	if s.L1DHitRate() != 1 {
		t.Error("no accesses should read as a perfect hit rate")
	}
	if s.FPPct() != 0 || s.IntPct() != 0 {
		t.Error("empty set mix percentages nonzero")
	}
}

// TestResourceNames covers the mnemonics used in reports.
func TestResourceNames(t *testing.T) {
	want := []string{"IQ", "FQ", "IntRegs", "FPRegs", "Scoreboard", "IntUnits", "FPUnits", "LSUnits"}
	for i, name := range want {
		if Resource(i).String() != name {
			t.Errorf("resource %d: %q want %q", i, Resource(i), name)
		}
	}
	if Resource(99).String() != "Resource(99)" {
		t.Errorf("unknown resource: %q", Resource(99))
	}
}

// TestAllConflictMayExceed100 documents the paper's AllConf semantics: the
// sum over eight resources can exceed 100%.
func TestAllConflictMayExceed100(t *testing.T) {
	s := Set{Cycles: 100}
	for i := Resource(0); i < NumResources; i++ {
		s.ConflictCycles[i] = 50
	}
	if got := s.AllConflictPct(); math.Abs(got-400) > 1e-9 {
		t.Errorf("AllConf %f, want 400", got)
	}
}

// TestSubUnderflowSaturates checks that subtracting a stale or reordered
// snapshot (prev > s on some field) yields zero interval counts, not
// wraparound garbage: a corrupted read must stay a defined, bounded input
// for the predictors.
func TestSubUnderflowSaturates(t *testing.T) {
	fresh := Set{Cycles: 100, Committed: 50, L1DHits: 10}
	stale := Set{Cycles: 200, Committed: 90, L1DHits: 40, TLBMisses: 7}
	stale.ConflictCycles[IQ] = 3
	d := fresh.Sub(stale)
	for i, p := range d.EventFields() {
		if *p != 0 {
			t.Errorf("field %d underflowed to %d, want 0", i, *p)
		}
	}
	if d.Cycles != 0 {
		t.Errorf("Cycles underflowed to %d, want 0", d.Cycles)
	}
	if ipc := d.IPC(); ipc != 0 {
		t.Errorf("IPC of underflowed interval = %f, want 0", ipc)
	}
	// The healthy direction is unchanged by the saturation.
	d = stale.Sub(fresh)
	if d.Cycles != 100 || d.Committed != 40 || d.L1DHits != 30 || d.TLBMisses != 7 {
		t.Errorf("healthy Sub wrong: %+v", d)
	}
}

// TestAddAccumulates checks that summing interval deltas reproduces the
// end-to-end delta (the accumulation RunSchedule performs when a counter
// reader interposes on per-slice reads).
func TestAddAccumulates(t *testing.T) {
	a := Set{Cycles: 10, Committed: 5, FPCommitted: 2, L2Misses: 1}
	a.ConflictCycles[FQ] = 4
	b := Set{Cycles: 20, Committed: 7, FPCommitted: 1, L2Misses: 3}
	b.ConflictCycles[FQ] = 2
	sum := a.Add(b)
	if sum.Cycles != 30 || sum.Committed != 12 || sum.FPCommitted != 3 ||
		sum.L2Misses != 4 || sum.ConflictCycles[FQ] != 6 {
		t.Errorf("Add wrong: %+v", sum)
	}
	// Add must not alias its operands.
	if a.Committed != 5 || b.Committed != 7 {
		t.Errorf("Add mutated an operand: a=%+v b=%+v", a, b)
	}
}

// TestEventFieldsCoverage pins EventFields to the full counter set: every
// uint64 of Set must be enumerated exactly once, except Cycles (the
// timebase). Adding a counter without extending EventFields fails here.
func TestEventFieldsCoverage(t *testing.T) {
	var s Set
	total := reflect.TypeOf(s).NumField() - 2 + int(NumResources) // fields - ConflictCycles - Cycles + array elems
	fs := s.EventFields()
	if len(fs) != total {
		t.Fatalf("EventFields enumerates %d counters, struct holds %d (excluding Cycles)", len(fs), total)
	}
	seen := map[*uint64]bool{}
	for _, p := range fs {
		if p == &s.Cycles {
			t.Fatal("EventFields includes Cycles")
		}
		if seen[p] {
			t.Fatal("EventFields enumerates a counter twice")
		}
		seen[p] = true
	}
}
