// Package branch implements the shared branch predictor: a gshare scheme
// with a single pattern history table of two-bit saturating counters shared
// by all hardware contexts, and per-context global history registers.
//
// Because the table is shared, coscheduled jobs interfere in it — one of the
// shared resources the paper lists as a source of (anti-)symbiosis.
package branch

// Predictor is a gshare branch predictor.
type Predictor struct {
	pht      []uint8 // two-bit counters
	mask     uint64
	histBits uint
	hist     []uint64 // per-context global history

	predicts    uint64
	mispredicts uint64
}

// New constructs a predictor with 2^phtBits counters, histBits of global
// history, and one history register per context.
func New(phtBits, histBits, contexts int) *Predictor {
	if phtBits < 1 || phtBits > 24 {
		panic("branch: phtBits out of range")
	}
	if histBits < 0 || histBits > 16 {
		panic("branch: histBits out of range")
	}
	if contexts < 1 {
		panic("branch: contexts < 1")
	}
	p := &Predictor{
		pht:      make([]uint8, 1<<phtBits),
		mask:     uint64(1<<phtBits - 1),
		histBits: uint(histBits),
		hist:     make([]uint64, contexts),
	}
	// Initialize counters to weakly taken so cold predictions are not
	// systematically wrong for loop-heavy code.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// index computes the gshare PHT index for a branch at pc in context ctx.
func (p *Predictor) index(ctx int, pc uint64) uint64 {
	h := p.hist[ctx] & (1<<p.histBits - 1)
	return ((pc >> 2) ^ h) & p.mask
}

// Lookup predicts the branch at pc for context ctx, then updates the
// counter and history with the actual outcome. It returns whether the
// prediction was correct.
func (p *Predictor) Lookup(ctx int, pc uint64, taken bool) bool {
	idx := p.index(ctx, pc)
	pred := p.pht[idx] >= 2
	if taken && p.pht[idx] < 3 {
		p.pht[idx]++
	} else if !taken && p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.hist[ctx] = p.hist[ctx]<<1 | b2u(taken)
	p.predicts++
	correct := pred == taken
	if !correct {
		p.mispredicts++
	}
	return correct
}

// ResetHistory clears the history register for a context (a new job was
// switched onto it).
func (p *Predictor) ResetHistory(ctx int) { p.hist[ctx] = 0 }

// Stats returns total predictions and mispredictions.
func (p *Predictor) Stats() (predicts, mispredicts uint64) {
	return p.predicts, p.mispredicts
}

// ResetStats zeroes the counters without touching predictor state.
func (p *Predictor) ResetStats() { p.predicts, p.mispredicts = 0, 0 }

// MispredictRate returns mispredicts/predicts, or 0 with no predictions.
func (p *Predictor) MispredictRate() float64 {
	if p.predicts == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.predicts)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
