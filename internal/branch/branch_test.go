package branch

import (
	"testing"

	"symbios/internal/rng"
)

// TestBiasedBranchTrains: a branch with a fixed direction is predicted
// nearly perfectly once the counter saturates.
func TestBiasedBranchTrains(t *testing.T) {
	p := New(12, 0, 1)
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Lookup(0, 0x400, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("%d mispredicts on a monotone branch", wrong)
	}
	predicts, mis := p.Stats()
	if predicts != 1000 || mis != uint64(wrong) {
		t.Errorf("stats %d/%d inconsistent with observed %d", predicts, mis, wrong)
	}
}

// TestHysteresis: two-bit counters tolerate a single anomaly without
// flipping the prediction.
func TestHysteresis(t *testing.T) {
	p := New(12, 0, 1)
	for i := 0; i < 10; i++ {
		p.Lookup(0, 0x400, true) // saturate taken
	}
	p.Lookup(0, 0x400, false) // one anomaly
	if !p.Lookup(0, 0x400, true) {
		t.Error("prediction flipped after a single contrary outcome")
	}
}

// TestRandomBranchMispredicts: a 50/50 branch mispredicts about half the
// time — the predictor can't learn noise.
func TestRandomBranchMispredicts(t *testing.T) {
	p := New(12, 0, 1)
	r := rng.New(3)
	const n = 20_000
	for i := 0; i < n; i++ {
		p.Lookup(0, 0x400, r.Float64() < 0.5)
	}
	rate := p.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("mispredict rate %.3f on random outcomes, want ~0.5", rate)
	}
}

// TestTableInterference: two contexts whose opposite-biased branches alias
// to the same counter degrade each other — the shared-resource effect the
// scheduler observes.
func TestTableInterference(t *testing.T) {
	solo := New(10, 0, 2)
	for i := 0; i < 2000; i++ {
		solo.Lookup(0, 0x400, true)
	}
	soloRate := solo.MispredictRate()

	shared := New(10, 0, 2)
	for i := 0; i < 2000; i++ {
		shared.Lookup(0, 0x400, true)
		// Same PHT index (PC equal), opposite direction, other context.
		shared.Lookup(1, 0x400, false)
	}
	if shared.MispredictRate() < soloRate+0.3 {
		t.Errorf("aliased contexts mispredict %.3f, solo %.3f: interference too weak",
			shared.MispredictRate(), soloRate)
	}
}

// TestResetHistoryAndStats covers the maintenance entry points.
func TestResetHistoryAndStats(t *testing.T) {
	p := New(12, 4, 2)
	p.Lookup(0, 0x100, true)
	p.Lookup(1, 0x200, false)
	p.ResetHistory(0)
	p.ResetStats()
	if pr, mis := p.Stats(); pr != 0 || mis != 0 {
		t.Error("stats survive ResetStats")
	}
	if p.MispredictRate() != 0 {
		t.Error("rate nonzero with no predictions")
	}
}

// TestGeometryPanics rejects out-of-range construction.
func TestGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0, 1) },
		func() { New(25, 0, 1) },
		func() { New(12, -1, 1) },
		func() { New(12, 17, 1) },
		func() { New(12, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid predictor geometry accepted")
				}
			}()
			f()
		}()
	}
}

// TestHistoryIndexing: with history bits enabled, the same PC under
// different histories can use different counters (gshare indexing).
func TestHistoryIndexing(t *testing.T) {
	p := New(12, 2, 1)
	// Alternate outcomes in a fixed period-2 pattern; with 2 history bits a
	// gshare predictor learns it, while a bimodal one would mispredict half
	// the time.
	warm := 200
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		correct := p.Lookup(0, 0x400, taken)
		if i >= warm && !correct {
			wrong++
		}
	}
	if rate := float64(wrong) / 1800; rate > 0.1 {
		t.Errorf("gshare failed to learn a period-2 pattern: mispredict %.3f", rate)
	}
}
