package arch

import "testing"

// TestDefaultValidates ensures every Default21264 level used in the paper
// passes validation.
func TestDefaultValidates(t *testing.T) {
	for _, level := range []int{1, 2, 3, 4, 6, 8} {
		if err := Default21264(level).Validate(); err != nil {
			t.Errorf("level %d: %v", level, err)
		}
	}
}

// TestValidateRejects exercises each validation rule.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no contexts", func(c *Config) { c.Contexts = 0 }},
		{"no fetch width", func(c *Config) { c.FetchWidth = 0 }},
		{"no fetch threads", func(c *Config) { c.FetchThreads = 0 }},
		{"no decode", func(c *Config) { c.DecodeWidth = 0 }},
		{"no issue", func(c *Config) { c.IssueWidth = 0 }},
		{"no retire", func(c *Config) { c.RetireWidth = 0 }},
		{"tiny window", func(c *Config) { c.WindowSize = 2 }},
		{"no int queue", func(c *Config) { c.IntQueue = 0 }},
		{"no fp queue", func(c *Config) { c.FPQueue = 0 }},
		{"no int regs", func(c *Config) { c.IntRenameRegs = 0 }},
		{"no fp regs", func(c *Config) { c.FPRenameRegs = 0 }},
		{"no ialu", func(c *Config) { c.IntALUs = 0 }},
		{"no fpu", func(c *Config) { c.FPUnits = 0 }},
		{"no lsu", func(c *Config) { c.LSUnits = 0 }},
		{"negative penalty", func(c *Config) { c.MispredictPenalty = -1 }},
		{"odd L1D sets", func(c *Config) { c.L1DSets = 300 }},
		{"odd line", func(c *Config) { c.L1DLineBytes = 48 }},
		{"odd page", func(c *Config) { c.PageBytes = 5000 }},
		{"no TLB", func(c *Config) { c.DTLBEntries = 0 }},
		{"huge PHT", func(c *Config) { c.BranchPHTBits = 30 }},
		{"huge history", func(c *Config) { c.BranchHistBits = 20 }},
	}
	for _, tc := range cases {
		cfg := Default21264(2)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

// TestCacheGeometry sanity-checks the 21264-like capacities.
func TestCacheGeometry(t *testing.T) {
	c := Default21264(4)
	if got := c.L1DSets * c.L1DAssoc * c.L1DLineBytes; got != 64<<10 {
		t.Errorf("L1D capacity %d, want 64KB", got)
	}
	if got := c.L1ISets * c.L1IAssoc * c.L1ILineBytes; got != 64<<10 {
		t.Errorf("L1I capacity %d, want 64KB", got)
	}
	if got := c.L2Sets * c.L2Assoc * c.L2LineBytes; got != 4<<20 {
		t.Errorf("L2 capacity %d, want 4MB", got)
	}
	if c.Contexts != 4 {
		t.Errorf("contexts %d, want 4", c.Contexts)
	}
}
