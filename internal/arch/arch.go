// Package arch defines the simulated processor configuration.
//
// The default configuration models an out-of-order processor based on the
// Compaq Alpha 21264 with modest additions to support simultaneous
// multithreading, as described in Section 3 of the paper: 21264-like
// instruction latencies, fully pipelined functional units, 21264-sized
// instruction queues, caches and TLB, extended with per-context state and an
// ICOUNT.2.8 fetch policy.
package arch

import "fmt"

// FetchPolicy selects how the fetch stage divides bandwidth between the
// hardware contexts each cycle.
type FetchPolicy int

const (
	// FetchICOUNT favours threads with the fewest instructions in the
	// pre-issue pipeline stages (the ICOUNT policy of Tullsen et al.,
	// ISCA'96 — the paper's baseline fetch policy).
	FetchICOUNT FetchPolicy = iota
	// FetchRoundRobin alternates fetch priority among contexts regardless
	// of pipeline occupancy (ablation baseline).
	FetchRoundRobin
)

// String names the policy.
func (p FetchPolicy) String() string {
	if p == FetchRoundRobin {
		return "RoundRobin"
	}
	return "ICOUNT"
}

// Config captures every hardware parameter the simulator consumes. The zero
// value is not meaningful; start from Default21264 and override fields.
type Config struct {
	// Contexts is the hardware multithreading (SMT) level: the number of
	// hardware contexts, hence the maximum number of coscheduled jobs.
	Contexts int

	// FetchPolicy selects the per-cycle fetch arbitration (default ICOUNT).
	FetchPolicy FetchPolicy

	// FetchWidth is the total instructions fetched per cycle.
	FetchWidth int
	// FetchThreads is the number of threads that may fetch in one cycle
	// (the ".2" in ICOUNT.2.8).
	FetchThreads int
	// DecodeWidth caps instructions renamed/dispatched per cycle.
	DecodeWidth int
	// IssueWidth caps total instructions issued to functional units per cycle.
	IssueWidth int
	// RetireWidth caps instructions retired per thread per cycle.
	RetireWidth int

	// WindowSize is the per-thread reorder-window capacity (in-flight
	// instructions per context).
	WindowSize int

	// IntQueue and FPQueue are the shared instruction queue capacities.
	IntQueue int
	FPQueue  int

	// IntRenameRegs and FPRenameRegs are the shared renaming register pools
	// available beyond the architectural registers.
	IntRenameRegs int
	FPRenameRegs  int

	// Functional unit counts. All units are fully pipelined.
	IntALUs int
	FPUnits int
	LSUnits int

	// Operation latencies, in cycles.
	IntALULatency int
	IntMulLatency int
	FPAddLatency  int
	FPMulLatency  int
	FPDivLatency  int
	BranchLatency int

	// MispredictPenalty is the fetch-restart delay after a mispredicted
	// branch resolves.
	MispredictPenalty int

	// L1I, L1D, L2 cache geometry.
	L1ISets, L1IAssoc, L1ILineBytes int
	L1DSets, L1DAssoc, L1DLineBytes int
	L2Sets, L2Assoc, L2LineBytes    int

	// Cache hit latencies (cycles); L1 hits are pipelined into the load
	// latency below, misses add the next level's latency.
	L1DHitLatency int
	L2HitLatency  int
	MemLatency    int

	// DTLBEntries is the (fully associative) data TLB capacity;
	// TLBMissPenalty is the refill cost in cycles.
	DTLBEntries    int
	TLBMissPenalty int
	PageBytes      int

	// Branch predictor geometry: a gshare predictor with 2^BranchPHTBits
	// two-bit counters, shared between all contexts (so jobs interfere in
	// the shared tables, as the paper's resource list requires). With
	// BranchHistBits = 0 the predictor degenerates to bimodal, which is the
	// right model for synthetic streams whose branch ordering carries no
	// repeatable history patterns.
	BranchPHTBits  int
	BranchHistBits int
}

// Default21264 returns the baseline configuration used throughout the
// experiments: an Alpha-21264-like core with the given SMT level.
func Default21264(contexts int) Config {
	return Config{
		Contexts:     contexts,
		FetchWidth:   8,
		FetchThreads: 2,
		DecodeWidth:  8,
		IssueWidth:   8,
		RetireWidth:  8,

		WindowSize: 64,

		IntQueue: 20,
		FPQueue:  15,

		IntRenameRegs: 41,
		FPRenameRegs:  41,

		IntALUs: 4,
		FPUnits: 2,
		LSUnits: 2,

		IntALULatency: 1,
		IntMulLatency: 7,
		FPAddLatency:  4,
		FPMulLatency:  4,
		FPDivLatency:  12,
		BranchLatency: 1,

		MispredictPenalty: 7,

		L1ISets: 512, L1IAssoc: 2, L1ILineBytes: 64, // 64 KB, as on the 21264
		L1DSets: 512, L1DAssoc: 2, L1DLineBytes: 64, // 64 KB
		L2Sets: 8192, L2Assoc: 8, L2LineBytes: 64, // 4 MB board-level cache

		L1DHitLatency: 3,
		L2HitLatency:  12,
		MemLatency:    100,

		DTLBEntries:    128,
		TLBMissPenalty: 25,
		PageBytes:      8192,

		BranchPHTBits:  15,
		BranchHistBits: 0,
	}
}

// Validate reports a descriptive error for configurations the simulator
// cannot run.
func (c Config) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{c.Contexts >= 1, "Contexts >= 1"},
		{c.FetchWidth >= 1, "FetchWidth >= 1"},
		{c.FetchThreads >= 1, "FetchThreads >= 1"},
		{c.DecodeWidth >= 1, "DecodeWidth >= 1"},
		{c.IssueWidth >= 1, "IssueWidth >= 1"},
		{c.RetireWidth >= 1, "RetireWidth >= 1"},
		{c.WindowSize >= 4, "WindowSize >= 4"},
		{c.IntQueue >= 1, "IntQueue >= 1"},
		{c.FPQueue >= 1, "FPQueue >= 1"},
		{c.IntRenameRegs >= 1, "IntRenameRegs >= 1"},
		{c.FPRenameRegs >= 1, "FPRenameRegs >= 1"},
		{c.IntALUs >= 1, "IntALUs >= 1"},
		{c.FPUnits >= 1, "FPUnits >= 1"},
		{c.LSUnits >= 1, "LSUnits >= 1"},
		{c.MispredictPenalty >= 0, "MispredictPenalty >= 0"},
		{isPow2(c.L1DSets) && isPow2(c.L2Sets) && isPow2(c.L1ISets), "cache set counts are powers of two"},
		{isPow2(c.L1DLineBytes) && isPow2(c.L2LineBytes) && isPow2(c.L1ILineBytes), "cache line sizes are powers of two"},
		{isPow2(c.PageBytes), "PageBytes is a power of two"},
		{c.DTLBEntries >= 1, "DTLBEntries >= 1"},
		{c.BranchPHTBits >= 1 && c.BranchPHTBits <= 24, "BranchPHTBits in [1,24]"},
		{c.BranchHistBits >= 0 && c.BranchHistBits <= 16, "BranchHistBits in [0,16]"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("arch: invalid config: want %s", ch.what)
		}
	}
	return nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
