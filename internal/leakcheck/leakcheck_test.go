package leakcheck

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { os.Exit(MainRun(m.Run)) }

// recorder is a TB that captures failures instead of failing the real test.
type recorder struct {
	failures []string
}

func (r *recorder) Helper()          {}
func (r *recorder) Cleanup(f func()) { f() }
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

// TestCheckPassesOnCleanTest checks a test that starts and properly stops a
// goroutine is not flagged.
func TestCheckPassesOnCleanTest(t *testing.T) {
	rec := &recorder{}
	done := make(chan struct{})
	before := snapshot()
	go func() { <-done }()
	close(done)
	report(rec, leakedSince(before))
	if len(rec.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", rec.failures)
	}
}

// TestCheckFlagsLeak checks a goroutine that outlives the test is reported.
func TestCheckFlagsLeak(t *testing.T) {
	rec := &recorder{}
	before := snapshot()
	quit := make(chan struct{})
	go func() { <-quit }() // deliberately still alive at "test end"
	// Use a short settle by probing directly: the goroutine will not exit,
	// so one pass over the deadline is enough.
	leaked := leakedSince(before)
	report(rec, leaked)
	close(quit)
	if len(rec.failures) == 0 {
		t.Fatal("leaked goroutine was not flagged")
	}
	if !strings.Contains(rec.failures[0], "leaked") {
		t.Fatalf("failure message %q does not mention the leak", rec.failures[0])
	}
}

// TestSettleToleratesSlowTeardown checks a goroutine that exits shortly
// after the test ends is not a false positive.
func TestSettleToleratesSlowTeardown(t *testing.T) {
	rec := &recorder{}
	before := snapshot()
	go func() { time.Sleep(50 * time.Millisecond) }()
	report(rec, leakedSince(before))
	if len(rec.failures) != 0 {
		t.Fatalf("slow-but-clean teardown flagged as leak: %v", rec.failures)
	}
}

// TestIgnoreListCoversHarness checks the testing harness's own goroutines do
// not count as leaks for MainRun-style (nil-baseline) checks.
func TestIgnoreListCoversHarness(t *testing.T) {
	for _, g := range stacks() {
		if strings.Contains(g.stack, "testing.tRunner(") {
			t.Fatalf("harness goroutine not ignored:\n%s", g.stack)
		}
	}
}
