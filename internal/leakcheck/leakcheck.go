// Package leakcheck is a stdlib-only goroutine-leak detector for tests, in
// the style of go.uber.org/goleak (which the repo's no-new-dependencies rule
// keeps out). A long-lived scheduling service must not shed goroutines under
// churn — every fan-out, watchdog and drained work queue has to account for
// everything it started — so the robustness suites assert "zero leaked
// goroutines" as a hard invariant rather than an aspiration.
//
// Two entry points cover the two useful scopes:
//
//   - Check(t) snapshots the live goroutines when called and registers a
//     cleanup that fails the test if goroutines born during the test are
//     still running when it ends (after a settle grace period, since
//     legitimate teardown is asynchronous).
//   - MainRun(m.Run) wraps a package's TestMain: after the whole package has
//     run, any surviving non-benign goroutine fails the package. This
//     catches leaks that individual tests hand to each other.
//
// Detection parses runtime.Stack(all=true) output. That format is not
// formally versioned, but its first-line shape ("goroutine N [state]:") has
// been stable across every Go release this module supports, and the parser
// degrades safely: an unparsable block is treated as leaked, never ignored.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the interface
// keeps the package importable from non-test helpers.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// settleTimeout is how long a cleanup waits for asynchronous teardown
// (worker exits, context propagation) before declaring a leak.
const settleTimeout = 2 * time.Second

// ignoredStacks marks goroutines that are part of the runtime or the testing
// harness rather than the code under test. Matching is by substring over the
// whole stack, the same heuristic goleak uses.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.runTests(",
	"runtime.goexit0(",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"signal.signal_recv",
	"os/signal.loop",
	"leakcheck.stacks",
}

// goroutine is one parsed stack block.
type goroutine struct {
	id    string
	stack string
}

// stacks returns every live goroutine except the calling one and the
// runtime/testing goroutines on the ignore list.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for i, block := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the first block is the goroutine running stacks()
		}
		if ignored(block) {
			continue
		}
		out = append(out, goroutine{id: goroutineID(block), stack: block})
	}
	return out
}

// goroutineID extracts the numeric id from a block's "goroutine N [state]:"
// first line; an unparsable block returns the whole first line, which still
// diffs correctly (and is never silently dropped).
func goroutineID(block string) string {
	line, _, _ := strings.Cut(block, "\n")
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[0] == "goroutine" {
		return fields[1]
	}
	return line
}

// ignored reports whether the block belongs to the runtime or test harness.
func ignored(block string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(block, pat) {
			return true
		}
	}
	return false
}

// leakedSince returns the goroutines currently alive whose ids are not in
// before (nil before means "anything alive is a leak"), retrying until the
// deadline so asynchronous teardown gets a chance to finish.
func leakedSince(before map[string]bool) []goroutine {
	deadline := time.Now().Add(settleTimeout)
	for {
		var leaked []goroutine
		for _, g := range stacks() {
			if before == nil || !before[g.id] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshot returns the id set of the goroutines currently alive.
func snapshot() map[string]bool {
	ids := map[string]bool{}
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return ids
}

// Check snapshots the goroutines alive now and registers a cleanup that
// fails t if goroutines started during the test are still running when it
// ends. Call it first thing in any test that starts servers, pools or
// watchdogs.
func Check(t TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		report(t, leakedSince(before))
	})
}

// report fails t with a readable dump of the leaked goroutines.
func report(t TB, leaked []goroutine) {
	if len(leaked) == 0 {
		return
	}
	var b strings.Builder
	for _, g := range leaked {
		fmt.Fprintf(&b, "\n--- leaked goroutine %s ---\n%s\n", g.id, g.stack)
	}
	t.Errorf("leakcheck: %d goroutine(s) leaked:%s", len(leaked), b.String())
}

// MainRun wraps a package's test entry point: TestMain(m) should call
// os.Exit(leakcheck.MainRun(m.Run)). When the package's tests pass, any
// surviving non-benign goroutine turns the run into a failure (exit code 1)
// with a stack dump on stderr.
func MainRun(run func() int) int {
	code := run()
	if code != 0 {
		return code
	}
	if leaked := leakedSince(nil); len(leaked) > 0 {
		fmt.Printf("leakcheck: %d goroutine(s) leaked after all tests passed:\n", len(leaked))
		for _, g := range leaked {
			fmt.Printf("\n--- leaked goroutine %s ---\n%s\n", g.id, g.stack)
		}
		return 1
	}
	return code
}
