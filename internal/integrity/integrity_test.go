package integrity

import (
	"errors"
	"strings"
	"testing"
)

// TestDigestRoundTrip checks stamp-then-verify is clean, including on the
// empty body.
func TestDigestRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, {}, []byte("x"), []byte(`{"ok":1}` + "\n")} {
		if err := Check(Digest(body), body); err != nil {
			t.Fatalf("Check(Digest(%q)) = %v", body, err)
		}
	}
}

// TestDigestDetectsEveryBitFlip flips every bit of a representative body
// and requires the digest to catch each one — the property the fleet's
// "no corrupt 200 reaches a client" contract rests on.
func TestDigestDetectsEveryBitFlip(t *testing.T) {
	body := []byte(`{"mix":"Jsb(4,2,2)","pick":[0,1],"ws":1.2345}` + "\n")
	d := Digest(body)
	for i := range body {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), body...)
			mut[i] ^= 1 << bit
			if err := Check(d, mut); !errors.Is(err, ErrMismatch) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrMismatch", i, bit, err)
			}
		}
	}
	// Truncation is caught too.
	for cut := 0; cut < len(body); cut++ {
		if err := Check(d, body[:cut]); !errors.Is(err, ErrMismatch) {
			t.Fatalf("truncate to %d: err = %v, want ErrMismatch", cut, err)
		}
	}
}

// TestCheckClassifiesHeaders checks the three failure classes are told
// apart, so callers can treat absence (old backend) differently from
// corruption.
func TestCheckClassifiesHeaders(t *testing.T) {
	body := []byte("payload")
	cases := []struct {
		header string
		want   error
	}{
		{"", ErrMissing},
		{"md5:abc", ErrMalformed},
		{"fnv1a:short", ErrMalformed},
		{"fnv1a:" + strings.Repeat("0", 17), ErrMalformed},
		{"fnv1a:" + strings.Repeat("0", 16), ErrMismatch},
		{Digest(body), nil},
	}
	for _, c := range cases {
		if err := Check(c.header, body); !errors.Is(err, c.want) {
			t.Fatalf("Check(%q) = %v, want %v", c.header, err, c.want)
		}
	}
}
