// Package integrity implements the fleet's response integrity envelope: a
// cheap content digest stamped by the producing sosd and verified by every
// consumer (the sosfront dispatcher on every proxied reply, the cache
// warm-up on every sibling export) so a corrupted-in-transit body can never
// masquerade as a deterministic answer.
//
// The digest is FNV-1a 64 over the exact response body bytes, rendered as
// "fnv1a:<16 hex digits>" in the X-Content-Digest header. FNV is not
// collision-resistant against an adversary, and does not need to be: the
// threat model is the wire (bit flips, truncation, proxy bugs), not a
// malicious backend — a backend that wanted to lie would simply stamp its
// lie correctly, which is exactly what the fleet's divergence quarantine
// (byte-identity comparison between replicas) exists to catch. What the
// envelope buys is that corruption *between* a correct backend and the
// front is always detected, for the price of one hash pass over bytes the
// front was already copying.
package integrity

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

// Header is the HTTP header carrying the body digest.
const Header = "X-Content-Digest"

// prefix names the digest algorithm in the header value, so the scheme can
// be evolved without ambiguity.
const prefix = "fnv1a:"

// Sentinel errors; match with errors.Is.
var (
	// ErrMissing marks a response that carries no digest header at all.
	ErrMissing = errors.New("integrity: response carries no content digest")
	// ErrMismatch marks a digest that does not match the body — the body
	// was corrupted (or truncated) somewhere between producer and consumer.
	ErrMismatch = errors.New("integrity: content digest mismatch")
	// ErrMalformed marks a digest header this package cannot parse.
	ErrMalformed = errors.New("integrity: malformed content digest")
)

// Digest returns the header value for body: "fnv1a:" plus the FNV-1a 64
// sum in fixed-width hex.
func Digest(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%s%016x", prefix, h.Sum64())
}

// Check verifies a header value against body. An empty header returns
// ErrMissing (the caller decides whether absence is tolerable — old
// backends don't stamp); an unparsable header returns ErrMalformed; a
// parsed digest that does not match returns ErrMismatch with both values.
func Check(header string, body []byte) error {
	if header == "" {
		return ErrMissing
	}
	if !strings.HasPrefix(header, prefix) || len(header) != len(prefix)+16 {
		return fmt.Errorf("%w: %q", ErrMalformed, header)
	}
	if got := Digest(body); got != header {
		return fmt.Errorf("%w: header %s, body %s (%d bytes)", ErrMismatch, header, got, len(body))
	}
	return nil
}
