package fleet

import (
	"os"
	"testing"

	"symbios/internal/leakcheck"
)

// The front tier spawns attempt goroutines, hedge timers and a health
// checker; none may outlive its dispatch/front. The package-level gate
// catches anything an individual test's Check missed.
func TestMain(m *testing.M) { os.Exit(leakcheck.MainRun(m.Run)) }
