package fleet

import (
	"context"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/rng"
)

// Divergence quarantine exploits the fleet's byte-identical-response
// contract (DESIGN §13): for a given request, every correct replica returns
// the same bytes, so digest equality between two replicas' answers is an
// exact correctness cross-check that costs one hash. The digest envelope
// catches the wire lying; this layer catches a replica that is *honestly
// wrong* — stamping a valid digest over a divergent answer (bad warm cache,
// corrupted snapshot, skew after a partial deploy).
//
// Evidence arrives on two paths, both free or cheap:
//
//   - Hedge losers (CompareHedges): when a hedged duplicate completes after
//     the winner anyway, its body was already paid for — comparing digests
//     is free. The dispatch loop hands the straggler to drainCompare
//     instead of cancelling it.
//   - Background audits (AuditRate): a deterministic low-rate draw re-asks
//     a second replica after a request was answered and compares.
//
// A mismatch alone does not convict — two replicas disagreeing identifies
// no culprit — so arbitrate asks a third replica and the odd one out takes
// the divergence observation (both do, when no third exists). A backend
// reaching QuarantineAfter observations is quarantined: excluded from
// placement entirely (see candidates) until ReadmitAfter consecutive clean
// readmit probes — which ride the same audit draws, re-asking every
// quarantined backend and comparing against the authoritative answer —
// prove it agrees with the fleet again.

// DivergenceConfig tunes replica divergence detection and quarantine.
type DivergenceConfig struct {
	// CompareHedges lets a hedge loser that completes anyway be digest-
	// compared against the winner instead of being cancelled on the spot.
	// Off by default: it trades a little extra backend work (the loser runs
	// to completion) for a free divergence probe.
	CompareHedges bool
	// AuditRate is the per-answered-request probability of a background
	// audit (0 disables auditing and, with it, quarantine readmission).
	AuditRate float64
	// Seed drives the deterministic audit draw: audit i fires iff
	// Float01(Hash2(Seed, i, saltAudit)) < AuditRate.
	Seed uint64
	// QuarantineAfter is the divergence-observation count that quarantines
	// a backend (< 1 selects 3).
	QuarantineAfter int
	// ReadmitAfter is the consecutive clean readmit probes required to lift
	// a quarantine (< 1 selects 2).
	ReadmitAfter int
	// AuditTimeout bounds one audit or readmit probe (<= 0 selects 2s).
	AuditTimeout time.Duration
}

// maybeAudit decides — deterministically — whether the just-answered
// request triggers a background audit, and spawns it if so. Quarantined
// backends are probed for readmission on the same draws, so the audit rate
// also paces recovery.
func (f *Front) maybeAudit(body []byte, winner *Result) {
	dc := f.cfg.Divergence
	if dc.AuditRate <= 0 || winner == nil {
		return
	}
	idx := f.auditIdx.Add(1) - 1
	if rng.Float01(rng.Hash2(dc.Seed, idx, saltAudit)) >= dc.AuditRate {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.audit(body, winner)
	}()
}

// audit re-asks a second replica for the shard and digest-compares its
// answer against what was served, then runs readmit probes against every
// quarantined backend using the served answer as the authority.
func (f *Front) audit(body []byte, winner *Result) {
	ctx, cancel := context.WithTimeout(f.base, f.cfg.Divergence.AuditTimeout)
	defer cancel()
	wantDigest := integrity.Digest(winner.Body)

	second := f.arbiter(winner.Backend)
	if second != nil {
		f.audits.Add(1)
		f.obsAudits.Inc()
		out := f.attempt(ctx, second, body, true)
		// Only a deterministic answer is evidence; sheds, failures and
		// timeouts say nothing about divergence.
		if out.class == classGood && out.res != nil {
			if integrity.Digest(out.res.Body) != wantDigest {
				f.auditMismatches.Add(1)
				f.obsAuditMiss.Inc()
				f.arbitrate(ctx, body, winner, out.res)
			}
		}
	}
	f.readmitProbes(ctx, body, wantDigest)
}

// arbiter returns a backend able to give a second opinion: the first
// healthy, non-quarantined backend whose base is not excluded. The fleet's
// byte-identical contract means an arbiter need not sit in the key's
// replica set — every correct replica computes the same bytes — so
// opinions are drawn fleet-wide. That matters at Replicas=2, where the
// placement set contains exactly the two disagreeing parties.
func (f *Front) arbiter(exclude ...string) *backend {
	for _, b := range f.backends {
		if b.isQuarantined() || !b.isHealthy() {
			continue
		}
		excluded := false
		for _, e := range exclude {
			if b.base == e {
				excluded = true
				break
			}
		}
		if !excluded {
			return b
		}
	}
	return nil
}

// arbitrate resolves a divergence between two answers by asking a replica
// that produced neither: the odd one out takes the divergence observation.
// With no third replica available, both are observed — the contract says
// they cannot both be right, and in a two-replica fleet symmetric suspicion
// beats guessing. But when a third exists and merely fails to answer
// (timeout, shed, wire damage), no one is charged: transport trouble is not
// divergence evidence, and convicting the honest half of a mismatch would
// let a flaky wire quarantine correct replicas. A real divergence is
// deterministic, so the mismatch resurfaces on a later audit and conviction
// is only delayed, never lost.
func (f *Front) arbitrate(ctx context.Context, body []byte, a, b *Result) {
	da, db := integrity.Digest(a.Body), integrity.Digest(b.Body)
	third := f.arbiter(a.Backend, b.Backend)
	if third != nil {
		out := f.attempt(ctx, third, body, true)
		if out.class != classGood || out.res == nil {
			return // inconclusive tiebreak: no evidence either way
		}
		switch integrity.Digest(out.res.Body) {
		case da:
			f.observeDivergence(f.byBase[b.Backend])
			return
		case db:
			f.observeDivergence(f.byBase[a.Backend])
			return
		}
		// Three-way disagreement: at least two of three are wrong; fall
		// through to symmetric suspicion.
	}
	f.observeDivergence(f.byBase[a.Backend])
	f.observeDivergence(f.byBase[b.Backend])
}

// observeDivergence charges one divergence observation to a backend and
// quarantines it when it crosses the configured threshold.
func (f *Front) observeDivergence(b *backend) {
	if b == nil {
		return
	}
	f.divergencesTotal.Add(1)
	b.obsDiverges.Inc()
	b.mu.Lock()
	b.divergences++
	b.divergesSeen++
	b.cleanProbes = 0
	quarantineNow := !b.quarantined && b.divergences >= f.cfg.Divergence.QuarantineAfter
	if quarantineNow {
		b.quarantined = true
		b.quarantines++
	}
	n := b.divergences
	b.mu.Unlock()
	if quarantineNow {
		b.obsQuarantines.Inc()
		f.logger.Printf("backend %s quarantined after %d divergence observations", b.base, n)
	} else {
		f.logger.Printf("backend %s divergence observation %d/%d", b.base, n, f.cfg.Divergence.QuarantineAfter)
	}
}

// readmitProbes re-asks every quarantined backend and compares against the
// authoritative digest; ReadmitAfter consecutive clean answers lift the
// quarantine, any divergent answer resets the count (and recharges an
// observation).
func (f *Front) readmitProbes(ctx context.Context, body []byte, wantDigest string) {
	for _, b := range f.backends {
		if !b.isQuarantined() {
			continue
		}
		out := f.attempt(ctx, b, body, true)
		if out.class != classGood || out.res == nil {
			continue // inconclusive: quarantine stands, count unchanged
		}
		if integrity.Digest(out.res.Body) != wantDigest {
			f.observeDivergence(b)
			continue
		}
		b.mu.Lock()
		b.cleanProbes++
		readmit := b.cleanProbes >= f.cfg.Divergence.ReadmitAfter
		if readmit {
			b.quarantined = false
			b.divergences = 0
			b.cleanProbes = 0
			b.qReadmits++
		}
		n := b.cleanProbes
		b.mu.Unlock()
		if readmit {
			f.logger.Printf("backend %s readmitted from quarantine", b.base)
		} else {
			f.logger.Printf("backend %s clean quarantine probe %d/%d", b.base, n, f.cfg.Divergence.ReadmitAfter)
		}
	}
}

// drainCompare receives the results still in flight when a winner was
// chosen, digest-compares every deterministic straggler answer against the
// winner's, and only then releases the attempt and budget contexts it was
// handed. Attempts always deliver exactly one result each (bounded by the
// budget context's deadline), so the drain always terminates.
func (f *Front) drainCompare(cancel, acancel context.CancelFunc, results <-chan attemptOut, remaining int, body []byte, winner *Result) {
	defer f.wg.Done()
	defer func() {
		acancel()
		cancel()
	}()
	wantDigest := integrity.Digest(winner.Body)
	for i := 0; i < remaining; i++ {
		out := <-results
		if out.class != classGood || out.res == nil || out.res.Backend == winner.Backend {
			continue
		}
		if integrity.Digest(out.res.Body) == wantDigest {
			continue
		}
		ctx, acancel2 := context.WithTimeout(f.base, f.cfg.Divergence.AuditTimeout)
		f.arbitrate(ctx, body, winner, out.res)
		acancel2()
	}
}
