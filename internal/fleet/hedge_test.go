package fleet

import (
	"testing"
	"time"
)

// TestLatencyTrackerWarmup checks the delay stays at max until enough
// observations accumulate — hedging on no evidence is just doubled load.
func TestLatencyTrackerWarmup(t *testing.T) {
	lt := newLatencyTracker(64, 0.95, 10*time.Millisecond, time.Second, 5)
	if d := lt.Delay(); d != time.Second {
		t.Fatalf("unwarmed Delay = %v, want max (1s)", d)
	}
	for i := 0; i < 4; i++ {
		lt.Observe(20 * time.Millisecond)
	}
	if d := lt.Delay(); d != time.Second {
		t.Fatalf("Delay before warmup complete = %v, want max", d)
	}
	lt.Observe(20 * time.Millisecond)
	if d := lt.Delay(); d != 20*time.Millisecond {
		t.Fatalf("warmed Delay = %v, want 20ms", d)
	}
}

// TestLatencyTrackerQuantileAndClamp checks the delay tracks the requested
// quantile of the window and clamps to [min, max].
func TestLatencyTrackerQuantileAndClamp(t *testing.T) {
	lt := newLatencyTracker(100, 0.90, 10*time.Millisecond, time.Second, 10)
	// 95 fast samples, 5 slow: p90 sits in the fast mass.
	for i := 0; i < 95; i++ {
		lt.Observe(30 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		lt.Observe(800 * time.Millisecond)
	}
	if d := lt.Delay(); d != 30*time.Millisecond {
		t.Fatalf("p90 Delay = %v, want 30ms", d)
	}

	// All samples under min: clamps up.
	lt2 := newLatencyTracker(32, 0.9, 50*time.Millisecond, time.Second, 1)
	lt2.Observe(time.Millisecond)
	if d := lt2.Delay(); d != 50*time.Millisecond {
		t.Fatalf("under-min Delay = %v, want 50ms", d)
	}
	// All samples over max: clamps down.
	lt3 := newLatencyTracker(32, 0.9, 10*time.Millisecond, 100*time.Millisecond, 1)
	lt3.Observe(10 * time.Second)
	if d := lt3.Delay(); d != 100*time.Millisecond {
		t.Fatalf("over-max Delay = %v, want 100ms", d)
	}
}

// TestLatencyTrackerWindowSlides checks old samples age out of the ring.
func TestLatencyTrackerWindowSlides(t *testing.T) {
	lt := newLatencyTracker(16, 0.5, time.Millisecond, time.Minute, 1)
	for i := 0; i < 16; i++ {
		lt.Observe(time.Second)
	}
	// Overwrite the whole ring with fast samples.
	for i := 0; i < 16; i++ {
		lt.Observe(5 * time.Millisecond)
	}
	if d := lt.Delay(); d != 5*time.Millisecond {
		t.Fatalf("post-slide Delay = %v, want 5ms (old seconds aged out)", d)
	}
}
