package fleet

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker estimates a high quantile of recent successful request
// latencies; the hedge delay is that quantile, clamped. A fixed-size ring
// of exact samples beats a streaming sketch here: the window is small (the
// tail estimate should track the last few seconds of backend behavior, not
// the deployment's whole history) and the quantile is computed only when a
// request actually arms a hedge timer, not per observation.
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	filled  int

	quantile float64
	min, max time.Duration
	warmup   int // observations required before the estimate is trusted
}

// newLatencyTracker clamps the hedge delay to [min, max] and reports max
// until warmup observations have accumulated (hedging on no evidence would
// just double the load). quantile outside (0,1) selects 0.95.
func newLatencyTracker(window int, quantile float64, min, max time.Duration, warmup int) *latencyTracker {
	if window < 16 {
		window = 16
	}
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.95
	}
	if min <= 0 {
		min = 10 * time.Millisecond
	}
	if max < min {
		max = min
	}
	if warmup < 1 {
		warmup = 20
	}
	return &latencyTracker{
		samples:  make([]time.Duration, window),
		quantile: quantile,
		min:      min,
		max:      max,
		warmup:   warmup,
	}
}

// Observe records one successful request's latency.
func (lt *latencyTracker) Observe(d time.Duration) {
	lt.mu.Lock()
	lt.samples[lt.next] = d
	lt.next = (lt.next + 1) % len(lt.samples)
	if lt.filled < len(lt.samples) {
		lt.filled++
	}
	lt.mu.Unlock()
}

// Delay returns the current hedge delay: the tracked quantile of recent
// latencies clamped to [min, max], or max while under-observed.
func (lt *latencyTracker) Delay() time.Duration {
	lt.mu.Lock()
	if lt.filled < lt.warmup {
		lt.mu.Unlock()
		return lt.max
	}
	tmp := make([]time.Duration, lt.filled)
	copy(tmp, lt.samples[:lt.filled])
	lt.mu.Unlock()

	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(lt.quantile * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	d := tmp[idx]
	if d < lt.min {
		d = lt.min
	}
	if d > lt.max {
		d = lt.max
	}
	return d
}
