package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("Jsb(6,3,3)|%d", i)
	}
	return keys
}

// TestRingErrors checks construction rejects degenerate member sets.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty backend set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Fatal("empty backend address accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 64); err == nil {
		t.Fatal("duplicate backend accepted")
	}
}

// TestRingLookupDeterministicAndDistinct checks a lookup is stable across
// rings built from the same member set and returns distinct backends.
func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r1, err := NewRing(backends, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(backends, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(500) {
		got1 := r1.Lookup(key, 3)
		got2 := r2.Lookup(key, 3)
		if len(got1) != 3 {
			t.Fatalf("Lookup(%q, 3) = %v, want 3 backends", key, got1)
		}
		seen := map[string]bool{}
		for i, b := range got1 {
			if seen[b] {
				t.Fatalf("Lookup(%q) repeated backend %s", key, b)
			}
			seen[b] = true
			if got2[i] != b {
				t.Fatalf("Lookup(%q) differs across identical rings: %v vs %v", key, got1, got2)
			}
		}
	}
	// n clamps to the member count.
	if got := r1.Lookup("k", 99); len(got) != len(backends) {
		t.Fatalf("Lookup(k, 99) = %d backends, want %d", len(got), len(backends))
	}
	if got := r1.Lookup("k", 0); len(got) != len(backends) {
		t.Fatalf("Lookup(k, 0) = %d backends, want %d", len(got), len(backends))
	}
}

// TestRingBalance checks no backend owns a grossly outsized share of keys.
func TestRingBalance(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := NewRing(backends, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, key := range keys {
		counts[r.Lookup(key, 1)[0]]++
	}
	fair := len(keys) / len(backends)
	for b, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("backend %s owns %d of %d keys (fair share %d): ring badly unbalanced %v",
				b, n, len(keys), fair, counts)
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: removing
// one of N backends may move only the removed node's own keys — about 1/N
// of the keyspace — while every key whose primary survives keeps it. A
// modulo-sharded table would move (N-1)/N of the keys here.
func TestRingRebalanceProperty(t *testing.T) {
	full := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	rFull, err := NewRing(full, 256)
	if err != nil {
		t.Fatal(err)
	}
	removed := full[2]
	rLess, err := NewRing(append(append([]string{}, full[:2]...), full[3:]...), 256)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(5000)
	moved := 0
	for _, key := range keys {
		before := rFull.Lookup(key, 1)[0]
		after := rLess.Lookup(key, 1)[0]
		if before != after {
			moved++
			if before != removed {
				t.Fatalf("key %q moved from surviving backend %s to %s", key, before, after)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / float64(len(full))
	if frac < want/2 || frac > want*2 {
		t.Fatalf("removing 1 of %d backends moved %.1f%% of keys, want about %.1f%%",
			len(full), 100*frac, 100*want)
	}
}
