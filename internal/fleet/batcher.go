package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/resilience"
)

// The batcher is the wire-level twin of the in-process core.EvalBatch: small
// rank-mode requests headed for the same replica set are held briefly, sent
// to one backend as a single POST /v1/schedule/batch envelope, and split back
// into per-request results. Coalescing (singleflight) still runs first — the
// batcher only ever sees distinct bodies — and every item's bytes come back
// byte-identical to its singleton answer, verified per item by the digest the
// envelope carries. Anything the batch path cannot guarantee that for (a
// batch-incapable backend, a damaged item, an item-level shed) falls back to
// the ordinary singleton dispatch, which keeps its failover/hedge semantics.

// maxBatchedBodyBytes bounds a body the batcher will group. Real schedule
// requests are a few hundred bytes; keeping outliers out keeps batch
// payloads far below the backend's envelope cap.
const maxBatchedBodyBytes = 4 << 10

// maxBatchWireItems mirrors sosd's MaxBatchItems bound; BatchMax is clamped
// to it so a front can never build an envelope its backend must refuse.
const maxBatchWireItems = 64

// batchWireItem and batchWireResponse mirror sosd's batch envelope. Decoding
// is lenient on shape — every item is verified by its digest, so a mangled
// envelope is caught cryptographically, not schematically.
type batchWireItem struct {
	Status int             `json:"status"`
	Cache  string          `json:"cache"`
	Digest string          `json:"digest"`
	Body   json.RawMessage `json:"body"`
}

type batchWireResponse struct {
	Items []batchWireItem `json:"items"`
}

// batchableBody reports whether a request body may ride a batch: small, and
// leniently parsing as a rank-mode schedule request. Adaptive runs are not
// batchable server-side, and unparseable garbage dispatches alone so the
// backend's singleton 400 comes back with its usual headers.
func batchableBody(body []byte) bool {
	if len(body) > maxBatchedBodyBytes {
		return false
	}
	var probe struct {
		Mix  string `json:"mix"`
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(body, &probe); err != nil || probe.Mix == "" {
		return false
	}
	return probe.Mode == "" || probe.Mode == "rank"
}

// pendingItem is one request waiting in an accumulator group.
type pendingItem struct {
	key  string // shard key
	body []byte
	done chan struct{}
	res  *Result
	err  error
}

// batchGroup accumulates items that share a replica set.
type batchGroup struct {
	bases []string // candidate bases in placement order, the flush targets
	items []*pendingItem
	keys  map[string]struct{} // shard keys present, to keep fingerprint twins apart
	timer *time.Timer
}

// batcher owns the per-(backend, shard-set) accumulators.
type batcher struct {
	f      *Front
	window time.Duration
	max    int

	mu     sync.Mutex
	groups map[string]*batchGroup
	closed bool
	// wg tracks every flush and fallback goroutine, so Close can account for
	// all of them (the leakcheck contract every other background worker in
	// the front already meets).
	wg sync.WaitGroup
}

func newBatcher(f *Front, window time.Duration, max int) *batcher {
	if max < 1 {
		max = 16
	}
	if max > maxBatchWireItems {
		max = maxBatchWireItems
	}
	return &batcher{f: f, window: window, max: max, groups: map[string]*batchGroup{}}
}

// enqueue offers body to the accumulator for its replica set and, when
// accepted, blocks until the batch verdict arrives. ok=false means the body
// does not batch here — not batchable, the batcher is closed, no candidate
// speaks the batch protocol, or a same-shard-key sibling is already grouped
// (two bodies can share a fingerprint without sharing bytes, and the backend
// rejects fingerprint duplicates per batch) — and the caller should dispatch
// it as a singleton.
func (ba *batcher) enqueue(key string, body []byte) (res *Result, err error, ok bool) {
	if !batchableBody(body) {
		return nil, nil, false
	}
	cands := ba.f.candidates(key)
	bases := make([]string, 0, len(cands))
	capable := false
	for _, b := range cands {
		bases = append(bases, b.base)
		if !b.batchIncapable.Load() {
			capable = true
		}
	}
	if len(bases) == 0 || !capable {
		return nil, nil, false
	}
	gkey := strings.Join(bases, ",")

	it := &pendingItem{key: key, body: body, done: make(chan struct{})}
	ba.mu.Lock()
	if ba.closed {
		ba.mu.Unlock()
		return nil, nil, false
	}
	g := ba.groups[gkey]
	if g != nil {
		if _, conflict := g.keys[key]; conflict {
			ba.mu.Unlock()
			return nil, nil, false
		}
	} else {
		g = &batchGroup{bases: bases, keys: map[string]struct{}{}}
		ba.groups[gkey] = g
		g.timer = time.AfterFunc(ba.window, func() { ba.flushGroup(gkey, g) })
	}
	g.items = append(g.items, it)
	g.keys[key] = struct{}{}
	if len(g.items) >= ba.max {
		delete(ba.groups, gkey)
		g.timer.Stop()
		ba.wg.Add(1)
		go func() {
			defer ba.wg.Done()
			ba.run(g)
		}()
	}
	ba.mu.Unlock()

	select {
	case <-it.done:
		return it.res, it.err, true
	case <-ba.f.base.Done():
		return nil, ba.f.base.Err(), true
	}
}

// flushGroup is the window timer's callback: detach the group (unless a full
// flush or shutdown already took it) and run it.
func (ba *batcher) flushGroup(gkey string, g *batchGroup) {
	ba.mu.Lock()
	if ba.closed || ba.groups[gkey] != g {
		ba.mu.Unlock()
		return
	}
	delete(ba.groups, gkey)
	ba.wg.Add(1)
	ba.mu.Unlock()
	go func() {
		defer ba.wg.Done()
		ba.run(g)
	}()
}

// run sends one detached group as a batch call and settles every item:
// delivered from the envelope when its digest-verified answer is
// deterministic, re-dispatched as a singleton otherwise.
func (ba *batcher) run(g *batchGroup) {
	f := ba.f
	f.batchFlushes.Add(1)
	f.obsBatchFlushes.Inc()
	f.batchItems.Add(uint64(len(g.items)))
	f.obsBatchItems.Add(uint64(len(g.items)))

	results, err := ba.call(g)
	if err != nil {
		f.logger.Printf("batch flush of %d items: %v; falling back to singleton dispatch", len(g.items), err)
	}
	for i, it := range g.items {
		var res *Result
		if err == nil {
			res = results[i]
		}
		if res == nil {
			ba.fallbackItem(it)
			continue
		}
		it.res = res
		close(it.done)
	}
}

// fallbackItem re-dispatches one item through the ordinary singleton path
// (failover, hedging, breakers), concurrently with its siblings.
func (ba *batcher) fallbackItem(it *pendingItem) {
	f := ba.f
	f.batchFallbacks.Add(1)
	f.obsBatchFallbacks.Inc()
	ba.wg.Add(1)
	go func() {
		defer ba.wg.Done()
		it.res, it.err = f.dispatchBody(it.key, it.body)
		close(it.done)
	}()
}

// deliverableStatus reports whether an item status is a deterministic answer
// the client should see (the batch-path analogue of classGood: 2xx, or a 4xx
// the client earned). Item-level shedding and server errors return false so
// the item retries on the singleton path, which owns failover semantics.
func deliverableStatus(status int) bool {
	if status >= 200 && status < 300 {
		return true
	}
	return status >= 400 && status < 500 && status != http.StatusTooManyRequests
}

// call performs the batch POST against the first batch-capable candidate and
// splits the envelope. The returned slice is parallel to g.items; a nil slot
// means that item needs the singleton fallback. An error means the whole
// call failed and every item needs it.
func (ba *batcher) call(g *batchGroup) ([]*Result, error) {
	f := ba.f
	var b *backend
	for _, base := range g.bases {
		cand := f.byBase[base]
		if cand.batchIncapable.Load() || cand.isQuarantined() {
			continue
		}
		b = cand
		break
	}
	if b == nil {
		return nil, errors.New("no batch-capable replica")
	}

	env := struct {
		Requests []json.RawMessage `json:"requests"`
	}{Requests: make([]json.RawMessage, len(g.items))}
	var maxDeadline int64
	for i, it := range g.items {
		env.Requests[i] = json.RawMessage(it.body)
		var sf shardFields
		json.Unmarshal(it.body, &sf)
		if sf.DeadlineMS > maxDeadline {
			maxDeadline = sf.DeadlineMS
		}
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}

	ctx, cancel := resilience.WithBudget(f.base,
		time.Duration(maxDeadline)*time.Millisecond, f.cfg.DeadlineDef, f.cfg.DeadlineMax)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/schedule/batch", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "sosfront")
	b.requests.Add(uint64(len(g.items)))
	b.obsRequests.Add(uint64(len(g.items)))
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if rerr != nil {
		return nil, fmt.Errorf("backend %s: reading batch response: %w", b.base, rerr)
	}
	if len(data) > maxResponseBytes {
		return nil, fmt.Errorf("backend %s: batch response exceeds %d bytes", b.base, maxResponseBytes)
	}
	switch resp.StatusCode {
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
		// A pre-batch backend. Remember, so later windows go straight to a
		// capable replica (or to singleton dispatch when none exists).
		b.batchIncapable.Store(true)
		f.logger.Printf("backend %s has no batch endpoint (%s); disabling batching toward it", b.base, resp.Status)
		return nil, fmt.Errorf("backend %s: no batch endpoint", b.base)
	case http.StatusOK:
	default:
		// Batch-level shed or failure (429/503/5xx): the singleton path owns
		// retry and failover policy, so every item rides it.
		return nil, fmt.Errorf("backend %s: batch status %s", b.base, resp.Status)
	}
	// Envelope integrity mirrors the singleton attempt: wrong is always
	// fatal, missing only under RequireDigest.
	if cerr := integrity.Check(resp.Header.Get(integrity.Header), data); cerr != nil {
		if !errors.Is(cerr, integrity.ErrMissing) || f.cfg.RequireDigest {
			f.integrityFails.Add(1)
			b.obsIntegrity.Inc()
			return nil, fmt.Errorf("backend %s: batch envelope: %w", b.base, cerr)
		}
	}
	var wire batchWireResponse
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("backend %s: decoding batch envelope: %w", b.base, err)
	}
	if len(wire.Items) != len(g.items) {
		return nil, fmt.Errorf("backend %s: batch answered %d items for %d requests", b.base, len(wire.Items), len(g.items))
	}
	mode := resp.Header.Get("X-Brownout-Mode")
	if mode != "" {
		if m, perr := strconv.Atoi(mode); perr == nil && m >= 0 {
			b.mode.Store(int64(m))
		}
	}

	out := make([]*Result, len(g.items))
	for i, item := range wire.Items {
		// Reconstruct the singleton wire body (the envelope strips the
		// trailing newline) and hold it to the per-item digest. Unlike the
		// envelope's header, a missing item digest is never tolerated — it is
		// part of the batch contract, not an optional extra.
		wireBody := make([]byte, 0, len(item.Body)+1)
		wireBody = append(wireBody, item.Body...)
		wireBody = append(wireBody, '\n')
		if cerr := integrity.Check(item.Digest, wireBody); cerr != nil {
			f.integrityFails.Add(1)
			b.obsIntegrity.Inc()
			f.logger.Printf("backend %s: batch item %d: %v; item falls back to singleton dispatch", b.base, i, cerr)
			continue
		}
		if !deliverableStatus(item.Status) {
			continue
		}
		h := http.Header{}
		h.Set("Content-Type", "application/json")
		h.Set(integrity.Header, item.Digest)
		if item.Cache != "" {
			h.Set("X-Cache", item.Cache)
		}
		if mode != "" {
			h.Set("X-Brownout-Mode", mode)
		}
		out[i] = &Result{Status: item.Status, Header: h, Body: wireBody, Backend: b.base}
	}
	return out, nil
}

// shutdown fails every queued (not yet flushed) item and stops the window
// timers. In-flight flushes are aborted by the front's hardStop; Close waits
// on the batcher's WaitGroup afterwards.
func (ba *batcher) shutdown() {
	ba.mu.Lock()
	ba.closed = true
	groups := ba.groups
	ba.groups = map[string]*batchGroup{}
	ba.mu.Unlock()
	for _, g := range groups {
		g.timer.Stop()
		for _, it := range g.items {
			it.err = errors.New("fleet: front closing")
			close(it.done)
		}
	}
}
