package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symbios/internal/leakcheck"
	"symbios/internal/obs"
	"symbios/internal/resilience"
	"symbios/internal/rng"
)

// fakeBackend is an httptest sosd stand-in whose handler the test can swap
// mid-flight.
type fakeBackend struct {
	ts      *httptest.Server
	handler atomic.Value // http.HandlerFunc
	hits    atomic.Int64
}

// okHandler answers every schedule with a fixed deterministic body.
func okHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		io.WriteString(w, body)
	}
}

// newFakeBackend starts a backend answering with h.
func newFakeBackend(t *testing.T, h http.HandlerFunc) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{}
	fb.handler.Store(h)
	fb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fb.hits.Add(1)
		fb.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) set(h http.HandlerFunc) { fb.handler.Store(h) }

// newTestFront builds a Front over the fakes. The health checker is not
// started (backends begin healthy and stay that way) unless a test starts it.
func newTestFront(t *testing.T, fakes []*fakeBackend, mut func(*Config)) *Front {
	t.Helper()
	bases := make([]string, len(fakes))
	for i, fb := range fakes {
		bases[i] = fb.ts.URL
	}
	tr := &http.Transport{}
	cfg := Config{
		Backends:    bases,
		Replicas:    2,
		DeadlineDef: 5 * time.Second,
		DeadlineMax: 10 * time.Second,
		// Unwarmed trackers hedge at HedgeMax; keep it far out so hedging
		// never fires unless a test asks for it.
		HedgeMax: time.Hour,
		Client:   &http.Client{Transport: tr, Timeout: 10 * time.Second},
		Logger:   log.New(io.Discard, "", 0),
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		f.Close()
		tr.CloseIdleConnections()
	})
	return f
}

// scheduleBody builds a well-formed request body for seed.
func scheduleBody(seed uint64) []byte {
	return []byte(fmt.Sprintf(`{"mix":"Jsb(6,3,3)","seed":%d}`, seed))
}

// bodyWithPrimary scans seeds until one shards to the wanted primary.
func bodyWithPrimary(t *testing.T, f *Front, primary string) []byte {
	t.Helper()
	for seed := uint64(0); seed < 10_000; seed++ {
		body := scheduleBody(seed)
		if f.candidates(ShardKey(body))[0].base == primary {
			return body
		}
	}
	t.Fatal("no seed shards to the wanted primary")
	return nil
}

// TestFrontDispatchSuccess checks the plain path: the primary answers and
// its body plus relay-worthy headers come back unchanged.
func TestFrontDispatchSuccess(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	res, err := f.Dispatch(context.Background(), scheduleBody(1))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"ok":1}` {
		t.Fatalf("res = %d %q", res.Status, res.Body)
	}
	if res.Header.Get("X-Cache") != "miss" || res.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("relayed headers missing: %v", res.Header)
	}
	if res.Backend == "" {
		t.Fatal("result did not name the serving backend")
	}
	if a.hits.Load()+b.hits.Load() != 1 {
		t.Fatalf("want exactly one backend attempt, got %d+%d", a.hits.Load(), b.hits.Load())
	}
}

// TestFrontFailoverOn5xx checks a 500 from the primary redirects to the next
// replica and the client still gets the deterministic 200.
func TestFrontFailoverOn5xx(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)
	a.set(func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, "boom")
	})

	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusOK || res.Backend != b.ts.URL {
		t.Fatalf("res = %d from %s, want 200 from the secondary %s", res.Status, res.Backend, b.ts.URL)
	}
	st := f.Stats()
	for _, bs := range st.Backends {
		if bs.Backend == a.ts.URL && bs.Failures != 1 {
			t.Fatalf("primary failures = %d, want 1", bs.Failures)
		}
	}
}

// TestFrontFailoverOnTransportError checks a dead socket (SIGKILLed backend)
// also fails over.
func TestFrontFailoverOnTransportError(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)
	a.ts.Close() // connection refused from here on

	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusOK || res.Backend != b.ts.URL {
		t.Fatalf("res = %d from %s, want 200 from %s", res.Status, res.Backend, b.ts.URL)
	}
}

// TestFrontAllReplicasShed checks that when every replica sheds (429), the
// shed response — Retry-After included — is relayed rather than replaced by
// an invented error.
func TestFrontAllReplicasShed(t *testing.T) {
	leakcheck.Check(t)
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		httpError(w, http.StatusTooManyRequests, "limited")
	}
	a := newFakeBackend(t, shed)
	b := newFakeBackend(t, shed)
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	res, err := f.Dispatch(context.Background(), scheduleBody(1))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", res.Status)
	}
	if got := res.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the backend's own %q", got, "7")
	}
	if a.hits.Load() != 1 || b.hits.Load() != 1 {
		t.Fatalf("want both replicas tried once, got %d and %d", a.hits.Load(), b.hits.Load())
	}
}

// TestFrontClientErrorIsFinal checks a 400 is a deterministic answer: no
// failover, no retry — the client earned it and every replica would agree.
func TestFrontClientErrorIsFinal(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusBadRequest, "bad mix")
	})
	b := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusBadRequest, "bad mix")
	})
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	res, err := f.Dispatch(context.Background(), []byte(`{"mix":"nope","seed":1}`))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.Status)
	}
	if a.hits.Load()+b.hits.Load() != 1 {
		t.Fatalf("4xx must not fail over: %d+%d attempts", a.hits.Load(), b.hits.Load())
	}
}

// TestFrontBreakerOpenSynthesizes503 checks an open per-backend breaker
// yields a synthesized 503 carrying the cooldown as Retry-After, without
// touching the backend.
func TestFrontBreakerOpenSynthesizes503(t *testing.T) {
	leakcheck.Check(t)
	fail := func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, "boom")
	}
	a := newFakeBackend(t, fail)
	b := newFakeBackend(t, fail)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.Breaker = resilience.BreakerConfig{
			Window: 4, MinSamples: 2, ErrorRate: 0.5,
			Cooldown: time.Hour, Probes: 1,
		}
	})

	// Two failing dispatches give each breaker two Failure outcomes.
	for i := 0; i < 2; i++ {
		if _, err := f.Dispatch(context.Background(), scheduleBody(uint64(i))); err == nil {
			t.Fatal("dispatch against all-500 backends succeeded")
		}
	}
	hitsBefore := a.hits.Load() + b.hits.Load()

	res, err := f.Dispatch(context.Background(), scheduleBody(99))
	if err != nil {
		t.Fatalf("Dispatch with open breakers: %v (want synthesized shed)", err)
	}
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", res.Status)
	}
	if res.Header.Get("Retry-After") != "3600" {
		t.Fatalf("Retry-After = %q, want %q (the breaker's remaining cooldown)",
			res.Header.Get("Retry-After"), "3600")
	}
	if a.hits.Load()+b.hits.Load() != hitsBefore {
		t.Fatal("open breaker still let attempts through to the backends")
	}
}

// TestFrontHedgeWin checks the tail-latency hedge: a stalled primary is
// overtaken by a duplicate to the next replica, the duplicate's answer wins,
// and the stalled attempt is cancelled rather than abandoned.
func TestFrontHedgeWin(t *testing.T) {
	leakcheck.Check(t)
	primaryEntered := make(chan struct{}, 1)
	slow := func(w http.ResponseWriter, r *http.Request) {
		select {
		case primaryEntered <- struct{}{}:
		default:
		}
		// Drain the body so the server arms its background read — without it,
		// a client disconnect never cancels r.Context().
		io.Copy(io.Discard, r.Body)
		// Stall until the hedge winner cancels us.
		<-r.Context().Done()
	}
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.HedgeMin = time.Millisecond
		cfg.HedgeMax = 20 * time.Millisecond // unwarmed tracker hedges at max
	})

	body := bodyWithPrimary(t, f, a.ts.URL)
	a.set(slow)

	start := time.Now()
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusOK || res.Backend != b.ts.URL {
		t.Fatalf("res = %d from %s, want hedged 200 from %s", res.Status, res.Backend, b.ts.URL)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("hedged dispatch took %v", el)
	}
	select {
	case <-primaryEntered:
	default:
		t.Fatal("primary was never attempted; the hedge should race it, not replace it")
	}
	st := f.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want 1 and 1", st.Hedges, st.HedgeWins)
	}
	// The hedge withdrew the target's single banked token; a hedge attempt
	// must not deposit credit back (speculation never self-funds).
	if tok := f.byBase[b.ts.URL].budget.Tokens(); tok != 0 {
		t.Fatalf("hedge target budget = %v tokens after hedge, want 0 (hedge must not deposit)", tok)
	}
}

// TestFrontDryHedgeBudgetPreservesFailover checks that a hedge timer firing
// against a dry budget does not consume the replica: corrective failover
// after the primary's real failure must still reach it. (Regression: a dry
// hedge withdrawal used to advance past the candidate, so a backend outage
// with drained budgets turned into "all replicas failed" without the healthy
// replica ever being tried.)
func TestFrontDryHedgeBudgetPreservesFailover(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.HedgeMin = time.Millisecond
		cfg.HedgeMax = 10 * time.Millisecond // unwarmed tracker hedges at max
	})

	body := bodyWithPrimary(t, f, a.ts.URL)
	a.set(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		// Outlive the hedge timer, then fail for real.
		time.Sleep(150 * time.Millisecond)
		w.WriteHeader(http.StatusInternalServerError)
	})
	// Drain the failover target's hedge budget so the timer's withdrawal
	// is refused.
	for f.byBase[b.ts.URL].budget.TryWithdraw() {
	}

	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v (dry hedge budget must not consume the failover replica)", err)
	}
	if res.Status != http.StatusOK || res.Backend != b.ts.URL {
		t.Fatalf("res = %d from %s, want 200 from failover to %s", res.Status, res.Backend, b.ts.URL)
	}
	if st := f.Stats(); st.Hedges != 0 {
		t.Fatalf("hedges = %d, want 0 (budget was dry)", st.Hedges)
	}
}

// TestFrontCoalesce checks identical concurrent bodies collapse onto one
// backend call and every caller gets the leader's answer.
func TestFrontCoalesce(t *testing.T) {
	leakcheck.Check(t)
	inHandler := make(chan struct{})
	release := make(chan struct{})
	a := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		okHandler(`{"ok":1}`)(w, r)
	})
	b := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		okHandler(`{"ok":1}`)(w, r)
	})
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := scheduleBody(7)
	const followers = 4
	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	bodies := make([]string, followers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := f.Dispatch(context.Background(), body)
		errs[0] = err
		if res != nil {
			bodies[0] = string(res.Body)
		}
	}()
	<-inHandler // leader is inside a backend; followers will coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.Dispatch(context.Background(), body)
			errs[i] = err
			if res != nil {
				bodies[i] = string(res.Body)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if bodies[i] != `{"ok":1}` {
			t.Fatalf("caller %d body = %q", i, bodies[i])
		}
	}
	if total := a.hits.Load() + b.hits.Load(); total != 1 {
		t.Fatalf("backends saw %d requests, want 1 (singleflight)", total)
	}
	if st := f.Stats(); st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}

// TestFrontEjectedBackendSkipped checks dispatch prefers healthy replicas:
// with the primary marked ejected, the secondary serves without the client
// paying for a doomed attempt first.
func TestFrontEjectedBackendSkipped(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)
	pa := f.byBase[a.ts.URL]
	pa.mu.Lock()
	pa.healthy = false
	pa.mu.Unlock()

	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Backend != b.ts.URL {
		t.Fatalf("served by %s, want the healthy secondary %s", res.Backend, b.ts.URL)
	}
	if a.hits.Load() != 0 {
		t.Fatal("ejected primary was attempted before the healthy secondary")
	}

	// With every replica ejected, the front still tries one: degraded beats
	// refusing outright.
	pb := f.byBase[b.ts.URL]
	pb.mu.Lock()
	pb.healthy = false
	pb.mu.Unlock()
	res, err = f.Dispatch(context.Background(), body)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("all-ejected dispatch = %v, %v; want the last-resort attempt to serve", res, err)
	}
}

// TestFrontHandler exercises the HTTP surface end to end: schedule relay,
// operational endpoints, metrics, and the drain gate.
func TestFrontHandler(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.Registry = reg
	})
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	// Schedule relay names the serving backend.
	resp := post(scheduleBody(3))
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != `{"ok":1}` {
		t.Fatalf("schedule = %d %q", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Fleet-Backend") == "" {
		t.Fatal("X-Fleet-Backend missing")
	}

	// Oversized bodies are refused before dispatch.
	resp = post(bytes.Repeat([]byte("x"), maxBodyBytes+1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
	code, body := get("/statz")
	if code != http.StatusOK {
		t.Fatalf("statz = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if len(st.Backends) != 2 {
		t.Fatalf("statz backends = %d, want 2", len(st.Backends))
	}
	code, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "fleet_backend_requests_total") ||
		!strings.Contains(body, "fleet_healthy_backends 2") {
		t.Fatalf("metrics = %d\n%s", code, body)
	}

	// Draining refuses new work with Retry-After and fails readiness.
	f.Draining()
	resp = post(scheduleBody(4))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining schedule = %d Retry-After=%q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", code)
	}
}

// TestFrontHandlerAllDead checks the error mapping when no replica answers:
// the client gets a 502, not a hang or a naked 500.
func TestFrontHandlerAllDead(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)
	a.ts.Close()
	b.ts.Close()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(scheduleBody(1)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead schedule = %d, want 502", resp.StatusCode)
	}
}

// TestFrontHedgeWinNotDelayedByFailoverBackoff is the backoff regression: a
// hedge winner arriving while a corrective-failover backoff is pending must
// be served immediately. Pre-fix, dispatch slept the backoff inline, so the
// winner already sitting in the results channel waited out the full delay.
func TestFrontHedgeWinNotDelayedByFailoverBackoff(t *testing.T) {
	leakcheck.Check(t)
	slow500 := func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		time.Sleep(100 * time.Millisecond)
		httpError(w, http.StatusInternalServerError, "boom")
	}
	slowOK := func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		time.Sleep(150 * time.Millisecond)
		okHandler(`{"ok":1}`)(w, r)
	}
	a := newFakeBackend(t, slowOK)
	b := newFakeBackend(t, slowOK)
	c := newFakeBackend(t, slowOK)
	f := newTestFront(t, []*fakeBackend{a, b, c}, func(cfg *Config) {
		cfg.Replicas = 3
		cfg.HedgeMin = time.Millisecond
		cfg.HedgeMax = 20 * time.Millisecond // unwarmed tracker hedges at max
		cfg.FailoverBase = 2 * time.Second
		cfg.FailoverMax = 2 * time.Second
	})

	// Timeline: primary launches at t=0 and fails at ~100ms; the hedge fires
	// at ~20ms toward the second candidate, which answers at ~170ms. The
	// failure arms a backoff of jitter*2s before the third candidate; pick a
	// key whose deterministic jitter is >= 0.5 so the pending backoff dwarfs
	// the hedge winner's arrival and the regression cannot pass by a lucky
	// tiny delay.
	var body []byte
	for seed := uint64(0); seed < 100_000; seed++ {
		cand := scheduleBody(seed)
		key := ShardKey(cand)
		if f.candidates(key)[0].base != a.ts.URL {
			continue
		}
		if rng.Float01(rng.Hash2(hashString(key), 0, saltFailover)) >= 0.5 {
			body = cand
			break
		}
	}
	if body == nil {
		t.Fatal("no seed with primary a and jitter >= 0.5")
	}
	second := f.candidates(ShardKey(body))[1]
	a.set(slow500)

	start := time.Now()
	res, err := f.Dispatch(context.Background(), body)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Status != http.StatusOK || res.Backend != second.base {
		t.Fatalf("res = %d from %s, want hedged 200 from %s", res.Status, res.Backend, second.base)
	}
	if elapsed > 900*time.Millisecond {
		t.Fatalf("hedge winner served after %v; the pending >=1s failover backoff delayed it", elapsed)
	}
	if st := f.Stats(); st.HedgeWins != 1 {
		t.Fatalf("hedge_wins = %d, want 1", st.HedgeWins)
	}
}

// modeHandler answers like okHandler but advertises a brownout mode.
func modeHandler(body string, mode int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Brownout-Mode", strconv.Itoa(mode))
		io.WriteString(w, body)
	}
}

// TestFrontPrefersLeastDegradedReplica checks brownout-aware placement: a
// backend advertising a degraded mode loses first-choice status to a
// full-service replica, and wins it back once it advertises recovery.
func TestFrontPrefersLeastDegradedReplica(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, modeHandler(`{"ok":1}`, 2))
	b := newFakeBackend(t, modeHandler(`{"ok":1}`, 0))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)

	// First dispatch goes to the ring primary a and learns its mode.
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Backend != a.ts.URL {
		t.Fatalf("first dispatch hit %s, want ring primary %s", res.Backend, a.ts.URL)
	}
	if got := res.Header.Get("X-Brownout-Mode"); got != "2" {
		t.Fatalf("relayed X-Brownout-Mode = %q, want \"2\"", got)
	}

	// With a's degradation known, the full-service replica b is preferred
	// even though a is the ring primary for this key.
	if got := f.candidates(ShardKey(body))[0].base; got != b.ts.URL {
		t.Fatalf("degraded primary still first choice: got %s, want %s", got, b.ts.URL)
	}
	res, err = f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch after demotion: %v", err)
	}
	if res.Backend != b.ts.URL {
		t.Fatalf("dispatch after demotion hit %s, want %s", res.Backend, b.ts.URL)
	}

	var modes = map[string]int{}
	for _, bs := range f.Stats().Backends {
		modes[bs.Backend] = bs.Mode
	}
	if modes[a.ts.URL] != 2 || modes[b.ts.URL] != 0 {
		t.Fatalf("Stats modes = %v, want a=2 b=0", modes)
	}

	// a recovers; the front only learns on a's next answer, so shed b once
	// to force a failover onto a.
	a.set(modeHandler(`{"ok":1}`, 0))
	b.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	res, err = f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch during b shed: %v", err)
	}
	if res.Backend != a.ts.URL {
		t.Fatalf("failover hit %s, want %s", res.Backend, a.ts.URL)
	}
	b.set(modeHandler(`{"ok":1}`, 0))

	// Both at mode 0 again: ring order is the tiebreak, so a is primary.
	if got := f.candidates(ShardKey(body))[0].base; got != a.ts.URL {
		t.Fatalf("recovered primary not restored: got %s, want %s", got, a.ts.URL)
	}
}
