package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"symbios/internal/integrity"
)

// Handler builds the front tier's route table: the sharded /v1/schedule
// proxy plus the usual operational endpoints.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", f.handleSchedule)
	mux.HandleFunc("GET /v1/mixes", f.handleMixes)
	mux.HandleFunc("GET /v1/quarantine", f.handleQuarantine)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.HandleFunc("GET /statz", f.handleStatz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	return mux
}

// httpError writes a JSON error body with the given status. Every body the
// front writes itself is digest-stamped — the integrity envelope's promise
// is "every byte on the wire is verifiable", and a strict verifier (soak
// -require-digest) must be able to tell a front-synthesized answer from a
// backend envelope a hop stripped.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(integrity.Header, integrity.Digest(body))
	w.WriteHeader(status)
	w.Write(body)
}

// handleSchedule reads the body and hands it to the dispatcher, relaying
// whatever a replica answered byte-for-byte (plus which backend served it).
func (f *Front) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "front tier draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusBadRequest, "request body exceeds %d bytes", maxBodyBytes)
		return
	}
	res, err := f.Dispatch(r.Context(), body)
	switch {
	case err == nil:
		for k, vs := range res.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		if res.Backend != "" {
			w.Header().Set("X-Fleet-Backend", res.Backend)
		}
		w.WriteHeader(res.Status)
		w.Write(res.Body)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, "%v", err)
	}
}

// handleMixes relays the static mix list from the first answering backend,
// held to the same relay rules as the schedule path: the body is read one
// byte past the cap so an over-limit answer fails instead of being silently
// truncated, and it must pass the integrity check (a wrong digest is always
// a failed candidate; a missing one only under RequireDigest). A backend
// whose answer fails either check is skipped and the next one tried.
func (f *Front) handleMixes(w http.ResponseWriter, r *http.Request) {
	for _, b := range f.candidates("mixes") {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.base+"/v1/mixes", nil)
		if err != nil {
			continue
		}
		resp, err := f.client.Do(req)
		if err != nil {
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if len(data) > maxResponseBytes {
			f.logger.Printf("backend %s: /v1/mixes response exceeds %d bytes; trying next", b.base, maxResponseBytes)
			continue
		}
		if cerr := integrity.Check(resp.Header.Get(integrity.Header), data); cerr != nil {
			if !errors.Is(cerr, integrity.ErrMissing) || f.cfg.RequireDigest {
				f.integrityFails.Add(1)
				b.obsIntegrity.Inc()
				f.logger.Printf("backend %s: /v1/mixes: %v; trying next", b.base, cerr)
				continue
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if v := resp.Header.Get(integrity.Header); v != "" {
			w.Header().Set(integrity.Header, v)
		}
		w.Write(data)
		return
	}
	httpError(w, http.StatusBadGateway, "no backend answered /v1/mixes")
}

// handleQuarantine reports divergence-quarantine state per backend: which
// replicas are currently excluded from placement, how much evidence each has
// accumulated, and the lifetime quarantine/readmit counts. Operators (and
// the partition soak) read this to confirm a diverging replica was isolated
// and later readmitted.
func (f *Front) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Backend     string `json:"backend"`
		Quarantined bool   `json:"quarantined"`
		Divergences uint64 `json:"divergences"`
		CleanProbes int    `json:"clean_probes"`
		Quarantines uint64 `json:"quarantines"`
		Readmits    uint64 `json:"readmits"`
	}
	out := struct {
		Quarantined int     `json:"quarantined"`
		Backends    []entry `json:"backends"`
	}{Backends: []entry{}}
	for _, b := range f.backends {
		b.mu.Lock()
		e := entry{
			Backend:     b.base,
			Quarantined: b.quarantined,
			Divergences: b.divergesSeen,
			CleanProbes: b.cleanProbes,
			Quarantines: b.quarantines,
			Readmits:    b.qReadmits,
		}
		b.mu.Unlock()
		if e.Quarantined {
			out.Quarantined++
		}
		out.Backends = append(out.Backends, e)
	}
	body, err := json.Marshal(out)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding quarantine state: %v", err)
		return
	}
	writeStamped(w, http.StatusOK, "application/json", append(body, '\n'))
}

// writeStamped writes a front-synthesized body with its integrity digest:
// nothing the front puts on the wire goes out unverifiable.
func writeStamped(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set(integrity.Header, integrity.Digest(body))
	w.WriteHeader(status)
	w.Write(body)
}

// handleHealthz is liveness: the front process is up.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeStamped(w, http.StatusOK, "text/plain; charset=utf-8", []byte("ok\n"))
}

// handleReadyz is readiness: not draining and at least one healthy backend.
func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if f.HealthyBackends() == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy backend")
		return
	}
	writeStamped(w, http.StatusOK, "text/plain; charset=utf-8", []byte("ready\n"))
}

// handleStatz reports the fleet counters.
func (f *Front) handleStatz(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(f.Stats())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding stats: %v", err)
		return
	}
	writeStamped(w, http.StatusOK, "application/json", append(body, '\n'))
}

// handleMetrics serves the Prometheus exposition.
func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if f.reg == nil {
		httpError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := f.reg.WritePrometheus(w); err != nil {
		f.logger.Printf("metrics write: %v", err)
	}
}
