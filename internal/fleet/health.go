package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HealthConfig tunes the active health checker.
type HealthConfig struct {
	// Interval is the probe cadence. Values <= 0 select 500ms.
	Interval time.Duration
	// Timeout bounds one probe. Values <= 0 select Interval (and never more
	// than it, so one slow backend cannot stall the round for the others —
	// probes run concurrently anyway, but a round never overlaps the next).
	Timeout time.Duration
	// EjectAfter is how many consecutive probe failures eject a backend.
	// Values < 1 select 3.
	EjectAfter int
	// ReadmitAfter is how many consecutive probe successes readmit an
	// ejected backend — the half-open gate on the health axis. Values < 1
	// select 2.
	ReadmitAfter int
	// Probe checks one backend base URL, returning nil when it is ready.
	// nil selects an HTTP GET of base+"/readyz" expecting 200.
	Probe func(ctx context.Context, base string) error
	// OnChange, when non-nil, observes every eject/readmit. Called outside
	// any lock, from the checker goroutine.
	OnChange func(backend string, healthy bool)
}

// healthChecker runs one probe loop over the fleet's backends, maintaining
// each backend's healthy bit and consecutive-outcome counters. Ejection is
// advisory: the dispatcher deprioritizes ejected backends (tries them only
// when every healthy replica has already failed), it never unmaps them.
type healthChecker struct {
	cfg      HealthConfig
	backends []*backend
	client   *http.Client

	stop chan struct{}
	done chan struct{}
}

// newHealthChecker resolves defaults. Call run in a goroutine to start and
// close stop to halt; done closes when the loop has fully exited.
func newHealthChecker(cfg HealthConfig, backends []*backend, client *http.Client) *healthChecker {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 || cfg.Timeout > cfg.Interval {
		cfg.Timeout = cfg.Interval
	}
	if cfg.EjectAfter < 1 {
		cfg.EjectAfter = 3
	}
	if cfg.ReadmitAfter < 1 {
		cfg.ReadmitAfter = 2
	}
	hc := &healthChecker{
		cfg:      cfg,
		backends: backends,
		client:   client,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if hc.cfg.Probe == nil {
		hc.cfg.Probe = hc.httpProbe
	}
	return hc
}

// httpProbe is the default probe: GET base/readyz, 200 means ready. A
// backend that answers anything else — including a clean 503 "warming" or
// "draining" — is not ready for traffic, which is exactly what the warm-up
// protocol relies on: a restarted backend stays ejected until its cache
// transfer finishes.
func (hc *healthChecker) httpProbe(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := hc.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}

// run is the probe loop; it exits when stop closes.
func (hc *healthChecker) run() {
	defer close(hc.done)
	ticker := time.NewTicker(hc.cfg.Interval)
	defer ticker.Stop()
	for {
		hc.round()
		select {
		case <-hc.stop:
			return
		case <-ticker.C:
		}
	}
}

// round probes every backend concurrently and applies the outcomes.
func (hc *healthChecker) round() {
	ctx, cancel := context.WithTimeout(context.Background(), hc.cfg.Timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, b := range hc.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			hc.apply(b, hc.cfg.Probe(ctx, b.base) == nil)
		}(b)
	}
	wg.Wait()
}

// apply folds one probe outcome into the backend's health state.
func (hc *healthChecker) apply(b *backend, ok bool) {
	var changed *bool
	b.mu.Lock()
	if ok {
		b.consecFail = 0
		b.consecOK++
		if !b.healthy && b.consecOK >= hc.cfg.ReadmitAfter {
			b.healthy = true
			b.readmits++
			v := true
			changed = &v
		}
	} else {
		b.consecOK = 0
		b.consecFail++
		if b.healthy && b.consecFail >= hc.cfg.EjectAfter {
			b.healthy = false
			b.ejections++
			v := false
			changed = &v
		}
	}
	b.mu.Unlock()
	if changed != nil {
		if b.obsEjections != nil && !*changed {
			b.obsEjections.Inc()
		}
		if cb := hc.cfg.OnChange; cb != nil {
			cb(b.base, *changed)
		}
	}
}
