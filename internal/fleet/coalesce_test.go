package fleet

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symbios/internal/leakcheck"
)

// TestFlightGroupCoalesces checks concurrent same-key calls execute fn once
// and every caller sees the same result; distinct keys run independently.
func TestFlightGroupCoalesces(t *testing.T) {
	leakcheck.Check(t)
	g := newFlightGroup()
	var execs atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	fn := func() (*Result, error) {
		execs.Add(1)
		close(leaderIn)
		<-release
		return &Result{Status: http.StatusOK, Body: []byte("shared"), Header: http.Header{}}, nil
	}

	const followers = 8
	var wg sync.WaitGroup
	results := make([]*Result, followers)
	sharedFlags := make([]bool, followers)

	// Leader first, so the followers reliably coalesce onto it.
	var leaderRes *Result
	var leaderShared bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderRes, leaderShared, _ = g.Do(context.Background(), "k", fn)
	}()
	<-leaderIn
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], sharedFlags[i], _ = g.Do(context.Background(), "k", fn)
		}(i)
	}
	// Give the followers a moment to park on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if leaderShared {
		t.Fatal("leader reported shared")
	}
	for i := range results {
		if !sharedFlags[i] {
			t.Fatalf("follower %d not marked shared", i)
		}
		if string(results[i].Body) != "shared" || results[i] != leaderRes {
			t.Fatalf("follower %d got a different result", i)
		}
	}

	// The key is released after completion: a later call runs fresh.
	fresh := func() (*Result, error) {
		execs.Add(1)
		return &Result{Status: http.StatusOK, Body: []byte("fresh")}, nil
	}
	res, shared, _ := g.Do(context.Background(), "k", fresh)
	if shared || string(res.Body) != "fresh" {
		t.Fatalf("post-completion call coalesced onto a dead flight: shared=%v body=%s", shared, res.Body)
	}
}

// TestFlightGroupFollowerCancel checks a follower whose context fires
// leaves with the context error while the leader finishes undisturbed.
func TestFlightGroupFollowerCancel(t *testing.T) {
	leakcheck.Check(t)
	g := newFlightGroup()
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		g.Do(context.Background(), "k", func() (*Result, error) {
			close(leaderIn)
			<-release
			return &Result{Status: http.StatusOK}, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", nil) // follower: fn unused
		followerErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-followerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower never returned")
	}
	close(release)
}
