// Package fleet is the sosd front tier: it shards /v1/schedule requests
// across N sosd backends with a consistent-hash ring, fails over between
// ring replicas when a backend is sick, hedges slow requests with a
// duplicate to the next replica, and coalesces identical in-flight requests
// into one backend call.
//
// The design leans on one property the backends guarantee: responses are a
// pure function of the request bytes, so any replica's answer is
// byte-identical to any other's. That is what makes failover and hedging
// safe without coordination — the front tier never has to reconcile
// divergent answers, only pick whichever arrives first.
//
// Composition per backend mirrors the backend's own pipeline: a
// resilience.Breaker guards against a sick node, an active health checker
// (probing /readyz) ejects nodes that stop answering and readmits them via
// half-open probes, and per-backend metrics make every ejection, failover
// and hedge win visible on /metrics. See DESIGN.md section 13.
package fleet
