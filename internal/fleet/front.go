package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/obs"
	"symbios/internal/resilience"
	"symbios/internal/rng"
)

// maxBodyBytes bounds a proxied request body, matching sosd's own request
// cap so the front never accepts what a backend would refuse on size.
const maxBodyBytes = 16 << 10

// maxResponseBytes bounds a proxied response body. A backend answer that
// exceeds it is a failure, never a silent truncation — a truncated relay of
// a deterministic answer would be indistinguishable from corruption.
const maxResponseBytes = 1 << 20

// Deterministic-jitter hash salts (distinct from sosd's 0x50d1..0x50d4 and
// chaosnet's 0xc4a1.. range).
const (
	// saltFailover streams the full-jitter factor between failover attempts.
	saltFailover = 0xfa17
	// saltAudit streams the background divergence-audit draw.
	saltAudit = 0xa0d7
)

// Config wires a Front.
type Config struct {
	// Backends are the sosd base URLs (e.g. "http://127.0.0.1:8723").
	Backends []string
	// Replicas is the R-way placement width: how many distinct ring
	// backends may serve one key (primary plus failover/hedge targets).
	// Values < 1 select 2; values above the backend count are clamped.
	Replicas int
	// VNodes is the ring's virtual-node count per backend (<1 selects 64).
	VNodes int

	// DeadlineDef and DeadlineMax bound the per-request dispatch budget the
	// same way sosd bounds its evaluation budget.
	DeadlineDef time.Duration
	DeadlineMax time.Duration

	// HedgeQuantile, HedgeMin, HedgeMax and HedgeWarmup tune latency
	// hedging: after the tracked quantile of recent latencies (clamped to
	// [HedgeMin, HedgeMax]) a duplicate request is sent to the next
	// replica and the first response wins. HedgeDisable turns hedging off.
	HedgeQuantile float64
	HedgeMin      time.Duration
	HedgeMax      time.Duration
	HedgeWarmup   int
	HedgeDisable  bool

	// Health tunes the active /readyz prober.
	Health HealthConfig
	// Breaker is the per-backend circuit breaker template (OnTransition is
	// wrapped to log which backend transitioned).
	Breaker resilience.BreakerConfig
	// Budget is the per-backend hedge budget: speculative duplicates are
	// capped at Ratio times the backend's own attempt volume. Corrective
	// failover after a real failure is never budgeted — redirecting a dead
	// node's traffic is the front tier's job, not an optional extra.
	Budget resilience.BudgetConfig

	// AttemptTimeout bounds one backend attempt end to end (connect through
	// last body byte), so a slow-loris backend or stalled wire costs at most
	// one timeout before failover instead of pinning the dispatch until the
	// whole request deadline. <= 0 disables the per-attempt bound.
	AttemptTimeout time.Duration

	// FailoverBase and FailoverMax shape the full-jitter backoff between
	// corrective failover attempts (delay before retry k is
	// jitter*min(FailoverMax, FailoverBase<<k)), so a partition or a dead
	// replica does not translate into an instant synchronized hammering of
	// the next one. The jitter factor is deterministic per (shard key,
	// attempt). FailoverBase <= 0 selects 10ms, FailoverMax <= 0 selects
	// 250ms.
	FailoverBase time.Duration
	FailoverMax  time.Duration

	// BatchWindow, when positive, turns on cross-request batching: small
	// rank-mode requests for the same replica set arriving within the window
	// are sent to one backend as a single /v1/schedule/batch envelope (after
	// singleflight has collapsed identical bodies). Zero disables batching.
	BatchWindow time.Duration
	// BatchMax caps one batch; reaching it flushes the group before the
	// window elapses. < 1 selects 16; clamped to the backend's 64-item bound.
	BatchMax int

	// RequireDigest treats a backend reply without an X-Content-Digest
	// header as a failure. Off by default so fronts can sit over backends
	// that predate the envelope; a digest that is present but wrong is
	// ALWAYS a failure regardless of this setting.
	RequireDigest bool

	// Divergence tunes replica divergence detection and quarantine.
	Divergence DivergenceConfig

	// Client performs backend HTTP calls; nil selects a client with a
	// 30-second overall timeout.
	Client *http.Client
	// Logger receives ejection/failover/warm-up lines; nil discards.
	Logger *log.Logger
	// Registry receives fleet metrics; nil disables them.
	Registry *obs.Registry
}

// backend is one sosd instance plus its guard rails.
type backend struct {
	base    string
	breaker *resilience.Breaker
	budget  *resilience.Budget

	mu         sync.Mutex
	healthy    bool
	consecFail int
	consecOK   int
	ejections  uint64
	readmits   uint64

	// Divergence quarantine state (also under mu). Unlike a health
	// ejection, a quarantined backend is excluded from placement entirely —
	// it answers promptly and convincingly, just wrongly, so "last resort"
	// would serve the wrong answer exactly when it matters.
	quarantined  bool
	divergences  int // observations since the last clean slate
	cleanProbes  int // consecutive clean readmit probes
	quarantines  uint64
	qReadmits    uint64
	divergesSeen uint64 // lifetime divergence observations

	requests atomic.Uint64
	failures atomic.Uint64

	// batchIncapable latches when the backend answers /v1/schedule/batch
	// with 404/405/501 — a pre-batch build. Batches skip it from then on;
	// ordinary singleton traffic is unaffected.
	batchIncapable atomic.Bool

	// mode is the backend's last advertised brownout mode (the
	// X-Brownout-Mode response header; 0 = full service). Placement
	// prefers less-degraded replicas, so a browned-out backend sheds
	// first-choice traffic without being ejected.
	mode atomic.Int64

	obsEjections   *obs.Counter
	obsFailovers   *obs.Counter
	obsHedgeWins   *obs.Counter
	obsRequests    *obs.Counter
	obsFailures    *obs.Counter
	obsIntegrity   *obs.Counter
	obsDiverges    *obs.Counter
	obsQuarantines *obs.Counter
}

// isHealthy reads the health bit.
func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// isQuarantined reads the quarantine bit.
func (b *backend) isQuarantined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.quarantined
}

// Front is the fleet's shard-and-failover dispatcher.
type Front struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byBase   map[string]*backend
	flights  *flightGroup
	lat      *latencyTracker
	client   *http.Client
	checker  *healthChecker
	logger   *log.Logger
	reg      *obs.Registry

	// base parents every dispatch; Close cancels it so in-flight backend
	// calls abort.
	base     context.Context
	hardStop context.CancelFunc
	draining atomic.Bool

	// batcher groups small rank-mode requests into cross-request batch
	// calls; nil when Config.BatchWindow is zero.
	batcher *batcher

	coalesced atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64

	batchFlushes   atomic.Uint64
	batchItems     atomic.Uint64
	batchFallbacks atomic.Uint64

	// Integrity / divergence counters. wg tracks every background goroutine
	// the divergence machinery spawns (hedge-loser drains, audits), so Close
	// accounts for all of them.
	wg               sync.WaitGroup
	auditIdx         atomic.Uint64
	integrityFails   atomic.Uint64
	audits           atomic.Uint64
	auditMismatches  atomic.Uint64
	divergencesTotal atomic.Uint64

	obsCoalesced      *obs.Counter
	obsHedges         *obs.Counter
	obsAudits         *obs.Counter
	obsAuditMiss      *obs.Counter
	obsBatchFlushes   *obs.Counter
	obsBatchItems     *obs.Counter
	obsBatchFallbacks *obs.Counter

	startOnce sync.Once
	closeOnce sync.Once
}

// New builds a Front over cfg.Backends. Backends start healthy (optimistic)
// and the checker demotes the sick ones within EjectAfter probe rounds of
// Start.
func New(cfg Config) (*Front, error) {
	ring, err := NewRing(cfg.Backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Backends) {
		cfg.Replicas = len(cfg.Backends)
	}
	if cfg.DeadlineDef <= 0 {
		cfg.DeadlineDef = 5 * time.Second
	}
	if cfg.DeadlineMax <= 0 {
		cfg.DeadlineMax = 30 * time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 20 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	if cfg.FailoverBase <= 0 {
		cfg.FailoverBase = 10 * time.Millisecond
	}
	if cfg.FailoverMax <= 0 {
		cfg.FailoverMax = 250 * time.Millisecond
	}
	if cfg.Divergence.QuarantineAfter < 1 {
		cfg.Divergence.QuarantineAfter = 3
	}
	if cfg.Divergence.ReadmitAfter < 1 {
		cfg.Divergence.ReadmitAfter = 2
	}
	if cfg.Divergence.AuditTimeout <= 0 {
		cfg.Divergence.AuditTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	base, cancel := context.WithCancel(context.Background())
	f := &Front{
		cfg:      cfg,
		ring:     ring,
		byBase:   make(map[string]*backend, len(cfg.Backends)),
		flights:  newFlightGroup(),
		lat:      newLatencyTracker(256, cfg.HedgeQuantile, cfg.HedgeMin, cfg.HedgeMax, cfg.HedgeWarmup),
		client:   cfg.Client,
		logger:   cfg.Logger,
		reg:      cfg.Registry,
		base:     base,
		hardStop: cancel,
	}
	for _, baseURL := range cfg.Backends {
		bcfg := cfg.Breaker
		b := &backend{base: baseURL, healthy: true, budget: resilience.NewBudget(cfg.Budget)}
		prev := bcfg.OnTransition
		bcfg.OnTransition = func(from, to resilience.State) {
			f.logger.Printf("backend %s breaker: %s -> %s", baseURL, from, to)
			if prev != nil {
				prev(from, to)
			}
		}
		b.breaker = resilience.NewBreaker(bcfg)
		f.backends = append(f.backends, b)
		f.byBase[baseURL] = b
	}
	hcfg := cfg.Health
	prevChange := hcfg.OnChange
	hcfg.OnChange = func(backend string, healthy bool) {
		if healthy {
			f.logger.Printf("backend %s readmitted", backend)
		} else {
			f.logger.Printf("backend %s ejected", backend)
		}
		if prevChange != nil {
			prevChange(backend, healthy)
		}
	}
	f.checker = newHealthChecker(hcfg, f.backends, cfg.Client)
	if cfg.BatchWindow > 0 {
		f.batcher = newBatcher(f, cfg.BatchWindow, cfg.BatchMax)
	}
	f.registerObs()
	return f, nil
}

// registerObs registers the fleet metric families, one series per backend.
func (f *Front) registerObs() {
	if f.reg == nil {
		return
	}
	for _, b := range f.backends {
		l := obs.L("backend", b.base)
		b.obsEjections = f.reg.Counter("fleet_backend_ejections_total",
			"Times the health checker ejected this backend.", l)
		b.obsFailovers = f.reg.Counter("fleet_failovers_total",
			"Requests failed over away from this backend.", l)
		b.obsHedgeWins = f.reg.Counter("fleet_hedge_wins_total",
			"Hedged duplicates that beat the primary, by winning backend.", l)
		b.obsRequests = f.reg.Counter("fleet_backend_requests_total",
			"Schedule attempts sent to this backend.", l)
		b.obsFailures = f.reg.Counter("fleet_backend_failures_total",
			"Schedule attempts against this backend that failed (transport error or 5xx).", l)
		b.obsIntegrity = f.reg.Counter("fleet_integrity_failures_total",
			"Backend replies rejected because the body failed its content-digest check.", l)
		b.obsDiverges = f.reg.Counter("fleet_divergences_total",
			"Divergence observations against this backend (its answer disagreed with the fleet's).", l)
		b.obsQuarantines = f.reg.Counter("fleet_quarantines_total",
			"Times this backend was quarantined for divergence.", l)
	}
	f.obsCoalesced = f.reg.Counter("fleet_coalesced_total",
		"Requests answered by another identical in-flight request (singleflight).")
	f.obsHedges = f.reg.Counter("fleet_hedges_total",
		"Hedged duplicate requests launched.")
	f.obsAudits = f.reg.Counter("fleet_audits_total",
		"Background divergence audits performed (second replica re-asked).")
	f.obsAuditMiss = f.reg.Counter("fleet_audit_mismatches_total",
		"Background audits whose second replica disagreed with the served answer.")
	f.obsBatchFlushes = f.reg.Counter("fleet_batch_flushes_total",
		"Cross-request batch calls flushed to backends.")
	f.obsBatchItems = f.reg.Counter("fleet_batch_items_total",
		"Requests carried inside cross-request batch calls.")
	f.obsBatchFallbacks = f.reg.Counter("fleet_batch_fallback_items_total",
		"Batched requests re-dispatched as singletons (incapable backend, batch failure, or a rejected item).")
	f.reg.GaugeFunc("fleet_healthy_backends", "Backends currently considered healthy.",
		func() float64 {
			n := 0
			for _, b := range f.backends {
				if b.isHealthy() {
					n++
				}
			}
			return float64(n)
		})
	f.reg.GaugeFunc("fleet_quarantined_backends", "Backends currently quarantined for divergence.",
		func() float64 {
			n := 0
			for _, b := range f.backends {
				if b.isQuarantined() {
					n++
				}
			}
			return float64(n)
		})
}

// Start launches the health checker. Idempotent.
func (f *Front) Start() {
	f.startOnce.Do(func() { go f.checker.run() })
}

// Close stops the health checker, aborts in-flight dispatches, and waits
// for every background audit/drain goroutine to exit. Idempotent; safe even
// if Start was never called.
func (f *Front) Close() {
	f.closeOnce.Do(func() {
		f.startOnce.Do(func() { close(f.checker.done) }) // never started: mark drained
		close(f.checker.stop)
		<-f.checker.done
		if f.batcher != nil {
			// Fail queued items and stop window timers first; the hardStop
			// below aborts flushes already on the wire, whose items then fail
			// fast on the fallback path.
			f.batcher.shutdown()
		}
		f.hardStop()
		if f.batcher != nil {
			f.batcher.wg.Wait()
		}
		f.wg.Wait()
	})
}

// Draining flips the drain gate (refuse new work with 503) on.
func (f *Front) Draining() { f.draining.Store(true) }

// Result is one dispatch outcome: the response to relay to the client.
type Result struct {
	Status  int
	Header  http.Header
	Body    []byte
	Backend string
}

// shardFields is the lenient decode of the two fields the ring shards by,
// plus the client's deadline for the dispatch budget. Full validation is
// the backend's job — a garbage body still routes deterministically (by its
// raw bytes) so the backend's 400 comes back cached-consistent.
type shardFields struct {
	Mix        string `json:"mix"`
	Seed       uint64 `json:"seed"`
	DeadlineMS int64  `json:"deadline_ms"`
}

// ShardKey derives the ring key for a request body: "mix|seed" when the
// body parses, else a hash of the raw bytes.
func ShardKey(body []byte) string {
	var sf shardFields
	if err := json.Unmarshal(body, &sf); err != nil || sf.Mix == "" {
		return fmt.Sprintf("raw:%016x", hashString(string(body)))
	}
	return fmt.Sprintf("%s|%d", sf.Mix, sf.Seed)
}

// attemptClass partitions attempt outcomes for the dispatch loop.
type attemptClass int

const (
	// classGood is a deterministic answer: 2xx, or a 4xx the client earned.
	classGood attemptClass = iota
	// classShed is overload or unavailability the backend signalled cleanly
	// (429/503, breaker-open): fail over; if every replica sheds, relay the
	// shed (with its Retry-After) instead of inventing an error.
	classShed
	// classFail is a sick backend: transport error, 500/502/504.
	classFail
)

// attemptOut is one backend attempt's outcome.
type attemptOut struct {
	b     *backend
	class attemptClass
	res   *Result
	err   error
	hedge bool
}

// candidates maps the key's replica set to backends, healthy ones first
// (stable within each group, preserving ring order). Healthy backends are
// additionally ordered by ascending advertised brownout mode, so placement
// prefers the least-degraded replica: a browned-out backend keeps serving
// failover and hedge traffic but stops being anyone's first choice, which
// itself relieves the overload that degraded it. Ejected backends stay in
// the list as a last resort: with every replica ejected, trying one anyway
// beats refusing outright. Quarantined backends, by contrast, are excluded
// entirely — a diverging replica answers promptly and convincingly, just
// wrongly, so "try it as a last resort" would serve the wrong answer
// exactly when no one is left to contradict it.
func (f *Front) candidates(shardKey string) []*backend {
	bases := f.ring.Lookup(shardKey, f.cfg.Replicas)
	healthy := make([]*backend, 0, len(bases))
	var ejected []*backend
	for _, base := range bases {
		b := f.byBase[base]
		if b.isQuarantined() {
			continue
		}
		if b.isHealthy() {
			healthy = append(healthy, b)
		} else {
			ejected = append(ejected, b)
		}
	}
	sort.SliceStable(healthy, func(i, j int) bool {
		return healthy[i].mode.Load() < healthy[j].mode.Load()
	})
	return append(healthy, ejected...)
}

// Dispatch routes one request body: singleflight-coalesced, ring-sharded,
// failing over between replicas and hedging the tail. ctx is the calling
// client's context; the winning execution runs detached from it (on the
// front's base context bounded by the request's clamped deadline), so an
// impatient leader cannot cancel the answer out from under its followers.
func (f *Front) Dispatch(ctx context.Context, body []byte) (*Result, error) {
	key := ShardKey(body)
	res, shared, err := f.flights.Do(ctx, string(body), func() (*Result, error) {
		if f.batcher != nil {
			// The batcher sits behind singleflight on purpose: identical
			// bodies have already collapsed to one flight leader, so a batch
			// only ever carries distinct requests.
			if res, berr, ok := f.batcher.enqueue(key, body); ok {
				return res, berr
			}
		}
		return f.dispatchBody(key, body)
	})
	if shared {
		f.coalesced.Add(1)
		f.obsCoalesced.Inc()
	}
	return res, err
}

// dispatchBody runs the singleton failover/hedge dispatch for one body on a
// fresh budget context: the flight leader's direct path, and the batcher's
// per-item fallback.
func (f *Front) dispatchBody(key string, body []byte) (*Result, error) {
	var sf shardFields
	json.Unmarshal(body, &sf) // lenient: zero values route and clamp fine
	dctx, cancel := resilience.WithBudget(f.base,
		time.Duration(sf.DeadlineMS)*time.Millisecond, f.cfg.DeadlineDef, f.cfg.DeadlineMax)
	// cancel ownership passes to dispatch: it either releases the budget
	// context itself or hands it to the hedge-loser drain goroutine,
	// which must keep straggler attempts alive long enough to digest-
	// compare their bodies against the winner's.
	return f.dispatch(dctx, cancel, key, body)
}

// dispatch runs the failover/hedge state machine against the key's replica
// chain. At most one hedge is launched per request; every launched attempt
// writes exactly one result into a buffered channel, so abandoned attempts
// finish (and settle their breaker permits) without anyone listening.
// dispatch owns cancel (the budget context's release): every return path
// either calls it or hands it — together with the still-inflight attempt
// results — to a drainCompare goroutine for hedge-loser divergence checks.
func (f *Front) dispatch(ctx context.Context, cancel context.CancelFunc, shardKey string, body []byte) (*Result, error) {
	cands := f.candidates(shardKey)
	results := make(chan attemptOut, len(cands))
	actx, acancel := context.WithCancel(ctx)
	handoff := false
	var backoffT *time.Timer
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
		if !handoff {
			acancel()
			cancel()
		}
	}()

	next, inflight := 0, 0
	failovers := 0
	// launchNext starts an attempt on the next untried candidate. Hedge
	// launches are speculative, so they are charged to the target's hedge
	// budget and skipped when it is dry; corrective launches always run.
	launchNext := func(hedge bool) bool {
		if next >= len(cands) {
			return false
		}
		b := cands[next]
		if hedge && !b.budget.TryWithdraw() {
			// Budget dry: skip the hedge but leave the candidate untried —
			// corrective failover must still be able to reach it.
			return false
		}
		next++
		inflight++
		go func() { results <- f.attempt(actx, b, body, hedge) }()
		return true
	}
	launchNext(false)

	var hedgeC <-chan time.Time
	if !f.cfg.HedgeDisable && len(cands) > 1 {
		t := time.NewTimer(f.lat.Delay())
		defer func() {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		}()
		hedgeC = t.C
	}

	// Corrective failover is paced by a full-jitter backoff, but the backoff
	// must never delay an answer: it is armed as a timer case in the select
	// loop below instead of slept inline, so a hedge winner landing in
	// `results` mid-backoff is served immediately. failedQ remembers which
	// backend each pending corrective launch is failing away from, for
	// attribution; armFailover schedules the next launch when none is
	// pending. The jitter factor is a pure function of (shard key, k),
	// keeping chaos-soak timing replayable.
	var (
		failedQ  []*backend
		backoffC <-chan time.Time
	)
	armFailover := func() {
		if len(failedQ) == 0 || backoffC != nil {
			return // nothing pending, or a launch is already scheduled
		}
		if next >= len(cands) {
			failedQ = nil // no one left to try; nothing to pace
			return
		}
		jitter := rng.Float01(rng.Hash2(hashString(shardKey), uint64(failovers), saltFailover))
		d := resilience.BackoffDelay(resilience.RetryConfig{
			BaseDelay: f.cfg.FailoverBase,
			MaxDelay:  f.cfg.FailoverMax,
			Jitter:    func(int) float64 { return jitter },
		}, failovers)
		failovers++
		if backoffT == nil {
			backoffT = time.NewTimer(d)
		} else {
			backoffT.Reset(d)
		}
		backoffC = backoffT.C
	}

	var (
		shedRes *Result
		lastErr error
	)
	for inflight > 0 || backoffC != nil {
		select {
		case out := <-results:
			inflight--
			switch out.class {
			case classGood:
				if out.hedge {
					f.hedgeWins.Add(1)
					out.b.obsHedgeWins.Inc()
				}
				if f.cfg.Divergence.CompareHedges && inflight > 0 {
					// Hand the straggler(s) to the drain goroutine: their
					// bodies are a free divergence probe, so let them finish
					// and digest-compare against the winner before releasing
					// the budget context.
					handoff = true
					f.wg.Add(1)
					go f.drainCompare(cancel, acancel, results, inflight, body, out.res)
				} else {
					acancel() // first deterministic answer wins; cancel the loser
				}
				f.maybeAudit(body, out.res)
				return out.res, nil
			case classShed:
				if out.res != nil {
					shedRes = out.res
				}
				failedQ = append(failedQ, out.b)
				armFailover()
			case classFail:
				lastErr = out.err
				failedQ = append(failedQ, out.b)
				armFailover()
			}
		case <-backoffC:
			backoffC = nil
			from := failedQ[0]
			failedQ = failedQ[1:]
			if launchNext(false) {
				from.obsFailovers.Inc()
			}
			armFailover()
		case <-hedgeC:
			hedgeC = nil // hedge at most once
			if inflight > 0 && launchNext(true) {
				f.hedges.Add(1)
				f.obsHedges.Inc()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if shedRes != nil {
		return shedRes, nil
	}
	if lastErr == nil {
		return nil, fmt.Errorf("fleet: no replica available for %s", shardKey)
	}
	// %v on purpose: lastErr often wraps an attempt-level timeout, and
	// letting that chain escape would make errors.Is(err, DeadlineExceeded)
	// misread "every replica failed" as "the request's own deadline died" —
	// the handler would answer 504 with no Retry-After instead of a
	// retryable 502.
	return nil, fmt.Errorf("fleet: all %d replicas failed: %v", len(cands), lastErr)
}

// attempt sends body to one backend and classifies the outcome, settling
// the backend's breaker permit itself so abandoned attempts stay accounted.
func (f *Front) attempt(ctx context.Context, b *backend, body []byte, hedge bool) attemptOut {
	report, err := b.breaker.Allow()
	if err != nil {
		return attemptOut{b: b, class: classShed, err: err, hedge: hedge,
			res: shedResult(err, b.breaker.RetryAfter())}
	}
	if !hedge {
		// Only non-speculative attempts fund the hedge budget; a hedge
		// depositing for itself would let the effective hedge rate creep
		// above the configured ratio.
		b.budget.Deposit()
	}
	b.requests.Add(1)
	b.obsRequests.Inc()

	t0 := time.Now()
	// The per-attempt timeout bounds connect through last body byte, so a
	// slow-loris backend costs one AttemptTimeout before failover, not the
	// whole request deadline. ctx (the parent) stays the authority on
	// whether the *request* is over; tctx only bounds *this try*.
	tctx := ctx
	tcancel := context.CancelFunc(func() {})
	if f.cfg.AttemptTimeout > 0 {
		tctx, tcancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	defer tcancel()
	// fail classifies a transport-level breakdown: a dead parent context is
	// no verdict on the backend (hedge lost, client gone, deadline), but an
	// attempt timeout with a live parent is the backend being slow — that is
	// exactly what the breaker should hear about.
	fail := func(err error) attemptOut {
		if ctx.Err() != nil {
			report(resilience.Skipped)
		} else {
			report(resilience.Failure)
			b.failures.Add(1)
			b.obsFailures.Inc()
		}
		return attemptOut{b: b, class: classFail, err: fmt.Errorf("backend %s: %w", b.base, err), hedge: hedge}
	}
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, b.base+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		report(resilience.Skipped)
		return attemptOut{b: b, class: classFail, err: err, hedge: hedge}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "sosfront")
	resp, err := f.client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	// Read one byte past the cap: exactly maxResponseBytes+1 bytes read
	// means the backend's body was larger, which is a hard failure — a
	// silently truncated relay of a deterministic answer would be
	// indistinguishable from wire corruption.
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if rerr != nil {
		return fail(fmt.Errorf("reading response: %w", rerr))
	}
	if len(data) > maxResponseBytes {
		return fail(fmt.Errorf("response exceeds %d bytes", maxResponseBytes))
	}
	// Integrity envelope: a present-but-wrong digest is always a failure (a
	// corrupt 200 must never reach a client); a missing digest is tolerated
	// unless RequireDigest, so fronts can sit over pre-envelope backends.
	if cerr := integrity.Check(resp.Header.Get(integrity.Header), data); cerr != nil {
		if !errors.Is(cerr, integrity.ErrMissing) || f.cfg.RequireDigest {
			f.integrityFails.Add(1)
			b.obsIntegrity.Inc()
			return fail(cerr)
		}
	}
	dur := time.Since(t0)
	if v := resp.Header.Get("X-Brownout-Mode"); v != "" {
		if m, perr := strconv.Atoi(v); perr == nil && m >= 0 {
			b.mode.Store(int64(m))
		}
	}
	res := &Result{
		Status:  resp.StatusCode,
		Header:  relayHeaders(resp.Header),
		Body:    data,
		Backend: b.base,
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Clean shedding: the backend is up and telling us to go elsewhere.
		report(resilience.Skipped)
		if res.Header.Get("Retry-After") == "" {
			res.Header.Set("Retry-After", "1")
		}
		return attemptOut{b: b, class: classShed, res: res, hedge: hedge}
	case resp.StatusCode >= 500:
		report(resilience.Failure)
		b.failures.Add(1)
		b.obsFailures.Inc()
		return attemptOut{b: b, class: classFail, res: res, hedge: hedge,
			err: fmt.Errorf("backend %s: %s", b.base, resp.Status)}
	default:
		// 2xx and client-errors alike are deterministic answers.
		report(resilience.Success)
		if resp.StatusCode < 300 {
			f.lat.Observe(dur)
		}
		return attemptOut{b: b, class: classGood, res: res, hedge: hedge}
	}
}

// relayHeaders picks the response headers worth relaying to the client.
func relayHeaders(h http.Header) http.Header {
	out := http.Header{}
	for _, k := range []string{"Content-Type", "X-Cache", "Retry-After", "X-Brownout-Mode", integrity.Header} {
		if v := h.Get(k); v != "" {
			out.Set(k, v)
		}
	}
	return out
}

// shedResult synthesizes a 503 for a refusal that never reached a backend
// (breaker open), carrying the breaker's cooldown as Retry-After. Like every
// body the front writes itself, it is digest-stamped, so a strict verifier
// can tell "the front spoke" from "a backend's envelope was stripped".
func shedResult(err error, retryAfter time.Duration) *Result {
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	body = append(body, '\n')
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", retryAfterValue(retryAfter))
	h.Set(integrity.Header, integrity.Digest(body))
	return &Result{Status: http.StatusServiceUnavailable, Header: h, Body: body}
}

// retryAfterValue renders a duration as a Retry-After header value: whole
// seconds, rounded up, at least 1.
func retryAfterValue(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// BackendStats is one backend's /statz entry.
type BackendStats struct {
	Backend     string                  `json:"backend"`
	Healthy     bool                    `json:"healthy"`
	Mode        int                     `json:"mode"`
	Ejections   uint64                  `json:"ejections"`
	Readmits    uint64                  `json:"readmits"`
	Requests    uint64                  `json:"requests"`
	Failures    uint64                  `json:"failures"`
	Quarantined bool                    `json:"quarantined"`
	Divergences uint64                  `json:"divergences"`
	Quarantines uint64                  `json:"quarantines"`
	QReadmits   uint64                  `json:"quarantine_readmits"`
	Breaker     resilience.BreakerStats `json:"breaker"`
}

// Stats is the front tier's /statz body.
type Stats struct {
	Backends         []BackendStats `json:"backends"`
	Coalesced        uint64         `json:"coalesced"`
	Hedges           uint64         `json:"hedges"`
	HedgeWins        uint64         `json:"hedge_wins"`
	BatchFlushes     uint64         `json:"batch_flushes"`
	BatchItems       uint64         `json:"batch_items"`
	BatchFallbacks   uint64         `json:"batch_fallback_items"`
	IntegrityFails   uint64         `json:"integrity_failures"`
	Audits           uint64         `json:"audits"`
	AuditMismatches  uint64         `json:"audit_mismatches"`
	DivergencesTotal uint64         `json:"divergences"`
	Draining         bool           `json:"draining"`
}

// Stats snapshots the fleet state.
func (f *Front) Stats() Stats {
	st := Stats{
		Coalesced:        f.coalesced.Load(),
		Hedges:           f.hedges.Load(),
		HedgeWins:        f.hedgeWins.Load(),
		BatchFlushes:     f.batchFlushes.Load(),
		BatchItems:       f.batchItems.Load(),
		BatchFallbacks:   f.batchFallbacks.Load(),
		IntegrityFails:   f.integrityFails.Load(),
		Audits:           f.audits.Load(),
		AuditMismatches:  f.auditMismatches.Load(),
		DivergencesTotal: f.divergencesTotal.Load(),
		Draining:         f.draining.Load(),
	}
	for _, b := range f.backends {
		b.mu.Lock()
		bs := BackendStats{
			Backend:     b.base,
			Healthy:     b.healthy,
			Ejections:   b.ejections,
			Readmits:    b.readmits,
			Quarantined: b.quarantined,
			Divergences: b.divergesSeen,
			Quarantines: b.quarantines,
			QReadmits:   b.qReadmits,
		}
		b.mu.Unlock()
		bs.Mode = int(b.mode.Load())
		bs.Requests = b.requests.Load()
		bs.Failures = b.failures.Load()
		bs.Breaker = b.breaker.Stats()
		st.Backends = append(st.Backends, bs)
	}
	return st
}

// HealthyBackends counts backends currently admitted by the checker.
func (f *Front) HealthyBackends() int {
	n := 0
	for _, b := range f.backends {
		if b.isHealthy() {
			n++
		}
	}
	return n
}

// IsDraining reports the drain gate.
func (f *Front) IsDraining() bool { return f.draining.Load() }
