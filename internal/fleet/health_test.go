package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symbios/internal/leakcheck"
	"symbios/internal/resilience"
)

// scriptedProbe answers probes from a per-backend boolean the test flips.
type scriptedProbe struct {
	mu sync.Mutex
	up map[string]bool
}

func (p *scriptedProbe) probe(ctx context.Context, base string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.up[base] {
		return nil
	}
	return context.DeadlineExceeded
}

func (p *scriptedProbe) set(base string, up bool) {
	p.mu.Lock()
	p.up[base] = up
	p.mu.Unlock()
}

// changeLog collects OnChange events.
type changeLog struct {
	mu   sync.Mutex
	seen []string
}

func (l *changeLog) record(backend string, healthy bool) {
	l.mu.Lock()
	if healthy {
		l.seen = append(l.seen, backend+":readmit")
	} else {
		l.seen = append(l.seen, backend+":eject")
	}
	l.mu.Unlock()
}

func (l *changeLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seen...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthCheckerEjectAndReadmit drives a backend down and back up
// through the probe loop: ejected only after EjectAfter consecutive
// failures, readmitted only after ReadmitAfter consecutive successes.
func TestHealthCheckerEjectAndReadmit(t *testing.T) {
	leakcheck.Check(t)
	probe := &scriptedProbe{up: map[string]bool{"http://a": true, "http://b": true}}
	logch := &changeLog{}
	backends := []*backend{
		{base: "http://a", healthy: true, budget: resilience.NewBudget(resilience.BudgetConfig{})},
		{base: "http://b", healthy: true, budget: resilience.NewBudget(resilience.BudgetConfig{})},
	}
	hc := newHealthChecker(HealthConfig{
		Interval:     3 * time.Millisecond,
		EjectAfter:   3,
		ReadmitAfter: 2,
		Probe:        probe.probe,
		OnChange:     logch.record,
	}, backends, nil)
	go hc.run()
	defer func() { close(hc.stop); <-hc.done }()

	a, b := backends[0], backends[1]
	// A single failed probe must not eject (EjectAfter = 3).
	probe.set("http://a", false)
	waitFor(t, "one failed probe", func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.consecFail >= 1
	})
	probe.set("http://a", true)
	waitFor(t, "failure streak reset", func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.consecFail == 0
	})
	if !a.isHealthy() {
		t.Fatal("backend ejected after a single failed probe")
	}

	// A sustained outage ejects; the healthy peer is untouched.
	probe.set("http://a", false)
	waitFor(t, "ejection", func() bool { return !a.isHealthy() })
	if !b.isHealthy() {
		t.Fatal("healthy peer ejected alongside the sick one")
	}

	// Recovery readmits after ReadmitAfter consecutive successes.
	probe.set("http://a", true)
	waitFor(t, "readmission", func() bool { return a.isHealthy() })

	a.mu.Lock()
	ej, re := a.ejections, a.readmits
	a.mu.Unlock()
	if ej != 1 || re != 1 {
		t.Fatalf("ejections=%d readmits=%d, want 1 and 1", ej, re)
	}
	want := []string{"http://a:eject", "http://a:readmit"}
	got := logch.list()
	if len(got) < 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("OnChange log %v, want prefix %v", got, want)
	}
}

// TestHealthCheckerStops checks close(stop) halts the loop promptly even
// mid-round.
func TestHealthCheckerStops(t *testing.T) {
	leakcheck.Check(t)
	var probes atomic.Int64
	backends := []*backend{{base: "http://a", healthy: true}}
	hc := newHealthChecker(HealthConfig{
		Interval: time.Millisecond,
		Probe: func(ctx context.Context, base string) error {
			probes.Add(1)
			return nil
		},
	}, backends, nil)
	go hc.run()
	waitFor(t, "first probe", func() bool { return probes.Load() > 0 })
	close(hc.stop)
	select {
	case <-hc.done:
	case <-time.After(5 * time.Second):
		t.Fatal("checker did not stop")
	}
}
