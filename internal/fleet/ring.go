package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"symbios/internal/rng"
)

// Ring is an immutable consistent-hash ring with virtual nodes. Each
// backend owns VNodes points on a 64-bit circle; a key is served by the
// backend owning the first point at or clockwise of the key's hash, and its
// replicas are the next distinct backends continuing clockwise. Immutability
// is deliberate: the member set is fixed at construction (the front tier's
// -backends flag), and health ejection reorders *attempts*, never placement,
// so a key's replica set — and therefore which caches hold its response —
// is stable across the whole deployment's lifetime.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the circle and the index of
// the backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// hashString is the ring's hash: FNV-1a 64 finished through the splitmix64
// mixer. Plain FNV-1a avalanches poorly in its final bytes, so the
// sequential keys this ring actually sees ("mix|0", "mix|1", ...) land in
// adjacent runs and shard grossly unevenly; the post-mix restores full
// avalanche. No cryptographic strength needed, only a stable, well-mixed
// mapping every front-tier process computes identically (so a fleet of
// fronts shards the same way).
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return rng.Hash(h.Sum64(), 0)
}

// NewRing builds a ring over backends with vnodes points each. Backends
// must be non-empty and distinct; vnodes < 1 selects 64 (enough that
// removing one of three backends moves close to its fair 1/3 share, see
// the rebalance property test).
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one backend")
	}
	if vnodes < 1 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*vnodes),
	}
	for i, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("fleet: empty backend address")
		}
		if seen[b] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashString(fmt.Sprintf("%s#%d", b, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit collision between vnode labels is vanishingly rare;
		// break it by backend index so the order is still deterministic.
		return r.points[a].backend < r.points[b].backend
	})
	return r, nil
}

// Backends returns the member set, in construction order.
func (r *Ring) Backends() []string {
	return append([]string(nil), r.backends...)
}

// Lookup returns up to n distinct backends for key, primary first, walking
// clockwise from the key's position. n <= 0 or n > len(backends) is clamped
// to the member count.
func (r *Ring) Lookup(key string, n int) []string {
	if n <= 0 || n > len(r.backends) {
		n = len(r.backends)
	}
	h := hashString(key)
	// First point with hash >= h, wrapping to 0.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for walked := 0; walked < len(r.points) && len(out) < n; walked++ {
		p := r.points[(i+walked)%len(r.points)]
		if taken[p.backend] {
			continue
		}
		taken[p.backend] = true
		out = append(out, r.backends[p.backend])
	}
	return out
}
