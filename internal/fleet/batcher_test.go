package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// singletonWire is the deterministic wire body the fake backend answers for a
// request: derived from the raw request bytes, newline-terminated like sosd's
// own cached answers.
func singletonWire(reqBody []byte) []byte {
	return []byte(fmt.Sprintf(`{"answer":"%016x"}`+"\n", hashString(string(reqBody))))
}

// batchCapableHandler serves both schedule endpoints the way sosd does:
// singleton answers are digest-stamped wire bodies, and the batch endpoint
// splits the envelope into per-item singleton answers, each carrying the
// digest of its reconstructed wire form. corruptItem, when >= 0, damages that
// item's digest so tests can watch the front reject it.
func batchCapableHandler(singles, batches, batchedItems *atomic.Int64, corruptItem int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		switch r.URL.Path {
		case "/v1/schedule":
			if singles != nil {
				singles.Add(1)
			}
			wire := singletonWire(body)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", "miss")
			w.Header().Set(integrity.Header, integrity.Digest(wire))
			w.Write(wire)
		case "/v1/schedule/batch":
			if batches != nil {
				batches.Add(1)
			}
			var env struct {
				Requests []json.RawMessage `json:"requests"`
			}
			if err := json.Unmarshal(body, &env); err != nil {
				http.Error(w, "bad envelope", http.StatusBadRequest)
				return
			}
			if batchedItems != nil {
				batchedItems.Add(int64(len(env.Requests)))
			}
			type item struct {
				Status int             `json:"status"`
				Cache  string          `json:"cache,omitempty"`
				Digest string          `json:"digest"`
				Body   json.RawMessage `json:"body"`
			}
			out := struct {
				Items []item `json:"items"`
			}{}
			for i, raw := range env.Requests {
				wire := singletonWire(raw)
				dig := integrity.Digest(wire)
				if i == corruptItem {
					dig = integrity.Digest([]byte("corrupt"))
				}
				out.Items = append(out.Items, item{
					Status: http.StatusOK, Cache: "miss", Digest: dig,
					Body: json.RawMessage(wire[:len(wire)-1]),
				})
			}
			envBody, _ := json.Marshal(out)
			envBody = append(envBody, '\n')
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(integrity.Header, integrity.Digest(envBody))
			w.Write(envBody)
		default:
			http.NotFound(w, r)
		}
	}
}

// checkBatchResult asserts one dispatch result is the byte-identical
// digest-verified singleton answer for body.
func checkBatchResult(t *testing.T, res *Result, body []byte) {
	t.Helper()
	want := singletonWire(body)
	if res.Status != http.StatusOK {
		t.Fatalf("status %d body %s", res.Status, res.Body)
	}
	if string(res.Body) != string(want) {
		t.Fatalf("body %q, want singleton %q", res.Body, want)
	}
	if err := integrity.Check(res.Header.Get(integrity.Header), res.Body); err != nil {
		t.Fatalf("result digest: %v", err)
	}
}

// bodiesSameGroup scans seeds for n distinct bodies whose candidate chains
// are identical, so they accumulate into one batch group.
func bodiesSameGroup(t *testing.T, f *Front, n int) [][]byte {
	t.Helper()
	var bodies [][]byte
	var gkey string
	for seed := uint64(0); seed < 100_000 && len(bodies) < n; seed++ {
		body := scheduleBody(seed)
		cands := f.candidates(ShardKey(body))
		bases := make([]string, len(cands))
		for i, b := range cands {
			bases[i] = b.base
		}
		k := strings.Join(bases, ",")
		if gkey == "" {
			gkey = k
		}
		if k != gkey {
			continue
		}
		bodies = append(bodies, body)
	}
	if len(bodies) < n {
		t.Fatalf("found only %d of %d same-group bodies", len(bodies), n)
	}
	return bodies
}

// TestFrontBatchGroupsAndSplits is the batching tentpole's front-side proof:
// distinct concurrent rank requests ride batch envelopes — zero singleton
// calls — and every caller gets bytes identical to the singleton answer,
// digest-verified per item.
func TestFrontBatchGroupsAndSplits(t *testing.T) {
	leakcheck.Check(t)
	var singles, batches, items atomic.Int64
	h := batchCapableHandler(&singles, &batches, &items, -1)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 50 * time.Millisecond
		cfg.BatchMax = 8
	})

	const n = 6
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f.Dispatch(context.Background(), scheduleBody(uint64(i)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("dispatch %d: %v", i, errs[i])
		}
		checkBatchResult(t, results[i], scheduleBody(uint64(i)))
		if got := results[i].Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("dispatch %d X-Cache = %q, want miss", i, got)
		}
	}
	if singles.Load() != 0 {
		t.Fatalf("%d singleton calls escaped the batcher", singles.Load())
	}
	if batches.Load() < 1 || items.Load() != n {
		t.Fatalf("backends saw %d batch calls carrying %d items, want >=1 carrying %d",
			batches.Load(), items.Load(), n)
	}
	st := f.Stats()
	if st.BatchItems != n || st.BatchFallbacks != 0 {
		t.Fatalf("stats batch_items=%d batch_fallbacks=%d, want %d and 0",
			st.BatchItems, st.BatchFallbacks, n)
	}
	if st.BatchFlushes != uint64(batches.Load()) {
		t.Fatalf("stats batch_flushes=%d, backends saw %d calls", st.BatchFlushes, batches.Load())
	}
}

// TestFrontBatchMaxFlushesFull checks a full group flushes immediately
// instead of waiting out the window.
func TestFrontBatchMaxFlushesFull(t *testing.T) {
	leakcheck.Check(t)
	var batches, items atomic.Int64
	h := batchCapableHandler(nil, &batches, &items, -1)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 2 * time.Second // far beyond the asserted latency
		cfg.BatchMax = 2
	})
	bodies := bodiesSameGroup(t, f, 2)

	start := time.Now()
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			res, err := f.Dispatch(context.Background(), body)
			if err != nil {
				t.Errorf("Dispatch: %v", err)
				return
			}
			checkBatchResult(t, res, body)
		}(body)
	}
	wg.Wait()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("full group took %v, want an immediate flush well before the %v window", el, 2*time.Second)
	}
	if batches.Load() != 1 || items.Load() != 2 {
		t.Fatalf("backends saw %d batch calls / %d items, want 1 / 2", batches.Load(), items.Load())
	}
}

// TestFrontBatchIncapableFallsBack checks a pre-batch backend (404 on the
// batch endpoint) costs one probe: its items fall back to singleton dispatch
// with correct bytes, the incapability latches, and once every replica has
// latched the batcher stops intercepting entirely.
func TestFrontBatchIncapableFallsBack(t *testing.T) {
	leakcheck.Check(t)
	var singles atomic.Int64
	h := func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.URL.Path != "/v1/schedule" {
			http.NotFound(w, r)
			return
		}
		singles.Add(1)
		wire := singletonWire(body)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(integrity.Header, integrity.Digest(wire))
		w.Write(wire)
	}
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 5 * time.Millisecond
	})

	// Each of the first two dispatches probes (and latches) one replica; the
	// third finds no capable candidate and skips the batch path outright.
	for i := 0; i < 3; i++ {
		body := scheduleBody(uint64(i))
		res, err := f.Dispatch(context.Background(), body)
		if err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
		checkBatchResult(t, res, body)
	}
	if !f.byBase[a.ts.URL].batchIncapable.Load() || !f.byBase[b.ts.URL].batchIncapable.Load() {
		t.Fatal("batch incapability did not latch on both replicas")
	}
	st := f.Stats()
	if st.BatchFlushes != 2 || st.BatchFallbacks != 2 {
		t.Fatalf("batch_flushes=%d batch_fallbacks=%d, want 2 probes and 2 fallbacks",
			st.BatchFlushes, st.BatchFallbacks)
	}
	if singles.Load() != 3 {
		t.Fatalf("singleton endpoint saw %d calls, want 3", singles.Load())
	}
}

// TestFrontBatchItemDigestMismatchFallsBack checks per-item verification: a
// damaged item inside an otherwise healthy envelope is re-dispatched as a
// singleton (correct bytes), its sibling is served from the batch, and the
// integrity counter records the rejection.
func TestFrontBatchItemDigestMismatchFallsBack(t *testing.T) {
	leakcheck.Check(t)
	var singles, batches atomic.Int64
	h := batchCapableHandler(&singles, &batches, nil, 0)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 2 * time.Second
		cfg.BatchMax = 2
	})
	bodies := bodiesSameGroup(t, f, 2)

	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			res, err := f.Dispatch(context.Background(), body)
			if err != nil {
				t.Errorf("Dispatch: %v", err)
				return
			}
			checkBatchResult(t, res, body)
		}(body)
	}
	wg.Wait()

	st := f.Stats()
	if st.IntegrityFails < 1 {
		t.Fatal("damaged item digest did not count as an integrity failure")
	}
	if st.BatchFallbacks != 1 || singles.Load() != 1 {
		t.Fatalf("batch_fallbacks=%d singleton calls=%d, want exactly the damaged item (1 and 1)",
			st.BatchFallbacks, singles.Load())
	}
	if batches.Load() != 1 {
		t.Fatalf("backends saw %d batch calls, want 1", batches.Load())
	}
}

// TestFrontBatchSkipsUnbatchable checks adaptive-mode and unparseable bodies
// bypass the batcher entirely even when it is enabled.
func TestFrontBatchSkipsUnbatchable(t *testing.T) {
	leakcheck.Check(t)
	var singles, batches atomic.Int64
	h := batchCapableHandler(&singles, &batches, nil, -1)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 50 * time.Millisecond
	})

	for _, body := range [][]byte{
		[]byte(`{"mix":"Jsb(6,3,3)","seed":1,"mode":"adaptive"}`),
		[]byte(`not json at all`),
	} {
		res, err := f.Dispatch(context.Background(), body)
		if err != nil {
			t.Fatalf("Dispatch(%q): %v", body, err)
		}
		checkBatchResult(t, res, body)
	}
	if singles.Load() != 2 || batches.Load() != 0 {
		t.Fatalf("singles=%d batches=%d, want 2 and 0 (both bodies unbatchable)",
			singles.Load(), batches.Load())
	}
}

// TestFrontBatchShardKeyConflictSplits checks two distinct bodies sharing a
// shard key never share a batch: the backend rejects fingerprint twins per
// batch, so the second body dispatches as a singleton instead of earning a
// 400 it would not get alone.
func TestFrontBatchShardKeyConflictSplits(t *testing.T) {
	leakcheck.Check(t)
	var singles, batches, items atomic.Int64
	h := batchCapableHandler(&singles, &batches, &items, -1)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = 60 * time.Millisecond
		cfg.BatchMax = 8
	})

	// Same "mix|seed" shard key, different bytes.
	twinA := []byte(`{"mix":"Jsb(6,3,3)","seed":1}`)
	twinB := []byte(`{"mix":"Jsb(6,3,3)","seed":1,"samples":3}`)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := f.Dispatch(context.Background(), twinA)
		if err != nil {
			t.Errorf("Dispatch twinA: %v", err)
			return
		}
		checkBatchResult(t, res, twinA)
	}()
	// Wait until twinA is queued so the conflict is guaranteed to be seen.
	deadline := time.Now().Add(time.Second)
	for {
		f.batcher.mu.Lock()
		queued := 0
		for _, g := range f.batcher.groups {
			queued += len(g.items)
		}
		f.batcher.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("twinA never reached the accumulator")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := f.Dispatch(context.Background(), twinB)
	if err != nil {
		t.Fatalf("Dispatch twinB: %v", err)
	}
	checkBatchResult(t, res, twinB)
	wg.Wait()

	if items.Load() != 1 || singles.Load() != 1 {
		t.Fatalf("batched items=%d singleton calls=%d, want the twins split 1 and 1",
			items.Load(), singles.Load())
	}
}

// TestFrontBatchCloseFailsQueued checks shutdown ordering: a body waiting in
// an accumulator when the front closes gets a prompt error, not a hang, and
// no flush goroutine outlives Close (the package leak gate enforces it).
func TestFrontBatchCloseFailsQueued(t *testing.T) {
	leakcheck.Check(t)
	h := batchCapableHandler(nil, nil, nil, -1)
	a := newFakeBackend(t, h)
	b := newFakeBackend(t, h)
	f := newTestFront(t, []*fakeBackend{a, b}, func(cfg *Config) {
		cfg.BatchWindow = time.Hour // only Close can release the item
	})

	errC := make(chan error, 1)
	go func() {
		_, err := f.Dispatch(context.Background(), scheduleBody(1))
		errC <- err
	}()
	deadline := time.Now().Add(time.Second)
	for {
		f.batcher.mu.Lock()
		queued := len(f.batcher.groups)
		f.batcher.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("body never reached the accumulator")
		}
		time.Sleep(time.Millisecond)
	}
	f.Close()
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("queued dispatch returned nil error across Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued dispatch hung across Close")
	}
}
