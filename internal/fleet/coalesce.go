package fleet

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller shares — singleflight across the
// wire. Safe because backend responses are deterministic: the followers
// receive exactly the bytes they would have fetched themselves.
//
// Unlike golang.org/x/sync/singleflight (kept out by the no-dependencies
// rule) the followers wait with their own context: a follower whose client
// disconnects stops waiting without disturbing the leader, and the leader
// runs on a context detached from any one client, so the earliest-arriving
// client cancelling cannot starve the rest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress execution.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Do returns the result of fn for key, executing fn only in the first
// caller (the leader) and handing every concurrent duplicate (follower) the
// same result. shared reports whether this caller was a follower. A
// follower whose ctx fires first returns the context error instead.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*Result, error)) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
