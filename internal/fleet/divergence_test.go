package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// digestHandler answers with body and a valid integrity envelope.
func digestHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(integrity.Header, integrity.Digest([]byte(body)))
		io.WriteString(w, body)
	}
}

// corruptDigestHandler answers with body but a digest stamped over different
// bytes — what a wire flip between backend and front looks like.
func corruptDigestHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(integrity.Header, integrity.Digest([]byte(body+"x")))
		io.WriteString(w, body)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// bodyWithOrder scans seeds until the candidate order matches want exactly.
func bodyWithOrder(t *testing.T, f *Front, want []string) []byte {
	t.Helper()
	for seed := uint64(0); seed < 100_000; seed++ {
		body := scheduleBody(seed)
		cands := f.candidates(ShardKey(body))
		if len(cands) != len(want) {
			continue
		}
		ok := true
		for i := range want {
			if cands[i].base != want[i] {
				ok = false
				break
			}
		}
		if ok {
			return body
		}
	}
	t.Fatal("no seed yields the wanted candidate order")
	return nil
}

// TestFrontCorrupt200NeverReachesClient is the envelope contract: a 200
// whose body fails its digest is treated as a transport failure — failed
// over, counted — and the client receives the next replica's verified body.
func TestFrontCorrupt200NeverReachesClient(t *testing.T) {
	leakcheck.Check(t)
	good := `{"ok":1}`
	a := newFakeBackend(t, corruptDigestHandler(good))
	b := newFakeBackend(t, digestHandler(good))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Backend != b.ts.URL {
		t.Fatalf("served by %s, want failover to %s", res.Backend, b.ts.URL)
	}
	if string(res.Body) != good {
		t.Fatalf("body %q, want %q", res.Body, good)
	}
	if err := integrity.Check(res.Header.Get(integrity.Header), res.Body); err != nil {
		t.Fatalf("relayed digest: %v", err)
	}
	st := f.Stats()
	if st.IntegrityFails != 1 {
		t.Fatalf("integrity failures = %d, want 1", st.IntegrityFails)
	}
}

// TestFrontRequireDigestRejectsBareBackends checks the strict mode: with
// RequireDigest a backend that never stamps is a failure, without it the
// same backend serves fine.
func TestFrontRequireDigestRejectsBareBackends(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`)) // no digest header
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	strict := newTestFront(t, []*fakeBackend{a, b}, func(c *Config) { c.RequireDigest = true })
	if _, err := strict.Dispatch(context.Background(), scheduleBody(1)); err == nil {
		t.Fatal("RequireDigest accepted an unstamped reply")
	}
	if st := strict.Stats(); st.IntegrityFails == 0 {
		t.Fatal("strict front counted no integrity failures")
	}

	lenient := newTestFront(t, []*fakeBackend{a, b}, nil)
	if _, err := lenient.Dispatch(context.Background(), scheduleBody(1)); err != nil {
		t.Fatalf("lenient front rejected an unstamped reply: %v", err)
	}
}

// TestFrontOversizedResponseIsFailureNotTruncation checks the bounded-read
// satellite: a body over the cap fails over instead of being silently cut.
func TestFrontOversizedResponseIsFailureNotTruncation(t *testing.T) {
	leakcheck.Check(t)
	huge := strings.Repeat("x", maxResponseBytes+1)
	good := `{"ok":1}`
	a := newFakeBackend(t, okHandler(huge))
	b := newFakeBackend(t, digestHandler(good))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)

	body := bodyWithPrimary(t, f, a.ts.URL)
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Backend != b.ts.URL || string(res.Body) != good {
		t.Fatalf("backend %s served %d bytes; want failover to %s with %q", res.Backend, len(res.Body), b.ts.URL, good)
	}
}

// TestFrontAttemptTimeoutEscapesSlowLoris checks a stalled backend costs one
// AttemptTimeout before failover, not the whole request deadline.
func TestFrontAttemptTimeoutEscapesSlowLoris(t *testing.T) {
	leakcheck.Check(t)
	good := `{"ok":1}`
	slow := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first (as real sosd does) so the server's
		// background read notices the front hanging up and cancels
		// r.Context(); otherwise the handler pins until the long timer and
		// the test's server-close cleanup waits it out.
		io.ReadAll(r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	})
	fast := newFakeBackend(t, digestHandler(good))
	f := newTestFront(t, []*fakeBackend{slow, fast}, func(c *Config) {
		c.AttemptTimeout = 100 * time.Millisecond
	})

	body := bodyWithPrimary(t, f, slow.ts.URL)
	start := time.Now()
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Backend != fast.ts.URL {
		t.Fatalf("served by %s, want %s", res.Backend, fast.ts.URL)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("failover took %s; attempt timeout did not bite", d)
	}
}

// TestFrontAuditQuarantineAndReadmit drives the full state machine: a
// replica serving divergent (but validly stamped) answers is convicted by
// audit + third-replica arbitration within QuarantineAfter observations,
// excluded from placement, surfaced on /v1/quarantine, and readmitted after
// ReadmitAfter clean probes once it recovers.
func TestFrontAuditQuarantineAndReadmit(t *testing.T) {
	leakcheck.Check(t)
	good, bad := `{"ok":1}`, `{"ok":2}`
	a := newFakeBackend(t, digestHandler(good))
	c := newFakeBackend(t, digestHandler(bad)) // the diverging replica
	b := newFakeBackend(t, digestHandler(good))
	f := newTestFront(t, []*fakeBackend{a, c, b}, func(cfg *Config) {
		cfg.Replicas = 3
		cfg.Divergence = DivergenceConfig{AuditRate: 1, Seed: 7, QuarantineAfter: 3, ReadmitAfter: 2}
	})

	// Candidate order [a, c, b]: a serves, the audit re-asks c (divergent),
	// and arbitration asks b, which sides with a — so c takes the blame.
	body := bodyWithOrder(t, f, []string{a.ts.URL, c.ts.URL, b.ts.URL})

	for i := 0; i < 3; i++ {
		res, err := f.Dispatch(context.Background(), body)
		if err != nil {
			t.Fatalf("Dispatch %d: %v", i, err)
		}
		if string(res.Body) != good {
			t.Fatalf("Dispatch %d: divergent body reached the client: %q", i, res.Body)
		}
		// Audits run in the background; wait for this round's verdict so
		// observations arrive one per request, like the acceptance contract.
		want := uint64(i + 1)
		waitUntil(t, "audit verdict", func() bool { return f.Stats().DivergencesTotal >= want })
	}

	waitUntil(t, "quarantine", func() bool {
		cb := f.byBase[c.ts.URL]
		return cb.isQuarantined()
	})
	st := f.Stats()
	if st.AuditMismatches < 3 {
		t.Fatalf("audit mismatches = %d, want >= 3", st.AuditMismatches)
	}
	for _, bs := range st.Backends {
		if bs.Backend == c.ts.URL {
			if !bs.Quarantined || bs.Quarantines != 1 || bs.Divergences < 3 {
				t.Fatalf("diverging backend stats: %+v", bs)
			}
		} else if bs.Quarantined || bs.Divergences != 0 {
			t.Fatalf("innocent backend %s charged: %+v", bs.Backend, bs)
		}
	}

	// Placement exclusion: the quarantined replica is not even a last
	// resort for keys it used to serve.
	for _, cand := range f.candidates(ShardKey(body)) {
		if cand.base == c.ts.URL {
			t.Fatal("quarantined backend still in the candidate list")
		}
	}

	// /v1/quarantine surfaces it.
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/quarantine status %d", rec.Code)
	}
	var q struct {
		Quarantined int `json:"quarantined"`
		Backends    []struct {
			Backend     string `json:"backend"`
			Quarantined bool   `json:"quarantined"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatalf("decode /v1/quarantine: %v", err)
	}
	if q.Quarantined != 1 {
		t.Fatalf("/v1/quarantine reports %d quarantined, want 1", q.Quarantined)
	}

	// Recovery: the replica starts agreeing again; readmit probes ride the
	// audit draws and lift the quarantine after ReadmitAfter clean answers.
	c.set(digestHandler(good))
	waitUntil(t, "readmit", func() bool {
		if _, err := f.Dispatch(context.Background(), body); err != nil {
			t.Fatalf("Dispatch during recovery: %v", err)
		}
		return !f.byBase[c.ts.URL].isQuarantined()
	})
	for _, bs := range f.Stats().Backends {
		if bs.Backend == c.ts.URL && bs.QReadmits != 1 {
			t.Fatalf("readmitted backend stats: %+v", bs)
		}
	}
}

// TestFrontHedgeLoserDivergenceCompare checks the free probe: with
// CompareHedges, a hedge loser that completes with a divergent body is
// arbitrated and charged, while the client already got the winner's answer.
func TestFrontHedgeLoserDivergenceCompare(t *testing.T) {
	leakcheck.Check(t)
	good, bad := `{"ok":1}`, `{"ok":2}`
	slowBad := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond) // lose the hedge race, then diverge
		digestHandler(bad)(w, r)
	})
	fast := newFakeBackend(t, digestHandler(good))
	arb := newFakeBackend(t, digestHandler(good))
	f := newTestFront(t, []*fakeBackend{slowBad, fast, arb}, func(cfg *Config) {
		cfg.Replicas = 3
		cfg.HedgeMin = 30 * time.Millisecond
		cfg.HedgeMax = 30 * time.Millisecond // unwarmed tracker hedges here
		cfg.Divergence = DivergenceConfig{CompareHedges: true, QuarantineAfter: 3, ReadmitAfter: 2}
	})

	body := bodyWithPrimary(t, f, slowBad.ts.URL)
	res, err := f.Dispatch(context.Background(), body)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(res.Body) != good {
		t.Fatalf("client got %q, want the hedge winner's %q", res.Body, good)
	}
	waitUntil(t, "hedge-loser divergence observation", func() bool {
		for _, bs := range f.Stats().Backends {
			if bs.Backend == slowBad.ts.URL && bs.Divergences >= 1 {
				return true
			}
		}
		return false
	})
	for _, bs := range f.Stats().Backends {
		if bs.Backend != slowBad.ts.URL && bs.Divergences != 0 {
			t.Fatalf("innocent backend %s charged: %+v", bs.Backend, bs)
		}
	}
}
