package fleet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"symbios/internal/integrity"
	"symbios/internal/leakcheck"
)

// mixesBackend answers /v1/mixes with a fixed body and digest header (empty
// digest string means "send none").
func mixesBackend(t *testing.T, body []byte, digest string) *fakeBackend {
	t.Helper()
	return newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/mixes" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if digest != "" {
			w.Header().Set(integrity.Header, digest)
		}
		w.Write(body)
	})
}

func getMixes(t *testing.T, f *Front) *http.Response {
	t.Helper()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/mixes")
	if err != nil {
		t.Fatalf("GET /v1/mixes: %v", err)
	}
	return resp
}

// TestFrontMixesRelayExactCap checks the boundary of the relay cap: a body of
// exactly maxResponseBytes is relayed whole, digest header included — the
// one-past-the-cap read must flag overflow, not the cap itself.
func TestFrontMixesRelayExactCap(t *testing.T) {
	leakcheck.Check(t)
	body := bytes.Repeat([]byte("m"), maxResponseBytes)
	dig := integrity.Digest(body)
	a := mixesBackend(t, body, dig)
	f := newTestFront(t, []*fakeBackend{a}, nil)

	resp := getMixes(t, f)
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(data) != maxResponseBytes {
		t.Fatalf("exact-cap relay = %d with %d bytes, want 200 with %d", resp.StatusCode, len(data), maxResponseBytes)
	}
	if got := resp.Header.Get(integrity.Header); got != dig {
		t.Fatalf("relayed digest %q, want %q", got, dig)
	}
}

// TestFrontMixesOversizedBodyFails is the truncation regression: a backend
// body one byte over the cap must fail the candidate (here, 502 with no one
// else to try), never be silently truncated and relayed as a 200.
func TestFrontMixesOversizedBodyFails(t *testing.T) {
	leakcheck.Check(t)
	body := bytes.Repeat([]byte("m"), maxResponseBytes+1)
	a := mixesBackend(t, body, integrity.Digest(body))
	f := newTestFront(t, []*fakeBackend{a}, nil)

	resp := getMixes(t, f)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("oversized /v1/mixes relay = %d, want 502", resp.StatusCode)
	}
}

// TestFrontMixesCorruptDigestFails is the integrity regression: the mixes
// relay must hold backends to the same digest check as the schedule path, so
// a corrupt body is a failed candidate, not a relayed answer.
func TestFrontMixesCorruptDigestFails(t *testing.T) {
	leakcheck.Check(t)
	a := mixesBackend(t, []byte(`{"mixes":[]}`+"\n"), integrity.Digest([]byte("other bytes")))
	f := newTestFront(t, []*fakeBackend{a}, nil)

	resp := getMixes(t, f)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("corrupt-digest /v1/mixes relay = %d, want 502", resp.StatusCode)
	}
	if st := f.Stats(); st.IntegrityFails != 1 {
		t.Fatalf("integrity_failures = %d, want 1", st.IntegrityFails)
	}
}

// TestFrontMixesMissingDigest checks the missing-digest policy matches the
// schedule path: tolerated by default (pre-envelope backends), a failure
// under RequireDigest.
func TestFrontMixesMissingDigest(t *testing.T) {
	leakcheck.Check(t)
	body := []byte(`{"mixes":[]}` + "\n")

	lax := newTestFront(t, []*fakeBackend{mixesBackend(t, body, "")}, nil)
	resp := getMixes(t, lax)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("missing digest under lax front = %d, want 200", resp.StatusCode)
	}

	strict := newTestFront(t, []*fakeBackend{mixesBackend(t, body, "")}, func(cfg *Config) {
		cfg.RequireDigest = true
	})
	resp = getMixes(t, strict)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("missing digest under RequireDigest = %d, want 502", resp.StatusCode)
	}
}

// TestFrontSynthesizedBodiesCarryDigest checks every body the front writes
// itself — operational endpoints, error bodies, the drain refusal, and the
// breaker-open shed — is digest-stamped and verifies, so a strict client can
// hold the front to the same integrity contract as the backends.
func TestFrontSynthesizedBodiesCarryDigest(t *testing.T) {
	leakcheck.Check(t)
	a := newFakeBackend(t, okHandler(`{"ok":1}`))
	b := newFakeBackend(t, okHandler(`{"ok":1}`))
	f := newTestFront(t, []*fakeBackend{a, b}, nil)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	verify := func(resp *http.Response, wantStatus int, where string) {
		t.Helper()
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s = %d, want %d", where, resp.StatusCode, wantStatus)
		}
		if err := integrity.Check(resp.Header.Get(integrity.Header), data); err != nil {
			t.Fatalf("%s digest: %v (body %q)", where, err, data)
		}
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	verify(get("/healthz"), http.StatusOK, "healthz")
	verify(get("/readyz"), http.StatusOK, "readyz")
	verify(get("/statz"), http.StatusOK, "statz")
	verify(get("/v1/quarantine"), http.StatusOK, "quarantine")

	// httpError path: an oversized request body earns a synthesized 400.
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json",
		bytes.NewReader(bytes.Repeat([]byte("x"), maxBodyBytes+1)))
	if err != nil {
		t.Fatalf("POST oversized: %v", err)
	}
	verify(resp, http.StatusBadRequest, "oversized 400")

	// Drain gate: the refusal is front-synthesized too.
	f.Draining()
	resp, err = ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(scheduleBody(1)))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	verify(resp, http.StatusServiceUnavailable, "draining 503")
	verify(get("/readyz"), http.StatusServiceUnavailable, "draining readyz")

	// The breaker-open shed body is synthesized off the HTTP path; check it
	// directly.
	shed := shedResult(errors.New("breaker open"), time.Second)
	if err := integrity.Check(shed.Header.Get(integrity.Header), shed.Body); err != nil {
		t.Fatalf("shedResult digest: %v", err)
	}
}
