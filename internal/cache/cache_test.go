package cache

import (
	"testing"
	"testing/quick"

	"symbios/internal/rng"
)

// TestHitAfterFill: an access misses cold, then hits.
func TestHitAfterFill(t *testing.T) {
	c := New(64, 2, 64)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x103f) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Error("next-line access hit cold")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v, want 2 hits 2 misses", s)
	}
}

// TestLRUReplacement: in a 2-way set, the least recently used way is the
// victim.
func TestLRUReplacement(t *testing.T) {
	c := New(1, 2, 64) // single set, 2 ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a) // fill way 0
	c.Access(b) // fill way 1
	c.Access(a) // touch a: b becomes LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a was evicted but is MRU")
	}
	if c.Probe(b) {
		t.Error("b survived but was LRU")
	}
	if !c.Probe(d) {
		t.Error("d not resident after fill")
	}
}

// TestProbeIsPure: Probe changes neither contents nor stats.
func TestProbeIsPure(t *testing.T) {
	c := New(16, 2, 64)
	c.Access(0x40)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		c.Probe(0x40)
		c.Probe(0x999940)
	}
	if c.Stats() != before {
		t.Error("Probe changed stats")
	}
	if !c.Probe(0x40) {
		t.Error("Probe lost a resident line")
	}
}

// TestFlush empties the cache.
func TestFlush(t *testing.T) {
	c := New(16, 2, 64)
	for i := uint64(0); i < 32; i++ {
		c.Access(i * 64)
	}
	if c.Resident() == 0 {
		t.Fatal("nothing resident before flush")
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Errorf("%d lines resident after flush", c.Resident())
	}
}

// TestResidencyBound is a property test: resident lines never exceed
// capacity, and hits+misses equals accesses.
func TestResidencyBound(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c := New(8, 2, 64)
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			c.Access(uint64(r.Intn(4096)) * 8)
		}
		s := c.Stats()
		return c.Resident() <= 16 && s.Accesses() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSmallWorkingSetAlwaysHits: a working set that fits is never evicted.
func TestSmallWorkingSetAlwaysHits(t *testing.T) {
	c := New(64, 2, 64) // 8 KB
	// Touch 4 KB repeatedly.
	for round := 0; round < 4; round++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	s := c.Stats()
	if s.Misses != 64 {
		t.Errorf("%d misses, want exactly 64 compulsory", s.Misses)
	}
}

// TestGeometryPanics: invalid geometry is rejected at construction.
func TestGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(3, 2, 64) },
		func() { New(16, 0, 64) },
		func() { New(16, 2, 48) },
		func() { NewTLB(2, 8192) },
		func() { NewTLB(24, 8192) },
		func() { NewTLB(128, 5000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}

// TestCapacityAccessors sanity-check the geometry accessors.
func TestCapacityAccessors(t *testing.T) {
	c := New(128, 4, 32)
	if c.Sets() != 128 || c.Assoc() != 4 || c.LineBytes() != 32 {
		t.Errorf("geometry accessors wrong: %d/%d/%d", c.Sets(), c.Assoc(), c.LineBytes())
	}
	if c.CapacityBytes() != 128*4*32 {
		t.Errorf("capacity %d", c.CapacityBytes())
	}
}

// TestResetStats preserves contents.
func TestResetStats(t *testing.T) {
	c := New(16, 2, 64)
	c.Access(0x80)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats not zeroed")
	}
	if !c.Probe(0x80) {
		t.Error("ResetStats evicted contents")
	}
}

// TestHitRate covers the Stats helpers.
func TestHitRate(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate %f", s.HitRate())
	}
	if (Stats{}).HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
}
