package cache

import (
	"testing"

	"symbios/internal/rng"
)

// TestTLBHitAfterFill: translations are cached per page.
func TestTLBHitAfterFill(t *testing.T) {
	tlb := NewTLB(16, 8192)
	if tlb.Access(0x2000) {
		t.Error("cold translation hit")
	}
	if !tlb.Access(0x2000) || !tlb.Access(0x3fff) {
		t.Error("same-page access missed")
	}
	if tlb.Access(0x4000) {
		t.Error("next page hit cold")
	}
}

// TestTLBSetLRU: within a set, the least recently used entry is evicted.
func TestTLBSetLRU(t *testing.T) {
	tlb := NewTLB(16, 8192) // 4 sets x 4 ways
	// Five pages mapping to set 0 (vpn multiples of 4): the first
	// becomes LRU and is evicted by the fifth.
	pages := []uint64{0, 4, 8, 12, 16}
	for _, p := range pages {
		tlb.Access(p * 8192)
	}
	if tlb.Access(pages[0] * 8192) {
		t.Error("LRU entry survived a full-set replacement cycle")
	}
	if !tlb.Access(pages[4] * 8192) {
		t.Error("most recent entry evicted")
	}
}

// TestTLBCapacityReach: a footprint within reach never misses after
// warmup.
func TestTLBCapacityReach(t *testing.T) {
	tlb := NewTLB(64, 8192) // 512 KB reach
	touch := func() {
		for addr := uint64(0); addr < 64*8192; addr += 8192 {
			tlb.Access(addr)
		}
	}
	touch()
	tlb.ResetStats()
	touch()
	if s := tlb.Stats(); s.Misses != 0 {
		t.Errorf("%d misses on a resident footprint", s.Misses)
	}
}

// TestTLBFlush empties the TLB.
func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8, 8192)
	tlb.Access(0)
	tlb.Flush()
	if tlb.Access(0) {
		t.Error("translation survived flush")
	}
}

// TestTLBThrash: random pages far beyond reach mostly miss.
func TestTLBThrash(t *testing.T) {
	tlb := NewTLB(16, 8192)
	r := rng.New(2)
	tlbWarm := 0
	for i := 0; i < 10_000; i++ {
		if tlb.Access(uint64(r.Intn(4096)) * 8192) {
			tlbWarm++
		}
	}
	if rate := float64(tlbWarm) / 10_000; rate > 0.05 {
		t.Errorf("hit rate %.3f on a 256x-oversubscribed TLB", rate)
	}
}
