package cache

import "fmt"

// TLB is a set-associative translation lookaside buffer with LRU
// replacement within each set, keyed by virtual page number. (Hardware TLBs
// are often fully associative; a 4-way TLB of the same capacity behaves
// nearly identically for the workloads here and probes in constant time.)
type TLB struct {
	pageShift uint
	setMask   uint64
	assoc     int
	entries   []tlbEntry // sets*assoc, set-major
	clock     uint64
	stats     Stats
}

type tlbEntry struct {
	vpn   uint64
	stamp uint64
	valid bool
}

// tlbAssoc is the fixed associativity.
const tlbAssoc = 4

// NewTLB constructs a TLB with the given entry count and page size.
// entries must be a multiple of the associativity (4) with a power-of-two
// set count; pageBytes must be a power of two.
func NewTLB(entries, pageBytes int) *TLB {
	if entries < tlbAssoc {
		panic("cache: TLB entries < associativity")
	}
	sets := entries / tlbAssoc
	if sets*tlbAssoc != entries || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: TLB entries %d must be 4 x power-of-two", entries))
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("cache: pageBytes %d not a power of two", pageBytes))
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	return &TLB{
		pageShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     tlbAssoc,
		entries:   make([]tlbEntry, entries),
	}
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.entries) }

// Stats returns the event counts so far.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters without touching contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Access translates addr, filling the entry on a miss. Returns hit.
func (t *TLB) Access(addr uint64) bool {
	vpn := addr >> t.pageShift
	set := int(vpn&t.setMask) * t.assoc
	ways := t.entries[set : set+t.assoc]
	t.clock++
	victim := 0
	for i := range ways {
		e := &ways[i]
		if e.valid && e.vpn == vpn {
			e.stamp = t.clock
			t.stats.Hits++
			return true
		}
		if !e.valid {
			victim = i
		} else if ways[victim].valid && e.stamp < ways[victim].stamp {
			victim = i
		}
	}
	t.stats.Misses++
	ways[victim] = tlbEntry{vpn: vpn, stamp: t.clock, valid: true}
	return false
}

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}
