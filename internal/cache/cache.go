// Package cache implements the simulated memory hierarchy: set-associative
// LRU caches (L1 instruction, L1 data, unified L2), and a fully associative
// data TLB.
//
// All levels are shared between hardware contexts, as on the modeled SMT
// processor. Jobs occupy disjoint virtual regions (see internal/trace), so
// coscheduled jobs interfere through set-index conflicts and capacity
// pressure — the "cache sweeping" interaction the paper discusses — and a
// job whose lines were evicted while it was swapped out pays cache coldstart
// costs when it returns (Section 8).
package cache

import "fmt"

// line is one cache line: a tag plus an LRU stamp. valid is folded into
// tag != 0 being insufficient (tag 0 is legal), so track explicitly.
type line struct {
	tag   uint64
	stamp uint64
	valid bool
}

// Stats counts cache events since construction or the last reset.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/accesses, or 1 when there were no accesses.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 1
	}
	return float64(s.Hits) / float64(a)
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	sets      int
	assoc     int
	lineShift uint
	setMask   uint64
	lines     []line // sets*assoc, set-major
	clock     uint64
	stats     Stats
}

// New constructs a cache. sets and lineBytes must be powers of two and
// assoc >= 1; otherwise New panics, since geometry comes from a validated
// arch.Config.
func New(sets, assoc, lineBytes int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d not a power of two", sets))
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: lineBytes %d not a power of two", lineBytes))
	}
	if assoc < 1 {
		panic("cache: assoc < 1")
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     make([]line, sets*assoc),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// CapacityBytes returns the total capacity.
func (c *Cache) CapacityBytes() int { return c.sets * c.assoc * (1 << c.lineShift) }

// Stats returns the event counts so far.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// index returns the slice of ways for addr's set and addr's tag.
func (c *Cache) index(addr uint64) (ways []line, tag uint64) {
	blk := addr >> c.lineShift
	set := int(blk & c.setMask)
	return c.lines[set*c.assoc : (set+1)*c.assoc], blk >> 0
}

// Access looks up addr, allocating the line on a miss (evicting the LRU
// way). It returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	ways, tag := c.index(addr)
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].stamp = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].stamp < ways[victim].stamp || !ways[victim].valid {
			victim = i
		}
	}
	if !ways[victim].valid {
		// Prefer any invalid way over the LRU valid way.
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
		}
	}
	ways[victim] = line{tag: tag, stamp: c.clock, valid: true}
	return false
}

// Probe reports whether addr is resident without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	ways, tag := c.index(addr)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache (used to model a cold machine).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Resident returns the number of valid lines (test/diagnostic helper).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
