package cache

import (
	"testing"

	"symbios/internal/arch"
)

// TestHierarchyLatencies: the latency of a data access reflects the level
// that served it.
func TestHierarchyLatencies(t *testing.T) {
	cfg := arch.Default21264(2)
	h := NewHierarchy(cfg)

	// Cold: TLB miss + L1 miss + L2 miss => full memory latency.
	lat, l1 := h.DataAccess(0x10000)
	wantCold := cfg.L1DHitLatency + cfg.TLBMissPenalty + cfg.L2HitLatency + cfg.MemLatency
	if l1 || lat != wantCold {
		t.Errorf("cold access: latency %d hit=%v, want %d false", lat, l1, wantCold)
	}

	// Warm: everything hits.
	lat, l1 = h.DataAccess(0x10000)
	if !l1 || lat != cfg.L1DHitLatency {
		t.Errorf("warm access: latency %d hit=%v, want %d true", lat, l1, cfg.L1DHitLatency)
	}

	// Evict from L1 only: the line stays in L2, so a re-access pays the L2
	// latency but not memory. Two more lines mapping to the same L1 set
	// evict the first (2-way L1).
	setStride := uint64(cfg.L1DSets * cfg.L1DLineBytes)
	h.DataAccess(0x10000 + setStride)
	h.DataAccess(0x10000 + 2*setStride)
	lat, l1 = h.DataAccess(0x10000)
	if l1 {
		t.Fatal("line survived deliberate L1 eviction")
	}
	if lat != cfg.L1DHitLatency+cfg.L2HitLatency {
		t.Errorf("L2 hit latency %d, want %d", lat, cfg.L1DHitLatency+cfg.L2HitLatency)
	}
}

// TestInstAccessStalls: icache hits are free; misses stall by the serving
// level's latency.
func TestInstAccessStalls(t *testing.T) {
	cfg := arch.Default21264(2)
	h := NewHierarchy(cfg)
	if stall := h.InstAccess(0x4000); stall != cfg.L2HitLatency+cfg.MemLatency {
		t.Errorf("cold fetch stall %d, want %d", stall, cfg.L2HitLatency+cfg.MemLatency)
	}
	if stall := h.InstAccess(0x4000); stall != 0 {
		t.Errorf("warm fetch stall %d, want 0", stall)
	}
}

// TestHierarchyFlushAndReset covers the maintenance entry points.
func TestHierarchyFlushAndReset(t *testing.T) {
	h := NewHierarchy(arch.Default21264(2))
	h.DataAccess(0x8000)
	h.InstAccess(0x9000)
	h.ResetStats()
	if h.L1D.Stats() != (Stats{}) || h.L1I.Stats() != (Stats{}) || h.L2.Stats() != (Stats{}) || h.DTLB.Stats() != (Stats{}) {
		t.Error("ResetStats left counters")
	}
	h.Flush()
	if h.L1D.Resident() != 0 || h.L2.Resident() != 0 {
		t.Error("Flush left lines resident")
	}
	if _, hit := h.DataAccess(0x8000); hit {
		t.Error("data resident after flush")
	}
}
