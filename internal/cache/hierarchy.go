package cache

import "symbios/internal/arch"

// Hierarchy bundles the shared memory system: L1I, L1D, unified L2, and the
// data TLB, with the latencies from the architecture config.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	DTLB *TLB

	l1dHit  int
	l2Hit   int
	mem     int
	tlbMiss int
}

// NewHierarchy constructs the memory system for cfg.
func NewHierarchy(cfg arch.Config) *Hierarchy {
	return &Hierarchy{
		L1I:     New(cfg.L1ISets, cfg.L1IAssoc, cfg.L1ILineBytes),
		L1D:     New(cfg.L1DSets, cfg.L1DAssoc, cfg.L1DLineBytes),
		L2:      New(cfg.L2Sets, cfg.L2Assoc, cfg.L2LineBytes),
		DTLB:    NewTLB(cfg.DTLBEntries, cfg.PageBytes),
		l1dHit:  cfg.L1DHitLatency,
		l2Hit:   cfg.L2HitLatency,
		mem:     cfg.MemLatency,
		tlbMiss: cfg.TLBMissPenalty,
	}
}

// DataAccess performs a load/store lookup and returns the access latency and
// whether it hit in the L1 data cache. Stores are modeled as allocate-on-miss
// like loads (write-allocate), which is adequate for contention modeling.
func (h *Hierarchy) DataAccess(addr uint64) (latency int, l1Hit bool) {
	latency = h.l1dHit
	if !h.DTLB.Access(addr) {
		latency += h.tlbMiss
	}
	if h.L1D.Access(addr) {
		return latency, true
	}
	latency += h.l2Hit
	if h.L2.Access(addr) {
		return latency, false
	}
	latency += h.mem
	return latency, false
}

// InstAccess performs an instruction fetch lookup for a cache line and
// returns the extra stall (0 on an L1I hit).
func (h *Hierarchy) InstAccess(pc uint64) (stall int) {
	if h.L1I.Access(pc) {
		return 0
	}
	if h.L2.Access(pc) {
		return h.l2Hit
	}
	return h.l2Hit + h.mem
}

// Flush cold-starts the entire memory system.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.DTLB.Flush()
}

// ResetStats zeroes all counters without touching contents.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.DTLB.ResetStats()
}
