// Package faults is the deterministic fault-injection subsystem for the
// robustness studies. The paper's SOS scheduler assumes clean performance
// counter reads and a fixed jobmix; on real hardware counters are noisy,
// multiplexed and occasionally lost, and Section 6 worries explicitly about
// "coping with a changing job mix". This package corrupts the *scheduler's
// view* of the machine — never the machine itself — so an experiment can ask
// how much corruption each predictor tolerates before SOS does worse than
// round-robin, and whether the adaptive scheduler detects and recovers.
//
// Two fault families are modeled:
//
//   - Counter faults (Injector, implementing core.CounterReader): Gaussian
//     multiplicative noise on every event counter, dropped reads that replay
//     the previous (stale) sample, sticky-zero counters that read zero from
//     the moment they stick, saturation clipping at a configurable ceiling,
//     and transient whole-read failures surfaced as core.ErrCounterRead for
//     the retry path to handle. The cycle count is exempt: it comes from the
//     timebase, not a multiplexed PMU counter.
//
//   - Jobmix churn (ChurnSpec): scripted mid-run job arrivals and departures
//     injected between timeslices, which the experiment layer converts into
//     concrete core.ChurnEvents (instantiating and calibrating the arriving
//     jobs).
//
// Everything is seeded via rng.Hash2 of (Config.Seed, read ordinal, field),
// a pure function of the injector's own read sequence, so a fault pattern is
// bit-identical at any worker count and any interleaving of other work.
package faults

import (
	"fmt"
	"math"
	"strings"

	"symbios/internal/core"
	"symbios/internal/counters"
	"symbios/internal/rng"
)

// Config selects the counter-fault model. The zero value injects nothing
// (Active reports false) and an Injector over it is a pure pass-through.
// The JSON tags are the wire names the sosd service accepts in a request's
// optional "fault" block (chaos mode).
type Config struct {
	// Seed drives every fault decision; two injectors with equal configs
	// produce identical fault patterns over identical read sequences.
	Seed uint64 `json:"seed,omitempty"`

	// NoiseSigma is the standard deviation of the Gaussian multiplicative
	// noise applied to each event counter: observed = true * (1 + σ·g),
	// clamped at zero. σ=0.05 models healthy multiplexed counters; σ=0.4 is
	// a badly oversubscribed PMU.
	NoiseSigma float64 `json:"noise_sigma,omitempty"`

	// DropRate is the probability a read is lost and the previous observed
	// sample is returned instead (stale data; the first read drops to an
	// all-zero sample).
	DropRate float64 `json:"drop_rate,omitempty"`

	// StickyRate is the per-read probability that one event counter (chosen
	// deterministically) sticks at zero for the rest of the run.
	StickyRate float64 `json:"sticky_rate,omitempty"`

	// SaturateAt, when nonzero, clips every event counter at this ceiling,
	// modeling narrow hardware counters that peg at full scale.
	SaturateAt uint64 `json:"saturate_at,omitempty"`

	// FailRate is the probability a read fails outright, surfaced as
	// core.ErrCounterRead; the hardened scheduler retries these with
	// bounded backoff.
	FailRate float64 `json:"fail_rate,omitempty"`
}

// Active reports whether the config injects any fault at all.
func (c Config) Active() bool {
	return c.NoiseSigma > 0 || c.DropRate > 0 || c.StickyRate > 0 ||
		c.SaturateAt > 0 || c.FailRate > 0
}

// String renders the non-zero fault knobs, for table labels.
func (c Config) String() string {
	if !c.Active() {
		return "clean"
	}
	var parts []string
	if c.NoiseSigma > 0 {
		parts = append(parts, fmt.Sprintf("σ=%.2f", c.NoiseSigma))
	}
	if c.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", c.DropRate))
	}
	if c.StickyRate > 0 {
		parts = append(parts, fmt.Sprintf("stick=%.2f", c.StickyRate))
	}
	if c.SaturateAt > 0 {
		parts = append(parts, fmt.Sprintf("clip=%d", c.SaturateAt))
	}
	if c.FailRate > 0 {
		parts = append(parts, fmt.Sprintf("fail=%.2f", c.FailRate))
	}
	return strings.Join(parts, " ")
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	// Reads is the total number of Observe calls.
	Reads uint64
	// Drops counts reads replaced by the previous (stale) sample.
	Drops uint64
	// Failures counts reads surfaced as core.ErrCounterRead.
	Failures uint64
	// Stuck is the number of counters currently sticky at zero.
	Stuck int
	// Clipped counts individual counter values clipped at SaturateAt.
	Clipped uint64
}

// Salt labels for the per-read decision streams; each decision draws from an
// independent hash stream so enabling one fault mode never perturbs another.
const (
	saltFail  = 0x0fa1
	saltDrop  = 0x0d20
	saltStick = 0x057c
	saltNoise = 0x0a01 // base; field index added per counter
)

// Injector corrupts counter reads per a Config. It implements
// core.CounterReader; attach it with Machine.SetCounterReader. An Injector
// is stateful (read ordinal, stale sample, stuck set) and must not be shared
// between machines — give every machine its own, which also keeps fault
// patterns independent of worker scheduling.
type Injector struct {
	cfg   Config
	reads uint64
	last  counters.Set
	stuck []bool // indexed like counters.Set.EventFields
	stats Stats
}

// New returns an injector over cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg}
}

// Stats returns the fault counts delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// draw returns the uniform deviate of stream salt at the current read.
func (in *Injector) draw(ord uint64, salt uint64) float64 {
	return rng.Float01(rng.Hash2(in.cfg.Seed, ord, salt))
}

// gaussian returns a standard normal deviate for (ord, field) by Box-Muller
// over two independent hash streams.
func (in *Injector) gaussian(ord, field uint64) float64 {
	u1 := rng.Float01(rng.Hash2(in.cfg.Seed, ord, saltNoise+2*field))
	u2 := rng.Float01(rng.Hash2(in.cfg.Seed, ord, saltNoise+2*field+1))
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Observe corrupts one interval delta. The returned set's Cycles always
// carries the true cycle count (the timebase is not a PMU counter); event
// counters are subject to failure, drop, sticky-zero, noise and clipping, in
// that order. The observed (post-fault) sample becomes the stale replay
// value for subsequent drops, as a real sampling buffer would hold the last
// value that arrived.
func (in *Injector) Observe(d counters.Set) (counters.Set, error) {
	ord := in.reads
	in.reads++
	in.stats.Reads++
	if !in.cfg.Active() {
		return d, nil
	}

	if in.cfg.FailRate > 0 && in.draw(ord, saltFail) < in.cfg.FailRate {
		in.stats.Failures++
		return counters.Set{}, fmt.Errorf("faults: read %d: %w", ord, core.ErrCounterRead)
	}

	// A sticky event fires even on dropped reads: the counter is broken
	// from this moment, whether or not this particular sample arrives.
	if in.cfg.StickyRate > 0 && in.draw(ord, saltStick) < in.cfg.StickyRate {
		var probe counters.Set
		n := len(probe.EventFields())
		if in.stuck == nil {
			in.stuck = make([]bool, n)
		}
		pick := int(rng.Hash2(in.cfg.Seed, ord, saltStick+1) % uint64(n))
		if !in.stuck[pick] {
			in.stuck[pick] = true
			in.stats.Stuck++
		}
	}

	if in.cfg.DropRate > 0 && in.draw(ord, saltDrop) < in.cfg.DropRate {
		in.stats.Drops++
		out := in.last // zero Set before the first successful read
		out.Cycles = d.Cycles
		return out, nil
	}

	out := d
	fields := out.EventFields()
	for i, p := range fields {
		if in.stuck != nil && in.stuck[i] {
			*p = 0
			continue
		}
		if in.cfg.NoiseSigma > 0 {
			factor := 1 + in.cfg.NoiseSigma*in.gaussian(ord, uint64(i))
			if factor < 0 {
				factor = 0
			}
			*p = uint64(math.Round(float64(*p) * factor))
		}
		if in.cfg.SaturateAt > 0 && *p > in.cfg.SaturateAt {
			*p = in.cfg.SaturateAt
			in.stats.Clipped++
		}
	}
	in.last = out
	return out, nil
}

// ChurnSpec scripts one jobmix change by benchmark name, to be fired when
// the symbios phase reaches a fraction of its slice budget. The experiment
// layer resolves specs into concrete core.ChurnEvents — instantiating the
// arriving job and calibrating its solo rate — because job construction
// needs the workload registry and a calibration machine, which the scheduler
// core deliberately knows nothing about.
type ChurnSpec struct {
	// AtFraction of the symbios slice budget at which the event fires, in
	// (0, 1).
	AtFraction float64
	// DepartJob is the job ID to remove, or -1 for none.
	DepartJob int
	// ArriveBench is the benchmark name to add, or "" for none.
	ArriveBench string
}

// String renders the spec for event logs.
func (s ChurnSpec) String() string {
	var parts []string
	if s.DepartJob >= 0 {
		parts = append(parts, fmt.Sprintf("-job%d", s.DepartJob))
	}
	if s.ArriveBench != "" {
		parts = append(parts, "+"+s.ArriveBench)
	}
	return fmt.Sprintf("@%.2f %s", s.AtFraction, strings.Join(parts, " "))
}
