package faults

import (
	"errors"
	"reflect"
	"testing"

	"symbios/internal/core"
	"symbios/internal/counters"
)

// sample builds a counter delta with every event field distinct and nonzero,
// so any corruption of any field is visible.
func sample(ord uint64) counters.Set {
	var s counters.Set
	s.Cycles = 10_000 + ord
	for i, p := range s.EventFields() {
		*p = 1_000*uint64(i+1) + ord
	}
	return s
}

func TestInactiveConfigPassesThrough(t *testing.T) {
	in := New(Config{Seed: 1})
	for ord := uint64(0); ord < 10; ord++ {
		d := sample(ord)
		got, err := in.Observe(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("read %d: inactive injector altered the sample: %+v != %+v", ord, got, d)
		}
	}
	if st := in.Stats(); st.Reads != 10 || st.Drops+st.Failures+st.Clipped != 0 || st.Stuck != 0 {
		t.Errorf("inactive injector reported faults: %+v", st)
	}
}

func TestNoisePerturbsEventsNotCycles(t *testing.T) {
	in := New(Config{Seed: 7, NoiseSigma: 0.2})
	changed := false
	for ord := uint64(0); ord < 20; ord++ {
		d := sample(ord)
		got, err := in.Observe(d)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != d.Cycles {
			t.Fatalf("read %d: noise touched the timebase: %d != %d", ord, got.Cycles, d.Cycles)
		}
		tf, of := d.EventFields(), got.EventFields()
		for i := range tf {
			if *of[i] != *tf[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("σ=0.2 noise never perturbed any event counter over 20 reads")
	}
}

func TestDropReplaysStaleSample(t *testing.T) {
	in := New(Config{Seed: 3, DropRate: 1})
	d0 := sample(0)
	got, err := in.Observe(d0)
	if err != nil {
		t.Fatal(err)
	}
	// Every read drops; the first has nothing to replay, so all events read
	// zero while the timebase stays live.
	if got.Cycles != d0.Cycles {
		t.Errorf("dropped read lost the timebase: %d != %d", got.Cycles, d0.Cycles)
	}
	for i, p := range got.EventFields() {
		if *p != 0 {
			t.Errorf("first drop, field %d: got %d, want 0 (no stale sample yet)", i, *p)
		}
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Errorf("Drops = %d, want 1", st.Drops)
	}

	// With drops only part of the time, a dropped read replays the last
	// sample that did arrive.
	in2 := New(Config{Seed: 3, DropRate: 0.5})
	var lastDelivered counters.Set
	sawReplay := false
	for ord := uint64(0); ord < 50; ord++ {
		d := sample(ord)
		before := in2.Stats().Drops
		got, err := in2.Observe(d)
		if err != nil {
			t.Fatal(err)
		}
		if in2.Stats().Drops > before {
			want := lastDelivered
			want.Cycles = d.Cycles
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("read %d: drop did not replay the previous sample", ord)
			}
			sawReplay = true
		} else {
			lastDelivered = got
		}
	}
	if !sawReplay {
		t.Error("DropRate=0.5 produced no drop in 50 reads")
	}
}

func TestStickyCountersReadZero(t *testing.T) {
	in := New(Config{Seed: 11, StickyRate: 1})
	var got counters.Set
	var err error
	for ord := uint64(0); ord < 30; ord++ {
		got, err = in.Observe(sample(ord))
		if err != nil {
			t.Fatal(err)
		}
	}
	st := in.Stats()
	if st.Stuck == 0 {
		t.Fatal("StickyRate=1 stuck no counter in 30 reads")
	}
	zeros := 0
	for _, p := range got.EventFields() {
		if *p == 0 {
			zeros++
		}
	}
	if zeros < st.Stuck {
		t.Errorf("%d counters stuck but only %d read zero", st.Stuck, zeros)
	}
	if got.Cycles == 0 {
		t.Error("sticky fault zeroed the timebase")
	}
}

func TestSaturationClips(t *testing.T) {
	const ceil = 1_500
	in := New(Config{Seed: 5, SaturateAt: ceil})
	got, err := in.Observe(sample(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got.EventFields() {
		if *p > ceil {
			t.Errorf("field %d: %d exceeds the %d ceiling", i, *p, ceil)
		}
	}
	if in.Stats().Clipped == 0 {
		t.Error("no clips recorded despite values above the ceiling")
	}
	if got.Cycles != sample(0).Cycles {
		t.Error("clipping touched the timebase")
	}
}

func TestFailSurfacesErrCounterRead(t *testing.T) {
	in := New(Config{Seed: 9, FailRate: 1})
	_, err := in.Observe(sample(0))
	if !errors.Is(err, core.ErrCounterRead) {
		t.Fatalf("err = %v, want ErrCounterRead", err)
	}
	if st := in.Stats(); st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}

	in2 := New(Config{Seed: 9, FailRate: 0.3})
	fails := 0
	for ord := uint64(0); ord < 100; ord++ {
		if _, err := in2.Observe(sample(ord)); err != nil {
			if !errors.Is(err, core.ErrCounterRead) {
				t.Fatalf("read %d: err = %v, want ErrCounterRead", ord, err)
			}
			fails++
		}
	}
	if fails == 0 || fails == 100 {
		t.Errorf("FailRate=0.3 delivered %d/100 failures; want a strict subset", fails)
	}
}

// TestEveryFaultModeDeterministic: two injectors with equal configs fed the
// same read sequence produce bit-identical observations, errors and stats —
// the property the parallel determinism contract rests on. Each mode is
// exercised alone and all together.
func TestEveryFaultModeDeterministic(t *testing.T) {
	cfgs := map[string]Config{
		"noise":  {Seed: 21, NoiseSigma: 0.3},
		"drop":   {Seed: 21, DropRate: 0.4},
		"sticky": {Seed: 21, StickyRate: 0.2},
		"clip":   {Seed: 21, SaturateAt: 5_000},
		"fail":   {Seed: 21, FailRate: 0.2},
		"all": {Seed: 21, NoiseSigma: 0.3, DropRate: 0.2, StickyRate: 0.1,
			SaturateAt: 20_000, FailRate: 0.1},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			a, b := New(cfg), New(cfg)
			for ord := uint64(0); ord < 200; ord++ {
				d := sample(ord)
				ga, ea := a.Observe(d)
				gb, eb := b.Observe(d)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("read %d: error divergence: %v vs %v", ord, ea, eb)
				}
				if !reflect.DeepEqual(ga, gb) {
					t.Fatalf("read %d: observation divergence", ord)
				}
			}
			if !reflect.DeepEqual(a.Stats(), b.Stats()) {
				t.Fatalf("stats divergence: %+v vs %+v", a.Stats(), b.Stats())
			}
		})
	}
}

// TestSeedChangesPattern: different seeds must produce different fault
// patterns, or every cell of a sweep would see the same corruption.
func TestSeedChangesPattern(t *testing.T) {
	a := New(Config{Seed: 1, NoiseSigma: 0.3})
	b := New(Config{Seed: 2, NoiseSigma: 0.3})
	same := true
	for ord := uint64(0); ord < 20; ord++ {
		d := sample(ord)
		ga, _ := a.Observe(d)
		gb, _ := b.Observe(d)
		if !reflect.DeepEqual(ga, gb) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical noise over 20 reads")
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{}).String(); s != "clean" {
		t.Errorf("zero config renders %q, want \"clean\"", s)
	}
	c := Config{NoiseSigma: 0.25, FailRate: 0.1}
	if s := c.String(); s != "σ=0.25 fail=0.10" {
		t.Errorf("config renders %q", s)
	}
}
