package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"symbios/internal/leakcheck"
)

var errTransient = errors.New("transient")

// TestSleepContextCancelled checks a cancelled context ends the sleep early
// with the context's error and leaves no timer state behind (the drain path:
// Stop-then-consume when the tick races the cancellation). The leakcheck
// cleanup is what proves the "no timer goroutines" half.
func TestSleepContextCancelled(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// Many concurrent sleepers cancelled in bulk, the retry-storm shape:
	// every one must return promptly with ctx.Err.
	errs := make([]error, 64)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = SleepContext(ctx, time.Hour)
		}(i)
	}
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sleepers did not return within 5s")
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sleeper %d returned %v, want context.Canceled", i, err)
		}
	}
}

// TestSleepContextZeroAndExpired checks the degenerate inputs: a
// non-positive delay returns immediately with the context's current error,
// and an already-expired context never starts a timer.
func TestSleepContextZeroAndExpired(t *testing.T) {
	leakcheck.Check(t)
	if err := SleepContext(context.Background(), 0); err != nil {
		t.Fatalf("SleepContext(0) = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext(expired, 0) = %v, want context.Canceled", err)
	}
	if err := SleepContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext(expired, 1h) = %v, want context.Canceled", err)
	}
}

// TestDoCancelMidBackoffNoLeak drives real timer-based backoff (the default
// Sleep) and cancels mid-wait: Do must return the context error wrapping the
// last attempt's failure, and no timer goroutine may outlive the call.
func TestDoCancelMidBackoffNoLeak(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		result <- Do(ctx, RetryConfig{
			MaxAttempts: 3,
			BaseDelay:   time.Hour, // the backoff must come from ctx, not elapse
			Jitter:      func(int) float64 { return 0.999 },
		}, nil, nil, func(attempt int) error {
			if attempt == 0 {
				close(started)
			}
			return errTransient
		})
	}()
	<-started
	cancel()
	select {
	case err := <-result:
		if !errors.Is(err, context.Canceled) || !errors.Is(err, errTransient) {
			t.Fatalf("Do = %v, want context.Canceled wrapping errTransient", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return within 5s of cancellation")
	}
}

// instantSleep records requested delays without waiting.
type instantSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *instantSleep) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

// TestDoRetriesUntilSuccess checks a transient failure is retried and the
// eventual success is returned.
func TestDoRetriesUntilSuccess(t *testing.T) {
	sl := &instantSleep{}
	calls := 0
	err := Do(context.Background(), RetryConfig{MaxAttempts: 5, Sleep: sl.sleep}, nil, nil,
		func(attempt int) error {
			calls++
			if attempt < 2 {
				return errTransient
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(sl.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(sl.delays))
	}
}

// TestDoStopsOnNonRetryable checks the classifier short-circuits retries.
func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Do(context.Background(), RetryConfig{MaxAttempts: 5, Sleep: (&instantSleep{}).sleep}, nil,
		func(err error) bool { return errors.Is(err, errTransient) },
		func(int) error { calls++; return fatal })
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want fatal", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestDoExhaustsAttempts checks the last error surfaces when attempts run out.
func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryConfig{MaxAttempts: 3, Sleep: (&instantSleep{}).sleep}, nil, nil,
		func(int) error { calls++; return errTransient })
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want errTransient", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("attempt exhaustion mislabeled as budget exhaustion")
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestDoBudgetExhaustion checks a dry budget suppresses retries and the
// error matches both ErrBudgetExhausted and the underlying failure.
func TestDoBudgetExhaustion(t *testing.T) {
	// Ratio so small the single starting token is all the credit there is.
	budget := NewBudget(BudgetConfig{Ratio: 1e-9, Cap: 1})
	cfg := RetryConfig{MaxAttempts: 10, Sleep: (&instantSleep{}).sleep}
	calls := 0
	fail := func(int) error { calls++; return errTransient }

	// First call: 1 banked token allows exactly one retry, then dry.
	err := Do(context.Background(), cfg, budget, nil, fail)
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want ErrBudgetExhausted wrapping errTransient", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (one attempt + one budgeted retry)", calls)
	}

	// Second call: no credit left at all — fails after the first attempt.
	calls = 0
	err = Do(context.Background(), cfg, budget, nil, fail)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if budget.Exhausted() != 2 {
		t.Fatalf("Exhausted() = %d, want 2", budget.Exhausted())
	}
}

// TestBudgetDepositsEarnRetries checks successful traffic rebuilds credit at
// the configured ratio, bounded by the cap.
func TestBudgetDepositsEarnRetries(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 0.5, Cap: 2})
	if !b.TryWithdraw() { // spend the starting token
		t.Fatal("starting token missing")
	}
	if b.TryWithdraw() {
		t.Fatal("withdraw from empty budget succeeded")
	}
	b.Deposit()
	b.Deposit() // 1.0 banked
	if !b.TryWithdraw() {
		t.Fatal("two deposits at ratio 0.5 did not fund one retry")
	}
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

// TestBudgetPoolPerClient checks budgets are isolated per client key.
func TestBudgetPoolPerClient(t *testing.T) {
	p := NewBudgetPool(BudgetConfig{Ratio: 0.1, Cap: 5})
	a, b := p.Get("a"), p.Get("b")
	if a == b {
		t.Fatal("distinct clients share a budget")
	}
	if p.Get("a") != a {
		t.Fatal("repeat Get returned a different budget")
	}
	a.TryWithdraw()
	if !b.TryWithdraw() {
		t.Fatal("client a's withdrawal drained client b")
	}
}

// TestDoBackoffDeterministicJitter checks delays follow the injected jitter
// exactly: delay_k = jitter(k) * min(MaxDelay, Base<<k).
func TestDoBackoffDeterministicJitter(t *testing.T) {
	sl := &instantSleep{}
	cfg := RetryConfig{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
		Jitter:      func(int) float64 { return 0.5 },
		Sleep:       sl.sleep,
	}
	_ = Do(context.Background(), cfg, nil, nil, func(int) error { return errTransient })
	want := []time.Duration{
		5 * time.Millisecond,     // 0.5 * 10ms
		10 * time.Millisecond,    // 0.5 * 20ms
		12500 * time.Microsecond, // 0.5 * 25ms (capped)
	}
	if len(sl.delays) != len(want) {
		t.Fatalf("delays %v, want %v", sl.delays, want)
	}
	for i := range want {
		if sl.delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, sl.delays[i], want[i])
		}
	}
}

// TestDoHonorsContext checks a cancelled context ends the loop with the
// context error wrapping the last attempt's failure.
func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, RetryConfig{MaxAttempts: 10, Sleep: SleepContext, BaseDelay: time.Nanosecond}, nil, nil,
		func(int) error {
			calls++
			cancel()
			return errTransient
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want to wrap last attempt error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestNilBudgetUnlimited checks a nil *Budget never suppresses retries.
func TestNilBudgetUnlimited(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryConfig{MaxAttempts: 6, Sleep: (&instantSleep{}).sleep}, nil, nil,
		func(int) error { calls++; return errTransient })
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("nil budget reported exhaustion")
	}
	if calls != 6 {
		t.Fatalf("calls = %d, want 6", calls)
	}
	var b *Budget
	if !b.TryWithdraw() || b.Exhausted() != 0 || b.Tokens() != 0 {
		t.Fatal("nil budget methods not no-ops")
	}
	b.Deposit()
}

// TestBackoffDelayShape pins the exported full-jitter curve: the ceiling
// doubles per attempt up to MaxDelay, the jitter factor scales it, and a
// nil Jitter returns the raw ceiling.
func TestBackoffDelayShape(t *testing.T) {
	cfg := RetryConfig{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond}
	for attempt, want := range []time.Duration{
		10 * time.Millisecond, // 10 << 0
		20 * time.Millisecond, // 10 << 1
		40 * time.Millisecond, // 10 << 2
		45 * time.Millisecond, // capped
		45 * time.Millisecond, // stays capped
	} {
		if got := BackoffDelay(cfg, attempt); got != want {
			t.Fatalf("attempt %d: delay %s, want %s", attempt, got, want)
		}
	}
	half := cfg
	half.Jitter = func(int) float64 { return 0.5 }
	if got := BackoffDelay(half, 1); got != 10*time.Millisecond {
		t.Fatalf("jitter 0.5 attempt 1: %s, want 10ms", got)
	}
	zero := cfg
	zero.Jitter = func(int) float64 { return 0 }
	if got := BackoffDelay(zero, 3); got != 0 {
		t.Fatalf("jitter 0: %s, want 0 (full jitter may sleep nothing)", got)
	}
}
