package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// ErrBudgetExhausted marks a retry suppressed because the client's retry
// budget ran dry. The wrapped error chain also carries the last attempt's
// failure, so callers can classify both. Match with errors.Is.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// BudgetConfig tunes a per-client retry budget (a token bucket in the style
// of Finagle's RetryBudget): every first attempt deposits Ratio tokens, and
// every retry withdraws one, so a client's sustained retry volume is capped
// at Ratio times its request volume no matter how hard its requests fail.
type BudgetConfig struct {
	// Ratio is the retry credit earned per first attempt. Values <= 0
	// select 0.1 (one retry per ten requests, sustained).
	Ratio float64
	// Cap bounds the banked credit, so an idle client cannot save up a
	// retry storm. Values <= 0 select 10.
	Cap float64
}

// Budget is one client's retry allowance. The zero value is unusable; use
// NewBudget. A nil *Budget never limits retries.
type Budget struct {
	mu        sync.Mutex
	cfg       BudgetConfig
	tokens    float64
	exhausted uint64
}

// NewBudget returns a budget holding one initial token (a cold client may
// retry once before it has earned credit).
func NewBudget(cfg BudgetConfig) *Budget {
	if cfg.Ratio <= 0 {
		cfg.Ratio = 0.1
	}
	if cfg.Cap <= 0 {
		cfg.Cap = 10
	}
	return &Budget{cfg: cfg, tokens: 1}
}

// Deposit credits the budget for one first attempt.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Cap {
		b.tokens = b.cfg.Cap
	}
	b.mu.Unlock()
}

// TryWithdraw spends one token for a retry, reporting false (and counting
// the refusal) when the budget is dry.
func (b *Budget) TryWithdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted++
		return false
	}
	b.tokens--
	return true
}

// Exhausted returns how many retries the budget has refused.
func (b *Budget) Exhausted() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}

// Tokens returns the current banked credit (test and stats visibility).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// BudgetPool hands out one Budget per client key, creating them on demand.
type BudgetPool struct {
	mu  sync.Mutex
	cfg BudgetConfig
	m   map[string]*Budget
}

// NewBudgetPool returns an empty pool; every budget it creates uses cfg.
func NewBudgetPool(cfg BudgetConfig) *BudgetPool {
	return &BudgetPool{cfg: cfg, m: map[string]*Budget{}}
}

// Get returns the client's budget, creating it on first sight.
func (p *BudgetPool) Get(client string) *Budget {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.m[client]
	if !ok {
		b = NewBudget(p.cfg)
		p.m[client] = b
	}
	return b
}

// Exhausted sums the refused retries across every client in the pool.
func (p *BudgetPool) Exhausted() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, b := range p.m {
		n += b.Exhausted()
	}
	return n
}

// RetryConfig tunes Do.
type RetryConfig struct {
	// MaxAttempts caps total tries (the first attempt plus retries).
	// Values < 1 select 3.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (delay before retry k is
	// jitter * min(MaxDelay, BaseDelay<<k)). Values <= 0 select 10ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff delay. Values <= 0 select 1s.
	MaxDelay time.Duration
	// Jitter returns the full-jitter factor in [0,1) for attempt k. nil
	// draws from math/rand/v2; the service substitutes a request-seeded
	// function so backoff timing is deterministic per request.
	Jitter func(attempt int) float64
	// Sleep waits out one backoff delay, returning early with the context's
	// error if it fires first. nil selects a timer-based sleep; tests
	// substitute an instant one.
	Sleep func(ctx context.Context, d time.Duration) error
}

// SleepContext waits d honoring ctx — the default RetryConfig.Sleep. When
// the context fires first the timer is stopped *and drained*: Stop reports
// false if the timer already fired concurrently, in which case the pending
// tick is consumed so a cancelled backoff leaves no live timer and no
// buffered tick behind. Retry storms cancel in bulk (every in-flight
// request of a dying client at once), so the cleanup has to be airtight
// rather than "the GC will get it eventually".
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		if !t.Stop() {
			// The timer fired between ctx firing and Stop: drain the tick so
			// the timer is fully released. Nothing else reads t.C, so this
			// receive cannot block.
			<-t.C
		}
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn with full-jitter exponential backoff between attempts.
// retryable classifies which errors are worth retrying (nil retries
// everything); budget, when non-nil, is charged one deposit for the call
// and one withdrawal per retry — a dry budget ends the call with an error
// matching both ErrBudgetExhausted and the last attempt's error. A context
// that fires mid-backoff ends the call with the context's error (wrapping
// the last attempt's error when there is one).
func Do(ctx context.Context, cfg RetryConfig, budget *Budget, retryable func(error) bool, fn func(attempt int) error) error {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 10 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Second
	}
	if cfg.Jitter == nil {
		cfg.Jitter = func(int) float64 { return rand.Float64() }
	}
	if cfg.Sleep == nil {
		cfg.Sleep = SleepContext
	}
	budget.Deposit()
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("%w (last attempt: %w)", cerr, err)
			}
			return cerr
		}
		err = fn(attempt)
		if err == nil || (retryable != nil && !retryable(err)) {
			return err
		}
		if attempt+1 >= cfg.MaxAttempts {
			return err
		}
		if !budget.TryWithdraw() {
			return fmt.Errorf("%w: %w", ErrBudgetExhausted, err)
		}
		if serr := cfg.Sleep(ctx, BackoffDelay(cfg, attempt)); serr != nil {
			return fmt.Errorf("%w (last attempt: %w)", serr, err)
		}
	}
}

// BackoffDelay computes the full-jitter delay before the retry after
// attempt: Jitter(attempt) * min(MaxDelay, BaseDelay<<attempt). It is
// exported so callers with their own retry loops (the fleet's failover
// walk) share Do's backoff shape instead of reinventing it. Zero-valued
// BaseDelay/MaxDelay are NOT defaulted here — pass a fully resolved config.
func BackoffDelay(cfg RetryConfig, attempt int) time.Duration {
	ceil := cfg.BaseDelay
	for i := 0; i < attempt && ceil < cfg.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > cfg.MaxDelay {
		ceil = cfg.MaxDelay
	}
	if cfg.Jitter == nil {
		return ceil
	}
	return time.Duration(cfg.Jitter(attempt) * float64(ceil))
}
