package resilience

import (
	"sync"
	"time"
)

// BrownoutConfig tunes a Brownout degradation controller.
type BrownoutConfig struct {
	// Modes is the ladder length: modes run 0 (full service) through
	// Modes-1 (most degraded). Values < 2 select 3.
	Modes int
	// DownThreshold is the sojourn level that signals overload; sustained
	// exceedance steps the ladder down (mode number up). Values <= 0 select
	// 250ms.
	DownThreshold time.Duration
	// UpThreshold is the sojourn level that signals recovery; sustained
	// observation below it steps the ladder back up. It must sit strictly
	// below DownThreshold — the gap is the hysteresis band in which the
	// current mode holds. Values <= 0 select DownThreshold / 4.
	UpThreshold time.Duration
	// DownHold is how long sojourn must stay above DownThreshold before a
	// step down. Values <= 0 select 1s.
	DownHold time.Duration
	// UpHold is how long sojourn must stay at or below UpThreshold before a
	// step up; longer than DownHold so the ladder sheds fast and recovers
	// cautiously. Values <= 0 select 4 x DownHold.
	UpHold time.Duration
	// OnTransition, when non-nil, observes every mode change (from, to).
	// Called outside the controller lock.
	OnTransition func(from, to int)
	// Now substitutes the clock in tests; nil means time.Now.
	Now func() time.Time
}

// Brownout is a hysteresis state machine over measured queue sojourn that
// walks a degradation ladder: each Observe of a dequeue's queued time moves
// the mode at most one step, and only after the relevant threshold has held
// for its full hold window. Observations between the two thresholds reset
// both hold timers, so a load hovering at the boundary holds its mode
// instead of flapping. A nil *Brownout is a no-op pinned at mode 0.
type Brownout struct {
	cfg BrownoutConfig

	mu         sync.Mutex
	mode       int
	aboveSince time.Time
	belowSince time.Time
	stepDowns  uint64
	stepUps    uint64
}

// NewBrownout validates the config, fills defaults, and returns the
// controller at mode 0.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	if cfg.Modes < 2 {
		cfg.Modes = 3
	}
	if cfg.DownThreshold <= 0 {
		cfg.DownThreshold = 250 * time.Millisecond
	}
	if cfg.UpThreshold <= 0 || cfg.UpThreshold >= cfg.DownThreshold {
		cfg.UpThreshold = cfg.DownThreshold / 4
	}
	if cfg.DownHold <= 0 {
		cfg.DownHold = time.Second
	}
	if cfg.UpHold <= 0 {
		cfg.UpHold = 4 * cfg.DownHold
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Brownout{cfg: cfg}
}

// Observe feeds one sojourn measurement into the state machine.
func (b *Brownout) Observe(sojourn time.Duration) {
	if b == nil {
		return
	}
	now := b.cfg.Now()
	var trans [2]int
	fired := false

	b.mu.Lock()
	switch {
	case sojourn >= b.cfg.DownThreshold:
		b.belowSince = time.Time{}
		if b.aboveSince.IsZero() {
			b.aboveSince = now
		}
		if now.Sub(b.aboveSince) >= b.cfg.DownHold && b.mode < b.cfg.Modes-1 {
			trans = [2]int{b.mode, b.mode + 1}
			fired = true
			b.mode++
			b.stepDowns++
			b.aboveSince = now // a further step needs a fresh full hold
		}
	case sojourn <= b.cfg.UpThreshold:
		b.aboveSince = time.Time{}
		if b.belowSince.IsZero() {
			b.belowSince = now
		}
		if now.Sub(b.belowSince) >= b.cfg.UpHold && b.mode > 0 {
			trans = [2]int{b.mode, b.mode - 1}
			fired = true
			b.mode--
			b.stepUps++
			b.belowSince = now
		}
	default:
		// Hysteresis band: hold the mode, restart both hold timers.
		b.aboveSince = time.Time{}
		b.belowSince = time.Time{}
	}
	b.mu.Unlock()

	if fired && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(trans[0], trans[1])
	}
}

// Mode returns the current degradation mode (0 = full service).
func (b *Brownout) Mode() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mode
}

// BrownoutStats is a point-in-time controller tally.
type BrownoutStats struct {
	Mode      int    `json:"mode"`
	Modes     int    `json:"modes"`
	StepDowns uint64 `json:"step_downs"`
	StepUps   uint64 `json:"step_ups"`
}

// Stats returns the controller tallies so far.
func (b *Brownout) Stats() BrownoutStats {
	if b == nil {
		return BrownoutStats{Modes: 1}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrownoutStats{
		Mode:      b.mode,
		Modes:     b.cfg.Modes,
		StepDowns: b.stepDowns,
		StepUps:   b.stepUps,
	}
}
