package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueRunsWork checks a submitted task runs and its result returns.
func TestQueueRunsWork(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 2, Workers: 1})
	defer q.Drain(context.Background())
	ran := false
	if err := q.Do(context.Background(), func(context.Context) error { ran = true; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	want := errors.New("boom")
	if err := q.Do(context.Background(), func(context.Context) error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do err = %v, want boom", err)
	}
}

// TestQueueSaturationSheds checks a full queue rejects immediately with
// ErrSaturated instead of blocking, and depth stays bounded.
func TestQueueSaturationSheds(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 2, Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	block := func(context.Context) error { <-release; return nil }
	// One task occupies the worker...
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = q.Do(context.Background(), func(context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	// ...then two more fill the queue while the worker is pinned.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _ = q.Do(context.Background(), block) }()
	}
	waitFor(t, func() bool { return q.Stats().Depth == 2 })
	start := time.Now()
	err := q.Do(context.Background(), block)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("Do on full queue err = %v, want ErrSaturated", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("saturation rejection blocked for %v", elapsed)
	}
	close(release)
	wg.Wait()
	s := q.Stats()
	if s.MaxDepth > s.Cap {
		t.Fatalf("MaxDepth %d exceeds Cap %d", s.MaxDepth, s.Cap)
	}
	if s.Rejected != 1 || s.Submitted != 3 {
		t.Fatalf("stats %+v, want 3 submitted / 1 rejected", s)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestQueueDeadlineReturnsEarly checks a caller whose context fires while
// queued gets the context error without waiting for a worker, and the
// worker later skips the expired task.
func TestQueueDeadlineReturnsEarly(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 2, Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = q.Do(context.Background(), func(context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started // the only worker is now pinned; the next task can only queue
	var skipped atomic.Bool
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := q.Do(ctx, func(context.Context) error { skipped.Store(true); return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("caller waited %v past its deadline", elapsed)
	}
	close(release)
	wg.Wait()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if skipped.Load() {
		t.Fatal("worker ran a task whose context had expired")
	}
}

// TestQueueDrainWaitsForInFlight checks Drain blocks intake immediately but
// lets queued and running tasks finish.
func TestQueueDrainWaitsForInFlight(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 4, Workers: 2})
	var done atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Do(context.Background(), func(context.Context) error {
				<-release
				done.Add(1)
				return nil
			})
		}()
	}
	waitFor(t, func() bool { return q.Stats().Submitted == 3 })
	drainErr := make(chan error, 1)
	go func() { drainErr <- q.Drain(context.Background()) }()
	// Intake must be closed even while the drain is pending.
	waitFor(t, func() bool { return q.Stats().Draining })
	if err := q.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do during drain err = %v, want ErrDraining", err)
	}
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if got := done.Load(); got != 3 {
		t.Fatalf("%d tasks completed across drain, want 3", got)
	}
	// Drain is idempotent.
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestQueueDrainTimeout checks a drain bounded by a context reports the
// context error when in-flight work will not finish in time.
func TestQueueDrainTimeout(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 1, Workers: 1})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = q.Do(context.Background(), func(context.Context) error { <-release; return nil })
	}()
	waitFor(t, func() bool { return q.Stats().Submitted == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
	close(release)
	wg.Wait()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
}

// waitFor polls cond until true or the test deadline budget is spent.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
