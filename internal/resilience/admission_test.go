package resilience

import (
	"testing"
	"time"
)

// TestLimiterBurstThenShed checks the bucket admits up to Burst immediately
// and sheds the overflow.
func TestLimiterBurstThenShed(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 3, Now: clock.Now})
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("request %d shed inside burst", i)
		}
	}
	if l.Allow() {
		t.Fatal("request admitted past an empty bucket")
	}
	s := l.Stats()
	if s.Admitted != 3 || s.Shed != 1 {
		t.Fatalf("stats %+v, want 3 admitted / 1 shed", s)
	}
}

// TestLimiterAllowN checks the batch withdrawal is all-or-nothing and
// tallies by item count, so a shed batch and a shed singleton stream report
// the same admission load.
func TestLimiterAllowN(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 4, Now: clock.Now})
	if l.AllowN(8) {
		t.Fatal("8-item batch admitted against a 4-token bucket")
	}
	if s := l.Stats(); s.Shed != 8 {
		t.Fatalf("shed %d, want 8 (per item)", s.Shed)
	}
	if !l.AllowN(4) {
		t.Fatal("4-item batch shed with 4 tokens available (all-or-nothing must not have spent any)")
	}
	if s := l.Stats(); s.Admitted != 4 {
		t.Fatalf("admitted %d, want 4 (per item)", s.Admitted)
	}
	if l.Allow() {
		t.Fatal("singleton admitted after the batch drained the bucket")
	}
	if !(*Limiter)(nil).AllowN(100) {
		t.Fatal("nil limiter must admit everything")
	}
}

// TestLimiterRefill checks tokens return at Rate per second, capped at Burst.
func TestLimiterRefill(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 3, Now: clock.Now})
	for i := 0; i < 3; i++ {
		l.Allow()
	}
	// 100ms at 10 rps refills exactly one token.
	clock.Advance(100 * time.Millisecond)
	if !l.Allow() {
		t.Fatal("refilled token not admitted")
	}
	if l.Allow() {
		t.Fatal("second request admitted on a single refilled token")
	}
	// A long idle period refills only to Burst.
	clock.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("request %d shed after refill to burst", i)
		}
	}
	if l.Allow() {
		t.Fatal("bucket exceeded Burst after idle refill")
	}
}

// TestLimiterNilAdmitsAll checks the nil receiver is a no-op admit-all.
func TestLimiterNilAdmitsAll(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if !l.Allow() {
			t.Fatal("nil limiter shed a request")
		}
	}
	if s := l.Stats(); s.Admitted != 0 || s.Shed != 0 {
		t.Fatalf("nil limiter stats %+v", s)
	}
}

// TestLimiterDefaults checks zero config selects sane defaults.
func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if !l.Allow() {
		t.Fatal("default limiter shed the first request")
	}
}

// TestLimiterRetryAfter checks the 429 backoff hint is derived from the
// refill rate: an empty bucket at 10 tokens/s needs 100ms for one token,
// and elapsing time shrinks the remaining wait accordingly.
func TestLimiterRetryAfter(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 1, Now: clock.Now})
	if d := l.RetryAfter(); d != 0 {
		t.Fatalf("full bucket RetryAfter = %v, want 0", d)
	}
	if !l.Allow() {
		t.Fatal("first request shed")
	}
	if d := l.RetryAfter(); d != 100*time.Millisecond {
		t.Fatalf("empty bucket RetryAfter = %v, want 100ms", d)
	}
	clock.Advance(60 * time.Millisecond)
	if d := l.RetryAfter(); d != 40*time.Millisecond {
		t.Fatalf("after 60ms RetryAfter = %v, want 40ms", d)
	}
	clock.Advance(40 * time.Millisecond)
	if d := l.RetryAfter(); d != 0 {
		t.Fatalf("refilled bucket RetryAfter = %v, want 0", d)
	}
	if l.RetryAfter() != 0 || !l.Allow() {
		t.Fatal("RetryAfter must not spend tokens")
	}
}

// TestLimiterRetryAfterNil checks the nil receiver reports no wait.
func TestLimiterRetryAfterNil(t *testing.T) {
	var l *Limiter
	if d := l.RetryAfter(); d != 0 {
		t.Fatalf("nil RetryAfter = %v, want 0", d)
	}
}
