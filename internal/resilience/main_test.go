package resilience

import (
	"os"
	"testing"

	"symbios/internal/leakcheck"
)

// The resilience primitives start timers and worker goroutines; the package
// must account for every one of them. A leaked backoff timer goroutine or an
// undrained queue worker fails the whole package.
func TestMain(m *testing.M) { os.Exit(leakcheck.MainRun(m.Run)) }
