package resilience

import (
	"sync"
	"time"
)

// LimiterConfig tunes a token-bucket admission controller.
type LimiterConfig struct {
	// Rate is the steady-state admission rate in requests per second.
	// Values <= 0 select the default of 100.
	Rate float64
	// Burst is the bucket capacity — how far above Rate a short spike may
	// go before shedding starts. Values <= 0 select Rate.
	Burst float64
	// Now substitutes the clock in tests; nil means time.Now.
	Now func() time.Time
}

// Limiter is a token-bucket admission controller: each admitted request
// spends one token, tokens refill at Rate per second up to Burst, and a
// request arriving at an empty bucket is shed. A nil *Limiter admits
// everything.
type Limiter struct {
	mu     sync.Mutex
	cfg    LimiterConfig
	tokens float64
	last   time.Time

	admitted uint64
	shed     uint64
}

// NewLimiter returns a limiter with a full bucket.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{cfg: cfg, tokens: cfg.Burst, last: cfg.Now()}
}

// Allow reports whether a request may proceed, spending one token if so.
func (l *Limiter) Allow() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	if el := now.Sub(l.last).Seconds(); el > 0 {
		l.tokens += el * l.cfg.Rate
		if l.tokens > l.cfg.Burst {
			l.tokens = l.cfg.Burst
		}
		l.last = now
	}
	if l.tokens < 1 {
		l.shed++
		return false
	}
	l.tokens--
	l.admitted++
	return true
}

// AllowN reports whether a request worth n tokens may proceed, spending all
// n if so. The withdrawal is all-or-nothing: a batch either pays for every
// item it carries or is shed whole — admitting half a batch would force the
// caller to invent per-item shed semantics the token bucket cannot express.
// n < 1 is treated as 1.
func (l *Limiter) AllowN(n int) bool {
	if l == nil {
		return true
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	if el := now.Sub(l.last).Seconds(); el > 0 {
		l.tokens += el * l.cfg.Rate
		if l.tokens > l.cfg.Burst {
			l.tokens = l.cfg.Burst
		}
		l.last = now
	}
	if l.tokens < float64(n) {
		l.shed += uint64(n)
		return false
	}
	l.tokens -= float64(n)
	l.admitted += uint64(n)
	return true
}

// RetryAfter reports how long until the bucket accrues a full token — the
// honest Retry-After value for a 429: a client that waits this long is
// admitted (absent competition) instead of hot-looping against an empty
// bucket. Reports zero when a token is already available.
func (l *Limiter) RetryAfter() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tokens := l.tokens
	if el := l.cfg.Now().Sub(l.last).Seconds(); el > 0 {
		tokens += el * l.cfg.Rate
		if tokens > l.cfg.Burst {
			tokens = l.cfg.Burst
		}
	}
	if tokens >= 1 {
		return 0
	}
	return time.Duration((1 - tokens) / l.cfg.Rate * float64(time.Second))
}

// LimiterStats is a point-in-time admission tally.
type LimiterStats struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

// Stats returns the admission tallies so far.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{Admitted: l.admitted, Shed: l.shed}
}
