package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for driving time-based state.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// transitionLog records breaker transitions for assertions.
type transitionLog struct {
	mu   sync.Mutex
	seen []string
}

func (l *transitionLog) record(from, to State) {
	l.mu.Lock()
	l.seen = append(l.seen, fmt.Sprintf("%s->%s", from, to))
	l.mu.Unlock()
}

func (l *transitionLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seen...)
}

// mustAllow fails the test if the breaker refuses.
func mustAllow(t *testing.T, b *Breaker) func(Outcome) {
	t.Helper()
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow refused in state %v: %v", b.State(), err)
	}
	return report
}

// TestBreakerStateTransitions drives the full closed -> open -> half-open ->
// closed cycle, plus the half-open relapse, as a table of steps.
func TestBreakerStateTransitions(t *testing.T) {
	type step struct {
		advance   time.Duration
		outcome   Outcome // applied if allowed
		wantAllow bool
		wantState State // state after the step
	}
	cases := []struct {
		name            string
		steps           []step
		wantTransitions []string
	}{
		{
			name: "trip then recover",
			steps: []step{
				{outcome: Success, wantAllow: true, wantState: Closed},
				{outcome: Failure, wantAllow: true, wantState: Closed},
				// 2 failures / 3 samples >= 0.5 with MinSamples=3: trips.
				{outcome: Failure, wantAllow: true, wantState: Open},
				// Cooling down: fast-fail.
				{advance: time.Second, wantAllow: false, wantState: Open},
				// Cooldown elapsed: probes admitted, two successes close it.
				{advance: 5 * time.Second, outcome: Success, wantAllow: true, wantState: HalfOpen},
				{outcome: Success, wantAllow: true, wantState: Closed},
			},
			wantTransitions: []string{"closed->open", "open->half-open", "half-open->closed"},
		},
		{
			name: "half-open relapse reopens",
			steps: []step{
				{outcome: Failure, wantAllow: true, wantState: Closed},
				{outcome: Failure, wantAllow: true, wantState: Closed},
				{outcome: Failure, wantAllow: true, wantState: Open},
				{advance: 6 * time.Second, outcome: Failure, wantAllow: true, wantState: Open},
				// Freshly reopened: cooldown restarts.
				{advance: time.Second, wantAllow: false, wantState: Open},
			},
			wantTransitions: []string{"closed->open", "open->half-open", "half-open->open"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			log := &transitionLog{}
			b := NewBreaker(BreakerConfig{
				Window:       8,
				MinSamples:   3,
				ErrorRate:    0.5,
				Cooldown:     5 * time.Second,
				Probes:       2,
				Now:          clock.Now,
				OnTransition: log.record,
			})
			for i, s := range tc.steps {
				clock.Advance(s.advance)
				report, err := b.Allow()
				if (err == nil) != s.wantAllow {
					t.Fatalf("step %d: Allow err=%v, want allow=%v", i, err, s.wantAllow)
				}
				if err != nil && !errors.Is(err, ErrBreakerOpen) {
					t.Fatalf("step %d: refusal %v does not wrap ErrBreakerOpen", i, err)
				}
				if err == nil {
					report(s.outcome)
				}
				if got := b.State(); got != s.wantState {
					t.Fatalf("step %d: state %v, want %v", i, got, s.wantState)
				}
			}
			if got := log.list(); fmt.Sprint(got) != fmt.Sprint(tc.wantTransitions) {
				t.Fatalf("transitions %v, want %v", got, tc.wantTransitions)
			}
		})
	}
}

// TestBreakerHalfOpenProbeQuota checks that only Probes permits are issued
// while half-open and the overflow fast-fails.
func TestBreakerHalfOpenProbeQuota(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 1, ErrorRate: 0.5,
		Cooldown: time.Second, Probes: 2, Now: clock.Now,
	})
	mustAllow(t, b)(Failure) // trips immediately (MinSamples=1)
	if b.State() != Open {
		t.Fatalf("state %v after trip, want open", b.State())
	}
	clock.Advance(2 * time.Second)
	r1 := mustAllow(t, b) // probe 1 (in flight)
	r2 := mustAllow(t, b) // probe 2 (in flight)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("third probe err=%v, want ErrBreakerOpen", err)
	}
	r1(Success)
	// One success banked + quota still charged: a new probe may not start.
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe past quota err=%v, want ErrBreakerOpen", err)
	}
	r2(Success)
	if b.State() != Closed {
		t.Fatalf("state %v after %d successes, want closed", b.State(), 2)
	}
}

// TestBreakerSkippedOutcomeNeutral checks Skipped neither trips nor closes.
func TestBreakerSkippedOutcomeNeutral(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, ErrorRate: 0.5, Now: clock.Now})
	for i := 0; i < 10; i++ {
		mustAllow(t, b)(Skipped)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after skipped outcomes, want closed", b.State())
	}
	// One real failure is below MinSamples: still closed.
	mustAllow(t, b)(Failure)
	if b.State() != Closed {
		t.Fatalf("state %v after one failure, want closed", b.State())
	}
	mustAllow(t, b)(Failure)
	if b.State() != Open {
		t.Fatalf("state %v after two failures, want open", b.State())
	}
}

// TestBreakerStaleReportDiscarded checks an outcome reported after a
// transition cannot corrupt the new state's accounting.
func TestBreakerStaleReportDiscarded(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 1, ErrorRate: 0.5,
		Cooldown: time.Second, Probes: 1, Now: clock.Now,
	})
	stale := mustAllow(t, b) // permit issued while closed
	mustAllow(t, b)(Failure) // trips
	clock.Advance(2 * time.Second)
	probe := mustAllow(t, b) // half-open probe
	stale(Failure)           // stale closed-state report: must be ignored
	if b.State() != HalfOpen {
		t.Fatalf("stale report changed state to %v", b.State())
	}
	probe(Success)
	if b.State() != Closed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
}

// TestBreakerReportIdempotent checks double-reporting is harmless.
func TestBreakerReportIdempotent(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, ErrorRate: 0.5, Now: clock.Now})
	r := mustAllow(t, b)
	r(Failure)
	r(Failure) // ignored: one permit, one report
	if b.State() != Closed {
		t.Fatalf("duplicate report tripped the breaker (state %v)", b.State())
	}
}

// TestBreakerNilNoOp checks the nil receiver admits everything.
func TestBreakerNilNoOp(t *testing.T) {
	var b *Breaker
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	report(Failure)
	if got := b.State(); got != Closed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
	if s := b.Stats(); s.Opens != 0 || s.State != "closed" {
		t.Fatalf("nil breaker stats %+v", s)
	}
}

// TestBreakerConcurrentTraffic hammers the breaker from many goroutines
// under -race; the invariant is only that it never deadlocks or panics and
// stats stay coherent.
func TestBreakerConcurrentTraffic(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 16, MinSamples: 4, ErrorRate: 0.5, Cooldown: time.Millisecond, Probes: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				report, err := b.Allow()
				if err != nil {
					continue
				}
				if (g+i)%3 == 0 {
					report(Failure)
				} else {
					report(Success)
				}
			}
		}(g)
	}
	wg.Wait()
	s := b.Stats()
	if s.State == "" {
		t.Fatal("empty state string")
	}
}

// TestBreakerHalfOpenProbeRace races many goroutines through Allow while
// the breaker sits half-open: no matter how the Allow calls interleave, the
// number of permits ever granted must not exceed the probe quota, because a
// single extra probe against a sick backend is exactly the thundering herd
// half-open exists to prevent. Run under -race this also proves the permit
// bookkeeping itself is data-race-free.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		clock := newFakeClock()
		const probes = 3
		b := NewBreaker(BreakerConfig{
			Window: 4, MinSamples: 1, ErrorRate: 0.5,
			Cooldown: time.Second, Probes: probes, Now: clock.Now,
		})
		mustAllow(t, b)(Failure) // trip
		clock.Advance(2 * time.Second)

		const racers = 32
		var (
			start   = make(chan struct{})
			wg      sync.WaitGroup
			mu      sync.Mutex
			granted []func(Outcome)
		)
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				report, err := b.Allow()
				if err != nil {
					if !errors.Is(err, ErrBreakerOpen) {
						t.Errorf("refusal err = %v, want ErrBreakerOpen", err)
					}
					return
				}
				mu.Lock()
				granted = append(granted, report)
				mu.Unlock()
			}()
		}
		close(start)
		wg.Wait()
		if len(granted) > probes {
			t.Fatalf("round %d: %d probe permits granted, quota is %d", round, len(granted), probes)
		}
		if len(granted) == 0 {
			t.Fatalf("round %d: no probe permit granted past cooldown", round)
		}
		// Settling every granted probe successfully must close the breaker
		// only once the full quota has succeeded — with fewer grants than the
		// quota it stays half-open, and the freed slots admit new probes.
		for _, report := range granted {
			report(Success)
		}
		for b.State() == HalfOpen {
			report, err := b.Allow()
			if err != nil {
				t.Fatalf("round %d: half-open with free slots refused: %v", round, err)
			}
			report(Success)
		}
		if b.State() != Closed {
			t.Fatalf("round %d: state %v after quota successes, want closed", round, b.State())
		}
	}
}

// TestBreakerRetryAfter checks the open-state cooldown remainder is exposed
// for Retry-After derivation and decays with the clock.
func TestBreakerRetryAfter(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 1, ErrorRate: 0.5,
		Cooldown: 10 * time.Second, Probes: 1, Now: clock.Now,
	})
	if d := b.RetryAfter(); d != 0 {
		t.Fatalf("closed RetryAfter = %v, want 0", d)
	}
	mustAllow(t, b)(Failure) // trip
	if d := b.RetryAfter(); d != 10*time.Second {
		t.Fatalf("just-opened RetryAfter = %v, want 10s", d)
	}
	clock.Advance(4 * time.Second)
	if d := b.RetryAfter(); d != 6*time.Second {
		t.Fatalf("mid-cooldown RetryAfter = %v, want 6s", d)
	}
	clock.Advance(10 * time.Second)
	if d := b.RetryAfter(); d != 0 {
		t.Fatalf("post-cooldown RetryAfter = %v, want 0", d)
	}
	var nb *Breaker
	if d := nb.RetryAfter(); d != 0 {
		t.Fatalf("nil RetryAfter = %v, want 0", d)
	}
}
