package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed admits every request, recording outcomes into the window.
	Closed State = iota
	// Open fails every request fast until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of probe requests to test recovery.
	HalfOpen
)

// String names the state for logs and stats.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// ErrBreakerOpen marks a request refused because the circuit breaker is
// open (or half-open with all probe slots taken). Match with errors.Is.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Outcome is what a permitted request reports back to the breaker.
type Outcome int

const (
	// Success counts toward closing.
	Success Outcome = iota
	// Failure counts toward opening.
	Failure
	// Skipped releases the permit without judging the backend — used when
	// the request never reached the protected work (queue saturation,
	// client disconnect), so it must not skew the error rate.
	Skipped
)

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Window is the sliding outcome window size. Values < 1 select 32.
	Window int
	// MinSamples is how many outcomes the window needs before the error
	// rate is trusted. Values < 1 select Window/2 (at least 1).
	MinSamples int
	// ErrorRate opens the breaker when failures/window >= this fraction.
	// Values <= 0 select 0.5.
	ErrorRate float64
	// Cooldown is how long an open breaker waits before probing.
	// Values <= 0 select 5s.
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the breaker;
	// it also caps concurrent half-open permits. Values < 1 select 3.
	Probes int
	// Now substitutes the clock in tests; nil means time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. It is called
	// outside the breaker's lock (so it may inspect the breaker), in the
	// goroutine that caused the transition.
	OnTransition func(from, to State)
}

// Breaker is a three-state circuit breaker keyed on the error rate over a
// sliding window of request outcomes. A nil *Breaker admits everything and
// never opens.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state State
	gen   uint64 // bumped on every transition; stale permits are discarded

	// Sliding outcome window (closed state only).
	window   []bool // true = failure
	idx      int
	filled   int
	failures int

	openedAt time.Time

	// Half-open probe accounting.
	probesInFlight int
	probeSuccesses int

	opens     uint64
	fastFails uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window < 1 {
		cfg.Window = 32
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = cfg.Window / 2
		if cfg.MinSamples < 1 {
			cfg.MinSamples = 1
		}
	}
	if cfg.ErrorRate <= 0 {
		cfg.ErrorRate = 0.5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Probes < 1 {
		cfg.Probes = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// permit remembers the state a request was admitted under, so a late report
// from before a transition cannot corrupt the new state's accounting.
type permit struct {
	state State
	gen   uint64
}

// Allow asks to pass the breaker. On success it returns a report function
// that must be called exactly once with the request's outcome (extra calls
// are ignored). On refusal it returns an error wrapping ErrBreakerOpen.
// A nil *Breaker always allows and returns a no-op report.
func (b *Breaker) Allow() (report func(Outcome), err error) {
	if b == nil {
		return func(Outcome) {}, nil
	}
	var fire []func()
	b.mu.Lock()
	if b.state == Open {
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.transitionLocked(HalfOpen, &fire)
			b.probesInFlight, b.probeSuccesses = 0, 0
		} else {
			wait := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
			b.fastFails++
			b.mu.Unlock()
			return nil, fmt.Errorf("%w: cooling down for another %s", ErrBreakerOpen, wait.Round(time.Millisecond))
		}
	}
	if b.state == HalfOpen && b.probesInFlight+b.probeSuccesses >= b.cfg.Probes {
		b.fastFails++
		b.mu.Unlock()
		for _, f := range fire {
			f()
		}
		return nil, fmt.Errorf("%w: half-open probe quota in use", ErrBreakerOpen)
	}
	if b.state == HalfOpen {
		b.probesInFlight++
	}
	p := permit{state: b.state, gen: b.gen}
	b.mu.Unlock()
	for _, f := range fire {
		f()
	}
	var once sync.Once
	return func(o Outcome) { once.Do(func() { b.settle(p, o) }) }, nil
}

// settle applies a permitted request's outcome to the state machine.
func (b *Breaker) settle(p permit, o Outcome) {
	var fire []func()
	b.mu.Lock()
	if p.gen != b.gen {
		// The breaker transitioned since this permit was issued; its probe
		// accounting was reset, so the stale report carries no information.
		b.mu.Unlock()
		return
	}
	switch b.state {
	case Closed:
		if o != Skipped {
			b.pushLocked(o == Failure)
			if b.filled >= b.cfg.MinSamples &&
				float64(b.failures)/float64(b.filled) >= b.cfg.ErrorRate {
				b.tripLocked(&fire)
			}
		}
	case HalfOpen:
		b.probesInFlight--
		switch o {
		case Failure:
			b.tripLocked(&fire)
		case Success:
			b.probeSuccesses++
			if b.probeSuccesses >= b.cfg.Probes {
				b.resetWindowLocked()
				b.transitionLocked(Closed, &fire)
			}
		}
	case Open:
		// A permit can only be settled while Open if gen matched, which a
		// trip prevents; nothing to do.
	}
	b.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// tripLocked opens the breaker and starts the cooldown.
func (b *Breaker) tripLocked(fire *[]func()) {
	b.openedAt = b.cfg.Now()
	b.opens++
	b.resetWindowLocked()
	b.transitionLocked(Open, fire)
}

// pushLocked records one outcome into the sliding window.
func (b *Breaker) pushLocked(fail bool) {
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.failures--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = fail
	if fail {
		b.failures++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

// resetWindowLocked clears the outcome window (on any trip or close, so the
// next episode is judged on fresh evidence).
func (b *Breaker) resetWindowLocked() {
	b.idx, b.filled, b.failures = 0, 0, 0
}

// transitionLocked moves to state to, queuing the OnTransition callback to
// run after the lock is released.
func (b *Breaker) transitionLocked(to State, fire *[]func()) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.gen++
	if cb := b.cfg.OnTransition; cb != nil {
		*fire = append(*fire, func() { cb(from, to) })
	}
}

// RetryAfter reports how much of the open-state cooldown remains — the
// honest Retry-After value for a breaker-refused request. Half-open and
// closed breakers report zero (a refusal there clears as soon as a probe
// settles, so "retry shortly" is the best available answer).
func (b *Breaker) RetryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	wait := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if wait < 0 {
		wait = 0
	}
	return wait
}

// State returns the breaker's current position (for stats; racing callers
// should rely on Allow, not State).
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time breaker tally.
type BreakerStats struct {
	State     string `json:"state"`
	Opens     uint64 `json:"opens"`
	FastFails uint64 `json:"fast_fails"`
}

// Stats returns the breaker tallies so far.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: Closed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state.String(), Opens: b.opens, FastFails: b.fastFails}
}
