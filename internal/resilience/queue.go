package resilience

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated marks a request rejected because the work queue is full —
// the backpressure signal (HTTP 503 with Retry-After at the service layer).
var ErrSaturated = errors.New("resilience: work queue saturated")

// ErrDraining marks a request rejected because the queue has stopped
// accepting work for shutdown.
var ErrDraining = errors.New("resilience: queue draining")

// QueueConfig tunes a bounded work queue.
type QueueConfig struct {
	// Depth is the queue capacity beyond the running workers. Values < 1
	// select 64.
	Depth int
	// Workers is the number of concurrent task runners. Values < 1 select 4.
	Workers int
}

// queueTask is one submitted unit of work.
type queueTask struct {
	ctx  context.Context
	fn   func(context.Context) error
	done chan error // buffered(1): the worker never blocks on a departed caller
}

// Queue is a bounded work queue with backpressure: Do either enqueues
// immediately or fails with ErrSaturated — it never blocks the caller on a
// full queue, so saturation surfaces as an explicit shed instead of
// unbounded queueing. Drain stops intake and waits for in-flight work.
type Queue struct {
	mu       sync.Mutex
	tasks    chan *queueTask
	draining bool
	wg       sync.WaitGroup

	drainOnce sync.Once
	drained   chan struct{}

	submitted uint64
	rejected  uint64
	maxDepth  int
}

// NewQueue starts the worker pool and returns the queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Depth < 1 {
		cfg.Depth = 64
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	q := &Queue{
		tasks:   make(chan *queueTask, cfg.Depth),
		drained: make(chan struct{}),
	}
	q.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	return q
}

// worker runs queued tasks, skipping any whose context expired while queued.
func (q *Queue) worker() {
	defer q.wg.Done()
	for t := range q.tasks {
		if err := t.ctx.Err(); err != nil {
			t.done <- err
			continue
		}
		t.done <- t.fn(t.ctx)
	}
}

// Do submits fn and waits for its result or for ctx. A caller whose context
// fires while the task is still queued gets the context error immediately
// (no request waits past its deadline); the worker later observes the
// expired context and skips the task. Returns ErrSaturated when the queue
// is full and ErrDraining after Drain has begun.
func (q *Queue) Do(ctx context.Context, fn func(context.Context) error) error {
	t := &queueTask{ctx: ctx, fn: fn, done: make(chan error, 1)}
	q.mu.Lock()
	if q.draining {
		q.rejected++
		q.mu.Unlock()
		return ErrDraining
	}
	select {
	case q.tasks <- t:
		q.submitted++
		if d := len(q.tasks); d > q.maxDepth {
			q.maxDepth = d
		}
	default:
		q.rejected++
		q.mu.Unlock()
		return ErrSaturated
	}
	q.mu.Unlock()
	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain stops intake and waits for the workers to finish the queued and
// in-flight tasks, or for ctx to fire first — in which case the workers are
// still running and the caller should escalate (cancel the tasks' contexts)
// rather than assume they stopped. Safe to call more than once.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.tasks) // sends hold the same mutex, so no send-on-closed race
	}
	q.mu.Unlock()
	q.drainOnce.Do(func() {
		go func() {
			q.wg.Wait()
			close(q.drained)
		}()
	})
	select {
	case <-q.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueStats is a point-in-time queue tally.
type QueueStats struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	MaxDepth  int    `json:"max_depth"`
	Depth     int    `json:"depth"`
	Cap       int    `json:"cap"`
	Draining  bool   `json:"draining"`
}

// Stats returns the queue tallies so far. MaxDepth never exceeding Cap is
// the soak test's bounded-queue assertion.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Submitted: q.submitted,
		Rejected:  q.rejected,
		MaxDepth:  q.maxDepth,
		Depth:     len(q.tasks),
		Cap:       cap(q.tasks),
		Draining:  q.draining,
	}
}
