package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSaturated marks a request rejected because the work queue is full —
// the backpressure signal (HTTP 503 with Retry-After at the service layer).
var ErrSaturated = errors.New("resilience: work queue saturated")

// ErrDraining marks a request rejected because the queue has stopped
// accepting work for shutdown.
var ErrDraining = errors.New("resilience: queue draining")

// ErrOverloaded marks a request shed because queued time (sojourn) has
// stayed above the configured target for a sustained interval — the queue
// is technically not full, but work is waiting too long to be worth
// admitting more (CoDel's insight applied to a work queue).
var ErrOverloaded = errors.New("resilience: queue sojourn above target")

// QueueConfig tunes a bounded work queue.
type QueueConfig struct {
	// Depth is the queue capacity beyond the running workers. Values < 1
	// select 64.
	Depth int
	// Workers is the number of concurrent task runners. Values < 1 select 4.
	Workers int

	// SojournTarget, when positive, enables CoDel-style shedding: if the
	// queued time observed at every dequeue stays at or above the target for
	// a full SojournInterval, new submissions that find a non-empty queue
	// fail with ErrOverloaded until a dequeue measures sojourn back under
	// target (an empty queue always admits a probe, so the clearing
	// measurement stays possible). Depth-based saturation catches a stalled
	// queue; the sojourn target catches a queue that still drains but too
	// slowly to be useful.
	SojournTarget time.Duration
	// SojournInterval is the sustained-exceedance window (default
	// 4 x SojournTarget).
	SojournInterval time.Duration
	// OnSojourn, when non-nil, observes every dequeue's queued time (the
	// brownout controller's feed). Called outside the queue lock.
	OnSojourn func(time.Duration)
	// Now substitutes the clock in tests; nil means time.Now.
	Now func() time.Time
}

// queueTask is one submitted unit of work.
type queueTask struct {
	ctx        context.Context
	fn         func(context.Context) error
	done       chan error // buffered(1): the worker never blocks on a departed caller
	enqueuedAt time.Time
}

// Queue is a bounded work queue with backpressure: Do either enqueues
// immediately or fails with ErrSaturated — it never blocks the caller on a
// full queue, so saturation surfaces as an explicit shed instead of
// unbounded queueing. With a SojournTarget it additionally sheds with
// ErrOverloaded while queued time stays above target (see QueueConfig).
// Drain stops intake and waits for in-flight work.
type Queue struct {
	cfg QueueConfig

	mu       sync.Mutex
	tasks    chan *queueTask
	draining bool
	wg       sync.WaitGroup

	drainOnce sync.Once
	drained   chan struct{}

	submitted  uint64
	rejected   uint64
	overloaded uint64
	maxDepth   int

	// pending mirrors the channel's FIFO enqueue times so OldestAge is a
	// cheap head peek; workers pop the head at dequeue.
	pending []time.Time

	// CoDel state, guarded by mu.
	sojournEWMA time.Duration // exponentially smoothed dequeue sojourn
	aboveSince  time.Time     // first dequeue of the current above-target streak
	shedding    bool
}

// NewQueue starts the worker pool and returns the queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Depth < 1 {
		cfg.Depth = 64
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.SojournInterval <= 0 {
		cfg.SojournInterval = 4 * cfg.SojournTarget
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	q := &Queue{
		cfg:     cfg,
		tasks:   make(chan *queueTask, cfg.Depth),
		drained: make(chan struct{}),
	}
	q.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	return q
}

// worker runs queued tasks, skipping any whose context expired while queued.
func (q *Queue) worker() {
	defer q.wg.Done()
	for t := range q.tasks {
		q.noteDequeue(t)
		if err := t.ctx.Err(); err != nil {
			t.done <- err
			continue
		}
		t.done <- t.fn(t.ctx)
	}
}

// noteDequeue measures the task's sojourn, updates the CoDel state, and
// feeds the OnSojourn observer (outside the lock).
func (q *Queue) noteDequeue(t *queueTask) {
	now := q.cfg.Now()
	sojourn := now.Sub(t.enqueuedAt)
	if sojourn < 0 {
		sojourn = 0
	}
	q.mu.Lock()
	if len(q.pending) > 0 {
		// Dequeues follow channel FIFO order; popping the head keeps the
		// mirror aligned even with several workers racing here, because
		// each dequeue removes exactly one entry.
		q.pending = q.pending[1:]
	}
	if q.sojournEWMA == 0 {
		q.sojournEWMA = sojourn
	} else {
		// 3/4 old + 1/4 new: smooth enough to ride out a single long task,
		// fresh enough to track a draining backlog within a few dequeues.
		q.sojournEWMA = (3*q.sojournEWMA + sojourn) / 4
	}
	if q.cfg.SojournTarget > 0 {
		if sojourn >= q.cfg.SojournTarget {
			if q.aboveSince.IsZero() {
				q.aboveSince = now
			} else if now.Sub(q.aboveSince) >= q.cfg.SojournInterval {
				q.shedding = true
			}
		} else {
			q.aboveSince = time.Time{}
			q.shedding = false
		}
	}
	q.mu.Unlock()
	if q.cfg.OnSojourn != nil {
		q.cfg.OnSojourn(sojourn)
	}
}

// Do submits fn and waits for its result or for ctx. A caller whose context
// fires while the task is still queued gets the context error immediately
// (no request waits past its deadline); the worker later observes the
// expired context and skips the task. Returns ErrSaturated when the queue
// is full, ErrOverloaded while sojourn-based shedding is active, and
// ErrDraining after Drain has begun.
func (q *Queue) Do(ctx context.Context, fn func(context.Context) error) error {
	t := &queueTask{ctx: ctx, fn: fn, done: make(chan error, 1)}
	q.mu.Lock()
	if q.draining {
		q.rejected++
		q.mu.Unlock()
		return ErrDraining
	}
	if q.shedding && len(q.tasks) > 0 {
		// Shed only while a backlog exists: an empty queue always admits a
		// probe, whose dequeue measurement is what can clear the shedding
		// state — recovery must never wait on an observation that shed
		// intake has made impossible.
		q.overloaded++
		q.mu.Unlock()
		return ErrOverloaded
	}
	t.enqueuedAt = q.cfg.Now()
	select {
	case q.tasks <- t:
		q.submitted++
		q.pending = append(q.pending, t.enqueuedAt)
		if d := len(q.tasks); d > q.maxDepth {
			q.maxDepth = d
		}
	default:
		q.rejected++
		q.mu.Unlock()
		return ErrSaturated
	}
	q.mu.Unlock()
	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain stops intake and waits for the workers to finish the queued and
// in-flight tasks, or for ctx to fire first — in which case the workers are
// still running and the caller should escalate (cancel the tasks' contexts)
// rather than assume they stopped. Safe to call more than once.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.tasks) // sends hold the same mutex, so no send-on-closed race
	}
	q.mu.Unlock()
	q.drainOnce.Do(func() {
		go func() {
			q.wg.Wait()
			close(q.drained)
		}()
	})
	select {
	case <-q.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SojournEstimate returns the smoothed queued-time estimate observed at
// recent dequeues — the honest Retry-After for a queue shed: roughly how
// long new work is currently waiting before it runs.
func (q *Queue) SojournEstimate() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sojournEWMA
}

// OldestAge returns how long the task at the queue head has been waiting
// (zero when the queue is empty) — backlog age for scrape-time gauges.
func (q *Queue) OldestAge() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return 0
	}
	age := q.cfg.Now().Sub(q.pending[0])
	if age < 0 {
		age = 0
	}
	return age
}

// QueueStats is a point-in-time queue tally.
type QueueStats struct {
	Submitted  uint64 `json:"submitted"`
	Rejected   uint64 `json:"rejected"`
	Overloaded uint64 `json:"overloaded"`
	MaxDepth   int    `json:"max_depth"`
	Depth      int    `json:"depth"`
	Cap        int    `json:"cap"`
	Draining   bool   `json:"draining"`
	// SojournMS is the smoothed dequeue sojourn estimate in milliseconds.
	SojournMS float64 `json:"sojourn_ms"`
}

// Stats returns the queue tallies so far. MaxDepth never exceeding Cap is
// the soak test's bounded-queue assertion.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Submitted:  q.submitted,
		Rejected:   q.rejected,
		Overloaded: q.overloaded,
		MaxDepth:   q.maxDepth,
		Depth:      len(q.tasks),
		Cap:        cap(q.tasks),
		Draining:   q.draining,
		SojournMS:  float64(q.sojournEWMA) / float64(time.Millisecond),
	}
}
