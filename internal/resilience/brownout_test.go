package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBrownoutStepsDownAfterHold: sustained above-threshold sojourn steps
// one mode per full hold window, never more, and stops at the ladder end.
func TestBrownoutStepsDownAfterHold(t *testing.T) {
	clk := newFakeClock()
	var trans [][2]int
	b := NewBrownout(BrownoutConfig{
		Modes:         3,
		DownThreshold: 100 * time.Millisecond,
		DownHold:      time.Second,
		Now:           clk.Now,
		OnTransition:  func(from, to int) { trans = append(trans, [2]int{from, to}) },
	})
	hot := 200 * time.Millisecond

	b.Observe(hot) // arms the hold timer
	if b.Mode() != 0 {
		t.Fatalf("mode %d after first hot observation, want 0", b.Mode())
	}
	clk.Advance(999 * time.Millisecond)
	b.Observe(hot)
	if b.Mode() != 0 {
		t.Fatal("stepped down before the hold elapsed")
	}
	clk.Advance(time.Millisecond)
	b.Observe(hot)
	if b.Mode() != 1 {
		t.Fatalf("mode %d after hold elapsed, want 1", b.Mode())
	}
	// The next step needs a fresh full hold.
	clk.Advance(500 * time.Millisecond)
	b.Observe(hot)
	if b.Mode() != 1 {
		t.Fatal("second step fired without a fresh hold")
	}
	clk.Advance(500 * time.Millisecond)
	b.Observe(hot)
	if b.Mode() != 2 {
		t.Fatalf("mode %d, want 2", b.Mode())
	}
	// Ladder end: stays at the most degraded mode.
	clk.Advance(5 * time.Second)
	b.Observe(hot)
	if b.Mode() != 2 {
		t.Fatalf("mode %d beyond ladder end", b.Mode())
	}
	want := [][2]int{{0, 1}, {1, 2}}
	if len(trans) != len(want) || trans[0] != want[0] || trans[1] != want[1] {
		t.Fatalf("transitions %v, want %v", trans, want)
	}
}

// TestBrownoutRecoversWithHysteresis: recovery needs sojourn below the Up
// threshold for the (longer) UpHold, and the band between the thresholds
// holds the mode and resets both timers — no flapping at the boundary.
func TestBrownoutRecoversWithHysteresis(t *testing.T) {
	clk := newFakeClock()
	b := NewBrownout(BrownoutConfig{
		Modes:         2,
		DownThreshold: 100 * time.Millisecond,
		UpThreshold:   25 * time.Millisecond,
		DownHold:      time.Second,
		UpHold:        2 * time.Second,
		Now:           clk.Now,
	})
	// Step down.
	b.Observe(200 * time.Millisecond)
	clk.Advance(time.Second)
	b.Observe(200 * time.Millisecond)
	if b.Mode() != 1 {
		t.Fatalf("mode %d, want 1", b.Mode())
	}
	// Cool observations arm recovery...
	b.Observe(10 * time.Millisecond)
	clk.Advance(1900 * time.Millisecond)
	b.Observe(10 * time.Millisecond)
	if b.Mode() != 1 {
		t.Fatal("recovered before UpHold elapsed")
	}
	// ...but a band observation resets the timer.
	b.Observe(50 * time.Millisecond) // between Up and Down: hold
	clk.Advance(200 * time.Millisecond)
	b.Observe(10 * time.Millisecond)
	clk.Advance(1999 * time.Millisecond)
	b.Observe(10 * time.Millisecond)
	if b.Mode() != 1 {
		t.Fatal("recovered without a fresh full UpHold after a band observation")
	}
	clk.Advance(time.Millisecond)
	b.Observe(10 * time.Millisecond)
	if b.Mode() != 0 {
		t.Fatalf("mode %d after full UpHold, want 0", b.Mode())
	}
	st := b.Stats()
	if st.StepDowns != 1 || st.StepUps != 1 {
		t.Fatalf("stats %+v, want one step each way", st)
	}
}

// TestBrownoutNilNoOp: a nil controller reports mode 0 and ignores feeds.
func TestBrownoutNilNoOp(t *testing.T) {
	var b *Brownout
	b.Observe(time.Hour)
	if b.Mode() != 0 {
		t.Fatal("nil Brownout not at mode 0")
	}
	if st := b.Stats(); st.Mode != 0 {
		t.Fatalf("nil stats %+v", st)
	}
}

// TestBrownoutConcurrentObserve: racing observers never corrupt the mode
// (run under -race) and the mode stays inside the ladder.
func TestBrownoutConcurrentObserve(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Modes: 3, DownThreshold: time.Microsecond, DownHold: time.Nanosecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if i%2 == 0 {
					b.Observe(time.Second)
				} else {
					b.Observe(0)
				}
			}
		}(i)
	}
	wg.Wait()
	if m := b.Mode(); m < 0 || m > 2 {
		t.Fatalf("mode %d outside ladder", m)
	}
}

// TestQueueSojournShedding: a queue whose dequeues keep measuring sojourn
// above target for the full interval sheds new work (while a backlog
// exists) with ErrOverloaded, feeds every dequeue to OnSojourn, and reports
// the smoothed estimate.
func TestQueueSojournShedding(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	var observed []time.Duration
	release := make(chan struct{})
	q := NewQueue(QueueConfig{
		Depth:           8,
		Workers:         1,
		SojournTarget:   50 * time.Millisecond,
		SojournInterval: 100 * time.Millisecond,
		Now:             clk.Now,
		OnSojourn: func(d time.Duration) {
			mu.Lock()
			observed = append(observed, d)
			mu.Unlock()
		},
	})
	defer q.Drain(context.Background())

	slow := func(ctx context.Context) error {
		<-release
		return nil
	}
	// Occupy the single worker, then build a backlog.
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() { errs <- q.Do(context.Background(), slow) }()
	}
	waitForDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for q.Stats().Depth < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if d := q.Stats().Depth; d < want {
			t.Fatalf("depth %d, want >= %d", d, want)
		}
	}
	waitForDepth(3) // one running, three queued

	waitObserved := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := len(observed)
			mu.Unlock()
			if n >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %d sojourn observations", want)
	}
	waitObserved(1) // the first task dequeued immediately (sojourn ~0)

	// Age the backlog past the target, then drain one task: its dequeue
	// observes sojourn >= target and arms the streak.
	clk.Advance(time.Second)
	release <- struct{}{}
	waitObserved(2)
	// A second above-target dequeue past the interval trips shedding.
	clk.Advance(200 * time.Millisecond)
	release <- struct{}{}
	waitObserved(3)

	if err := q.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Do under sustained sojourn = %v, want ErrOverloaded", err)
	}
	if est := q.SojournEstimate(); est < 50*time.Millisecond {
		t.Fatalf("sojourn estimate %v, want >= target", est)
	}
	if st := q.Stats(); st.Overloaded != 1 {
		t.Fatalf("overloaded count %d, want 1", st.Overloaded)
	}

	// Drain the backlog. Once the queue is empty, shedding no longer gates
	// intake: the next submission is a probe.
	for i := 0; i < 2; i++ {
		release <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("backlogged task: %v", err)
		}
	}
	if age := q.OldestAge(); age != 0 {
		t.Fatalf("OldestAge %v on empty queue", age)
	}

	// The probe dequeues at the same fake-clock instant it was enqueued:
	// sojourn 0, under target — shedding clears.
	if err := q.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe on empty queue shed: %v", err)
	}
	// With shedding cleared, a backlog no longer sheds either.
	done := make(chan error, 2)
	go func() { done <- q.Do(context.Background(), slow) }()
	go func() { done <- q.Do(context.Background(), slow) }()
	deadline := time.Now().Add(2 * time.Second)
	for q.Stats().Submitted < 7 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	release <- struct{}{}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("post-recovery task: %v", err)
		}
	}
	if st := q.Stats(); st.Overloaded != 1 {
		t.Fatalf("overloaded count %d after recovery, want still 1", st.Overloaded)
	}
}

// TestQueueOldestAgeTracksHead: the age gauge follows the head-of-line
// enqueue time and returns to zero as the backlog drains.
func TestQueueOldestAgeTracksHead(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{Depth: 4, Workers: 1, Now: clk.Now})
	defer q.Drain(context.Background())

	release := make(chan struct{})
	slow := func(ctx context.Context) error { <-release; return nil }
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- q.Do(context.Background(), slow) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for q.Stats().Depth < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(300 * time.Millisecond)
	if age := q.OldestAge(); age < 300*time.Millisecond {
		t.Fatalf("OldestAge %v, want >= 300ms", age)
	}
	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("task: %v", err)
		}
	}
	if age := q.OldestAge(); age != 0 {
		t.Fatalf("OldestAge %v after drain, want 0", age)
	}
}
