package resilience

import (
	"context"
	"time"
)

// Clamp resolves a client-requested deadline budget against server policy:
// a non-positive request selects def, and no request may exceed max. When
// def or max are non-positive they default to 2s and 30s respectively.
func Clamp(requested, def, max time.Duration) time.Duration {
	if def <= 0 {
		def = 2 * time.Second
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	d := requested
	if d <= 0 {
		d = def
	}
	if d > max {
		d = max
	}
	return d
}

// WithBudget derives a context carrying the clamped per-request deadline.
// The returned cancel must be called when the request finishes.
func WithBudget(ctx context.Context, requested, def, max time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, Clamp(requested, def, max))
}
