package resilience

import (
	"context"
	"testing"
	"time"
)

// TestClamp checks request/default/max resolution.
func TestClamp(t *testing.T) {
	def, max := 2*time.Second, 10*time.Second
	cases := []struct {
		requested time.Duration
		want      time.Duration
	}{
		{0, def},            // no ask: default
		{-time.Second, def}, // nonsense ask: default
		{time.Second, time.Second},
		{time.Minute, max}, // over policy: clamped
		{max, max},
	}
	for _, tc := range cases {
		if got := Clamp(tc.requested, def, max); got != tc.want {
			t.Fatalf("Clamp(%v) = %v, want %v", tc.requested, got, tc.want)
		}
	}
	// Zero policy values get library defaults rather than zero budgets.
	if got := Clamp(0, 0, 0); got <= 0 {
		t.Fatalf("Clamp with zero policy = %v, want positive", got)
	}
}

// TestWithBudget checks the derived context carries the clamped deadline.
func TestWithBudget(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), time.Hour, 2*time.Second, 5*time.Second)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline set")
	}
	if until := time.Until(dl); until > 5*time.Second || until < 4*time.Second {
		t.Fatalf("deadline %v out, want about 5s (clamped)", until)
	}
}
