// Package resilience is the dependency-free robustness toolkit the sosd
// scheduling service runs behind. The ROADMAP's north star is a service that
// survives heavy, continuous traffic; once arrivals are a stream rather than
// a batch, the dominant failure modes stop being simulator bugs and become
// overload, retry storms and cascading failure. This package provides the
// standard defenses as small, independently testable primitives:
//
//   - Limiter: token-bucket admission control. Requests beyond the
//     provisioned rate are shed at the door (HTTP 429) instead of queuing
//     unboundedly — shedding early keeps latency bounded for the requests
//     that are admitted.
//   - Breaker: a three-state (closed / open / half-open) circuit breaker
//     keyed on the error rate over a sliding window of outcomes. A sick
//     backend fails fast instead of soaking up queue slots; after a cooldown
//     a bounded number of probes decide whether to close again.
//   - Do + Budget: retry with full-jitter exponential backoff, capped by a
//     per-client retry budget so a single failing client cannot multiply its
//     own load (the retry-storm defense).
//   - Clamp / WithBudget: per-request deadline propagation. Every admitted
//     request carries a context deadline derived from the client's ask,
//     clamped by server policy, so no request waits past its deadline no
//     matter where in the pipeline it sits.
//   - Queue: a bounded work queue with backpressure. Saturation is an
//     immediate, explicit error (HTTP 503), and draining stops intake while
//     letting in-flight work finish.
//
// Everything takes an injectable clock / sleeper / jitter source, so the
// service can make retry timing deterministic per request seed and the tests
// can drive state machines without wall-clock sleeps. Nil receivers are
// valid no-ops wherever a caller might reasonably not configure a primitive
// (a nil *Limiter admits everything, a nil *Breaker never opens), matching
// the repo's nil-Recorder / nil-Watchdog convention.
package resilience
