package core

import (
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/cpu"
	"symbios/internal/parallel"
	"symbios/internal/workload"
)

// soloBatch is how many calibration cores one worker drives as a single
// cpu.Batch work item. Batching only regroups the work — each job still
// runs alone on its own fresh core for the same cycles, so the measured
// rates are bit-identical to the one-job-per-work-item fan-out.
const soloBatch = 4

// SoloRates measures each task's natural offer rate — the single-threaded
// IPC that forms the weighted-speedup denominator. Each job is run alone on
// a fresh machine (all of a multithreaded job's threads together, per the
// Section 7 extension: "the issue rate of the job running alone, with no
// other jobs in the coschedule"), for warmup cycles to fill the caches and
// then measure cycles of observation.
//
// The calibration jobs are rebuilt from the originals' specs and seeds so
// the mix's own progress is untouched; streams are pure functions, so the
// rebuilt job replays identically.
func SoloRates(cfg arch.Config, jobs []*workload.Job, seeds []uint64, warmup, measure uint64) ([]float64, error) {
	if len(jobs) != len(seeds) {
		return nil, fmt.Errorf("core: %d jobs but %d seeds", len(jobs), len(seeds))
	}
	if measure == 0 {
		return nil, fmt.Errorf("core: zero measurement interval")
	}
	// Each calibration runs its job alone on a fresh core; the cores are
	// independent, so groups of them advance together as one cpu.Batch and
	// the groups fan out across workers. Per-job rate groups are flattened
	// in job order, identical to the serial sweep.
	groups := chunkRanges(len(jobs), soloBatch)
	perGroup, err := parallel.Map(groups, parallel.Options{}, func(_ int, g [2]int) ([][]float64, error) {
		return soloGroup(cfg, jobs[g[0]:g[1]], seeds[g[0]:g[1]], warmup, measure)
	})
	if err != nil {
		return nil, err
	}
	var rates []float64
	for _, group := range perGroup {
		for _, solo := range group {
			rates = append(rates, solo...)
		}
	}
	return rates, nil
}

// chunkRanges splits [0,n) into half-open [lo,hi) ranges of at most size.
func chunkRanges(n, size int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// soloGroup calibrates a group of jobs on one cpu.Batch: every job gets
// its own core, the batch advances them all through warmup and then the
// measurement window.
func soloGroup(cfg arch.Config, jobs []*workload.Job, seeds []uint64, warmup, measure uint64) ([][]float64, error) {
	var batch cpu.Batch
	cores := make([]*cpu.Core, len(jobs))
	rebuilt := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		if j.Spec.Threads > cfg.Contexts {
			return nil, fmt.Errorf("core: calibrating %s: %d threads exceed %d contexts",
				j.Name(), j.Spec.Threads, cfg.Contexts)
		}
		r, err := workload.NewJob(j.Spec, j.ID, seeds[i])
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", j.Name(), err)
		}
		c, err := cpu.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", j.Name(), err)
		}
		for t := 0; t < r.Threads(); t++ {
			c.Attach(t, r.Source(t), 0, r.Gate(), t)
		}
		cores[i], rebuilt[i] = c, r
		batch.Add(c)
	}
	batch.Run(warmup)
	before := make([][]uint64, len(jobs))
	for i, c := range cores {
		before[i] = make([]uint64, rebuilt[i].Threads())
		for t := range before[i] {
			before[i][t] = c.ThreadCommitted(t)
		}
	}
	batch.Run(measure)
	out := make([][]float64, len(jobs))
	for i, c := range cores {
		rates := make([]float64, rebuilt[i].Threads())
		for t := range rates {
			delta := c.ThreadCommitted(t) - before[i][t]
			rates[t] = float64(delta) / float64(measure)
			if rates[t] <= 0 {
				return nil, fmt.Errorf("core: calibrating %s: thread %d made no progress alone",
					jobs[i].Name(), t)
			}
		}
		out[i] = rates
	}
	return out, nil
}
