package core

import (
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/cpu"
	"symbios/internal/parallel"
	"symbios/internal/workload"
)

// SoloRates measures each task's natural offer rate — the single-threaded
// IPC that forms the weighted-speedup denominator. Each job is run alone on
// a fresh machine (all of a multithreaded job's threads together, per the
// Section 7 extension: "the issue rate of the job running alone, with no
// other jobs in the coschedule"), for warmup cycles to fill the caches and
// then measure cycles of observation.
//
// The calibration jobs are rebuilt from the originals' specs and seeds so
// the mix's own progress is untouched; streams are pure functions, so the
// rebuilt job replays identically.
func SoloRates(cfg arch.Config, jobs []*workload.Job, seeds []uint64, warmup, measure uint64) ([]float64, error) {
	if len(jobs) != len(seeds) {
		return nil, fmt.Errorf("core: %d jobs but %d seeds", len(jobs), len(seeds))
	}
	if measure == 0 {
		return nil, fmt.Errorf("core: zero measurement interval")
	}
	// Each calibration runs the job alone on a fresh machine, so the jobs
	// fan out across workers; per-job rate groups are flattened in job
	// order, identical to the serial sweep.
	perJob, err := parallel.Map(jobs, parallel.Options{}, func(i int, j *workload.Job) ([]float64, error) {
		solo, err := soloJob(cfg, j.Spec, j.ID, seeds[i], warmup, measure)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", j.Name(), err)
		}
		return solo, nil
	})
	if err != nil {
		return nil, err
	}
	var rates []float64
	for _, solo := range perJob {
		rates = append(rates, solo...)
	}
	return rates, nil
}

// soloJob returns the per-thread solo IPC of one job.
func soloJob(cfg arch.Config, spec workload.Spec, id int, seed uint64, warmup, measure uint64) ([]float64, error) {
	if spec.Threads > cfg.Contexts {
		return nil, fmt.Errorf("%d threads exceed %d contexts", spec.Threads, cfg.Contexts)
	}
	j, err := workload.NewJob(spec, id, seed)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	for t := 0; t < j.Threads(); t++ {
		c.Attach(t, j.Source(t), 0, j.Gate(), t)
	}
	c.Run(warmup)
	before := make([]uint64, j.Threads())
	for t := range before {
		before[t] = c.ThreadCommitted(t)
	}
	c.Run(measure)
	rates := make([]float64, j.Threads())
	for t := range rates {
		delta := c.ThreadCommitted(t) - before[t]
		rates[t] = float64(delta) / float64(measure)
		if rates[t] <= 0 {
			return nil, fmt.Errorf("thread %d made no progress alone", t)
		}
	}
	return rates, nil
}
