package core

import (
	"math"
	"testing"

	"symbios/internal/counters"
	"symbios/internal/schedule"
)

// mkSamples hand-builds a sample set with one clearly best schedule per
// predictor dimension.
func mkSamples() []Sample {
	s := func(i int) schedule.Schedule {
		return schedule.Schedule{Order: []int{0, 1, 2, 3}, Y: 2, Z: 2}
	}
	return []Sample{
		{Sched: s(0), IPC: 2.0, AllConf: 100, Dcache: 95.0, FQ: 10, FP: 20, Sum2: 30, Diversity: 0.10, Balance: 0.50},
		{Sched: s(1), IPC: 3.0, AllConf: 140, Dcache: 94.0, FQ: 12, FP: 25, Sum2: 37, Diversity: 0.20, Balance: 0.40},
		{Sched: s(2), IPC: 2.5, AllConf: 90, Dcache: 97.5, FQ: 6, FP: 15, Sum2: 21, Diversity: 0.05, Balance: 0.10},
		{Sched: s(3), IPC: 2.2, AllConf: 120, Dcache: 96.0, FQ: 8, FP: 30, Sum2: 38, Diversity: 0.15, Balance: 0.90},
	}
}

// TestPickPerPredictor: each scalar predictor picks the sample its rule
// says is best.
func TestPickPerPredictor(t *testing.T) {
	samples := mkSamples()
	want := map[Predictor]int{
		PredIPC:       1, // highest IPC
		PredAllConf:   2, // lowest summed conflicts
		PredDcache:    2, // highest hit rate
		PredFQ:        2, // lowest FQ conflicts
		PredFP:        2, // lowest FP conflicts
		PredSum2:      2, // lowest FQ+FP
		PredDiversity: 2, // lowest |fp-int|
		PredBalance:   2, // smoothest
	}
	for p, wantIdx := range want {
		if got := Pick(samples, p); got != wantIdx {
			t.Errorf("%s picked %d, want %d", p, got, wantIdx)
		}
	}
}

// TestComposite checks the literal formula: 0.9 / min ratio + 0.1/Balance.
func TestComposite(t *testing.T) {
	samples := mkSamples()
	// Lowest FQ=6, FP=15, Sum2=21. For sample 0: ratios 10/6, 20/15, 30/21
	// -> min = 20/15 = 4/3. Composite = 0.9/(4/3) + 0.1/0.5.
	want := 0.9/(20.0/15.0) + 0.1/(0.50+1e-9)
	if got := Composite(samples, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("Composite = %f, want %f", got, want)
	}
	// Sample 2 holds every Lowest: min ratio 1, so 0.9 + 0.1/0.1 = 1.9.
	if got := Composite(samples, 2); math.Abs(got-(0.9+0.1/(0.10+1e-9))) > 1e-6 {
		t.Errorf("Composite(best) = %f", got)
	}
	// Composite must rank sample 2 top.
	if Pick(samples, PredComposite) != 2 {
		t.Error("Composite did not pick the low-conflict smooth schedule")
	}
}

// TestScoreMajority: Score tallies votes from the other predictors; with
// sample 2 winning 8 of 9 dimensions, it must win the vote.
func TestScoreMajority(t *testing.T) {
	if got := Pick(mkSamples(), PredScore); got != 2 {
		t.Errorf("Score picked %d, want 2", got)
	}
}

// TestScoreTieBreak: with votes split evenly, the relative magnitude of
// predicted goodness decides.
func TestScoreTieBreak(t *testing.T) {
	s := schedule.Schedule{Order: []int{0, 1}, Y: 2, Z: 2}
	samples := []Sample{
		// Sample 0: hugely better IPC and Dcache; slightly worse elsewhere.
		{Sched: s, IPC: 5.0, AllConf: 101, Dcache: 99, FQ: 10.1, FP: 20.1, Sum2: 30.2, Diversity: 0.101, Balance: 0.101},
		// Sample 1: marginally better on the conflict dimensions.
		{Sched: s, IPC: 1.0, AllConf: 100, Dcache: 50, FQ: 10.0, FP: 20.0, Sum2: 30.0, Diversity: 0.100, Balance: 0.100},
	}
	// Votes: sample 0 takes IPC + Dcache (2); sample 1 takes AllConf, FQ,
	// FP, Sum2, Diversity, Balance, Composite (7) -> sample 1 outright.
	if got := Pick(samples, PredScore); got != 1 {
		t.Errorf("Score picked %d, want 1", got)
	}
}

// TestPickSingleSample degenerates gracefully.
func TestPickSingleSample(t *testing.T) {
	samples := mkSamples()[:1]
	for _, p := range Predictors() {
		if Pick(samples, p) != 0 {
			t.Errorf("%s did not pick the only sample", p)
		}
	}
}

// TestPredictorNames covers presentation strings.
func TestPredictorNames(t *testing.T) {
	want := []string{"IPC", "AllConf", "Dcache", "FQ", "FP", "Sum2", "Diversity", "Balance", "Composite", "Score"}
	ps := Predictors()
	if len(ps) != len(want) {
		t.Fatalf("%d predictors", len(ps))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("predictor %d = %q, want %q", i, p, want[i])
		}
	}
	if Predictor(99).String() != "Predictor(99)" {
		t.Error("unknown predictor name")
	}
}

// TestNewSampleDerivation: the counter-to-sample math matches the paper's
// definitions.
func TestNewSampleDerivation(t *testing.T) {
	var c counters.Set
	c.Cycles = 1000
	c.Committed = 2000
	c.FPCommitted = 1200
	c.IntCommitted = 500
	c.L1DHits, c.L1DMisses = 975, 25
	c.ConflictCycles[counters.FQ] = 100
	c.ConflictCycles[counters.FPUnits] = 300
	c.ConflictCycles[counters.IQ] = 50

	res := RunResult{
		Cycles:    1000,
		Counters:  c,
		SliceIPCs: []float64{2.0, 2.0, 2.0},
	}
	s := NewSample(schedule.Schedule{Order: []int{0, 1}, Y: 2, Z: 2}, res)
	if s.IPC != 2.0 {
		t.Errorf("IPC %f", s.IPC)
	}
	if s.FQ != 10 || s.FP != 30 || s.Sum2 != 40 {
		t.Errorf("FQ/FP/Sum2 = %f/%f/%f", s.FQ, s.FP, s.Sum2)
	}
	if s.AllConf != 45 {
		t.Errorf("AllConf %f", s.AllConf)
	}
	if s.Dcache != 97.5 {
		t.Errorf("Dcache %f", s.Dcache)
	}
	if math.Abs(s.Diversity-math.Abs(0.6-0.25)) > 1e-12 {
		t.Errorf("Diversity %f", s.Diversity)
	}
	if s.Balance != 0 {
		t.Errorf("Balance %f for constant slice IPCs", s.Balance)
	}
}

// TestExtPredictorNames covers the experimental predictor mnemonics.
func TestExtPredictorNames(t *testing.T) {
	want := []string{"WeightedConf", "Mispredict", "MemSystem", "IPCBalance", "RankFusion"}
	ps := ExtPredictors()
	if len(ps) != len(want) {
		t.Fatalf("%d ext predictors", len(ps))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("ext predictor %d = %q, want %q", i, p, want[i])
		}
	}
	if ExtPredictor(99).String() != "ExtPredictor(99)" {
		t.Error("unknown ext predictor name")
	}
}

// TestPickExt: each experimental predictor picks by its own rule on a
// hand-built sample set.
func TestPickExt(t *testing.T) {
	samples := mkSamples()
	samples[0].Mispredict, samples[1].Mispredict = 0.10, 0.02
	samples[2].Mispredict, samples[3].Mispredict = 0.05, 0.08
	samples[0].L2Hit, samples[1].L2Hit = 90, 80
	samples[2].L2Hit, samples[3].L2Hit = 99, 85

	if got := PickExt(samples, ExtMispredict); got != 1 {
		t.Errorf("Mispredict picked %d, want 1", got)
	}
	if got := PickExt(samples, ExtMemSystem); got != 2 {
		t.Errorf("MemSystem picked %d, want 2", got)
	}
	// IPCBalance: IPC - 2*Balance => s0: 1.0, s1: 2.2, s2: 2.3, s3: 0.4.
	if got := PickExt(samples, ExtIPCBalance); got != 2 {
		t.Errorf("IPCBalance picked %d, want 2", got)
	}
	// RankFusion: sample 2 ranks first on Sum2 and Balance, third on IPC.
	if got := PickExt(samples, ExtRankFusion); got != 2 {
		t.Errorf("RankFusion picked %d, want 2", got)
	}
	// WeightedConf favours low weighted conflicts; sample 2 has the lowest
	// FP/FQ/IQ and the best Dcache.
	if got := PickExt(samples, ExtWeightedConf); got != 2 {
		t.Errorf("WeightedConf picked %d, want 2", got)
	}
}

// TestRankOf: ranks are a permutation and agree with goodness ordering.
func TestRankOf(t *testing.T) {
	samples := mkSamples()
	seen := map[int]bool{}
	for i := range samples {
		r := rankOf(samples, PredIPC, i)
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
	if rankOf(samples, PredIPC, 1) != 0 {
		t.Error("highest-IPC sample not rank 0")
	}
}
