// Package core implements the paper's contribution: the SOS (Sample,
// Optimize, Symbios) jobscheduler for a simultaneous multithreading
// processor.
//
// SOS runs in two phases. In the sample phase it permutes the set of
// coscheduled jobs while making fair progress through the jobmix, reading
// the hardware performance counters after each schedule it tries. It then
// applies a predictor (Section 5.1) to the samples to guess which schedule
// will deliver the highest weighted speedup, and runs that schedule in the
// symbios phase. Because the sample phase performs exactly as much useful
// work as a naive scheduler would, sampling is overhead-free; the only cost
// is the occasional reading and resetting of counters.
package core

import (
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/cpu"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Task is one schedulable entry: a software thread of a job. On an SMT
// machine each scheduled task occupies one hardware context. A
// single-threaded job is one task; the two threads of ARRAY in the Jpb
// mixes are two tasks that the scheduler may or may not coschedule.
type Task struct {
	Job    *workload.Job
	Thread int
}

// Name renders the task for diagnostics, e.g. "ARRAY.1".
func (t Task) Name() string {
	if t.Job.Threads() == 1 {
		return t.Job.Name()
	}
	return fmt.Sprintf("%s.%d", t.Job.Name(), t.Thread)
}

// Machine binds a simulated SMT core to a jobmix and executes schedules
// timeslice by timeslice, preserving each task's progress across context
// switches.
type Machine struct {
	Core  *cpu.Core
	tasks []Task

	// SliceCycles is the timeslice length ("every 5 million cycles ... the
	// jobscheduler receives a clock pulse", scaled per the harness).
	SliceCycles uint64

	// taskCtx[i] is the hardware context task i occupies, or -1.
	taskCtx []int
}

// NewMachine constructs a machine for cfg over the given jobs. Tasks are
// the (job, thread) pairs in job-list order — the task indexing every
// Schedule refers to.
func NewMachine(cfg arch.Config, jobs []*workload.Job, sliceCycles uint64) (*Machine, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if sliceCycles == 0 {
		return nil, fmt.Errorf("core: zero timeslice")
	}
	m := &Machine{Core: c, SliceCycles: sliceCycles}
	for _, j := range jobs {
		for t := 0; t < j.Threads(); t++ {
			m.tasks = append(m.tasks, Task{Job: j, Thread: t})
		}
	}
	if len(m.tasks) < cfg.Contexts {
		return nil, fmt.Errorf("core: %d tasks for %d contexts; the running set cannot be filled", len(m.tasks), cfg.Contexts)
	}
	m.taskCtx = make([]int, len(m.tasks))
	for i := range m.taskCtx {
		m.taskCtx[i] = -1
	}
	return m, nil
}

// Tasks returns the schedulable entries in index order.
func (m *Machine) Tasks() []Task { return m.tasks }

// NumTasks returns X, the number of schedulable entries.
func (m *Machine) NumTasks() int { return len(m.tasks) }

// RunResult aggregates one schedule execution.
type RunResult struct {
	// Cycles is the simulated length of the run.
	Cycles uint64
	// Committed[i] is the instructions task i retired during the run.
	Committed []uint64
	// Counters is the counter delta over the run.
	Counters counters.Set
	// SliceIPCs is the machine IPC of each timeslice, in order (the
	// Balance predictor's input).
	SliceIPCs []float64
}

// attach puts task ti on a free context.
func (m *Machine) attach(ti int) {
	if m.taskCtx[ti] >= 0 {
		return
	}
	for ctx := 0; ctx < m.Core.Config().Contexts; ctx++ {
		if !m.Core.Occupied(ctx) {
			t := m.tasks[ti]
			m.Core.Attach(ctx, t.Job.Source(t.Thread), t.Job.Progress[t.Thread], t.Job.Gate(), t.Thread)
			m.taskCtx[ti] = ctx
			return
		}
	}
	panic("core: no free context; running set exceeds SMT level")
}

// detach removes task ti, saving its progress, and credits committed
// instructions both to the job and to acc (when non-nil).
func (m *Machine) detach(ti int, acc []uint64) {
	ctx := m.taskCtx[ti]
	if ctx < 0 {
		return
	}
	t := m.tasks[ti]
	resume, committed := m.Core.Detach(ctx)
	t.Job.Progress[t.Thread] = resume
	t.Job.Committed[t.Thread] += committed
	if acc != nil {
		acc[ti] += committed
	}
	m.taskCtx[ti] = -1
}

// RunSchedule executes s for the given number of timeslices, starting from
// the schedule's initial running set, and returns the aggregated result.
// slices is typically a multiple of s.CycleSlices() so every task receives
// equal CPU time. All tasks are detached (their progress saved) on return.
func (m *Machine) RunSchedule(s schedule.Schedule, slices int) (RunResult, error) {
	if err := s.Validate(); err != nil {
		return RunResult{}, err
	}
	if s.X() != len(m.tasks) {
		return RunResult{}, fmt.Errorf("core: schedule over %d entries, machine has %d tasks", s.X(), len(m.tasks))
	}
	if s.Y != m.Core.Config().Contexts {
		return RunResult{}, fmt.Errorf("core: schedule Y=%d, machine has %d contexts", s.Y, m.Core.Config().Contexts)
	}

	res := RunResult{
		Committed: make([]uint64, len(m.tasks)),
		SliceIPCs: make([]float64, 0, slices),
	}
	running := append([]int(nil), s.Order[:s.Y]...)
	queue := append([]int(nil), s.Order[s.Y:]...)

	start := m.Core.Snapshot()
	prev := start
	for slice := 0; slice < slices; slice++ {
		for _, ti := range running {
			m.attach(ti)
		}
		m.Core.Run(m.SliceCycles)

		snap := m.Core.Snapshot()
		d := snap.Sub(prev)
		res.SliceIPCs = append(res.SliceIPCs, d.IPC())
		prev = snap

		// Rotate: swap out the Z longest-resident running tasks FIFO,
		// admit Z from the queue head.
		z := s.Z
		for _, ti := range running[:z] {
			m.detach(ti, res.Committed)
		}
		queue = append(queue, running[:z]...)
		running = append(running[z:], queue[:z]...)
		queue = queue[z:]
	}
	// Collect the tasks still resident.
	for _, ti := range running {
		m.detach(ti, res.Committed)
	}
	end := m.Core.Snapshot()
	res.Counters = end.Sub(start)
	res.Cycles = res.Counters.Cycles
	return res, nil
}

// DetachAll removes every resident task, saving progress (used by drivers
// that interleave schedules with other work).
func (m *Machine) DetachAll() {
	for ti := range m.taskCtx {
		m.detach(ti, nil)
	}
}
