// Package core implements the paper's contribution: the SOS (Sample,
// Optimize, Symbios) jobscheduler for a simultaneous multithreading
// processor.
//
// SOS runs in two phases. In the sample phase it permutes the set of
// coscheduled jobs while making fair progress through the jobmix, reading
// the hardware performance counters after each schedule it tries. It then
// applies a predictor (Section 5.1) to the samples to guess which schedule
// will deliver the highest weighted speedup, and runs that schedule in the
// symbios phase. Because the sample phase performs exactly as much useful
// work as a naive scheduler would, sampling is overhead-free; the only cost
// is the occasional reading and resetting of counters.
package core

import (
	"context"
	"errors"
	"fmt"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/cpu"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// CounterReader interposes between the hardware performance counters and
// what the jobscheduler sees. Observe receives the true interval delta after
// each timeslice and returns the delta as the scheduler observes it —
// possibly noisy, stale, clipped or stuck (internal/faults implements the
// fault models). Returning an error wrapping ErrCounterRead marks the read
// transiently failed; RunSchedule drops that interval's observation, tallies
// it in RunResult.ReadFailures and keeps executing, so a hardened driver can
// decide whether the run's measurement is still trustworthy.
//
// The reader corrupts only the scheduler's view: task progress, committed
// instruction accounting and the weighted-speedup inputs always use the true
// machine state.
type CounterReader interface {
	Observe(delta counters.Set) (counters.Set, error)
}

// ErrCounterRead marks a transient counter read failure injected by a
// CounterReader. RunSchedule matches it with errors.Is to distinguish a lost
// observation (tolerated, counted) from a reader bug (aborts the run).
var ErrCounterRead = errors.New("core: transient counter read failure")

// Task is one schedulable entry: a software thread of a job. On an SMT
// machine each scheduled task occupies one hardware context. A
// single-threaded job is one task; the two threads of ARRAY in the Jpb
// mixes are two tasks that the scheduler may or may not coschedule.
type Task struct {
	Job    *workload.Job
	Thread int
}

// Name renders the task for diagnostics, e.g. "ARRAY.1".
func (t Task) Name() string {
	if t.Job.Threads() == 1 {
		return t.Job.Name()
	}
	return fmt.Sprintf("%s.%d", t.Job.Name(), t.Thread)
}

// Machine binds a simulated SMT core to a jobmix and executes schedules
// timeslice by timeslice, preserving each task's progress across context
// switches.
type Machine struct {
	Core  *cpu.Core
	tasks []Task

	// SliceCycles is the timeslice length ("every 5 million cycles ... the
	// jobscheduler receives a clock pulse", scaled per the harness).
	SliceCycles uint64

	// taskCtx[i] is the hardware context task i occupies, or -1.
	taskCtx []int

	// reader, when non-nil, interposes on every counter read the scheduler
	// performs (fault injection); nil reads the counters directly.
	reader CounterReader

	// sim, when non-nil, receives each timeslice's true counter delta
	// (registry observability). It never feeds back into scheduling.
	sim *SimMetrics
}

// NewMachine constructs a machine for cfg over the given jobs. Tasks are
// the (job, thread) pairs in job-list order — the task indexing every
// Schedule refers to.
func NewMachine(cfg arch.Config, jobs []*workload.Job, sliceCycles uint64) (*Machine, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if sliceCycles < 1 {
		return nil, fmt.Errorf("core: timeslice must be >= 1 cycle, got %d", sliceCycles)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: no jobs; a machine needs a non-empty jobmix")
	}
	m := &Machine{Core: c, SliceCycles: sliceCycles}
	if err := m.SetTasks(jobs); err != nil {
		return nil, err
	}
	return m, nil
}

// SetTasks rebinds the machine to a new job list — the jobmix-churn entry
// point. Any resident tasks are detached first (progress saved); jobs
// retained across the call keep their cache and predictor state, since the
// memory system tags lines by job address space. Task indices are
// renumbered in job-list order, so any previously drawn schedule is
// invalidated and the caller must resample.
func (m *Machine) SetTasks(jobs []*workload.Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("core: no jobs; a machine needs a non-empty jobmix")
	}
	if m.taskCtx != nil {
		m.DetachAll()
	}
	var tasks []Task
	for _, j := range jobs {
		for t := 0; t < j.Threads(); t++ {
			tasks = append(tasks, Task{Job: j, Thread: t})
		}
	}
	if len(tasks) < m.Core.Config().Contexts {
		return fmt.Errorf("core: %d tasks for %d contexts; the running set cannot be filled", len(tasks), m.Core.Config().Contexts)
	}
	m.tasks = tasks
	m.taskCtx = make([]int, len(tasks))
	for i := range m.taskCtx {
		m.taskCtx[i] = -1
	}
	return nil
}

// SetCounterReader interposes r on every subsequent counter read (nil
// restores direct reads). Give each machine its own reader: readers are
// stateful and the determinism contract requires the read sequence be a
// function of this machine's activity alone.
func (m *Machine) SetCounterReader(r CounterReader) { m.reader = r }

// SetSimMetrics attaches registry counter handles that receive each
// timeslice's true delta (nil detaches). Purely observational: results
// are bit-identical with metrics attached or not, and the per-slice cost
// is a handful of atomic adds with zero allocations. One SimMetrics may
// be shared by many machines; the counters aggregate.
func (m *Machine) SetSimMetrics(sm *SimMetrics) { m.sim = sm }

// Tasks returns the schedulable entries in index order.
func (m *Machine) Tasks() []Task { return m.tasks }

// Jobs returns the machine's current job list, each job once, in task
// order (the list SetTasks was last given).
func (m *Machine) Jobs() []*workload.Job {
	var out []*workload.Job
	var last *workload.Job
	for _, t := range m.tasks {
		if t.Job != last {
			out = append(out, t.Job)
			last = t.Job
		}
	}
	return out
}

// NumTasks returns X, the number of schedulable entries.
func (m *Machine) NumTasks() int { return len(m.tasks) }

// RunResult aggregates one schedule execution.
type RunResult struct {
	// Cycles is the simulated length of the run.
	Cycles uint64
	// Committed[i] is the instructions task i retired during the run.
	Committed []uint64
	// Counters is the counter delta over the run.
	Counters counters.Set
	// SliceIPCs is the machine IPC of each timeslice, in order (the
	// Balance predictor's input). Under an interposed CounterReader these
	// are the observed values; slices whose read failed outright are
	// absent.
	SliceIPCs []float64
	// ReadFailures counts timeslices whose counter read failed transiently
	// (ErrCounterRead from the interposed reader). The machine kept
	// running — progress accounting below is always true — but Counters
	// and SliceIPCs are missing those intervals, so a driver that needs a
	// trustworthy sample must retry when this is nonzero.
	ReadFailures int
}

// attach puts task ti on a free context. It reports an error — rather than
// crashing — when no context is free, so malformed (possibly fault-injected)
// schedules surface as diagnosable failures from RunSchedule.
func (m *Machine) attach(ti int) error {
	if m.taskCtx[ti] >= 0 {
		return nil
	}
	for ctx := 0; ctx < m.Core.Config().Contexts; ctx++ {
		if !m.Core.Occupied(ctx) {
			t := m.tasks[ti]
			m.Core.Attach(ctx, t.Job.Source(t.Thread), t.Job.Progress[t.Thread], t.Job.Gate(), t.Thread)
			m.taskCtx[ti] = ctx
			return nil
		}
	}
	return fmt.Errorf("core: no free context for task %s; running set exceeds SMT level %d", m.tasks[ti].Name(), m.Core.Config().Contexts)
}

// detach removes task ti, saving its progress, and credits committed
// instructions both to the job and to acc (when non-nil).
func (m *Machine) detach(ti int, acc []uint64) {
	ctx := m.taskCtx[ti]
	if ctx < 0 {
		return
	}
	t := m.tasks[ti]
	resume, committed := m.Core.Detach(ctx)
	t.Job.Progress[t.Thread] = resume
	t.Job.Committed[t.Thread] += committed
	if acc != nil {
		acc[ti] += committed
	}
	m.taskCtx[ti] = -1
}

// RunSchedule executes s for the given number of timeslices, starting from
// the schedule's initial running set, and returns the aggregated result.
// slices is typically a multiple of s.CycleSlices() so every task receives
// equal CPU time. All tasks are detached (their progress saved) on return.
func (m *Machine) RunSchedule(s schedule.Schedule, slices int) (RunResult, error) {
	return m.RunScheduleCtx(nil, s, slices)
}

// RunScheduleCtx is RunSchedule bounded by a context: the context is polled
// at every timeslice boundary and a cancelled or deadline-exceeded context
// aborts the run promptly, returning the context's error with all task
// progress saved (the machine stays consistent and reusable). A nil context
// behaves like RunSchedule. The poll never changes results: an un-aborted
// run is bit-identical with or without a context.
func (m *Machine) RunScheduleCtx(ctx context.Context, s schedule.Schedule, slices int) (RunResult, error) {
	r, err := m.newScheduleRun(s, slices)
	if err != nil {
		return RunResult{}, err
	}
	for !r.done() {
		if err := r.stepSlice(ctx); err != nil {
			return RunResult{}, err
		}
	}
	return r.finish(), nil
}

// scheduleRun is one schedule execution in progress, advanced one timeslice
// at a time. Splitting the slice loop out of RunScheduleCtx lets EvalBatch
// interleave many runs; a run's machine operations are a function of its own
// state alone, so any interleaving of independent runs produces results
// bit-identical to running each to completion by itself.
type scheduleRun struct {
	m              *Machine
	s              schedule.Schedule
	slices, slice  int
	res            RunResult
	running, queue []int
	start, prev    counters.Set
}

// newScheduleRun validates s against the machine and prepares a run.
func (m *Machine) newScheduleRun(s schedule.Schedule, slices int) (*scheduleRun, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.X() != len(m.tasks) {
		return nil, fmt.Errorf("core: schedule over %d entries, machine has %d tasks", s.X(), len(m.tasks))
	}
	if s.Y != m.Core.Config().Contexts {
		return nil, fmt.Errorf("core: schedule Y=%d, machine has %d contexts", s.Y, m.Core.Config().Contexts)
	}
	start := m.Core.Snapshot()
	return &scheduleRun{
		m:      m,
		s:      s,
		slices: slices,
		res: RunResult{
			Committed: make([]uint64, len(m.tasks)),
			SliceIPCs: make([]float64, 0, slices),
		},
		running: append([]int(nil), s.Order[:s.Y]...),
		queue:   append([]int(nil), s.Order[s.Y:]...),
		start:   start,
		prev:    start,
	}, nil
}

// done reports whether every timeslice has executed.
func (r *scheduleRun) done() bool { return r.slice >= r.slices }

// stepSlice executes one timeslice: attach the running set, run, observe the
// counter delta, rotate. On error (including context cancellation) all task
// progress is saved and the run must be abandoned.
func (r *scheduleRun) stepSlice(ctx context.Context) error {
	m := r.m
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			m.DetachAll()
			return err
		}
	}
	for _, ti := range r.running {
		if err := m.attach(ti); err != nil {
			m.DetachAll()
			return err
		}
	}
	m.Core.Run(m.SliceCycles)

	snap := m.Core.Snapshot()
	d := snap.Sub(r.prev)
	// Observability sees the true delta, before any fault-injected
	// reader corrupts the scheduler's view.
	m.sim.recordSlice(d)
	if m.reader != nil {
		// The scheduler reads the counters through the interposed
		// (possibly faulty) reader; progress accounting below stays
		// true regardless. A transient read failure loses only the
		// observation — the hardware does not stop because the PMU
		// misbehaved — and is tallied for the caller to judge; any
		// other reader error is a harness bug and aborts.
		obs, err := m.reader.Observe(d)
		switch {
		case err == nil:
			d = obs
			r.res.Counters = r.res.Counters.Add(d)
			r.res.SliceIPCs = append(r.res.SliceIPCs, d.IPC())
		case errors.Is(err, ErrCounterRead):
			r.res.ReadFailures++
			m.sim.recordReadFailure()
		default:
			m.DetachAll()
			return fmt.Errorf("core: slice %d: %w", r.slice, err)
		}
	} else {
		r.res.SliceIPCs = append(r.res.SliceIPCs, d.IPC())
	}
	r.prev = snap

	// Rotate: swap out the Z longest-resident running tasks FIFO,
	// admit Z from the queue head.
	z := r.s.Z
	for _, ti := range r.running[:z] {
		m.detach(ti, r.res.Committed)
	}
	r.queue = append(r.queue, r.running[:z]...)
	r.running = append(r.running[z:], r.queue[:z]...)
	r.queue = r.queue[z:]
	r.slice++
	return nil
}

// finish detaches the resident tasks and returns the aggregated result.
func (r *scheduleRun) finish() RunResult {
	m := r.m
	for _, ti := range r.running {
		m.detach(ti, r.res.Committed)
	}
	end := m.Core.Snapshot()
	if m.reader == nil {
		r.res.Counters = end.Sub(r.start)
	}
	// Cycles is the timebase, always true even under an interposed reader:
	// the weighted-speedup metric measures real machine time.
	r.res.Cycles = end.Sub(r.start).Cycles
	return r.res
}

// DetachAll removes every resident task, saving progress (used by drivers
// that interleave schedules with other work).
func (m *Machine) DetachAll() {
	for ti := range m.taskCtx {
		m.detach(ti, nil)
	}
}
