package core

import (
	"testing"
	"time"

	"symbios/internal/arch"
	"symbios/internal/workload"
)

// TestSoloIPCProfile reports each benchmark's solo IPC on the default core.
// It checks the coarse calibration targets: floating-point scientific codes
// run at high IPC, integer workstation codes at distinctly lower IPC.
func TestSoloIPCProfile(t *testing.T) {
	cfg := arch.Default21264(2)
	start := time.Now()
	total := uint64(0)
	ipcs := map[string]float64{}
	for _, name := range workload.Names() {
		spec := workload.MustLookup(name)
		spec.Threads = 1 // solo thread rate
		spec.SyncEvery = 0
		job := workload.MustNewJob(spec, 0, 42)
		rates, err := SoloRates(cfg, []*workload.Job{job}, []uint64{42}, 200_000, 300_000)
		if err != nil {
			t.Fatalf("calibrating %s: %v", name, err)
		}
		ipcs[name] = rates[0]
		total += 500_000
		t.Logf("%-9s solo IPC %.3f", name, rates[0])
	}
	elapsed := time.Since(start)
	t.Logf("simulated %d cycles in %v (%.2f Mcycles/s)", total, elapsed, float64(total)/elapsed.Seconds()/1e6)

	if ipcs["EP"] < ipcs["GO"] {
		t.Errorf("EP (%.2f) should out-run GO (%.2f)", ipcs["EP"], ipcs["GO"])
	}
	if ipcs["FP"] < ipcs["GCC"] {
		t.Errorf("FP (%.2f) should out-run GCC (%.2f)", ipcs["FP"], ipcs["GCC"])
	}
}
