package core

import (
	"fmt"
	"math"
	"sort"
)

// Experimental predictors beyond the paper's ten. The paper notes "we
// tried several composite predictors" and that the obvious idea — weighting
// each conflict by its latency penalty — did not correlate: "conflicts only
// cause a drop in throughput if no job can make progress". These variants
// make that exploration reproducible: they are evaluated head-to-head with
// the paper's predictors by experiments.PredictorShootout, not used by SOS
// itself.
type ExtPredictor int

// The experimental predictors.
const (
	// ExtWeightedConf weights each resource's conflict percentage by a
	// latency-derived penalty (the intuition the paper tested and
	// rejected). Lower is better.
	ExtWeightedConf ExtPredictor = iota
	// ExtMispredict prefers the schedule with the lowest shared-predictor
	// mispredict rate (branch-table interference proxy).
	ExtMispredict
	// ExtMemSystem prefers the schedule with the best combined L1D/L2 hit
	// behaviour (memory-subsystem proxy).
	ExtMemSystem
	// ExtIPCBalance trades mean IPC against its timeslice variance:
	// IPC - 2*Balance. Higher is better.
	ExtIPCBalance
	// ExtRankFusion sums each schedule's rank under IPC, Sum2 and Balance
	// (a robust, scale-free cousin of Score). Lower is better.
	ExtRankFusion
	NumExtPredictors
)

// String names the experimental predictor.
func (p ExtPredictor) String() string {
	switch p {
	case ExtWeightedConf:
		return "WeightedConf"
	case ExtMispredict:
		return "Mispredict"
	case ExtMemSystem:
		return "MemSystem"
	case ExtIPCBalance:
		return "IPCBalance"
	case ExtRankFusion:
		return "RankFusion"
	}
	return fmt.Sprintf("ExtPredictor(%d)", int(p))
}

// ExtPredictors lists the experimental predictors.
func ExtPredictors() []ExtPredictor {
	ps := make([]ExtPredictor, NumExtPredictors)
	for i := range ps {
		ps[i] = ExtPredictor(i)
	}
	return ps
}

// extGoodness returns a higher-is-better value for sample i.
func extGoodness(samples []Sample, p ExtPredictor, i int) float64 {
	s := samples[i]
	switch p {
	case ExtWeightedConf:
		// Latency-weighted conflict mix: fp unit conflicts cost ~4 cycles,
		// queue conflicts stall dispatch (~2), dcache misses ~12. The paper
		// found no such weighting that beat the simple predictors.
		return -(4*s.FP + 2*(s.FQ+s.IQ) + 12*(100-s.Dcache))
	case ExtMispredict:
		return -s.Mispredict
	case ExtMemSystem:
		return s.Dcache + 0.25*s.L2Hit
	case ExtIPCBalance:
		return s.IPC - 2*s.Balance
	case ExtRankFusion:
		return -float64(rankOf(samples, PredIPC, i) + rankOf(samples, PredSum2, i) + rankOf(samples, PredBalance, i))
	}
	panic("core: unknown experimental predictor")
}

// rankOf returns sample i's 0-based rank (0 = best) under scalar predictor
// p.
func rankOf(samples []Sample, p Predictor, i int) int {
	type kv struct {
		idx int
		g   float64
	}
	order := make([]kv, len(samples))
	for j := range samples {
		order[j] = kv{j, goodness(samples, p, j)}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].g > order[b].g })
	for r, e := range order {
		if e.idx == i {
			return r
		}
	}
	return len(samples)
}

// PickExt returns the index of the sample the experimental predictor deems
// best.
func PickExt(samples []Sample, p ExtPredictor) int {
	if len(samples) == 0 {
		panic("core: PickExt over no samples")
	}
	best := 0
	bestG := math.Inf(-1)
	for i := range samples {
		if g := extGoodness(samples, p, i); g > bestG {
			best, bestG = i, g
		}
	}
	return best
}
