package core

import (
	"context"
	"fmt"

	"symbios/internal/schedule"
)

// EvalBatch advances many independent schedule evaluations through one
// pass. Each Add enqueues a (machine, schedule, slices) run; Run interleaves
// them timeslice by timeslice on the calling goroutine.
//
// Batching amortizes per-evaluation dispatch overhead across the
// pairwise/shootout/Figure-1 fan-outs: a worker claims one batch (one
// coarse work item for the parallel pool) instead of one schedule, and the
// batch walks its runs round-robin so the instruction and data footprint of
// each simulated core stays warm across its own consecutive slices.
//
// Equivalence contract: each run's machine touches only its own state, and
// every run executes exactly the operation sequence RunScheduleCtx would
// execute, in the same order. Interleaving at slice granularity therefore
// yields results bit-identical to evaluating each schedule alone — golden
// tests pin this. Machines must be distinct; two runs sharing a machine
// would interleave attachments on one core.
type EvalBatch struct {
	runs []*scheduleRun
}

// Add enqueues one evaluation and returns its index into Run's results.
// The machine must not appear in any other pending run of this batch.
func (b *EvalBatch) Add(m *Machine, s schedule.Schedule, slices int) (int, error) {
	for _, r := range b.runs {
		if r.m == m {
			return 0, fmt.Errorf("core: machine already enqueued in this batch")
		}
	}
	r, err := m.newScheduleRun(s, slices)
	if err != nil {
		return 0, err
	}
	b.runs = append(b.runs, r)
	return len(b.runs) - 1, nil
}

// Run executes all enqueued evaluations to completion, interleaved at
// timeslice granularity, and returns their results in Add order. On error
// (including context cancellation) every run's task progress is saved and
// the whole batch is abandoned; the machines stay consistent and reusable.
// The batch is drained afterwards either way.
func (b *EvalBatch) Run(ctx context.Context) ([]RunResult, error) {
	runs := b.runs
	b.runs = nil
	out := make([]RunResult, len(runs))
	active := len(runs)
	for active > 0 {
		for i, r := range runs {
			if r == nil {
				continue
			}
			if err := r.stepSlice(ctx); err != nil {
				for _, o := range runs {
					if o != nil && o != r {
						o.m.DetachAll()
					}
				}
				return nil, err
			}
			if r.done() {
				out[i] = r.finish()
				runs[i] = nil
				active--
			}
		}
	}
	return out, nil
}
