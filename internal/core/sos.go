package core

import (
	"fmt"

	"symbios/internal/metrics"
	"symbios/internal/obs"
	"symbios/internal/rng"
	"symbios/internal/schedule"
)

// Options configures an SOS run.
type Options struct {
	// Samples is the number of random schedules evaluated in the sample
	// phase (the paper uses 10, or all of them when fewer exist).
	Samples int
	// Predictor selects the dynamic predictor used to pick the symbios
	// schedule; the paper's best overall performer is Score.
	Predictor Predictor
	// SymbiosSlices is the symbios phase length in timeslices (the paper
	// runs 2 billion cycles against a ~10x shorter sample phase).
	SymbiosSlices int
	// WarmupCycles are simulated before sampling begins, so the sample
	// phase observes a warm memory system rather than coldstart artifacts
	// (the paper begins "with each benchmark partially executed"). The
	// warmup runs the first sampled schedule and performs normal work.
	WarmupCycles uint64
	// Seed drives schedule sampling.
	Seed uint64
	// Tracer, when non-nil, receives phase spans (sos/warmup, sos/sample,
	// sos/optimize, sos/symbios). Observability only — a tracer never
	// changes what Run computes.
	Tracer *obs.Tracer
}

// Result reports a full SOS run.
type Result struct {
	// Samples holds the sample-phase records, in evaluation order.
	Samples []Sample
	// SampleCycles is the total length of the sample phase.
	SampleCycles uint64
	// ChosenIdx indexes Samples; Chosen is its schedule.
	ChosenIdx int
	Chosen    schedule.Schedule
	// Symbios is the symbios-phase execution of the chosen schedule.
	Symbios RunResult
	// WeightedSpeedup is WS(t) over the symbios phase, when solo rates were
	// supplied.
	WeightedSpeedup float64
}

// SamplePhase evaluates each candidate schedule for one full rotation (the
// minimum interval over which every task receives equal CPU time) and
// returns the recorded samples. Jobs make normal progress throughout —
// sampling is overhead-free.
func SamplePhase(m *Machine, scheds []schedule.Schedule) ([]Sample, error) {
	if len(scheds) == 0 {
		return nil, fmt.Errorf("core: no schedules to sample")
	}
	samples := make([]Sample, 0, len(scheds))
	for _, s := range scheds {
		res, err := m.RunSchedule(s, s.CycleSlices())
		if err != nil {
			return nil, err
		}
		samples = append(samples, NewSample(s, res))
	}
	return samples, nil
}

// Run executes the complete SOS pipeline on m: sample opt.Samples random
// distinct schedules, choose one with opt.Predictor, then run it for
// opt.SymbiosSlices. soloIPC, when non-nil, must hold each task's solo
// offer rate (see SoloRates) and enables the weighted-speedup report.
func Run(m *Machine, y, z int, soloIPC []float64, opt Options) (Result, error) {
	if opt.Samples < 1 {
		return Result{}, fmt.Errorf("core: Samples must be >= 1")
	}
	if opt.SymbiosSlices < 1 {
		return Result{}, fmt.Errorf("core: SymbiosSlices must be >= 1")
	}
	if soloIPC != nil && len(soloIPC) != m.NumTasks() {
		return Result{}, fmt.Errorf("core: %d solo rates for %d tasks", len(soloIPC), m.NumTasks())
	}
	r := rng.New(opt.Seed)
	scheds := schedule.Sample(r, m.NumTasks(), y, z, opt.Samples)
	// Sample may return fewer schedules than requested (small spaces are
	// enumerated instead); the warmup below indexes scheds[0], so an empty
	// draw must fail here rather than crash.
	if len(scheds) == 0 {
		return Result{}, fmt.Errorf("core: schedule sampling produced no candidates for X=%d Y=%d Z=%d", m.NumTasks(), y, z)
	}

	if opt.WarmupCycles > 0 {
		rot := scheds[0].CycleSlices()
		rounds := int(opt.WarmupCycles/(uint64(rot)*m.SliceCycles)) + 1
		endWarm := opt.Tracer.Span("sos/warmup", "")
		_, err := m.RunSchedule(scheds[0], rot*rounds)
		endWarm()
		if err != nil {
			return Result{}, err
		}
	}

	endSample := opt.Tracer.Span("sos/sample", "")
	samples, err := SamplePhase(m, scheds)
	endSample()
	if err != nil {
		return Result{}, err
	}
	var sampleCycles uint64
	for _, s := range scheds {
		sampleCycles += uint64(s.CycleSlices()) * m.SliceCycles
	}

	endOpt := opt.Tracer.Span("sos/optimize", "")
	idx := Pick(samples, opt.Predictor)
	chosen := samples[idx].Sched
	endOpt()

	endSym := opt.Tracer.Span("sos/symbios", "")
	sym, err := m.RunSchedule(chosen, opt.SymbiosSlices)
	endSym()
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Samples:      samples,
		SampleCycles: sampleCycles,
		ChosenIdx:    idx,
		Chosen:       chosen,
		Symbios:      sym,
	}
	if soloIPC != nil {
		ws, err := metrics.WeightedSpeedup(sym.Cycles, sym.Committed, soloIPC)
		if err != nil {
			return Result{}, err
		}
		res.WeightedSpeedup = ws
	}
	return res, nil
}
