package core

import (
	"testing"

	"symbios/internal/rng"
)

// fabricatedSamples builds a deterministic spread of predictor quantities.
func fabricatedSamples(n int, seed uint64) []Sample {
	r := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		fq := 5 + 20*r.Float64()
		fp := 5 + 20*r.Float64()
		out[i] = Sample{
			IPC:        1 + 2*r.Float64(),
			AllConf:    10 + 50*r.Float64(),
			Dcache:     80 + 19*r.Float64(),
			FQ:         fq,
			FP:         fp,
			Sum2:       fq + fp,
			Diversity:  r.Float64(),
			Balance:    0.01 + 0.5*r.Float64(),
			Mispredict: 0.05 * r.Float64(),
			L2Hit:      85 + 14*r.Float64(),
			IQ:         5 + 20*r.Float64(),
		}
	}
	return out
}

// TestRankHeadMatchesPick checks Rank's best choice is exactly Pick's, for
// every predictor over several sample sets.
func TestRankHeadMatchesPick(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		samples := fabricatedSamples(10, seed)
		for _, p := range Predictors() {
			if p == NumPredictors {
				continue
			}
			got := Rank(samples, p)
			if got[0] != Pick(samples, p) {
				t.Fatalf("seed %d predictor %v: Rank head %d != Pick %d", seed, p, got[0], Pick(samples, p))
			}
		}
	}
}

// TestRankIsPermutation checks Rank returns each index exactly once.
func TestRankIsPermutation(t *testing.T) {
	samples := fabricatedSamples(7, 3)
	for _, p := range Predictors() {
		if p == NumPredictors {
			continue
		}
		order := Rank(samples, p)
		if len(order) != len(samples) {
			t.Fatalf("predictor %v: rank length %d, want %d", p, len(order), len(samples))
		}
		seen := make([]bool, len(samples))
		for _, i := range order {
			if i < 0 || i >= len(samples) || seen[i] {
				t.Fatalf("predictor %v: order %v is not a permutation", p, order)
			}
			seen[i] = true
		}
	}
}

// TestRankScalarMonotone checks a scalar predictor's ranking is monotone in
// its own goodness.
func TestRankScalarMonotone(t *testing.T) {
	samples := fabricatedSamples(9, 5)
	order := Rank(samples, PredIPC)
	for k := 1; k < len(order); k++ {
		if samples[order[k-1]].IPC < samples[order[k]].IPC {
			t.Fatalf("IPC ranking not monotone at position %d: %v then %v",
				k, samples[order[k-1]].IPC, samples[order[k]].IPC)
		}
	}
}

// TestRankDeterministic checks repeated calls return identical orders.
func TestRankDeterministic(t *testing.T) {
	samples := fabricatedSamples(12, 9)
	for _, p := range []Predictor{PredScore, PredComposite, PredBalance} {
		a, b := Rank(samples, p), Rank(samples, p)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("predictor %v: rank not deterministic (%v vs %v)", p, a, b)
			}
		}
	}
}
