package core

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

func mustMachine(t *testing.T, label string, seed uint64, slice uint64) (*Machine, workload.Mix) {
	t.Helper()
	mix := workload.MustMix(label)
	jobs, err := mix.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(arch.Default21264(mix.SMTLevel), jobs, slice)
	if err != nil {
		t.Fatal(err)
	}
	return m, mix
}

// TestMachineTaskOrder: tasks enumerate (job, thread) pairs in job order,
// so schedule indices are stable and documented.
func TestMachineTaskOrder(t *testing.T) {
	m, mix := mustMachine(t, "Jpb(10,2,2)", 1, 50_000)
	if m.NumTasks() != mix.Tasks() {
		t.Fatalf("%d tasks, want %d", m.NumTasks(), mix.Tasks())
	}
	tasks := m.Tasks()
	// The last two tasks are the two ARRAY threads.
	if tasks[8].Job.Name() != "ARRAY" || tasks[9].Job.Name() != "ARRAY" {
		t.Errorf("tasks 8,9 = %s,%s, want ARRAY threads", tasks[8].Name(), tasks[9].Name())
	}
	if tasks[8].Thread != 0 || tasks[9].Thread != 1 {
		t.Error("ARRAY thread indices wrong")
	}
	if tasks[8].Name() != "ARRAY.0" {
		t.Errorf("task name %q", tasks[8].Name())
	}
	if tasks[0].Name() != "FP" {
		t.Errorf("task 0 name %q", tasks[0].Name())
	}
}

// TestRunScheduleFairness: over full rotations every task runs and
// progresses; committed totals match the per-job bookkeeping.
func TestRunScheduleFairness(t *testing.T) {
	m, mix := mustMachine(t, "Jsb(6,3,3)", 2, 20_000)
	s := schedule.Schedule{Order: []int{0, 1, 2, 3, 4, 5}, Y: mix.SMTLevel, Z: mix.Swap}
	res, err := m.RunSchedule(s, 4*s.CycleSlices())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 8*20_000 {
		t.Errorf("cycles %d", res.Cycles)
	}
	if len(res.SliceIPCs) != 8 {
		t.Errorf("%d slice IPCs", len(res.SliceIPCs))
	}
	var total uint64
	for i, c := range res.Committed {
		if c == 0 {
			t.Errorf("task %d made no progress", i)
		}
		total += c
	}
	if total != res.Counters.Committed {
		t.Errorf("per-task sum %d != aggregate %d", total, res.Counters.Committed)
	}
	for i, task := range m.Tasks() {
		if task.Job.Committed[task.Thread] != res.Committed[i] {
			t.Errorf("task %d: job bookkeeping %d != result %d",
				i, task.Job.Committed[task.Thread], res.Committed[i])
		}
	}
}

// TestRunScheduleResume: consecutive runs continue job progress (no replay
// from zero).
func TestRunScheduleResume(t *testing.T) {
	m, mix := mustMachine(t, "Jsb(6,3,3)", 3, 20_000)
	s := schedule.Schedule{Order: []int{0, 1, 2, 3, 4, 5}, Y: mix.SMTLevel, Z: mix.Swap}
	if _, err := m.RunSchedule(s, 2); err != nil {
		t.Fatal(err)
	}
	prog := append([]uint64(nil), m.Tasks()[0].Job.Progress[0])
	if prog[0] == 0 {
		t.Fatal("no progress recorded after first run")
	}
	if _, err := m.RunSchedule(s, 2); err != nil {
		t.Fatal(err)
	}
	if m.Tasks()[0].Job.Progress[0] <= prog[0] {
		t.Error("second run did not continue from saved progress")
	}
}

// TestRunScheduleRejects: mismatched schedules are refused.
func TestRunScheduleRejects(t *testing.T) {
	m, _ := mustMachine(t, "Jsb(6,3,3)", 4, 20_000)
	if _, err := m.RunSchedule(schedule.Schedule{Order: []int{0, 1, 2}, Y: 3, Z: 3}, 2); err == nil {
		t.Error("schedule over wrong X accepted")
	}
	if _, err := m.RunSchedule(schedule.Schedule{Order: []int{0, 1, 2, 3, 4, 5}, Y: 2, Z: 2}, 2); err == nil {
		t.Error("schedule with Y != contexts accepted")
	}
	if _, err := m.RunSchedule(schedule.Schedule{Order: []int{0, 0, 2, 3, 4, 5}, Y: 3, Z: 3}, 2); err == nil {
		t.Error("invalid permutation accepted")
	}
}

// TestNewMachineRejects: undersized task sets and zero slices are refused.
func TestNewMachineRejects(t *testing.T) {
	mix := workload.MustMix("Jsb(6,3,3)")
	jobs, err := mix.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(arch.Default21264(3), jobs, 0); err == nil {
		t.Error("zero timeslice accepted")
	}
	if _, err := NewMachine(arch.Default21264(8), jobs, 1000); err == nil {
		t.Error("more contexts than tasks accepted")
	}
}

// TestSoloRatesBasic: calibration returns positive per-task rates and does
// not disturb the passed jobs.
func TestSoloRatesBasic(t *testing.T) {
	mix := workload.MustMix("Jsb(4,2,2)")
	jobs, err := mix.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{1, 2, 3, 4}
	rates, err := SoloRates(arch.Default21264(mix.SMTLevel), jobs, seeds, 100_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 4 {
		t.Fatalf("%d rates", len(rates))
	}
	for i, r := range rates {
		if r <= 0 || r > 8 {
			t.Errorf("task %d solo IPC %f out of range", i, r)
		}
	}
	for _, j := range jobs {
		if j.Progress[0] != 0 || j.Committed[0] != 0 {
			t.Error("calibration disturbed the mix's jobs")
		}
	}
	if _, err := SoloRates(arch.Default21264(2), jobs, seeds[:2], 1000, 1000); err == nil {
		t.Error("seed/job length mismatch accepted")
	}
}

// TestSOSRunEndToEnd: the full pipeline returns a coherent result.
func TestSOSRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)
	jobs, err := mix.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	solo, err := SoloRates(cfg, jobs, seeds, 500_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, jobs, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, mix.SMTLevel, mix.Swap, solo, Options{
		Samples:       10,
		Predictor:     PredScore,
		SymbiosSlices: 20,
		WarmupCycles:  1_000_000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Errorf("%d samples", len(res.Samples))
	}
	if res.ChosenIdx < 0 || res.ChosenIdx >= len(res.Samples) {
		t.Fatalf("chosen index %d", res.ChosenIdx)
	}
	if !res.Chosen.Equal(res.Samples[res.ChosenIdx].Sched) {
		t.Error("chosen schedule mismatch")
	}
	if res.WeightedSpeedup <= 0.5 || res.WeightedSpeedup > 4 {
		t.Errorf("weighted speedup %f implausible", res.WeightedSpeedup)
	}
	if res.Symbios.Cycles != 20*50_000 {
		t.Errorf("symbios cycles %d", res.Symbios.Cycles)
	}
}

// TestRunOptionValidation: bad options are rejected.
func TestRunOptionValidation(t *testing.T) {
	m, mix := mustMachine(t, "Jsb(6,3,3)", 5, 20_000)
	if _, err := Run(m, mix.SMTLevel, mix.Swap, nil, Options{Samples: 0, SymbiosSlices: 2}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(m, mix.SMTLevel, mix.Swap, nil, Options{Samples: 1, SymbiosSlices: 0}); err == nil {
		t.Error("zero symbios accepted")
	}
}
