package core

import (
	"fmt"
	"math"
	"sort"

	"symbios/internal/counters"
	"symbios/internal/metrics"
	"symbios/internal/schedule"
)

// Sample is what SOS records for one schedule tried during the sample
// phase: the schedule and the dynamic predictor quantities derived from the
// hardware performance counters (the columns of the paper's Table 3).
type Sample struct {
	Sched schedule.Schedule

	// IPC is the machine IPC observed while the schedule ran.
	IPC float64
	// AllConf is the summed percentage of cycles with a conflict on each of
	// the eight shared resources.
	AllConf float64
	// Dcache is the overall L1 data cache hit rate, in percent.
	Dcache float64
	// FQ and FP are the percentages of cycles with conflicts on the
	// floating-point queue and floating-point units; Sum2 is their sum.
	FQ, FP, Sum2 float64
	// Diversity is the absolute difference between the fractions of
	// floating-point and integer instructions (lower = more diverse).
	Diversity float64
	// Balance is the standard deviation of IPC between consecutive
	// timeslices (lower = smoother).
	Balance float64

	// Additional counter-derived quantities consumed by the experimental
	// predictors (predictors_ext.go); the paper's ten use only the fields
	// above.
	Mispredict float64 // branch mispredict rate in [0,1]
	L2Hit      float64 // L2 hit rate in percent
	IQ         float64 // integer queue conflict percentage
}

// NewSample derives the predictor quantities from a schedule run.
func NewSample(s schedule.Schedule, r RunResult) Sample {
	c := r.Counters
	fpFrac := 0.0
	intFrac := 0.0
	if c.Committed > 0 {
		fpFrac = float64(c.FPCommitted) / float64(c.Committed)
		intFrac = float64(c.IntCommitted) / float64(c.Committed)
	}
	fq := c.ConflictPct(counters.FQ)
	fp := c.ConflictPct(counters.FPUnits)
	l2 := 100.0
	if a := c.L2Hits + c.L2Misses; a > 0 {
		l2 = 100 * float64(c.L2Hits) / float64(a)
	}
	return Sample{
		Sched:      s,
		IPC:        c.IPC(),
		AllConf:    c.AllConflictPct(),
		Dcache:     100 * c.L1DHitRate(),
		FQ:         fq,
		FP:         fp,
		Sum2:       fq + fp,
		Diversity:  math.Abs(fpFrac - intFrac),
		Balance:    metrics.StdDev(r.SliceIPCs),
		Mispredict: c.MispredictRate(),
		L2Hit:      l2,
		IQ:         c.ConflictPct(counters.IQ),
	}
}

// Predictor identifies one of the paper's dynamic predictors (Section 5.2).
type Predictor int

// The predictors of Figure 2/3, in presentation order.
const (
	PredIPC Predictor = iota
	PredAllConf
	PredDcache
	PredFQ
	PredFP
	PredSum2
	PredDiversity
	PredBalance
	PredComposite
	PredScore
	NumPredictors
)

// String returns the predictor's paper name.
func (p Predictor) String() string {
	switch p {
	case PredIPC:
		return "IPC"
	case PredAllConf:
		return "AllConf"
	case PredDcache:
		return "Dcache"
	case PredFQ:
		return "FQ"
	case PredFP:
		return "FP"
	case PredSum2:
		return "Sum2"
	case PredDiversity:
		return "Diversity"
	case PredBalance:
		return "Balance"
	case PredComposite:
		return "Composite"
	case PredScore:
		return "Score"
	}
	return fmt.Sprintf("Predictor(%d)", int(p))
}

// Predictors lists every predictor in presentation order.
func Predictors() []Predictor {
	ps := make([]Predictor, NumPredictors)
	for i := range ps {
		ps[i] = Predictor(i)
	}
	return ps
}

// eps avoids division by zero for perfectly balanced samples.
const eps = 1e-9

// Composite computes the paper's experimental-fit predictor over a sample
// set:
//
//	0.9 / MIN{FQ/LowestFQ, FP/LowestFP, SUM2/LowestSUM2}  +  0.1 / Balance
//
// where the Lowest terms are the lowest values observed for any schedule in
// the sample phase. Higher is better: it rewards smooth (balanced)
// schedules most, with some weight on low conflicts on the critical
// floating-point resources.
func Composite(samples []Sample, i int) float64 {
	lowFQ, lowFP, lowSum2 := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, s := range samples {
		lowFQ = math.Min(lowFQ, s.FQ)
		lowFP = math.Min(lowFP, s.FP)
		lowSum2 = math.Min(lowSum2, s.Sum2)
	}
	s := samples[i]
	ratio := math.Min(ratioOf(s.FQ, lowFQ), math.Min(ratioOf(s.FP, lowFP), ratioOf(s.Sum2, lowSum2)))
	return 0.9/ratio + 0.1/(s.Balance+eps)
}

// ratioOf returns v/lowest, treating an all-zero column as neutral.
func ratioOf(v, lowest float64) float64 {
	if lowest <= eps {
		return v + 1
	}
	return v / lowest
}

// goodness returns a value for sample i under predictor p where *higher is
// better*, inverting the lower-is-better quantities. PredScore is handled
// by Pick, not here.
func goodness(samples []Sample, p Predictor, i int) float64 {
	s := samples[i]
	switch p {
	case PredIPC:
		return s.IPC
	case PredAllConf:
		return -s.AllConf
	case PredDcache:
		return s.Dcache
	case PredFQ:
		return -s.FQ
	case PredFP:
		return -s.FP
	case PredSum2:
		return -s.Sum2
	case PredDiversity:
		return -s.Diversity
	case PredBalance:
		return -s.Balance
	case PredComposite:
		return Composite(samples, i)
	}
	panic("core: goodness of non-scalar predictor")
}

// Pick returns the index of the sample that predictor p deems best. For
// PredScore it tallies one vote per scalar predictor and breaks ties by the
// relative magnitude of predicted goodness (each tied candidate's summed
// margin over the per-predictor worst, normalized by the per-predictor
// spread).
func Pick(samples []Sample, p Predictor) int {
	if len(samples) == 0 {
		panic("core: Pick over no samples")
	}
	if p != PredScore {
		best := 0
		for i := 1; i < len(samples); i++ {
			if goodness(samples, p, i) > goodness(samples, p, best) {
				best = i
			}
		}
		return best
	}

	votes, margin := scoreTally(samples)
	win := 0
	for i := 1; i < len(samples); i++ {
		if votes[i] > votes[win] || (votes[i] == votes[win] && margin[i] > margin[win]) {
			win = i
		}
	}
	return win
}

// scoreTally computes PredScore's per-sample vote counts and normalized
// margins: one vote per scalar predictor for its favourite sample, and each
// sample's summed margin over the per-predictor worst, normalized by the
// per-predictor spread.
func scoreTally(samples []Sample) (votes []int, margin []float64) {
	votes = make([]int, len(samples))
	margin = make([]float64, len(samples))
	for q := PredIPC; q < PredScore; q++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		best := 0
		for i := range samples {
			g := goodness(samples, q, i)
			lo = math.Min(lo, g)
			hi = math.Max(hi, g)
			if g > goodness(samples, q, best) {
				best = i
			}
		}
		votes[best]++
		spread := hi - lo
		if spread <= eps {
			continue
		}
		for i := range samples {
			margin[i] += (goodness(samples, q, i) - lo) / spread
		}
	}
	return votes, margin
}

// Rank orders the sample indices best-first under predictor p, consistently
// with Pick: Rank(samples, p)[0] == Pick(samples, p). Ties preserve sample
// order, so the ranking is deterministic for a deterministic sample set.
func Rank(samples []Sample, p Predictor) []int {
	if len(samples) == 0 {
		panic("core: Rank over no samples")
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	if p != PredScore {
		g := make([]float64, len(samples))
		for i := range samples {
			g[i] = goodness(samples, p, i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return g[order[a]] > g[order[b]]
		})
		return order
	}
	votes, margin := scoreTally(samples)
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := votes[order[a]], votes[order[b]]
		if va != vb {
			return va > vb
		}
		return margin[order[a]] > margin[order[b]]
	})
	return order
}
