package core

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/cpu"
	"symbios/internal/workload"
)

// TestSoloMemoryBehaviour is a diagnostic: per-benchmark solo IPC, L1D/L1I
// hit rates, TLB behaviour and branch mispredict rate after warmup.
func TestSoloMemoryBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := arch.Default21264(2)
	for _, name := range []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GO", "IS", "CG", "EP", "FT"} {
		spec := workload.MustLookup(name)
		spec.Threads, spec.SyncEvery = 1, 0
		job := workload.MustNewJob(spec, 0, 42)
		c, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Attach(0, job.Source(0), 0, nil, 0)
		c.Run(1_000_000)
		before := c.Snapshot()
		c.Run(500_000)
		d := c.Snapshot().Sub(before)
		t.Logf("%-7s IPC %.3f L1D %.1f%% L1I %.1f%% L2 %.1f%% TLBmiss/1k %.2f mispred %.2f%%",
			name, d.IPC(), 100*d.L1DHitRate(),
			100*float64(d.L1IHits)/float64(d.L1IHits+d.L1IMisses+1),
			100*float64(d.L2Hits)/float64(d.L2Hits+d.L2Misses+1),
			1000*float64(d.TLBMisses)/float64(d.Committed+1),
			100*d.MispredictRate())
	}
}

// TestCoscheduleDiag runs one tuple (FP,MG,WAVE) and one mixed tuple
// (FP,GCC,GO) and prints the conflict breakdown.
func TestCoscheduleDiag(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	run := func(names []string) {
		cfg := arch.Default21264(len(names))
		c, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range names {
			spec := workload.MustLookup(name)
			spec.Threads, spec.SyncEvery = 1, 0
			job := workload.MustNewJob(spec, i, 42+uint64(i))
			c.Attach(i, job.Source(0), 0, nil, 0)
		}
		c.Run(1_000_000)
		before := c.Snapshot()
		perT := make([]uint64, len(names))
		for i := range perT {
			perT[i] = c.ThreadCommitted(i)
		}
		c.Run(500_000)
		d := c.Snapshot().Sub(before)
		msg := ""
		for i, n := range names {
			msg += n + " "
			msg += formatIPC(float64(c.ThreadCommitted(i)-perT[i]) / 500_000)
		}
		t.Logf("%s| total IPC %.3f L1D %.1f%% L1I %.1f%%", msg, d.IPC(), 100*d.L1DHitRate(),
			100*float64(d.L1IHits)/float64(d.L1IHits+d.L1IMisses+1))
		for r := counters.Resource(0); r < counters.NumResources; r++ {
			t.Logf("  conflict %-10s %5.1f%%", r, d.ConflictPct(r))
		}
	}
	run([]string{"FP", "MG", "WAVE"})
	run([]string{"FP", "GCC", "GO"})
}

func formatIPC(v float64) string {
	return string(rune('0'+int(v))) + "." + string(rune('0'+int(v*10)%10)) + string(rune('0'+int(v*100)%10)) + " "
}

// TestAntagonistChannels: each stressor degrades a victim through its own
// resource channel — the substrate's conflict channels are real and
// separable. The victim is the NICE filler, which suffers only what the
// antagonist inflicts.
func TestAntagonistChannels(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic simulation")
	}
	victimWith := func(partner string) (float64, counters.Set) {
		cfg := arch.Default21264(2)
		c, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nice, _ := workload.Antagonist("NICE")
		vj := workload.MustNewJob(nice, 0, 11)
		c.Attach(0, vj.Source(0), 0, nil, 0)
		if partner != "" {
			spec, ok := workload.Antagonist(partner)
			if !ok {
				t.Fatalf("no antagonist %s", partner)
			}
			pj := workload.MustNewJob(spec, 1, 13)
			c.Attach(1, pj.Source(0), 0, nil, 0)
		}
		c.Run(800_000)
		before := c.ThreadCommitted(0)
		start := c.Snapshot()
		c.Run(400_000)
		d := c.Snapshot().Sub(start)
		return float64(c.ThreadCommitted(0)-before) / 400_000, d
	}

	soloIPC, _ := victimWith("")
	type expect struct {
		partner string
		check   func(d counters.Set) bool
		what    string
	}
	cases := []expect{
		{"SWEEP_D", func(d counters.Set) bool { return d.L1DHitRate() < 0.90 }, "L1D hit rate degradation"},
		{"FPHOG", func(d counters.Set) bool { return d.ConflictPct(counters.FPUnits) > 20 }, "FP unit conflicts"},
		{"BRPOLLUTE", func(d counters.Set) bool { return d.MispredictRate() > 0.10 }, "mispredict inflation"},
	}
	worstAntagonist := soloIPC
	for _, c := range cases {
		ipc, d := victimWith(c.partner)
		t.Logf("NICE solo %.3f, with %s %.3f (L1D %.1f%%, FPU conf %.1f%%, mispred %.1f%%)",
			soloIPC, c.partner, ipc, 100*d.L1DHitRate(), d.ConflictPct(counters.FPUnits), 100*d.MispredictRate())
		if !c.check(d) {
			t.Errorf("%s did not produce its signature (%s)", c.partner, c.what)
		}
		if ipc < worstAntagonist {
			worstAntagonist = ipc
		}
	}
	// A second NICE merely shares issue bandwidth (two ~5-IPC threads on an
	// 8-wide core); it must hurt the victim far less than the worst
	// antagonist does.
	niceIPC, _ := victimWith("NICE")
	if niceIPC <= worstAntagonist*1.5 {
		t.Errorf("benign partner (%.3f) nearly as harmful as the worst antagonist (%.3f)", niceIPC, worstAntagonist)
	}
	if niceIPC < 0.5*soloIPC {
		t.Errorf("NICE partner halved the victim: %.3f vs solo %.3f", niceIPC, soloIPC)
	}
}
