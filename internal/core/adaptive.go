package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"symbios/internal/obs"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// RoundRobin returns the naive scheduler's schedule over x entries at SMT
// level y: the identity circular order with a full swap every timeslice.
// This is the oblivious baseline the paper compares against and the
// degraded-mode schedule RunAdaptive falls back to when its predictor
// inputs cannot be trusted.
func RoundRobin(x, y int) (schedule.Schedule, error) {
	order := make([]int, x)
	for i := range order {
		order[i] = i
	}
	return schedule.New(order, y, y)
}

// ChurnEvent is one scripted jobmix change, fired between timeslices when
// the symbios phase has executed AtSlice slices. Departing jobs are named by
// ID; arriving jobs come pre-instantiated with their per-thread solo rates
// (calibration is the experiment layer's job — see faults.ChurnSpec).
type ChurnEvent struct {
	// AtSlice is the symbios-phase slice ordinal at which the event fires
	// (>= 1; slices spent in sample phases do not count).
	AtSlice int
	// Depart lists job IDs leaving the mix.
	Depart []int
	// Arrive lists jobs joining the mix, appended in order.
	Arrive []*workload.Job
	// ArriveSolo[i] holds the per-thread solo IPC of Arrive[i], for the
	// weighted-speedup accounting.
	ArriveSolo [][]float64
}

// AdaptiveOptions configures RunAdaptive. The zero value of every tuning
// field selects a sensible default, so callers set only what they study.
type AdaptiveOptions struct {
	// Samples, Predictor, SymbiosSlices, WarmupCycles and Seed mean exactly
	// what they do in Options.
	Samples       int
	Predictor     Predictor
	SymbiosSlices int
	WarmupCycles  uint64
	Seed          uint64

	// MaxSampleRetries bounds how many times a sample evaluation whose
	// counter reads failed transiently (ErrCounterRead) is retried before
	// the sample is skipped. Zero selects the default of 2; negative
	// disables retries.
	MaxSampleRetries int
	// BackoffSlices is the number of round-robin timeslices run between
	// retries, doubling per attempt (bounded backoff that still makes fair
	// forward progress). Zero selects the default of 1.
	BackoffSlices int
	// MonitorWindows splits the symbios phase into this many monitoring
	// windows; after each window the observed IPC is compared against the
	// sample phase's prediction. Zero selects the default of 8.
	MonitorWindows int
	// AnomalyTolerance is the relative IPC *shortfall* below the prediction
	// that triggers re-entry into the sample phase (the paper's periodic
	// resample, made event-driven): observed < (1-tol)·predicted. Beating
	// the prediction is not degradation — short sample rotations understate
	// steady-state IPC — so only shortfalls resample. Zero selects the
	// default of 0.3.
	AnomalyTolerance float64
	// MaxResamples bounds sample-phase re-entries (anomaly- or
	// churn-triggered); once exhausted, disruptions degrade to the
	// round-robin fallback. Zero selects the default of 3.
	MaxResamples int
	// DisableFallback turns the round-robin fallback into a hard error, for
	// ablating the degraded mode.
	DisableFallback bool
	// Churn scripts jobmix changes, applied in AtSlice order.
	Churn []ChurnEvent
	// Abort, when non-nil, is polled between windows and sample
	// evaluations; a fired token makes RunAdaptive return
	// parallel.ErrCancelled promptly (used by sweeps to abort in-flight
	// cells after a sibling failure). The token is a legacy adapter over
	// context.Context — new call sites should pass a context to
	// RunAdaptiveCtx instead; both are honoured when set together.
	Abort *parallel.Cancel
}

// AdaptiveResult reports a hardened SOS run.
type AdaptiveResult struct {
	// WeightedSpeedup is WS over the whole symbios phase, cycle-weighted
	// across windows and churn segments (0 when no solo rates were given).
	WeightedSpeedup float64
	// Cycles is the measured symbios-phase length.
	Cycles uint64
	// Resamples counts re-entries into the sample phase.
	Resamples int
	// Retries counts transiently failed sample evaluations that were
	// retried.
	Retries int
	// SkippedSamples counts sample candidates abandoned after the retry
	// budget.
	SkippedSamples int
	// FallbackSlices counts symbios slices scheduled by the round-robin
	// fallback rather than a predictor pick.
	FallbackSlices int
	// LostWindows counts monitoring windows whose observation was
	// incomplete (one or more counter reads failed transiently); the work
	// and the progress accounting still count, but anomaly monitoring is
	// skipped for the window.
	LostWindows int
	// Events is a deterministic, human-readable log of every degraded-mode
	// decision (retry, skip, fallback, anomaly, churn).
	Events []string
}

// plan is the scheduling decision the symbios phase currently executes.
type plan struct {
	sched    schedule.Schedule
	predIPC  float64 // sample-phase IPC of the pick; 0 disables monitoring
	fallback bool
}

// adaptiveState carries RunAdaptive's mutable pieces through its helpers.
type adaptiveState struct {
	ctx     context.Context // nil means unbounded
	m       *Machine
	y, z    int
	opt     AdaptiveOptions
	r       *rng.Stream
	jobs    []*workload.Job
	jobSolo [][]float64 // per job, per thread; nil when no solo rates
	res     *AdaptiveResult
	warmed  bool
	tr      *obs.Tracer // from the context; nil is a free no-op
}

// interrupted reports why the run must stop early: the context's error when
// it is cancelled or past its deadline (so deadline-exceeded stays
// distinguishable), parallel.ErrCancelled when the legacy token fired, nil
// otherwise.
func (a *adaptiveState) interrupted() error {
	if a.ctx != nil {
		if err := a.ctx.Err(); err != nil {
			return err
		}
	}
	if a.opt.Abort != nil && a.opt.Abort.Cancelled() {
		return parallel.ErrCancelled
	}
	return nil
}

// RunAdaptive executes the hardened SOS pipeline on m: a sample phase that
// retries transiently failed evaluations with bounded backoff, a round-robin
// fallback when the predictor inputs are degenerate, and a monitored symbios
// phase that re-enters sampling when the observed IPC deviates from the
// prediction or the jobmix churns. solo, when non-nil, must hold each task's
// solo offer rate and enables the weighted-speedup report; churn arrivals
// extend it via ChurnEvent.ArriveSolo.
func RunAdaptive(m *Machine, y, z int, solo []float64, opt AdaptiveOptions) (AdaptiveResult, error) {
	return RunAdaptiveCtx(nil, m, y, z, solo, opt)
}

// RunAdaptiveCtx is RunAdaptive bounded by a context: cancellation and
// deadlines are honoured at every timeslice, window and sample-evaluation
// boundary, returning the context's error promptly with the machine left
// consistent. A nil context behaves like RunAdaptive; the legacy
// AdaptiveOptions.Abort token is honoured alongside the context.
func RunAdaptiveCtx(ctx context.Context, m *Machine, y, z int, solo []float64, opt AdaptiveOptions) (AdaptiveResult, error) {
	if opt.Samples < 1 {
		return AdaptiveResult{}, fmt.Errorf("core: Samples must be >= 1")
	}
	if opt.SymbiosSlices < 1 {
		return AdaptiveResult{}, fmt.Errorf("core: SymbiosSlices must be >= 1")
	}
	if opt.MaxSampleRetries == 0 {
		opt.MaxSampleRetries = 2
	}
	if opt.BackoffSlices < 1 {
		opt.BackoffSlices = 1
	}
	if opt.MonitorWindows < 1 {
		opt.MonitorWindows = 8
	}
	if opt.AnomalyTolerance <= 0 {
		opt.AnomalyTolerance = 0.3
	}
	if opt.MaxResamples == 0 {
		opt.MaxResamples = 3
	}

	var res AdaptiveResult
	a := &adaptiveState{
		ctx: ctx,
		m:   m, y: y, z: z, opt: opt,
		r:    rng.New(opt.Seed),
		jobs: m.Jobs(),
		res:  &res,
		tr:   obs.TracerFrom(ctx),
	}
	if solo != nil {
		var err error
		a.jobSolo, err = splitSolo(a.jobs, solo)
		if err != nil {
			return res, err
		}
	}
	churn := append([]ChurnEvent(nil), opt.Churn...)
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].AtSlice < churn[j].AtSlice })
	for _, ev := range churn {
		if ev.AtSlice < 1 {
			return res, fmt.Errorf("core: churn event at slice %d; events fire between slices, so AtSlice must be >= 1", ev.AtSlice)
		}
		if len(ev.Arrive) != len(ev.ArriveSolo) && a.jobSolo != nil {
			return res, fmt.Errorf("core: churn event arrives %d jobs with %d solo-rate sets", len(ev.Arrive), len(ev.ArriveSolo))
		}
	}

	p, err := a.samplePlan()
	if err != nil {
		return res, err
	}

	var (
		done      int
		num       float64 // Σ committed/solo across windows
		den       uint64  // Σ cycles across windows
		nextChurn int
	)
	for done < opt.SymbiosSlices {
		if err := a.interrupted(); err != nil {
			return res, err
		}
		w := a.windowSlices(p.sched, opt.SymbiosSlices-done)
		if nextChurn < len(churn) && churn[nextChurn].AtSlice-done < w {
			w = churn[nextChurn].AtSlice - done
		}
		endWin := a.tr.Span("sos/symbios", "")
		run, err := m.RunScheduleCtx(ctx, p.sched, w)
		endWin()
		if err != nil {
			return res, err
		}
		if a.jobSolo != nil {
			soloTask := flattenSolo(a.jobSolo)
			for i, c := range run.Committed {
				num += float64(c) / soloTask[i]
			}
		}
		den += run.Cycles
		res.Cycles += run.Cycles
		if run.ReadFailures > 0 {
			// The work ran and its progress counts toward WS — the machine
			// does not stop because the PMU misbehaved — but the window's
			// observation is incomplete, so the anomaly monitor below must
			// not judge the schedule on partial data.
			res.LostWindows++
			a.event("window at slice %d: %d counter reads lost, monitoring skipped", done, run.ReadFailures)
		}
		done += w
		if p.fallback {
			res.FallbackSlices += w
		}

		if nextChurn < len(churn) && done >= churn[nextChurn].AtSlice {
			ev := churn[nextChurn]
			nextChurn++
			if err := a.applyChurn(ev, done); err != nil {
				return res, err
			}
			p, err = a.replan("churn")
			if err != nil {
				return res, err
			}
			continue
		}

		if run.ReadFailures == 0 && p.predIPC > 0 {
			observed := meanIPC(run.SliceIPCs)
			if observed < (1-opt.AnomalyTolerance)*p.predIPC {
				a.event("anomaly at slice %d: observed IPC %.3f below predicted %.3f", done, observed, p.predIPC)
				p, err = a.replan("anomaly")
				if err != nil {
					return res, err
				}
			}
		}
	}

	if a.jobSolo != nil && den > 0 {
		res.WeightedSpeedup = num / float64(den)
	}
	return res, nil
}

// windowSlices picks the next monitoring window length: the symbios budget
// split MonitorWindows ways, rounded to whole rotations of s so every task
// receives equal CPU time within a window, clamped to what remains.
func (a *adaptiveState) windowSlices(s schedule.Schedule, remaining int) int {
	rot := s.CycleSlices()
	w := a.opt.SymbiosSlices / a.opt.MonitorWindows
	if w < rot {
		w = rot
	} else {
		w -= w % rot
	}
	if w > remaining {
		w = remaining
	}
	if w < 1 {
		w = 1
	}
	return w
}

// event appends a deterministic log line to the result.
func (a *adaptiveState) event(format string, args ...any) {
	a.res.Events = append(a.res.Events, fmt.Sprintf(format, args...))
}

// replan re-enters the sample phase if the resample budget allows, else
// degrades to the round-robin fallback.
func (a *adaptiveState) replan(cause string) (plan, error) {
	if a.res.Resamples >= a.opt.MaxResamples {
		a.event("resample budget exhausted on %s: degrading to round-robin", cause)
		return a.fallbackPlan(fmt.Sprintf("%s after resample budget", cause))
	}
	a.res.Resamples++
	a.event("resampling on %s (%d/%d)", cause, a.res.Resamples, a.opt.MaxResamples)
	a.tr.Event("sos/resample")
	return a.samplePlan()
}

// samplePlan runs one sample phase — candidate draw, per-schedule evaluation
// with bounded-backoff retries, degenerate-input detection — and returns the
// chosen plan. The decision tree is retry → fallback; re-entry (resample) is
// the monitor loop's job.
func (a *adaptiveState) samplePlan() (plan, error) {
	x := a.m.NumTasks()
	scheds := schedule.Sample(a.r, x, a.y, a.z, a.opt.Samples)
	if len(scheds) == 0 {
		return a.fallbackPlan("no schedule candidates")
	}

	if !a.warmed && a.opt.WarmupCycles > 0 {
		a.warmed = true
		rot := scheds[0].CycleSlices()
		rounds := int(a.opt.WarmupCycles/(uint64(rot)*a.m.SliceCycles)) + 1
		// Warmup work is unmeasured; lost counter reads during it are
		// harmless and ignored.
		endWarm := a.tr.Span("sos/warmup", "")
		_, err := a.m.RunScheduleCtx(a.ctx, scheds[0], rot*rounds)
		endWarm()
		if err != nil {
			return plan{}, err
		}
	}

	endSample := a.tr.Span("sos/sample", "")
	var samples []Sample
	for _, s := range scheds {
		if err := a.interrupted(); err != nil {
			endSample()
			return plan{}, err
		}
		sample, ok, err := a.evalWithRetry(s)
		if err != nil {
			endSample()
			return plan{}, err
		}
		if ok {
			samples = append(samples, sample)
		}
	}
	endSample()

	if len(samples) < len(scheds) {
		return a.fallbackPlan(fmt.Sprintf("only %d of %d samples evaluated", len(samples), len(scheds)))
	}
	if reason, bad := degenerateSamples(samples); bad {
		return a.fallbackPlan("degenerate samples: " + reason)
	}
	endOpt := a.tr.Span("sos/optimize", "")
	idx := Pick(samples, a.opt.Predictor)
	endOpt()
	return plan{sched: samples[idx].Sched, predIPC: samples[idx].IPC}, nil
}

// evalWithRetry evaluates one candidate schedule for a full rotation. An
// evaluation that lost any counter read is untrustworthy — the predictor
// would judge the schedule on partial counts — so it is retried with bounded,
// doubling round-robin backoff (the machine makes fair forward progress while
// waiting out the fault). ok=false means the retry budget ran out and the
// sample is skipped.
func (a *adaptiveState) evalWithRetry(s schedule.Schedule) (Sample, bool, error) {
	backoff := a.opt.BackoffSlices
	for attempt := 0; ; attempt++ {
		if err := a.interrupted(); err != nil {
			return Sample{}, false, err
		}
		run, err := a.m.RunScheduleCtx(a.ctx, s, s.CycleSlices())
		if err != nil {
			return Sample{}, false, err
		}
		if run.ReadFailures == 0 {
			return NewSample(s, run), true, nil
		}
		if attempt >= a.opt.MaxSampleRetries {
			a.res.SkippedSamples++
			a.event("sample %s skipped after %d transient failures", s, attempt+1)
			a.tr.Event("sos/sample-skipped")
			return Sample{}, false, nil
		}
		a.res.Retries++
		a.event("sample %s attempt %d lost %d counter reads; backing off %d slices", s, attempt+1, run.ReadFailures, backoff)
		a.tr.Event("sos/retry")
		if rr, err := RoundRobin(a.m.NumTasks(), a.y); err == nil {
			// Backoff work is unmeasured; lost reads during it are harmless,
			// and a context abort here is caught by the next poll above.
			_, _ = a.m.RunScheduleCtx(a.ctx, rr, backoff)
		}
		backoff *= 2
	}
}

// fallbackPlan degrades to the round-robin schedule, or errors when the
// caller ablated the fallback.
func (a *adaptiveState) fallbackPlan(reason string) (plan, error) {
	if a.opt.DisableFallback {
		return plan{}, fmt.Errorf("core: predictor inputs unusable (%s) and fallback disabled", reason)
	}
	rr, err := RoundRobin(a.m.NumTasks(), a.y)
	if err != nil {
		return plan{}, fmt.Errorf("core: building round-robin fallback: %w", err)
	}
	a.event("fallback to round-robin: %s", reason)
	a.tr.Event("sos/fallback")
	return plan{sched: rr, fallback: true}, nil
}

// applyChurn mutates the job list per ev and rebinds the machine.
func (a *adaptiveState) applyChurn(ev ChurnEvent, atSlice int) error {
	a.tr.Event("sos/churn")
	for _, id := range ev.Depart {
		found := false
		for i, j := range a.jobs {
			if j.ID == id {
				a.jobs = append(a.jobs[:i], a.jobs[i+1:]...)
				if a.jobSolo != nil {
					a.jobSolo = append(a.jobSolo[:i], a.jobSolo[i+1:]...)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: churn at slice %d departs unknown job %d", atSlice, id)
		}
		a.event("churn at slice %d: -job%d", atSlice, id)
	}
	for i, j := range ev.Arrive {
		a.jobs = append(a.jobs, j)
		if a.jobSolo != nil {
			if len(ev.ArriveSolo[i]) != j.Threads() {
				return fmt.Errorf("core: churn arrival %s has %d solo rates for %d threads", j.Name(), len(ev.ArriveSolo[i]), j.Threads())
			}
			a.jobSolo = append(a.jobSolo, ev.ArriveSolo[i])
		}
		a.event("churn at slice %d: +%s (job%d)", atSlice, j.Name(), j.ID)
	}
	return a.m.SetTasks(a.jobs)
}

// degenerateSamples reports whether a sample set cannot support a
// prediction: any non-finite predictor quantity, or an all-zero IPC column
// (every observation claims the machine retired nothing).
func degenerateSamples(samples []Sample) (string, bool) {
	allZero := true
	for _, s := range samples {
		for _, v := range []float64{s.IPC, s.AllConf, s.Dcache, s.FQ, s.FP, s.Sum2, s.Diversity, s.Balance} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Sprintf("non-finite predictor input for %s", s.Sched), true
			}
		}
		if s.IPC > 0 {
			allZero = false
		}
	}
	if allZero {
		return "all-zero IPC", true
	}
	return "", false
}

// splitSolo groups a per-task solo-rate vector by job.
func splitSolo(jobs []*workload.Job, solo []float64) ([][]float64, error) {
	total := 0
	for _, j := range jobs {
		total += j.Threads()
	}
	if len(solo) != total {
		return nil, fmt.Errorf("core: %d solo rates for %d tasks", len(solo), total)
	}
	out := make([][]float64, len(jobs))
	k := 0
	for i, j := range jobs {
		out[i] = append([]float64(nil), solo[k:k+j.Threads()]...)
		k += j.Threads()
	}
	return out, nil
}

// flattenSolo is the inverse of splitSolo for the current job list.
func flattenSolo(jobSolo [][]float64) []float64 {
	var out []float64
	for _, s := range jobSolo {
		out = append(out, s...)
	}
	return out
}

// meanIPC averages a window's per-slice machine IPC.
func meanIPC(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
