package core

import (
	"testing"

	"symbios/internal/arch"
	"symbios/internal/metrics"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// TestScheduleSpread reproduces the paper's central observation at small
// scale: on Jsb(6,3,3) different schedules of the same jobmix deliver
// different weighted speedups, and the spread is material (the paper sees
// 17% between best and worst on this mix).
func TestScheduleSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	mix := workload.MustMix("Jsb(6,3,3)")
	cfg := arch.Default21264(mix.SMTLevel)

	jobs, err := mix.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(7, uint64(i), 0x3017)
	}
	solo, err := SoloRates(cfg, jobs, seeds, 100_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}

	scheds, err := schedule.Enumerate(6, 3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}

	const slice = 50_000
	var wss []float64
	for _, s := range scheds {
		jobs, err := mix.Build(7) // fresh jobs: comparable starting state
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(cfg, jobs, slice)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up one rotation, then measure ten rotations.
		if _, err := m.RunSchedule(s, s.CycleSlices()); err != nil {
			t.Fatal(err)
		}
		res, err := m.RunSchedule(s, 10*s.CycleSlices())
		if err != nil {
			t.Fatal(err)
		}
		ws, err := metrics.WeightedSpeedup(res.Cycles, res.Committed, solo)
		if err != nil {
			t.Fatal(err)
		}
		wss = append(wss, ws)
		t.Logf("%-12s WS %.3f  IPC %.3f", s, ws, res.Counters.IPC())
	}
	best, worst, avg := metrics.Max(wss), metrics.Min(wss), metrics.Mean(wss)
	t.Logf("best %.3f worst %.3f avg %.3f spread %.1f%%", best, worst, avg, 100*(best-worst)/worst)
	if best <= worst {
		t.Fatalf("no spread between schedules")
	}
	if (best-worst)/worst < 0.02 {
		t.Errorf("spread %.1f%% too small for symbiosis to matter", 100*(best-worst)/worst)
	}
}
