package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"symbios/internal/counters"
	"symbios/internal/obs"
	"symbios/internal/schedule"
)

// TestSimMetricsAggregates: the registry counters attached to a machine
// must reproduce exactly what the run itself reports — same cycles, same
// committed instructions, one slice tally per timeslice — and a second
// machine sharing the handles must aggregate on top.
func TestSimMetricsAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	sm := NewSimMetrics(reg)

	m, mix := mustMachine(t, "Jsb(4,2,2)", 1, 50_000)
	m.SetSimMetrics(sm)
	s, err := schedule.New([]int{0, 1, 2, 3}, mix.SMTLevel, mix.Swap)
	if err != nil {
		t.Fatal(err)
	}
	slices := 2 * s.CycleSlices()
	run, err := m.RunSchedule(s, slices)
	if err != nil {
		t.Fatal(err)
	}

	if got := sm.Slices.Value(); got != uint64(slices) {
		t.Errorf("sim_slices_total = %d, want %d", got, slices)
	}
	if got := sm.Cycles.Value(); got != run.Cycles {
		t.Errorf("sim_cycles_total = %d, want %d", got, run.Cycles)
	}
	var committed uint64
	for _, c := range run.Committed {
		committed += c
	}
	if got := sm.Committed.Value(); got != committed {
		t.Errorf("sim_committed_total = %d, want %d", got, committed)
	}
	for r := counters.Resource(0); r < counters.NumResources; r++ {
		if got := sm.Conflicts[r].Value(); got != run.Counters.ConflictCycles[r] {
			t.Errorf("conflict counter %s = %d, want %d", r, got, run.Counters.ConflictCycles[r])
		}
	}

	// Exposition must carry a series per resource.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for r := counters.Resource(0); r < counters.NumResources; r++ {
		want := `sim_conflict_cycles_total{resource="` + r.String() + `"}`
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestSimMetricsReadOnly: a run with metrics attached must be
// bit-identical to one without — observability cannot feed back.
func TestSimMetricsReadOnly(t *testing.T) {
	run := func(sm *SimMetrics) RunResult {
		m, mix := mustMachine(t, "Jsb(4,2,2)", 7, 50_000)
		m.SetSimMetrics(sm)
		s, err := schedule.New([]int{0, 1, 2, 3}, mix.SMTLevel, mix.Swap)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunSchedule(s, 2*s.CycleSlices())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	metered := run(NewSimMetrics(obs.NewRegistry()))
	if !reflect.DeepEqual(plain, metered) {
		t.Fatalf("run differs with metrics attached:\n%+v\nvs\n%+v", plain, metered)
	}
}

// TestSimMetricsNoAllocs is the registry half of the hot-loop guard: the
// per-timeslice record path must be pure atomic adds. (The cpu cycle
// loop itself is untouched — BenchmarkCoreCycles covers that side.)
func TestSimMetricsNoAllocs(t *testing.T) {
	sm := NewSimMetrics(obs.NewRegistry())
	var d counters.Set
	d.Cycles, d.Committed = 5000, 9000
	d.ConflictCycles[counters.IQ] = 17
	if allocs := testing.AllocsPerRun(1000, func() { sm.recordSlice(d) }); allocs != 0 {
		t.Fatalf("recordSlice: %v allocs/op, want 0", allocs)
	}
	var nilSM *SimMetrics
	if allocs := testing.AllocsPerRun(1000, func() { nilSM.recordSlice(d) }); allocs != 0 {
		t.Fatalf("nil recordSlice: %v allocs/op, want 0", allocs)
	}
}

// TestAdaptiveTracerSpans: RunAdaptiveCtx with a tracer in the context
// must emit the SOS phase spans, and the traced run's result must equal
// an untraced one.
func TestAdaptiveTracerSpans(t *testing.T) {
	opts := AdaptiveOptions{
		Samples:       3,
		Predictor:     PredScore,
		SymbiosSlices: 8,
		Seed:          11,
	}
	run := func(ctx context.Context) AdaptiveResult {
		m, mix := mustMachine(t, "Jsb(4,2,2)", 3, 20_000)
		res, err := RunAdaptiveCtx(ctx, m, mix.SMTLevel, mix.Swap, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	traced := run(obs.WithTracer(context.Background(), tr))
	plain := run(context.Background())
	if !reflect.DeepEqual(traced, plain) {
		t.Fatalf("adaptive result differs with tracer:\n%+v\nvs\n%+v", traced, plain)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	out := buf.String()
	for _, span := range []string{`"name":"sos/sample"`, `"name":"sos/optimize"`, `"name":"sos/symbios"`} {
		if !strings.Contains(out, span) {
			t.Errorf("trace JSONL missing %s:\n%s", span, out)
		}
	}
}
