package core

import (
	"symbios/internal/counters"
	"symbios/internal/obs"
)

// SimMetrics is the simulator's registry wiring: counter handles resolved
// once at setup so the per-timeslice path in RunScheduleCtx is pure atomic
// adds — no map lookups, no allocations, nothing that could perturb the
// cycle loop (BenchmarkCoreCycles must stay at 0 allocs/op).
//
// The handles aggregate across every machine they are attached to, which
// is what a service wants: sosd attaches one SimMetrics to all evaluator
// machines and /metrics reports fleet-wide simulated work. A nil
// *SimMetrics (from a nil registry) is a free no-op.
type SimMetrics struct {
	// Slices counts executed timeslices; Cycles and Committed aggregate
	// the true per-slice machine deltas (never the fault-injected view).
	Slices    *obs.Counter
	Cycles    *obs.Counter
	Committed *obs.Counter
	// ReadFailures counts timeslices whose interposed counter read failed
	// transiently (ErrCounterRead).
	ReadFailures *obs.Counter
	// Conflicts[r] accumulates cycles lost to a fetch/issue conflict on
	// resource r, per counters.Resource.
	Conflicts [counters.NumResources]*obs.Counter
}

// NewSimMetrics registers the simulator counter families on reg and
// returns the resolved handles. A nil registry yields a nil (no-op)
// SimMetrics.
func NewSimMetrics(reg *obs.Registry) *SimMetrics {
	if reg == nil {
		return nil
	}
	sm := &SimMetrics{
		Slices:    reg.Counter("sim_slices_total", "Timeslices executed across all machines."),
		Cycles:    reg.Counter("sim_cycles_total", "Simulated cycles executed across all machines."),
		Committed: reg.Counter("sim_committed_total", "Instructions committed across all machines."),
		ReadFailures: reg.Counter("sim_counter_read_failures_total",
			"Timeslices whose performance-counter read failed transiently."),
	}
	for r := counters.Resource(0); r < counters.NumResources; r++ {
		sm.Conflicts[r] = reg.Counter("sim_conflict_cycles_total",
			"Cycles a hardware resource blocked fetch or issue.",
			obs.L("resource", r.String()))
	}
	return sm
}

// recordSlice feeds one true timeslice delta into the registry. Atomic
// adds only; safe from concurrent machines and on a nil receiver.
func (sm *SimMetrics) recordSlice(d counters.Set) {
	if sm == nil {
		return
	}
	sm.Slices.Add(1)
	sm.Cycles.Add(d.Cycles)
	sm.Committed.Add(d.Committed)
	for r := 0; r < int(counters.NumResources); r++ {
		sm.Conflicts[r].Add(d.ConflictCycles[r])
	}
}

// recordReadFailure tallies one transient counter-read failure.
func (sm *SimMetrics) recordReadFailure() {
	if sm == nil {
		return
	}
	sm.ReadFailures.Inc()
}
