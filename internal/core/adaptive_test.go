package core

import (
	"errors"
	"strings"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/counters"
	"symbios/internal/parallel"
	"symbios/internal/rng"
	"symbios/internal/workload"
)

// archFor is the default machine config for a mix's SMT level.
func archFor(m workload.Mix) arch.Config { return arch.Default21264(m.SMTLevel) }

// flakyReader fails every nth Observe with ErrCounterRead and passes the
// rest through — the minimal transient-failure model for the retry path.
type flakyReader struct {
	n     int
	reads int
}

func (r *flakyReader) Observe(d counters.Set) (counters.Set, error) {
	r.reads++
	if r.n > 0 && r.reads%r.n == 0 {
		return counters.Set{}, ErrCounterRead
	}
	return d, nil
}

// zeroReader reports every event counter as zero (a wholly dead PMU); only
// the timebase survives.
type zeroReader struct{}

func (zeroReader) Observe(d counters.Set) (counters.Set, error) {
	return counters.Set{Cycles: d.Cycles}, nil
}

// adaptiveSetup builds a machine plus solo rates for a mix at test scale.
func adaptiveSetup(t *testing.T, label string, seed uint64) (*Machine, workload.Mix, []float64) {
	t.Helper()
	mix := workload.MustMix(label)
	jobs, err := mix.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Hash2(seed, uint64(i), 0x3017)
	}
	cfg := archFor(mix)
	solo, err := SoloRates(cfg, jobs, seeds, 200_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, jobs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, mix, solo
}

// TestRunAdaptiveClean: with no faults the hardened pipeline behaves like
// plain SOS — no retries, no fallback, no resamples — and reports a
// positive weighted speedup.
func TestRunAdaptiveClean(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	res, err := RunAdaptive(m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 64,
		WarmupCycles: 200_000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedSpeedup <= 0 {
		t.Errorf("WS %.3f, want > 0", res.WeightedSpeedup)
	}
	if res.Retries != 0 || res.FallbackSlices != 0 || res.Resamples != 0 || res.SkippedSamples != 0 {
		t.Errorf("clean run reported degraded-mode activity: %+v", res)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
}

// TestRunAdaptiveRetriesTransientFailures: periodic counter-read failures
// are retried with backoff and the run still completes with a usable WS.
func TestRunAdaptiveRetriesTransientFailures(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	m.SetCounterReader(&flakyReader{n: 7})
	res, err := RunAdaptive(m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 64,
		WarmupCycles: 200_000, Seed: 9, MaxSampleRetries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 && res.LostWindows == 0 {
		t.Error("flaky reader triggered no retries or lost windows")
	}
	if res.WeightedSpeedup <= 0 {
		t.Errorf("WS %.3f, want > 0 despite transient failures", res.WeightedSpeedup)
	}
}

// TestRunAdaptiveFallsBackOnDegenerateSamples: an all-zero counter view is
// degenerate input, so the scheduler must degrade to round-robin rather
// than trust a predictor over garbage — and must error instead when the
// fallback is ablated.
func TestRunAdaptiveFallsBackOnDegenerateSamples(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	m.SetCounterReader(zeroReader{})
	res, err := RunAdaptive(m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 32, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackSlices != 32 {
		t.Errorf("FallbackSlices %d, want the whole symbios phase (32)", res.FallbackSlices)
	}
	if res.WeightedSpeedup <= 0 {
		t.Errorf("WS %.3f, want > 0 under round-robin fallback", res.WeightedSpeedup)
	}
	found := false
	for _, e := range res.Events {
		if strings.Contains(e, "fallback to round-robin") {
			found = true
		}
	}
	if !found {
		t.Errorf("no fallback event logged: %v", res.Events)
	}

	m2, mix2, solo2 := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	m2.SetCounterReader(zeroReader{})
	_, err = RunAdaptive(m2, mix2.SMTLevel, mix2.Swap, solo2, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 32, Seed: 9,
		DisableFallback: true,
	})
	if err == nil {
		t.Error("DisableFallback accepted degenerate samples")
	}
}

// TestRunAdaptiveChurn: a scripted departure and arrival mid-run changes
// the task set, triggers a resample, and the WS accounting follows the
// live mix.
func TestRunAdaptiveChurn(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(5,2,2)", 3)

	spec := workload.MustLookup("IS")
	spec.Threads, spec.SyncEvery = 1, 0
	arrival := workload.MustNewJob(spec, 100, 77)
	arrSolo, err := SoloRates(archFor(mix), []*workload.Job{arrival}, []uint64{77}, 200_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	arrival = workload.MustNewJob(spec, 100, 77) // fresh progress after calibration probe

	res, err := RunAdaptive(m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 5, Predictor: PredScore, SymbiosSlices: 60,
		WarmupCycles: 100_000, Seed: 11,
		Churn: []ChurnEvent{{
			AtSlice:    20,
			Depart:     []int{0},
			Arrive:     []*workload.Job{arrival},
			ArriveSolo: [][]float64{arrSolo},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resamples == 0 && res.FallbackSlices == 0 {
		t.Error("churn triggered neither resample nor fallback")
	}
	names := map[string]bool{}
	for _, tk := range m.Tasks() {
		names[tk.Job.Name()] = true
	}
	if !names["IS"] {
		t.Errorf("arrival missing from final task set: %v", names)
	}
	if res.WeightedSpeedup <= 0 {
		t.Errorf("WS %.3f, want > 0 across churn", res.WeightedSpeedup)
	}
	churnLogged := false
	for _, e := range res.Events {
		if strings.Contains(e, "churn at slice") {
			churnLogged = true
		}
	}
	if !churnLogged {
		t.Errorf("no churn event logged: %v", res.Events)
	}
}

// TestRunAdaptiveAbort: a pre-fired cancel token aborts the run promptly
// with ErrCancelled.
func TestRunAdaptiveAbort(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	var c parallel.Cancel
	c.Cancel()
	_, err := RunAdaptive(m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 64, Seed: 9,
		Abort: &c,
	})
	if !errors.Is(err, parallel.ErrCancelled) {
		t.Fatalf("err=%v, want ErrCancelled", err)
	}
}

// TestRunScheduleErrors covers the hardening of the execution layer: a
// running set larger than the SMT level is a returned error, not a panic,
// and NewMachine validates its inputs.
func TestRunScheduleErrors(t *testing.T) {
	if _, err := NewMachine(archFor(workload.MustMix("Jsb(4,2,2)")), nil, 20_000); err == nil {
		t.Error("NewMachine accepted an empty jobmix")
	}
	mix := workload.MustMix("Jsb(4,2,2)")
	jobs, err := mix.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(archFor(mix), jobs, 0); err == nil {
		t.Error("NewMachine accepted a zero timeslice")
	}
}
