package core

import (
	"context"
	"errors"
	"testing"
)

// TestRunScheduleCtxCancelled: a cancelled context aborts the run at the
// next timeslice boundary with the context's error, and leaves the machine
// consistent enough to run again.
func TestRunScheduleCtxCancelled(t *testing.T) {
	m, mix, _ := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	s, err := RoundRobin(m.NumTasks(), mix.SMTLevel)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunScheduleCtx(ctx, s, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// The abort must have detached everything: a fresh run on the same
	// machine succeeds.
	if _, err := m.RunScheduleCtx(context.Background(), s, 8); err != nil {
		t.Fatalf("machine unusable after aborted run: %v", err)
	}
}

// TestRunScheduleCtxIdenticalWhenUnaborted: the context poll must never
// change results — an un-aborted run is bit-identical with or without one.
func TestRunScheduleCtxIdenticalWhenUnaborted(t *testing.T) {
	run := func(ctx context.Context) RunResult {
		m, mix, _ := adaptiveSetup(t, "Jsb(4,2,2)", 3)
		s, err := RoundRobin(m.NumTasks(), mix.SMTLevel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunScheduleCtx(ctx, s, 16)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(nil)
	b := run(context.Background())
	if a.Cycles != b.Cycles || a.Counters != b.Counters {
		t.Fatalf("context poll changed results: %+v vs %+v", a, b)
	}
	for i := range a.Committed {
		if a.Committed[i] != b.Committed[i] {
			t.Fatalf("task %d committed %d vs %d", i, a.Committed[i], b.Committed[i])
		}
	}
}

// TestRunAdaptiveCtxDeadline: an already-expired deadline aborts the
// adaptive pipeline with context.DeadlineExceeded (not a masked
// ErrCancelled), so callers can distinguish budget exhaustion from a
// user abort.
func TestRunAdaptiveCtxDeadline(t *testing.T) {
	m, mix, solo := adaptiveSetup(t, "Jsb(4,2,2)", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAdaptiveCtx(ctx, m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 64, Seed: 9,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}

	dl, cancel2 := context.WithTimeout(context.Background(), -1)
	defer cancel2()
	_, err = RunAdaptiveCtx(dl, m, mix.SMTLevel, mix.Swap, solo, AdaptiveOptions{
		Samples: 6, Predictor: PredScore, SymbiosSlices: 64, Seed: 9,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
}
