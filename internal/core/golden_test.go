package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/obs"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Machine-level golden suite: RunSchedule outputs (full RunResult — counter
// deltas, per-task commits, slice IPCs) pinned against the seed kernel, with
// observability metrics attached and detached. The obs-on run must be
// byte-identical to the obs-off run: metrics observe, they never perturb.
// Fault injection is layered in the experiments golden suite, which owns a
// CounterReader path; here the clean machine semantics are the contract.
// Regenerate with:
//
//	go test ./internal/core -run TestGoldenMachine -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_machine.json from the current kernel")

const machineGoldenPath = "testdata/golden_machine.json"

type machineGolden struct {
	Name   string    `json:"name"`
	Result RunResult `json:"result"`
}

func runMachineGolden(t *testing.T) []machineGolden {
	t.Helper()
	var out []machineGolden
	for _, tc := range []struct {
		name  string
		mix   string
		seed  uint64
		slice uint64
	}{
		{"jsb422-default", "Jsb(4,2,2)", 7, 40_000},
		{"jsb633-default", "Jsb(6,3,3)", 11, 25_000},
	} {
		mix := workload.MustMix(tc.mix)
		jobs, err := mix.Build(tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := arch.Default21264(mix.SMTLevel)
		m, err := NewMachine(cfg, jobs, tc.slice)
		if err != nil {
			t.Fatal(err)
		}
		s := schedule.Schedule{Order: make([]int, len(jobs)), Y: mix.SMTLevel, Z: mix.Swap}
		for i := range s.Order {
			s.Order[i] = i
		}
		slices := 3 * s.CycleSlices()
		res, err := m.RunScheduleCtx(context.Background(), s, slices)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, machineGolden{Name: tc.name, Result: res})

		// Same run with observability attached: SimMetrics must be a pure
		// observer. Jobs carry progress state, so the replay machine gets a
		// freshly built (identically seeded) jobmix.
		jobs2, err := mix.Build(tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewMachine(cfg, jobs2, tc.slice)
		if err != nil {
			t.Fatal(err)
		}
		m2.SetSimMetrics(NewSimMetrics(obs.NewRegistry()))
		res2, err := m2.RunScheduleCtx(context.Background(), s, slices)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, res2) {
			t.Errorf("%s: obs-on run diverged from obs-off run", tc.name)
		}
	}
	return out
}

func TestGoldenMachine(t *testing.T) {
	got := runMachineGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(machineGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(machineGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", machineGoldenPath)
		return
	}
	data, err := os.ReadFile(machineGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden on a trusted kernel): %v", err)
	}
	var want []machineGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if i < len(got) && !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("case %s diverged:\n got %+v\nwant %+v", want[i].Name, got[i].Result, want[i].Result)
			}
		}
		if !t.Failed() {
			t.Error("machine golden diverged (case list changed?)")
		}
	}
}
