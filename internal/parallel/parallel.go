// Package parallel is the deterministic fan-out layer the experiment
// harness runs on. Every table and figure of the reproduction is built
// from independent cycle-level simulations (pairwise cells, per-mix
// evaluations, per-schedule symbios runs), and each of those simulations
// derives all of its randomness from per-item seeds (rng.Hash2 of the
// experiment seed and the item index) rather than from shared mutable
// state. Map and ForEach therefore parallelise them without changing a
// single output bit:
//
//   - results are written to the slot of the item that produced them, so
//     the returned slice is in input order at any worker count;
//   - the reported error is the one belonging to the lowest input index,
//     not the temporally first failure, so error behaviour is equally
//     independent of scheduling;
//   - no work item may share a mutable structure (machine, rng.Stream)
//     with another — the call sites draw any shared random sequences
//     before fanning out.
//
// The worker count defaults to GOMAXPROCS, may be overridden globally via
// SetDefaultWorkers (cmd/sosbench's -workers flag) or the SYMBIOS_WORKERS
// environment variable, and per call via Options.Workers. Workers=1
// degenerates to a plain serial loop over the items.
package parallel

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// Options controls one fan-out call.
type Options struct {
	// Workers caps the number of concurrent goroutines. Zero means the
	// global default (SetDefaultWorkers, else SYMBIOS_WORKERS, else
	// GOMAXPROCS); negative is an error guarded by a panic, since it
	// indicates a harness bug rather than a runtime condition.
	Workers int

	// Cancel, when non-nil, aborts the fan-out cooperatively: no new items
	// are claimed once the token fires, and the token is also triggered by
	// the first item failure so that work items which poll it (long
	// simulations, adaptive resample rounds) can abort mid-flight. When the
	// call ends with no item error but a fired token, ForEach/Map report
	// ErrCancelled.
	Cancel *Cancel
}

// Cancel is a cooperative cancellation token shared between a fan-out call
// and its work items. The zero value is ready to use.
type Cancel struct {
	fired atomic.Bool
}

// Cancel fires the token. It is safe to call from any goroutine, repeatedly.
func (c *Cancel) Cancel() { c.fired.Store(true) }

// Cancelled reports whether the token has fired. Work items running long
// computations should poll it at natural checkpoints and return ErrCancelled.
func (c *Cancel) Cancelled() bool { return c.fired.Load() }

// ErrCancelled is returned by ForEach/Map when the fan-out was aborted via
// Options.Cancel without any item reporting its own error, and should be
// returned by work items that observe a fired token.
var ErrCancelled = errors.New("parallel: cancelled")

// PanicError is a worker panic re-raised on the calling goroutine, annotated
// with the input index of the item whose function panicked (the original
// stack is preserved in Stack).
type PanicError struct {
	// Index is the input index of the panicking item.
	Index int
	// Value is the value the worker passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its item index and original stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// defaultWorkers holds the process-wide override; zero means unset.
var defaultWorkers atomic.Int64

// SetDefaultWorkers fixes the process-wide default worker count; n <= 0
// restores the automatic default. It returns the previous override (zero
// when none was set) so tests can restore it.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers resolves the worker count used when Options.Workers is
// zero: the SetDefaultWorkers override, else SYMBIOS_WORKERS, else
// GOMAXPROCS.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("SYMBIOS_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// workers resolves o into a concrete worker count for n items.
func (o Options) workers(n int) int {
	w := o.Workers
	if w < 0 {
		panic("parallel: negative worker count")
	}
	if w == 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every item and returns the results in input order.
// fn receives the item's index and value; distinct items must not share
// mutable state. On error, Map returns the error of the lowest-indexed
// failing item (a deterministic choice at any worker count) and the
// result slice is invalid. Items dispatched after the first observed
// failure are skipped, so an early error does not pay for the full
// sweep; items already in flight run to completion.
func Map[T, R any](items []T, opts Options, fn func(i int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	err := ForEach(items, opts, func(i int, item T) error {
		r, err := fn(i, item)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without collected results: fn runs once per item, with
// the same ordering and error guarantees. A panic inside fn is recovered and
// re-raised on the caller as a *PanicError carrying the failing item's input
// index (the lowest-indexed panic when several workers panic); without the
// recovery a worker panic would kill the process with no indication of which
// item died.
func ForEach[T any](items []T, opts Options, fn func(i int, item T) error) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	// call runs one item, converting a panic into a *PanicError.
	call := func(i int) (err error, pe *PanicError) {
		defer func() {
			if v := recover(); v != nil {
				pe = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(i, items[i]), nil
	}
	w := opts.workers(n)
	if w == 1 {
		for i := range items {
			if opts.Cancel != nil && opts.Cancel.Cancelled() {
				return ErrCancelled
			}
			err, pe := call(i)
			if pe != nil {
				panic(pe)
			}
			if err != nil {
				if opts.Cancel != nil {
					opts.Cancel.Cancel()
				}
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next item index to claim
		failed   atomic.Bool  // latch: stop claiming new items
		mu       sync.Mutex
		errIdx   = -1
		firstEr  error
		panicked *PanicError
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		if opts.Cancel != nil {
			opts.Cancel.Cancel()
		}
		mu.Lock()
		// A cancellation error is a side effect of some other item's
		// failure, never the root cause: any real error displaces a
		// recorded ErrCancelled regardless of index, and among errors of
		// the same kind the lowest input index wins, so the reported
		// error stays deterministic.
		better := errIdx < 0
		if !better {
			haveCancel := errors.Is(firstEr, ErrCancelled)
			newCancel := errors.Is(err, ErrCancelled)
			better = (haveCancel && !newCancel) || (haveCancel == newCancel && i < errIdx)
		}
		if better {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if opts.Cancel != nil && opts.Cancel.Cancelled() {
					return
				}
				err, pe := call(i)
				if pe != nil {
					failed.Store(true)
					if opts.Cancel != nil {
						opts.Cancel.Cancel()
					}
					mu.Lock()
					if panicked == nil || pe.Index < panicked.Index {
						panicked = pe
					}
					mu.Unlock()
					return
				}
				if err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if firstEr != nil {
		return firstEr
	}
	if opts.Cancel != nil && opts.Cancel.Cancelled() {
		return ErrCancelled
	}
	return nil
}

// Indices is a convenience for fan-outs over [0,n): it returns the slice
// {0, 1, ..., n-1} for use as a Map/ForEach item list when the work is
// indexed rather than value-driven.
func Indices(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}
