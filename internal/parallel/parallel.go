// Package parallel is the deterministic fan-out layer the experiment
// harness runs on. Every table and figure of the reproduction is built
// from independent cycle-level simulations (pairwise cells, per-mix
// evaluations, per-schedule symbios runs), and each of those simulations
// derives all of its randomness from per-item seeds (rng.Hash2 of the
// experiment seed and the item index) rather than from shared mutable
// state. Map and ForEach therefore parallelise them without changing a
// single output bit:
//
//   - results are written to the slot of the item that produced them, so
//     the returned slice is in input order at any worker count;
//   - the reported error is the one belonging to the lowest input index,
//     not the temporally first failure, so error behaviour is equally
//     independent of scheduling;
//   - no work item may share a mutable structure (machine, rng.Stream)
//     with another — the call sites draw any shared random sequences
//     before fanning out.
//
// Cancellation and deadlines ride on context.Context: Options.Context
// aborts a fan-out when it is cancelled or its deadline passes, and the
// legacy Cancel token is a thin adapter over a context so older call
// sites keep working. A context abort and an item failure can race; the
// reported error then carries both (errors.Is matches ErrCancelled and
// the context error).
//
// The worker count defaults to GOMAXPROCS, may be overridden globally via
// SetDefaultWorkers (cmd/sosbench's -workers flag) or the SYMBIOS_WORKERS
// environment variable, and per call via Options.Workers. Workers=1
// degenerates to a plain serial loop over the items.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// Options controls one fan-out call.
type Options struct {
	// Workers caps the number of concurrent goroutines. Zero means the
	// global default (SetDefaultWorkers, else SYMBIOS_WORKERS, else
	// GOMAXPROCS); negative is an error guarded by a panic, since it
	// indicates a harness bug rather than a runtime condition.
	Workers int

	// Context, when non-nil, bounds the fan-out: no new items are claimed
	// once it is cancelled or its deadline passes, and the returned error
	// matches both ErrCancelled and the context's error with errors.Is.
	// When a Cancel token is also set, a context abort fires the token so
	// in-flight items that poll it abort mid-computation.
	Context context.Context

	// Cancel, when non-nil, aborts the fan-out cooperatively: no new items
	// are claimed once the token fires, and the token is also triggered by
	// the first item failure so that work items which poll it (long
	// simulations, adaptive resample rounds) can abort mid-flight. When the
	// call ends with no item error but a fired token, ForEach/Map report
	// ErrCancelled.
	Cancel *Cancel
}

// Cancel is a cooperative cancellation token shared between a fan-out call
// and its work items. It is a thin adapter over a context.Context — Context
// exposes the underlying context for code that has migrated — and the zero
// value is ready to use.
type Cancel struct {
	once sync.Once
	ctx  context.Context
	stop context.CancelFunc
}

// lazy initialises the underlying context on first use, so the zero value
// keeps working.
func (c *Cancel) lazy() {
	c.once.Do(func() {
		c.ctx, c.stop = context.WithCancel(context.Background())
	})
}

// Cancel fires the token. It is safe to call from any goroutine, repeatedly.
func (c *Cancel) Cancel() {
	c.lazy()
	c.stop()
}

// Cancelled reports whether the token has fired. Work items running long
// computations should poll it at natural checkpoints and return ErrCancelled.
func (c *Cancel) Cancelled() bool {
	c.lazy()
	return c.ctx.Err() != nil
}

// Context returns the context backing the token: done exactly when the token
// has fired. It lets token-based call sites hand a real context to
// context-aware code (Machine.RunScheduleCtx, ForEach Options.Context).
func (c *Cancel) Context() context.Context {
	c.lazy()
	return c.ctx
}

// ErrCancelled is returned by ForEach/Map when the fan-out was aborted — via
// Options.Cancel or Options.Context — without any item reporting a real error
// of its own, and should be returned by work items that observe a fired
// token. When the abort came from the context, the returned error also
// matches the context's error (context.Canceled or
// context.DeadlineExceeded) with errors.Is.
var ErrCancelled = errors.New("parallel: cancelled")

// PanicError is a worker panic re-raised on the calling goroutine, annotated
// with the input index of the item whose function panicked (the original
// stack is preserved in Stack).
type PanicError struct {
	// Index is the input index of the panicking item.
	Index int
	// Value is the value the worker passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its item index and original stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// defaultWorkers holds the process-wide override; zero means unset.
var defaultWorkers atomic.Int64

// SetDefaultWorkers fixes the process-wide default worker count; n <= 0
// restores the automatic default. It returns the previous override (zero
// when none was set) so tests can restore it.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers resolves the worker count used when Options.Workers is
// zero: the SetDefaultWorkers override, else SYMBIOS_WORKERS, else
// GOMAXPROCS.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("SYMBIOS_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// workers resolves o into a concrete worker count for n items.
func (o Options) workers(n int) int {
	w := o.Workers
	if w < 0 {
		panic("parallel: negative worker count")
	}
	if w == 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every item and returns the results in input order.
// fn receives the item's index and value; distinct items must not share
// mutable state. On error, Map returns the error of the lowest-indexed
// failing item (a deterministic choice at any worker count) and the
// result slice is invalid. Items dispatched after the first observed
// failure are skipped, so an early error does not pay for the full
// sweep; items already in flight run to completion.
func Map[T, R any](items []T, opts Options, fn func(i int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	err := ForEach(items, opts, func(i int, item T) error {
		r, err := fn(i, item)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// isAbortError reports whether err is a cancellation side effect (a fired
// token or an aborted context) rather than a root-cause item failure.
func isAbortError(err error) bool {
	return errors.Is(err, ErrCancelled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// ForEach is Map without collected results: fn runs once per item, with
// the same ordering and error guarantees. A panic inside fn is recovered and
// re-raised on the caller as a *PanicError carrying the failing item's input
// index (the lowest-indexed panic when several workers panic); without the
// recovery a worker panic would kill the process with no indication of which
// item died.
func ForEach[T any](items []T, opts Options, fn func(i int, item T) error) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// A context abort must reach in-flight items that poll only the legacy
	// token, so the token shadows the context for the duration of the call.
	if opts.Cancel != nil && ctx.Done() != nil {
		unwatch := make(chan struct{})
		var watch sync.WaitGroup
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-ctx.Done():
				opts.Cancel.Cancel()
			case <-unwatch:
			}
		}()
		defer func() {
			close(unwatch)
			watch.Wait()
		}()
	}
	// aborted reports whether new items may no longer be claimed.
	aborted := func() bool {
		if ctx.Err() != nil {
			return true
		}
		return opts.Cancel != nil && opts.Cancel.Cancelled()
	}
	// finish folds the abort state into the fan-out's error: a real item
	// error wins outright; an abort with no (or only side-effect) item
	// errors reports ErrCancelled, additionally carrying the context error
	// so deadline-exceeded stays distinguishable when cancellation races a
	// worker failure.
	finish := func(itemErr error) error {
		ctxErr := ctx.Err()
		if itemErr != nil && !isAbortError(itemErr) {
			return itemErr
		}
		if ctxErr != nil {
			if itemErr != nil && errors.Is(itemErr, ctxErr) {
				return itemErr
			}
			return fmt.Errorf("%w (%w)", ErrCancelled, ctxErr)
		}
		if itemErr != nil {
			return itemErr
		}
		if opts.Cancel != nil && opts.Cancel.Cancelled() {
			return ErrCancelled
		}
		return nil
	}
	// call runs one item, converting a panic into a *PanicError.
	call := func(i int) (err error, pe *PanicError) {
		defer func() {
			if v := recover(); v != nil {
				pe = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(i, items[i]), nil
	}
	w := opts.workers(n)
	if w == 1 {
		for i := range items {
			if aborted() {
				return finish(nil)
			}
			err, pe := call(i)
			if pe != nil {
				panic(pe)
			}
			if err != nil {
				if opts.Cancel != nil {
					opts.Cancel.Cancel()
				}
				return finish(err)
			}
		}
		return finish(nil)
	}

	var (
		next     atomic.Int64 // next item index to claim
		failed   atomic.Bool  // latch: stop claiming new items
		mu       sync.Mutex
		errIdx   = -1
		firstEr  error
		panicked *PanicError
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		if opts.Cancel != nil {
			opts.Cancel.Cancel()
		}
		mu.Lock()
		// A cancellation error is a side effect of some other item's
		// failure, never the root cause: any real error displaces a
		// recorded abort error regardless of index, and among errors of
		// the same kind the lowest input index wins, so the reported
		// error stays deterministic.
		better := errIdx < 0
		if !better {
			haveAbort := isAbortError(firstEr)
			newAbort := isAbortError(err)
			better = (haveAbort && !newAbort) || (haveAbort == newAbort && i < errIdx)
		}
		if better {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if aborted() {
					return
				}
				err, pe := call(i)
				if pe != nil {
					failed.Store(true)
					if opts.Cancel != nil {
						opts.Cancel.Cancel()
					}
					mu.Lock()
					if panicked == nil || pe.Index < panicked.Index {
						panicked = pe
					}
					mu.Unlock()
					return
				}
				if err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return finish(firstEr)
}

// Indices is a convenience for fan-outs over [0,n): it returns the slice
// {0, 1, ..., n-1} for use as a Map/ForEach item list when the work is
// indexed rather than value-driven.
func Indices(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}
