package parallel

import (
	"os"
	"testing"

	"symbios/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine — the worker
// pools and cancellation watchers here must always be joined.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.MainRun(m.Run))
}
