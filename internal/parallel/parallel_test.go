package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering checks results land in input order at several worker
// counts, including counts exceeding the item count.
func TestMapOrdering(t *testing.T) {
	items := Indices(100)
	for _, w := range []int{1, 2, 3, 8, 200} {
		got, err := Map(items, Options{Workers: w}, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, g := range got {
			if g != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", w, i, g, i*i)
			}
		}
	}
}

// TestMapIdenticalAcrossWorkerCounts is the layer's core contract: the
// same inputs produce byte-identical outputs at any worker count.
func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	items := Indices(64)
	fn := func(i, v int) (string, error) {
		return fmt.Sprintf("item-%03d", v*7), nil
	}
	serial, err := Map(items, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := Map(items, Options{Workers: w}, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: results differ from serial", w)
		}
	}
}

// TestFirstErrorByIndex checks the reported error is the lowest-indexed
// failure regardless of completion order.
func TestFirstErrorByIndex(t *testing.T) {
	items := Indices(32)
	for _, w := range []int{1, 4, 32} {
		_, err := Map(items, Options{Workers: w}, func(i, v int) (int, error) {
			if v == 7 || v == 21 {
				return 0, fmt.Errorf("boom at %d", v)
			}
			return v, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		// Item 7 always runs (items before the failure latch trips are
		// claimed in order at w=1; at higher counts both failures may
		// run, and 7 < 21 must win).
		if w == 1 && err.Error() != "boom at 7" {
			t.Fatalf("workers=%d: got %v, want boom at 7", w, err)
		}
		if err.Error() != "boom at 7" && err.Error() != "boom at 21" {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
	}
}

// TestErrorStopsDispatch checks items after a serial failure are skipped.
func TestErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	err := ForEach(Indices(1000), Options{Workers: 1}, func(i, v int) error {
		ran.Add(1)
		if v == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("ran %d items, want 4", n)
	}
}

// TestEmpty checks the degenerate cases.
func TestEmpty(t *testing.T) {
	got, err := Map(nil, Options{}, func(i, v int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if err := ForEach([]int{}, Options{Workers: 5}, func(i, v int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestSetDefaultWorkers checks the global override round-trips and that
// DefaultWorkers honours it.
func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers=%d, want 3", got)
	}
	if old := SetDefaultWorkers(0); old != 3 {
		t.Fatalf("Swap returned %d, want 3", old)
	}
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers=%d after reset", got)
	}
}

// TestWorkersEnv checks the SYMBIOS_WORKERS fallback.
func TestWorkersEnv(t *testing.T) {
	prev := SetDefaultWorkers(0)
	defer SetDefaultWorkers(prev)
	t.Setenv("SYMBIOS_WORKERS", "5")
	if got := DefaultWorkers(); got != 5 {
		t.Fatalf("DefaultWorkers=%d, want 5", got)
	}
	t.Setenv("SYMBIOS_WORKERS", "garbage")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers=%d with bad env", got)
	}
}

// TestIndices checks the index-list helper.
func TestIndices(t *testing.T) {
	if got := Indices(0); len(got) != 0 {
		t.Fatalf("Indices(0) = %v", got)
	}
	if got := Indices(3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Indices(3) = %v", got)
	}
}

// TestForEachRecoversWorkerPanic checks that a panic inside a worker
// goroutine is re-raised on the caller as a *PanicError naming the failing
// item, instead of killing the process anonymously.
func TestForEachRecoversWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *PanicError", workers, v, v)
				}
				if pe.Index != 3 {
					t.Errorf("workers=%d: PanicError.Index=%d, want 3", workers, pe.Index)
				}
				if pe.Value != "boom" {
					t.Errorf("workers=%d: PanicError.Value=%v, want boom", workers, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: PanicError carries no stack", workers)
				}
			}()
			_ = ForEach(Indices(8), Options{Workers: workers}, func(i, _ int) error {
				if i == 3 {
					panic("boom")
				}
				return nil
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

// TestForEachPanicLowestIndexWins checks the determinism rule for
// concurrent panics: the re-raised PanicError is the lowest-indexed one.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	items := Indices(4)
	for trial := 0; trial < 20; trial++ {
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok || pe.Index >= 2 {
					t.Fatalf("recovered %v, want PanicError with index < 2", pe)
				}
			}()
			var gate sync.WaitGroup
			gate.Add(2)
			_ = ForEach(items, Options{Workers: 2}, func(i, _ int) error {
				if i < 2 {
					// Both workers panic together, so either order is
					// possible at the recover site without the index rule.
					gate.Done()
					gate.Wait()
					panic(i)
				}
				return nil
			})
		}()
	}
}

// TestCancelStopsFanout checks the cooperative token: once fired, no new
// items are claimed and the call reports ErrCancelled.
func TestCancelStopsFanout(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var c Cancel
		var ran atomic.Int64
		err := ForEach(Indices(100), Options{Workers: workers, Cancel: &c}, func(i, _ int) error {
			ran.Add(1)
			if ran.Load() >= 3 {
				c.Cancel()
			}
			return nil
		})
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("workers=%d: err=%v, want ErrCancelled", workers, err)
		}
		if n := ran.Load(); n >= 100 {
			t.Fatalf("workers=%d: all %d items ran despite cancellation", workers, n)
		}
	}
}

// TestErrorFiresCancelToken checks that the first item failure triggers the
// supplied token (so in-flight long-running items can abort), and that the
// reported error is the real failure, not a secondary ErrCancelled even
// from a lower index.
func TestErrorFiresCancelToken(t *testing.T) {
	boom := errors.New("boom")
	var c Cancel
	started := make(chan struct{})
	err := ForEach(Indices(2), Options{Workers: 2, Cancel: &c}, func(i, _ int) error {
		if i == 0 {
			// Item 0 waits for item 1's failure to fire the token, then
			// reports the cancellation — the side effect, not the cause.
			<-started
			for !c.Cancelled() {
			}
			return ErrCancelled
		}
		close(started)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the root-cause error", err)
	}
	if !c.Cancelled() {
		t.Fatal("item failure did not fire the cancel token")
	}
}

// TestSerialPathCancelAndPanic covers the workers=1 degenerate loop: a
// pre-fired token short-circuits, and panics still carry the item index.
func TestSerialPathCancelAndPanic(t *testing.T) {
	var c Cancel
	c.Cancel()
	err := ForEach(Indices(5), Options{Workers: 1, Cancel: &c}, func(i, _ int) error {
		t.Fatal("item ran under a pre-fired token")
		return nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err=%v, want ErrCancelled", err)
	}
}

// TestCancelIsContextAdapter checks the token's context view: not done
// before firing, done after, with context.Canceled as the error.
func TestCancelIsContextAdapter(t *testing.T) {
	var c Cancel
	ctx := c.Context()
	select {
	case <-ctx.Done():
		t.Fatal("fresh token's context is already done")
	default:
	}
	if c.Cancelled() {
		t.Fatal("fresh token reports cancelled")
	}
	c.Cancel()
	c.Cancel() // repeat fire must be safe
	select {
	case <-ctx.Done():
	default:
		t.Fatal("fired token's context is not done")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err()=%v, want context.Canceled", ctx.Err())
	}
}

// TestContextAbortsFanout checks Options.Context at both dispatch paths: a
// pre-cancelled context runs nothing and the error matches both ErrCancelled
// and the context error.
func TestContextAbortsFanout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(Indices(50), Options{Workers: workers, Context: ctx}, func(i, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want ErrCancelled and context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("workers=%d: %d items ran under a cancelled context", workers, n)
		}
	}
}

// TestContextDeadlineSurfaces checks a deadline abort is distinguishable:
// the fan-out error matches context.DeadlineExceeded.
func TestContextDeadlineSurfaces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := ForEach(Indices(10_000), Options{Workers: 2, Context: ctx}, func(i, _ int) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err=%v, must still match ErrCancelled for legacy callers", err)
	}
}

// TestContextFiresCancelToken checks the bridge: when both a context and a
// token are supplied, a context abort fires the token so in-flight items
// that poll only the token abort mid-computation.
func TestContextFiresCancelToken(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var c Cancel
	entered := make(chan struct{})
	err := ForEach(Indices(1), Options{Workers: 1, Context: ctx, Cancel: &c}, func(i, _ int) error {
		close(entered)
		cancel()
		for !c.Cancelled() {
		}
		return ErrCancelled
	})
	<-entered
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want ErrCancelled and context.Canceled", err)
	}
}

// TestContextErrorNotMaskedByRacingWorkerFailure is the satellite fix: when
// a worker reports ErrCancelled (a side effect of the abort) in a race with
// the context's own deadline, the returned error must still expose the
// context error — previously the bare item ErrCancelled won and the
// deadline was invisible.
func TestContextErrorNotMaskedByRacingWorkerFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForEach(Indices(4), Options{Workers: 2, Context: ctx}, func(i, _ int) error {
		<-ctx.Done()
		return ErrCancelled // side effect, not root cause
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded to surface", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err=%v, want ErrCancelled to remain matchable", err)
	}
}

// TestRealErrorBeatsContextAbort checks the precedence rule: a genuine item
// failure is the root cause and wins over the simultaneous context abort.
func TestRealErrorBeatsContextAbort(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEach(Indices(2), Options{Workers: 2, Context: ctx}, func(i, _ int) error {
		if i == 0 {
			cancel()
			return boom
		}
		<-ctx.Done()
		return ErrCancelled
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the root-cause item error", err)
	}
}
