package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestMapOrdering checks results land in input order at several worker
// counts, including counts exceeding the item count.
func TestMapOrdering(t *testing.T) {
	items := Indices(100)
	for _, w := range []int{1, 2, 3, 8, 200} {
		got, err := Map(items, Options{Workers: w}, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, g := range got {
			if g != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", w, i, g, i*i)
			}
		}
	}
}

// TestMapIdenticalAcrossWorkerCounts is the layer's core contract: the
// same inputs produce byte-identical outputs at any worker count.
func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	items := Indices(64)
	fn := func(i, v int) (string, error) {
		return fmt.Sprintf("item-%03d", v*7), nil
	}
	serial, err := Map(items, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := Map(items, Options{Workers: w}, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: results differ from serial", w)
		}
	}
}

// TestFirstErrorByIndex checks the reported error is the lowest-indexed
// failure regardless of completion order.
func TestFirstErrorByIndex(t *testing.T) {
	items := Indices(32)
	for _, w := range []int{1, 4, 32} {
		_, err := Map(items, Options{Workers: w}, func(i, v int) (int, error) {
			if v == 7 || v == 21 {
				return 0, fmt.Errorf("boom at %d", v)
			}
			return v, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		// Item 7 always runs (items before the failure latch trips are
		// claimed in order at w=1; at higher counts both failures may
		// run, and 7 < 21 must win).
		if w == 1 && err.Error() != "boom at 7" {
			t.Fatalf("workers=%d: got %v, want boom at 7", w, err)
		}
		if err.Error() != "boom at 7" && err.Error() != "boom at 21" {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
	}
}

// TestErrorStopsDispatch checks items after a serial failure are skipped.
func TestErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	err := ForEach(Indices(1000), Options{Workers: 1}, func(i, v int) error {
		ran.Add(1)
		if v == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("ran %d items, want 4", n)
	}
}

// TestEmpty checks the degenerate cases.
func TestEmpty(t *testing.T) {
	got, err := Map(nil, Options{}, func(i, v int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if err := ForEach([]int{}, Options{Workers: 5}, func(i, v int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestSetDefaultWorkers checks the global override round-trips and that
// DefaultWorkers honours it.
func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers=%d, want 3", got)
	}
	if old := SetDefaultWorkers(0); old != 3 {
		t.Fatalf("Swap returned %d, want 3", old)
	}
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers=%d after reset", got)
	}
}

// TestWorkersEnv checks the SYMBIOS_WORKERS fallback.
func TestWorkersEnv(t *testing.T) {
	prev := SetDefaultWorkers(0)
	defer SetDefaultWorkers(prev)
	t.Setenv("SYMBIOS_WORKERS", "5")
	if got := DefaultWorkers(); got != 5 {
		t.Fatalf("DefaultWorkers=%d, want 5", got)
	}
	t.Setenv("SYMBIOS_WORKERS", "garbage")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers=%d with bad env", got)
	}
}

// TestIndices checks the index-list helper.
func TestIndices(t *testing.T) {
	if got := Indices(0); len(got) != 0 {
		t.Fatalf("Indices(0) = %v", got)
	}
	if got := Indices(3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Indices(3) = %v", got)
	}
}
