package checkpoint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden checkpoint file")

// goldenSnapshot is the fixture behind testdata/v1.ckpt. Do not change it:
// the golden file pins the v1 wire format, and the test below fails if a
// format change silently alters the bytes or breaks decoding of old
// snapshots.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Meta: Meta{Exp: "robustness", Scale: "quick", Seed: 7, Mix: "Jsb(4,2,2)"},
		Shards: map[string]json.RawMessage{
			"robustness/00000": json.RawMessage(`{"Mix":"Jsb(4,2,2)","Fault":"clean","NaiveWS":1.912,"AdaptiveWS":2.004}`),
			"robustness/00001": json.RawMessage(`{"Mix":"Jsb(4,2,2)","Fault":"noise sigma=0.10","NaiveWS":1.912,"AdaptiveWS":1.988}`),
		},
	}
}

// TestGoldenVersionCompatibility is the satellite version-compatibility
// test: a committed v1 snapshot must keep decoding, and the current encoder
// must keep producing exactly those bytes for the same snapshot. Breaking
// either means old checkpoints on disk stop resuming — which requires a
// version bump, a migration path in Decode, and a new golden file.
func TestGoldenVersionCompatibility(t *testing.T) {
	path := filepath.Join("testdata", "v1.ckpt")
	want, err := Encode(goldenSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/checkpoint -run Golden -update` once to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatal("encoder output diverged from the committed v1 golden file; old snapshots would no longer resume byte-identically")
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta != goldenSnapshot().Meta {
		t.Fatalf("golden meta decoded as %+v", s.Meta)
	}
	if len(s.Shards) != 2 {
		t.Fatalf("golden decoded %d shards, want 2", len(s.Shards))
	}
}
