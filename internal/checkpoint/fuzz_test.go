package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"testing"
)

// FuzzDecodeCacheExport fuzzes the wire-format parser the warm-up path
// feeds with sibling HTTP bodies: DecodeExport must return an error — never
// panic, never half-parse — on arbitrary input, and anything it accepts
// must round-trip through Marshal/DecodeExport unchanged.
func FuzzDecodeCacheExport(f *testing.F) {
	valid, err := json.Marshal(&Snapshot{
		Meta: Meta{Exp: "robustness", Scale: "quick", Seed: 1, Mix: "Jsb(4,2,2)"},
		Shards: map[string]json.RawMessage{
			"robustness/00000": json.RawMessage(`{"WS":1.25}`),
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), '\n')) // the HTTP body form
	f.Add([]byte{})
	f.Add([]byte("null"))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"meta":{},"shards":{},"extra":1}`))
	f.Add(append(append([]byte{}, valid...), valid...)) // concatenated docs
	f.Add(valid[:len(valid)/2])                         // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeExport(data)
		if err != nil {
			if s != nil {
				t.Fatal("DecodeExport returned a snapshot alongside an error")
			}
			return
		}
		if s.Shards == nil {
			t.Fatal("DecodeExport returned nil Shards")
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encoding a decoded export failed: %v", err)
		}
		s2, err := DecodeExport(out)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded export failed: %v", err)
		}
		if s.Meta != s2.Meta || len(s.Shards) != len(s2.Shards) {
			t.Fatalf("export drifted across re-encode: %+v vs %+v", s, s2)
		}
	})
}

// FuzzDecodeCheckpoint is the satellite fuzz target: Decode must return an
// error — never panic, never misread — on arbitrary input. Valid encodings
// that decode are additionally required to re-encode to the same bytes
// (the determinism the resume invariant leans on).
func FuzzDecodeCheckpoint(f *testing.F) {
	// Seed corpus: a valid snapshot plus the interesting malformations.
	valid, err := Encode(&Snapshot{
		Meta: Meta{Exp: "robustness", Scale: "quick", Seed: 1, Mix: "Jsb(4,2,2)"},
		Shards: map[string]json.RawMessage{
			"robustness/00000": json.RawMessage(`{"WS":1.25}`),
			"robustness/00001": json.RawMessage(`{"WS":0.75}`),
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("symbios-checkpoint"))
	f.Add([]byte("symbios-checkpoint v1 crc32 00000000 len 0\n"))
	f.Add([]byte("symbios-checkpoint v99 crc32 00000000 len 2\n{}"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte{}, valid...), "trailing"...))
	f.Add([]byte(fmt.Sprintf("symbios-checkpoint v1 crc32 %08x len 4\nnull", crc32.ChecksumIEEE([]byte("null")))))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned a snapshot alongside an error")
			}
			return
		}
		// A successfully decoded snapshot must survive a re-encode/decode
		// cycle unchanged — otherwise a resumed run would see different
		// shards than the crashed run recorded.
		out, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot failed: %v", err)
		}
		s2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded snapshot failed: %v", err)
		}
		if s.Meta != s2.Meta || len(s.Shards) != len(s2.Shards) {
			t.Fatalf("snapshot drifted across re-encode: %+v vs %+v", s, s2)
		}
	})
}
