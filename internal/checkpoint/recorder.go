package checkpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Recorder accumulates completed shard results and persists them to a
// snapshot file at a configurable interval. It is safe for concurrent use
// by fan-out workers, and a nil *Recorder is a valid no-op (lookups miss,
// records are dropped), so call sites need no nil guards.
//
// Shard keys must be stable across runs and worker counts — the experiment
// layer derives them from the experiment name and the item's input index,
// never from scheduling order.
type Recorder struct {
	mu      sync.Mutex
	path    string
	every   int
	snap    *Snapshot
	pending int // shards recorded since the last successful write
	hits    int // lookups served from the snapshot
}

// NewRecorder starts a fresh recording to path (overwriting any previous
// snapshot there on first flush). every is the flush interval in completed
// shards; values below 1 flush after every shard.
func NewRecorder(path string, meta Meta, every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{
		path:  path,
		every: every,
		snap:  &Snapshot{Meta: meta, Shards: map[string]json.RawMessage{}},
	}
}

// Resume loads the snapshot at loadPath and continues recording to
// writePath ("" keeps writing to loadPath). The snapshot's Meta must match
// meta exactly; a mismatch returns an error wrapping ErrMetaMismatch rather
// than silently replaying shards from a different run.
func Resume(loadPath, writePath string, meta Meta, every int) (*Recorder, error) {
	snap, err := Load(loadPath)
	if err != nil {
		return nil, err
	}
	if snap.Meta != meta {
		return nil, fmt.Errorf("%w: snapshot %+v, run %+v", ErrMetaMismatch, snap.Meta, meta)
	}
	if writePath == "" {
		writePath = loadPath
	}
	if every < 1 {
		every = 1
	}
	return &Recorder{path: writePath, every: every, snap: snap}, nil
}

// Lookup decodes the recorded result for key into v and reports whether the
// shard was found. A decode failure is an error: the snapshot passed its
// checksum, so a type mismatch means the caller's shard keying is wrong.
func (r *Recorder) Lookup(key string, v any) (bool, error) {
	if r == nil {
		return false, nil
	}
	r.mu.Lock()
	raw, ok := r.snap.Shards[key]
	if ok {
		r.hits++
	}
	r.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("checkpoint: shard %q does not decode into %T: %w", key, v, err)
	}
	return true, nil
}

// Record stores the JSON encoding of v as shard key and flushes the
// snapshot if the interval has elapsed. Re-recording an existing key (a
// resumed shard that recomputed anyway) is allowed only if the value is
// byte-identical — anything else is a determinism violation worth failing
// loudly over.
func (r *Recorder) Record(key string, v any) error {
	if r == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding shard %q: %w", key, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.snap.Shards[key]; ok {
		if string(prev) != string(raw) {
			return fmt.Errorf("checkpoint: shard %q recomputed to a different value; resumed run is not deterministic", key)
		}
		return nil
	}
	r.snap.Shards[key] = raw
	r.pending++
	if r.pending >= r.every {
		return r.flushLocked()
	}
	return nil
}

// Flush writes the snapshot now, regardless of the interval. It is the
// caller's last act before exiting on an error, deadline or stall, so the
// on-disk snapshot covers every completed shard.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

// flushLocked writes the snapshot; callers hold r.mu.
func (r *Recorder) flushLocked() error {
	if err := Write(r.path, r.snap); err != nil {
		return err
	}
	r.pending = 0
	return nil
}

// Export returns a deep copy of the recorder's current snapshot — the
// cache-transfer payload a fleet sibling fetches to warm a restarted node.
// The copy shares no state with the recorder, so the caller may serialize
// it without holding any lock.
func (r *Recorder) Export() *Snapshot {
	if r == nil {
		return &Snapshot{Shards: map[string]json.RawMessage{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Snapshot{Meta: r.snap.Meta, Shards: make(map[string]json.RawMessage, len(r.snap.Shards))}
	for k, v := range r.snap.Shards {
		out.Shards[k] = append(json.RawMessage(nil), v...)
	}
	return out
}

// DecodeExport parses a sibling's cache-export payload (the plain-JSON
// Snapshot served at /v1/cache/export) strictly: unknown fields, trailing
// garbage, and non-JSON input all fail with an error wrapping ErrCorrupt.
// Note this is the *wire* format, not the versioned on-disk checkpoint
// format Decode handles — the export travels inside an HTTP response whose
// digest envelope supplies the corruption check a file header would.
// Strictness matters because the payload crossed a network: a body that
// passed its digest but does not parse exactly means the producer and
// consumer disagree about the schema, and adopting a best-effort reading of
// it into the cache would launder that disagreement into served results.
func DecodeExport(data []byte) (*Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: cache export: %v", ErrCorrupt, err)
	}
	// A cache export is exactly one JSON document; trailing bytes beyond
	// insignificant whitespace mean a truncated or concatenated payload.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("%w: cache export: trailing data after snapshot", ErrCorrupt)
	}
	if s.Shards == nil {
		s.Shards = map[string]json.RawMessage{}
	}
	return &s, nil
}

// Merge imports a sibling's exported snapshot: every shard absent locally is
// adopted, byte-identical duplicates are ignored, and a key whose bytes
// differ from the local recording aborts the whole merge — two replicas of a
// deterministic service disagreeing on the same key means one of them is
// corrupt, and warming from it would spread the corruption. The sibling's
// Meta must match exactly (wrapping ErrMetaMismatch otherwise), so a cache
// recorded under a different scale, seed or chaos mode is never adopted.
// Returns the number of shards added; the snapshot is flushed when any were.
func (r *Recorder) Merge(snap *Snapshot) (int, error) {
	if r == nil || snap == nil {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if snap.Meta != r.snap.Meta {
		return 0, fmt.Errorf("%w: sibling %+v, local %+v", ErrMetaMismatch, snap.Meta, r.snap.Meta)
	}
	for k, v := range snap.Shards {
		if prev, ok := r.snap.Shards[k]; ok && string(prev) != string(v) {
			return 0, fmt.Errorf("checkpoint: merge shard %q disagrees with local recording; refusing sibling cache", k)
		}
	}
	added := 0
	for k, v := range snap.Shards {
		if _, ok := r.snap.Shards[k]; ok {
			continue
		}
		r.snap.Shards[k] = append(json.RawMessage(nil), v...)
		added++
	}
	if added == 0 {
		return 0, nil
	}
	if err := r.flushLocked(); err != nil {
		return added, err
	}
	return added, nil
}

// Shards returns the number of completed shards currently recorded
// (including those loaded by Resume).
func (r *Recorder) Shards() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.snap.Shards)
}

// Hits returns how many lookups were served from the snapshot — the number
// of shards a resumed run did not recompute.
func (r *Recorder) Hits() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// Path returns the snapshot file the recorder writes to.
func (r *Recorder) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

// ctxKey keys the package's context values.
type ctxKey int

const (
	recorderKey ctxKey = iota
	watchdogKey
)

// WithRecorder returns a context carrying r. Experiment fan-outs find it
// with RecorderFrom and memoize their shards through it; a context without
// a recorder runs everything uncheckpointed.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's recorder, or nil (a valid no-op
// recorder) when none is attached.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// WithWatchdog returns a context carrying w; experiment fan-outs report
// shard start/end to it so stalled shards are detected.
func WithWatchdog(ctx context.Context, w *Watchdog) context.Context {
	return context.WithValue(ctx, watchdogKey, w)
}

// WatchdogFrom returns the context's watchdog, or nil (a valid no-op
// watchdog) when none is attached.
func WatchdogFrom(ctx context.Context) *Watchdog {
	w, _ := ctx.Value(watchdogKey).(*Watchdog)
	return w
}
