package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symbios/internal/integrity"
)

// testMeta is the run identity used across these tests.
var testMeta = Meta{Exp: "robustness", Scale: "quick", Seed: 1}

// testSnapshot builds a snapshot with n shards of deterministic content.
func testSnapshot(n int) *Snapshot {
	s := &Snapshot{Meta: testMeta, Shards: map[string]json.RawMessage{}}
	for i := 0; i < n; i++ {
		s.Shards[fmt.Sprintf("robustness/%05d", i)] = json.RawMessage(
			fmt.Sprintf(`{"Mix":"Jsb(4,2,2)","WS":%d.125}`, i))
	}
	return s
}

// TestEncodeDecodeRoundTrip checks the identity Decode(Encode(s)) == s and
// that encoding is deterministic.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnapshot(3)
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("Encode is not deterministic")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != s.Meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", got.Meta, s.Meta)
	}
	if len(got.Shards) != len(s.Shards) {
		t.Fatalf("shards round-trip: got %d, want %d", len(got.Shards), len(s.Shards))
	}
	for k, v := range s.Shards {
		if string(got.Shards[k]) != string(v) {
			t.Fatalf("shard %q: got %s, want %s", k, got.Shards[k], v)
		}
	}
}

// TestDecodeRejectsCorruption flips, truncates and mangles an encoded
// snapshot and requires an ErrCorrupt-class error from every variant.
func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(testSnapshot(2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"no newline":        []byte("symbios-checkpoint v1 crc32 00000000 len 5"),
		"garbage header":    append([]byte("not a checkpoint\n"), data...),
		"truncated payload": data[:len(data)-3],
		"extra payload":     append(append([]byte{}, data...), '!'),
		"flipped byte": func() []byte {
			d := append([]byte{}, data...)
			d[len(d)-5] ^= 0x40
			return d
		}(),
		"bad checksum field": []byte("symbios-checkpoint v1 crc32 zzzzzzzz len 2\n{}"),
		"bad length field":   []byte("symbios-checkpoint v1 crc32 00000000 len -1\n{}"),
		"invalid json": func() []byte {
			// Valid header and checksum over a non-JSON payload.
			payload := []byte("{{{{")
			hdr := fmt.Sprintf("symbios-checkpoint v1 crc32 %08x len %d\n", crc32.ChecksumIEEE(payload), len(payload))
			return append([]byte(hdr), payload...)
		}(),
	}
	for name, d := range cases {
		if _, err := Decode(d); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err=%v, want ErrCorrupt", name, err)
		}
	}
}

// TestDecodeRejectsVersionSkew checks an unsupported version errors with
// ErrVersion, not ErrCorrupt and not a silent misparse.
func TestDecodeRejectsVersionSkew(t *testing.T) {
	payload := []byte(`{"meta":{"exp":"x","scale":"quick","seed":1},"shards":{}}`)
	hdr := fmt.Sprintf("symbios-checkpoint v2 crc32 %08x len %d\n", crc32.ChecksumIEEE(payload), len(payload))
	_, err := Decode(append([]byte(hdr), payload...))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err=%v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew misclassified as corruption: %v", err)
	}
}

// TestWriteLoadAtomic checks Write/Load round-trips via the filesystem and
// leaves no temp droppings.
func TestWriteLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := testSnapshot(4)
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a larger snapshot: the rename must fully replace.
	s2 := testSnapshot(9)
	if err := Write(path, s2); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 9 {
		t.Fatalf("loaded %d shards, want 9", len(got.Shards))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestRecorderRoundTrip drives the Recorder through record → flush → resume
// → lookup and checks the hit accounting.
func TestRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	type row struct {
		Mix string
		WS  float64
	}
	r := NewRecorder(path, testMeta, 2)
	if err := r.Record("robustness/00000", row{"Jsb(4,2,2)", 1.5}); err != nil {
		t.Fatal(err)
	}
	// Interval is 2: nothing on disk yet.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot written before the interval elapsed: %v", err)
	}
	if err := r.Record("robustness/00001", row{"Jsb(4,2,2)", 2.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot missing after interval elapsed: %v", err)
	}
	if err := r.Record("robustness/00002", row{"Jsb(6,3,3)", 3.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := Resume(path, "", testMeta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards() != 3 {
		t.Fatalf("resumed %d shards, want 3", got.Shards())
	}
	var v row
	ok, err := got.Lookup("robustness/00001", &v)
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if v.WS != 2.5 {
		t.Fatalf("Lookup value %+v", v)
	}
	if ok, _ := got.Lookup("robustness/99999", &v); ok {
		t.Fatal("Lookup hit a shard that was never recorded")
	}
	if got.Hits() != 1 {
		t.Fatalf("Hits=%d, want 1", got.Hits())
	}
}

// TestRecorderMetaMismatch checks Resume refuses a snapshot from a
// different run configuration.
func TestRecorderMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := NewRecorder(path, testMeta, 1).Record("k", 1); err != nil {
		t.Fatal(err)
	}
	other := testMeta
	other.Seed = 2
	if _, err := Resume(path, "", other, 1); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("err=%v, want ErrMetaMismatch", err)
	}
}

// TestRecorderDetectsNondeterministicRecompute checks re-recording a key
// with different bytes fails loudly: that is the invariant's tripwire.
func TestRecorderDetectsNondeterministicRecompute(t *testing.T) {
	r := NewRecorder(filepath.Join(t.TempDir(), "run.ckpt"), testMeta, 100)
	if err := r.Record("k", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := r.Record("k", 1.0); err != nil {
		t.Fatalf("byte-identical re-record must be accepted: %v", err)
	}
	if err := r.Record("k", 2.0); err == nil {
		t.Fatal("divergent re-record accepted silently")
	}
}

// TestNilRecorderAndWatchdog checks the nil no-op contract the experiment
// layer relies on.
func TestNilRecorderAndWatchdog(t *testing.T) {
	var r *Recorder
	if err := r.Record("k", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, err := r.Lookup("k", &v); ok || err != nil {
		t.Fatalf("nil Lookup: ok=%v err=%v", ok, err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 0 || r.Hits() != 0 || r.Path() != "" {
		t.Fatal("nil recorder accessors not zero")
	}
	var w *Watchdog
	w.Begin("k")()
	w.Stop()
	if w.Stalled() {
		t.Fatal("nil watchdog stalled")
	}
}

// TestRecorderExportMerge exercises the fleet cache-warm protocol: a fresh
// recorder merges a sibling's export, the transferred shards serve lookups,
// the merge is flushed, and the defensive refusals (meta mismatch,
// divergent shard bytes) hold.
func TestRecorderExportMerge(t *testing.T) {
	dir := t.TempDir()
	src := NewRecorder(filepath.Join(dir, "src.ckpt"), testMeta, 100)
	if err := src.Record("a", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := src.Record("b", 2.0); err != nil {
		t.Fatal(err)
	}

	snap := src.Export()
	if len(snap.Shards) != 2 || snap.Meta != testMeta {
		t.Fatalf("export %+v, want 2 shards with matching meta", snap)
	}
	// The export is a deep copy: mutating it must not reach the recorder.
	snap.Shards["a"][0] ^= 0xff
	var v float64
	if ok, err := src.Lookup("a", &v); !ok || err != nil || v != 1.0 {
		t.Fatalf("source shard corrupted through export copy: ok=%v err=%v v=%v", ok, err, v)
	}

	dstPath := filepath.Join(dir, "dst.ckpt")
	dst := NewRecorder(dstPath, testMeta, 100)
	if err := dst.Record("b", 2.0); err != nil { // overlap, byte-identical
		t.Fatal(err)
	}
	added, err := dst.Merge(src.Export())
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("merge added %d shards, want 1 (b already present)", added)
	}
	if ok, err := dst.Lookup("a", &v); !ok || err != nil || v != 1.0 {
		t.Fatalf("merged shard lookup: ok=%v err=%v v=%v", ok, err, v)
	}
	// A merge that adopted shards flushes, so the warm cache survives the
	// next crash too.
	if _, err := os.Stat(dstPath); err != nil {
		t.Fatalf("merge did not flush: %v", err)
	}

	// Meta mismatch: refuse the whole snapshot.
	otherMeta := testMeta
	otherMeta.Seed++
	foreign := NewRecorder(filepath.Join(dir, "f.ckpt"), otherMeta, 100)
	if err := foreign.Record("c", 3.0); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Merge(foreign.Export()); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("meta-mismatched merge err=%v, want ErrMetaMismatch", err)
	}
	if ok, _ := dst.Lookup("c", &v); ok {
		t.Fatal("shard adopted from meta-mismatched snapshot")
	}

	// Divergent bytes for an existing key: refuse everything, adopt nothing.
	bad := NewRecorder(filepath.Join(dir, "bad.ckpt"), testMeta, 100)
	if err := bad.Record("a", 9.0); err != nil {
		t.Fatal(err)
	}
	if err := bad.Record("fresh", 4.0); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Merge(bad.Export()); err == nil {
		t.Fatal("divergent merge accepted")
	}
	if ok, _ := dst.Lookup("fresh", &v); ok {
		t.Fatal("shard adopted from a divergent snapshot (merge must be all-or-nothing)")
	}

	// Nil receivers and nil snapshots stay no-ops.
	var nr *Recorder
	if snap := nr.Export(); len(snap.Shards) != 0 {
		t.Fatal("nil Export not empty")
	}
	if n, err := nr.Merge(src.Export()); n != 0 || err != nil {
		t.Fatalf("nil Merge = (%d, %v)", n, err)
	}
	if n, err := dst.Merge(nil); n != 0 || err != nil {
		t.Fatalf("Merge(nil) = (%d, %v)", n, err)
	}
}

// TestMergeCorruptedExportBitFlips is the satellite bit-flip table test:
// for EVERY single-bit corruption of a serialized cache export, (a) the
// integrity digest the warm-up path checks first always catches the flip,
// and (b) even for a consumer without the digest gate, the decode+merge
// pipeline is all-or-nothing — it either rejects the payload outright or
// leaves every pre-existing local shard byte-identical, never a partial
// adoption of a corrupt snapshot.
func TestMergeCorruptedExportBitFlips(t *testing.T) {
	payload, err := json.Marshal(&Snapshot{
		Meta: testMeta,
		Shards: map[string]json.RawMessage{
			"a": json.RawMessage(`1`),
			"c": json.RawMessage(`3`),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	digest := integrity.Digest(payload)
	path := filepath.Join(t.TempDir(), "dst.ckpt")

	newLocal := func() *Recorder {
		r := NewRecorder(path, testMeta, 100)
		if err := r.Record("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := r.Record("b", 2); err != nil {
			t.Fatal(err)
		}
		return r
	}
	checkLocal := func(r *Recorder, i, bit int) {
		var a, b int
		if ok, err := r.Lookup("a", &a); !ok || err != nil || a != 1 {
			t.Fatalf("flip byte %d bit %d: local shard a mutated: ok=%v err=%v v=%v", i, bit, ok, err, a)
		}
		if ok, err := r.Lookup("b", &b); !ok || err != nil || b != 2 {
			t.Fatalf("flip byte %d bit %d: local shard b mutated: ok=%v err=%v v=%v", i, bit, ok, err, b)
		}
	}

	for i := range payload {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 1 << bit
			if err := integrity.Check(digest, mut); !errors.Is(err, integrity.ErrMismatch) {
				t.Fatalf("flip byte %d bit %d: digest check = %v, want ErrMismatch", i, bit, err)
			}
			snap, err := DecodeExport(mut)
			if err != nil {
				continue // rejected at parse: nothing to merge
			}
			local := newLocal()
			added, merr := local.Merge(snap)
			if merr != nil && added != 0 {
				t.Fatalf("flip byte %d bit %d: Merge errored yet adopted %d shards", i, bit, added)
			}
			checkLocal(local, i, bit)
		}
	}
}
