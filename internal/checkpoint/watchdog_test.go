package checkpoint

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded settable clock for watchdog tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestWatchdog builds a watchdog on a fake clock with the poll loop
// effectively disabled (checks are driven manually via check()).
func newTestWatchdog(clk *fakeClock, onStall func(*StallError)) *Watchdog {
	w := NewWatchdog(WatchdogConfig{
		Factor:      4,
		Floor:       10 * time.Millisecond,
		MinObserved: 3,
		Poll:        time.Hour,
		OnStall:     onStall,
		now:         clk.now,
	})
	return w
}

// TestWatchdogFlagsStalledWindow drives the median up with three completed
// windows, then leaves one in flight past Factor× the median and checks it
// is flagged exactly once, with the stalled key.
func TestWatchdogFlagsStalledWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var (
		mu     sync.Mutex
		stalls []*StallError
	)
	w := newTestWatchdog(clk, func(e *StallError) {
		mu.Lock()
		stalls = append(stalls, e)
		mu.Unlock()
	})
	defer w.Stop()

	// Three completed windows of 100ms: median 100ms, limit 400ms.
	for i := 0; i < 3; i++ {
		end := w.Begin("warm")
		clk.advance(100 * time.Millisecond)
		end()
	}
	end := w.Begin("stuck-shard")
	clk.advance(300 * time.Millisecond)
	w.check()
	if w.Stalled() {
		t.Fatal("stalled at 3× median, limit is 4×")
	}
	clk.advance(200 * time.Millisecond) // now 500ms > 400ms limit
	w.check()
	if !w.Stalled() {
		t.Fatal("did not stall at 5× median")
	}
	w.check() // must not fire twice
	end()

	mu.Lock()
	defer mu.Unlock()
	if len(stalls) != 1 {
		t.Fatalf("OnStall fired %d times, want 1", len(stalls))
	}
	if stalls[0].Key != "stuck-shard" {
		t.Fatalf("stalled key %q, want stuck-shard", stalls[0].Key)
	}
	if stalls[0].Limit != 400*time.Millisecond {
		t.Fatalf("limit %s, want 400ms", stalls[0].Limit)
	}
}

// TestWatchdogNeedsMinObservations checks no stall fires before the median
// is trustworthy, no matter how old an in-flight window is.
func TestWatchdogNeedsMinObservations(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newTestWatchdog(clk, func(e *StallError) {
		t.Errorf("stall fired with too few observations: %v", e)
	})
	defer w.Stop()
	for i := 0; i < 2; i++ { // MinObserved is 3
		end := w.Begin("warm")
		clk.advance(time.Millisecond)
		end()
	}
	defer w.Begin("ancient")()
	clk.advance(time.Hour)
	w.check()
	if w.Stalled() {
		t.Fatal("stalled without a trustworthy median")
	}
}

// TestWatchdogFloor checks the floor prevents tiny medians from flagging
// ordinary jitter.
func TestWatchdogFloor(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newTestWatchdog(clk, nil)
	defer w.Stop()
	for i := 0; i < 3; i++ {
		end := w.Begin("warm")
		clk.advance(10 * time.Microsecond) // median 10µs, 4× = 40µs << 10ms floor
		end()
	}
	defer w.Begin("jittery")()
	clk.advance(5 * time.Millisecond) // above 4×median, below floor
	w.check()
	if w.Stalled() {
		t.Fatal("stalled below the floor")
	}
	clk.advance(6 * time.Millisecond) // 11ms > floor
	w.check()
	if !w.Stalled() {
		t.Fatal("did not stall past the floor")
	}
}
