// Package checkpoint makes long experiment sweeps crash-safe.
//
// The SOS experiment harness is naturally phased: every sweep is a fan-out
// of independent, deterministically seeded shards (a robustness cell, a
// per-mix evaluation, a pairwise matrix entry). A checkpoint therefore
// records *shard completion* — the JSON-encoded result of every finished
// shard — rather than raw simulator state: a resumed run replays finished
// shards from the snapshot byte-for-byte and recomputes only the shards
// that were in flight when the process died, which the per-shard seeds make
// bit-identical to an uninterrupted run. Machine/SOS state inside a shard
// (per-thread progress, RNG cursors) is a pure function of the shard's seed
// and is reconstructed by deterministic replay, so the invariant holds at
// any kill point and any worker count.
//
// The snapshot format is versioned and CRC-checksummed:
//
//	symbios-checkpoint v<version> crc32 <8 hex digits> len <payload bytes>\n
//	<payload: deterministic JSON>
//
// The payload is a single JSON object holding the run's identity (Meta) and
// the completed shards. encoding/json sorts map keys, so encoding the same
// snapshot always yields the same bytes; the checksum covers the payload
// and the version is in the header, so truncated, corrupted or
// version-skewed files are rejected with an error — never a panic.
//
// Writes are atomic: the snapshot is written to a temporary file in the
// destination directory, fsynced, renamed over the destination, and the
// directory is fsynced. A crash mid-write leaves either the old snapshot or
// the new one, never a torn file.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Version is the current snapshot format version.
const Version = 1

// magic is the first header token of every snapshot file.
const magic = "symbios-checkpoint"

// Sentinel errors for snapshot validation. Decode wraps them with detail;
// match with errors.Is.
var (
	// ErrCorrupt marks a snapshot whose header is malformed, whose payload
	// is truncated, or whose checksum does not match.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a snapshot written by an unsupported format version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrMetaMismatch marks a resume attempt against a snapshot recorded
	// under a different run configuration.
	ErrMetaMismatch = errors.New("checkpoint: snapshot belongs to a different run")
)

// Meta identifies the run a snapshot belongs to. Resuming requires an exact
// match: a snapshot taken under one experiment list, scale, seed or mix
// filter must not seed a run under another, or the replayed shards would
// not correspond to the shards the resumed run skips.
type Meta struct {
	// Exp is the experiment list, exactly as given to the driver
	// (e.g. "robustness" or "table3,fig1").
	Exp string `json:"exp"`
	// Scale names the cycle-budget preset ("quick", "default", "paper").
	Scale string `json:"scale"`
	// Seed is the root random seed.
	Seed uint64 `json:"seed"`
	// Mix is the optional mix-label filter ("" when unrestricted).
	Mix string `json:"mix,omitempty"`
}

// Snapshot is the decoded form of a checkpoint file: the run identity plus
// every completed shard's JSON-encoded result, keyed "<experiment>/<index>".
type Snapshot struct {
	Meta   Meta                       `json:"meta"`
	Shards map[string]json.RawMessage `json:"shards"`
}

// Encode renders the snapshot in the versioned, checksummed file format.
// Encoding is deterministic: the same snapshot always yields the same bytes.
func Encode(s *Snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding payload: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload)
	header := fmt.Sprintf("%s v%d crc32 %08x len %d\n", magic, Version, sum, len(payload))
	return append([]byte(header), payload...), nil
}

// Decode parses and validates an encoded snapshot. Malformed input of any
// kind — truncated header or payload, checksum mismatch, unsupported
// version, invalid JSON — returns an error wrapping ErrCorrupt or
// ErrVersion; Decode never panics.
func Decode(data []byte) (*Snapshot, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 6 || fields[0] != magic || fields[2] != "crc32" || fields[4] != "len" {
		return nil, fmt.Errorf("%w: malformed header", ErrCorrupt)
	}
	if !strings.HasPrefix(fields[1], "v") {
		return nil, fmt.Errorf("%w: malformed version %q", ErrCorrupt, fields[1])
	}
	version, err := strconv.Atoi(fields[1][1:])
	if err != nil {
		return nil, fmt.Errorf("%w: malformed version %q", ErrCorrupt, fields[1])
	}
	if version != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, version, Version)
	}
	wantSum, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: malformed checksum %q", ErrCorrupt, fields[3])
	}
	wantLen, err := strconv.Atoi(fields[5])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("%w: malformed length %q", ErrCorrupt, fields[5])
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), wantLen)
	}
	if sum := crc32.ChecksumIEEE(payload); uint32(wantSum) != sum {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorrupt, sum, uint32(wantSum))
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if s.Shards == nil {
		s.Shards = map[string]json.RawMessage{}
	}
	return &s, nil
}

// Write atomically replaces path with the encoded snapshot: temp file in
// the same directory, fsync, rename, directory fsync. A crash at any point
// leaves either the previous file or the complete new one.
func Write(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure past this point the temp file is removed so aborted
	// writes do not accumulate.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %s: %w", step, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing temp file", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing temp file", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("closing temp file", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// filesystems refuse to fsync directories; that only weakens the
	// durability window, so it is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the snapshot at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
