package checkpoint

import (
	"os"
	"testing"

	"symbios/internal/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine — watchdog poll
// loops in particular must be stopped by every test that starts one.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.MainRun(m.Run))
}
