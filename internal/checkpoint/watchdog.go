package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrStalled marks a run aborted by the watchdog: a simulation window ran
// so far past the median window wall-time that it was judged hung. The
// abort is delivered through the run's context cause, after the checkpoint
// has been flushed, so the operator resumes instead of waiting forever.
var ErrStalled = errors.New("checkpoint: simulation window stalled")

// StallError carries the stalled window's identity and timing; it matches
// ErrStalled with errors.Is.
type StallError struct {
	// Key names the stalled window (the shard key).
	Key string
	// Age is how long the window had been running when flagged; Limit is
	// the threshold it exceeded.
	Age, Limit time.Duration
}

// Error renders the stall diagnosis.
func (e *StallError) Error() string {
	return fmt.Sprintf("checkpoint: window %q stalled: running %s, limit %s", e.Key, e.Age.Round(time.Millisecond), e.Limit.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrStalled) match.
func (e *StallError) Unwrap() error { return ErrStalled }

// WatchdogConfig tunes stall detection.
type WatchdogConfig struct {
	// Factor flags an in-flight window exceeding Factor × the median
	// completed-window wall-time. Values below 1 select the default of 8.
	Factor float64
	// Floor is the minimum stall threshold, so short windows with a tiny
	// median do not trip on scheduler jitter. Zero selects 30s.
	Floor time.Duration
	// MinObserved is how many windows must complete before the median is
	// trusted; until then no stall is flagged (an estimate from zero or one
	// observation would be noise). Zero selects 3.
	MinObserved int
	// Poll is the check cadence. Zero selects 1s.
	Poll time.Duration
	// OnStall is invoked exactly once, from the watchdog goroutine, when a
	// stall is flagged. The driver flushes its checkpoint there and then
	// cancels the run's context with the StallError — checkpoint, then
	// abort, never hang.
	OnStall func(*StallError)

	// now substitutes the clock in tests; nil means time.Now.
	now func() time.Time
}

// Watchdog watches in-flight simulation windows and flags one that runs
// far past the median completed-window wall-time. A nil *Watchdog is a
// valid no-op, so call sites need no nil guards.
type Watchdog struct {
	cfg WatchdogConfig

	mu       sync.Mutex
	inflight map[string]time.Time
	durs     []time.Duration
	fired    bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatchdog starts a watchdog goroutine polling at cfg.Poll. Call Stop
// when the run ends.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Factor < 1 {
		cfg.Factor = 8
	}
	if cfg.Floor <= 0 {
		cfg.Floor = 30 * time.Second
	}
	if cfg.MinObserved < 1 {
		cfg.MinObserved = 3
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	w := &Watchdog{
		cfg:      cfg,
		inflight: map[string]time.Time{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

// loop polls until Stop.
func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.check()
		}
	}
}

// Begin marks window key as in flight and returns the function that marks
// it complete, recording its wall-time into the median estimate.
func (w *Watchdog) Begin(key string) (end func()) {
	if w == nil {
		return func() {}
	}
	start := w.cfg.now()
	w.mu.Lock()
	w.inflight[key] = start
	w.mu.Unlock()
	return func() {
		now := w.cfg.now()
		w.mu.Lock()
		delete(w.inflight, key)
		w.durs = append(w.durs, now.Sub(start))
		w.mu.Unlock()
	}
}

// Stop terminates the watchdog goroutine. Safe to call repeatedly; safe on
// nil.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// limit returns the current stall threshold, or 0 when too few windows
// have completed to estimate one. Callers hold w.mu.
func (w *Watchdog) limitLocked() time.Duration {
	if len(w.durs) < w.cfg.MinObserved {
		return 0
	}
	sorted := append([]time.Duration(nil), w.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	med := sorted[len(sorted)/2]
	limit := time.Duration(w.cfg.Factor * float64(med))
	if limit < w.cfg.Floor {
		limit = w.cfg.Floor
	}
	return limit
}

// check flags the longest-overdue in-flight window past the threshold,
// firing OnStall exactly once across the watchdog's lifetime.
func (w *Watchdog) check() {
	now := w.cfg.now()
	w.mu.Lock()
	if w.fired {
		w.mu.Unlock()
		return
	}
	limit := w.limitLocked()
	if limit <= 0 {
		w.mu.Unlock()
		return
	}
	var worst *StallError
	for key, start := range w.inflight {
		age := now.Sub(start)
		if age > limit && (worst == nil || age > worst.Age) {
			worst = &StallError{Key: key, Age: age, Limit: limit}
		}
	}
	if worst != nil {
		w.fired = true
	}
	onStall := w.cfg.OnStall
	w.mu.Unlock()
	if worst != nil && onStall != nil {
		onStall(worst)
	}
}

// Stalled reports whether the watchdog has flagged a stall.
func (w *Watchdog) Stalled() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}
