// Package buildinfo reports the module version baked into the binary, for
// the -version flags of the command-line tools.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version renders "name version (go toolchain, os/arch)" from the build
// info the Go linker embeds. Version control metadata is absent in plain
// `go build` of a work tree, in which case the module version reads
// "(devel)".
func Version(name string) string {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return fmt.Sprintf("%s %s (%s, %s/%s)", name, version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
