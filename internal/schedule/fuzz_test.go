package schedule

import (
	"reflect"
	"testing"

	"symbios/internal/rng"
)

// FuzzValidate throws arbitrary orders and parameters at Validate and checks
// that acceptance implies the documented invariants — and that every accessor
// is total (no panics) on a schedule Validate accepted. Fault injection can
// hand the scheduler malformed schedules, and the execution layer's guards
// (RunSchedule, attach) assume Validate is the single gatekeeper.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, 2, 2)
	f.Add([]byte{0, 1, 2, 3, 4, 5}, 3, 1)
	f.Add([]byte{3, 1, 2, 0}, 4, 2)
	f.Add([]byte{0, 0}, 1, 1)
	f.Add([]byte{}, 1, 1)
	f.Fuzz(func(t *testing.T, raw []byte, y, z int) {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		order := make([]int, len(raw))
		for i, b := range raw {
			// Signed so negative entries are exercised too.
			order[i] = int(int8(b))
		}
		s := Schedule{Order: order, Y: y, Z: z}
		if err := s.Validate(); err != nil {
			return
		}
		x := len(order)
		if x == 0 || y < 1 || y > x || z < 1 || z > y || y%z != 0 {
			t.Fatalf("Validate accepted out-of-range params: X=%d Y=%d Z=%d", x, y, z)
		}
		seen := make([]bool, x)
		for _, j := range order {
			if j < 0 || j >= x || seen[j] {
				t.Fatalf("Validate accepted non-permutation %v", order)
			}
			seen[j] = true
		}
		// Accessors must be total on accepted schedules.
		if rot := s.CycleSlices(); rot < 1 || rot > x {
			t.Fatalf("CycleSlices() = %d for X=%d", rot, x)
		}
		if tuples := s.Tuples(); len(tuples) != s.CycleSlices() {
			t.Fatalf("Tuples() returned %d coschedules, want %d", len(tuples), s.CycleSlices())
		}
		_ = s.Canonical()
		_ = s.String()
		if !s.Equal(s) {
			t.Fatal("schedule not Equal to itself")
		}
	})
}

// FuzzSample checks the sampler over the whole valid parameter space: every
// draw validates, draws are pairwise distinct, the count never exceeds the
// request or the space, and the same seed reproduces the same draw (the
// determinism contract every parallel experiment rests on).
func FuzzSample(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint8(2), uint8(10))
	f.Add(uint64(7), uint8(6), uint8(3), uint8(3), uint8(5))
	f.Add(uint64(9), uint8(8), uint8(4), uint8(1), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, xr, yr, zr, nr uint8) {
		// Fold the raw bytes into valid (X, Y, Z): the sampler's documented
		// precondition is parameters a round-robin schedule would validate.
		x := 1 + int(xr)%8
		y := 1 + int(yr)%x
		z := 1 + int(zr)%y
		if y%z != 0 {
			t.Skip()
		}
		n := int(nr) % 12

		out := Sample(rng.New(seed), x, y, z, n)
		if len(out) > n && n > 0 {
			t.Fatalf("Sample returned %d schedules for n=%d", len(out), n)
		}
		total := Count(x, y, z)
		if total.IsInt64() && int64(len(out)) > total.Int64() {
			t.Fatalf("Sample returned %d schedules, space holds %s", len(out), total)
		}
		seen := map[string]bool{}
		for _, s := range out {
			if err := s.Validate(); err != nil {
				t.Fatalf("sampled schedule invalid: %v", err)
			}
			if s.X() != x || s.Y != y || s.Z != z {
				t.Fatalf("sampled schedule has params X=%d Y=%d Z=%d, want %d/%d/%d", s.X(), s.Y, s.Z, x, y, z)
			}
			key := s.Canonical()
			if seen[key] {
				t.Fatalf("duplicate schedule %s in sample", s)
			}
			seen[key] = true
		}
		again := Sample(rng.New(seed), x, y, z, n)
		if !reflect.DeepEqual(out, again) {
			t.Fatal("same seed produced a different sample")
		}
	})
}
