package schedule

import (
	"math/big"
	"testing"
	"testing/quick"

	"symbios/internal/rng"
)

// TestCountsMatchPaper verifies Count against every Table 2 entry.
func TestCountsMatchPaper(t *testing.T) {
	cases := []struct {
		x, y, z int
		want    int64
	}{
		{4, 2, 2, 3},
		{5, 2, 2, 12},
		{5, 2, 1, 12},
		{10, 2, 2, 945},
		{6, 3, 3, 10},
		{6, 3, 1, 60},
		{8, 4, 4, 35},
		{8, 4, 1, 2520},
		{12, 4, 4, 5775},
		{12, 6, 6, 462},
	}
	for _, c := range cases {
		got := Count(c.x, c.y, c.z)
		if got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Count(%d,%d,%d) = %s, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

// TestEnumerationMatchesCount: for every small parameter combination,
// enumeration yields exactly Count distinct canonical forms.
func TestEnumerationMatchesCount(t *testing.T) {
	for _, c := range []struct{ x, y, z int }{
		{4, 2, 2}, {6, 3, 3}, {6, 2, 2}, {8, 4, 4}, {6, 3, 1}, {5, 2, 1}, {5, 2, 2}, {7, 3, 2}, {4, 2, 1},
	} {
		scheds, err := Enumerate(c.x, c.y, c.z, 100_000)
		if err != nil {
			t.Fatalf("Enumerate(%d,%d,%d): %v", c.x, c.y, c.z, err)
		}
		seen := map[string]bool{}
		for _, s := range scheds {
			key := s.Canonical()
			if seen[key] {
				t.Fatalf("Enumerate(%d,%d,%d) repeated %s", c.x, c.y, c.z, key)
			}
			seen[key] = true
		}
		want := Count(c.x, c.y, c.z)
		if int64(len(seen)) != want.Int64() {
			t.Errorf("Enumerate(%d,%d,%d) found %d distinct, Count says %s", c.x, c.y, c.z, len(seen), want)
		}
	}
}

// TestCanonicalInvariance is a property test: permuting tuple order (via
// rotation of the circular order) and reversing the order never change the
// canonical form.
func TestCanonicalInvariance(t *testing.T) {
	r := rng.New(17)
	f := func(seed uint64, xx, rot uint8) bool {
		x := int(xx%6) + 4 // 4..9
		y := 2 + int(seed%2)
		z := 1
		if seed%2 == 0 {
			z = y // Z must divide Y; use the paper's two policies
		}
		s := Random(r, x, y, z)

		// Rotation.
		k := int(rot) % x
		rotated := append(append([]int(nil), s.Order[k:]...), s.Order[:k]...)
		// Reflection.
		reversed := make([]int, x)
		for i, v := range s.Order {
			reversed[x-1-i] = v
		}
		s2 := Schedule{Order: rotated, Y: y, Z: z}
		s3 := Schedule{Order: reversed, Y: y, Z: z}
		if s.Partitioned() {
			// For partitioned schedules only whole-tuple permutations are
			// guaranteed invariant; rotation by a full tuple qualifies.
			k = (k / y) * y
			rotated = append(append([]int(nil), s.Order[k:]...), s.Order[:k]...)
			s2 = Schedule{Order: rotated, Y: y, Z: z}
			return s.Equal(s2)
		}
		return s.Equal(s2) && s.Equal(s3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTuplesCoverEvenly: over one full rotation every task appears in the
// same number of coschedules, each tuple has exactly Y members, and the
// rotation length matches CycleSlices.
func TestTuplesCoverEvenly(t *testing.T) {
	r := rng.New(23)
	f := func(xx, yy uint8) bool {
		x := int(xx%8) + 3 // 3..10
		y := int(yy)%(x-1) + 2
		if y > x {
			y = x
		}
		for _, z := range divisorsOf(y) {
			s := Random(r, x, y, z)
			tuples := s.Tuples()
			if len(tuples) != s.CycleSlices() {
				return false
			}
			counts := make([]int, x)
			for _, tuple := range tuples {
				if len(tuple) != y {
					return false
				}
				for _, task := range tuple {
					counts[task]++
				}
			}
			for _, c := range counts[1:] {
				if c != counts[0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// divisorsOf lists the divisors of y (the valid Z values).
func divisorsOf(y int) []int {
	var out []int
	for z := 1; z <= y; z++ {
		if y%z == 0 {
			out = append(out, z)
		}
	}
	return out
}

// TestPartitionedTuples: the paper's 012_345 notation round-trips.
func TestPartitionedTuples(t *testing.T) {
	s, err := New([]int{0, 1, 2, 3, 4, 5}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Partitioned() {
		t.Fatal("full swap of even groups should be partitioned")
	}
	if s.String() != "012_345" {
		t.Errorf("String() = %q, want 012_345", s)
	}
	tuples := s.Tuples()
	if len(tuples) != 2 {
		t.Fatalf("%d tuples", len(tuples))
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	for i := range want {
		for j := range want[i] {
			if tuples[i][j] != want[i][j] {
				t.Errorf("tuple %d = %v, want %v", i, tuples[i], want[i])
			}
		}
	}
}

// TestRotatingWindows: Z=1 rotation produces the expected sliding windows.
func TestRotatingWindows(t *testing.T) {
	s, err := New([]int{0, 1, 2, 3}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Tuples()
	want := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("%d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("slice %d: %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestValidateRejects covers the validation rules.
func TestValidateRejects(t *testing.T) {
	bad := []Schedule{
		{Order: nil, Y: 1, Z: 1},
		{Order: []int{0, 1}, Y: 0, Z: 1},
		{Order: []int{0, 1}, Y: 3, Z: 1},
		{Order: []int{0, 1}, Y: 2, Z: 0},
		{Order: []int{0, 1}, Y: 2, Z: 3},
		{Order: []int{0, 1, 2, 3, 4, 5}, Y: 4, Z: 3}, // Z must divide Y
		{Order: []int{0, 0}, Y: 2, Z: 1},
		{Order: []int{0, 2}, Y: 2, Z: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted: %+v", i, s)
		}
	}
}

// TestSampleDistinct: sampling returns distinct canonical schedules, all of
// them when the space is small.
func TestSampleDistinct(t *testing.T) {
	r := rng.New(31)
	got := Sample(r, 4, 2, 2, 10)
	if len(got) != 3 {
		t.Errorf("Jsb(4,2,2): sampled %d, want all 3", len(got))
	}
	got = Sample(r, 8, 4, 1, 10)
	seen := map[string]bool{}
	for _, s := range got {
		key := s.Canonical()
		if seen[key] {
			t.Fatalf("duplicate sample %s", key)
		}
		seen[key] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("sampled invalid schedule: %v", err)
		}
	}
	if len(got) != 10 {
		t.Errorf("sampled %d, want 10", len(got))
	}
}

// TestEnumerateLimit: oversized spaces are refused rather than exploding.
func TestEnumerateLimit(t *testing.T) {
	if _, err := Enumerate(12, 4, 4, 100); err == nil {
		t.Error("Enumerate accepted a space above its limit")
	}
}

// TestCycleSlices checks the rotation-length formula X/gcd(X,Z).
func TestCycleSlices(t *testing.T) {
	cases := []struct{ x, y, z, want int }{
		{6, 3, 3, 2},
		{6, 3, 1, 6},
		{5, 2, 2, 5},
		{8, 4, 1, 8},
		{12, 4, 4, 3},
		{12, 6, 6, 2},
		{4, 2, 2, 2},
	}
	for _, c := range cases {
		s := Schedule{Order: make([]int, c.x), Y: c.y, Z: c.z}
		if got := s.CycleSlices(); got != c.want {
			t.Errorf("CycleSlices(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}
