// Package schedule represents and enumerates jobschedules.
//
// A schedule is a covering set of coschedules such that every job appears in
// an equal number of coschedules (Section 3). Operationally a schedule is an
// ordering of the X schedulable entries plus the machine parameters (Y, Z):
// the first Y entries form the initial running set; at each timeslice expiry
// the Z longest-resident running entries are swapped out FIFO and replaced
// by the next Z entries of the circular order.
//
// Two schedules are identical if they coschedule the same tuples regardless
// of tuple order, which yields the distinct-schedule counts of the paper's
// Table 2:
//
//   - full swap of even groups (Z == Y, Y | X): set partitions of X jobs
//     into X/Y unordered groups — X! / ((Y!)^(X/Y) · (X/Y)!);
//   - rotating schedules (everything else): circular orderings of X jobs up
//     to rotation and reflection — (X−1)!/2.
package schedule

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"symbios/internal/rng"
)

// Schedule is an ordering of X schedulable entries with machine parameters.
type Schedule struct {
	// Order is a permutation of 0..X-1.
	Order []int
	// Y is the multithreading level (running set size).
	Y int
	// Z is the number of entries swapped per timeslice.
	Z int
}

// New validates and constructs a schedule.
func New(order []int, y, z int) (Schedule, error) {
	s := Schedule{Order: order, Y: y, Z: z}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Validate checks that Order is a permutation and the parameters are sane.
func (s Schedule) Validate() error {
	x := len(s.Order)
	if x == 0 {
		return fmt.Errorf("schedule: empty order")
	}
	if s.Y < 1 || s.Y > x {
		return fmt.Errorf("schedule: Y=%d out of range for X=%d", s.Y, x)
	}
	if s.Z < 1 || s.Z > s.Y {
		return fmt.Errorf("schedule: Z=%d out of range for Y=%d", s.Z, s.Y)
	}
	if s.Y%s.Z != 0 {
		// With Z dividing Y every task is resident for exactly Y/Z slices,
		// so coverage over one rotation is equal ("all jobs must be
		// scheduled on the CPU for the same number of cycles"). Otherwise
		// the FIFO rotation locks into a permanently unfair pattern.
		return fmt.Errorf("schedule: Z=%d must divide Y=%d for equal coverage", s.Z, s.Y)
	}
	seen := make([]bool, x)
	for _, j := range s.Order {
		if j < 0 || j >= x || seen[j] {
			return fmt.Errorf("schedule: order %v is not a permutation", s.Order)
		}
		seen[j] = true
	}
	return nil
}

// X returns the number of schedulable entries.
func (s Schedule) X() int { return len(s.Order) }

// Partitioned reports whether the schedule degenerates to fixed coschedule
// tuples (full swap of evenly divided groups).
func (s Schedule) Partitioned() bool { return s.Z == s.Y && s.X()%s.Y == 0 }

// CycleSlices returns the number of timeslices after which the rotation
// returns to its initial running set: X / gcd(X, Z). Over one such
// rotation every task appears in exactly Y/gcd(X,Z) coschedules, so an
// evaluation that runs an integer multiple of this many slices gives every
// job equal CPU time.
func (s Schedule) CycleSlices() int {
	x := s.X()
	return x / gcd(x, s.Z)
}

// Tuples returns the coschedules of one full rotation, in rotation order.
// For a partitioned schedule this is simply the fixed groups.
func (s Schedule) Tuples() [][]int {
	n := s.CycleSlices()
	// Simulate the FIFO queue mechanics.
	running := append([]int(nil), s.Order[:s.Y]...)
	queue := append([]int(nil), s.Order[s.Y:]...)
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, append([]int(nil), running...))
		// Swap out the Z longest-resident (the front of running), append
		// them to the queue tail, and admit Z from the queue head. With an
		// initially empty queue (X == Y) this rotates the running set onto
		// itself, which is the correct degenerate behaviour.
		z := s.Z
		queue = append(queue, running[:z]...)
		running = append(running[z:], queue[:z]...)
		queue = queue[z:]
	}
	return out
}

// Canonical returns a key equal for schedules that coschedule the same
// tuples: sorted sorted-tuples for partitioned schedules, and the
// lexicographically minimal rotation/reflection of the order otherwise.
func (s Schedule) Canonical() string {
	if s.Partitioned() {
		tuples := s.Tuples()
		parts := make([]string, len(tuples))
		for i, t := range tuples {
			tt := append([]int(nil), t...)
			sort.Ints(tt)
			parts[i] = intsKey(tt)
		}
		sort.Strings(parts)
		return "P|" + strings.Join(parts, "_")
	}
	return "C|" + intsKey(canonicalCycle(s.Order))
}

// Equal reports whether two schedules coschedule the same tuples.
func (s Schedule) Equal(o Schedule) bool {
	return s.Y == o.Y && s.Z == o.Z && s.Canonical() == o.Canonical()
}

// String renders the schedule in the paper's notation: job identifiers
// parsed by underbars delineating coschedules (partitioned), or the
// circular order joined by dashes (rotating).
func (s Schedule) String() string {
	if s.Partitioned() {
		tuples := s.Tuples()
		parts := make([]string, len(tuples))
		for i, t := range tuples {
			var b strings.Builder
			for _, j := range t {
				if s.X() > 10 {
					if b.Len() > 0 {
						b.WriteByte('.')
					}
					fmt.Fprintf(&b, "%d", j)
				} else {
					fmt.Fprintf(&b, "%d", j)
				}
			}
			parts[i] = b.String()
		}
		return strings.Join(parts, "_")
	}
	parts := make([]string, s.X())
	for i, j := range s.Order {
		parts[i] = fmt.Sprintf("%d", j)
	}
	return strings.Join(parts, "-")
}

func intsKey(xs []int) string {
	var b strings.Builder
	for i, v := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// canonicalCycle returns the lexicographically smallest sequence among all
// rotations of xs and of reversed xs.
func canonicalCycle(xs []int) []int {
	n := len(xs)
	best := make([]int, 0, n)
	try := func(seq []int, start int) {
		cand := make([]int, 0, n)
		for i := 0; i < n; i++ {
			cand = append(cand, seq[(start+i)%n])
		}
		if len(best) == 0 || lessInts(cand, best) {
			best = cand
		}
	}
	rev := make([]int, n)
	for i, v := range xs {
		rev[n-1-i] = v
	}
	for start := 0; start < n; start++ {
		try(xs, start)
		try(rev, start)
	}
	return best
}

func lessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Count returns the number of distinct schedules for X entries at
// multithreading level y swapping z per slice (the paper's Table 2).
func Count(x, y, z int) *big.Int {
	if z == y && x%y == 0 {
		return countPartitions(x, y)
	}
	return countCycles(x)
}

// countPartitions computes X! / ((Y!)^(X/Y) · (X/Y)!).
func countPartitions(x, y int) *big.Int {
	n := new(big.Int).MulRange(1, int64(x)) // X!
	yf := new(big.Int).MulRange(1, int64(y))
	groups := x / y
	den := new(big.Int).Exp(yf, big.NewInt(int64(groups)), nil)
	den.Mul(den, new(big.Int).MulRange(1, int64(groups)))
	return n.Div(n, den)
}

// countCycles computes (X−1)!/2, with the degenerate small cases 1 for
// X <= 2 (a single circular order, its reflection being itself).
func countCycles(x int) *big.Int {
	if x <= 2 {
		return big.NewInt(1)
	}
	n := new(big.Int).MulRange(1, int64(x-1))
	return n.Div(n, big.NewInt(2))
}

// Enumerate returns every distinct schedule for the parameters, in a
// deterministic order. It refuses (returns an error) when the count exceeds
// limit, to keep accidental combinatorial explosions out of callers.
func Enumerate(x, y, z, limit int) ([]Schedule, error) {
	total := Count(x, y, z)
	if total.Cmp(big.NewInt(int64(limit))) > 0 {
		return nil, fmt.Errorf("schedule: %d entries has %s distinct schedules, above limit %d", x, total, limit)
	}
	var out []Schedule
	if z == y && x%y == 0 {
		for _, p := range enumeratePartitions(x, y) {
			order := make([]int, 0, x)
			for _, g := range p {
				order = append(order, g...)
			}
			out = append(out, Schedule{Order: order, Y: y, Z: z})
		}
		return out, nil
	}
	for _, ord := range enumerateCycles(x) {
		out = append(out, Schedule{Order: ord, Y: y, Z: z})
	}
	return out, nil
}

// enumeratePartitions generates all ways to split 0..x-1 into unordered
// groups of y, each group sorted, groups ordered by first element.
func enumeratePartitions(x, y int) [][][]int {
	var out [][][]int
	remaining := make([]int, x)
	for i := range remaining {
		remaining[i] = i
	}
	var rec func(rem []int, acc [][]int)
	rec = func(rem []int, acc [][]int) {
		if len(rem) == 0 {
			cp := make([][]int, len(acc))
			for i, g := range acc {
				cp[i] = append([]int(nil), g...)
			}
			out = append(out, cp)
			return
		}
		// The smallest remaining element anchors the next group, which
		// makes every partition appear exactly once.
		first := rem[0]
		rest := rem[1:]
		idx := make([]int, y-1)
		var choose func(start, k int)
		choose = func(start, k int) {
			if k == y-1 {
				group := make([]int, 0, y)
				group = append(group, first)
				newRem := make([]int, 0, len(rest)-(y-1))
				sel := make(map[int]bool, y-1)
				for _, i := range idx {
					sel[i] = true
				}
				for i, v := range rest {
					if sel[i] {
						group = append(group, v)
					} else {
						newRem = append(newRem, v)
					}
				}
				rec(newRem, append(acc, group))
				return
			}
			for i := start; i < len(rest); i++ {
				idx[k] = i
				choose(i+1, k+1)
			}
		}
		choose(0, 0)
	}
	rec(remaining, nil)
	return out
}

// enumerateCycles generates one representative of every circular order of
// 0..x-1 up to rotation and reflection: fix 0 first, permute the rest, and
// keep orders whose second element is smaller than the last (reflection
// dedup).
func enumerateCycles(x int) [][]int {
	if x == 1 {
		return [][]int{{0}}
	}
	if x == 2 {
		return [][]int{{0, 1}}
	}
	var out [][]int
	rest := make([]int, x-1)
	for i := range rest {
		rest[i] = i + 1
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(rest) {
			if rest[0] < rest[len(rest)-1] {
				ord := append([]int{0}, append([]int(nil), rest...)...)
				out = append(out, ord)
			}
			return
		}
		for i := k; i < len(rest); i++ {
			rest[k], rest[i] = rest[i], rest[k]
			rec(k + 1)
			rest[k], rest[i] = rest[i], rest[k]
		}
	}
	rec(0)
	return out
}

// Random returns a uniformly random schedule (not necessarily distinct from
// previous draws).
func Random(r *rng.Stream, x, y, z int) Schedule {
	return Schedule{Order: r.Perm(x), Y: y, Z: z}
}

// Sample draws up to n distinct schedules uniformly at random. If the space
// holds fewer than n distinct schedules it returns all of them (via
// enumeration). The paper's sample phase generates and evaluates 10 random
// schedules, or all of them when fewer exist (Jsb(4,2,2) has only 3).
func Sample(r *rng.Stream, x, y, z, n int) []Schedule {
	total := Count(x, y, z)
	if total.IsInt64() && total.Int64() <= int64(n) {
		all, err := Enumerate(x, y, z, n)
		if err == nil {
			return all
		}
	}
	seen := make(map[string]bool, n)
	var out []Schedule
	for len(out) < n {
		s := Random(r, x, y, z)
		key := s.Canonical()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}
