package schedule_test

import (
	"fmt"

	"symbios/internal/rng"
	"symbios/internal/schedule"
)

// The paper's Jsb(6,3,3) experiment: 6 jobs, 3 coscheduled at a time, all 3
// swapped each timeslice — 10 distinct schedules.
func ExampleCount() {
	fmt.Println(schedule.Count(6, 3, 3))
	fmt.Println(schedule.Count(8, 4, 1)) // rotating: (8-1)!/2
	// Output:
	// 10
	// 2520
}

// Schedules print in the paper's notation: tuples separated by underbars.
func ExampleSchedule_String() {
	s, _ := schedule.New([]int{0, 1, 2, 3, 4, 5}, 3, 3)
	fmt.Println(s)
	r, _ := schedule.New([]int{0, 1, 2, 3}, 2, 1)
	fmt.Println(r)
	// Output:
	// 012_345
	// 0-1-2-3
}

// Tuples exposes the covering set of coschedules a schedule induces.
func ExampleSchedule_Tuples() {
	s, _ := schedule.New([]int{0, 1, 2, 3}, 2, 1)
	for _, tuple := range s.Tuples() {
		fmt.Println(tuple)
	}
	// Output:
	// [0 1]
	// [1 2]
	// [2 3]
	// [3 0]
}

// Sampling returns distinct schedules; when the space is smaller than the
// request it returns all of them.
func ExampleSample() {
	r := rng.New(1)
	scheds := schedule.Sample(r, 4, 2, 2, 10)
	fmt.Println(len(scheds), "of", schedule.Count(4, 2, 2))
	// Output:
	// 3 of 3
}
