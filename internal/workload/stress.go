package workload

import "symbios/internal/trace"

// Antagonist workloads: synthetic stressors that each lean on exactly one
// shared resource. They are not part of the paper's jobmixes; they exist to
// validate that the substrate's conflict channels behave as designed (each
// antagonist must hurt a victim through its own channel and through little
// else) and to let users probe scheduler behaviour under adversarial
// conditions.

// Antagonists maps stressor names to specs:
//
//   - SWEEP_D: streams through a multi-megabyte region, sweeping the shared
//     L1 data cache and TLB;
//   - SWEEP_I: jumps across a huge code footprint, sweeping the shared
//     instruction cache;
//   - FPHOG: back-to-back long-latency floating-point divides, saturating
//     the floating-point units and queue;
//   - BRPOLLUTE: dense unpredictable branches, polluting the shared branch
//     predictor tables and burning fetch slots on mispredict recovery;
//   - NICE: a tiny, cache-resident, predictable filler that should disturb
//     nobody.
var Antagonists = map[string]Spec{
	"SWEEP_D": {Name: "SWEEP_D", Threads: 1, Params: trace.Params{
		LoadFrac: 0.45, StoreFrac: 0.15, BranchFrac: 0.02,
		FPFrac: 0.05, DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.10,
		WorkingSet: 8 << 20, HotSet: 0, HotFrac: 0,
		SeqFrac: 0.95, SeqStride: 64, // one new line per access
		BranchSites: 8, BranchEntropy: 0.01,
		CodeBlocks: 32, BlockLen: 16, JumpFarFrac: 0.01,
	}},
	"SWEEP_I": {Name: "SWEEP_I", Threads: 1, Params: trace.Params{
		LoadFrac: 0.10, StoreFrac: 0.05, BranchFrac: 0.10,
		FPFrac: 0.02, DepShort: 0.20, MaxDep: 24, SecondDepFrac: 0.10,
		WorkingSet: 64 << 10, HotSet: 16 << 10, HotFrac: 0.80,
		SeqFrac: 0.10, SeqStride: 8,
		BranchSites: 512, BranchEntropy: 0.02,
		CodeBlocks: 16384, BlockLen: 4, JumpFarFrac: 0.60, // ~256 KB of code, wild jumps
	}},
	"FPHOG": {Name: "FPHOG", Threads: 1, Params: trace.Params{
		LoadFrac: 0.08, StoreFrac: 0.04, BranchFrac: 0.02,
		FPFrac: 0.95, FPDivFrac: 0.60, IMulFrac: 0,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.10,
		WorkingSet: 16 << 10, HotSet: 8 << 10, HotFrac: 0.90,
		SeqFrac: 0.05, SeqStride: 8,
		BranchSites: 8, BranchEntropy: 0.01,
		CodeBlocks: 32, BlockLen: 16, JumpFarFrac: 0.01,
	}},
	"BRPOLLUTE": {Name: "BRPOLLUTE", Threads: 1, Params: trace.Params{
		LoadFrac: 0.10, StoreFrac: 0.05, BranchFrac: 0.30,
		FPFrac: 0, IMulFrac: 0,
		DepShort: 0.50, MaxDep: 8, SecondDepFrac: 0.20,
		WorkingSet: 32 << 10, HotSet: 16 << 10, HotFrac: 0.90,
		SeqFrac: 0.05, SeqStride: 8,
		BranchSites: 8192, BranchEntropy: 0.45,
		CodeBlocks: 4096, BlockLen: 3, JumpFarFrac: 0.30,
	}},
	"NICE": {Name: "NICE", Threads: 1, Params: trace.Params{
		LoadFrac: 0.15, StoreFrac: 0.05, BranchFrac: 0.04,
		FPFrac: 0.30, FPDivFrac: 0.01, IMulFrac: 0.02,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.20,
		WorkingSet: 16 << 10, HotSet: 8 << 10, HotFrac: 0.90,
		SeqFrac: 0.05, SeqStride: 8,
		BranchSites: 16, BranchEntropy: 0.01,
		CodeBlocks: 32, BlockLen: 12, JumpFarFrac: 0.01,
	}},
}

// Antagonist returns a stressor spec by name; the boolean reports whether
// it exists.
func Antagonist(name string) (Spec, bool) {
	s, ok := Antagonists[name]
	return s, ok
}
