package workload

import (
	"fmt"
	"sort"

	"symbios/internal/rng"
)

// Mix is one experiment's jobmix: the jobs of Table 1 plus the scheduling
// parameters encoded in the paper's Jmn(X,Y,Z) label:
//
//   - X: the number of runnable schedulable entries (a multithreaded job
//     contributes one entry per software thread),
//   - Y: the hardware multithreading level,
//   - Z: how many running entries are swapped out at each timeslice expiry,
//   - m: 's' single-threaded-only or 'p' includes parallel jobs,
//   - n: 'b' big (5M-cycle) timeslice or 'l' little timeslice.
type Mix struct {
	Label string
	// JobNames lists the jobs; a parallel job appears once and expands to
	// Threads schedulable entries.
	JobNames []string
	// SMTLevel is Y.
	SMTLevel int
	// Swap is Z.
	Swap int
	// BigSlice selects the 5M-cycle timeslice ('b') versus the little one.
	BigSlice bool
}

// Tasks returns X: the total number of schedulable entries.
func (m Mix) Tasks() int {
	n := 0
	for _, name := range m.JobNames {
		n += MustLookup(name).Threads
	}
	return n
}

// Build instantiates the mix's jobs with seeds derived from seed. Job IDs
// (and hence address spaces) are assigned in list order.
func (m Mix) Build(seed uint64) ([]*Job, error) {
	jobs := make([]*Job, 0, len(m.JobNames))
	for i, name := range m.JobNames {
		spec, err := Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("workload: mix %s: %w", m.Label, err)
		}
		j, err := NewJob(spec, i, rng.Hash2(seed, uint64(i), 0x3017))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// mixes is the registry of every throughput experiment in the paper
// (Table 1). The Jpb mixes list ARRAY once; its two threads are the two
// ARRAY entries the paper's job list shows.
var mixes = map[string]Mix{
	"Jsb(4,2,2)": {Label: "Jsb(4,2,2)", SMTLevel: 2, Swap: 2, BigSlice: true,
		JobNames: []string{"FP", "MG", "GCC", "IS"}},
	"Jsb(5,2,2)": {Label: "Jsb(5,2,2)", SMTLevel: 2, Swap: 2, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GO"}},
	// Table 1 writes Jsl(5,2,1) and Table 2 writes Jsb(5,2,1) for the same
	// experiment; both labels resolve here.
	"Jsl(5,2,1)": {Label: "Jsl(5,2,1)", SMTLevel: 2, Swap: 1, BigSlice: false,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GO"}},
	"Jsb(5,2,1)": {Label: "Jsb(5,2,1)", SMTLevel: 2, Swap: 1, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GO"}},
	"Jpb(10,2,2)": {Label: "Jpb(10,2,2)", SMTLevel: 2, Swap: 2, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GCC", "ARRAY"}},
	"J2pb(10,2,2)": {Label: "J2pb(10,2,2)", SMTLevel: 2, Swap: 2, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GCC", "ARRAY2"}},
	"Jsb(6,3,3)": {Label: "Jsb(6,3,3)", SMTLevel: 3, Swap: 3, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GCC", "GO"}},
	"Jsb(6,3,1)": {Label: "Jsb(6,3,1)", SMTLevel: 3, Swap: 1, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GCC", "GO"}},
	"Jsl(6,3,1)": {Label: "Jsl(6,3,1)", SMTLevel: 3, Swap: 1, BigSlice: false,
		JobNames: []string{"FP", "MG", "WAVE", "GCC", "GCC", "GO"}},
	"Jsb(8,4,4)": {Label: "Jsb(8,4,4)", SMTLevel: 4, Swap: 4, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"}},
	"Jsb(8,4,1)": {Label: "Jsb(8,4,1)", SMTLevel: 4, Swap: 1, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"}},
	"Jsl(8,4,1)": {Label: "Jsl(8,4,1)", SMTLevel: 4, Swap: 1, BigSlice: false,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"}},
	"Jsb(12,6,6)": {Label: "Jsb(12,6,6)", SMTLevel: 6, Swap: 6, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GCC", "GO", "IS", "CG", "EP"}},
	"Jsb(12,4,4)": {Label: "Jsb(12,4,4)", SMTLevel: 4, Swap: 4, BigSlice: true,
		JobNames: []string{"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GCC", "GO", "IS", "CG", "EP"}},
}

// FigureMixes lists, in presentation order, the 13 jobmix / SMT-level / swap
// combinations of Figures 1 and 3.
var FigureMixes = []string{
	"Jsb(4,2,2)",
	"Jsb(5,2,2)",
	"Jsl(5,2,1)",
	"Jpb(10,2,2)",
	"J2pb(10,2,2)",
	"Jsb(6,3,3)",
	"Jsb(6,3,1)",
	"Jsl(6,3,1)",
	"Jsb(8,4,4)",
	"Jsb(8,4,1)",
	"Jsl(8,4,1)",
	"Jsb(12,6,6)",
	"Jsb(12,4,4)",
}

// HierarchicalMixes gives the jobs used in the Section 7 / Figure 4
// hierarchical-symbiosis experiments, keyed by SMT level (Table 1's last
// four rows).
var HierarchicalMixes = map[int][]string{
	2: {"CG", "mt_ARRAY", "EP"},
	3: {"FP", "MG", "WAVE", "mt_EP", "CG"},
	4: {"FP", "MG", "WAVE", "mt_ARRAY", "EP", "CG"},
	6: {"FP", "MG", "WAVE", "GO", "IS", "GCC", "mt_ARRAY", "EP", "CG", "FT"},
}

// MixByLabel returns the registered mix for a Jmn(X,Y,Z) label.
func MixByLabel(label string) (Mix, error) {
	m, ok := mixes[label]
	if !ok {
		return Mix{}, fmt.Errorf("workload: unknown mix %q", label)
	}
	return m, nil
}

// MustMix is MixByLabel for compile-time-constant labels.
func MustMix(label string) Mix {
	m, err := MixByLabel(label)
	if err != nil {
		panic(err)
	}
	return m
}

// MixLabels returns all registered mix labels, sorted.
func MixLabels() []string {
	out := make([]string, 0, len(mixes))
	for l := range mixes {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
