package workload

import (
	"fmt"

	"symbios/internal/cpu"
	"symbios/internal/trace"
)

// PhasedSource chains instruction streams so a job passes through distinct
// execution phases ("jobs will naturally pass through different phases of
// execution where their resource utilization and IPC profiles change",
// Section 9). The switch points are positions in the dynamic instruction
// stream, so the source remains a pure function of the sequence number and
// replays exactly across context switches.
type PhasedSource struct {
	phases []phase
}

type phase struct {
	until  uint64 // first sequence number beyond this phase (last phase: max)
	stream *trace.Stream
}

// NewPhasedSource builds a source that executes params[i] until the stream
// position reaches switchAt[i], then moves to the next profile; the last
// profile runs forever. len(switchAt) must be len(params)-1 and ascending.
func NewPhasedSource(params []trace.Params, switchAt []uint64, seed, space uint64) (*PhasedSource, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("workload: phased source needs at least one profile")
	}
	if len(switchAt) != len(params)-1 {
		return nil, fmt.Errorf("workload: %d switch points for %d profiles", len(switchAt), len(params))
	}
	ps := &PhasedSource{}
	prev := uint64(0)
	for i, p := range params {
		until := ^uint64(0)
		if i < len(switchAt) {
			until = switchAt[i]
			if until <= prev {
				return nil, fmt.Errorf("workload: switch points must ascend")
			}
			prev = until
		}
		st, err := trace.NewStream(p, seed+uint64(i)*0x9e37, space)
		if err != nil {
			return nil, err
		}
		ps.phases = append(ps.phases, phase{until: until, stream: st})
	}
	return ps, nil
}

// At returns instruction seq, drawn from the profile active at that stream
// position.
func (ps *PhasedSource) At(seq uint64) trace.Inst {
	for i := range ps.phases {
		if seq < ps.phases[i].until {
			return ps.phases[i].stream.At(seq)
		}
	}
	return ps.phases[len(ps.phases)-1].stream.At(seq)
}

// Phases returns the number of profiles.
func (ps *PhasedSource) Phases() int { return len(ps.phases) }

var _ cpu.Source = (*PhasedSource)(nil)
