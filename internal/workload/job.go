package workload

import (
	"fmt"

	"symbios/internal/cpu"
	"symbios/internal/trace"
)

// Job is a running instance of a Spec: one or more software threads, each
// with a resumable position in its instruction stream. The jobscheduler's
// schedulable unit is the (job, thread) pair — on an SMT machine each
// software thread occupies one hardware context — and the paper's Jpb mixes
// treat the two threads of ARRAY as two separately schedulable entries.
type Job struct {
	Spec Spec
	// ID is the job's identity within its mix (also its address space).
	ID int

	sources []threadSource
	gate    *BarrierGroup

	// Progress[t] is the next instruction sequence number thread t will
	// fetch when next scheduled.
	Progress []uint64
	// Committed[t] is the total instructions thread t has retired.
	Committed []uint64

	// SoloIPC is the job's single-threaded offer rate, filled in by
	// calibration (metrics package); the weighted speedup denominator.
	SoloIPC float64
}

// NewJob instantiates spec as job id with the given stream seed. Threads of
// a multithreaded job share the job's address space (they operate on shared
// data) but have distinct instruction streams.
func NewJob(spec Spec, id int, seed uint64) (*Job, error) {
	if spec.Threads < 1 {
		return nil, fmt.Errorf("workload: job %q has %d threads", spec.Name, spec.Threads)
	}
	j := &Job{
		Spec:      spec,
		ID:        id,
		sources:   make([]threadSource, spec.Threads),
		Progress:  make([]uint64, spec.Threads),
		Committed: make([]uint64, spec.Threads),
	}
	for t := 0; t < spec.Threads; t++ {
		base, err := trace.NewStream(spec.Params, seed+uint64(t)*0x1000_0000, uint64(id))
		if err != nil {
			return nil, fmt.Errorf("workload: job %q: %w", spec.Name, err)
		}
		j.sources[t] = threadSource{base: base, syncEvery: spec.SyncEvery}
	}
	if spec.Threads > 1 && spec.SyncEvery > 0 {
		j.gate = NewBarrierGroup(spec.Threads)
	}
	return j, nil
}

// MustNewJob is NewJob for registry specs that are known valid.
func MustNewJob(spec Spec, id int, seed uint64) *Job {
	j, err := NewJob(spec, id, seed)
	if err != nil {
		panic(err)
	}
	return j
}

// Name returns the job's benchmark name.
func (j *Job) Name() string { return j.Spec.Name }

// Threads returns the number of software threads.
func (j *Job) Threads() int { return j.Spec.Threads }

// Source returns the instruction stream for thread t.
func (j *Job) Source(t int) cpu.Source { return j.sources[t] }

// Gate returns the barrier gate shared by the job's threads (nil for
// single-threaded or unsynchronized jobs).
func (j *Job) Gate() cpu.SyncGate {
	if j.gate == nil {
		return nil
	}
	return j.gate
}

// TotalCommitted sums committed instructions over all threads.
func (j *Job) TotalCommitted() uint64 {
	var n uint64
	for _, c := range j.Committed {
		n += c
	}
	return n
}

// threadSource wraps a trace stream, inserting a SYNC barrier marker every
// syncEvery instructions. For SYNC the Inst.Seq field carries the barrier
// ordinal, which is the protocol the cpu package expects.
type threadSource struct {
	base      *trace.Stream
	syncEvery uint64
}

// At returns instruction seq of the thread's stream.
func (s threadSource) At(seq uint64) trace.Inst {
	if s.syncEvery > 0 && (seq+1)%s.syncEvery == 0 {
		return trace.Inst{Op: trace.SYNC, Seq: seq / s.syncEvery}
	}
	return s.base.At(seq)
}

// BarrierGroup coordinates the threads of one multithreaded job. A thread
// may pass barrier k only once every sibling has arrived at barrier k.
// TryPass is idempotent, which matters because a squashed thread re-arrives
// at the same barrier after a context switch.
type BarrierGroup struct {
	arrived []uint64 // arrived[t] = 1 + highest barrier index thread t reached
}

// NewBarrierGroup creates a gate for n threads.
func NewBarrierGroup(n int) *BarrierGroup {
	return &BarrierGroup{arrived: make([]uint64, n)}
}

// TryPass records that thread has arrived at barrier idx and reports
// whether all siblings have arrived, releasing the thread.
func (g *BarrierGroup) TryPass(thread int, idx uint64) bool {
	if g.arrived[thread] < idx+1 {
		g.arrived[thread] = idx + 1
	}
	for _, a := range g.arrived {
		if a < idx+1 {
			return false
		}
	}
	return true
}

// Arrived returns the barrier progress of each thread (diagnostics).
func (g *BarrierGroup) Arrived() []uint64 {
	out := make([]uint64, len(g.arrived))
	copy(out, g.arrived)
	return out
}
