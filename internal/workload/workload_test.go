package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"symbios/internal/trace"
)

// TestProfilesValid: every registered benchmark builds a valid stream.
func TestProfilesValid(t *testing.T) {
	for _, name := range Names() {
		spec := MustLookup(name)
		if spec.Name != name {
			t.Errorf("%s: spec.Name = %q", name, spec.Name)
		}
		if err := spec.Params.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := NewJob(spec, 0, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestMultithreadedRegistry: the parallel jobs have the documented shapes.
func TestMultithreadedRegistry(t *testing.T) {
	cases := map[string]struct {
		threads int
		sync    uint64
	}{
		"ARRAY":    {2, 400},
		"ARRAY2":   {2, 2_000_000},
		"mt_ARRAY": {2, 2000},
		"mt_EP":    {2, 100_000},
	}
	for name, want := range cases {
		spec := MustLookup(name)
		if spec.Threads != want.threads || spec.SyncEvery != want.sync {
			t.Errorf("%s: threads=%d sync=%d, want %d/%d",
				name, spec.Threads, spec.SyncEvery, want.threads, want.sync)
		}
	}
}

// TestWithThreads re-targets a spec without mutating the registry.
func TestWithThreads(t *testing.T) {
	orig := MustLookup("mt_EP")
	re := orig.WithThreads(1)
	if re.Threads != 1 {
		t.Errorf("WithThreads(1) gave %d", re.Threads)
	}
	if MustLookup("mt_EP").Threads != orig.Threads {
		t.Error("WithThreads mutated the registry")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithThreads(0) did not panic")
		}
	}()
	orig.WithThreads(0)
}

// TestMixTaskCounts: each registered mix's X matches its label.
func TestMixTaskCounts(t *testing.T) {
	for _, label := range MixLabels() {
		mix := MustMix(label)
		// Parse X from "Jmn(X,Y,Z)".
		open := strings.Index(label, "(")
		var x, y, z int
		if _, err := sscanf(label[open:], &x, &y, &z); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if mix.Tasks() != x {
			t.Errorf("%s: Tasks() = %d, want %d", label, mix.Tasks(), x)
		}
		if mix.SMTLevel != y || mix.Swap != z {
			t.Errorf("%s: Y=%d Z=%d, want %d/%d", label, mix.SMTLevel, mix.Swap, y, z)
		}
	}
	if _, err := MixByLabel("Jxx(1,1,1)"); err == nil {
		t.Error("unknown mix accepted")
	}
}

// sscanf parses "(X,Y,Z)".
func sscanf(s string, x, y, z *int) (int, error) {
	n := 0
	cur := 0
	sign := false
	vals := []*int{x, y, z}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			cur = cur*10 + int(c-'0')
			sign = true
		case c == ',' || c == ')':
			if sign {
				*vals[n] = cur
				n++
				cur, sign = 0, false
			}
			if n == 3 {
				return n, nil
			}
		}
	}
	return n, nil
}

// TestBuildDeterminism: the same seed builds byte-identical streams.
func TestBuildDeterminism(t *testing.T) {
	mix := MustMix("Jsb(6,3,3)")
	a, err := mix.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mix.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for seq := uint64(0); seq < 100; seq++ {
			if a[i].Source(0).At(seq) != b[i].Source(0).At(seq) {
				t.Fatalf("job %d diverges at seq %d", i, seq)
			}
		}
	}
}

// TestJobThreadsShareSpaceDistinctStreams: threads of one job share an
// address region but execute different instruction streams.
func TestJobThreadsShareSpaceDistinctStreams(t *testing.T) {
	job := MustNewJob(MustLookup("ARRAY2"), 3, 77)
	var addr0, addr1 uint64
	same := 0
	for seq := uint64(0); seq < 2000; seq++ {
		a, b := job.Source(0).At(seq), job.Source(1).At(seq)
		if a == b {
			same++
		}
		if a.Op.IsMem() && addr0 == 0 {
			addr0 = a.Addr
		}
		if b.Op.IsMem() && addr1 == 0 {
			addr1 = b.Addr
		}
	}
	if same > 100 {
		t.Errorf("sibling threads nearly identical: %d/2000 equal instructions", same)
	}
	// Shared space: addresses land in the same 1TB region.
	if addr0>>40 != addr1>>40 {
		t.Errorf("sibling threads in different address spaces: %#x vs %#x", addr0, addr1)
	}
}

// TestSyncMarkers: the thread source inserts SYNC with the barrier ordinal
// encoded, exactly every SyncEvery instructions.
func TestSyncMarkers(t *testing.T) {
	job := MustNewJob(MustLookup("ARRAY"), 0, 5)
	every := MustLookup("ARRAY").SyncEvery
	src := job.Source(0)
	for k := uint64(0); k < 5; k++ {
		seq := (k+1)*every - 1
		in := src.At(seq)
		if in.Op != trace.SYNC {
			t.Fatalf("no SYNC at seq %d", seq)
		}
		if in.Seq != k {
			t.Errorf("barrier ordinal %d at seq %d, want %d", in.Seq, seq, k)
		}
		if src.At(seq-1).Op == trace.SYNC {
			t.Errorf("stray SYNC at seq %d", seq-1)
		}
	}
}

// TestBarrierGroupSemantics: TryPass is idempotent and releases only when
// every thread has arrived.
func TestBarrierGroupSemantics(t *testing.T) {
	g := NewBarrierGroup(3)
	if g.TryPass(0, 0) {
		t.Error("released with one arrival")
	}
	if g.TryPass(0, 0) {
		t.Error("idempotent re-arrival released the barrier")
	}
	if g.TryPass(1, 0) {
		t.Error("released with two arrivals")
	}
	if !g.TryPass(2, 0) {
		t.Error("not released with all arrivals")
	}
	// Re-query after release (a squashed thread re-arrives): still open.
	if !g.TryPass(0, 0) {
		t.Error("release not idempotent")
	}
	// Next barrier requires everyone again.
	if g.TryPass(0, 1) {
		t.Error("barrier 1 released early")
	}
	got := g.Arrived()
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("arrival state %v", got)
	}
}

// TestBarrierMonotone is a property test: arrivals never regress.
func TestBarrierMonotone(t *testing.T) {
	g := NewBarrierGroup(2)
	f := func(thread bool, idx uint8) bool {
		ti := 0
		if thread {
			ti = 1
		}
		before := g.Arrived()[ti]
		g.TryPass(ti, uint64(idx%8))
		return g.Arrived()[ti] >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFigureMixes: the 13 presentation-order labels all resolve.
func TestFigureMixes(t *testing.T) {
	if len(FigureMixes) != 13 {
		t.Fatalf("%d figure mixes, want 13", len(FigureMixes))
	}
	for _, l := range FigureMixes {
		if _, err := MixByLabel(l); err != nil {
			t.Errorf("%s: %v", l, err)
		}
	}
	for level, names := range HierarchicalMixes {
		for _, n := range names {
			if _, err := Lookup(n); err != nil {
				t.Errorf("SMT level %d: %v", level, err)
			}
		}
	}
}

// TestJobBookkeeping covers accessors.
func TestJobBookkeeping(t *testing.T) {
	job := MustNewJob(MustLookup("FP"), 2, 9)
	if job.Name() != "FP" || job.Threads() != 1 || job.Gate() != nil {
		t.Error("FP job accessors wrong")
	}
	job.Committed[0] = 42
	if job.TotalCommitted() != 42 {
		t.Errorf("TotalCommitted %d", job.TotalCommitted())
	}
	if _, err := NewJob(Spec{Name: "bad", Threads: 0}, 0, 1); err == nil {
		t.Error("zero-thread spec accepted")
	}
}

// TestAntagonistsValid: every stressor builds a valid stream.
func TestAntagonistsValid(t *testing.T) {
	if len(Antagonists) != 5 {
		t.Fatalf("%d antagonists", len(Antagonists))
	}
	for name := range Antagonists {
		spec, ok := Antagonist(name)
		if !ok {
			t.Fatalf("lookup %s failed", name)
		}
		if err := spec.Params.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := NewJob(spec, 0, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := Antagonist("NOPE"); ok {
		t.Error("unknown antagonist found")
	}
}

// TestPhasedSource: the profile switches exactly at the configured stream
// position, the source is pure, and construction validates its inputs.
func TestPhasedSource(t *testing.T) {
	fpOnly := MustLookup("EP").Params
	intOnly := MustLookup("GO").Params
	ps, err := NewPhasedSource([]trace.Params{fpOnly, intOnly}, []uint64{10_000}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Phases() != 2 {
		t.Fatalf("%d phases", ps.Phases())
	}
	countFP := func(lo, hi uint64) int {
		n := 0
		for s := lo; s < hi; s++ {
			if ps.At(s).Op.IsFP() {
				n++
			}
		}
		return n
	}
	before := countFP(0, 5000)
	after := countFP(15_000, 20_000)
	if before < 2000 {
		t.Errorf("phase 1 fp count %d; EP profile should be fp-heavy", before)
	}
	if after > 200 {
		t.Errorf("phase 2 fp count %d; GO profile has no fp", after)
	}
	// Purity across the boundary.
	for _, s := range []uint64{9_999, 10_000, 10_001} {
		if ps.At(s) != ps.At(s) {
			t.Fatalf("impure at %d", s)
		}
	}
	// Validation.
	if _, err := NewPhasedSource(nil, nil, 1, 1); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := NewPhasedSource([]trace.Params{fpOnly, intOnly}, nil, 1, 1); err == nil {
		t.Error("missing switch points accepted")
	}
	if _, err := NewPhasedSource([]trace.Params{fpOnly, intOnly, fpOnly}, []uint64{50, 40}, 1, 1); err == nil {
		t.Error("non-ascending switch points accepted")
	}
}
