// Package workload defines the jobs the scheduler runs: synthetic stand-ins
// for the SPEC95 and NAS Parallel Benchmark applications of Table 1, the
// parallel program ARRAY, and the jobmix registry for every experiment in
// the paper.
//
// Each benchmark is a trace.Params profile tuned so that its solo behaviour
// on the simulated core matches the published characterization of the
// program it replaces: high-IPC floating-point scientific codes (FP=fpppp,
// MG=mgrid, SWIM, ...) versus lower-IPC, branchy, integer codes typical of
// workstation tasks (GCC, GO), with memory-bound outliers (IS, CG) and a
// compute-bound one (EP). The profiles differ in which shared resource they
// lean on — floating-point units and queue, data cache, branch predictor,
// integer ALUs — which is what makes some coschedules symbiotic and others
// not.
package workload

import (
	"fmt"
	"sort"

	"symbios/internal/trace"
)

// Spec describes one schedulable job: a name, a stream profile, and — for
// multithreaded jobs — a thread count and barrier interval.
type Spec struct {
	Name string
	// Params is the per-thread instruction stream profile.
	Params trace.Params
	// Threads is the number of software threads (1 for single-threaded
	// jobs). Each thread occupies one hardware context when scheduled.
	Threads int
	// SyncEvery is the number of instructions between barriers for
	// multithreaded jobs; 0 means the threads never synchronize.
	SyncEvery uint64
}

// WithThreads returns a copy of the spec re-compiled for n threads (the
// paper's Section 7 assumes an MTA-like compiler that adapts the thread
// count to the contexts the scheduler grants).
func (s Spec) WithThreads(n int) Spec {
	if n < 1 {
		panic("workload: WithThreads(n < 1)")
	}
	s.Threads = n
	return s
}

// profiles maps benchmark names to stream profiles. FP is fpppp and MG is
// mgrid from SPEC95, as in the paper's Table 1.
var profiles = map[string]Spec{
	// fpppp: enormous basic blocks of floating-point code, small data
	// footprint, very high natural ILP.
	"FP": {Name: "FP", Threads: 1, Params: trace.Params{
		LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.02,
		FPFrac: 0.85, FPDivFrac: 0.03, IMulFrac: 0.02,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 128 << 10, HotSet: 16 << 10, HotFrac: 0.80,
		SeqFrac: 0.15, SeqStride: 8,
		BranchSites: 32, BranchEntropy: 0.02,
		CodeBlocks: 1024, BlockLen: 12, JumpFarFrac: 0.05,
	}},
	// mgrid: multigrid stencil; streaming floating point over a large grid.
	"MG": {Name: "MG", Threads: 1, Params: trace.Params{
		LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.03,
		FPFrac: 0.80, FPDivFrac: 0.02, IMulFrac: 0.02,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 384 << 10, HotSet: 16 << 10, HotFrac: 0.35,
		SeqFrac: 0.60, SeqStride: 8,
		BranchSites: 16, BranchEntropy: 0.02,
		CodeBlocks: 256, BlockLen: 10, JumpFarFrac: 0.03,
	}},
	// wave5: plasma simulation; mixed fp with moderate locality.
	"WAVE": {Name: "WAVE", Threads: 1, Params: trace.Params{
		LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.05,
		FPFrac: 0.70, FPDivFrac: 0.05, IMulFrac: 0.03,
		DepShort: 0.10, MaxDep: 48, SecondDepFrac: 0.25,
		WorkingSet: 256 << 10, HotSet: 16 << 10, HotFrac: 0.55,
		SeqFrac: 0.40, SeqStride: 8,
		BranchSites: 64, BranchEntropy: 0.04,
		CodeBlocks: 512, BlockLen: 8, JumpFarFrac: 0.08,
	}},
	// swim: shallow-water model; pure streaming fp, memory bandwidth bound.
	"SWIM": {Name: "SWIM", Threads: 1, Params: trace.Params{
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.02,
		FPFrac: 0.85, FPDivFrac: 0.01, IMulFrac: 0.01,
		DepShort: 0.04, MaxDep: 60, SecondDepFrac: 0.25,
		WorkingSet: 512 << 10, HotSet: 0, HotFrac: 0,
		SeqFrac: 0.92, SeqStride: 8,
		BranchSites: 8, BranchEntropy: 0.01,
		CodeBlocks: 128, BlockLen: 12, JumpFarFrac: 0.02,
	}},
	// su2cor: quantum physics Monte Carlo; fp with moderate streaming.
	"SU2COR": {Name: "SU2COR", Threads: 1, Params: trace.Params{
		LoadFrac: 0.27, StoreFrac: 0.10, BranchFrac: 0.05,
		FPFrac: 0.72, FPDivFrac: 0.04, IMulFrac: 0.03,
		DepShort: 0.10, MaxDep: 48, SecondDepFrac: 0.25,
		WorkingSet: 256 << 10, HotSet: 16 << 10, HotFrac: 0.50,
		SeqFrac: 0.45, SeqStride: 8,
		BranchSites: 96, BranchEntropy: 0.05,
		CodeBlocks: 512, BlockLen: 8, JumpFarFrac: 0.08,
	}},
	// turb3d: turbulence simulation; fp with FFT-like strided access.
	"TURB3D": {Name: "TURB3D", Threads: 1, Params: trace.Params{
		LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.04,
		FPFrac: 0.68, FPDivFrac: 0.03, IMulFrac: 0.04,
		DepShort: 0.10, MaxDep: 48, SecondDepFrac: 0.25,
		WorkingSet: 256 << 10, HotSet: 16 << 10, HotFrac: 0.50,
		SeqFrac: 0.45, SeqStride: 32,
		BranchSites: 64, BranchEntropy: 0.04,
		CodeBlocks: 512, BlockLen: 9, JumpFarFrac: 0.06,
	}},
	// gcc: the compiler; branchy, low-ILP integer code with a huge text
	// segment (icache pressure) and pointer-chasing data access.
	"GCC": {Name: "GCC", Threads: 1, Params: trace.Params{
		LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.16,
		FPFrac: 0.02, FPDivFrac: 0, IMulFrac: 0.02,
		DepShort: 0.65, MaxDep: 8, SecondDepFrac: 0.25,
		WorkingSet: 128 << 10, HotSet: 16 << 10, HotFrac: 0.80,
		SeqFrac: 0.12, SeqStride: 16,
		BranchSites: 2048, BranchEntropy: 0.14,
		CodeBlocks: 2048, BlockLen: 5, JumpFarFrac: 0.15,
	}},
	// go: game tree search; the least predictable branches in SPEC95,
	// very low natural ILP.
	"GO": {Name: "GO", Threads: 1, Params: trace.Params{
		LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.18,
		FPFrac: 0.00, FPDivFrac: 0, IMulFrac: 0.02,
		DepShort: 0.65, MaxDep: 8, SecondDepFrac: 0.30,
		WorkingSet: 96 << 10, HotSet: 12 << 10, HotFrac: 0.82,
		SeqFrac: 0.10, SeqStride: 16,
		BranchSites: 4096, BranchEntropy: 0.18,
		CodeBlocks: 1024, BlockLen: 4, JumpFarFrac: 0.15,
	}},
	// IS (NPB integer sort): random scatter/gather over a large key space;
	// data-cache and TLB bound.
	"IS": {Name: "IS", Threads: 1, Params: trace.Params{
		LoadFrac: 0.30, StoreFrac: 0.15, BranchFrac: 0.06,
		FPFrac: 0.02, FPDivFrac: 0, IMulFrac: 0.03,
		DepShort: 0.15, MaxDep: 40, SecondDepFrac: 0.20,
		WorkingSet: 512 << 10, HotSet: 16 << 10, HotFrac: 0.45,
		SeqFrac: 0.25, SeqStride: 8,
		BranchSites: 32, BranchEntropy: 0.05,
		CodeBlocks: 64, BlockLen: 8, JumpFarFrac: 0.05,
	}},
	// CG (NPB conjugate gradient): sparse matrix-vector products; irregular
	// fp memory access.
	"CG": {Name: "CG", Threads: 1, Params: trace.Params{
		LoadFrac: 0.34, StoreFrac: 0.06, BranchFrac: 0.04,
		FPFrac: 0.60, FPDivFrac: 0.02, IMulFrac: 0.02,
		DepShort: 0.12, MaxDep: 40, SecondDepFrac: 0.30,
		WorkingSet: 512 << 10, HotSet: 16 << 10, HotFrac: 0.45,
		SeqFrac: 0.30, SeqStride: 8,
		BranchSites: 16, BranchEntropy: 0.03,
		CodeBlocks: 128, BlockLen: 10, JumpFarFrac: 0.04,
	}},
	// EP (NPB embarrassingly parallel): random-number generation and
	// transcendentals; tiny footprint, divide-heavy floating point.
	"EP": {Name: "EP", Threads: 1, Params: trace.Params{
		LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.03,
		FPFrac: 0.80, FPDivFrac: 0.12, IMulFrac: 0.04,
		DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 32 << 10, HotSet: 8 << 10, HotFrac: 0.80,
		SeqFrac: 0.15, SeqStride: 8,
		BranchSites: 8, BranchEntropy: 0.01,
		CodeBlocks: 64, BlockLen: 16, JumpFarFrac: 0.02,
	}},
	// FT (NPB 3-D FFT): strided fp over a large array.
	"FT": {Name: "FT", Threads: 1, Params: trace.Params{
		LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.03,
		FPFrac: 0.78, FPDivFrac: 0.02, IMulFrac: 0.03,
		DepShort: 0.08, MaxDep: 56, SecondDepFrac: 0.25,
		WorkingSet: 512 << 10, HotSet: 16 << 10, HotFrac: 0.40,
		SeqFrac: 0.45, SeqStride: 32,
		BranchSites: 32, BranchEntropy: 0.02,
		CodeBlocks: 256, BlockLen: 10, JumpFarFrac: 0.04,
	}},
	// ARRAY: the paper's parallel prefix program; two threads over a shared
	// array with tight synchronization (a barrier every few hundred
	// instructions), so the threads only make progress when coscheduled.
	"ARRAY": {Name: "ARRAY", Threads: 2, SyncEvery: 400, Params: arrayParams},
	// ARRAY2: the Section 6 variant of ARRAY "that does little
	// synchronization"; its threads run well even when not coscheduled.
	"ARRAY2": {Name: "ARRAY2", Threads: 2, SyncEvery: 2_000_000, Params: arrayParams},
	// mt_ARRAY / mt_EP: multithreaded jobs whose thread count adapts to the
	// contexts the scheduler grants (Section 7, hierarchical symbiosis).
	"mt_ARRAY": {Name: "mt_ARRAY", Threads: 2, SyncEvery: 2000, Params: arrayParams},
	"mt_EP":    {Name: "mt_EP", Threads: 2, SyncEvery: 100_000, Params: mtEPParams},
}

// arrayParams is the per-thread profile of the ARRAY parallel prefix
// program: streaming mixed fp/int over a shared array.
var arrayParams = trace.Params{
	LoadFrac: 0.30, StoreFrac: 0.15, BranchFrac: 0.04,
	FPFrac: 0.50, FPDivFrac: 0.01, IMulFrac: 0.02,
	DepShort: 0.08, MaxDep: 48, SecondDepFrac: 0.25,
	WorkingSet: 256 << 10, HotSet: 16 << 10, HotFrac: 0.30,
	SeqFrac: 0.65, SeqStride: 8,
	BranchSites: 16, BranchEntropy: 0.02,
	CodeBlocks: 64, BlockLen: 10, JumpFarFrac: 0.03,
}

// mtEPParams mirrors EP per thread.
var mtEPParams = trace.Params{
	LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.03,
	FPFrac: 0.80, FPDivFrac: 0.12, IMulFrac: 0.04,
	DepShort: 0.05, MaxDep: 56, SecondDepFrac: 0.25,
	WorkingSet: 32 << 10, HotSet: 8 << 10, HotFrac: 0.80,
	SeqFrac: 0.15, SeqStride: 8,
	BranchSites: 8, BranchEntropy: 0.01,
	CodeBlocks: 64, BlockLen: 16, JumpFarFrac: 0.02,
}

// Lookup returns the spec for a benchmark name.
func Lookup(name string) (Spec, error) {
	s, ok := profiles[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return s, nil
}

// MustLookup is Lookup for registry-driven callers where the name is a
// compile-time constant.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
