package workload_test

import (
	"fmt"

	"symbios/internal/workload"
)

// Mixes resolve the paper's Jmn(X,Y,Z) labels to jobs and machine
// parameters.
func ExampleMixByLabel() {
	mix, err := workload.MixByLabel("Jsb(6,3,3)")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(mix.JobNames)
	fmt.Println(mix.Tasks(), mix.SMTLevel, mix.Swap)
	// Output:
	// [FP MG WAVE GCC GCC GO]
	// 6 3 3
}

// A parallel job contributes one schedulable task per software thread: the
// Jpb mixes list ARRAY once, but it occupies two entries of the X=10 task
// list, exactly as in the paper's job table.
func ExampleMix_Tasks() {
	mix := workload.MustMix("Jpb(10,2,2)")
	fmt.Println(len(mix.JobNames), "jobs,", mix.Tasks(), "schedulable tasks")
	// Output:
	// 9 jobs, 10 schedulable tasks
}

// Barrier groups release a thread only when every sibling has arrived.
func ExampleBarrierGroup() {
	g := workload.NewBarrierGroup(2)
	fmt.Println(g.TryPass(0, 0)) // thread 0 arrives at barrier 0: blocked
	fmt.Println(g.TryPass(1, 0)) // thread 1 arrives: both released
	fmt.Println(g.TryPass(0, 0)) // idempotent re-query after a squash
	// Output:
	// false
	// true
	// true
}
