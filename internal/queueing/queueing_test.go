package queueing

import (
	"math"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/core"
)

// fakeSolo gives every generator benchmark a fixed rate, so script tests
// need no simulation.
func fakeSolo() map[string]float64 {
	out := map[string]float64{}
	for _, n := range singleThreadedBenchmarks {
		out[n] = 1.0
	}
	return out
}

// TestScriptStatistics: interarrival and length distributions match their
// parameters, and the script is sorted in time.
func TestScriptStatistics(t *testing.T) {
	const inter, length = 50_000.0, 400_000.0
	const horizon = 200_000_000
	s, err := GenerateScript(3, inter, length, horizon, fakeSolo())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Arrivals) < 1000 {
		t.Fatalf("only %d arrivals", len(s.Arrivals))
	}
	var lastAt uint64
	var sumWork float64
	for _, a := range s.Arrivals {
		if a.At < lastAt {
			t.Fatal("arrivals out of order")
		}
		lastAt = a.At
		if a.At >= horizon {
			t.Fatal("arrival beyond horizon")
		}
		sumWork += float64(a.Work)
	}
	gotInter := float64(lastAt) / float64(len(s.Arrivals))
	if math.Abs(gotInter-inter)/inter > 0.1 {
		t.Errorf("mean interarrival %.0f, want ~%.0f", gotInter, inter)
	}
	// Work = cycles * soloIPC with soloIPC = 1.
	gotLen := sumWork / float64(len(s.Arrivals))
	if math.Abs(gotLen-length)/length > 0.1 {
		t.Errorf("mean length %.0f, want ~%.0f", gotLen, length)
	}
}

// TestScriptDeterminism: same seed, same script.
func TestScriptDeterminism(t *testing.T) {
	a, err := GenerateScript(7, 1000, 10000, 1_000_000, fakeSolo())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScript(7, 1000, 10000, 1_000_000, fakeSolo())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("script lengths differ")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

// TestScriptErrors: invalid parameters are rejected.
func TestScriptErrors(t *testing.T) {
	if _, err := GenerateScript(1, 0, 100, 1000, fakeSolo()); err == nil {
		t.Error("zero interarrival accepted")
	}
	if _, err := GenerateScript(1, 100, 0, 1000, fakeSolo()); err == nil {
		t.Error("zero job length accepted")
	}
	if _, err := GenerateScript(1, 100, 100, 10_000, map[string]float64{}); err == nil {
		t.Error("missing solo rates accepted")
	}
}

// TestNaiveConservation: every admitted job is either completed or still in
// the system; response times are positive.
func TestNaiveConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	solo, err := CalibrateSolo(cfg, 300_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4_000_000
	script, err := GenerateScript(5, 150_000, 300_000, horizon, solo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNaive(cfg, 50_000, script, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.LeftoverInSystem != res.Admitted {
		t.Errorf("conservation: %d completed + %d leftover != %d admitted",
			res.Completed, res.LeftoverInSystem, res.Admitted)
	}
	if res.Admitted > len(script.Arrivals) {
		t.Errorf("admitted %d of %d scripted arrivals", res.Admitted, len(script.Arrivals))
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.MeanResponse <= 0 {
		t.Errorf("mean response %f", res.MeanResponse)
	}
	if res.Cycles < horizon {
		t.Errorf("stopped early at %d", res.Cycles)
	}
}

// TestSOSConservationAndDeterminism: the SOS scheduler preserves jobs and
// is reproducible.
func TestSOSConservationAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	solo, err := CalibrateSolo(cfg, 300_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4_000_000
	script, err := GenerateScript(6, 150_000, 300_000, horizon, solo)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultSOSOptions(script)
	opt.Samples = 3
	run := func() Result {
		res, err := RunSOS(cfg, 50_000, script, horizon, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.Completed+a.LeftoverInSystem != a.Admitted {
		t.Errorf("conservation: %d + %d != %d admitted", a.Completed, a.LeftoverInSystem, a.Admitted)
	}
	if a.Completed == 0 {
		t.Fatal("SOS completed nothing")
	}
	b := run()
	if a != b {
		t.Errorf("SOS runs diverged: %+v vs %+v", a, b)
	}
}

// TestSOSOptionErrors: invalid options are rejected.
func TestSOSOptionErrors(t *testing.T) {
	cfg := arch.Default21264(2)
	script := Script{MeanInterarrival: 1000, MeanJobCycles: 1000}
	if _, err := RunSOS(cfg, 1000, script, 1000, SOSOptions{Samples: 0, Predictor: core.PredScore, SymbiosInterval: 100}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := RunNaive(cfg, 0, script, 1000); err == nil {
		t.Error("zero slice accepted")
	}
}

// TestDefaultSOSOptions derives the symbiosis interval from the script.
func TestDefaultSOSOptions(t *testing.T) {
	opt := DefaultSOSOptions(Script{MeanInterarrival: 123456})
	if opt.SymbiosInterval != 123456 {
		t.Errorf("symbiosis interval %d", opt.SymbiosInterval)
	}
	if opt.Predictor != core.PredScore || opt.Samples < 1 {
		t.Error("defaults incomplete")
	}
}

// TestCalibrateSolo returns sane rates for every generator benchmark.
func TestCalibrateSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	solo, err := CalibrateSolo(arch.Default21264(2), 200_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != len(singleThreadedBenchmarks) {
		t.Fatalf("%d rates", len(solo))
	}
	for n, r := range solo {
		if r <= 0 || r > 8 {
			t.Errorf("%s: solo IPC %f", n, r)
		}
	}
}

// TestSOSBackoff: with a stable jobmix (one initial burst, no further
// arrivals or departures), SOS enters symbios, re-samples on the timer,
// confirms its prediction and doubles the symbiosis interval.
func TestSOSBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	// Five long jobs arriving immediately; none finish within the horizon.
	script := Script{MeanInterarrival: 100_000, MeanJobCycles: 1_000_000}
	for i := 0; i < 5; i++ {
		script.Arrivals = append(script.Arrivals, Arrival{
			At: uint64(i), Benchmark: singleThreadedBenchmarks[i], Work: 1 << 40,
		})
	}
	opt := SOSOptions{
		Samples:         3,
		Predictor:       core.PredScore,
		SymbiosInterval: 200_000,
		Seed:            4,
	}
	res, err := RunSOS(cfg, 25_000, script, 6_000_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("jobs unexpectedly completed: %d", res.Completed)
	}
	if res.SamplePhases < 2 {
		t.Errorf("only %d sample phases; timer resampling did not engage", res.SamplePhases)
	}
	if res.SymbiosEntries < 2 {
		t.Errorf("only %d symbios entries", res.SymbiosEntries)
	}
	if res.MaxBackoff <= opt.SymbiosInterval {
		t.Errorf("backoff never exceeded the base interval: max %d", res.MaxBackoff)
	}
}

// TestDriftDetection: with a hair-trigger drift threshold, natural
// slice-to-slice IPC variation forces drift resamples; with detection
// disabled there are none.
func TestDriftDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	script := Script{MeanInterarrival: 100_000, MeanJobCycles: 1_000_000}
	for i := 0; i < 5; i++ {
		script.Arrivals = append(script.Arrivals, Arrival{
			At: uint64(i), Benchmark: singleThreadedBenchmarks[i], Work: 1 << 40,
		})
	}
	base := SOSOptions{
		Samples:         3,
		Predictor:       core.PredScore,
		SymbiosInterval: 2_000_000,
		Seed:            4,
	}
	off, err := RunSOS(cfg, 25_000, script, 5_000_000, base)
	if err != nil {
		t.Fatal(err)
	}
	if off.DriftResamples != 0 {
		t.Errorf("drift resamples with detection disabled: %d", off.DriftResamples)
	}
	trigger := base
	trigger.DriftThreshold = 0.005
	trigger.DriftWindow = 2
	on, err := RunSOS(cfg, 25_000, script, 5_000_000, trigger)
	if err != nil {
		t.Fatal(err)
	}
	if on.DriftResamples == 0 {
		t.Error("hair-trigger drift threshold never fired")
	}
	if on.SamplePhases <= off.SamplePhases {
		t.Errorf("drift detection did not raise sampling frequency: %d vs %d",
			on.SamplePhases, off.SamplePhases)
	}
}
