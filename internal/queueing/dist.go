package queueing

import (
	"fmt"

	"symbios/internal/rng"
)

// DistKind names an interarrival / job-size distribution family.
type DistKind int

const (
	// DistExp is the exponential (Poisson-process) distribution of Section 9.
	DistExp DistKind = iota
	// DistBoundedPareto is a heavy-tailed bounded Pareto: many short draws,
	// rare huge ones, but never unbounded — the open-system stress shape.
	DistBoundedPareto
)

// Dist is a deterministic one-dimensional distribution drawn from an
// rng.Stream. The zero Dist is invalid; build one with ExpDist or
// BoundedParetoDist.
type Dist struct {
	Kind DistKind
	// ExpMean is the mean for DistExp.
	ExpMean float64
	// Alpha, Lo, Hi parameterize DistBoundedPareto.
	Alpha, Lo, Hi float64
}

// ExpDist returns an exponential distribution with the given mean.
func ExpDist(mean float64) Dist {
	return Dist{Kind: DistExp, ExpMean: mean}
}

// BoundedParetoDist returns a bounded Pareto distribution with shape alpha
// on [lo, hi].
func BoundedParetoDist(alpha, lo, hi float64) Dist {
	return Dist{Kind: DistBoundedPareto, Alpha: alpha, Lo: lo, Hi: hi}
}

// BoundedParetoWithMean returns a bounded Pareto distribution with shape
// alpha, an hi/lo spread of the given ratio, and the requested mean — the
// knob the load sweeps use so heavy-tailed traffic offers the same load as
// the Poisson baseline it is compared against.
func BoundedParetoWithMean(alpha, spread, mean float64) Dist {
	if spread <= 1 || mean <= 0 {
		panic("queueing: BoundedParetoWithMean needs spread > 1 and mean > 0")
	}
	// Mean scales linearly in lo at fixed alpha and hi/lo, so solve with a
	// unit-lo probe.
	unit := rng.BoundedParetoMean(alpha, 1, spread)
	lo := mean / unit
	return BoundedParetoDist(alpha, lo, lo*spread)
}

// Draw samples one deviate.
func (d Dist) Draw(r *rng.Stream) float64 {
	switch d.Kind {
	case DistExp:
		return r.Exp(d.ExpMean)
	case DistBoundedPareto:
		return r.BoundedPareto(d.Alpha, d.Lo, d.Hi)
	default:
		panic(fmt.Sprintf("queueing: unknown distribution kind %d", d.Kind))
	}
}

// Mean returns the distribution's analytic mean.
func (d Dist) Mean() float64 {
	switch d.Kind {
	case DistExp:
		return d.ExpMean
	case DistBoundedPareto:
		return rng.BoundedParetoMean(d.Alpha, d.Lo, d.Hi)
	default:
		panic(fmt.Sprintf("queueing: unknown distribution kind %d", d.Kind))
	}
}

// validate rejects unusable parameters up front so script generation can
// return an error instead of panicking mid-stream.
func (d Dist) validate() error {
	switch d.Kind {
	case DistExp:
		if d.ExpMean <= 0 {
			return fmt.Errorf("queueing: non-positive exponential mean")
		}
	case DistBoundedPareto:
		if d.Alpha <= 0 || d.Lo <= 0 || d.Hi <= d.Lo {
			return fmt.Errorf("queueing: bounded Pareto needs alpha > 0 and 0 < lo < hi")
		}
	default:
		return fmt.Errorf("queueing: unknown distribution kind %d", d.Kind)
	}
	return nil
}
