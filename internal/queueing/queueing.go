// Package queueing models the open system of Section 9: jobs enter with
// exponentially distributed interarrival times, run for exponentially
// distributed amounts of work, and leave; the system is sized by Little's
// law so that about N = 2 x SMT-level jobs are present in steady state.
//
// Two schedulers are compared on identical arrival sequences:
//
//   - the naive (random/control) scheduler simply coschedules jobs in
//     arrival order, round-robin, swapping the whole running set each
//     timeslice;
//   - SOS resamples schedules whenever a job arrives, departs, or the
//     symbiosis timer expires, picks the best by the Score predictor, and
//     runs it; when a resample confirms the previous prediction and nothing
//     else changed, the symbiosis interval backs off exponentially.
//
// The figure of merit is mean response time (completion minus arrival),
// which in a stable system is the right metric: throughput cannot exceed
// the arrival rate.
package queueing

import (
	"fmt"
	"sort"

	"symbios/internal/arch"
	"symbios/internal/core"
	"symbios/internal/counters"
	"symbios/internal/cpu"
	"symbios/internal/rng"
	"symbios/internal/schedule"
	"symbios/internal/workload"
)

// Arrival is one scripted job arrival. Scripts are generated once and fed
// identically to both schedulers ("to model a random system but produce
// repeatable results, we fed the same jobs in the same order with the same
// arrival times to SOS and a control group scheduler").
type Arrival struct {
	At        uint64 // arrival cycle
	Benchmark string
	// Work is the job's length in instructions (cycles of nominal length
	// times the benchmark's solo IPC, per the paper's job generator).
	Work uint64
}

// Script is a reproducible arrival sequence.
type Script struct {
	Arrivals []Arrival
	// MeanJobCycles is T, the mean job duration in cycles.
	MeanJobCycles float64
	// MeanInterarrival is 1/lambda in cycles.
	MeanInterarrival float64
}

// singleThreadedBenchmarks lists the Table 1 jobs eligible for the random
// job generator.
var singleThreadedBenchmarks = []string{
	"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GO", "IS", "CG", "EP", "FT",
}

// GenerateScript builds an arrival script: interarrival times exponential
// with mean meanInterarrival, job lengths exponential with mean
// meanJobCycles (converted to instructions via each benchmark's solo IPC),
// until horizon cycles.
func GenerateScript(seed uint64, meanInterarrival, meanJobCycles float64, horizon uint64, soloIPC map[string]float64) (Script, error) {
	if meanInterarrival <= 0 || meanJobCycles <= 0 {
		return Script{}, fmt.Errorf("queueing: non-positive script parameters")
	}
	return GenerateScriptDist(seed, ExpDist(meanInterarrival), ExpDist(meanJobCycles), horizon, soloIPC)
}

// GenerateScriptDist builds an arrival script with arbitrary interarrival
// and job-size distributions (exponential or heavy-tailed bounded Pareto),
// deterministic in seed. Job sizes are drawn in cycles and converted to
// instructions via each benchmark's solo IPC, until horizon cycles.
func GenerateScriptDist(seed uint64, interarrival, jobCycles Dist, horizon uint64, soloIPC map[string]float64) (Script, error) {
	if err := interarrival.validate(); err != nil {
		return Script{}, err
	}
	if err := jobCycles.validate(); err != nil {
		return Script{}, err
	}
	r := rng.New(seed)
	s := Script{MeanJobCycles: jobCycles.Mean(), MeanInterarrival: interarrival.Mean()}
	now := 0.0
	for {
		now += interarrival.Draw(r)
		if uint64(now) >= horizon {
			break
		}
		bench := singleThreadedBenchmarks[r.Intn(len(singleThreadedBenchmarks))]
		ipc, ok := soloIPC[bench]
		if !ok || ipc <= 0 {
			return Script{}, fmt.Errorf("queueing: no solo IPC for %s", bench)
		}
		lenCycles := jobCycles.Draw(r)
		work := uint64(lenCycles * ipc)
		if work < 1000 {
			work = 1000
		}
		s.Arrivals = append(s.Arrivals, Arrival{At: uint64(now), Benchmark: bench, Work: work})
	}
	return s, nil
}

// CalibrateSolo measures the solo IPC of every generator benchmark once.
func CalibrateSolo(cfg arch.Config, warmup, measure uint64) (map[string]float64, error) {
	out := make(map[string]float64, len(singleThreadedBenchmarks))
	for i, name := range singleThreadedBenchmarks {
		spec := workload.MustLookup(name)
		job, err := workload.NewJob(spec, i, rng.Hash2(0xCA11B, uint64(i), 7))
		if err != nil {
			return nil, err
		}
		rates, err := core.SoloRates(cfg, []*workload.Job{job}, []uint64{rng.Hash2(0xCA11B, uint64(i), 7)}, warmup, measure)
		if err != nil {
			return nil, err
		}
		out[name] = rates[0]
	}
	return out, nil
}

// activeJob is one job resident in the system.
type activeJob struct {
	id      int
	job     *workload.Job
	arrival uint64
	work    uint64 // instructions remaining
	done    uint64 // instructions completed
}

// Result reports one system run.
type Result struct {
	Admitted         int
	Completed        int
	MeanResponse     float64 // cycles
	MeanInSystem     float64 // time-averaged number of jobs present
	Cycles           uint64
	TotalCommitted   uint64
	LeftoverInSystem int

	// Response-time tail percentiles over completed jobs, in cycles (zero
	// when nothing completed). Under overload the mean is dominated by the
	// unbounded backlog; the tail is what an open-system SLO sees.
	ResponseP50  float64
	ResponseP99  float64
	ResponseP999 float64

	// SOS-only statistics (zero for the naive scheduler): completed sample
	// phases, symbios-phase entries, the largest symbiosis interval the
	// exponential backoff reached, and resamples forced by phase-change
	// (drift) detection.
	SamplePhases   int
	SymbiosEntries int
	MaxBackoff     uint64
	DriftResamples int

	// ShrunkPhases counts sample phases that ran with a reduced candidate
	// count because the backlog exceeded SOSOptions.BacklogFactor x contexts.
	ShrunkPhases int
}

// runner hosts the shared mechanics of both schedulers.
type runner struct {
	cfg   arch.Config
	c     *cpu.Core
	slice uint64

	script  Script
	nextArr int

	jobs   map[int]*activeJob
	nextID int

	now uint64

	completed      int
	sumResponse    float64
	responses      []float64 // per-job response times, completion order
	areaInSystem   float64   // integral of N(t) dt
	totalCommitted uint64
}

func newRunner(cfg arch.Config, slice uint64, script Script) (*runner, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if slice == 0 {
		return nil, fmt.Errorf("queueing: zero timeslice")
	}
	return &runner{
		cfg:    cfg,
		c:      c,
		slice:  slice,
		script: script,
		jobs:   make(map[int]*activeJob),
	}, nil
}

// admit moves script arrivals with At <= now into the system. It reports
// how many arrived.
func (r *runner) admit() int {
	n := 0
	for r.nextArr < len(r.script.Arrivals) && r.script.Arrivals[r.nextArr].At <= r.now {
		a := r.script.Arrivals[r.nextArr]
		spec := workload.MustLookup(a.Benchmark)
		job, err := workload.NewJob(spec, r.nextID, rng.Hash2(0xA88, uint64(r.nextID), 3))
		if err != nil {
			panic(err) // registry benchmarks are always valid
		}
		r.jobs[r.nextID] = &activeJob{id: r.nextID, job: job, arrival: a.At, work: a.Work}
		r.nextID++
		r.nextArr++
		n++
	}
	return n
}

// runSlice coschedules the given job ids for one timeslice, swaps everyone
// out, credits progress, and completes finished jobs. It returns the number
// of departures.
func (r *runner) runSlice(ids []int) int {
	r.areaInSystem += float64(len(r.jobs)) * float64(r.slice)

	n := 0
	for _, id := range ids {
		j := r.jobs[id]
		r.c.Attach(n, j.job.Source(0), j.job.Progress[0], j.job.Gate(), 0)
		n++
	}
	r.c.Run(r.slice)
	r.now = r.c.Cycle()

	departures := 0
	ctx := 0
	for _, id := range ids {
		j := r.jobs[id]
		resume, committed := r.c.Detach(ctx)
		ctx++
		j.job.Progress[0] = resume
		j.done += committed
		r.totalCommitted += committed
		if j.done >= j.work {
			resp := float64(r.now - j.arrival)
			r.sumResponse += resp
			r.responses = append(r.responses, resp)
			r.completed++
			delete(r.jobs, id)
			departures++
		}
	}
	return departures
}

// idleSlice advances time when no jobs are present.
func (r *runner) idleSlice() {
	r.c.Run(r.slice)
	r.now = r.c.Cycle()
}

// result finalizes the run report.
func (r *runner) result() Result {
	res := Result{
		Admitted:         r.nextArr,
		Completed:        r.completed,
		Cycles:           r.now,
		TotalCommitted:   r.totalCommitted,
		LeftoverInSystem: len(r.jobs),
	}
	if r.completed > 0 {
		res.MeanResponse = r.sumResponse / float64(r.completed)
		sorted := append([]float64(nil), r.responses...)
		sort.Float64s(sorted)
		res.ResponseP50 = percentile(sorted, 0.50)
		res.ResponseP99 = percentile(sorted, 0.99)
		res.ResponseP999 = percentile(sorted, 0.999)
	}
	if r.now > 0 {
		res.MeanInSystem = r.areaInSystem / float64(r.now)
	}
	return res
}

// percentile returns the p-quantile of an ascending-sorted slice using the
// nearest-rank method (deterministic, no interpolation).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// sortedIDs returns the active job ids in arrival (id) order.
func (r *runner) sortedIDs() []int {
	ids := make([]int, 0, len(r.jobs))
	for id := range r.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RunNaive executes the control-group scheduler: jobs are coscheduled in
// tuples equal to the SMT level, in the order they arrived, round-robin,
// for horizon cycles.
func RunNaive(cfg arch.Config, slice uint64, script Script, horizon uint64) (Result, error) {
	r, err := newRunner(cfg, slice, script)
	if err != nil {
		return Result{}, err
	}
	var rr []int // round-robin queue of job ids
	for r.now < horizon {
		if n := r.admit(); n > 0 {
			rr = appendNew(rr, r.jobs, n)
		}
		if len(rr) == 0 {
			r.idleSlice()
			continue
		}
		y := cfg.Contexts
		if y > len(rr) {
			y = len(rr)
		}
		running := append([]int(nil), rr[:y]...)
		rr = append(rr[y:], running...)
		r.runSlice(running)
		rr = dropDead(rr, r.jobs)
	}
	return r.result(), nil
}

// appendNew appends ids of the n most recently admitted jobs (the highest
// ids) in order.
func appendNew(rr []int, jobs map[int]*activeJob, n int) []int {
	ids := make([]int, 0, n)
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// take the n largest, in ascending order
	ids = ids[len(ids)-n:]
	return append(rr, ids...)
}

// dropDead removes completed jobs from the round-robin queue.
func dropDead(rr []int, jobs map[int]*activeJob) []int {
	out := rr[:0]
	for _, id := range rr {
		if _, ok := jobs[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// SOSOptions tunes the SOS queueing scheduler.
type SOSOptions struct {
	// Samples is the number of random schedules tried per sample phase.
	Samples int
	// Predictor picks the symbios schedule.
	Predictor core.Predictor
	// SymbiosInterval is the default symbiosis duration in cycles before a
	// timer-triggered resample (the paper uses the arrival interval).
	SymbiosInterval uint64
	// DriftThreshold, when positive, enables phase-change detection: if the
	// symbios-phase IPC deviates from the sample-phase prediction by more
	// than this fraction for DriftWindow consecutive timeslices, the
	// scheduler resamples immediately ("if the jobmix is observed to be
	// changing rapidly, sampling frequency goes up").
	DriftThreshold float64
	// DriftWindow is the consecutive-slice requirement (default 3).
	DriftWindow int
	// BacklogFactor, when positive, enables the arrivals-aware variant: a
	// sample phase that starts while more than BacklogFactor x contexts jobs
	// are resident tries only BacklogSamples candidates instead of Samples.
	// Under backlog the sample phase is pure overhead against the draining
	// rate, so the scheduler trades prediction quality for throughput.
	BacklogFactor float64
	// BacklogSamples is the shrunken sample count (default 2, min 1).
	BacklogSamples int
	// Seed drives schedule sampling.
	Seed uint64
}

// DefaultSOSOptions mirrors the paper's setup for an arrival script.
func DefaultSOSOptions(script Script) SOSOptions {
	return SOSOptions{
		Samples:         6,
		Predictor:       core.PredScore,
		SymbiosInterval: uint64(script.MeanInterarrival),
		Seed:            0x505,
	}
}

// RunSOS executes the SOS scheduler on the same script. Three events
// trigger a new sample phase: a job arrival, a job departure, or the
// expiration of the symbiosis timer; if a timer-triggered resample confirms
// the previous prediction, the symbiosis interval doubles (exponential
// backoff), reverting to the default on any jobmix change.
func RunSOS(cfg arch.Config, slice uint64, script Script, horizon uint64, opt SOSOptions) (Result, error) {
	r, err := newRunner(cfg, slice, script)
	if err != nil {
		return Result{}, err
	}
	if opt.Samples < 1 {
		return Result{}, fmt.Errorf("queueing: Samples must be >= 1")
	}
	rs := rng.New(opt.Seed)

	type phase int
	const (
		phSample phase = iota
		phSymbios
	)

	driftWindow := opt.DriftWindow
	if driftWindow <= 0 {
		driftWindow = 3
	}

	var (
		ph             = phSample
		samplePhases   int
		symbiosEntries int
		maxBackoff     uint64
		driftResamples int
		shrunkPhases   int
		driftStreak    int
		chosenIPC      float64

		cands         []schedule.Schedule // candidate schedules this sample phase
		candIdx       int
		samples       []core.Sample
		sliceIPCs     []float64
		rotLeft       int // slices left in current candidate's rotation
		chosen        schedule.Schedule
		prevKey       string // canonical key of previous prediction
		symbiosLeft   uint64
		backoff       = opt.SymbiosInterval
		rotStart      counters.Set
		lastSnap      counters.Set
		running       []int
		queue         []int
		rotationReset = true
	)

	startSample := func() {
		ph = phSample
		cands = nil
		samples = nil
		candIdx = 0
		rotationReset = true
	}

	// scheduleOrder maps a schedule's task indices onto current job ids.
	ids := func() []int { return r.sortedIDs() }

	setupRotation := func(s schedule.Schedule) {
		all := ids()
		running = running[:0]
		queue = queue[:0]
		for i, ti := range s.Order {
			if i < s.Y {
				running = append(running, all[ti])
			} else {
				queue = append(queue, all[ti])
			}
		}
	}

	for r.now < horizon {
		arrived := r.admit()
		x := len(r.jobs)
		y := cfg.Contexts

		if arrived > 0 {
			// "It is always worthwhile resampling when a new job comes in."
			startSample()
			backoff = opt.SymbiosInterval
		}

		if x == 0 {
			r.idleSlice()
			continue
		}
		if x <= y {
			// Everyone fits: no schedule choice to make.
			dep := r.runSlice(ids())
			if dep > 0 {
				startSample()
				backoff = opt.SymbiosInterval
			}
			continue
		}

		switch ph {
		case phSample:
			if rotationReset {
				if cands == nil {
					n := opt.Samples
					if opt.BacklogFactor > 0 && float64(x) > opt.BacklogFactor*float64(y) {
						n = opt.BacklogSamples
						if n <= 0 {
							n = 2
						}
						if n > opt.Samples {
							n = opt.Samples
						}
						shrunkPhases++
					}
					cands = schedule.Sample(rs, x, y, y, n)
					candIdx = 0
					samples = samples[:0]
				}
				if candIdx >= len(cands) {
					// All candidates measured: choose and enter symbios.
					idx := core.Pick(samples, opt.Predictor)
					chosen = samples[idx].Sched
					key := chosen.Canonical()
					if key == prevKey {
						backoff *= 2
					} else {
						backoff = opt.SymbiosInterval
					}
					prevKey = key
					symbiosLeft = backoff
					ph = phSymbios
					samplePhases++
					symbiosEntries++
					if backoff > maxBackoff {
						maxBackoff = backoff
					}
					chosenIPC = samples[idx].IPC
					driftStreak = 0
					lastSnap = r.c.Snapshot()
					setupRotation(chosen)
					continue
				}
				setupRotation(cands[candIdx])
				rotLeft = cands[candIdx].CycleSlices()
				sliceIPCs = sliceIPCs[:0]
				rotStart = r.c.Snapshot()
				lastSnap = rotStart
				rotationReset = false
			}
			dep := r.runSliceRotate(&running, &queue)
			snap := r.c.Snapshot()
			sliceIPCs = append(sliceIPCs, snap.Sub(lastSnap).IPC())
			lastSnap = snap
			rotLeft--
			if dep > 0 {
				startSample()
				backoff = opt.SymbiosInterval
				continue
			}
			if rotLeft == 0 {
				res := core.RunResult{
					Cycles:    snap.Cycles - rotStart.Cycles,
					Counters:  snap.Sub(rotStart),
					SliceIPCs: append([]float64(nil), sliceIPCs...),
				}
				samples = append(samples, core.NewSample(cands[candIdx], res))
				candIdx++
				rotationReset = true
			}

		case phSymbios:
			dep := r.runSliceRotate(&running, &queue)
			snap := r.c.Snapshot()
			sliceIPC := snap.Sub(lastSnap).IPC()
			lastSnap = snap
			if dep > 0 {
				startSample()
				backoff = opt.SymbiosInterval
				continue
			}
			if opt.DriftThreshold > 0 && chosenIPC > 0 {
				rel := sliceIPC/chosenIPC - 1
				if rel < 0 {
					rel = -rel
				}
				if rel > opt.DriftThreshold {
					driftStreak++
				} else {
					driftStreak = 0
				}
				if driftStreak >= driftWindow {
					driftResamples++
					startSample()
					backoff = opt.SymbiosInterval
					continue
				}
			}
			if symbiosLeft <= r.slice {
				startSample()
			} else {
				symbiosLeft -= r.slice
			}
		}
	}
	res := r.result()
	res.SamplePhases = samplePhases
	res.SymbiosEntries = symbiosEntries
	res.MaxBackoff = maxBackoff
	res.DriftResamples = driftResamples
	res.ShrunkPhases = shrunkPhases
	return res, nil
}

// runSliceRotate runs the current running set for one slice, then rotates
// it against the queue (swap-all, FIFO). Departed jobs are pruned from both
// structures. It returns the number of departures.
func (r *runner) runSliceRotate(running, queue *[]int) int {
	dep := r.runSlice(*running)
	// Rotate: the whole running set retires to the queue tail; refill from
	// the queue head.
	*queue = append(*queue, *running...)
	*queue = dropDead(*queue, r.jobs)
	n := r.cfg.Contexts
	if n > len(*queue) {
		n = len(*queue)
	}
	*running = append((*running)[:0], (*queue)[:n]...)
	*queue = (*queue)[n:]
	return dep
}
