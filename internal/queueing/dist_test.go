package queueing

import (
	"math"
	"reflect"
	"testing"

	"symbios/internal/arch"
	"symbios/internal/parallel"
	"symbios/internal/rng"
)

// withWorkers runs fn under a fixed global worker count, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.SetDefaultWorkers(n)
	defer parallel.SetDefaultWorkers(prev)
	fn()
}

// testDists returns the two generator families the open-system harness
// sweeps, matched to the same means.
func testDists(inter, length float64) map[string][2]Dist {
	return map[string][2]Dist{
		"poisson": {ExpDist(inter), ExpDist(length)},
		"pareto":  {BoundedParetoWithMean(1.5, 100, inter), BoundedParetoWithMean(1.1, 1000, length)},
	}
}

// TestBoundedParetoWithMean: the solved lo/hi hit the requested mean.
func TestBoundedParetoWithMean(t *testing.T) {
	for _, mean := range []float64{1000, 250_000} {
		d := BoundedParetoWithMean(1.2, 500, mean)
		if got := d.Mean(); math.Abs(got-mean)/mean > 1e-9 {
			t.Errorf("analytic mean %.2f, want %.2f", got, mean)
		}
		r := rng.New(99)
		sum := 0.0
		const n = 300_000
		for i := 0; i < n; i++ {
			sum += d.Draw(r)
		}
		if got := sum / n; math.Abs(got-mean)/mean > 0.10 {
			t.Errorf("empirical mean %.2f, want ~%.2f", got, mean)
		}
	}
}

// TestGenerateScriptDistErrors: invalid distributions are rejected, not
// panicked on.
func TestGenerateScriptDistErrors(t *testing.T) {
	bad := []Dist{
		{Kind: DistExp, ExpMean: 0},
		{Kind: DistBoundedPareto, Alpha: 0, Lo: 1, Hi: 2},
		{Kind: DistBoundedPareto, Alpha: 1, Lo: 2, Hi: 2},
		{Kind: DistKind(42)},
	}
	good := ExpDist(1000)
	for _, d := range bad {
		if _, err := GenerateScriptDist(1, d, good, 10_000, fakeSolo()); err == nil {
			t.Errorf("bad interarrival %+v accepted", d)
		}
		if _, err := GenerateScriptDist(1, good, d, 10_000, fakeSolo()); err == nil {
			t.Errorf("bad job size %+v accepted", d)
		}
	}
}

// TestScriptDistDeterminismAcrossWorkers: identical arrival scripts at
// workers 1 vs 8 for both the Poisson and the heavy-tailed generator. The
// generator is seed-driven and single-threaded, so the global worker count
// must be invisible to it.
func TestScriptDistDeterminismAcrossWorkers(t *testing.T) {
	for name, ds := range testDists(50_000, 400_000) {
		var s1, s8 Script
		var e1, e8 error
		withWorkers(t, 1, func() { s1, e1 = GenerateScriptDist(17, ds[0], ds[1], 50_000_000, fakeSolo()) })
		withWorkers(t, 8, func() { s8, e8 = GenerateScriptDist(17, ds[0], ds[1], 50_000_000, fakeSolo()) })
		if e1 != nil || e8 != nil {
			t.Fatalf("%s: %v / %v", name, e1, e8)
		}
		if len(s1.Arrivals) == 0 {
			t.Fatalf("%s: empty script", name)
		}
		if !reflect.DeepEqual(s1, s8) {
			t.Errorf("%s: scripts differ between workers=1 and workers=8", name)
		}
	}
}

// TestResponseDistributionDeterminismAcrossWorkers: both schedulers produce
// identical response-time distributions (mean and tail percentiles) across
// repeated runs and across workers 1 vs 8, for both generators.
func TestResponseDistributionDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	solo, err := CalibrateSolo(cfg, 300_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3_000_000
	for name, ds := range testDists(150_000, 300_000) {
		script, err := GenerateScriptDist(23, ds[0], ds[1], horizon, solo)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultSOSOptions(script)
		opt.Samples = 3
		runBoth := func() (Result, Result) {
			nv, err := RunNaive(cfg, 50_000, script, horizon)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := RunSOS(cfg, 50_000, script, horizon, opt)
			if err != nil {
				t.Fatal(err)
			}
			return nv, ss
		}
		var nv1, ss1, nv8, ss8 Result
		withWorkers(t, 1, func() { nv1, ss1 = runBoth() })
		withWorkers(t, 8, func() { nv8, ss8 = runBoth() })
		if nv1 != nv8 {
			t.Errorf("%s: naive results differ across workers:\n%+v\nvs\n%+v", name, nv1, nv8)
		}
		if ss1 != ss8 {
			t.Errorf("%s: SOS results differ across workers:\n%+v\nvs\n%+v", name, ss1, ss8)
		}
		if nv1.Completed > 0 {
			if nv1.ResponseP50 <= 0 || nv1.ResponseP99 < nv1.ResponseP50 || nv1.ResponseP999 < nv1.ResponseP99 {
				t.Errorf("%s: percentiles not monotone: %+v", name, nv1)
			}
		}
	}
}

// TestBacklogAwareSampling: with a low backlog threshold the SOS variant
// shrinks sample phases, stays deterministic, and conserves jobs.
func TestBacklogAwareSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	cfg := arch.Default21264(2)
	solo, err := CalibrateSolo(cfg, 300_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3_000_000
	// Overloaded: arrivals much faster than the service rate.
	script, err := GenerateScript(31, 60_000, 400_000, horizon, solo)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultSOSOptions(script)
	opt.Samples = 4
	opt.BacklogFactor = 1.5
	opt.BacklogSamples = 2
	a, err := RunSOS(cfg, 50_000, script, horizon, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShrunkPhases == 0 {
		t.Error("no shrunken sample phases under overload")
	}
	if a.Completed+a.LeftoverInSystem != a.Admitted {
		t.Errorf("conservation: %d + %d != %d", a.Completed, a.LeftoverInSystem, a.Admitted)
	}
	b, err := RunSOS(cfg, 50_000, script, horizon, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("backlog-aware SOS diverged: %+v vs %+v", a, b)
	}
}
