package trace_test

import (
	"fmt"

	"symbios/internal/trace"
)

// A stream is a pure function of (seed, sequence number): the same
// instruction comes back no matter when or how often it is asked for,
// which is what lets a timesliced job replay exactly.
func ExampleStream_At() {
	p := trace.Params{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.10,
		FPFrac: 0.50, DepShort: 0.2, MaxDep: 16,
		WorkingSet: 64 << 10, SeqFrac: 0.5, SeqStride: 8,
		BranchSites: 16, CodeBlocks: 64, BlockLen: 8,
	}
	s, err := trace.NewStream(p, 42, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	a := s.At(1000)
	b := s.At(1000) // replay: identical
	fmt.Println(a == b)
	fmt.Println(a.Seq)
	// Output:
	// true
	// 1000
}
