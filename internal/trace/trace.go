// Package trace synthesizes the dynamic instruction streams that drive the
// SMT simulator.
//
// The paper drives SMTSIM with SPEC95 and NAS Parallel Benchmark binaries.
// Those binaries (and an Alpha ISA front end) are unavailable here, so each
// benchmark is replaced by a parameterized synthetic stream whose resource
// profile — instruction mix, natural ILP, memory footprint and locality,
// branch predictability, code footprint — is set to mirror the published
// characterization of the benchmark it stands in for (see
// internal/workload). Symbiosis and anti-symbiosis between coscheduled jobs
// arise from these profiles contending for the shared pipeline resources,
// which is the phenomenon under study; the actual computation performed by
// the instructions is irrelevant to the scheduling experiments.
//
// The i-th instruction of a stream is a pure function of (stream seed, i).
// Execution can therefore be sliced across timeslices arbitrarily and a job
// always replays identically, which is exactly the interval semantics the
// weighted speedup metric requires ("an interval starts ... at a particular
// point in the execution of each job").
package trace

import (
	"fmt"

	"symbios/internal/rng"
)

// Op enumerates the instruction classes the pipeline distinguishes.
type Op uint8

// Instruction classes. Loads and stores occupy load/store units and access
// the data cache; branches occupy an integer ALU and consult the shared
// branch predictor; the rest occupy integer ALUs or floating-point units.
const (
	IALU Op = iota
	IMUL
	FADD
	FMUL
	FDIV
	LOAD
	STORE
	BRANCH
	SYNC // barrier marker emitted by multithreaded jobs (see workload)
	numOps
)

// String returns the mnemonic for the op class.
func (o Op) String() string {
	switch o {
	case IALU:
		return "IALU"
	case IMUL:
		return "IMUL"
	case FADD:
		return "FADD"
	case FMUL:
		return "FMUL"
	case FDIV:
		return "FDIV"
	case LOAD:
		return "LOAD"
	case STORE:
		return "STORE"
	case BRANCH:
		return "BRANCH"
	case SYNC:
		return "SYNC"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsFP reports whether the op executes on a floating-point unit.
func (o Op) IsFP() bool { return o == FADD || o == FMUL || o == FDIV }

// IsMem reports whether the op accesses the data cache.
func (o Op) IsMem() bool { return o == LOAD || o == STORE }

// Inst is one dynamic instruction.
type Inst struct {
	Op Op
	// Seq is the position in the thread's dynamic stream.
	Seq uint64
	// Dep1 and Dep2 are distances back to producer instructions in the same
	// stream (0 means no dependence). The consumer cannot issue before its
	// producers complete; this is how the stream's natural ILP is encoded.
	Dep1, Dep2 uint32
	// Addr is the virtual byte address for LOAD/STORE.
	Addr uint64
	// PC is the instruction's code address (drives icache and the branch
	// predictor index).
	PC uint64
	// Taken is the architectural outcome for BRANCH.
	Taken bool
}

// Params defines a synthetic stream's statistical profile. All *Frac fields
// are probabilities in [0,1]; fractions of the total instruction stream for
// LoadFrac/StoreFrac/BranchFrac, and of the remaining compute slice for
// FPFrac.
type Params struct {
	// Instruction mix.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // of non-memory, non-branch instructions
	FPDivFrac  float64 // of FP instructions
	IMulFrac   float64 // of integer compute instructions

	// Dependencies: with probability DepShort a producer is 1–3
	// instructions back (serial code, low ILP); otherwise uniform in
	// [1, MaxDep] (loop-parallel code, high ILP). SecondDepFrac adds a
	// second source dependence.
	DepShort      float64
	MaxDep        int
	SecondDepFrac float64

	// Data memory behaviour.
	WorkingSet uint64  // total data footprint in bytes
	HotSet     uint64  // hot region size in bytes
	HotFrac    float64 // accesses that hit the hot region
	SeqFrac    float64 // accesses that stream sequentially
	SeqStride  uint64  // bytes between consecutive streaming accesses

	// Control behaviour.
	BranchSites   int     // static branch sites (PHT pressure)
	BranchEntropy float64 // probability an outcome is data-dependent noise

	// Code behaviour.
	CodeBlocks  int // static basic blocks (icache pressure)
	BlockLen    int // dynamic instructions per basic-block visit
	JumpFarFrac float64
}

// Validate reports an error if the profile is not generatable.
func (p Params) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac
	switch {
	case sum >= 1:
		return fmt.Errorf("trace: LoadFrac+StoreFrac+BranchFrac = %.3f must be < 1", sum)
	case p.MaxDep < 1:
		return fmt.Errorf("trace: MaxDep must be >= 1")
	case p.WorkingSet == 0:
		return fmt.Errorf("trace: WorkingSet must be > 0")
	case p.HotSet > p.WorkingSet:
		return fmt.Errorf("trace: HotSet larger than WorkingSet")
	case p.BranchSites < 1:
		return fmt.Errorf("trace: BranchSites must be >= 1")
	case p.CodeBlocks < 1 || p.BlockLen < 1:
		return fmt.Errorf("trace: CodeBlocks and BlockLen must be >= 1")
	case p.SeqStride == 0 && p.SeqFrac > 0:
		return fmt.Errorf("trace: SeqStride must be > 0 when SeqFrac > 0")
	}
	return nil
}

// Stream generates instructions for one thread. At is a pure function of
// the construction arguments and the sequence number; the struct carries
// only a memo cache and precomputed constants, so replay is exact.
//
// At runs for every simulated fetch, so its divisions by per-stream
// constants use precomputed exact reciprocals (rng.Divisor) and its
// probability draws use precomputed integer thresholds (rng.Threshold); both
// are proven bit-identical to the plain / % and float-compare forms they
// replace.
type Stream struct {
	params   Params
	seed     uint64
	dataBase uint64
	codeBase uint64
	// accessStep approximates the instruction distance between successive
	// memory accesses, so streaming addresses advance one SeqStride per
	// access rather than per instruction.
	accessStep uint64

	// Exact reciprocals for the per-stream-constant divisors.
	divWS       rng.Divisor // params.WorkingSet
	divHot      rng.Divisor // params.HotSet (unused when 0)
	divMaxDep   rng.Divisor // params.MaxDep
	divSites    rng.Divisor // params.BranchSites
	divBlocks   rng.Divisor // params.CodeBlocks
	divBlockLen rng.Divisor // params.BlockLen
	divStep     rng.Divisor // accessStep

	// Integer draw bounds for the profile probabilities (see rng.Threshold).
	// Cumulative thresholds are built from the same float sums the direct
	// comparisons used, preserving their rounding.
	thrLoad      uint64 // LoadFrac
	thrStore     uint64 // LoadFrac+StoreFrac
	thrBranch    uint64 // LoadFrac+StoreFrac+BranchFrac
	thrFP        uint64 // FPFrac
	thrFDiv      uint64 // FPDivFrac
	thrFMul      uint64 // FPDivFrac+(1-FPDivFrac)/2
	thrIMul      uint64 // IMulFrac
	thrDepShort  uint64 // DepShort
	thrSecondDep uint64 // SecondDepFrac
	thrSeq       uint64 // SeqFrac
	thrHot       uint64 // SeqFrac+HotFrac
	thrEntropy   uint64 // BranchEntropy
	thrJumpFar   uint64 // JumpFarFrac

	// Single-entry memo for the basic-block lookup, which At performs for
	// every instruction but which only changes once per block visit. Purely
	// an evaluation cache: results are identical with or without it.
	memoVisit uint64
	memoBlock uint64
	memoValid bool
}

// NewStream builds a generator for one thread of one job. seed distinguishes
// jobs (and threads within a job); space distinguishes address spaces — the
// data and code bases are derived from it so distinct jobs occupy distinct
// regions while threads of one job may share a space.
func NewStream(p Params, seed, space uint64) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	step := uint64(1)
	if mf := p.LoadFrac + p.StoreFrac; mf > 0 {
		step = uint64(1/mf + 0.5)
		if step == 0 {
			step = 1
		}
	}
	// Separate 1 TB regions per address space keep job footprints disjoint
	// without allocation bookkeeping. The page-aligned jitter keeps regions
	// from being congruent modulo the cache and predictor table sizes —
	// without it every job's footprint would collide perfectly with every
	// other's, which real virtual-to-physical mappings never do.
	jitter := (rng.Hash(space, 0x0ff5e7) % (1 << 24)) &^ 8191
	s := &Stream{
		params:     p,
		seed:       seed,
		dataBase:   (space+1)<<40 + jitter,
		codeBase:   (space+1)<<40 | 1<<39 + jitter>>1&^8191,
		accessStep: step,

		divWS:       rng.NewDivisor(p.WorkingSet),
		divHot:      rng.NewDivisor(max(p.HotSet, 1)),
		divMaxDep:   rng.NewDivisor(uint64(p.MaxDep)),
		divSites:    rng.NewDivisor(uint64(p.BranchSites)),
		divBlocks:   rng.NewDivisor(uint64(p.CodeBlocks)),
		divBlockLen: rng.NewDivisor(uint64(p.BlockLen)),
		divStep:     rng.NewDivisor(step),

		thrLoad:      rng.Threshold(p.LoadFrac),
		thrStore:     rng.Threshold(p.LoadFrac + p.StoreFrac),
		thrBranch:    rng.Threshold(p.LoadFrac + p.StoreFrac + p.BranchFrac),
		thrFP:        rng.Threshold(p.FPFrac),
		thrFDiv:      rng.Threshold(p.FPDivFrac),
		thrFMul:      rng.Threshold(p.FPDivFrac + (1-p.FPDivFrac)/2),
		thrIMul:      rng.Threshold(p.IMulFrac),
		thrDepShort:  rng.Threshold(p.DepShort),
		thrSecondDep: rng.Threshold(p.SecondDepFrac),
		thrSeq:       rng.Threshold(p.SeqFrac),
		thrHot:       rng.Threshold(p.SeqFrac + p.HotFrac),
		thrEntropy:   rng.Threshold(p.BranchEntropy),
		thrJumpFar:   rng.Threshold(p.JumpFarFrac),
	}
	return s, nil
}

// Params returns the profile the stream was built with.
func (s *Stream) Params() Params { return s.params }

// At returns instruction seq of the stream.
func (s *Stream) At(seq uint64) Inst {
	// One counter-based draw per instruction; cheap derived draws for each
	// independent decision.
	h := rng.Hash2(s.seed, seq, 0)
	r0 := h
	r1 := rng.Hash(h, 1)
	r2 := rng.Hash(h, 2)

	in := Inst{Seq: seq, PC: s.pcAt(seq)}

	u := r0 >> 11
	switch {
	case u < s.thrLoad:
		in.Op = LOAD
		in.Addr = s.addrAt(seq, r1)
	case u < s.thrStore:
		in.Op = STORE
		in.Addr = s.addrAt(seq, r1)
	case u < s.thrBranch:
		in.Op = BRANCH
		in.Taken = s.outcomeAt(in.PC, r1)
	default:
		if r1>>11 < s.thrFP {
			w := rng.Hash(h, 3) >> 11
			switch {
			case w < s.thrFDiv:
				in.Op = FDIV
			case w < s.thrFMul:
				in.Op = FMUL
			default:
				in.Op = FADD
			}
		} else if rng.Hash(h, 3)>>11 < s.thrIMul {
			in.Op = IMUL
		} else {
			in.Op = IALU
		}
	}

	in.Dep1 = s.depAt(seq, r2)
	if s.thrSecondDep > 0 && rng.Hash(h, 4)>>11 < s.thrSecondDep {
		in.Dep2 = s.depAt(seq, rng.Hash(h, 5))
	}
	return in
}

// depAt draws a producer distance in [1, min(seq, MaxDep)]; 0 if seq == 0.
func (s *Stream) depAt(seq, r uint64) uint32 {
	if seq == 0 {
		return 0
	}
	maxd := uint64(s.params.MaxDep)
	useDiv := seq >= maxd
	if seq < maxd {
		maxd = seq
	}
	if r>>11 < s.thrDepShort {
		d := 1 + r%3
		if d > maxd {
			d = maxd
		}
		return uint32(d)
	}
	if useDiv {
		return uint32(1 + s.divMaxDep.Mod(r>>16))
	}
	return uint32(1 + (r>>16)%maxd) // startup only: seq < MaxDep
}

// addrAt draws a data address: streaming, hot-region, or uniform over the
// working set, all aligned to 8 bytes within this job's private region.
func (s *Stream) addrAt(seq, r uint64) uint64 {
	u := r >> 11
	var off uint64
	switch {
	case u < s.thrSeq:
		off = s.divWS.Mod(s.divStep.Div(seq) * s.params.SeqStride)
	case u < s.thrHot && s.params.HotSet > 0:
		off = s.divHot.Mod(r >> 8)
	default:
		off = s.divWS.Mod(r >> 8)
	}
	return s.dataBase + (off &^ 7)
}

// outcomeAt draws a branch outcome for the branch at pc. Each static branch
// site — derived from the PC, so a pattern predictor indexed by PC sees a
// consistent direction — has a biased direction; with probability
// BranchEntropy the outcome is data-dependent noise instead. The predictor
// learns the bias but not the noise, so the realized mispredict rate tracks
// BranchEntropy plus table-interference effects.
func (s *Stream) outcomeAt(pc, r uint64) bool {
	if r>>11 < s.thrEntropy {
		return r&1 == 0
	}
	site := s.divSites.Mod(pc >> 2)
	bias := rng.Hash2(s.seed, site, 0xb1a5)
	return bias&1 == 0
}

// pcAt maps a dynamic instruction to a code address. Execution walks basic
// blocks; most transitions are near (sequential code), a fraction jump far
// (calls), producing an icache footprint proportional to CodeBlocks.
func (s *Stream) pcAt(seq uint64) uint64 {
	blockLen := uint64(s.params.BlockLen)
	blockVisit := s.divBlockLen.Div(seq)
	within := seq - blockVisit*blockLen
	if !s.memoValid || s.memoVisit != blockVisit {
		h := rng.Hash2(s.seed, blockVisit, 0xc0de)
		var block uint64
		if h>>11 < s.thrJumpFar {
			block = s.divBlocks.Mod(h >> 8)
		} else {
			// Walk nearby blocks to model loop bodies and straight-line code.
			block = s.divBlocks.Mod(blockVisit + (h>>8)%4)
		}
		s.memoVisit, s.memoBlock, s.memoValid = blockVisit, block, true
	}
	return s.codeBase + s.memoBlock*blockLen*4 + within*4
}
