package trace

import (
	"math"
	"testing"
	"testing/quick"
)

// testParams is a representative mixed profile.
func testParams() Params {
	return Params{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.10,
		FPFrac: 0.50, FPDivFrac: 0.10, IMulFrac: 0.05,
		DepShort: 0.30, MaxDep: 24, SecondDepFrac: 0.30,
		WorkingSet: 1 << 20, HotSet: 32 << 10, HotFrac: 0.40,
		SeqFrac: 0.30, SeqStride: 8,
		BranchSites: 64, BranchEntropy: 0.05,
		CodeBlocks: 256, BlockLen: 8, JumpFarFrac: 0.10,
	}
}

func mustStream(t *testing.T, p Params, seed, space uint64) *Stream {
	t.Helper()
	s, err := NewStream(p, seed, space)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAtPure: At is a pure function of seq — repeated and out-of-order
// calls return identical instructions. This property is what makes
// timeslice-independent replay (and therefore the weighted speedup
// interval semantics) sound.
func TestAtPure(t *testing.T) {
	s := mustStream(t, testParams(), 42, 0)
	f := func(seq uint32) bool {
		a := s.At(uint64(seq))
		// Interleave an unrelated access to disturb any memoization.
		_ = s.At(uint64(seq) / 2)
		b := s.At(uint64(seq))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTwoStreamsIndependent: different seeds give different streams;
// identical construction gives identical streams.
func TestTwoStreamsIndependent(t *testing.T) {
	a := mustStream(t, testParams(), 1, 0)
	b := mustStream(t, testParams(), 1, 0)
	c := mustStream(t, testParams(), 2, 0)
	same, diff := 0, 0
	for i := uint64(0); i < 1000; i++ {
		if a.At(i) == b.At(i) {
			same++
		}
		if a.At(i).Op != c.At(i).Op || a.At(i).Dep1 != c.At(i).Dep1 {
			diff++
		}
	}
	if same != 1000 {
		t.Errorf("identical streams diverge: %d/1000 equal", same)
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

// TestInstructionMix checks the realized op-class frequencies against the
// profile.
func TestInstructionMix(t *testing.T) {
	p := testParams()
	s := mustStream(t, p, 7, 1)
	const n = 200_000
	var loads, stores, branches, fp, divs int
	for i := uint64(0); i < n; i++ {
		in := s.At(i)
		switch {
		case in.Op == LOAD:
			loads++
		case in.Op == STORE:
			stores++
		case in.Op == BRANCH:
			branches++
		case in.Op.IsFP():
			fp++
			if in.Op == FDIV {
				divs++
			}
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"loads", float64(loads) / n, p.LoadFrac},
		{"stores", float64(stores) / n, p.StoreFrac},
		{"branches", float64(branches) / n, p.BranchFrac},
		{"fp", float64(fp) / n, (1 - p.LoadFrac - p.StoreFrac - p.BranchFrac) * p.FPFrac},
		{"fdiv of fp", float64(divs) / float64(fp), p.FPDivFrac},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.02 {
			t.Errorf("%s fraction %.3f, want ~%.3f", c.name, c.got, c.want)
		}
	}
}

// TestDependencyBounds: producer distances stay within [1, min(seq,
// MaxDep)] and absent deps are zero.
func TestDependencyBounds(t *testing.T) {
	p := testParams()
	s := mustStream(t, p, 11, 2)
	for i := uint64(0); i < 50_000; i++ {
		in := s.At(i)
		for _, d := range []uint32{in.Dep1, in.Dep2} {
			if d == 0 {
				continue
			}
			if uint64(d) > i {
				t.Fatalf("seq %d: dep distance %d reaches before stream start", i, d)
			}
			if int(d) > p.MaxDep {
				t.Fatalf("seq %d: dep distance %d exceeds MaxDep %d", i, d, p.MaxDep)
			}
		}
	}
	if s.At(0).Dep1 != 0 || s.At(0).Dep2 != 0 {
		t.Error("first instruction has a producer")
	}
}

// TestAddressRegions: data addresses stay inside the stream's private
// region and within the working set; distinct spaces are disjoint.
func TestAddressRegions(t *testing.T) {
	p := testParams()
	a := mustStream(t, p, 5, 3)
	b := mustStream(t, p, 5, 4)
	loA, hiA := ^uint64(0), uint64(0)
	for i := uint64(0); i < 50_000; i++ {
		in := a.At(i)
		if !in.Op.IsMem() {
			continue
		}
		if in.Addr < loA {
			loA = in.Addr
		}
		if in.Addr > hiA {
			hiA = in.Addr
		}
		if in.Addr%8 != 0 {
			t.Fatalf("unaligned address %#x", in.Addr)
		}
	}
	if hiA-loA >= p.WorkingSet {
		t.Errorf("address span %d exceeds working set %d", hiA-loA, p.WorkingSet)
	}
	for i := uint64(0); i < 10_000; i++ {
		in := b.At(i)
		if in.Op.IsMem() && in.Addr >= loA && in.Addr <= hiA {
			t.Fatalf("space 4 address %#x inside space 3 region [%#x,%#x]", in.Addr, loA, hiA)
		}
	}
}

// TestBranchBiasPerPC: with zero entropy, every dynamic branch at a given
// PC resolves in the same direction — the property the pattern predictor
// depends on.
func TestBranchBiasPerPC(t *testing.T) {
	p := testParams()
	p.BranchEntropy = 0
	s := mustStream(t, p, 9, 5)
	dir := map[uint64]bool{}
	branches := 0
	for i := uint64(0); i < 100_000; i++ {
		in := s.At(i)
		if in.Op != BRANCH {
			continue
		}
		branches++
		if prev, ok := dir[in.PC]; ok && prev != in.Taken {
			t.Fatalf("branch at PC %#x changed direction", in.PC)
		}
		dir[in.PC] = in.Taken
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
}

// TestCodeFootprint: PCs stay within CodeBlocks * BlockLen * 4 bytes of the
// code base.
func TestCodeFootprint(t *testing.T) {
	p := testParams()
	s := mustStream(t, p, 13, 6)
	span := uint64(p.CodeBlocks) * uint64(p.BlockLen) * 4
	lo, hi := ^uint64(0), uint64(0)
	for i := uint64(0); i < 50_000; i++ {
		pc := s.At(i).PC
		if pc < lo {
			lo = pc
		}
		if pc > hi {
			hi = pc
		}
	}
	if hi-lo >= span {
		t.Errorf("code span %d exceeds footprint %d", hi-lo, span)
	}
}

// TestValidateRejects exercises each profile validation rule.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"mix over 1", func(p *Params) { p.LoadFrac, p.StoreFrac, p.BranchFrac = 0.5, 0.4, 0.2 }},
		{"no maxdep", func(p *Params) { p.MaxDep = 0 }},
		{"no working set", func(p *Params) { p.WorkingSet = 0 }},
		{"hot > working", func(p *Params) { p.HotSet = p.WorkingSet * 2 }},
		{"no branch sites", func(p *Params) { p.BranchSites = 0 }},
		{"no code", func(p *Params) { p.CodeBlocks = 0 }},
		{"no stride", func(p *Params) { p.SeqStride = 0 }},
	}
	for _, tc := range cases {
		p := testParams()
		tc.mut(&p)
		if _, err := NewStream(p, 1, 0); err == nil {
			t.Errorf("%s: NewStream accepted an invalid profile", tc.name)
		}
	}
}

// TestStreamingLocality: with a fully sequential profile, successive memory
// accesses advance by about one stride per access.
func TestStreamingLocality(t *testing.T) {
	p := testParams()
	p.SeqFrac, p.HotFrac = 1, 0
	s := mustStream(t, p, 17, 7)
	var prev uint64
	var havePrev bool
	big := 0
	n := 0
	for i := uint64(0); i < 20_000; i++ {
		in := s.At(i)
		if !in.Op.IsMem() {
			continue
		}
		if havePrev && in.Addr >= prev {
			if in.Addr-prev > 64 {
				big++
			}
			n++
		}
		prev, havePrev = in.Addr, true
	}
	if n == 0 {
		t.Fatal("no consecutive accesses observed")
	}
	if frac := float64(big) / float64(n); frac > 0.05 {
		t.Errorf("%.1f%% of streaming accesses jump more than a cache line", 100*frac)
	}
}

// TestOpString covers the mnemonics.
func TestOpString(t *testing.T) {
	want := map[Op]string{
		IALU: "IALU", IMUL: "IMUL", FADD: "FADD", FMUL: "FMUL",
		FDIV: "FDIV", LOAD: "LOAD", STORE: "STORE", BRANCH: "BRANCH", SYNC: "SYNC",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d: got %q want %q", op, op.String(), name)
		}
	}
	if Op(200).String() == "" {
		t.Error("unknown op stringifies empty")
	}
}
