package rng

import (
	"math"
	"testing"
)

// TestDivisorExact cross-checks the reciprocal Div/Mod against the hardware
// divide over divisor shapes the trace generator uses (powers of two, small
// odds, large composites) and adversarial dividends (extremes, divisor
// multiples ±1, and a pseudorandom sweep).
func TestDivisorExact(t *testing.T) {
	divisors := []uint64{1, 2, 3, 4, 5, 7, 8, 10, 12, 16, 56, 100, 1 << 10, 1<<10 + 3,
		12 << 10, 96 << 10, 128 << 10, 512 << 10, 1<<32 - 1, 1<<32 + 1, 1<<40 + 7,
		math.MaxUint64, math.MaxUint64 - 1}
	for _, d := range divisors {
		v := NewDivisor(d)
		check := func(n uint64) {
			if got, want := v.Div(n), n/d; got != want {
				t.Fatalf("Div(%d, d=%d) = %d, want %d", n, d, got, want)
			}
			if got, want := v.Mod(n), n%d; got != want {
				t.Fatalf("Mod(%d, d=%d) = %d, want %d", n, d, got, want)
			}
		}
		check(0)
		check(1)
		check(d - 1)
		check(d)
		check(d + 1)
		check(math.MaxUint64)
		check(math.MaxUint64 - 1)
		for k := uint64(1); k < 100; k++ {
			m := d * k // wraparound is fine; still a valid test input
			check(m - 1)
			check(m)
			check(m + 1)
		}
		st := New(d ^ 0x9e3779b97f4a7c15)
		for i := 0; i < 20000; i++ {
			check(st.Uint64())
		}
	}
}

// TestThreshold verifies the integer draw bound agrees with the float
// comparison at every representable draw near the boundary, for a sweep of
// probabilities including the exact profile constants used by workloads.
func TestThreshold(t *testing.T) {
	probs := []float64{0, 1, 0.02, 0.03, 0.05, 0.1, 0.12, 0.15, 0.22, 0.25,
		0.3, 0.35, 0.45, 0.55, 0.65, 0.8, 0.82, 0.85, 1e-9, 1 - 1e-9, 0.5,
		0.02 + (1-0.02)/2, -0.5, 1.5, math.SmallestNonzeroFloat64}
	for _, p := range probs {
		thr := Threshold(p)
		// Check draws around the boundary and the extremes.
		var cands []uint64
		for d := int64(-2); d <= 2; d++ {
			c := int64(thr) + d
			if c >= 0 && c <= 1<<53 {
				cands = append(cands, uint64(c))
			}
		}
		cands = append(cands, 0, 1, 1<<53-1)
		for _, c := range cands {
			v := c << 11 // reconstruct a draw mapping to this mantissa
			got := v>>11 < thr
			want := Float01(v) < p
			if got != want {
				t.Fatalf("Threshold(%v)=%d: draw %d: int says %v, float says %v", p, thr, c, got, want)
			}
		}
	}
	// Dense random agreement sweep.
	st := New(42)
	for i := 0; i < 200000; i++ {
		v := st.Uint64()
		p := Float01(st.Uint64())
		if (v>>11 < Threshold(p)) != (Float01(v) < p) {
			t.Fatalf("disagreement at v=%d p=%v", v, p)
		}
	}
}
