package rng

import (
	"math"
	"math/bits"
)

// Divisor is a precomputed reciprocal for exact division and remainder by a
// runtime-constant divisor, replacing the hardware divide (~30+ cycles) with
// a few wide multiplies. The trace generator divides by per-stream constants
// (working-set sizes, block lengths, site counts) on every instruction, so
// these show up directly in end-to-end simulation throughput.
//
// The method is the 2N-bit fractional reciprocal of Lemire, Kaser and Kurz
// ("Faster remainder by direct computation", 2019) instantiated at N=64:
// with c = ⌊(2¹²⁸−1)/d⌋ + 1,
//
//	n/d = ⌊c·n / 2¹²⁸⌋  and  n%d = ⌊(c·n mod 2¹²⁸)·d / 2¹²⁸⌋
//
// exactly, for every n < 2⁶⁴ and 2 ≤ d < 2⁶⁴. Both identities are
// exhaustively cross-checked against the hardware divide in fastdiv_test.go.
type Divisor struct {
	d        uint64
	cHi, cLo uint64 // ⌈2¹²⁸/d⌉
}

// NewDivisor precomputes the reciprocal of d. d must be nonzero.
func NewDivisor(d uint64) Divisor {
	if d == 0 {
		panic("rng: zero divisor")
	}
	if d == 1 {
		// ⌈2¹²⁸/1⌉ does not fit; Div and Mod special-case it.
		return Divisor{d: 1}
	}
	// c = ⌊(2¹²⁸−1)/d⌋ + 1 via 128/64 long division.
	qHi := ^uint64(0) / d
	r1 := ^uint64(0) % d
	qLo, _ := bits.Div64(r1, ^uint64(0), d)
	cLo, carry := bits.Add64(qLo, 1, 0)
	return Divisor{d: d, cHi: qHi + carry, cLo: cLo}
}

// D returns the divisor value.
func (v Divisor) D() uint64 { return v.d }

// Div returns n / v.d.
func (v Divisor) Div(n uint64) uint64 {
	if v.cHi == 0 { // d == 1
		return n
	}
	ph, pl := bits.Mul64(v.cHi, n)
	lh, _ := bits.Mul64(v.cLo, n)
	_, carry := bits.Add64(pl, lh, 0)
	return ph + carry
}

// Mod returns n % v.d.
func (v Divisor) Mod(n uint64) uint64 {
	if v.cHi == 0 { // d == 1
		return 0
	}
	// frac = c·n mod 2¹²⁸
	fHi, fLo := bits.Mul64(v.cLo, n)
	fHi += v.cHi * n
	// ⌊frac·d / 2¹²⁸⌋
	ph, pl := bits.Mul64(fHi, v.d)
	lh, _ := bits.Mul64(fLo, v.d)
	_, carry := bits.Add64(pl, lh, 0)
	return ph + carry
}

// Threshold converts a probability p into an integer draw bound such that
//
//	Float01(v) < p  ⟺  v>>11 < Threshold(p)
//
// for every v. Float01(v) = float64(v>>11)·2⁻⁵³ where both the conversion
// (53-bit integer) and the scaling (power of two) are exact, so the float
// comparison is the real-number comparison v>>11 < p·2⁵³, which for
// integers is v>>11 < ⌈p·2⁵³⌉. Hot paths drawing against fixed
// probabilities precompute the bound once and compare integers.
func Threshold(p float64) uint64 {
	if !(p > 0) {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}
