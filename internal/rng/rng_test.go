package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestHashPure verifies that Hash is a pure function and that distinct
// counters give distinct values (no trivial collisions).
func TestHashPure(t *testing.T) {
	f := func(seed, counter uint64) bool {
		return Hash(seed, counter) == Hash(seed, counter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10_000; i++ {
		v := Hash(42, i)
		if seen[v] {
			t.Fatalf("collision at counter %d", i)
		}
		seen[v] = true
	}
}

// TestHash2Distinct checks Hash2 separates both counter dimensions.
func TestHash2Distinct(t *testing.T) {
	if Hash2(1, 2, 3) == Hash2(1, 3, 2) {
		t.Error("Hash2 symmetric in (a,b); dimensions collapse")
	}
	if Hash2(1, 2, 3) != Hash2(1, 2, 3) {
		t.Error("Hash2 not deterministic")
	}
}

// TestFloat01Range is a property test: Float01 maps into [0,1).
func TestFloat01Range(t *testing.T) {
	f := func(v uint64) bool {
		x := Float01(v)
		return x >= 0 && x < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStreamUniformity checks first and second moments of the uniform
// stream.
func TestStreamUniformity(t *testing.T) {
	s := New(7)
	const n = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Float64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %.4f, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance %.4f, want ~%.4f", variance, 1.0/12)
	}
}

// TestIntnBounds is a property test: Intn stays in [0,n).
func TestIntnBounds(t *testing.T) {
	s := New(3)
	f := func(n uint16) bool {
		if n == 0 {
			return true
		}
		v := s.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIntnPanics ensures invalid arguments are rejected loudly.
func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestIntnUniform checks the distribution over a small modulus.
func TestIntnUniform(t *testing.T) {
	s := New(11)
	counts := make([]int, 7)
	const n = 140_000
	for i := 0; i < n; i++ {
		counts[s.Intn(7)]++
	}
	want := n / 7
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("value %d: count %d, want ~%d", v, c, want)
		}
	}
}

// TestExpMean checks the exponential deviate's mean and positivity.
func TestExpMean(t *testing.T) {
	s := New(5)
	const mean = 250.0
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(mean)
		if x < 0 {
			t.Fatalf("negative deviate %f", x)
		}
		sum += x
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("mean %.2f, want ~%.2f", got, mean)
	}
}

// TestExpPanics ensures a non-positive mean is rejected.
func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

// TestBoundedParetoSupport checks every deviate stays inside [lo, hi] and
// that the empirical mean tracks the analytic BoundedParetoMean.
func TestBoundedParetoSupport(t *testing.T) {
	s := New(11)
	const alpha, lo, hi = 1.5, 100.0, 100_000.0
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.BoundedPareto(alpha, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("deviate %f outside [%f, %f]", x, lo, hi)
		}
		sum += x
	}
	want := BoundedParetoMean(alpha, lo, hi)
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean %.2f, want ~%.2f", got, want)
	}
}

// TestBoundedParetoMeanAlphaOne covers the logarithmic alpha==1 branch.
func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	s := New(12)
	const lo, hi = 10.0, 10_000.0
	const n = 400_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.BoundedPareto(1, lo, hi)
	}
	want := BoundedParetoMean(1, lo, hi)
	if got := sum / n; math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean %.2f, want ~%.2f", got, want)
	}
}

// TestBoundedParetoPanics ensures invalid shapes and supports are rejected.
func TestBoundedParetoPanics(t *testing.T) {
	cases := []struct{ alpha, lo, hi float64 }{
		{0, 1, 2}, {-1, 1, 2}, {1, 0, 2}, {1, 2, 2}, {1, 3, 2},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BoundedPareto(%v,%v,%v) did not panic", c.alpha, c.lo, c.hi)
				}
			}()
			New(1).BoundedPareto(c.alpha, c.lo, c.hi)
		}()
	}
}

// TestPermValid is a property test: Perm returns a permutation.
func TestPermValid(t *testing.T) {
	s := New(9)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestShuffleIsPermutation checks in-place shuffling preserves elements.
func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	xs := []int{10, 20, 30, 40, 50}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(xs)
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed contents: %v", xs)
	}
}

// TestStreamDeterminism: identical seeds give identical sequences; Fork
// gives a diverging child without disturbing the parent.
func TestStreamDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	parent := New(1)
	before := *parent
	child := parent.Fork(7)
	if *parent != before {
		t.Error("Fork mutated the parent")
	}
	if child.Uint64() == parent.Uint64() {
		t.Error("child repeats parent's sequence")
	}
}
