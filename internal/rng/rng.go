// Package rng provides deterministic pseudo-random number generation for the
// simulator and the experiment harness.
//
// Two generators are provided:
//
//   - Stream: a stateful splitmix64 sequence, used where a conventional
//     generator is natural (schedule sampling, arrival processes).
//   - Hash: a stateless, counter-based generator. Hash(seed, counter) is a
//     pure function, which lets the synthetic instruction streams be defined
//     as pure functions of (job seed, instruction sequence number). A job
//     therefore replays identically no matter how its execution is sliced
//     across timeslices — exactly the interval semantics the weighted
//     speedup metric requires.
//
// Everything in this repository derives its randomness from these two
// primitives, so an experiment is fully reproducible from its root seed.
package rng

import "math"

// golden is the splitmix64 increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// mix implements the splitmix64 output function (Stafford variant 13).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash returns a uniformly distributed 64-bit value that is a pure function
// of (seed, counter). Distinct (seed, counter) pairs produce independent
// values for all practical purposes.
func Hash(seed, counter uint64) uint64 {
	return mix(seed + golden*(counter+1))
}

// Hash2 mixes two counters with a seed, for streams indexed by a pair
// (for example, job and site).
func Hash2(seed, a, b uint64) uint64 {
	return mix(Hash(seed, a) + golden*(b+1))
}

// Float01 maps a 64-bit value to [0,1) using the top 53 bits.
func Float01(v uint64) float64 {
	return float64(v>>11) / (1 << 53)
}

// Stream is a stateful splitmix64 generator. The zero value is a valid
// generator seeded with 0; use New for an explicit seed.
type Stream struct {
	state uint64
}

// New returns a Stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform deviate in [0,1).
func (s *Stream) Float64() float64 {
	return Float01(s.Uint64())
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the bias for n << 2^64 is negligible for simulation purposes, but we
	// use rejection sampling anyway to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Exp returns an exponentially distributed deviate with the given mean.
// It panics if mean <= 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// Inverse CDF; guard against log(0).
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// BoundedPareto returns a deviate from the bounded Pareto distribution with
// shape alpha on [lo, hi] (inverse CDF). Heavy-tailed for small alpha, but
// the upper bound keeps every draw — and thus every simulated horizon —
// finite. It panics unless alpha > 0 and 0 < lo < hi.
func (s *Stream) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("rng: BoundedPareto needs alpha > 0 and 0 < lo < hi")
	}
	u := s.Float64()
	// F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha); invert for x.
	ratio := math.Pow(lo/hi, alpha)
	x := lo * math.Pow(1-u*(1-ratio), -1/alpha)
	// Clamp fp round-off back into the support.
	return math.Min(x, hi)
}

// BoundedParetoMean returns the analytic mean of BoundedPareto(alpha, lo, hi).
// It panics on the same invalid inputs as BoundedPareto.
func BoundedParetoMean(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("rng: BoundedParetoMean needs alpha > 0 and 0 < lo < hi")
	}
	if alpha == 1 {
		return lo * hi / (hi - lo) * math.Log(hi/lo)
	}
	la := math.Pow(lo, alpha)
	return la / (1 - math.Pow(lo/hi, alpha)) * alpha / (alpha - 1) *
		(1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (s *Stream) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Fork derives an independent child stream; distinct labels give distinct
// children. The parent's state is unchanged.
func (s *Stream) Fork(label uint64) *Stream {
	return New(Hash2(s.state, label, 0x5eed))
}
